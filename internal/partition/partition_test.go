package partition

import (
	"testing"
	"testing/quick"

	"cloudqc/internal/graph"
)

func validate(t *testing.T, g *graph.Graph, res *Result, k int) {
	t.Helper()
	if len(res.Parts) != g.N() {
		t.Fatalf("Parts length %d != %d vertices", len(res.Parts), g.N())
	}
	seen := make([]int, k)
	for v, p := range res.Parts {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d assigned to invalid part %d", v, p)
		}
		seen[p]++
	}
	for p, c := range seen {
		if c != res.Sizes[p] {
			t.Fatalf("Sizes[%d] = %d, recount %d", p, res.Sizes[p], c)
		}
	}
	if got := Cut(g, res.Parts); got != res.Cut {
		t.Fatalf("Cut = %v, recomputed %v", res.Cut, got)
	}
}

func TestKWayArgs(t *testing.T) {
	g := graph.Path(4)
	if _, err := KWay(g, 0, 0.1, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KWay(g, 5, 0.1, 1); err == nil {
		t.Fatal("k>n should error")
	}
	if _, err := KWay(g, 2, -0.1, 1); err == nil {
		t.Fatal("negative imbalance should error")
	}
}

func TestKWaySinglePart(t *testing.T) {
	g := graph.Path(6)
	res, err := KWay(g, 1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 1)
	if res.Cut != 0 {
		t.Fatalf("k=1 cut = %v, want 0", res.Cut)
	}
}

func TestKWayEachVertexOwnPart(t *testing.T) {
	g := graph.Path(4)
	res, err := KWay(g, 4, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 4)
	if res.Cut != 3 {
		t.Fatalf("k=n cut = %v, want all 3 edges", res.Cut)
	}
}

func TestPathGraphCutQuality(t *testing.T) {
	// A 40-vertex path split into 4 parts has an optimal cut of 3; the
	// multilevel heuristic should stay close.
	g := graph.Path(40)
	res, err := KWay(g, 4, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 4)
	if res.Cut > 5 {
		t.Fatalf("path cut = %v, want <= 5 (optimal 3)", res.Cut)
	}
}

func TestChainWeightTwoCutQuality(t *testing.T) {
	// Ising-style chain with weight-2 edges: 34 vertices, 2 parts.
	// Optimal cut = 2 (one edge of weight 2).
	g := graph.New(34)
	for i := 0; i+1 < 34; i++ {
		g.AddEdge(i, i+1, 2)
	}
	res, err := KWay(g, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > 4 {
		t.Fatalf("weighted chain cut = %v, want <= 4 (optimal 2)", res.Cut)
	}
}

func TestTwoCliquesSplitCleanly(t *testing.T) {
	// Two 8-cliques joined by one bridge edge: the partitioner must find
	// the bridge (cut = 1).
	g := graph.New(16)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			g.AddEdge(a, b, 1)
			g.AddEdge(8+a, 8+b, 1)
		}
	}
	g.AddEdge(0, 8, 1)
	res, err := KWay(g, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("two-clique cut = %v, want 1", res.Cut)
	}
	if res.Sizes[0] != 8 || res.Sizes[1] != 8 {
		t.Fatalf("two-clique sizes = %v, want [8 8]", res.Sizes)
	}
}

func TestBalanceRespected(t *testing.T) {
	g := graph.Random(60, 0.2, 3)
	res, err := KWay(g, 4, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cap := capacityFor(60, 4, 0.1) // 17
	for p, s := range res.Sizes {
		if s > cap {
			t.Fatalf("part %d size %d exceeds cap %d", p, s, cap)
		}
		if s == 0 {
			t.Fatalf("part %d is empty", p)
		}
	}
}

func TestImbalanceLoosensCapacity(t *testing.T) {
	if capacityFor(100, 4, 0) != 25 {
		t.Fatal("zero imbalance cap should be exact target")
	}
	if capacityFor(100, 4, 0.2) != 30 {
		t.Fatalf("cap = %d, want 30", capacityFor(100, 4, 0.2))
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Random(50, 0.15, 9)
	a, err := KWay(g, 5, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 5, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("non-deterministic partition at vertex %d", v)
		}
	}
}

func TestStarGraph(t *testing.T) {
	// Star with 20 leaves, 2 parts: optimal cut keeps the hub with as
	// many leaves as capacity allows; cut = leaves in the other part.
	g := graph.New(21)
	for i := 1; i <= 20; i++ {
		g.AddEdge(0, i, 1)
	}
	res, err := KWay(g, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 2)
	cap := capacityFor(21, 2, 0.1) // 12
	minCut := float64(20 - (cap - 1))
	if res.Cut < minCut {
		t.Fatalf("star cut %v below theoretical minimum %v", res.Cut, minCut)
	}
	if res.Cut > minCut+3 {
		t.Fatalf("star cut %v, want near optimal %v", res.Cut, minCut)
	}
}

func TestGridCut(t *testing.T) {
	// 8x8 grid into 4 parts: optimal quadrant cut is 16.
	g := graph.Grid(8, 8)
	res, err := KWay(g, 4, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 4)
	if res.Cut > 26 {
		t.Fatalf("grid cut = %v, want <= 26 (optimal 16)", res.Cut)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.New(10)
	res, err := KWay(g, 3, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, g, res, 3)
	if res.Cut != 0 {
		t.Fatalf("edgeless cut = %v", res.Cut)
	}
}

// Property: every partition of a random graph is a valid total assignment
// with non-empty parts and cut consistent with the parts.
func TestQuickValidPartitions(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(30, 0.2, seed)
		res, err := KWay(g, 3, 0.2, seed)
		if err != nil {
			return false
		}
		if len(res.Parts) != 30 {
			return false
		}
		counts := make([]int, 3)
		for _, p := range res.Parts {
			if p < 0 || p >= 3 {
				return false
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return Cut(g, res.Parts) == res.Cut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never leaves an obviously improvable boundary
// vertex: no vertex has strictly greater connectivity to another part
// that also has room (this is the KL local-optimality condition).
func TestQuickLocalOptimality(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(24, 0.25, seed)
		res, err := KWay(g, 3, 0.3, seed)
		if err != nil {
			return false
		}
		cap := capacityFor(24, 3, 0.3)
		for v := 0; v < g.N(); v++ {
			from := res.Parts[v]
			if res.Sizes[from] <= 1 {
				continue
			}
			conn := make([]float64, 3)
			for _, nb := range g.Neighbors(v) {
				conn[res.Parts[nb]] += g.Weight(v, nb)
			}
			for to := 0; to < 3; to++ {
				if to == from || res.Sizes[to]+1 > cap {
					continue
				}
				if conn[to] > conn[from] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

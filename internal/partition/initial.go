package partition

// initialPartition produces a k-way assignment of the coarsest graph by
// greedy graph growing: k seeds spread by repeated farthest-vertex BFS,
// then parts claim their most-connected boundary vertex in round-robin
// until everything is assigned. cap bounds each part's total fine-vertex
// weight (coarse vertices carry the weight of everything merged into
// them).
func (l *level) initialPartition(k, cap int) []int {
	n := l.g.N()
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	load := make([]int, k)

	seeds := l.spreadSeeds(k)
	for p, s := range seeds {
		parts[s] = p
		load[p] += l.weights[s]
	}

	assigned := len(seeds)
	for assigned < n {
		progress := false
		for p := 0; p < k; p++ {
			v := l.bestBoundary(parts, p, load[p], cap)
			if v < 0 {
				continue
			}
			parts[v] = p
			load[p] += l.weights[v]
			assigned++
			progress = true
			if assigned == n {
				break
			}
		}
		if !progress {
			// Remaining vertices are unreachable or every part is at
			// capacity: place each on the lightest part regardless of
			// adjacency. Capacity may be exceeded here; refinement
			// rebalances afterwards and the placement stage re-checks
			// feasibility anyway.
			for v := 0; v < n; v++ {
				if parts[v] >= 0 {
					continue
				}
				best := 0
				for p := 1; p < k; p++ {
					if load[p] < load[best] {
						best = p
					}
				}
				parts[v] = best
				load[best] += l.weights[v]
				assigned++
			}
		}
	}
	return parts
}

// spreadSeeds picks k mutually distant vertices: the graph center first,
// then repeatedly the vertex maximizing the minimum hop distance to the
// chosen set (unreachable vertices count as infinitely far, so separate
// components get seeds early).
func (l *level) spreadSeeds(k int) []int {
	n := l.g.N()
	if k > n {
		k = n
	}
	seeds := []int{l.g.Center()}
	minDist := l.g.HopDistances(seeds[0])
	for len(seeds) < k {
		best, bestD := -1, -2
		for v := 0; v < n; v++ {
			if chosen(seeds, v) {
				continue
			}
			d := minDist[v]
			if d < 0 {
				d = n + 1 // unreachable: maximally far
			}
			if d > bestD || (d == bestD && l.weights[v] < l.weights[best]) {
				best, bestD = v, d
			}
		}
		seeds = append(seeds, best)
		for v, d := range l.g.HopDistances(best) {
			if d >= 0 && (minDist[v] < 0 || d < minDist[v]) {
				minDist[v] = d
			}
		}
	}
	return seeds
}

func chosen(seeds []int, v int) bool {
	for _, s := range seeds {
		if s == v {
			return true
		}
	}
	return false
}

// bestBoundary returns the unassigned vertex most strongly connected to
// part p that fits under cap, or -1 if none exists.
func (l *level) bestBoundary(parts []int, p, loadP, cap int) int {
	best, bestW := -1, -1.0
	for v := 0; v < l.g.N(); v++ {
		if parts[v] >= 0 || loadP+l.weights[v] > cap {
			continue
		}
		var w float64
		for _, nb := range l.adj[v] {
			if parts[nb.v] == p {
				w += nb.w
			}
		}
		if w > bestW {
			best, bestW = v, w
		}
	}
	if bestW <= 0 {
		// No connected candidate; only claim a disconnected vertex if the
		// part is still empty-ish (its seed only), to avoid scattering.
		return -1
	}
	return best
}

package partition

import (
	"math/rand"

	"cloudqc/internal/graph"
)

// neighbor is one adjacency entry in a level's cached adjacency lists.
type neighbor struct {
	v int
	w float64
}

// level is one graph in the multilevel hierarchy. weights[v] counts the
// original vertices collapsed into coarse vertex v; coarseMap[v] names
// the coarse vertex that fine vertex v was merged into. adj caches the
// sorted adjacency lists so the hot refinement loops never re-sort.
type level struct {
	g         *graph.Graph
	weights   []int
	coarseMap []int // set by coarsen on the *parent* level
	adj       [][]neighbor
}

func newLevel(g *graph.Graph) *level {
	w := make([]int, g.N())
	for i := range w {
		w[i] = 1
	}
	return &level{g: g, weights: w, adj: buildAdjacency(g)}
}

func buildAdjacency(g *graph.Graph) [][]neighbor {
	adj := make([][]neighbor, g.N())
	for _, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], neighbor{v: e.V, w: e.W})
		adj[e.V] = append(adj[e.V], neighbor{v: e.U, w: e.W})
	}
	// Entries are ascending by construction: Edges is sorted by (U, V),
	// so each vertex's list accumulates increasing partner ids.
	return adj
}

// coarsen builds the next-coarser level via heavy-edge matching: visit
// vertices in a seeded random order; match each unmatched vertex with
// its heaviest-edge unmatched neighbor whose combined weight stays at or
// under maxW. The weight cap keeps star-like graphs (one hub touching
// everything, e.g. Bernstein–Vazirani interaction graphs) from
// collapsing into a single coarse vertex larger than any part — such a
// vertex could never be split again during uncoarsening. Returns nil
// when matching cannot shrink the graph (e.g. no edges).
func (l *level) coarsen(seed int64, maxW int) *level {
	n := l.g.N()
	rng := rand.New(rand.NewSource(seed + int64(n)))
	order := rng.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	matched := 0
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best, bestW := -1, 0.0
		for _, nb := range l.adj[u] {
			if match[nb.v] >= 0 || l.weights[u]+l.weights[nb.v] > maxW {
				continue
			}
			// Prefer heavier edges; among equals prefer lighter coarse
			// vertices to keep weights balanced; then lower index.
			if best < 0 || nb.w > bestW ||
				(nb.w == bestW && l.weights[nb.v] < l.weights[best]) ||
				(nb.w == bestW && l.weights[nb.v] == l.weights[best] && nb.v < best) {
				best, bestW = nb.v, nb.w
			}
		}
		if best >= 0 {
			match[u], match[best] = best, u
			matched++
		} else {
			match[u] = u // self-matched singleton
		}
	}
	if matched == 0 {
		return nil
	}

	// Number coarse vertices deterministically by smallest fine index.
	l.coarseMap = make([]int, n)
	for i := range l.coarseMap {
		l.coarseMap[i] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if l.coarseMap[v] >= 0 {
			continue
		}
		l.coarseMap[v] = numCoarse
		if match[v] != v {
			l.coarseMap[match[v]] = numCoarse
		}
		numCoarse++
	}

	coarse := graph.New(numCoarse)
	weights := make([]int, numCoarse)
	for v := 0; v < n; v++ {
		weights[l.coarseMap[v]] += l.weights[v]
	}
	for u := 0; u < n; u++ {
		cu := l.coarseMap[u]
		for _, nb := range l.adj[u] {
			if u < nb.v {
				if cv := l.coarseMap[nb.v]; cu != cv {
					coarse.AddEdge(cu, cv, nb.w)
				}
			}
		}
	}
	return &level{g: coarse, weights: weights, adj: buildAdjacency(coarse)}
}

// project lifts a coarse partition back to this level's vertices.
func (l *level) project(coarseParts []int) []int {
	parts := make([]int, l.g.N())
	for v := range parts {
		parts[v] = coarseParts[l.coarseMap[v]]
	}
	return parts
}

// Package partition implements a multilevel k-way graph partitioner in
// the METIS family [Karypis & Kumar]: heavy-edge-matching coarsening, a
// greedy graph-growing initial partition on the coarsest graph, and
// boundary Kernighan–Lin refinement during uncoarsening.
//
// CloudQC partitions circuit interaction graphs with it (paper Sec. V-B,
// "Partitioning quantum circuit"), sweeping the imbalance factor to
// produce candidate placements.
package partition

import (
	"fmt"
	"math"

	"cloudqc/internal/graph"
)

// Result describes a k-way partition of a graph.
type Result struct {
	// Parts maps each vertex to its part in [0, K).
	Parts []int
	// K is the number of parts requested.
	K int
	// Cut is the total weight of edges crossing parts.
	Cut float64
	// Sizes holds the number of vertices in each part.
	Sizes []int
}

// KWay partitions g into k parts, keeping every part's size at most
// ⌈n/k⌉·(1+imbalance), and returns the assignment with the edge cut
// minimized heuristically. The same inputs always produce the same
// partition (seed controls matching tie-breaks).
//
// imbalance must be >= 0; 0.05 to 0.5 are typical sweep values.
func KWay(g *graph.Graph, k int, imbalance float64, seed int64) (*Result, error) {
	n := g.N()
	switch {
	case k < 1:
		return nil, fmt.Errorf("partition: k = %d < 1", k)
	case k > n:
		return nil, fmt.Errorf("partition: k = %d exceeds %d vertices", k, n)
	case imbalance < 0:
		return nil, fmt.Errorf("partition: negative imbalance %v", imbalance)
	}
	if k == 1 {
		return finish(g, make([]int, n), 1), nil
	}
	if k == n {
		parts := make([]int, n)
		for i := range parts {
			parts[i] = i
		}
		return finish(g, parts, k), nil
	}

	cap := capacityFor(n, k, imbalance)
	// Coarse vertices may not outgrow half a part: anything bigger robs
	// the initial partition and refinement of the granularity they need
	// to balance parts.
	maxVertexWeight := cap / 2
	if maxVertexWeight < 2 {
		maxVertexWeight = 2
	}
	lvl := newLevel(g)
	var stack []*level
	for lvl.g.N() > coarsestSize(k) {
		next := lvl.coarsen(seed, maxVertexWeight)
		if next == nil { // matching made no progress
			break
		}
		stack = append(stack, lvl)
		lvl = next
	}

	parts := lvl.initialPartition(k, cap)
	lvl.refine(parts, k, cap)
	for i := len(stack) - 1; i >= 0; i-- {
		parent := stack[i]
		parts = parent.project(parts)
		lvl = parent
		lvl.refine(parts, k, cap)
	}
	return finish(g, parts, k), nil
}

func capacityFor(n, k int, imbalance float64) int {
	target := float64(n) / float64(k)
	c := int(math.Ceil(target * (1 + imbalance)))
	if c < 1 {
		c = 1
	}
	return c
}

// coarsestSize is the vertex count at which coarsening stops: enough
// vertices that the initial partition has room to seed k parts.
func coarsestSize(k int) int {
	s := 4 * k
	if s < 24 {
		s = 24
	}
	return s
}

// Cut returns the total weight of edges whose endpoints are in different
// parts under the given assignment.
func Cut(g *graph.Graph, parts []int) float64 {
	var cut float64
	for _, e := range g.Edges() {
		if parts[e.U] != parts[e.V] {
			cut += e.W
		}
	}
	return cut
}

func finish(g *graph.Graph, parts []int, k int) *Result {
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	return &Result{Parts: parts, K: k, Cut: Cut(g, parts), Sizes: sizes}
}

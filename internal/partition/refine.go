package partition

// refine runs boundary Kernighan–Lin passes to convergence: each pass
// scans boundary vertices in index order and applies the single best
// positive-gain move available for that vertex, provided the
// destination part stays under cap and the source part does not empty.
// Sweeping stops when a pass makes no move — which must happen: every
// move strictly decreases the lexicographic potential (cut, Σ load²)
// (positive-gain moves cut the cut, zero-gain moves only go to strictly
// lighter parts), so no state repeats and the finite state space bounds
// the move count. A fixed pass budget (the old bound was 4) could stop
// short and leave obviously improvable boundary vertices behind, which
// TestQuickLocalOptimality caught intermittently.
func (l *level) refine(parts []int, k, cap int) {
	n := l.g.N()
	load := make([]int, k)
	count := make([]int, k)
	for v := 0; v < n; v++ {
		load[parts[v]] += l.weights[v]
		count[parts[v]]++
	}
	conn := make([]float64, k) // reused per-vertex connection accumulator
	for {
		moved := false
		for v := 0; v < n; v++ {
			from := parts[v]
			if count[from] <= 1 {
				continue // never empty a part
			}
			for i := range conn {
				conn[i] = 0
			}
			boundary := false
			for _, nb := range l.adj[v] {
				conn[parts[nb.v]] += nb.w
				if parts[nb.v] != from {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			bestTo, bestGain := -1, 0.0
			for to := 0; to < k; to++ {
				if to == from || load[to]+l.weights[v] > cap {
					continue
				}
				gain := conn[to] - conn[from]
				// Accept strictly positive gains; on zero gain accept a
				// move that improves balance, which opens escapes from
				// local minima without oscillation (ties move only toward
				// strictly lighter parts).
				if gain > bestGain ||
					(gain == bestGain && bestTo < 0 && gain == 0 && load[to]+l.weights[v] < load[from]) {
					bestTo, bestGain = to, gain
				}
			}
			if bestTo >= 0 && (bestGain > 0 || load[bestTo]+l.weights[v] < load[from]) {
				parts[v] = bestTo
				load[from] -= l.weights[v]
				load[bestTo] += l.weights[v]
				count[from]--
				count[bestTo]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// Package community implements modularity-based community detection
// (Newman, PNAS 2006) via the greedy CNM agglomeration: start with every
// vertex in its own community and repeatedly merge the connected pair
// with the largest modularity gain, keeping the partition with the best
// modularity seen.
//
// CloudQC uses it to find sets of well-connected QPUs with spare capacity
// (paper Sec. V-B, "Finding feasible QPU sets"): edge weights of the
// cloud graph embed free computing qubits, so dense high-capacity QPU
// groups surface as communities.
package community

import (
	"sort"

	"cloudqc/internal/graph"
)

// Communities is the result of a detection run.
type Communities struct {
	// Assign maps each vertex to its community id in [0, len(Groups)).
	Assign []int
	// Groups lists each community's vertices in ascending order, ordered
	// by their smallest member.
	Groups [][]int
	// Q is the modularity of this division.
	Q float64
}

// Modularity computes Newman's weighted modularity of the given
// assignment: Q = Σ_ij [A_ij/(2m) − k_i·k_j/(2m)²]·δ(c_i, c_j).
// An edgeless graph has modularity 0 by convention.
func Modularity(g *graph.Graph, assign []int) float64 {
	m2 := 2 * g.TotalWeight()
	if m2 == 0 {
		return 0
	}
	// internal[c] accumulates 2·(weight inside c); degSum[c] sums
	// weighted degrees.
	internal := map[int]float64{}
	degSum := map[int]float64{}
	for v := 0; v < g.N(); v++ {
		degSum[assign[v]] += g.WeightedDegree(v)
	}
	for _, e := range g.Edges() {
		if assign[e.U] == assign[e.V] {
			internal[assign[e.U]] += 2 * e.W
		}
	}
	var q float64
	for c, ds := range degSum {
		q += internal[c]/m2 - (ds/m2)*(ds/m2)
	}
	return q
}

// Detect runs CNM greedy modularity maximization and returns the best
// division found. Deterministic: merge ties break toward the smaller
// community-id pair.
func Detect(g *graph.Graph) *Communities {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i
	}
	m2 := 2 * g.TotalWeight()
	if n == 0 || m2 == 0 {
		return build(g, assign)
	}

	// Community state: between[c1][c2] = total weight between them,
	// deg[c] = summed weighted degree, alive[c] tracks merged-away ids.
	between := make([]map[int]float64, n)
	deg := make([]float64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		between[v] = make(map[int]float64)
		deg[v] = g.WeightedDegree(v)
		alive[v] = true
	}
	for _, e := range g.Edges() {
		between[e.U][e.V] += e.W
		between[e.V][e.U] += e.W
	}

	cur := make([]int, n)
	copy(cur, assign)
	bestAssign := make([]int, n)
	copy(bestAssign, cur)
	bestQ := Modularity(g, cur)
	curQ := bestQ

	for {
		// Find the merge with maximum ΔQ.
		mergeA, mergeB, bestDelta := -1, -1, 0.0
		first := true
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			for _, b := range sortedKeys(between[a]) {
				if b <= a || !alive[b] {
					continue
				}
				w := between[a][b]
				delta := 2 * (w/m2 - (deg[a]/m2)*(deg[b]/m2))
				if first || delta > bestDelta {
					mergeA, mergeB, bestDelta = a, b, delta
					first = false
				}
			}
		}
		if mergeA < 0 {
			break // no connected pairs left
		}
		// Merge B into A.
		alive[mergeB] = false
		deg[mergeA] += deg[mergeB]
		for c, w := range between[mergeB] {
			if c == mergeA {
				continue
			}
			between[mergeA][c] += w
			between[c][mergeA] += w
			delete(between[c], mergeB)
		}
		delete(between[mergeA], mergeB)
		between[mergeB] = nil
		for v := 0; v < n; v++ {
			if cur[v] == mergeB {
				cur[v] = mergeA
			}
		}
		curQ += bestDelta
		if curQ > bestQ {
			bestQ = curQ
			copy(bestAssign, cur)
		}
	}
	return build(g, bestAssign)
}

func sortedKeys(m map[int]float64) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// build canonicalizes an assignment into a Communities value with dense
// ids ordered by smallest member.
func build(g *graph.Graph, assign []int) *Communities {
	byOld := map[int][]int{}
	for v, c := range assign {
		byOld[c] = append(byOld[c], v)
	}
	var groups [][]int
	for _, vs := range byOld {
		sort.Ints(vs)
		groups = append(groups, vs)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	dense := make([]int, len(assign))
	for id, vs := range groups {
		for _, v := range vs {
			dense[v] = id
		}
	}
	return &Communities{Assign: dense, Groups: groups, Q: Modularity(g, dense)}
}

package community

import (
	"math"
	"testing"
	"testing/quick"

	"cloudqc/internal/graph"
)

// twoCliques builds two k-cliques joined by a single bridge.
func twoCliques(k int) *graph.Graph {
	g := graph.New(2 * k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			g.AddEdge(a, b, 1)
			g.AddEdge(k+a, k+b, 1)
		}
	}
	g.AddEdge(0, k, 1)
	return g
}

func TestModularityKnownValue(t *testing.T) {
	// Two disjoint edges, each its own community:
	// m = 2, each community: internal 2*1/4 = 0.5, (deg 2/4)^2 = 0.25.
	// Q = 2 * (0.5 - 0.25) = 0.5.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	q := Modularity(g, []int{0, 0, 1, 1})
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q = %v, want 0.5", q)
	}
}

func TestModularityAllOneCommunity(t *testing.T) {
	// Everything in one community always has Q = 0.
	g := twoCliques(4)
	assign := make([]int, g.N())
	if q := Modularity(g, assign); math.Abs(q) > 1e-12 {
		t.Fatalf("Q(single community) = %v, want 0", q)
	}
}

func TestModularityEdgeless(t *testing.T) {
	g := graph.New(5)
	if q := Modularity(g, []int{0, 1, 2, 3, 4}); q != 0 {
		t.Fatalf("Q(edgeless) = %v, want 0", q)
	}
}

func TestDetectTwoCliques(t *testing.T) {
	g := twoCliques(6)
	c := Detect(g)
	if len(c.Groups) != 2 {
		t.Fatalf("detected %d communities, want 2: %v", len(c.Groups), c.Groups)
	}
	// Each clique must land in one community.
	for v := 1; v < 6; v++ {
		if c.Assign[v] != c.Assign[0] {
			t.Fatalf("clique 1 split: %v", c.Assign)
		}
		if c.Assign[6+v] != c.Assign[6] {
			t.Fatalf("clique 2 split: %v", c.Assign)
		}
	}
	if c.Assign[0] == c.Assign[6] {
		t.Fatal("cliques merged into one community")
	}
}

func TestDetectRespectsWeights(t *testing.T) {
	// A 4-cycle with two heavy opposite edges: communities follow the
	// heavy edges.
	g := graph.New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 0, 1)
	c := Detect(g)
	if c.Assign[0] != c.Assign[1] || c.Assign[2] != c.Assign[3] || c.Assign[0] == c.Assign[2] {
		t.Fatalf("weighted communities wrong: %v", c.Assign)
	}
}

func TestDetectEdgeless(t *testing.T) {
	g := graph.New(3)
	c := Detect(g)
	if len(c.Groups) != 3 {
		t.Fatalf("edgeless graph should yield singleton communities, got %v", c.Groups)
	}
}

func TestDetectEmptyGraph(t *testing.T) {
	c := Detect(graph.New(0))
	if len(c.Groups) != 0 || len(c.Assign) != 0 {
		t.Fatalf("empty graph result: %+v", c)
	}
}

func TestDetectDeterminism(t *testing.T) {
	g := graph.Random(25, 0.2, 5)
	a, b := Detect(g), Detect(g)
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("non-deterministic detection")
		}
	}
}

func TestGroupsCanonical(t *testing.T) {
	g := twoCliques(3)
	c := Detect(g)
	if c.Groups[0][0] > c.Groups[1][0] {
		t.Fatalf("groups not ordered by smallest member: %v", c.Groups)
	}
	for _, grp := range c.Groups {
		for i := 1; i < len(grp); i++ {
			if grp[i-1] >= grp[i] {
				t.Fatalf("group not sorted: %v", grp)
			}
		}
	}
}

// Property: Detect's reported Q matches Modularity of its assignment and
// is never worse than the trivial single-community division (Q = 0) on
// connected graphs.
func TestQuickDetectConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(15, 0.25, seed)
		c := Detect(g)
		if math.Abs(c.Q-Modularity(g, c.Assign)) > 1e-9 {
			return false
		}
		return c.Q >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: community ids are dense and every group matches Assign.
func TestQuickCanonicalForm(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(12, 0.3, seed)
		c := Detect(g)
		for id, grp := range c.Groups {
			for _, v := range grp {
				if c.Assign[v] != id {
					return false
				}
			}
		}
		total := 0
		for _, grp := range c.Groups {
			total += len(grp)
		}
		return total == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package circuit

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 qubits should panic")
		}
	}()
	New("bad", 0)
}

func TestAppendAndCounts(t *testing.T) {
	c := New("test", 3)
	c.Append(H(0), CX(0, 1), RZ(1, 0.5), CX(1, 2), M(2))
	oneQ, twoQ, ms := c.GateCount()
	if oneQ != 2 || twoQ != 2 || ms != 1 {
		t.Fatalf("GateCount = (%d,%d,%d), want (2,2,1)", oneQ, twoQ, ms)
	}
	if c.TwoQubitGateCount() != 2 {
		t.Fatalf("TwoQubitGateCount = %d, want 2", c.TwoQubitGateCount())
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
}

func TestAppendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit should panic")
		}
	}()
	New("test", 2).Append(H(2))
}

func TestTwoQubitGateSameQubitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CX(1,1) should panic")
		}
	}()
	CX(1, 1)
}

func TestDepthGHZChain(t *testing.T) {
	// H q0; CX(0,1); CX(1,2); CX(2,3) -> depth 4; +measure layer -> 5.
	c := New("ghz4", 4)
	c.Append(H(0), CX(0, 1), CX(1, 2), CX(2, 3))
	if d := c.Depth(); d != 4 {
		t.Fatalf("Depth = %d, want 4", d)
	}
	c.MeasureAll()
	if d := c.Depth(); d != 5 {
		t.Fatalf("Depth with measures = %d, want 5", d)
	}
}

func TestDepthParallelGates(t *testing.T) {
	// Independent H gates all fit in one layer.
	c := New("hs", 4)
	for q := 0; q < 4; q++ {
		c.Append(H(q))
	}
	if d := c.Depth(); d != 1 {
		t.Fatalf("Depth = %d, want 1", d)
	}
}

func TestDepthEmptyCircuit(t *testing.T) {
	if d := New("empty", 2).Depth(); d != 0 {
		t.Fatalf("Depth(empty) = %d, want 0", d)
	}
}

func TestInteractionGraphWeights(t *testing.T) {
	c := New("test", 3)
	c.Append(CX(0, 1), CX(1, 0), CX(1, 2), H(0))
	ig := c.InteractionGraph()
	if w := ig.Weight(0, 1); w != 2 {
		t.Fatalf("D_01 = %v, want 2 (direction-insensitive)", w)
	}
	if w := ig.Weight(1, 2); w != 1 {
		t.Fatalf("D_12 = %v, want 1", w)
	}
	if ig.HasEdge(0, 2) {
		t.Fatal("no interaction between 0 and 2 expected")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("orig", 2)
	c.Append(H(0))
	cp := c.Clone()
	cp.Append(CX(0, 1))
	if c.Len() != 1 {
		t.Fatal("mutating clone affected original")
	}
	if cp.Len() != 2 || cp.Name != "orig" {
		t.Fatalf("clone wrong: len=%d name=%q", cp.Len(), cp.Name)
	}
}

func TestGateString(t *testing.T) {
	if s := CX(0, 1).String(); s != "cx q0,q1" {
		t.Fatalf("String = %q", s)
	}
	if s := H(3).String(); s != "h q3" {
		t.Fatalf("String = %q", s)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Single: "1q", Two: "2q", Measure: "measure", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestGateOn(t *testing.T) {
	g := CX(2, 5)
	if !g.On(2) || !g.On(5) || g.On(3) {
		t.Fatal("On() wrong for CX(2,5)")
	}
	h := H(1)
	if !h.On(1) || h.On(-1) {
		t.Fatal("On() wrong for H(1); must not match sentinel -1")
	}
}

func TestAllGateConstructors(t *testing.T) {
	oneQ := []struct {
		g    Gate
		name string
	}{
		{H(0), "h"}, {X(0), "x"}, {Y(0), "y"}, {Z(0), "z"},
		{S(0), "s"}, {T(0), "t"}, {Tdg(0), "tdg"},
		{RX(0, 1), "rx"}, {RY(0, 1), "ry"}, {RZ(0, 1), "rz"},
	}
	for _, tc := range oneQ {
		if tc.g.Name != tc.name || tc.g.Kind != Single || tc.g.Arity() != 1 {
			t.Fatalf("constructor %s wrong: %+v", tc.name, tc.g)
		}
		if tc.g.Qubits[1] != -1 {
			t.Fatalf("%s should carry sentinel second qubit", tc.name)
		}
	}
	twoQ := []struct {
		g    Gate
		name string
	}{
		{CX(0, 1), "cx"}, {CZ(0, 1), "cz"}, {CP(0, 1, 0.5), "cp"}, {Swap(0, 1), "swap"},
	}
	for _, tc := range twoQ {
		if tc.g.Name != tc.name || tc.g.Kind != Two || tc.g.Arity() != 2 {
			t.Fatalf("constructor %s wrong: %+v", tc.name, tc.g)
		}
	}
	if m := M(3); m.Kind != Measure || m.Arity() != 1 || m.Name != "measure" {
		t.Fatalf("measure constructor wrong: %+v", m)
	}
	if CP(0, 1, 0.5).Param != 0.5 || RX(0, 0.7).Param != 0.7 {
		t.Fatal("parameters not preserved")
	}
}

// Property: depth never exceeds gate count and is at least
// ceil(gates/numQubits) for one-qubit-gate-only circuits.
func TestQuickDepthBounds(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%5+5)%5 + 2 // 2..8 qubits, seed-derived
		c := New("rand", n)
		g := int(seed % 40)
		if g < 0 {
			g = -g
		}
		for i := 0; i < g; i++ {
			c.Append(H(i % n))
		}
		d := c.Depth()
		if d > c.Len() {
			return false
		}
		if n > 0 && d < (g+n-1)/n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

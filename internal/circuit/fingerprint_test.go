package circuit

import "testing"

// TestFingerprintIdentity: structurally identical circuits fingerprint
// identically regardless of name or construction history — the property
// that lets plan-cache entries be shared across jobs submitting the
// same template.
func TestFingerprintIdentity(t *testing.T) {
	build := func(name string) *Circuit {
		c := New(name, 4)
		c.Append(H(0), CX(0, 1), CX(1, 2), RZ(3, 0.25), CX(2, 3))
		c.MeasureAll()
		return c
	}
	a, b := build("alpha"), build("beta")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical structures fingerprint differently: %+v vs %+v",
			a.Fingerprint(), b.Fingerprint())
	}
	if cl := a.Clone(); cl.Fingerprint() != a.Fingerprint() {
		t.Fatalf("clone fingerprint %+v differs from original %+v",
			cl.Fingerprint(), a.Fingerprint())
	}
}

// TestFingerprintSensitivity: any structural difference — register
// size, gate kind, operand, rotation parameter, or gate order — changes
// the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Circuit {
		c := New("c", 4)
		c.Append(H(0), CX(0, 1), RZ(2, 0.5))
		return c
	}
	fp := base().Fingerprint()

	variants := map[string]*Circuit{}
	wider := New("c", 5)
	wider.Append(H(0), CX(0, 1), RZ(2, 0.5))
	variants["register size"] = wider
	kind := New("c", 4)
	kind.Append(M(0), CX(0, 1), RZ(2, 0.5))
	variants["gate kind"] = kind
	operand := New("c", 4)
	operand.Append(H(0), CX(0, 2), RZ(2, 0.5))
	variants["operand"] = operand
	param := New("c", 4)
	param.Append(H(0), CX(0, 1), RZ(2, 0.25))
	variants["rotation parameter"] = param
	order := New("c", 4)
	order.Append(CX(0, 1), H(0), RZ(2, 0.5))
	variants["gate order"] = order

	for what, c := range variants {
		if c.Fingerprint() == fp {
			t.Errorf("%s change did not change the fingerprint", what)
		}
	}
}

// TestFingerprintMemoInvalidation: Append after a fingerprint read must
// invalidate the memo — a stale fingerprint would alias a longer
// circuit onto a shorter template's cached plan.
func TestFingerprintMemoInvalidation(t *testing.T) {
	c := New("c", 3)
	c.Append(H(0), CX(0, 1))
	before := c.Fingerprint()
	c.Append(CX(1, 2))
	after := c.Fingerprint()
	if before == after {
		t.Fatal("Append did not invalidate the fingerprint memo")
	}
	if after.Gates != 3 {
		t.Fatalf("fingerprint gate count = %d, want 3", after.Gates)
	}
}

// Package circuit defines the quantum-circuit intermediate representation
// used by CloudQC: gates, circuits, the gate dependency DAG, the front
// layer, and the qubit interaction graph that placement partitions.
//
// The IR is structural: gate matrices are never simulated. Placement and
// scheduling only need which qubits each gate touches, gate ordering, and
// per-gate latency class (Table I of the paper).
package circuit

import "fmt"

// Kind classifies a gate by its latency/interaction class.
type Kind int

// Gate kinds, in Table I order.
const (
	// Single is any one-qubit gate (H, X, RZ, ...): latency t1q.
	Single Kind = iota + 1
	// Two is any two-qubit gate (CX, CZ, ...): latency t2q; becomes a
	// remote gate when its qubits are placed on different QPUs.
	Two
	// Measure reads out one qubit: latency tms.
	Measure
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Single:
		return "1q"
	case Two:
		return "2q"
	case Measure:
		return "measure"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Gate is one operation on one or two qubits. Param carries a rotation
// angle when meaningful (RZ, RX, CP, ...); it does not affect placement or
// scheduling but is preserved for QASM round-trips.
type Gate struct {
	Name   string
	Kind   Kind
	Qubits [2]int // Qubits[1] is -1 for one-qubit gates and measures
	Param  float64
}

// Arity returns the number of qubits the gate touches (1 or 2).
func (g Gate) Arity() int {
	if g.Kind == Two {
		return 2
	}
	return 1
}

// On reports whether the gate acts on qubit q.
func (g Gate) On(q int) bool {
	return g.Qubits[0] == q || (g.Kind == Two && g.Qubits[1] == q)
}

// String implements fmt.Stringer.
func (g Gate) String() string {
	if g.Kind == Two {
		return fmt.Sprintf("%s q%d,q%d", g.Name, g.Qubits[0], g.Qubits[1])
	}
	return fmt.Sprintf("%s q%d", g.Name, g.Qubits[0])
}

// Common gate constructors. They exist so generator code reads like a
// circuit listing and so kind/arity invariants are enforced in one place.

// H returns a Hadamard gate on q.
func H(q int) Gate { return Gate{Name: "h", Kind: Single, Qubits: [2]int{q, -1}} }

// X returns a Pauli-X gate on q.
func X(q int) Gate { return Gate{Name: "x", Kind: Single, Qubits: [2]int{q, -1}} }

// Y returns a Pauli-Y gate on q.
func Y(q int) Gate { return Gate{Name: "y", Kind: Single, Qubits: [2]int{q, -1}} }

// Z returns a Pauli-Z gate on q.
func Z(q int) Gate { return Gate{Name: "z", Kind: Single, Qubits: [2]int{q, -1}} }

// T returns a T gate on q.
func T(q int) Gate { return Gate{Name: "t", Kind: Single, Qubits: [2]int{q, -1}} }

// Tdg returns a T-dagger gate on q.
func Tdg(q int) Gate { return Gate{Name: "tdg", Kind: Single, Qubits: [2]int{q, -1}} }

// S returns an S gate on q.
func S(q int) Gate { return Gate{Name: "s", Kind: Single, Qubits: [2]int{q, -1}} }

// RX returns an X-rotation by theta on q.
func RX(q int, theta float64) Gate {
	return Gate{Name: "rx", Kind: Single, Qubits: [2]int{q, -1}, Param: theta}
}

// RY returns a Y-rotation by theta on q.
func RY(q int, theta float64) Gate {
	return Gate{Name: "ry", Kind: Single, Qubits: [2]int{q, -1}, Param: theta}
}

// RZ returns a Z-rotation by theta on q.
func RZ(q int, theta float64) Gate {
	return Gate{Name: "rz", Kind: Single, Qubits: [2]int{q, -1}, Param: theta}
}

// CX returns a CNOT with control c and target t.
func CX(c, t int) Gate {
	mustDistinct(c, t)
	return Gate{Name: "cx", Kind: Two, Qubits: [2]int{c, t}}
}

// CZ returns a controlled-Z on c and t.
func CZ(c, t int) Gate {
	mustDistinct(c, t)
	return Gate{Name: "cz", Kind: Two, Qubits: [2]int{c, t}}
}

// CP returns a controlled phase rotation by theta on c and t.
func CP(c, t int, theta float64) Gate {
	mustDistinct(c, t)
	return Gate{Name: "cp", Kind: Two, Qubits: [2]int{c, t}, Param: theta}
}

// Swap returns a SWAP gate on a and b.
func Swap(a, b int) Gate {
	mustDistinct(a, b)
	return Gate{Name: "swap", Kind: Two, Qubits: [2]int{a, b}}
}

// M returns a measurement of q.
func M(q int) Gate { return Gate{Name: "measure", Kind: Measure, Qubits: [2]int{q, -1}} }

func mustDistinct(a, b int) {
	if a == b {
		panic(fmt.Sprintf("circuit: two-qubit gate with identical qubits %d", a))
	}
}

package circuit

// DAG is the gate dependency graph of a circuit. Node i corresponds to
// gate i in program order. There is an edge u -> v when v is the next
// gate after u on some shared qubit; transitively this encodes the full
// dependency partial order.
type DAG struct {
	circ  *Circuit
	succs [][]int
	preds [][]int
}

// BuildDAG constructs the dependency DAG for c. Cost is linear in the
// gate count.
func BuildDAG(c *Circuit) *DAG {
	n := c.Len()
	d := &DAG{
		circ:  c,
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
	last := make([]int, c.NumQubits()) // last gate index seen per qubit
	for i := range last {
		last[i] = -1
	}
	for i, g := range c.Gates() {
		qubits := []int{g.Qubits[0]}
		if g.Kind == Two {
			qubits = append(qubits, g.Qubits[1])
		}
		seen := -1
		for _, q := range qubits {
			if p := last[q]; p >= 0 && p != seen {
				d.succs[p] = append(d.succs[p], i)
				d.preds[i] = append(d.preds[i], p)
				seen = p
			}
			last[q] = i
		}
	}
	return d
}

// Circuit returns the circuit this DAG was built from.
func (d *DAG) Circuit() *Circuit { return d.circ }

// Len returns the number of nodes (gates).
func (d *DAG) Len() int { return len(d.succs) }

// Succs returns the direct successors of gate i. Callers must not modify
// the returned slice.
func (d *DAG) Succs(i int) []int { return d.succs[i] }

// Preds returns the direct predecessors of gate i. Callers must not
// modify the returned slice.
func (d *DAG) Preds(i int) []int { return d.preds[i] }

// FrontLayer returns the indices of all gates with no predecessors: the
// set that can execute immediately (Fig. 1 of the paper).
func (d *DAG) FrontLayer() []int {
	var front []int
	for i := range d.preds {
		if len(d.preds[i]) == 0 {
			front = append(front, i)
		}
	}
	return front
}

// Topological returns node indices in a topological order. Because gates
// are stored in program order and edges only point forward, program order
// itself is topological; the method exists to make that contract explicit
// at call sites.
func (d *DAG) Topological() []int {
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	return order
}

// CriticalPath returns the longest weighted path length through the DAG,
// where dur maps each gate index to its duration, plus the implied
// completion time of every node. It is the circuit runtime under
// unbounded parallelism.
func (d *DAG) CriticalPath(dur func(int) float64) (total float64, finish []float64) {
	finish = make([]float64, d.Len())
	for _, i := range d.Topological() {
		start := 0.0
		for _, p := range d.preds[i] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[i] = start + dur(i)
		if finish[i] > total {
			total = finish[i]
		}
	}
	return total, finish
}

// Heights returns, for every node, the number of edges on the longest
// path from that node to any sink. Sinks have height 0. This is the
// priority measure of the paper's network scheduler (Sec. V-C).
func (d *DAG) Heights() []int {
	h := make([]int, d.Len())
	order := d.Topological()
	for idx := len(order) - 1; idx >= 0; idx-- {
		i := order[idx]
		for _, s := range d.succs[i] {
			if h[s]+1 > h[i] {
				h[i] = h[s] + 1
			}
		}
	}
	return h
}

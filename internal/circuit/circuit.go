package circuit

import (
	"fmt"
	"sync/atomic"

	"cloudqc/internal/graph"
)

// Circuit is an ordered list of gates over a fixed qubit register.
// Gate order in the slice is program order; the dependency DAG derives the
// true partial order.
type Circuit struct {
	// Name identifies the circuit in workloads and reports ("qft_n160").
	Name string

	numQubits int
	gates     []Gate
	// fp memoizes Fingerprint; Append invalidates it. Atomic because
	// workloads deliberately share one Circuit across jobs ("the
	// execution pipeline never mutates them"), so concurrent readers
	// may race to fill the memo — each computes the identical value.
	fp atomic.Pointer[Fingerprint]
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{Name: name, numQubits: n}
}

// NumQubits returns the register size.
func (c *Circuit) NumQubits() int { return c.numQubits }

// Gates returns the gate list in program order. The returned slice is the
// circuit's backing store; callers must not modify it.
func (c *Circuit) Gates() []Gate { return c.gates }

// Len returns the number of gates.
func (c *Circuit) Len() int { return len(c.gates) }

// Append adds gates in program order, validating qubit indices.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		c.checkQubit(g.Qubits[0])
		if g.Kind == Two {
			c.checkQubit(g.Qubits[1])
		}
		c.gates = append(c.gates, g)
	}
	c.fp.Store(nil)
}

// TwoQubitGateCount returns the number of two-qubit gates (the "#2-Qubit
// Gates" column of Table II).
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.gates {
		if g.Kind == Two {
			n++
		}
	}
	return n
}

// GateCount returns counts by kind.
func (c *Circuit) GateCount() (oneQ, twoQ, measures int) {
	for _, g := range c.gates {
		switch g.Kind {
		case Single:
			oneQ++
		case Two:
			twoQ++
		case Measure:
			measures++
		}
	}
	return oneQ, twoQ, measures
}

// Depth returns the circuit depth: the length of the longest chain of
// gates that share qubits, counting every gate (including measures) as
// one layer. This matches the "Circuit Depth" column of Table II.
func (c *Circuit) Depth() int {
	level := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		d := level[g.Qubits[0]]
		if g.Kind == Two && level[g.Qubits[1]] > d {
			d = level[g.Qubits[1]]
		}
		d++
		level[g.Qubits[0]] = d
		if g.Kind == Two {
			level[g.Qubits[1]] = d
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// InteractionGraph returns the weighted qubit interaction graph: vertices
// are qubits, edge weight D_ij counts two-qubit gates between qubits i
// and j. This is the graph the placement stage partitions.
func (c *Circuit) InteractionGraph() *graph.Graph {
	g := graph.New(c.numQubits)
	for _, gt := range c.gates {
		if gt.Kind == Two {
			g.AddEdge(gt.Qubits[0], gt.Qubits[1], 1)
		}
	}
	return g
}

// MeasureAll appends a measurement on every qubit.
func (c *Circuit) MeasureAll() {
	for q := 0; q < c.numQubits; q++ {
		c.Append(M(q))
	}
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := New(c.Name, c.numQubits)
	cp.gates = append([]Gate(nil), c.gates...)
	return cp
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.numQubits {
		panic(fmt.Sprintf("circuit %q: qubit %d out of range [0,%d)", c.Name, q, c.numQubits))
	}
}

package circuit

import "math"

// Fingerprint canonically identifies a circuit's structure: the register
// size, the gate count, and a hash over the gate sequence (kind — which
// fixes the Table I duration class — qubit operands, and rotation
// parameter). Two jobs submitting the same template circuit fingerprint
// identically regardless of job identity or circuit name, so compile
// artifacts (placement, remote DAG) keyed by fingerprint are shared
// across the whole stream; see internal/plan.
//
// The composite (Hash, Qubits, Gates) key makes accidental collisions
// between structurally different circuits vanishingly unlikely: beyond
// the 64-bit FNV-1a hash, colliding circuits would also need identical
// register and gate counts.
type Fingerprint struct {
	// Hash is an FNV-1a digest of the register size and gate sequence.
	Hash uint64
	// Qubits is the register size.
	Qubits int
	// Gates is the gate count.
	Gates int
}

// Zero reports whether f is the zero fingerprint (no circuit has one:
// circuits cannot be empty-registered).
func (f Fingerprint) Zero() bool { return f == Fingerprint{} }

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// Fingerprint returns the circuit's structural fingerprint, memoized
// until the next Append. The memo makes repeated fingerprinting of a
// queued job (re-hashed on every admission round while it waits for
// capacity) a pointer load instead of a gate-list walk, and is safe on
// circuits shared across jobs and goroutines: concurrent first readers
// each compute the identical value and race benignly on the store.
func (c *Circuit) Fingerprint() Fingerprint {
	if p := c.fp.Load(); p != nil {
		return *p
	}
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(c.numQubits))
	for _, g := range c.gates {
		h = fnvMix(h, uint64(g.Kind))
		h = fnvMix(h, uint64(int64(g.Qubits[0])))
		h = fnvMix(h, uint64(int64(g.Qubits[1])))
		if g.Param != 0 {
			h = fnvMix(h, math.Float64bits(g.Param))
		}
	}
	fp := Fingerprint{Hash: h, Qubits: c.numQubits, Gates: len(c.gates)}
	c.fp.Store(&fp)
	return fp
}

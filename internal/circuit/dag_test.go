package circuit

import (
	"testing"
	"testing/quick"
)

// vqe4 builds the 4-qubit VQE circuit of Fig. 1 in the paper:
// three H gates (q0,q2,q3) form the front layer; the CX on q0,q1 must
// wait for the H on q0 and the CX on q1,q2.
func vqe4() *Circuit {
	c := New("vqe4", 4)
	c.Append(
		H(0),       // 0
		H(2),       // 1
		H(3),       // 2
		CX(1, 2),   // 3 depends on H(2)? no: on q1 nothing, q2 -> gate 1
		CX(0, 1),   // 4 depends on gates 0 and 3
		RZ(1, 0.3), // 5
		CX(2, 3),   // 6
		H(1),       // 7
	)
	return c
}

func TestFrontLayer(t *testing.T) {
	d := BuildDAG(vqe4())
	front := d.FrontLayer()
	// Gates 0 (H q0), 1 (H q2), 2 (H q3) have no predecessors; gate 3
	// (CX q1,q2) depends on gate 1.
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(front) != 3 {
		t.Fatalf("front layer = %v, want 3 gates", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Fatalf("unexpected front gate %d (%v)", i, front)
		}
	}
}

func TestDAGEdges(t *testing.T) {
	d := BuildDAG(vqe4())
	// Gate 4 = CX(0,1) must depend on gate 0 (H q0) and gate 3 (CX q1,q2).
	preds := d.Preds(4)
	got := map[int]bool{}
	for _, p := range preds {
		got[p] = true
	}
	if len(preds) != 2 || !got[0] || !got[3] {
		t.Fatalf("Preds(4) = %v, want {0,3}", preds)
	}
}

func TestDAGNoDuplicateEdgeForSharedPred(t *testing.T) {
	// CX(0,1) followed by CX(0,1): the second depends on the first exactly
	// once even though they share both qubits.
	c := New("dup", 2)
	c.Append(CX(0, 1), CX(0, 1))
	d := BuildDAG(c)
	if len(d.Preds(1)) != 1 {
		t.Fatalf("Preds(1) = %v, want exactly one edge", d.Preds(1))
	}
	if len(d.Succs(0)) != 1 {
		t.Fatalf("Succs(0) = %v, want exactly one edge", d.Succs(0))
	}
}

func TestCriticalPathLinear(t *testing.T) {
	c := New("chain", 2)
	c.Append(H(0), CX(0, 1), M(1))
	d := BuildDAG(c)
	total, finish := d.CriticalPath(func(i int) float64 {
		switch c.Gates()[i].Kind {
		case Single:
			return 0.1
		case Two:
			return 1
		default:
			return 5
		}
	})
	if total != 6.1 {
		t.Fatalf("critical path = %v, want 6.1", total)
	}
	if finish[0] != 0.1 || finish[1] != 1.1 || finish[2] != 6.1 {
		t.Fatalf("finish times = %v", finish)
	}
}

func TestCriticalPathParallelism(t *testing.T) {
	c := New("par", 4)
	c.Append(H(0), H(1), H(2), H(3))
	d := BuildDAG(c)
	total, _ := d.CriticalPath(func(int) float64 { return 0.1 })
	if total != 0.1 {
		t.Fatalf("parallel H layer critical path = %v, want 0.1", total)
	}
}

func TestHeightsChain(t *testing.T) {
	c := New("chain", 2)
	c.Append(H(0), CX(0, 1), M(1))
	h := BuildDAG(c).Heights()
	if h[0] != 2 || h[1] != 1 || h[2] != 0 {
		t.Fatalf("Heights = %v, want [2 1 0]", h)
	}
}

func TestHeightsBranching(t *testing.T) {
	// Gate 0 feeds two branches of different lengths; its height is the
	// longer one.
	c := New("branch", 3)
	c.Append(CX(0, 1), H(0), CX(1, 2), M(2))
	h := BuildDAG(c).Heights()
	// 0 -> 1 (H q0): length 1; 0 -> 2 -> 3: length 2.
	if h[0] != 2 {
		t.Fatalf("Heights[0] = %d, want 2", h[0])
	}
}

func TestTopologicalIsProgramOrder(t *testing.T) {
	d := BuildDAG(vqe4())
	order := d.Topological()
	for i, v := range order {
		if v != i {
			t.Fatalf("Topological() = %v, want identity order", order)
		}
	}
}

// Property: every DAG edge points forward in program order, and front
// layer is non-empty for non-empty circuits.
func TestQuickDAGForwardEdges(t *testing.T) {
	f := func(seed int64) bool {
		n := 3 + int(uint64(seed)%5)
		c := New("rand", n)
		s := uint64(seed)
		for i := 0; i < 30; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			a := int(s % uint64(n))
			s = s*6364136223846793005 + 1442695040888963407
			b := int(s % uint64(n))
			if a == b {
				c.Append(H(a))
			} else {
				c.Append(CX(a, b))
			}
		}
		d := BuildDAG(c)
		for i := 0; i < d.Len(); i++ {
			for _, su := range d.Succs(i) {
				if su <= i {
					return false
				}
			}
		}
		return len(d.FrontLayer()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package qasm

import (
	"fmt"
	"strings"

	"cloudqc/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0 source. Measures are emitted as
// "measure q[i] -> c[i]". Parameterized gates print their parameter with
// enough precision to round-trip through Parse.
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\ncreg c[%d];\n", c.NumQubits(), c.NumQubits())
	for _, g := range c.Gates() {
		switch g.Kind {
		case circuit.Measure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Qubits[0])
		case circuit.Two:
			if parameterized(g.Name) {
				fmt.Fprintf(&b, "%s(%.17g) q[%d],q[%d];\n", g.Name, g.Param, g.Qubits[0], g.Qubits[1])
			} else {
				fmt.Fprintf(&b, "%s q[%d],q[%d];\n", g.Name, g.Qubits[0], g.Qubits[1])
			}
		default:
			if parameterized(g.Name) {
				fmt.Fprintf(&b, "%s(%.17g) q[%d];\n", g.Name, g.Param, g.Qubits[0])
			} else {
				fmt.Fprintf(&b, "%s q[%d];\n", g.Name, g.Qubits[0])
			}
		}
	}
	return b.String()
}

func parameterized(name string) bool {
	switch name {
	case "rx", "ry", "rz", "cp", "cu1", "crz", "rzz", "u1", "p":
		return true
	}
	return false
}

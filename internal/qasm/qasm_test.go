package qasm

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cloudqc/internal/circuit"
)

const sample = `
OPENQASM 2.0;
include "qelib1.inc";
// a tiny bell pair
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseBell(t *testing.T) {
	c, err := Parse("bell", sample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 2 {
		t.Fatalf("NumQubits = %d, want 2", c.NumQubits())
	}
	oneQ, twoQ, ms := c.GateCount()
	if oneQ != 1 || twoQ != 1 || ms != 2 {
		t.Fatalf("GateCount = (%d,%d,%d), want (1,1,2)", oneQ, twoQ, ms)
	}
	if c.Name != "bell" {
		t.Fatalf("Name = %q", c.Name)
	}
}

func TestParseParameters(t *testing.T) {
	src := "qreg q[1]; rz(pi/2) q[0]; rx(-pi/4) q[0]; ry(2*pi) q[0]; rz(0.5) q[0];"
	c, err := Parse("params", src)
	if err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	wants := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi, 0.5}
	for i, want := range wants {
		if got := gs[i].Param; math.Abs(got-want) > 1e-12 {
			t.Fatalf("gate %d param = %v, want %v", i, got, want)
		}
	}
}

func TestParseCompoundParam(t *testing.T) {
	c, err := Parse("x", "qreg q[2]; cp(3*pi/8) q[0],q[1];")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Gates()[0].Param, 3*math.Pi/8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("param = %v, want %v", got, want)
	}
}

func TestParseWholeRegisterMeasure(t *testing.T) {
	c, err := Parse("m", "qreg q[3]; h q[0]; measure q -> c;")
	if err != nil {
		t.Fatal(err)
	}
	_, _, ms := c.GateCount()
	if ms != 3 {
		t.Fatalf("measures = %d, want 3", ms)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no qreg", "h q[0];"},
		{"bad register", "qreg q[2]; h r[0];"},
		{"out of range", "qreg q[2]; h q[5];"},
		{"unknown gate", "qreg q[2]; frobnicate q[0];"},
		{"same qubit cx", "qreg q[2]; cx q[1],q[1];"},
		{"bad param", "qreg q[1]; rz(banana) q[0];"},
		{"div zero", "qreg q[1]; rz(pi/0) q[0];"},
		{"double qreg", "qreg q[1]; qreg p[1];"},
		{"missing operands", "qreg q[1]; h;"},
		{"bad index", "qreg q[x];"},
		{"empty", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse("bad", tc.src); !errors.Is(err, ErrSyntax) {
				t.Fatalf("Parse(%q) err = %v, want ErrSyntax", tc.src, err)
			}
		})
	}
}

func TestParseIgnoresBarriersAndComments(t *testing.T) {
	src := "qreg q[2];\nbarrier q[0],q[1];\n// comment line\nh q[0]; // trailing\n"
	c, err := Parse("b", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestWriteContainsHeader(t *testing.T) {
	c := circuit.New("w", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	out := Write(c)
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[2];", "h q[0];", "cx q[0],q[1];"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Write output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c := circuit.New("rt", 3)
	c.Append(
		circuit.H(0),
		circuit.RZ(1, math.Pi/3),
		circuit.CX(0, 1),
		circuit.CP(1, 2, math.Pi/8),
		circuit.Swap(0, 2),
		circuit.M(2),
	)
	parsed, err := Parse("rt", Write(c))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != c.Len() || parsed.NumQubits() != c.NumQubits() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			parsed.Len(), parsed.NumQubits(), c.Len(), c.NumQubits())
	}
	for i, g := range c.Gates() {
		p := parsed.Gates()[i]
		if p.Name != g.Name || p.Kind != g.Kind || p.Qubits != g.Qubits {
			t.Fatalf("gate %d mismatch: %+v vs %+v", i, p, g)
		}
		if math.Abs(p.Param-g.Param) > 1e-12 {
			t.Fatalf("gate %d param %v vs %v", i, p.Param, g.Param)
		}
	}
}

// Property: random small circuits survive a Write/Parse round trip with
// identical structure.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(s>>33) % n
		}
		n := 2 + next(6)
		c := circuit.New("q", n)
		for i := 0; i < 25; i++ {
			a := next(n)
			b := next(n)
			switch next(4) {
			case 0:
				c.Append(circuit.H(a))
			case 1:
				c.Append(circuit.RZ(a, float64(next(100))/7))
			case 2:
				if a != b {
					c.Append(circuit.CX(a, b))
				}
			case 3:
				c.Append(circuit.M(a))
			}
		}
		parsed, err := Parse("q", Write(c))
		if err != nil {
			return false
		}
		if parsed.Len() != c.Len() {
			return false
		}
		for i, g := range c.Gates() {
			if parsed.Gates()[i].Qubits != g.Qubits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

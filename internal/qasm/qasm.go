// Package qasm reads and writes the OpenQASM 2.0 subset that QASMBench
// circuits use: one quantum register, one classical register, the standard
// gate set (h, x, y, z, s, t, tdg, rx, ry, rz, cx, cz, cp/cu1, swap) and
// measure statements. Parameters are parsed as floating point expressions
// of the form [-]k*pi[/m] or plain numbers, which covers the benchmark
// suite.
package qasm

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"cloudqc/internal/circuit"
)

// ErrSyntax wraps all parse failures; use errors.Is to detect them.
var ErrSyntax = errors.New("qasm: syntax error")

// Parse converts OpenQASM 2.0 source into a circuit. The circuit name is
// taken from the caller since QASM has no name construct.
func Parse(name, src string) (*circuit.Circuit, error) {
	p := &parser{name: name}
	for lineNum, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt); err != nil {
				return nil, fmt.Errorf("%w: line %d: %q: %v", ErrSyntax, lineNum+1, stmt, err)
			}
		}
	}
	if p.circ == nil {
		return nil, fmt.Errorf("%w: no qreg declaration", ErrSyntax)
	}
	return p.circ, nil
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		return line[:i]
	}
	return line
}

type parser struct {
	name string
	circ *circuit.Circuit
	qreg string
}

func (p *parser) statement(stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"), strings.HasPrefix(stmt, "barrier"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		return p.qregDecl(stmt)
	case strings.HasPrefix(stmt, "measure"):
		return p.measure(stmt)
	default:
		return p.gate(stmt)
	}
}

func (p *parser) qregDecl(stmt string) error {
	if p.circ != nil {
		return errors.New("multiple qreg declarations")
	}
	// qreg q[70]
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
	name, size, err := regRef(rest)
	if err != nil {
		return err
	}
	if size <= 0 {
		return fmt.Errorf("qreg size %d", size)
	}
	p.qreg = name
	p.circ = circuit.New(p.name, size)
	return nil
}

func (p *parser) measure(stmt string) error {
	if p.circ == nil {
		return errors.New("measure before qreg")
	}
	// measure q[3] -> c[3]   (also: measure q -> c)
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "measure"))
	parts := strings.SplitN(rest, "->", 2)
	src := strings.TrimSpace(parts[0])
	if src == p.qreg { // whole-register measure
		p.circ.MeasureAll()
		return nil
	}
	q, err := p.qubit(src)
	if err != nil {
		return err
	}
	p.circ.Append(circuit.M(q))
	return nil
}

func (p *parser) gate(stmt string) error {
	if p.circ == nil {
		return errors.New("gate before qreg")
	}
	head, args, err := splitGate(stmt)
	if err != nil {
		return err
	}
	gname, param, err := gateHead(head)
	if err != nil {
		return err
	}
	qs := make([]int, len(args))
	for i, a := range args {
		if qs[i], err = p.qubit(a); err != nil {
			return err
		}
	}
	g, err := makeGate(gname, param, qs)
	if err != nil {
		return err
	}
	p.circ.Append(g)
	return nil
}

// splitGate separates "rz(pi/2) q[0]" into head "rz(pi/2)" and operand
// list ["q[0]"].
func splitGate(stmt string) (head string, args []string, err error) {
	// The head ends at the first space that is outside parentheses.
	depth := 0
	cut := -1
	for i, r := range stmt {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ' ', '\t':
			if depth == 0 {
				cut = i
			}
		}
		if cut >= 0 {
			break
		}
	}
	if cut < 0 {
		return "", nil, errors.New("missing gate operands")
	}
	head = strings.TrimSpace(stmt[:cut])
	for _, a := range strings.Split(stmt[cut:], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, errors.New("empty operand")
		}
		args = append(args, a)
	}
	return head, args, nil
}

func gateHead(head string) (name string, param float64, err error) {
	if i := strings.IndexByte(head, '('); i >= 0 {
		if !strings.HasSuffix(head, ")") {
			return "", 0, errors.New("unbalanced parameter parentheses")
		}
		name = strings.TrimSpace(head[:i])
		param, err = evalExpr(head[i+1 : len(head)-1])
		if err != nil {
			return "", 0, err
		}
		return name, param, nil
	}
	return head, 0, nil
}

func makeGate(name string, param float64, qs []int) (circuit.Gate, error) {
	need := func(n int) error {
		if len(qs) != n {
			return fmt.Errorf("gate %s needs %d qubits, got %d", name, n, len(qs))
		}
		return nil
	}
	switch name {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "id", "u1", "u2", "u3", "rx", "ry", "rz", "p", "u":
		if err := need(1); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.Gate{Name: name, Kind: circuit.Single, Qubits: [2]int{qs[0], -1}, Param: param}, nil
	case "cx", "cz", "cy", "ch", "swap", "cp", "cu1", "crz", "rzz":
		if err := need(2); err != nil {
			return circuit.Gate{}, err
		}
		if qs[0] == qs[1] {
			return circuit.Gate{}, fmt.Errorf("gate %s with identical qubits %d", name, qs[0])
		}
		return circuit.Gate{Name: name, Kind: circuit.Two, Qubits: [2]int{qs[0], qs[1]}, Param: param}, nil
	default:
		return circuit.Gate{}, fmt.Errorf("unsupported gate %q", name)
	}
}

func (p *parser) qubit(ref string) (int, error) {
	name, idx, err := regRef(ref)
	if err != nil {
		return 0, err
	}
	if name != p.qreg {
		return 0, fmt.Errorf("unknown register %q", name)
	}
	if idx < 0 || idx >= p.circ.NumQubits() {
		return 0, fmt.Errorf("qubit index %d out of range", idx)
	}
	return idx, nil
}

// regRef parses "q[12]" into ("q", 12).
func regRef(s string) (string, int, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("malformed register reference %q", s)
	}
	name := strings.TrimSpace(s[:open])
	n, err := strconv.Atoi(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return "", 0, fmt.Errorf("malformed register index in %q", s)
	}
	return name, n, nil
}

// evalExpr evaluates the limited parameter grammar: optional sign, an
// optional coefficient, "pi", optional "/denominator", or a bare number.
// Examples: "pi/2", "-pi/4", "2*pi", "0.78539", "3*pi/8".
func evalExpr(s string) (float64, error) {
	s = strings.ReplaceAll(s, " ", "")
	if s == "" {
		return 0, errors.New("empty parameter")
	}
	sign := 1.0
	if s[0] == '-' {
		sign = -1
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	num, den := 1.0, 1.0
	if i := strings.IndexByte(s, '/'); i >= 0 {
		d, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("bad denominator in %q", s)
		}
		den = d
		s = s[:i]
	}
	if i := strings.IndexByte(s, '*'); i >= 0 {
		k, err := strconv.ParseFloat(s[:i], 64)
		if err != nil {
			return 0, fmt.Errorf("bad coefficient in %q", s)
		}
		num = k
		s = s[i+1:]
	}
	switch {
	case s == "pi":
		num *= math.Pi
	case s == "":
		return 0, errors.New("dangling operator")
	default:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad parameter %q", s)
		}
		num *= v
	}
	if den == 0 {
		return 0, errors.New("division by zero in parameter")
	}
	return sign * num / den, nil
}

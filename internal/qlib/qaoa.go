package qlib

import (
	"fmt"
	"math"
	"math/rand"

	"cloudqc/internal/circuit"
)

func init() {
	register("qaoa_n32", func() *circuit.Circuit { return QAOA(32, 2, 1) })
	register("qaoa_n64", func() *circuit.Circuit { return QAOA(64, 2, 1) })
	register("wstate_n36", func() *circuit.Circuit { return WState(36) })
	register("grover_n8", func() *circuit.Circuit { return Grover(8) })
}

// QAOA builds a MaxCut QAOA circuit over a random 3-regular-style graph
// on n vertices with the given number of rounds: Hadamard layer, then
// per round a ZZ cost block (2 CX each) for every problem-graph edge
// and an RX mixer layer. The seed pins the problem graph.
//
// Two-qubit gates: rounds × 2 × edges (edges ≈ 3n/2).
func QAOA(n, rounds int, seed int64) *circuit.Circuit {
	if n < 4 {
		panic(fmt.Sprintf("qlib: QAOA needs n >= 4, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("qaoa_n%d", n), n)
	// Problem graph: a ring plus ~n/2 random chords, giving mean degree
	// ~3 like the MaxCut instances QAOA papers use.
	type edge struct{ a, b int }
	var edges []edge
	for i := 0; i < n; i++ {
		edges = append(edges, edge{a: i, b: (i + 1) % n})
	}
	seen := map[[2]int]bool{}
	for len(seen) < n/2 {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || b == (a+1)%n || a == (b+1)%n {
			continue
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, edge{a: key[0], b: key[1]})
	}

	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	for r := 0; r < rounds; r++ {
		gamma := 0.4 + 0.2*float64(r)
		beta := 0.7 - 0.2*float64(r)
		for _, e := range edges {
			zz(c, e.a, e.b, gamma)
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.RX(q, 2*beta))
		}
	}
	c.MeasureAll()
	return c
}

// WState builds the n-qubit W state |100..0> + |010..0> + ... + |00..01>
// via the standard cascade of controlled rotations: qubit 0 starts in
// |1> and amplitude is passed down the register with RY + CX pairs.
func WState(n int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("qlib: W state needs n >= 2, got %d", n))
	}
	c := circuit.New(fmt.Sprintf("wstate_n%d", n), n)
	c.Append(circuit.X(0))
	for i := 0; i+1 < n; i++ {
		// Split amplitude between qubit i and i+1: a controlled-RY from
		// i onto i+1 (decomposed RY/CX/RY/CX), then CX back to unset i
		// when the excitation moved on.
		theta := thetaForSplit(n - i)
		c.Append(circuit.RY(i+1, theta/2))
		c.Append(circuit.CX(i, i+1))
		c.Append(circuit.RY(i+1, -theta/2))
		c.Append(circuit.CX(i, i+1))
		c.Append(circuit.CX(i+1, i))
	}
	c.MeasureAll()
	return c
}

// Grover builds Grover search on n = 2m qubits: m data qubits, m-1
// Toffoli-ladder ancillas and one oracle phase qubit. The oracle marks
// the all-ones string; one Grover iteration (oracle + diffusion) is
// applied — enough to exercise the multi-controlled structure that
// makes Grover circuits interaction-heavy.
func Grover(n int) *circuit.Circuit {
	if n < 6 || n%2 != 0 {
		panic(fmt.Sprintf("qlib: Grover needs even n >= 6, got %d", n))
	}
	m := n / 2
	c := circuit.New(fmt.Sprintf("grover_n%d", n), n)
	data := func(i int) int { return i }
	anc := func(i int) int { return m + i } // m-1 ancillas
	phase := n - 1

	c.Append(circuit.X(phase), circuit.H(phase))
	for i := 0; i < m; i++ {
		c.Append(circuit.H(data(i)))
	}
	mcx := func() {
		// Toffoli ladder: anc(0) = d0 AND d1; anc(i) = anc(i-1) AND d(i+1).
		toffoli(c, data(0), data(1), anc(0))
		for i := 1; i < m-1; i++ {
			toffoli(c, anc(i-1), data(i+1), anc(i))
		}
		c.Append(circuit.CX(anc(m-2), phase))
		for i := m - 2; i >= 1; i-- {
			toffoli(c, anc(i-1), data(i+1), anc(i))
		}
		toffoli(c, data(0), data(1), anc(0))
	}
	mcx() // oracle: phase kickback on all-ones
	// Diffusion: H X (multi-controlled Z via the same ladder) X H.
	for i := 0; i < m; i++ {
		c.Append(circuit.H(data(i)), circuit.X(data(i)))
	}
	mcx()
	for i := 0; i < m; i++ {
		c.Append(circuit.X(data(i)), circuit.H(data(i)))
	}
	for i := 0; i < m; i++ {
		c.Append(circuit.M(data(i)))
	}
	return c
}

// thetaForSplit returns the RY angle that keeps 1/remaining of the
// excitation probability on the current qubit and passes the rest on.
func thetaForSplit(remaining int) float64 {
	return 2 * math.Acos(math.Sqrt(1/float64(remaining)))
}

package qlib

import (
	"testing"

	"cloudqc/internal/circuit"
)

// TestFingerprintsDistinctAcrossLibrary is the plan cache's collision
// sanity check: every circuit in the generator library fingerprints
// uniquely, and rebuilding a circuit reproduces its fingerprint (so
// cache keys are stable across jobs drawing the same template).
func TestFingerprintsDistinctAcrossLibrary(t *testing.T) {
	seen := map[circuit.Fingerprint]string{}
	for _, name := range Names() {
		c, err := Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		fp := c.Fingerprint()
		if fp.Zero() {
			t.Fatalf("%s has the zero fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s and %s share %+v", prev, name, fp)
		}
		seen[fp] = name

		again, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		if again.Fingerprint() != fp {
			t.Fatalf("%s fingerprint not reproducible: %+v vs %+v", name, again.Fingerprint(), fp)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("library yielded only %d circuits", len(seen))
	}
}

package qlib

import (
	"fmt"
	"math"
	"math/rand"

	"cloudqc/internal/circuit"
)

func init() {
	register("qv_n100", func() *circuit.Circuit { return QV(100, 100, 1) })
}

// QV builds an n-qubit Quantum Volume model circuit with the given number
// of layers. Each layer draws a random qubit permutation, pairs adjacent
// entries, and applies a 3-CX SU(4) block to every pair.
//
// Two-qubit gates: layers × ⌊n/2⌋ × 3 — matching Table II exactly for
// qv_n100 (100 layers × 50 pairs × 3 = 15000). Depth: 7 per layer plus
// the measurement layer (701 for qv_n100, matching Table II).
//
// The seed makes the circuit reproducible; the registry pins seed 1.
func QV(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("qv_n%d", n), n)
	perm := make([]int, n)
	for l := 0; l < layers; l++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i+1 < n; i += 2 {
			angles := make([]float64, 8)
			for k := range angles {
				angles[k] = rng.Float64() * 2 * math.Pi
			}
			su4(c, perm[i], perm[i+1], angles)
		}
	}
	c.MeasureAll()
	return c
}

package qlib

import (
	"fmt"
	"math"

	"cloudqc/internal/circuit"
)

func init() {
	register("swap_test_n115", func() *circuit.Circuit { return SwapTest(115) })
	register("knn_n67", func() *circuit.Circuit { return KNN(67) })
	register("knn_n129", func() *circuit.Circuit { return KNN(129) })
}

// SwapTest builds an n-qubit swap test (n = 2m+1): qubit 0 is the
// ancilla; registers 1..m and m+1..2m are compared via m controlled
// swaps, each decomposed into 8 two-qubit gates (2 CX + a 6-CX Toffoli).
// Two-qubit gates: 8m — matching Table II exactly (115 qubits -> 456).
func SwapTest(n int) *circuit.Circuit {
	if n%2 == 0 {
		panic(fmt.Sprintf("qlib: swap test needs odd qubit count, got %d", n))
	}
	m := (n - 1) / 2
	c := circuit.New(fmt.Sprintf("swap_test_n%d", n), n)
	c.Append(circuit.H(0))
	for i := 0; i < m; i++ {
		fredkin(c, 0, 1+i, 1+m+i)
	}
	c.Append(circuit.H(0))
	c.Append(circuit.M(0))
	return c
}

// KNN builds an n-qubit quantum k-nearest-neighbor kernel (n = 2m+1):
// state preparation rotations load the query and reference vectors, then
// a swap test estimates their overlap. Two-qubit gates: 8m — matching
// Table II exactly (67 qubits -> 264, 129 qubits -> 512).
func KNN(n int) *circuit.Circuit {
	if n%2 == 0 {
		panic(fmt.Sprintf("qlib: knn needs odd qubit count, got %d", n))
	}
	m := (n - 1) / 2
	c := circuit.New(fmt.Sprintf("knn_n%d", n), n)
	// Amplitude-encoding rotations for the two feature vectors.
	for i := 0; i < m; i++ {
		c.Append(circuit.RY(1+i, math.Pi*float64(i+1)/float64(m+1)))
		c.Append(circuit.RY(1+m+i, math.Pi*float64(m-i)/float64(m+1)))
	}
	c.Append(circuit.H(0))
	for i := 0; i < m; i++ {
		fredkin(c, 0, 1+i, 1+m+i)
	}
	c.Append(circuit.H(0))
	c.Append(circuit.M(0))
	return c
}

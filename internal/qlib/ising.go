package qlib

import (
	"fmt"
	"math"

	"cloudqc/internal/circuit"
)

func init() {
	register("ising_n34", func() *circuit.Circuit { return Ising(34) })
	register("ising_n66", func() *circuit.Circuit { return Ising(66) })
	register("ising_n98", func() *circuit.Circuit { return Ising(98) })
}

// Ising builds one Trotter step of a transverse-field Ising chain
// simulation on n qubits: transverse-field rotations, nearest-neighbor ZZ
// couplings in an even/odd brickwork (2 CX each), and closing rotations.
// Two-qubit gates: 2(n-1) — matching Table II exactly. Depth is constant
// in n, as in the paper (the QASMBench artifact lists 16; this
// construction yields 12 — see EXPERIMENTS.md).
func Ising(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ising_n%d", n), n)
	const (
		dt = 0.1
		j  = 1.0
		hx = 2.0
	)
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.RX(q, 2*hx*dt))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.RZ(q, math.Pi/7))
	}
	for q := 0; q+1 < n; q += 2 { // even couplings
		zz(c, q, q+1, 2*j*dt)
	}
	for q := 1; q+1 < n; q += 2 { // odd couplings
		zz(c, q, q+1, 2*j*dt)
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.RX(q, 2*hx*dt))
	}
	c.MeasureAll()
	return c
}

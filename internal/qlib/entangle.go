package qlib

import (
	"fmt"

	"cloudqc/internal/circuit"
)

func init() {
	register("ghz_n127", func() *circuit.Circuit { return GHZ(127) })
	register("cat_n65", func() *circuit.Circuit { return Cat(65) })
	register("cat_n130", func() *circuit.Circuit { return Cat(130) })
	register("bv_n70", func() *circuit.Circuit { return BV(70, 36) })
	register("bv_n140", func() *circuit.Circuit { return BV(140, 72) })
	register("cc_n64", func() *circuit.Circuit { return CC(64) })
}

// GHZ builds the n-qubit GHZ state preparation: one Hadamard followed by
// a CX chain, then full measurement. Two-qubit gates: n-1; depth: n+1.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("ghz_n%d", n), n)
	c.Append(circuit.H(0))
	for i := 0; i+1 < n; i++ {
		c.Append(circuit.CX(i, i+1))
	}
	c.MeasureAll()
	return c
}

// Cat builds the n-qubit cat state circuit. Structurally identical to
// GHZ — QASMBench ships both and Table II lists both, so we keep two
// entries with distinct names.
func Cat(n int) *circuit.Circuit {
	c := GHZ(n)
	c.Name = fmt.Sprintf("cat_n%d", n)
	return c
}

// BV builds an n-qubit Bernstein–Vazirani circuit whose hidden string has
// the given number of ones, spread evenly over the n-1 data qubits. The
// last qubit is the phase-kickback ancilla. Two-qubit gates: ones;
// depth: ones + 4 (X prep, H layer, serialized CX chain on the ancilla,
// final H, measure).
func BV(n, ones int) *circuit.Circuit {
	if ones > n-1 {
		panic(fmt.Sprintf("qlib: BV ones=%d exceeds data qubits %d", ones, n-1))
	}
	c := circuit.New(fmt.Sprintf("bv_n%d", n), n)
	anc := n - 1
	c.Append(circuit.X(anc))
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	// Evenly spaced secret bits: data qubit i has a 1 when i*ones advances
	// past a multiple of n-1. Deterministic and spread over the register.
	data := n - 1
	for i := 0; i < data; i++ {
		if (i*ones)/data != ((i+1)*ones)/data {
			c.Append(circuit.CX(i, anc))
		}
	}
	for q := 0; q < data; q++ {
		c.Append(circuit.H(q))
	}
	for q := 0; q < data; q++ {
		c.Append(circuit.M(q))
	}
	return c
}

// CC builds the n-qubit counterfeit-coin finding circuit: n-1 coin qubits
// in superposition interact with one balance ancilla through a serialized
// CX chain, plus the final reveal CX. Two-qubit gates: n.
func CC(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("cc_n%d", n), n)
	anc := n - 1
	for q := 0; q < anc; q++ {
		c.Append(circuit.H(q))
	}
	c.Append(circuit.X(anc), circuit.H(anc))
	for q := 0; q < anc; q++ {
		c.Append(circuit.CX(q, anc))
	}
	c.Append(circuit.H(anc), circuit.M(anc))
	// Second round: re-weigh with the revealed parity.
	for q := 0; q < anc; q++ {
		c.Append(circuit.H(q))
	}
	c.Append(circuit.CX(0, anc))
	for q := 0; q < anc; q++ {
		c.Append(circuit.M(q))
	}
	return c
}

package qlib

import (
	"fmt"
	"math"

	"cloudqc/internal/circuit"
)

func init() {
	register("qft_n29", func() *circuit.Circuit { return QFT(29) })
	register("qft_n63", func() *circuit.Circuit { return QFT(63) })
	register("qft_n100", func() *circuit.Circuit { return QFT(100) })
	register("qft_n160", func() *circuit.Circuit { return QFT(160) })
}

// QFT builds the n-qubit quantum Fourier transform: for each qubit a
// Hadamard followed by controlled phase rotations against every later
// qubit, each decomposed into 2 CX gates (see cphase).
//
// Two-qubit gates: n(n-1) — matching Table II exactly for qft_n160
// (25440). The qft_n63 QASMBench artifact lists 9828, which includes
// extra compiled structure; our standard construction yields 3906. See
// EXPERIMENTS.md.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("qft_n%d", n), n)
	for i := 0; i < n; i++ {
		c.Append(circuit.H(i))
		for j := i + 1; j < n; j++ {
			cphase(c, j, i, math.Pi/math.Pow(2, float64(j-i)))
		}
	}
	c.MeasureAll()
	return c
}

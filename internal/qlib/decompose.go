package qlib

import (
	"math"

	"cloudqc/internal/circuit"
)

// AppendToffoli appends the standard 6-CX Toffoli decomposition with
// controls a, b and target c. Exported so semantic validation (simq)
// and downstream users can reuse the exact decomposition the generators
// emit.
func AppendToffoli(circ *circuit.Circuit, a, b, c int) { toffoli(circ, a, b, c) }

// AppendFredkin appends a controlled-SWAP (control a, swapping b and c)
// in the 8-gate CX-conjugated Toffoli construction the generators use.
func AppendFredkin(circ *circuit.Circuit, a, b, c int) { fredkin(circ, a, b, c) }

// toffoli appends the standard 6-CX decomposition of a Toffoli gate with
// controls a, b and target c.
func toffoli(circ *circuit.Circuit, a, b, c int) {
	circ.Append(
		circuit.H(c),
		circuit.CX(b, c),
		circuit.Tdg(c),
		circuit.CX(a, c),
		circuit.T(c),
		circuit.CX(b, c),
		circuit.Tdg(c),
		circuit.CX(a, c),
		circuit.T(b),
		circuit.T(c),
		circuit.H(c),
		circuit.CX(a, b),
		circuit.T(a),
		circuit.Tdg(b),
		circuit.CX(a, b),
	)
}

// fredkin appends a controlled-SWAP with control a swapping b and c,
// using the CX-conjugated Toffoli construction (8 two-qubit gates).
func fredkin(circ *circuit.Circuit, a, b, c int) {
	circ.Append(circuit.CX(c, b))
	toffoli(circ, a, b, c)
	circ.Append(circuit.CX(c, b))
}

// cphase appends a controlled phase rotation by theta between a and b,
// decomposed into 2 CX gates and single-qubit RZ rotations — the
// decomposition QASMBench's compiled circuits use, which is why
// qft_n160's two-qubit gate count is exactly n(n-1).
func cphase(circ *circuit.Circuit, a, b int, theta float64) {
	circ.Append(
		circuit.RZ(a, theta/2),
		circuit.CX(a, b),
		circuit.RZ(b, -theta/2),
		circuit.CX(a, b),
		circuit.RZ(b, theta/2),
	)
}

// zz appends exp(-i θ Z⊗Z) on a and b: CX, RZ, CX (2 two-qubit gates).
func zz(circ *circuit.Circuit, a, b int, theta float64) {
	circ.Append(
		circuit.CX(a, b),
		circuit.RZ(b, theta),
		circuit.CX(a, b),
	)
}

// su4 appends a parameterized two-qubit block in the standard 3-CX KAK
// template: single-qubit dressings around three CX gates. The angles are
// supplied by the caller so Quantum Volume layers stay deterministic.
func su4(circ *circuit.Circuit, a, b int, angles []float64) {
	at := func(i int) float64 {
		if i < len(angles) {
			return angles[i]
		}
		return math.Pi / 4
	}
	circ.Append(
		circuit.RY(a, at(0)), circuit.RY(b, at(1)),
		circuit.CX(a, b),
		circuit.RZ(a, at(2)), circuit.RY(b, at(3)),
		circuit.CX(a, b),
		circuit.RY(a, at(4)), circuit.RZ(b, at(5)),
		circuit.CX(a, b),
		circuit.RY(a, at(6)), circuit.RY(b, at(7)),
	)
}

package qlib

import (
	"fmt"
	"math"

	"cloudqc/internal/circuit"
)

func init() {
	register("qugan_n39", func() *circuit.Circuit { return QuGAN(39) })
	register("qugan_n71", func() *circuit.Circuit { return QuGAN(71) })
	register("qugan_n111", func() *circuit.Circuit { return QuGAN(111) })
}

// QuGAN builds an n-qubit quantum GAN circuit (n = 2m+1): a generator
// register (qubits 1..m) and a discriminator register (m+1..2m), each
// with two hardware-efficient ansatz layers (RY rotations + brickwork CX
// entanglers), two ancilla-coupling CX gates, and a swap test comparing
// the two registers through ancilla 0.
//
// Two-qubit gates: 2 layers × 2 registers × (m-1) + 2 + 8m = 12m - 2,
// matching Table II exactly (71 qubits -> 418, 111 qubits -> 658).
func QuGAN(n int) *circuit.Circuit {
	if n%2 == 0 {
		panic(fmt.Sprintf("qlib: qugan needs odd qubit count, got %d", n))
	}
	m := (n - 1) / 2
	c := circuit.New(fmt.Sprintf("qugan_n%d", n), n)
	gen := func(i int) int { return 1 + i }
	dis := func(i int) int { return 1 + m + i }
	for layer := 0; layer < 2; layer++ {
		theta := math.Pi / float64(3+layer)
		for i := 0; i < m; i++ {
			c.Append(circuit.RY(gen(i), theta))
			c.Append(circuit.RY(dis(i), -theta))
		}
		for _, reg := range [](func(int) int){gen, dis} {
			for i := 0; i+1 < m; i += 2 { // even brickwork
				c.Append(circuit.CX(reg(i), reg(i+1)))
			}
			for i := 1; i+1 < m; i += 2 { // odd brickwork
				c.Append(circuit.CX(reg(i), reg(i+1)))
			}
		}
	}
	// Couple the ancilla to both register heads before the overlap test.
	c.Append(circuit.H(0))
	c.Append(circuit.CX(0, gen(0)))
	c.Append(circuit.CX(0, dis(0)))
	for i := 0; i < m; i++ {
		fredkin(c, 0, gen(i), dis(i))
	}
	c.Append(circuit.H(0))
	c.Append(circuit.M(0))
	return c
}

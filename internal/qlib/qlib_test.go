package qlib

import (
	"testing"

	"cloudqc/internal/circuit"
)

func TestRegistryComplete(t *testing.T) {
	// Every Table II circuit must be buildable.
	for _, row := range Table2() {
		c, err := Build(row.Name)
		if err != nil {
			t.Fatalf("Build(%q): %v", row.Name, err)
		}
		if c.Name != row.Name {
			t.Fatalf("circuit name %q != registry name %q", c.Name, row.Name)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := Build("no_such_circuit"); err == nil {
		t.Fatal("Build of unknown name should error")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild of unknown name should panic")
		}
	}()
	MustBuild("no_such_circuit")
}

func TestQubitCountsMatchTable2(t *testing.T) {
	for _, row := range Table2() {
		c := MustBuild(row.Name)
		if c.NumQubits() != row.Qubits {
			t.Errorf("%s: qubits = %d, want %d", row.Name, c.NumQubits(), row.Qubits)
		}
	}
}

// exactTwoQubit lists circuits whose generated 2-qubit gate count must
// equal Table II exactly; the rest are approximations documented in
// EXPERIMENTS.md and checked within 10% below.
var exactTwoQubit = map[string]bool{
	"ghz_n127": true, "bv_n70": true, "bv_n140": true,
	"ising_n34": true, "ising_n66": true, "ising_n98": true,
	"cat_n65": true, "cat_n130": true,
	"swap_test_n115": true, "knn_n67": true, "knn_n129": true,
	"qugan_n71": true, "qugan_n111": true, "cc_n64": true,
	"qft_n160": true, "qv_n100": true,
}

func TestTwoQubitCountsExact(t *testing.T) {
	for _, row := range Table2() {
		if !exactTwoQubit[row.Name] {
			continue
		}
		c := MustBuild(row.Name)
		if got := c.TwoQubitGateCount(); got != row.TwoQubit {
			t.Errorf("%s: 2q gates = %d, want %d exactly", row.Name, got, row.TwoQubit)
		}
	}
}

func TestTwoQubitCountsApproximate(t *testing.T) {
	for _, row := range Table2() {
		if exactTwoQubit[row.Name] || row.Name == "qft_n63" {
			continue // qft_n63's QASMBench artifact is a compiled outlier
		}
		c := MustBuild(row.Name)
		got := float64(c.TwoQubitGateCount())
		want := float64(row.TwoQubit)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s: 2q gates = %v, want within 10%% of %v", row.Name, got, want)
		}
	}
}

func TestDepthsExactWhereStructural(t *testing.T) {
	// These constructions yield Table II depths exactly.
	for _, name := range []string{"ghz_n127", "bv_n70", "bv_n140", "cat_n65", "cat_n130", "qv_n100"} {
		var want int
		for _, row := range Table2() {
			if row.Name == name {
				want = row.Depth
			}
		}
		if got := MustBuild(name).Depth(); got != want {
			t.Errorf("%s: depth = %d, want %d", name, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"qv_n100", "qft_n63", "multiplier_n45", "vqe_uccsd_n28"} {
		a, b := MustBuild(name), MustBuild(name)
		if a.Len() != b.Len() {
			t.Fatalf("%s: non-deterministic gate count %d vs %d", name, a.Len(), b.Len())
		}
		for i := range a.Gates() {
			if a.Gates()[i] != b.Gates()[i] {
				t.Fatalf("%s: gate %d differs between builds", name, i)
			}
		}
	}
}

func TestGHZStructure(t *testing.T) {
	c := GHZ(5)
	// H, then chain CX(0,1)..CX(3,4), then 5 measures.
	if c.Len() != 1+4+5 {
		t.Fatalf("Len = %d", c.Len())
	}
	ig := c.InteractionGraph()
	for i := 0; i+1 < 5; i++ {
		if !ig.HasEdge(i, i+1) {
			t.Fatalf("missing chain edge %d-%d", i, i+1)
		}
	}
	if ig.NumEdges() != 4 {
		t.Fatalf("interaction edges = %d, want 4 (pure chain)", ig.NumEdges())
	}
}

func TestBVStarInteraction(t *testing.T) {
	c := BV(10, 5)
	ig := c.InteractionGraph()
	// All interactions touch the ancilla (qubit 9).
	for _, e := range ig.Edges() {
		if e.U != 9 && e.V != 9 {
			t.Fatalf("BV interaction %d-%d does not involve ancilla", e.U, e.V)
		}
	}
	if ig.NumEdges() != 5 {
		t.Fatalf("BV interactions = %d, want 5", ig.NumEdges())
	}
}

func TestBVTooManyOnesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BV with ones > n-1 should panic")
		}
	}()
	BV(4, 4)
}

func TestIsingChainInteraction(t *testing.T) {
	c := Ising(10)
	ig := c.InteractionGraph()
	if ig.NumEdges() != 9 {
		t.Fatalf("ising interactions = %d, want 9 (nearest neighbor)", ig.NumEdges())
	}
	for i := 0; i+1 < 10; i++ {
		if w := ig.Weight(i, i+1); w != 2 {
			t.Fatalf("D_%d,%d = %v, want 2 (two CX per coupling)", i, i+1, w)
		}
	}
}

func TestIsingDepthConstant(t *testing.T) {
	if Ising(34).Depth() != Ising(98).Depth() {
		t.Fatal("ising depth should be independent of n")
	}
}

func TestSwapTestCounts(t *testing.T) {
	c := SwapTest(11) // m = 5
	if got := c.TwoQubitGateCount(); got != 40 {
		t.Fatalf("2q gates = %d, want 8m = 40", got)
	}
	if c.NumQubits() != 11 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
}

func TestSwapTestEvenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even swap test should panic")
		}
	}()
	SwapTest(10)
}

func TestQuGANFormula(t *testing.T) {
	for _, m := range []int{5, 19, 35, 55} {
		n := 2*m + 1
		c := QuGAN(n)
		want := 12*m - 2
		if got := c.TwoQubitGateCount(); got != want {
			t.Fatalf("qugan n=%d: 2q = %d, want 12m-2 = %d", n, got, want)
		}
	}
}

func TestAdderFormula(t *testing.T) {
	c := Adder(10) // m = 4
	if got, want := c.TwoQubitGateCount(), 16*4+1; got != want {
		t.Fatalf("adder 2q = %d, want %d", got, want)
	}
}

func TestAdderOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd adder should panic")
		}
	}()
	Adder(9)
}

func TestMultiplierFormula(t *testing.T) {
	c := Multiplier(9) // m = 3
	if got, want := c.TwoQubitGateCount(), 12*9; got != want {
		t.Fatalf("multiplier 2q = %d, want 12m^2 = %d", got, want)
	}
}

func TestQFTCompleteInteraction(t *testing.T) {
	c := QFT(8)
	ig := c.InteractionGraph()
	// Every qubit pair interacts exactly twice (2 CX per cphase).
	if ig.NumEdges() != 8*7/2 {
		t.Fatalf("qft interaction edges = %d, want complete graph", ig.NumEdges())
	}
	for _, e := range ig.Edges() {
		if e.W != 2 {
			t.Fatalf("qft D_%d,%d = %v, want 2", e.U, e.V, e.W)
		}
	}
}

func TestQVLayerCount(t *testing.T) {
	c := QV(10, 10, 7)
	if got, want := c.TwoQubitGateCount(), 10*5*3; got != want {
		t.Fatalf("qv 2q = %d, want %d", got, want)
	}
	if got, want := c.Depth(), 71; got != want {
		t.Fatalf("qv depth = %d, want 7*layers+measure = %d", got, want)
	}
}

func TestQVSeedChangesCircuit(t *testing.T) {
	a, b := QV(10, 5, 1), QV(10, 5, 2)
	same := a.Len() == b.Len()
	if same {
		for i := range a.Gates() {
			if a.Gates()[i] != b.Gates()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should produce different QV circuits")
	}
}

func TestVQEHasTwoQubitStructure(t *testing.T) {
	c := VQEUCCSD(28)
	if c.TwoQubitGateCount() == 0 {
		t.Fatal("vqe should contain CX ladders")
	}
	if !c.InteractionGraph().Connected() {
		t.Fatal("vqe interaction graph should be connected")
	}
}

func TestAllGeneratorsProduceValidDAGs(t *testing.T) {
	for _, name := range Names() {
		c := MustBuild(name)
		d := circuit.BuildDAG(c)
		if d.Len() != c.Len() {
			t.Fatalf("%s: DAG size mismatch", name)
		}
		if c.Len() > 0 && len(d.FrontLayer()) == 0 {
			t.Fatalf("%s: empty front layer", name)
		}
	}
}

// Package qlib generates the quantum circuit workloads of the paper's
// evaluation (Table II): GHZ/cat states, Bernstein–Vazirani, Ising model
// simulation, swap test, quantum KNN, QuGAN, counterfeit-coin, ripple
// adders, multipliers, QFT, Quantum Volume, and VQE-UCCSD.
//
// The paper uses the QASMBench suite; these generators are from-scratch
// constructions of the same algorithms. Qubit counts always match the
// paper; two-qubit gate counts match exactly for the ghz, cat, bv, ising,
// swap_test, knn, qugan, qft_n160 and qv circuits and approximately
// (within ~10%) for the compiled arithmetic artifacts. EXPERIMENTS.md
// records the deltas.
//
// Every generator is deterministic: the same name always produces the
// same circuit.
package qlib

import (
	"fmt"
	"sort"
)

import "cloudqc/internal/circuit"

// Builder constructs a named benchmark circuit.
type Builder func() *circuit.Circuit

// registry maps benchmark names to constructors. Populated in init
// functions next to each generator.
var registry = map[string]Builder{}

func register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("qlib: duplicate benchmark %q", name))
	}
	registry[name] = b
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Build constructs the named benchmark circuit.
func Build(name string) (*circuit.Circuit, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("qlib: unknown benchmark %q (have %v)", name, Names())
	}
	return b(), nil
}

// MustBuild is Build for static names; it panics on unknown names.
func MustBuild(name string) *circuit.Circuit {
	c, err := Build(name)
	if err != nil {
		panic(err)
	}
	return c
}

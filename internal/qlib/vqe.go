package qlib

import (
	"fmt"
	"math"

	"cloudqc/internal/circuit"
)

func init() {
	register("vqe_uccsd_n28", func() *circuit.Circuit { return VQEUCCSD(28) })
	register("vqe_uccsd_n24", func() *circuit.Circuit { return VQEUCCSD(24) })
}

// VQEUCCSD builds an n-qubit VQE circuit with a UCCSD-style ansatz:
// Hartree–Fock preparation (X on the first n/2 qubits), a Hadamard basis
// layer, then single- and double-excitation blocks realized as CX ladders
// around an RZ rotation — the textbook Pauli-string exponentiation
// pattern that dominates UCCSD circuits.
func VQEUCCSD(n int) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("vqe_uccsd_n%d", n), n)
	occ := n / 2
	for q := 0; q < occ; q++ {
		c.Append(circuit.X(q))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	ladder := func(qs []int, theta float64) {
		for i := 0; i+1 < len(qs); i++ {
			c.Append(circuit.CX(qs[i], qs[i+1]))
		}
		c.Append(circuit.RZ(qs[len(qs)-1], theta))
		for i := len(qs) - 2; i >= 0; i-- {
			c.Append(circuit.CX(qs[i], qs[i+1]))
		}
	}
	// Single excitations: occupied i -> virtual occ+i. The CX ladder runs
	// through every intermediate qubit — the Jordan–Wigner parity string —
	// which is what makes UCCSD circuits interaction-dense.
	for i := 0; i < occ; i++ {
		qs := make([]int, 0, occ+1)
		for q := i; q <= occ+i; q++ {
			qs = append(qs, q)
		}
		ladder(qs, math.Pi/float64(4+i%3))
	}
	// Double excitations: (i, i+1) -> (a, a+1) for a sliding window.
	for i := 0; i+1 < occ; i += 2 {
		a := occ + i
		if a+1 < n {
			ladder([]int{i, i + 1, a, a + 1}, math.Pi/float64(5+i%4))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.H(q))
	}
	c.MeasureAll()
	return c
}

package qlib

import (
	"math"
	"testing"
)

func TestQAOAStructure(t *testing.T) {
	c := QAOA(16, 2, 1)
	if c.NumQubits() != 16 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	// Ring (16 edges) + 8 chords = 24 edges; 2 rounds x 2 CX per ZZ.
	want := 2 * 2 * 24
	if got := c.TwoQubitGateCount(); got != want {
		t.Fatalf("2q = %d, want %d", got, want)
	}
	if !c.InteractionGraph().Connected() {
		t.Fatal("QAOA problem graph should be connected (contains a ring)")
	}
}

func TestQAOADeterministicPerSeed(t *testing.T) {
	a, b := QAOA(16, 2, 5), QAOA(16, 2, 5)
	if a.Len() != b.Len() {
		t.Fatal("same seed must give same circuit")
	}
	c := QAOA(16, 2, 6)
	diff := a.Len() != c.Len()
	if !diff {
		for i := range a.Gates() {
			if a.Gates()[i] != c.Gates()[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should give different problem graphs")
	}
}

func TestQAOATooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QAOA(3) should panic")
		}
	}()
	QAOA(3, 1, 1)
}

func TestWStateStructure(t *testing.T) {
	c := WState(10)
	if c.NumQubits() != 10 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	// Per cascade step: 3 CX. 9 steps.
	if got := c.TwoQubitGateCount(); got != 27 {
		t.Fatalf("2q = %d, want 27", got)
	}
}

func TestWStateSplitAngles(t *testing.T) {
	// First split of an n=4 W state keeps 1/4 of the probability:
	// cos^2(theta/2) = 1/4.
	theta := thetaForSplit(4)
	keep := math.Cos(theta / 2)
	if math.Abs(keep*keep-0.25) > 1e-12 {
		t.Fatalf("cos^2(theta/2) = %v, want 0.25", keep*keep)
	}
}

func TestWStateTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WState(1) should panic")
		}
	}()
	WState(1)
}

func TestGroverStructure(t *testing.T) {
	c := Grover(8) // m = 4 data qubits
	if c.NumQubits() != 8 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	if c.TwoQubitGateCount() == 0 {
		t.Fatal("Grover needs Toffoli ladders")
	}
	if !c.InteractionGraph().Connected() {
		t.Fatal("Grover interaction graph should be connected")
	}
}

func TestGroverOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd Grover should panic")
		}
	}()
	Grover(7)
}

func TestNewFamiliesRegistered(t *testing.T) {
	for _, name := range []string{"qaoa_n32", "qaoa_n64", "wstate_n36", "grover_n8"} {
		if _, err := Build(name); err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
	}
}

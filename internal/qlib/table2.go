package qlib

// PaperRow is one row of Table II as printed in the paper: the QASMBench
// characteristics the authors report for each workload circuit.
type PaperRow struct {
	Name     string
	Qubits   int
	TwoQubit int
	Depth    int
}

// Table2 lists the paper's Table II verbatim (with the evident ising_n66
// qubit-count typo corrected from 34 to 66). The exp package compares
// these against the characteristics of the generated circuits.
func Table2() []PaperRow {
	return []PaperRow{
		{Name: "ghz_n127", Qubits: 127, TwoQubit: 126, Depth: 128},
		{Name: "bv_n70", Qubits: 70, TwoQubit: 36, Depth: 40},
		{Name: "bv_n140", Qubits: 140, TwoQubit: 72, Depth: 76},
		{Name: "ising_n34", Qubits: 34, TwoQubit: 66, Depth: 16},
		{Name: "ising_n66", Qubits: 66, TwoQubit: 130, Depth: 16},
		{Name: "ising_n98", Qubits: 98, TwoQubit: 194, Depth: 16},
		{Name: "cat_n65", Qubits: 65, TwoQubit: 64, Depth: 66},
		{Name: "cat_n130", Qubits: 130, TwoQubit: 129, Depth: 131},
		{Name: "swap_test_n115", Qubits: 115, TwoQubit: 456, Depth: 60},
		{Name: "knn_n67", Qubits: 67, TwoQubit: 264, Depth: 36},
		{Name: "knn_n129", Qubits: 129, TwoQubit: 512, Depth: 67},
		{Name: "qugan_n71", Qubits: 71, TwoQubit: 418, Depth: 72},
		{Name: "qugan_n111", Qubits: 111, TwoQubit: 658, Depth: 112},
		{Name: "cc_n64", Qubits: 64, TwoQubit: 64, Depth: 195},
		{Name: "adder_n64", Qubits: 64, TwoQubit: 455, Depth: 78},
		{Name: "adder_n118", Qubits: 118, TwoQubit: 845, Depth: 132},
		{Name: "multiplier_n45", Qubits: 45, TwoQubit: 2574, Depth: 462},
		{Name: "multiplier_n75", Qubits: 75, TwoQubit: 7350, Depth: 1300},
		{Name: "qft_n63", Qubits: 63, TwoQubit: 9828, Depth: 494},
		{Name: "qft_n160", Qubits: 160, TwoQubit: 25440, Depth: 1270},
		{Name: "qv_n100", Qubits: 100, TwoQubit: 15000, Depth: 701},
	}
}

package qlib

import (
	"fmt"

	"cloudqc/internal/circuit"
)

func init() {
	register("adder_n64", func() *circuit.Circuit { return Adder(64) })
	register("adder_n118", func() *circuit.Circuit { return Adder(118) })
	register("multiplier_n45", func() *circuit.Circuit { return Multiplier(45) })
	register("multiplier_n75", func() *circuit.Circuit { return Multiplier(75) })
}

// Adder builds the Cuccaro ripple-carry adder on n = 2m+2 qubits:
// m-bit operands a and b, a carry-in and a carry-out. Qubit layout:
// cin=0, then interleaved b[i]=1+2i, a[i]=2+2i, cout=n-1. The MAJ/UMA
// ladder uses Toffolis decomposed into 6 CX.
//
// Two-qubit gates: 16m + 1 (m MAJ + m UMA at 8 each, plus the carry-out
// CX). Table II lists 455 for adder_n64 (our 497) — the QASMBench
// artifact uses a partially optimized Toffoli; the ripple interaction
// structure is identical. See EXPERIMENTS.md.
func Adder(n int) *circuit.Circuit {
	if n%2 != 0 || n < 4 {
		panic(fmt.Sprintf("qlib: adder needs even n >= 4, got %d", n))
	}
	m := (n - 2) / 2
	c := circuit.New(fmt.Sprintf("adder_n%d", n), n)
	b := func(i int) int { return 1 + 2*i }
	a := func(i int) int { return 2 + 2*i }
	cout := n - 1
	// Load operands: a = 0101..., b = 0011... so the sum is non-trivial.
	for i := 0; i < m; i++ {
		if i%2 == 0 {
			c.Append(circuit.X(a(i)))
		}
		if i%4 < 2 {
			c.Append(circuit.X(b(i)))
		}
	}
	maj := func(x, y, z int) {
		c.Append(circuit.CX(z, y))
		c.Append(circuit.CX(z, x))
		toffoli(c, x, y, z)
	}
	uma := func(x, y, z int) {
		toffoli(c, x, y, z)
		c.Append(circuit.CX(z, x))
		c.Append(circuit.CX(x, y))
	}
	maj(0, b(0), a(0))
	for i := 1; i < m; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.Append(circuit.CX(a(m-1), cout))
	for i := m - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(0, b(0), a(0))
	for i := 0; i < m; i++ {
		c.Append(circuit.M(b(i)))
	}
	c.Append(circuit.M(cout))
	return c
}

// Multiplier builds a shift-and-add multiplier on n = 3m qubits: m-bit
// operands a (qubits 0..m-1) and b (m..2m-1) and an m-bit product
// accumulator p (2m..3m-1, product mod 2^m). Each partial product
// (a_i, b_j) contributes one Toffoli into the accumulator plus one
// carry-propagation Toffoli — 12 two-qubit gates per pair, m^2 pairs.
//
// Two-qubit gates: 12m^2 (45 qubits -> 2700 vs Table II 2574;
// 75 qubits -> 7500 vs 7350). The dense all-pairs interaction structure
// matches the compiled QASMBench multiplier. See EXPERIMENTS.md.
func Multiplier(n int) *circuit.Circuit {
	if n%3 != 0 || n < 6 {
		panic(fmt.Sprintf("qlib: multiplier needs n divisible by 3, >= 6, got %d", n))
	}
	m := n / 3
	c := circuit.New(fmt.Sprintf("multiplier_n%d", n), n)
	a := func(i int) int { return i }
	b := func(i int) int { return m + i }
	p := func(i int) int { return 2*m + i }
	// Load operands a = 1010..., b = 1100...
	for i := 0; i < m; i++ {
		if i%2 == 0 {
			c.Append(circuit.X(a(i)))
		}
		if i%4 >= 2 {
			c.Append(circuit.X(b(i)))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k := (i + j) % m
			toffoli(c, a(i), b(j), p(k))
			// Carry into the next accumulator bit, controlled on the
			// partial product just written.
			toffoli(c, b(j), p(k), p((k+1)%m))
		}
	}
	for i := 0; i < m; i++ {
		c.Append(circuit.M(p(i)))
	}
	return c
}

package trace

import (
	"reflect"
	"testing"
)

// TestArriveIdempotent: the first arrival pins Arrival; re-arrivals
// (a resume re-entering admission on another shard) return the same
// trace untouched.
func TestArriveIdempotent(t *testing.T) {
	r := New()
	tr := r.Arrive(3, 1, 10)
	if tr.ID != 3 || tr.Tenant != 1 || tr.Arrival != 10 {
		t.Fatalf("fresh trace %+v", tr)
	}
	again := r.Arrive(3, 1, 99)
	if again != tr {
		t.Fatal("re-arrival built a second trace")
	}
	if tr.Arrival != 10 {
		t.Fatalf("re-arrival moved Arrival to %v", tr.Arrival)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if r.Get(4) != nil {
		t.Fatal("Get on an unknown id returned a trace")
	}
}

// TestAttributionSumInvariant walks one job through a full scripted
// lifecycle — queue, place, EPR rounds with stall gaps, preempt,
// resume, settle — and checks every phase exactly, including the
// bitwise sum-to-JCT identity.
func TestAttributionSumInvariant(t *testing.T) {
	r := New()
	tr := r.Arrive(0, 2, 5)
	tr.Place(15, "wfq", 3.5, true, false) // queue = 10
	tr.Compiled(15, false, false)
	tr.Round(20, 2, 2, 1, 1)            // not attempting before: no stall yet
	tr.Round(28, 1, 1, 1, 2)            // network += 8
	tr.Round(30, 0, 0, 0, 0)            // network += 2, attempting ends
	tr.Round(40, 3, 3, 2, 1)            // idle 30→40 is NOT network
	tr.Preempt(46)                      // network += 6, suspension opens
	tr.Place(60, "wfq", 0, false, true) // suspended += 14
	tr.Compiled(60, true, true)
	tr.Round(70, 1, 1, 1, 1)
	r.Settle(tr, 100, 90) // trailing stall 70→90 closes at MaxFinish

	want := Attribution{
		JCT:       95, // 100 - 5
		Queue:     10,
		Compile:   0,
		Network:   8 + 2 + 6 + 20,
		Suspended: 14,
	}
	want.Local = want.JCT - want.Queue - want.Compile - want.Network - want.Suspended
	if tr.Attr != want {
		t.Fatalf("attribution %+v, want %+v", tr.Attr, want)
	}
	if sum := tr.Attr.Queue + tr.Attr.Compile + tr.Attr.Local + tr.Attr.Network + tr.Attr.Suspended; sum != tr.Attr.JCT {
		t.Fatalf("phases sum to %v, JCT %v", sum, tr.Attr.JCT)
	}
	if !tr.Done || tr.Failed || tr.Finished != 100 {
		t.Fatalf("settled trace %+v", tr)
	}
	if !tr.Placed() {
		t.Fatal("Placed() false after placement")
	}
	if tr.Admit.At != 15 || tr.Admit.Mode != "wfq" || tr.Admit.WFQStart != 3.5 || !tr.Admit.WFQ {
		t.Fatalf("admit span %+v", tr.Admit)
	}
	if len(tr.Compiles) != 2 || tr.Compiles[0].CacheHit || !tr.Compiles[1].CacheHit || !tr.Compiles[1].Resume {
		t.Fatalf("compile spans %+v", tr.Compiles)
	}
	if len(tr.Suspends) != 1 || tr.Suspends[0] != (SuspendSpan{From: 46, To: 60, Resumed: true}) {
		t.Fatalf("suspend spans %+v", tr.Suspends)
	}
	if tr.RoundsTotal != 4 || tr.RoundsDropped != 0 {
		t.Fatalf("rounds total/dropped %d/%d", tr.RoundsTotal, tr.RoundsDropped)
	}

	// Settle is final: a second settlement or failure must not
	// double-count into the tenant aggregate.
	r.Settle(tr, 200, 200)
	r.Fail(0, 200)
	tas := r.Tenants()
	if len(tas) != 1 || tas[0].Completed != 1 || tas[0].Failed != 0 {
		t.Fatalf("tenant aggregates %+v", tas)
	}
	if tas[0].JCT != want.JCT || tas[0].Suspended != want.Suspended {
		t.Fatalf("tenant sums %+v, want %+v", tas[0], want)
	}
}

// TestRoundRing: past the ring capacity the oldest spans are
// overwritten and counted, retained spans unroll oldest-first, and the
// network accumulation stays exact through the drops.
func TestRoundRing(t *testing.T) {
	const n = DefaultRoundCap + 40
	r := New()
	tr := r.Arrive(0, 0, 0)
	tr.Place(0, "fifo", 0, false, false)
	for i := 0; i < n; i++ {
		tr.Round(float64(i+1), 1, 2, 1, 1)
	}
	if tr.RoundsTotal != n || tr.RoundsDropped != n-DefaultRoundCap {
		t.Fatalf("total/dropped %d/%d, want %d/%d", tr.RoundsTotal, tr.RoundsDropped, n, n-DefaultRoundCap)
	}
	spans := tr.Rounds(nil)
	if len(spans) != DefaultRoundCap {
		t.Fatalf("retained %d spans, want %d", len(spans), DefaultRoundCap)
	}
	for i, sp := range spans {
		if want := float64(n - DefaultRoundCap + i + 1); sp.At != want {
			t.Fatalf("span %d at %v, want %v (not oldest-first)", i, sp.At, want)
		}
	}
	r.Settle(tr, float64(n), float64(n))
	// Every inter-round interval was an attempting stretch: the stall
	// accounting must not notice the ring wrapping.
	if tr.Attr.Network != float64(n-1) {
		t.Fatalf("network %v, want %v", tr.Attr.Network, float64(n-1))
	}
}

// TestFailUnplaced: a job that dies in the queue is all queue time,
// with the zero JCT the controller reports.
func TestFailUnplaced(t *testing.T) {
	r := New()
	r.Arrive(7, 4, 5)
	r.Fail(7, 30)
	tr := r.Get(7)
	if !tr.Done || !tr.Failed || tr.Finished != 30 {
		t.Fatalf("failed trace %+v", tr)
	}
	if tr.Attr != (Attribution{Queue: 25}) {
		t.Fatalf("failed attribution %+v, want queue-only 25", tr.Attr)
	}
	if tas := r.Tenants(); len(tas) != 1 || tas[0].Failed != 1 || tas[0].Completed != 0 {
		t.Fatalf("tenant aggregates %+v", tas)
	}
	// Failing an id the recorder never saw is a no-op, not a panic.
	r.Fail(99, 1)
}

// TestRecorderOrdering: Traces sorts by job id and Tenants by tenant
// id, and each tenant aggregate is exactly the sum of its traces.
func TestRecorderOrdering(t *testing.T) {
	r := New()
	for _, c := range []struct {
		id, tenant            int
		arrive, place, finish float64
	}{{2, 1, 0, 4, 20}, {0, 0, 1, 2, 9}, {1, 1, 2, 3, 30}} {
		tr := r.Arrive(c.id, c.tenant, c.arrive)
		tr.Place(c.place, "fifo", 0, false, false)
		r.Settle(tr, c.finish, c.finish)
	}
	trs := r.Traces()
	if len(trs) != 3 || trs[0].ID != 0 || trs[1].ID != 1 || trs[2].ID != 2 {
		t.Fatalf("trace order %v", []int{trs[0].ID, trs[1].ID, trs[2].ID})
	}
	tas := r.Tenants()
	if len(tas) != 2 || tas[0].Tenant != 0 || tas[1].Tenant != 1 {
		t.Fatalf("tenant order %+v", tas)
	}
	want := TenantAttribution{Tenant: 1, Completed: 2}
	for _, tr := range []*JobTrace{trs[1], trs[2]} {
		want.JCT += tr.Attr.JCT
		want.Queue += tr.Attr.Queue
		want.Local += tr.Attr.Local
	}
	if !reflect.DeepEqual(tas[1], want) {
		t.Fatalf("tenant 1 aggregate %+v, want %+v", tas[1], want)
	}
}

// Package trace records deterministic virtual-time execution spans for
// every job a controller runs: queue wait, the admission decision,
// compiles (plan-cache hit or miss), each EPR round the job
// participates in, preemption suspensions, cross-shard rehomes, and
// completion. All timestamps are virtual CX units taken from the
// controller's own clock, never the wall clock, so a trace is a pure
// function of the workload and the configuration: bit-identical across
// worker counts, shard counts, and WAL replay — a differential-testable
// property no wall-clock tracer has.
//
// From the raw spans each trace derives a JCT attribution: the job's
// completion time split into queue / compile / local-compute /
// network-stall / suspended phases that sum to the JCT exactly. Queue
// and the measured phases (network, suspended) accumulate closed
// virtual-time intervals; local compute is derived at settlement as
// JCT − queue − compile − network − suspended, which makes the
// sum-to-JCT invariant hold bitwise by construction instead of
// depending on floating-point telescoping. Compile is structurally
// zero in this model — placement and DAG contraction happen within the
// admission instant — but stays a first-class phase so the schema does
// not change if a compile-latency model ever lands.
//
// A Recorder is unsynchronized and inherits its controller's
// synchronization discipline, exactly like metrics.Recorder: a
// federation hands one shared recorder to every shard (shards step
// sequentially), and the service layer reads it under the same lock
// that drives the controller. The hot-path hook (JobTrace.Round) is
// allocation-free after a job's first participating round: round spans
// land in a fixed-capacity ring that overwrites its oldest entry,
// counting what it dropped, while the attribution scalars stay exact
// regardless of ring drops.
package trace

import "sort"

// DefaultRoundCap bounds each job's round-span ring. 256 rounds cover
// every qlib benchmark circuit at the paper's EPR success probability;
// longer executions overwrite their oldest round spans (counted in
// RoundsDropped) without losing attribution precision.
const DefaultRoundCap = 256

// AdmitSpan is the job's admission decision at its first placement:
// which admission mode ordered it and — under WFQ — the virtual start
// tag its tenant was billed from.
type AdmitSpan struct {
	// At is the placement instant (virtual CX).
	At float64 `json:"at"`
	// Mode names the admission mode that ordered the job.
	Mode string `json:"mode"`
	// WFQStart is the tenant's WFQ virtual start tag for this placement;
	// meaningful only when WFQ is true (resumes and non-WFQ modes are
	// never billed).
	WFQStart float64 `json:"wfq_virtual_start"`
	WFQ      bool    `json:"wfq"`
}

// CompileSpan is one successful compile: a placement plus remote-DAG
// resolution, either served from the plan cache or computed cold. A
// preempted job compiles again at every resume, so a trace may hold
// several.
type CompileSpan struct {
	At float64 `json:"at"`
	// CacheHit marks a plan-cache hit (memoized placement + DAG).
	CacheHit bool `json:"cache_hit"`
	// Resume marks a re-compile for a checkpoint resume placement.
	Resume bool `json:"resume"`
}

// RoundSpan is one EPR round the job participated in: how many remote
// gates were ready, how many EPR requests it submitted, how much of
// the communication budget it was granted, and the longest
// entanglement path (in hops) among its requests — >1 means swaps at
// intermediate QPUs.
type RoundSpan struct {
	At        float64 `json:"at"`
	Ready     int     `json:"ready"`
	Requested int     `json:"requested"`
	Granted   int     `json:"granted"`
	MaxHops   int     `json:"max_hops"`
}

// SuspendSpan is one checkpoint suspension: the job was preempted off
// the cloud at From and resumed onto a fresh placement at To. An
// unsettled job's last span may still be open (Resumed false).
type SuspendSpan struct {
	From    float64 `json:"from"`
	To      float64 `json:"to"`
	Resumed bool    `json:"resumed"`
}

// RehomeSpan is a federation rehoming decision: the preempted job's
// resume was routed from one shard to another (possibly the same), with
// the router's decision kind (affinity, spill, cold, or random).
type RehomeSpan struct {
	At   float64 `json:"at"`
	From int     `json:"from_shard"`
	To   int     `json:"to_shard"`
	Kind string  `json:"kind"`
}

// FaultSpan is one fault-layer event that touched the job: a QPU outage
// that evicted it, a shard drain that rehomed it, a dead-link
// route-around, or a retry-budget exhaustion that failed it.
type FaultSpan struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
}

// Attribution is a settled job's JCT decomposition in virtual CX
// units. Queue + Compile + Local + Network + Suspended == JCT holds
// bitwise for completed jobs: Local is derived at settlement as the
// remainder, so it absorbs any floating-point dust from the measured
// phases (clamp it when rendering fractions). Failed jobs carry only
// Queue (arrival to failure) and a zero JCT.
type Attribution struct {
	JCT       float64 `json:"jct"`
	Queue     float64 `json:"queue"`
	Compile   float64 `json:"compile"`
	Local     float64 `json:"local"`
	Network   float64 `json:"network"`
	Suspended float64 `json:"suspended"`
}

// JobTrace is one job's span record. The exported fields are the span
// tree the service serializes; the unexported fields are the live
// accumulation marks.
type JobTrace struct {
	ID      int
	Tenant  int
	Arrival float64
	// Finished is the settlement instant (completion or failure);
	// Done marks settlement, Failed how it settled.
	Finished float64
	Done     bool
	Failed   bool

	// Attr is the JCT attribution, final once Done.
	Attr Attribution

	// Admit is the first-placement admission decision (zero until the
	// job places).
	Admit AdmitSpan

	Compiles []CompileSpan
	Suspends []SuspendSpan
	Rehomes  []RehomeSpan
	Faults   []FaultSpan

	// RoundsTotal counts every round span recorded; RoundsDropped how
	// many of them the ring overwrote. The retained spans are the most
	// recent RoundsTotal-RoundsDropped.
	RoundsTotal   int
	RoundsDropped int

	// rounds is the fixed-capacity span ring; roundStart indexes its
	// oldest retained entry once the ring has wrapped.
	rounds     []RoundSpan
	roundStart int
	roundCap   int

	// lastMark is the last virtual instant the network accumulator
	// settled at; attempting is true while the job holds ready remote
	// gates awaiting EPR, i.e. the stretch from lastMark onward is
	// network stall.
	lastMark   float64
	attempting bool
	// placed marks the first placement (Queue is only charged once;
	// resume placements close suspensions instead).
	placed bool
}

// Place records a placement: the first one charges the queue phase and
// the admission decision, a resume placement closes the open
// suspension. Either way the network mark restarts here.
func (tr *JobTrace) Place(t float64, mode string, wfqStart float64, wfq, resumed bool) {
	if !tr.placed {
		tr.placed = true
		tr.Attr.Queue = t - tr.Arrival
		tr.Admit = AdmitSpan{At: t, Mode: mode, WFQStart: wfqStart, WFQ: wfq}
	}
	if resumed {
		if n := len(tr.Suspends); n > 0 && !tr.Suspends[n-1].Resumed {
			s := &tr.Suspends[n-1]
			s.To = t
			s.Resumed = true
			tr.Attr.Suspended += t - s.From
		}
	}
	tr.lastMark = t
	tr.attempting = false
}

// Placed reports whether the job has had its first placement (the
// Admit span is meaningful only once it has).
func (tr *JobTrace) Placed() bool { return tr.placed }

// Compiled records one successful compile.
func (tr *JobTrace) Compiled(t float64, cacheHit, resume bool) {
	tr.Compiles = append(tr.Compiles, CompileSpan{At: t, CacheHit: cacheHit, Resume: resume})
}

// Round is the hot-path hook, called once per EPR round tick for every
// active traced job. The interval since the previous mark is network
// stall iff the job was attempting EPR across it; rounds where the job
// held ready gates are recorded as spans in the ring.
func (tr *JobTrace) Round(t float64, ready, requested, granted, maxHops int) {
	if tr.attempting {
		tr.Attr.Network += t - tr.lastMark
	}
	tr.lastMark = t
	tr.attempting = ready > 0
	if ready == 0 {
		return
	}
	tr.RoundsTotal++
	span := RoundSpan{At: t, Ready: ready, Requested: requested, Granted: granted, MaxHops: maxHops}
	if len(tr.rounds) < tr.roundCap {
		tr.rounds = append(tr.rounds, span)
		return
	}
	tr.rounds[tr.roundStart] = span
	tr.roundStart = (tr.roundStart + 1) % len(tr.rounds)
	tr.RoundsDropped++
}

// Preempt records a checkpoint suspension starting at t: any open
// network stretch closes here and a suspension span opens.
func (tr *JobTrace) Preempt(t float64) {
	if tr.attempting {
		tr.Attr.Network += t - tr.lastMark
		tr.attempting = false
	}
	tr.lastMark = t
	tr.Suspends = append(tr.Suspends, SuspendSpan{From: t})
}

// Rehome records a federation rehoming decision for the open
// suspension.
func (tr *JobTrace) Rehome(at float64, from, to int, kind string) {
	tr.Rehomes = append(tr.Rehomes, RehomeSpan{At: at, From: from, To: to, Kind: kind})
}

// Fault records a fault-layer event touching the job (eviction, drain,
// route-around, retry exhaustion). Attribution is unaffected: an
// eviction's suspension opens through Preempt as usual.
func (tr *JobTrace) Fault(t float64, kind string) {
	tr.Faults = append(tr.Faults, FaultSpan{At: t, Kind: kind})
}

// Rounds appends the retained round spans, oldest first, to dst and
// returns it. The ring itself is never exposed.
func (tr *JobTrace) Rounds(dst []RoundSpan) []RoundSpan {
	n := len(tr.rounds)
	for i := 0; i < n; i++ {
		dst = append(dst, tr.rounds[(tr.roundStart+i)%n])
	}
	return dst
}

// TenantAttribution is one tenant's exact attribution aggregate: the
// per-phase sums over every settled trace of that tenant. Because each
// addend's phases sum to its JCT bitwise, the aggregate's phases sum
// to the aggregate JCT the same way — which is what lets /v1/stats be
// differential-tested against the per-job traces.
type TenantAttribution struct {
	Tenant    int     `json:"tenant"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	JCT       float64 `json:"jct"`
	Queue     float64 `json:"queue"`
	Compile   float64 `json:"compile"`
	Local     float64 `json:"local"`
	Network   float64 `json:"network"`
	Suspended float64 `json:"suspended"`
}

func (ta *TenantAttribution) add(tr *JobTrace) {
	if tr.Failed {
		ta.Failed++
	} else {
		ta.Completed++
	}
	ta.JCT += tr.Attr.JCT
	ta.Queue += tr.Attr.Queue
	ta.Compile += tr.Attr.Compile
	ta.Local += tr.Attr.Local
	ta.Network += tr.Attr.Network
	ta.Suspended += tr.Attr.Suspended
}

// Recorder collects the traces of one execution stack: a controller, a
// live controller, or a whole federation (every shard records into the
// one shared recorder, so a trace survives cross-shard rehoming
// intact). Traces are retained for the recorder's lifetime, like the
// service layer's results.
type Recorder struct {
	roundCap int
	byID     map[int]*JobTrace
	tenants  map[int]*TenantAttribution
}

// New builds an empty recorder with the default round-span ring
// capacity.
func New() *Recorder {
	return &Recorder{
		roundCap: DefaultRoundCap,
		byID:     make(map[int]*JobTrace),
		tenants:  make(map[int]*TenantAttribution),
	}
}

// Arrive opens (or, for a resume arrival re-entering admission on
// another shard, returns) the job's trace. The first arrival pins
// Arrival; later calls for the same id are no-ops so cross-shard
// resumes keep the original queue accounting.
func (r *Recorder) Arrive(id, tenant int, at float64) *JobTrace {
	if tr, ok := r.byID[id]; ok {
		return tr
	}
	tr := &JobTrace{ID: id, Tenant: tenant, Arrival: at, roundCap: r.roundCap}
	r.byID[id] = tr
	return tr
}

// Get returns the job's trace, or nil when the id was never recorded
// (e.g. a controller driven without arrival events).
func (r *Recorder) Get(id int) *JobTrace { return r.byID[id] }

// Settle finalizes a completed trace: the trailing network stretch
// closes at maxFinish (the last remote gate's completion — the local
// tail after it is local compute), and local compute is derived so the
// attribution sums to the JCT bitwise.
func (r *Recorder) Settle(tr *JobTrace, finished, maxFinish float64) {
	if tr == nil || tr.Done {
		return
	}
	if tr.attempting {
		if maxFinish > tr.lastMark {
			tr.Attr.Network += maxFinish - tr.lastMark
		}
		tr.attempting = false
	}
	tr.Finished = finished
	tr.Done = true
	tr.Attr.JCT = finished - tr.Arrival
	tr.Attr.Local = tr.Attr.JCT - tr.Attr.Queue - tr.Attr.Compile - tr.Attr.Network - tr.Attr.Suspended
	r.tenant(tr.Tenant).add(tr)
}

// Fail finalizes a failed trace: the job never completed, so only the
// wait from arrival to the failure instant is attributed (as queue
// time for a never-placed job) and the JCT stays zero, matching the
// result the controller reports.
func (r *Recorder) Fail(id int, at float64) {
	tr := r.byID[id]
	if tr == nil || tr.Done {
		return
	}
	tr.Finished = at
	tr.Done = true
	tr.Failed = true
	if !tr.placed {
		tr.Attr.Queue = at - tr.Arrival
	}
	tr.attempting = false
	r.tenant(tr.Tenant).add(tr)
}

func (r *Recorder) tenant(id int) *TenantAttribution {
	ta, ok := r.tenants[id]
	if !ok {
		ta = &TenantAttribution{Tenant: id}
		r.tenants[id] = ta
	}
	return ta
}

// Len reports how many traces the recorder holds.
func (r *Recorder) Len() int { return len(r.byID) }

// Traces returns every trace ordered by job id.
func (r *Recorder) Traces() []*JobTrace {
	out := make([]*JobTrace, 0, len(r.byID))
	for _, tr := range r.byID {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Tenants returns the per-tenant attribution aggregates ordered by
// tenant id.
func (r *Recorder) Tenants() []TenantAttribution {
	out := make([]TenantAttribution, 0, len(r.tenants))
	for _, ta := range r.tenants {
		out = append(out, *ta)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Tenant < out[k].Tenant })
	return out
}

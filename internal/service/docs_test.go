package service

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudqc/internal/core"
)

// TestAPIDocCoverage pins docs/API.md to the routes the server actually
// registers: every "METHOD PATTERN" pair from the routes table must
// appear verbatim in the doc, so adding an endpoint without documenting
// it fails CI. The fabricated-route control proves the check has teeth.
func TestAPIDocCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md unreadable: %v", err)
	}
	text := string(doc)
	srv, _, _, _, _ := newWALServer(t, "")
	routes := srv.Routes()
	if len(routes) < 7 {
		t.Fatalf("routes table lists %d endpoints, want at least 7", len(routes))
	}
	for _, rt := range routes {
		if sig := rt.Method + " " + rt.Pattern; !strings.Contains(text, sig) {
			t.Errorf("docs/API.md does not document %q", sig)
		}
	}
	// Control: the detection must be able to fail. If this fabricated
	// route reads as documented, the Contains check above is vacuous.
	if strings.Contains(text, "GET /v1/borrowed-time") {
		t.Fatal("docs/API.md contains the fabricated control route; coverage check is vacuous")
	}
	// The error-code catalogue the doc promises must cover what the
	// handlers can actually return.
	for _, code := range []string{"202", "400", "404", "409", "429", "500", "503"} {
		if !strings.Contains(text, code) {
			t.Errorf("docs/API.md never mentions status code %s", code)
		}
	}
}

// TestStatsFreshDaemon is the NaN regression test: a daemon that has
// settled zero jobs has no mean JCT and no attainment, which must reach
// the wire as JSON null — not "NaN", which json.Marshal would reject,
// and not 0, which would read as a perfect-but-idle stream.
func TestStatsFreshDaemon(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 7, core.FIFOMode)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats on fresh daemon: %d", resp.StatusCode)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("fresh-daemon stats is not valid JSON: %v", err)
	}
	body := string(raw)
	if strings.Contains(body, "NaN") {
		t.Fatalf("fresh-daemon stats leaks NaN:\n%s", body)
	}
	if !strings.Contains(strings.ReplaceAll(body, " ", ""), `"attainment":null`) {
		t.Fatalf("fresh-daemon stats should carry \"attainment\":null, got:\n%s", body)
	}

	// The typed response must round-trip the nulls back to NaN.
	var stats StatsResponse
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.SLO.Attainment.IsNull() {
		t.Fatalf("attainment decoded as %v, want null/NaN", float64(stats.SLO.Attainment))
	}
	if !math.IsNaN(float64(stats.SLO.Attainment)) {
		t.Fatal("IsNull without NaN payload")
	}
}

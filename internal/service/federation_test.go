package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/place"
)

// newFederationServer builds a server over an n-shard federation of
// identical random clouds, with the deterministic fake clock.
func newFederationServer(t *testing.T, cfg Config, shards int, seed int64, mode core.Mode) (*Server, *httptest.Server, *fakeClock, *fed.Federation) {
	t.Helper()
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	clouds := make([]*cloud.Cloud, shards)
	for i := range clouds {
		clouds[i] = cloud.NewRandom(10, 0.3, 20, 5, 1)
	}
	f, err := fed.New(fed.Config{
		Shard: core.Config{
			Placer: place.NewCloudQC(pCfg),
			Mode:   mode,
			Seed:   seed,
		},
		Clouds: clouds,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	cfg.Federation = f
	cfg.Now = clock.now
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1000
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, clock, f
}

// TestServiceFederationStats: a multi-shard server reports the
// federated view — shard count, routing counters that account for
// every accepted job, per-shard breakdowns on /v1/stats and
// /v1/cluster that sum to the aggregates, and shard-tagged job ids.
func TestServiceFederationStats(t *testing.T) {
	const shards = 3
	_, ts, clock, _ := newFederationServer(t, Config{}, shards, 7, core.FIFOMode)

	circuits := []string{"qft_n29", "qugan_n39", "ghz_n127", "cat_n65", "qft_n63", "cat_n130"}
	ids := make(map[int]bool)
	for i, name := range circuits {
		var jr JobResponse
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: i % 2, Circuit: name}, &jr)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: %d", name, code)
		}
		if ids[jr.ID] {
			t.Fatalf("duplicate job id %d", jr.ID)
		}
		ids[jr.ID] = true
		clock.advance(50 * time.Millisecond)
	}

	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	fw := stats.Federation
	if fw.Shards != shards || fw.Routing != "affinity" {
		t.Fatalf("federation view = %+v, want %d shards under affinity routing", fw, shards)
	}
	routed := fw.Router.AffinityHits + fw.Router.Spills + fw.Router.Cold + fw.Router.Random
	if routed != int64(len(circuits)) {
		t.Fatalf("router counters %+v account for %d jobs, want %d", fw.Router, routed, len(circuits))
	}
	if fw.Router.Random != 0 {
		t.Fatalf("affinity routing drew from the random arm: %+v", fw.Router)
	}
	if len(fw.PerShard) != shards {
		t.Fatalf("per-shard breakdown has %d entries, want %d", len(fw.PerShard), shards)
	}
	submitted, misses := 0, int64(0)
	for i, sw := range fw.PerShard {
		if sw.Shard != i {
			t.Fatalf("per_shard[%d].shard = %d", i, sw.Shard)
		}
		submitted += sw.Snapshot.Pending + sw.Snapshot.Queued + sw.Snapshot.Active +
			sw.Snapshot.Completed + sw.Snapshot.Failed
		misses += sw.PlanCache.Misses
	}
	if submitted != len(circuits) {
		t.Fatalf("shard snapshots account for %d jobs, want %d", submitted, len(circuits))
	}
	if misses != stats.PlanCache.Misses {
		t.Fatalf("per-shard misses sum %d != merged %d", misses, stats.PlanCache.Misses)
	}

	var cr ClusterResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cluster", nil, &cr); code != http.StatusOK {
		t.Fatal("cluster failed")
	}
	if len(cr.Shards) != shards || len(cr.QPUs) != shards*10 {
		t.Fatalf("cluster view: %d shards, %d QPUs, want %d and %d",
			len(cr.Shards), len(cr.QPUs), shards, shards*10)
	}
	total := 0
	for _, sc := range cr.Shards {
		total += len(sc.QPUs)
	}
	if total != len(cr.QPUs) {
		t.Fatalf("per-shard QPU lists (%d) disagree with the concatenation (%d)", total, len(cr.QPUs))
	}
}

// TestServiceFederationQuotaIsolation: the in-flight quota is
// per-tenant and federation-wide — a tenant cannot dodge it by having
// its jobs land on different shards, and one tenant's quota exhaustion
// never throttles another.
func TestServiceFederationQuotaIsolation(t *testing.T) {
	_, ts, clock, _ := newFederationServer(t, Config{MaxInFlight: 2}, 2, 5, core.FIFOMode)
	submit := func(tenant int) (int, ErrorResponse, JobResponse) {
		var raw json.RawMessage
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: tenant, Circuit: "ghz_n127"}, &raw)
		var e ErrorResponse
		var jr JobResponse
		if code == http.StatusAccepted {
			_ = json.Unmarshal(raw, &jr)
		} else {
			_ = json.Unmarshal(raw, &e)
		}
		return code, e, jr
	}
	// ghz_n127 needs 127 qubits; a 10-QPU × 20-computing shard holds
	// one at a time, so two back-to-back submissions occupy both
	// shards and the tenant's quota fills exactly at the shard count.
	for i := 0; i < 2; i++ {
		if code, e, _ := submit(0); code != http.StatusAccepted {
			t.Fatalf("tenant 0 submit %d: %d %+v", i, code, e)
		}
		clock.advance(10 * time.Millisecond)
	}
	code, e, _ := submit(0)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota cross-shard submit: %d, want 429", code)
	}
	if e.RetryAfterSeconds <= 0 {
		t.Fatalf("429 without retry hint: %+v", e)
	}
	// Tenant 1 is unaffected by tenant 0's quota.
	if code, e, _ := submit(1); code != http.StatusAccepted {
		t.Fatalf("tenant 1 submit: %d %+v", code, e)
	}
}

// TestServiceFederationConcurrent hammers a 3-shard server from
// parallel tenants with tight rate limits — the race lane
// (go test -race) exercises the mutex over the whole federation, and
// every 429 must carry coherent Retry-After arithmetic
// (header = ceil(retry_after_seconds) ≥ 1).
func TestServiceFederationConcurrent(t *testing.T) {
	srv, ts, _, f := newFederationServer(t,
		Config{TimeScale: 100000, Rate: 500, Burst: 3, MaxInFlight: 6}, 3, 17, core.WFQMode)

	var mu sync.Mutex
	accepted, rejected := 0, 0
	var wg sync.WaitGroup
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				body, _ := json.Marshal(SubmitRequest{Tenant: tenant, Circuit: "qft_n29", DeadlineSlack: 50})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					mu.Lock()
					accepted++
					mu.Unlock()
				case http.StatusTooManyRequests:
					var e ErrorResponse
					if err := json.Unmarshal(data, &e); err != nil || e.RetryAfterSeconds <= 0 {
						t.Errorf("tenant %d: 429 body %q lacks retry_after_seconds", tenant, data)
						return
					}
					hdr, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil || hdr != int(math.Ceil(e.RetryAfterSeconds)) || hdr < 1 {
						t.Errorf("tenant %d: Retry-After %q vs retry_after_seconds %v",
							tenant, resp.Header.Get("Retry-After"), e.RetryAfterSeconds)
						return
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("tenant %d submit %d: %d %s", tenant, i, resp.StatusCode, data)
					return
				}
			}
		}(tenant)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				for _, path := range []string{"/v1/stats", "/v1/cluster"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// Post-drain: every accepted job settled, rejected count agrees,
	// and new submissions bounce with the typed-drained 409.
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("post-drain stats failed")
	}
	if stats.Submitted != accepted || stats.Settled != accepted || stats.Rejected != rejected {
		t.Fatalf("stats %+v, want %d submitted+settled and %d rejected", stats, accepted, rejected)
	}
	for _, res := range f.Results() {
		if !f.Status(res.Job.ID).Settled() {
			t.Fatalf("job %d unsettled after drain", res.Job.ID)
		}
	}
	var e ErrorResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "qft_n29"}, &e); code != http.StatusConflict {
		t.Fatalf("post-drain submit: %d, want 409", code)
	}
}

// TestServiceMapsErrDrained is the regression lock for the typed
// drained error: a federation drained out-of-band (not via
// Server.Drain) surfaces core.ErrDrained from Submit, and the server
// maps it to 409 Conflict rather than a 500.
func TestServiceMapsErrDrained(t *testing.T) {
	srv, ts, _, f := newFederationServer(t, Config{}, 2, 3, core.FIFOMode)
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "qft_n29"}, &e)
	if code != http.StatusConflict {
		t.Fatalf("submit to externally drained federation: %d (%+v), want 409", code, e)
	}
	// The server's own Drain still reports the condition cleanly.
	if _, err := srv.Drain(); err == nil {
		t.Fatal("drain of a drained federation should error")
	}
}

// TestServiceFederationShardTaggedIDs: job ids handed out over HTTP
// are shard-tagged (id mod shards = routed shard) and resolvable via
// GET /v1/jobs/{id} regardless of which shard runs them.
func TestServiceFederationShardTaggedIDs(t *testing.T) {
	const shards = 2
	_, ts, clock, f := newFederationServer(t, Config{}, shards, 9, core.FIFOMode)
	var got []int
	for i := 0; i < 4; i++ {
		var jr JobResponse
		// Wide circuits force spillover across shards.
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 0, Circuit: "ghz_n127"}, &jr)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		got = append(got, jr.ID)
		clock.advance(10 * time.Millisecond)
	}
	for _, id := range got {
		shard, ok := f.ShardOf(id)
		if !ok {
			t.Fatalf("job %d has no shard", id)
		}
		if id%shards != shard {
			t.Fatalf("job %d on shard %d: id mod %d = %d", id, shard, shards, id%shards)
		}
		var jr JobResponse
		if code, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil, &jr); code != http.StatusOK || jr.ID != id {
			t.Fatalf("GET job %d: %d %+v", id, code, jr)
		}
	}
}

package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudqc/internal/core"
)

// parseExposition splits a Prometheus text exposition into HELP/TYPE
// headers and samples, failing on any line that fits neither shape.
func parseExposition(t *testing.T, body string) (helps, types map[string]string, samples map[string][]float64) {
	t.Helper()
	helps, types = map[string]string{}, map[string]string{}
	samples = map[string][]float64{}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed HELP line %q", line)
			}
			helps[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[name] = typ
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return helps, types, samples
}

// TestMetricsEndpoint scrapes /metrics after real traffic — including a
// WAL, a quota-rejected submission, and settled jobs — and verifies the
// exposition parses, every declared family is present with HELP and
// TYPE, every sample belongs to a declared family, and the load-bearing
// counters carry the values the run produced.
func TestMetricsEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srv, clock, _, _, _ := newWALServer(t, path)
	driveWALStream(t, srv, clock)
	clock.advance(2 * time.Second)
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	helps, types, samples := parseExposition(t, rw.Body.String())

	for _, fam := range metricFamilies {
		if _, ok := helps[fam.name]; !ok {
			t.Errorf("family %s missing HELP", fam.name)
		}
		if got := types[fam.name]; got != fam.typ {
			t.Errorf("family %s has TYPE %q, want %q", fam.name, got, fam.typ)
		}
	}
	for name := range samples {
		if _, ok := types[name]; !ok {
			t.Errorf("sample %s has no TYPE header", name)
		}
	}

	want := map[string]float64{
		"cloudqcd_jobs_submitted_total": 12,
		"cloudqcd_jobs_settled_total":   12,
		"cloudqcd_backlog":              0,
		"cloudqcd_wal_enabled":          1,
	}
	for name, v := range want {
		got, ok := samples[name]
		if !ok || len(got) != 1 || got[0] != v {
			t.Errorf("%s = %v, want [%g]", name, got, v)
		}
	}
	// One fsync per accepted submission, each with measurable latency.
	if got := samples["cloudqcd_wal_fsyncs_total"]; len(got) != 1 || got[0] != 12 {
		t.Errorf("cloudqcd_wal_fsyncs_total = %v, want [12]", got)
	}
	if got := samples["cloudqcd_wal_fsync_seconds_total"]; len(got) != 1 || got[0] <= 0 {
		t.Errorf("cloudqcd_wal_fsync_seconds_total = %v, want one positive sample", got)
	}
	if got := samples["cloudqcd_wal_records_total"]; len(got) != 1 || got[0] < 24 {
		t.Errorf("cloudqcd_wal_records_total = %v, want at least 24 (12 jobs + their steps)", got)
	}
}

// TestMetricsDocCoverage pins /metrics to docs/OPERATIONS.md in both
// directions: every exposed family is documented in the metrics
// reference table, and every cloudqcd_* name the doc mentions is still
// served. Renaming a series without updating the operator doc — or
// documenting a ghost — fails here.
func TestMetricsDocCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md unreadable: %v", err)
	}
	text := string(doc)
	declared := map[string]bool{}
	for _, fam := range metricFamilies {
		declared[fam.name] = true
		if !strings.Contains(text, fam.name) {
			t.Errorf("docs/OPERATIONS.md does not document metric %s", fam.name)
		}
	}
	for _, name := range regexp.MustCompile(`cloudqcd_[a-z0-9_]+`).FindAllString(text, -1) {
		if !declared[name] {
			t.Errorf("docs/OPERATIONS.md documents %s, which /metrics does not serve", name)
		}
	}
}

// TestLoadShedding drives the two-watermark overload ladder with a
// frozen clock (submissions pile up as pending): past DegradeBacklog
// admission degrades WFQ→FIFO, past ShedBacklog submissions bounce with
// 503 + Retry-After, and once the backlog drains both effects unwind.
func TestLoadShedding(t *testing.T) {
	srv, ts, clock := newTestServer(t, Config{DegradeBacklog: 2, ShedBacklog: 4}, 7, core.WFQMode)
	degradedAt := func() float64 {
		_, _, samples := parseExposition(t, rawGET(t, srv, "/metrics"))
		v := samples["cloudqcd_admission_degraded"]
		if len(v) != 1 {
			t.Fatalf("cloudqcd_admission_degraded samples %v", v)
		}
		return v[0]
	}

	// Backlogs 0..3 at submission time: accepted; degrade trips at 2.
	for i := 0; i < 4; i++ {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: i % 2, Priority: 1, QASM: ghz3QASM}, nil); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
	}
	if got := degradedAt(); got != 1 {
		t.Fatalf("admission_degraded = %g after backlog 2, want 1", got)
	}

	// Backlog 4 = the shed watermark: 503 with a Retry-After hint.
	req := SubmitRequest{Tenant: 0, Priority: 1, QASM: ghz3QASM}
	code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", req, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit past shed watermark: %d, want 503", code)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Fatal("503 carries no Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", ra)
	}
	_, _, samples := parseExposition(t, rawGET(t, srv, "/metrics"))
	if got := samples["cloudqcd_jobs_shed_total"]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("cloudqcd_jobs_shed_total = %v, want [1]", got)
	}
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK || stats.Shed != 1 {
		t.Fatalf("stats shed = %d (code %d), want 1", stats.Shed, code)
	}

	// Let the backlog drain; the next submission re-arms WFQ and lands.
	clock.advance(10 * time.Second)
	rawGET(t, srv, "/v1/stats")
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 1, Priority: 1, QASM: ghz3QASM}, nil); code != http.StatusAccepted {
		t.Fatalf("post-drain submit: %d", code)
	}
	if got := degradedAt(); got != 0 {
		t.Fatalf("admission_degraded = %g after drain, want 0", got)
	}
}

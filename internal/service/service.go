// Package service exposes a live CloudQC controller over HTTP JSON —
// the always-on, multi-tenant admission front the paper's cloud setting
// implies: tenants submit circuits to a central network-aware
// controller at any time, a virtual-time pacer maps the wall clock onto
// EPR-attempt rounds, and per-tenant token buckets plus in-flight
// quotas bound each tenant's submission pressure before admission even
// sees a job.
//
// Endpoints (all JSON):
//
//	POST /v1/jobs      submit a circuit (qlib name or inline OpenQASM);
//	                   202 with the job id, 429 with a retry hint when
//	                   the tenant is over its rate or quota
//	GET  /v1/jobs/{id} one job's status and (once settled) its result
//	GET  /v1/stats     stream aggregates: online stats + per-tenant SLO
//	GET  /v1/cluster   cluster state: virtual clock, per-QPU load
//
// The server owns a core.LiveController and serializes all access; the
// wall clock is injectable, so tests drive virtual time
// deterministically with httptest.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cloudqc/internal/circuit"
	"cloudqc/internal/core"
	"cloudqc/internal/metrics"
	"cloudqc/internal/plan"
	"cloudqc/internal/qasm"
	"cloudqc/internal/qlib"
)

// Config assembles a Server.
type Config struct {
	// Controller is the live controller to serve. Required; the server
	// assumes exclusive ownership.
	Controller *core.LiveController
	// TimeScale maps wall time onto virtual time: CX units per wall
	// second (default 1000). With Table I's 10-CX EPR attempt, the
	// default paces 100 EPR rounds per second.
	TimeScale float64
	// Rate is each tenant's sustained submission budget in jobs per
	// wall second (token-bucket refill). Non-positive disables rate
	// limiting.
	Rate float64
	// Burst is the token bucket's capacity — how many submissions a
	// tenant may fire back-to-back before Rate throttles it. Defaults
	// to max(1, ceil(Rate)).
	Burst int
	// MaxInFlight caps each tenant's unsettled jobs (pending + queued +
	// running); submissions beyond it are rejected 429 until jobs
	// settle. Non-positive means unlimited.
	MaxInFlight int
	// PlanCacheSize re-bounds the controller's compile-once plan cache:
	// positive sets the LRU capacity, negative disables caching, zero
	// leaves the controller's configuration untouched. Hit/miss
	// counters surface on GET /v1/stats as "plan_cache".
	PlanCacheSize int
	// Now injects the wall clock; defaults to time.Now. Tests use a
	// fake clock to drive the pacer deterministically.
	Now func() time.Time
}

// Server is the HTTP front of one live controller. Create with New,
// mount anywhere (it implements http.Handler), and call Drain on
// shutdown to run the backlog dry.
type Server struct {
	mu  sync.Mutex
	cfg Config
	lc  *core.LiveController
	mux *http.ServeMux
	// epoch anchors the wall→virtual mapping at the first request.
	epoch   time.Time
	buckets map[int]*bucket
	// unsettled tracks each tenant's in-flight job ids and settled
	// caches finished/failed results in settle order, so per-request
	// bookkeeping scales with the in-flight backlog, not with every job
	// the daemon ever accepted (see sweep).
	unsettled map[int]map[int]bool
	settled   []*core.JobResult
	nextID    int
	rejected  int
	draining  bool
}

// New validates the configuration and returns a serving-ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Controller == nil {
		return nil, errors.New("service: Config.Controller is required")
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("service: negative TimeScale %v", cfg.TimeScale)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1000
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.Rate))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.PlanCacheSize != 0 {
		cfg.Controller.ConfigurePlanCache(cfg.PlanCacheSize)
	}
	s := &Server{
		cfg:       cfg,
		lc:        cfg.Controller,
		buckets:   make(map[int]*bucket),
		unsettled: make(map[int]map[int]bool),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// advance maps the current wall instant onto virtual time and steps the
// controller there. Callers hold s.mu. The first call anchors the
// epoch, so virtual time 0 is the first request, not server start.
func (s *Server) advance(now time.Time) error {
	if s.draining {
		return nil
	}
	if s.epoch.IsZero() {
		s.epoch = now
	}
	v := now.Sub(s.epoch).Seconds() * s.cfg.TimeScale
	return s.lc.StepUntil(v)
}

// sweep moves freshly settled jobs out of the per-tenant in-flight sets
// into the settled cache, which stays sorted by job id (= submission
// order) so aggregates are bit-deterministic regardless of map
// iteration or settle order. Callers hold s.mu and have advanced the
// controller; cost is proportional to the in-flight backlog only.
func (s *Server) sweep() {
	var fresh []*core.JobResult
	for tenant, ids := range s.unsettled {
		for id := range ids {
			res, status := s.lc.Result(id)
			if !status.Settled() {
				continue
			}
			delete(ids, id)
			fresh = append(fresh, res)
		}
		if len(ids) == 0 {
			delete(s.unsettled, tenant)
		}
	}
	if len(fresh) == 0 {
		return
	}
	// Sort only the newly settled batch and merge it into the already-
	// sorted cache, keeping the sweep linear in the cache size instead
	// of re-sorting the full history every time.
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Job.ID < fresh[j].Job.ID })
	merged := make([]*core.JobResult, 0, len(s.settled)+len(fresh))
	i, j := 0, 0
	for i < len(s.settled) && j < len(fresh) {
		if s.settled[i].Job.ID < fresh[j].Job.ID {
			merged = append(merged, s.settled[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, s.settled[i:]...)
	merged = append(merged, fresh[j:]...)
	s.settled = merged
}

// Drain stops accepting submissions, runs every accepted job to
// completion, and returns the final results in submission order.
// Status and stats endpoints keep answering afterwards (503 only for
// new submissions).
func (s *Server) Drain() ([]*core.JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errors.New("service: already drained")
	}
	s.draining = true
	results, err := s.lc.Drain()
	if err == nil {
		s.sweep() // the whole backlog just settled; stats stay consistent
	}
	return results, err
}

// SubmitRequest is POST /v1/jobs' body. Exactly one of Circuit and
// QASM must be set.
type SubmitRequest struct {
	// Tenant identifies the submitting tenant; Priority is its
	// fair-share weight (non-positive means 1).
	Tenant   int `json:"tenant"`
	Priority int `json:"priority,omitempty"`
	// Circuit names a benchmark from the qlib generator library
	// (e.g. "qft_n63"); QASM is an inline OpenQASM 2.0 program.
	Circuit string `json:"circuit,omitempty"`
	QASM    string `json:"qasm,omitempty"`
	// DeadlineSlack sets the job's SLO deadline to
	// arrival + circuit depth × slack CX units; 0 means no deadline.
	DeadlineSlack float64 `json:"deadline_slack,omitempty"`
}

// JobResponse reports one job over the wire.
type JobResponse struct {
	ID         int     `json:"id"`
	Tenant     int     `json:"tenant"`
	Status     string  `json:"status"`
	Arrival    float64 `json:"arrival"`
	Deadline   float64 `json:"deadline,omitempty"`
	VirtualNow float64 `json:"virtual_now"`
	// Result fields, populated once the job settles.
	PlacedAt    float64 `json:"placed_at,omitempty"`
	Finished    float64 `json:"finished,omitempty"`
	JCT         float64 `json:"jct,omitempty"`
	WaitTime    float64 `json:"wait_time,omitempty"`
	RemoteGates int     `json:"remote_gates,omitempty"`
	MetDeadline *bool   `json:"met_deadline,omitempty"`
}

// ErrorResponse is the JSON error envelope; 429s carry the retry hint.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header: how long until
	// the tenant's token bucket refills (rate limit) or a polling
	// interval to retry on (quota).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), 0)
		return
	}
	circ, err := buildCircuit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	// The response is built under the lock but written after releasing
	// it (all handlers do this): a client that stops reading its socket
	// must stall only its own connection, never the daemon.
	s.mu.Lock()
	code, resp, retryAfter := s.submit(req, circ)
	s.mu.Unlock()
	if code == http.StatusAccepted {
		writeJSON(w, code, resp)
	} else {
		writeError(w, code, resp.(string), retryAfter)
	}
}

// submit is handleSubmit's locked section; it returns the status code,
// the response payload (JobResponse on 202, error text otherwise), and
// the 429 retry hint.
func (s *Server) submit(req SubmitRequest, circ *circuit.Circuit) (int, any, float64) {
	if s.draining {
		return http.StatusServiceUnavailable, "server is draining", 0
	}
	now := s.cfg.Now()
	if err := s.advance(now); err != nil {
		return http.StatusInternalServerError, err.Error(), 0
	}
	s.sweep()
	// Quota before rate: a submission the quota refuses must not debit
	// the tenant's token bucket, or retry-polling for a free slot would
	// exhaust the rate budget the eventual accepted submission needs.
	if q := s.cfg.MaxInFlight; q > 0 && len(s.unsettled[req.Tenant]) >= q {
		s.rejected++
		return http.StatusTooManyRequests,
			fmt.Sprintf("tenant %d has %d jobs in flight (quota %d)", req.Tenant, q, q), 1
	}
	if ok, wait := s.allow(req.Tenant, now); !ok {
		s.rejected++
		return http.StatusTooManyRequests,
			fmt.Sprintf("tenant %d over submission rate", req.Tenant), wait
	}

	arrival := s.lc.Now()
	job := &core.Job{
		ID:       s.nextID,
		Circuit:  circ,
		Arrival:  arrival,
		Tenant:   req.Tenant,
		Priority: req.Priority,
	}
	if req.DeadlineSlack > 0 {
		job.Deadline = arrival + float64(circ.Depth())*req.DeadlineSlack
	}
	if err := s.lc.Submit(job); err != nil {
		return http.StatusInternalServerError, err.Error(), 0
	}
	s.nextID++
	if s.unsettled[req.Tenant] == nil {
		s.unsettled[req.Tenant] = make(map[int]bool)
	}
	s.unsettled[req.Tenant][job.ID] = true
	return http.StatusAccepted, s.jobResponse(job.ID), 0
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer", 0)
		return
	}
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	_, status := s.lc.Result(id)
	var resp JobResponse
	if status != core.StatusUnknown {
		resp = s.jobResponse(id)
	}
	s.mu.Unlock()
	if status == core.StatusUnknown {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %d", id), 0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobResponse renders a job's current state; callers hold s.mu and
// have verified the id exists.
func (s *Server) jobResponse(id int) JobResponse {
	res, status := s.lc.Result(id)
	resp := JobResponse{
		ID:         id,
		Tenant:     res.Job.Tenant,
		Status:     status.String(),
		Arrival:    res.Job.Arrival,
		Deadline:   res.Job.Deadline,
		VirtualNow: s.lc.Now(),
	}
	if status == core.StatusCompleted {
		resp.PlacedAt = res.PlacedAt
		resp.Finished = res.Finished
		resp.JCT = res.JCT
		resp.WaitTime = res.WaitTime
		resp.RemoteGates = res.RemoteGates
		if res.Job.Deadline > 0 {
			met := res.Finished <= res.Job.Deadline
			resp.MetDeadline = &met
		}
	}
	return resp
}

// StatsResponse is GET /v1/stats: the accepted stream's aggregates so
// far. Online covers settled jobs (completed + failed); SLO carries
// deadline attainment and cross-tenant fairness in AggregateSLO's
// shape, with NaN rendered as null.
type StatsResponse struct {
	VirtualNow float64 `json:"virtual_now"`
	Submitted  int     `json:"submitted"`
	Settled    int     `json:"settled"`
	// Rejected counts 429-rejected submissions (rate or quota); they
	// never reach the controller and are absent from every aggregate.
	Rejected int                 `json:"rejected"`
	Online   metrics.OnlineStats `json:"online"`
	SLO      SLOWire             `json:"slo"`
	// PlanCache reports the compile-once plan cache's hit/miss/eviction
	// counters and occupancy (all zero with "enabled": false when the
	// controller runs uncached).
	PlanCache plan.Stats `json:"plan_cache"`
}

// SLOWire is metrics.SLOStats with NaNs (no deadline-carrying jobs,
// too few tenants) marshaled as null instead of breaking the encoder.
type SLOWire struct {
	Attainment *float64        `json:"attainment"`
	Fairness   *float64        `json:"fairness"`
	PerTenant  []TenantSLOWire `json:"per_tenant"`
}

// TenantSLOWire is one tenant's SLO slice on the wire.
type TenantSLOWire struct {
	Tenant     int      `json:"tenant"`
	Weight     int      `json:"weight"`
	Completed  int      `json:"completed"`
	Failed     int      `json:"failed"`
	MeanJCT    *float64 `json:"mean_jct"`
	P99JCT     *float64 `json:"p99_jct"`
	Attainment *float64 `json:"attainment"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	s.sweep()
	resp := StatsResponse{
		VirtualNow: s.lc.Now(),
		Submitted:  s.nextID,
		Settled:    len(s.settled),
		Rejected:   s.rejected,
		Online:     core.OnlineStatsOf(s.settled),
		SLO:        sloWire(metrics.AggregateSLO(core.Outcomes(s.settled))),
		PlanCache:  s.lc.PlanCacheStats(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ClusterResponse is GET /v1/cluster: the cluster's instantaneous
// state under the virtual clock.
type ClusterResponse struct {
	VirtualNow float64           `json:"virtual_now"`
	TimeScale  float64           `json:"time_scale"`
	Draining   bool              `json:"draining"`
	Snapshot   core.LiveSnapshot `json:"snapshot"`
	QPUs       []core.QPULoad    `json:"qpus"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	resp := ClusterResponse{
		VirtualNow: s.lc.Now(),
		TimeScale:  s.cfg.TimeScale,
		Draining:   s.draining,
		Snapshot:   s.lc.Snapshot(),
		QPUs:       s.lc.QPULoads(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// bucket is one tenant's token bucket (tokens = submissions).
type bucket struct {
	tokens float64
	last   time.Time
}

// allow takes one token from the tenant's bucket, reporting how long
// until the next token when empty. Callers hold s.mu.
func (s *Server) allow(tenant int, now time.Time) (bool, float64) {
	if s.cfg.Rate <= 0 {
		return true, 0
	}
	b := s.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(s.cfg.Burst), last: now}
		s.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.cfg.Rate
	if max := float64(s.cfg.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, (1 - b.tokens) / s.cfg.Rate
}

// buildCircuit resolves a submission's circuit: a qlib benchmark name
// or an inline OpenQASM 2.0 program, exactly one of the two.
func buildCircuit(req SubmitRequest) (*circuit.Circuit, error) {
	switch {
	case req.Circuit != "" && req.QASM != "":
		return nil, errors.New("set exactly one of circuit and qasm, not both")
	case req.Circuit != "":
		c, err := qlib.Build(req.Circuit)
		if err != nil {
			return nil, fmt.Errorf("unknown circuit %q", req.Circuit)
		}
		return c, nil
	case req.QASM != "":
		c, err := qasm.Parse("inline", req.QASM)
		if err != nil {
			return nil, fmt.Errorf("qasm: %v", err)
		}
		if c.NumQubits() == 0 {
			return nil, errors.New("qasm: empty register")
		}
		return c, nil
	default:
		return nil, errors.New("set one of circuit (qlib name) and qasm (inline program)")
	}
}

func sloWire(s metrics.SLOStats) SLOWire {
	out := SLOWire{
		Attainment: fnil(s.Attainment),
		Fairness:   fnil(s.Fairness),
		PerTenant:  make([]TenantSLOWire, 0, len(s.PerTenant)),
	}
	for _, t := range s.PerTenant {
		out.PerTenant = append(out.PerTenant, TenantSLOWire{
			Tenant:     t.Tenant,
			Weight:     t.Weight,
			Completed:  t.Completed,
			Failed:     t.Failed,
			MeanJCT:    fnil(t.MeanJCT),
			P99JCT:     fnil(t.P99JCT),
			Attainment: fnil(t.Attainment),
		})
	}
	return out
}

// fnil maps NaN to nil for JSON (the encoder rejects NaN outright).
func fnil(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfter float64) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter))))
	}
	writeJSON(w, code, ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

// Package service exposes a live CloudQC controller over HTTP JSON —
// the always-on, multi-tenant admission front the paper's cloud setting
// implies: tenants submit circuits to a central network-aware
// controller at any time, a virtual-time pacer maps the wall clock onto
// EPR-attempt rounds, and per-tenant token buckets plus in-flight
// quotas bound each tenant's submission pressure before admission even
// sees a job.
//
// Endpoints (all JSON unless noted; see docs/API.md for the complete
// reference — TestAPIDocCoverage keeps it in sync with this table):
//
//	POST /v1/jobs             submit a circuit (qlib name or inline
//	                          OpenQASM); 202 with the job id, 429 with a
//	                          retry hint when the tenant is over its
//	                          rate or quota, 503 when the backlog passed
//	                          the shedding watermark, 409 once the
//	                          backend is drained
//	GET  /v1/jobs/{id}        one job's status and (once settled) result
//	GET  /v1/jobs/{id}/events one job's lifecycle as server-sent events
//	GET  /v1/jobs/{id}/trace  one job's virtual-time span tree and JCT
//	                          attribution (404 while tracing is off)
//	GET  /v1/events           every job's lifecycle events (SSE)
//	POST /v1/faults           inject one fault event (admin): QPU
//	                          outage, link degradation, or shard drain;
//	                          logged to the WAL before the 202
//	GET  /v1/stats            stream aggregates: online stats +
//	                          per-tenant SLO + routing counters and
//	                          per-shard breakdown
//	GET  /v1/cluster          cluster state: virtual clock, per-QPU
//	                          load, per-shard snapshots
//	GET  /metrics             Prometheus text-format scrape
//
// The server owns a fed.Federation (a single live controller is
// wrapped into a one-shard federation, preserving its behavior
// bit-for-bit) and serializes all access; the wall clock is
// injectable, so tests drive virtual time deterministically with
// httptest.
//
// Durability: with Config.WAL set, every clock advance and accepted
// submission is appended to a write-ahead log (submissions fsynced
// before admission), and Replay rebuilds a restarted daemon's state
// bit-identically from the recovered records. Overload: past
// Config.DegradeBacklog the admission mode degrades WFQ→FIFO; past
// Config.ShedBacklog submissions are shed with 503 + Retry-After.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cloudqc/internal/circuit"
	"cloudqc/internal/core"
	"cloudqc/internal/fault"
	"cloudqc/internal/fed"
	"cloudqc/internal/metrics"
	"cloudqc/internal/plan"
	"cloudqc/internal/qasm"
	"cloudqc/internal/qlib"
	"cloudqc/internal/trace"
	"cloudqc/internal/wal"
)

// Config assembles a Server. Exactly one of Controller and Federation
// must be set.
type Config struct {
	// Controller is a single live controller to serve; the server wraps
	// it into a one-shard federation (bit-identical behavior) and
	// assumes exclusive ownership.
	Controller *core.LiveController
	// Federation is a multi-shard federation to serve; the server
	// assumes exclusive ownership. Submissions carry no shard choice —
	// the federation's admission router decides.
	Federation *fed.Federation
	// TimeScale maps wall time onto virtual time: CX units per wall
	// second (default 1000). With Table I's 10-CX EPR attempt, the
	// default paces 100 EPR rounds per second.
	TimeScale float64
	// Rate is each tenant's sustained submission budget in jobs per
	// wall second (token-bucket refill). Non-positive disables rate
	// limiting.
	Rate float64
	// Burst is the token bucket's capacity — how many submissions a
	// tenant may fire back-to-back before Rate throttles it. Defaults
	// to max(1, ceil(Rate)).
	Burst int
	// MaxInFlight caps each tenant's unsettled jobs (pending + queued +
	// running); submissions beyond it are rejected 429 until jobs
	// settle. Non-positive means unlimited.
	MaxInFlight int
	// PlanCacheSize re-bounds every shard's compile-once plan cache:
	// positive sets the LRU capacity, negative disables caching, zero
	// leaves the controllers' configuration untouched. Hit/miss
	// counters surface on GET /v1/stats as "plan_cache".
	PlanCacheSize int
	// Now injects the wall clock; defaults to time.Now. Tests use a
	// fake clock to drive the pacer deterministically.
	Now func() time.Time
	// WAL, when non-nil, is the daemon's write-ahead log: the server
	// appends every virtual-clock advance and every accepted submission
	// (the latter fsynced before the job reaches admission, so a 202
	// implies durability). The server owns the log from here on. On
	// restart, pass wal.Open's recovered records to Replay before
	// serving traffic.
	WAL *wal.Log
	// DegradeBacklog is the load-shedding soft watermark: while the
	// federation backlog (pending + queued jobs) is at or above it,
	// admission degrades to FIFO — cheaper than WFQ's per-tick ordering
	// — and restores the configured mode once the backlog falls below.
	// Non-positive disables degradation.
	DegradeBacklog int
	// ShedBacklog is the hard watermark: at or above it, submissions
	// are shed with 503 + Retry-After (never logged to the WAL, never
	// admitted). Non-positive disables shedding.
	ShedBacklog int
	// EventBuffer bounds the in-memory SSE event ring (default 8192);
	// clients further behind than the ring miss the overwritten events.
	EventBuffer int
	// Heartbeat is the SSE keep-alive interval: how often an idle event
	// stream re-advances virtual time and emits a comment line so
	// proxies keep the connection open (default 1s of wall time).
	Heartbeat time.Duration
}

// Server is the HTTP front of one federation. Create with New, mount
// anywhere (it implements http.Handler), and call Drain on shutdown to
// run the backlog dry.
type Server struct {
	mu  sync.Mutex
	cfg Config
	f   *fed.Federation
	mux *http.ServeMux
	// epoch anchors the wall→virtual mapping at the first request.
	epoch   time.Time
	buckets map[int]*bucket
	// unsettled tracks each tenant's in-flight job ids and settled
	// caches finished/failed results in settle order, so per-request
	// bookkeeping scales with the in-flight backlog, not with every job
	// the daemon ever accepted (see sweep).
	unsettled    map[int]map[int]bool
	settled      []*core.JobResult
	settledDirty bool
	submitted    int
	rejected     int
	draining     bool
	// events is the bounded SSE ring fed by the federation's
	// status-transition hook; jobTenant resolves a live job's tenant for
	// event payloads and per-tenant metrics (entries die with the job).
	events    *eventLog
	jobTenant map[int]int
	// walV is the highest virtual time logged to the WAL; -1 until the
	// first advance so a freshly anchored epoch's v=0 is still logged
	// (and duplicate replay is detected from the very first record).
	walV float64
	// baseMode is the admission mode configured at build time — what
	// degraded shards return to; degraded records the current state.
	baseMode core.Mode
	degraded bool
	// Per-tenant rejection counters for /metrics, by cause.
	rejRate  map[int]int
	rejQuota map[int]int
	shed     map[int]int
	shedded  int
}

// New validates the configuration and returns a serving-ready Server.
func New(cfg Config) (*Server, error) {
	var f *fed.Federation
	switch {
	case cfg.Controller != nil && cfg.Federation != nil:
		return nil, errors.New("service: set exactly one of Config.Controller and Config.Federation, not both")
	case cfg.Federation != nil:
		f = cfg.Federation
	case cfg.Controller != nil:
		f = fed.Wrap(cfg.Controller)
	default:
		return nil, errors.New("service: one of Config.Controller and Config.Federation is required")
	}
	if cfg.TimeScale < 0 {
		return nil, fmt.Errorf("service: negative TimeScale %v", cfg.TimeScale)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1000
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.Rate))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.PlanCacheSize != 0 {
		f.ConfigurePlanCache(cfg.PlanCacheSize)
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 8192
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	s := &Server{
		cfg:       cfg,
		f:         f,
		buckets:   make(map[int]*bucket),
		unsettled: make(map[int]map[int]bool),
		events:    newEventLog(cfg.EventBuffer),
		jobTenant: make(map[int]int),
		walV:      -1,
		baseMode:  f.Mode(),
		rejRate:   make(map[int]int),
		rejQuota:  make(map[int]int),
		shed:      make(map[int]int),
	}
	f.SetOnTransition(s.onTransition)
	s.mux = http.NewServeMux()
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
	}
	return s, nil
}

// Route describes one registered endpoint. The same table drives mux
// registration and TestAPIDocCoverage, so docs/API.md cannot silently
// drift from the served surface.
type Route struct {
	Method  string `json:"method"`
	Pattern string `json:"pattern"`
	Summary string `json:"summary"`
}

// route pairs a Route with its handler (handlers stay unexported).
type route struct {
	Route
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{Route{"POST", "/v1/jobs", "submit a circuit for execution"}, s.handleSubmit},
		{Route{"GET", "/v1/jobs/{id}", "one job's status and result"}, s.handleJob},
		{Route{"GET", "/v1/jobs/{id}/events", "one job's lifecycle as server-sent events"}, s.handleJobEvents},
		{Route{"GET", "/v1/jobs/{id}/trace", "one job's span tree and JCT attribution"}, s.handleTrace},
		{Route{"GET", "/v1/events", "all jobs' lifecycle events (SSE)"}, s.handleEvents},
		{Route{"POST", "/v1/faults", "inject a fault event (admin)"}, s.handleFaults},
		{Route{"GET", "/v1/stats", "stream aggregates: online, SLO, routing"}, s.handleStats},
		{Route{"GET", "/v1/cluster", "cluster state under the virtual clock"}, s.handleCluster},
		{Route{"GET", "/metrics", "Prometheus text-format metrics"}, s.handleMetrics},
	}
}

// Routes lists every registered endpoint.
func (s *Server) Routes() []Route {
	rts := s.routes()
	out := make([]Route, len(rts))
	for i, rt := range rts {
		out[i] = rt.Route
	}
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// advance maps the current wall instant onto virtual time and steps
// every shard there. Callers hold s.mu. The first call anchors the
// epoch, so virtual time 0 is the first request, not server start.
func (s *Server) advance(now time.Time) error {
	if s.draining {
		return nil
	}
	if s.epoch.IsZero() {
		s.epoch = now
	}
	v := now.Sub(s.epoch).Seconds() * s.cfg.TimeScale
	// Step boundaries are semantically significant — shared-WFQ billing
	// order and preemption rehoming happen per StepUntil — so replay
	// must walk the same boundaries: log each advance (coalescing an
	// unmoved clock). Losing unsynced step records on crash only ends
	// replay at an earlier virtual time.
	if s.cfg.WAL != nil && v > s.walV {
		s.walV = v
		if werr := s.cfg.WAL.AppendStep(v); werr != nil {
			return werr
		}
	}
	err := s.f.StepUntil(v)
	if errors.Is(err, core.ErrDrained) {
		// Drained out-of-band (not via Server.Drain): there is nothing
		// left to step. Status and stats keep answering; submissions
		// fall through to the federation's typed rejection (409).
		return nil
	}
	return err
}

// sweep moves freshly settled jobs out of the per-tenant in-flight sets
// into the settled cache. The cache is kept sorted by job id (=
// submission order) only lazily: when jobs settle in id order — the
// common case under FIFO — each batch appends in O(batch); an
// out-of-order settle just marks the cache dirty and sortedSettled
// re-sorts it on the next order-sensitive read. That keeps a sustained
// submission stream linear instead of re-merging the full history on
// every request. Callers hold s.mu and have advanced the controller.
func (s *Server) sweep() {
	var fresh []*core.JobResult
	for tenant, ids := range s.unsettled {
		for id := range ids {
			res, status := s.f.Result(id)
			if !status.Settled() {
				continue
			}
			delete(ids, id)
			fresh = append(fresh, res)
		}
		if len(ids) == 0 {
			delete(s.unsettled, tenant)
		}
	}
	if len(fresh) == 0 {
		return
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Job.ID < fresh[j].Job.ID })
	if n := len(s.settled); n > 0 && !s.settledDirty && fresh[0].Job.ID < s.settled[n-1].Job.ID {
		s.settledDirty = true
	}
	s.settled = append(s.settled, fresh...)
}

// sortedSettled returns the settled cache in job-id (= submission)
// order, re-sorting it first if out-of-order settles dirtied it.
// Aggregates computed from it are then bit-deterministic regardless of
// map iteration or settle order. Callers hold s.mu.
func (s *Server) sortedSettled() []*core.JobResult {
	if s.settledDirty {
		sort.Slice(s.settled, func(i, j int) bool { return s.settled[i].Job.ID < s.settled[j].Job.ID })
		s.settledDirty = false
	}
	return s.settled
}

// Drain stops accepting submissions, runs every accepted job to
// completion, and returns the final results in submission order.
// Status and stats endpoints keep answering afterwards (503 only for
// new submissions).
func (s *Server) Drain() ([]*core.JobResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errors.New("service: already drained")
	}
	s.draining = true
	results, err := s.f.Drain()
	if err == nil {
		s.sweep() // the whole backlog just settled; stats stay consistent
	}
	return results, err
}

// SubmitRequest is POST /v1/jobs' body. Exactly one of Circuit and
// QASM must be set.
type SubmitRequest struct {
	// Tenant identifies the submitting tenant; Priority is its
	// fair-share weight (non-positive means 1).
	Tenant   int `json:"tenant"`
	Priority int `json:"priority,omitempty"`
	// Circuit names a benchmark from the qlib generator library
	// (e.g. "qft_n63"); QASM is an inline OpenQASM 2.0 program.
	Circuit string `json:"circuit,omitempty"`
	QASM    string `json:"qasm,omitempty"`
	// DeadlineSlack sets the job's SLO deadline to
	// arrival + circuit depth × slack CX units; 0 means no deadline.
	DeadlineSlack float64 `json:"deadline_slack,omitempty"`
}

// JobResponse reports one job over the wire.
type JobResponse struct {
	ID         int     `json:"id"`
	Tenant     int     `json:"tenant"`
	Status     string  `json:"status"`
	Arrival    float64 `json:"arrival"`
	Deadline   float64 `json:"deadline,omitempty"`
	VirtualNow float64 `json:"virtual_now"`
	// Result fields, populated once the job settles.
	PlacedAt    float64 `json:"placed_at,omitempty"`
	Finished    float64 `json:"finished,omitempty"`
	JCT         float64 `json:"jct,omitempty"`
	WaitTime    float64 `json:"wait_time,omitempty"`
	RemoteGates int     `json:"remote_gates,omitempty"`
	MetDeadline *bool   `json:"met_deadline,omitempty"`
}

// ErrorResponse is the JSON error envelope; 429s carry the retry hint.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header: how long until
	// the tenant's token bucket refills (rate limit) or a polling
	// interval to retry on (quota).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), 0)
		return
	}
	circ, err := buildCircuit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	// The response is built under the lock but written after releasing
	// it (all handlers do this): a client that stops reading its socket
	// must stall only its own connection, never the daemon.
	s.mu.Lock()
	code, resp, retryAfter := s.submit(req, circ)
	s.mu.Unlock()
	if code == http.StatusAccepted {
		writeJSON(w, code, resp)
	} else {
		writeError(w, code, resp.(string), retryAfter)
	}
}

// submit is handleSubmit's locked section; it returns the status code,
// the response payload (JobResponse on 202, error text otherwise), and
// the 429 retry hint.
func (s *Server) submit(req SubmitRequest, circ *circuit.Circuit) (int, any, float64) {
	if s.draining {
		return http.StatusConflict, "server is drained; submissions are closed", 0
	}
	now := s.cfg.Now()
	if err := s.advance(now); err != nil {
		return http.StatusInternalServerError, err.Error(), 0
	}
	s.sweep()
	// Load shedding before any per-tenant accounting: a shed submission
	// is never WAL-logged (replay reproduces the same shed decisions
	// because it applies the same watermarks at the same backlogs) and
	// must not debit the tenant's token bucket. The backlog snapshot
	// walks every in-flight job, so skip it when no watermark is set.
	if s.cfg.ShedBacklog > 0 || s.cfg.DegradeBacklog > 0 {
		backlog := s.backlog()
		if wm := s.cfg.ShedBacklog; wm > 0 && backlog >= wm {
			s.shed[req.Tenant]++
			s.shedded++
			return http.StatusServiceUnavailable,
				fmt.Sprintf("backlog %d at or above shedding watermark %d", backlog, wm), s.shedRetryAfter()
		}
		s.applyDegrade(backlog)
	}
	// Quota before rate: a submission the quota refuses must not debit
	// the tenant's token bucket, or retry-polling for a free slot would
	// exhaust the rate budget the eventual accepted submission needs.
	if q := s.cfg.MaxInFlight; q > 0 && len(s.unsettled[req.Tenant]) >= q {
		s.rejected++
		s.rejQuota[req.Tenant]++
		return http.StatusTooManyRequests,
			fmt.Sprintf("tenant %d has %d jobs in flight (quota %d)", req.Tenant, q, q), 1
	}
	if ok, wait := s.allow(req.Tenant, now); !ok {
		s.rejected++
		s.rejRate[req.Tenant]++
		return http.StatusTooManyRequests,
			fmt.Sprintf("tenant %d over submission rate", req.Tenant), wait
	}

	arrival := s.f.Now()
	// ID -1 lets the federation assign the next shard-tagged id
	// (id mod shards = the routed shard; dense 0,1,2,… on one shard).
	job := &core.Job{
		ID:       -1,
		Circuit:  circ,
		Arrival:  arrival,
		Tenant:   req.Tenant,
		Priority: req.Priority,
	}
	if req.DeadlineSlack > 0 {
		job.Deadline = arrival + float64(circ.Depth())*req.DeadlineSlack
	}
	// Durability before admission: the submission is framed, appended,
	// and fsynced first, so every job a client saw accepted survives a
	// crash. A WAL failure refuses the job — accepting it un-logged
	// would break the replay guarantee.
	if w := s.cfg.WAL; w != nil {
		rec := wal.Record{
			Type: wal.TypeJob, V: arrival,
			Tenant: req.Tenant, Priority: req.Priority, Deadline: job.Deadline,
			Circuit: req.Circuit, QASM: req.QASM,
		}
		if rec.Circuit == "" && rec.QASM == "" {
			// Defensive: buildCircuit guarantees one is set.
			rec.QASM = qasm.Write(circ)
		}
		if err := w.Append(rec); err != nil {
			return http.StatusInternalServerError, err.Error(), 0
		}
		if err := w.Sync(); err != nil {
			return http.StatusInternalServerError, err.Error(), 0
		}
	}
	if err := s.f.Submit(job); err != nil {
		if errors.Is(err, core.ErrDrained) {
			return http.StatusConflict, err.Error(), 0
		}
		return http.StatusInternalServerError, err.Error(), 0
	}
	s.noteSubmitted(job)
	return http.StatusAccepted, s.jobResponse(job.ID), 0
}

// noteSubmitted records an accepted job's bookkeeping (shared between
// the live submit path and WAL replay): counters, the tenant's
// in-flight set, the tenant index for events/metrics, and the "submit"
// event. Callers hold s.mu.
func (s *Server) noteSubmitted(job *core.Job) {
	s.submitted++
	if s.unsettled[job.Tenant] == nil {
		s.unsettled[job.Tenant] = make(map[int]bool)
	}
	s.unsettled[job.Tenant][job.ID] = true
	s.jobTenant[job.ID] = job.Tenant
	shard, _ := s.f.ShardOf(job.ID)
	s.events.append(Event{
		Type: EventSubmit, Job: job.ID, Tenant: job.Tenant,
		Shard: shard, VTime: job.Arrival,
	})
}

// FaultResponse acknowledges an accepted fault injection.
type FaultResponse struct {
	Kind       string  `json:"kind"`
	Shard      int     `json:"shard"`
	From       float64 `json:"from"`
	VirtualNow float64 `json:"virtual_now"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	var e fault.Event
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), 0)
		return
	}
	s.mu.Lock()
	code, resp := s.injectFault(e)
	s.mu.Unlock()
	if code == http.StatusAccepted {
		writeJSON(w, code, resp)
	} else {
		writeError(w, code, resp.(string), 0)
	}
}

// injectFault is handleFaults' locked section. The federation validates
// and schedules the event atomically (an error means nothing changed),
// and only an accepted injection is logged — fsynced before the 202, the
// same durability bar as accepted submissions, so a restarted daemon
// re-injects it at the same position in the replayed operation stream.
func (s *Server) injectFault(e fault.Event) (int, any) {
	if s.draining {
		return http.StatusConflict, "server is drained; fault injection is closed"
	}
	if err := s.advance(s.cfg.Now()); err != nil {
		return http.StatusInternalServerError, err.Error()
	}
	if err := s.f.Inject(e); err != nil {
		return http.StatusBadRequest, err.Error()
	}
	if w := s.cfg.WAL; w != nil {
		if err := w.Append(wal.Record{Type: wal.TypeFault, V: e.From, Fault: &e}); err != nil {
			return http.StatusInternalServerError, err.Error()
		}
		if err := w.Sync(); err != nil {
			return http.StatusInternalServerError, err.Error()
		}
	}
	return http.StatusAccepted, FaultResponse{Kind: e.Kind, Shard: e.Shard, From: e.From, VirtualNow: s.f.Now()}
}

// backlog is the federation-wide count of jobs waiting for service
// (pending arrivals + admission queue), the quantity both load-shedding
// watermarks compare against. Callers hold s.mu and have advanced.
func (s *Server) backlog() int {
	snap := s.f.Snapshot()
	return snap.Pending + snap.Queued
}

// applyDegrade switches admission WFQ→FIFO at the soft watermark and
// back below it. Mode changes go through the federation so every shard
// flips together; WFQ virtual clocks survive the round trip. Replay
// applies the same rule at the same backlogs, so a recovered daemon
// reproduces the degraded stretches exactly. Callers hold s.mu.
func (s *Server) applyDegrade(backlog int) {
	wm := s.cfg.DegradeBacklog
	if wm <= 0 || s.baseMode == core.FIFOMode {
		return
	}
	if degrade := backlog >= wm; degrade != s.degraded {
		mode := s.baseMode
		if degrade {
			mode = core.FIFOMode
		}
		if s.f.SetMode(mode) == nil {
			s.degraded = degrade
		}
	}
}

// shedRetryAfter estimates how long until the backlog could fall below
// the shedding watermark: one EPR round of virtual time, converted to
// wall seconds — a floor on when retrying could possibly succeed.
func (s *Server) shedRetryAfter() float64 {
	round := s.f.Shard(0).Controller().EPRAttempt()
	if wait := round / s.cfg.TimeScale; wait > 1 {
		return wait
	}
	return 1
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer", 0)
		return
	}
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	_, status := s.f.Result(id)
	var resp JobResponse
	if status != core.StatusUnknown {
		resp = s.jobResponse(id)
	}
	s.mu.Unlock()
	if status == core.StatusUnknown {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %d", id), 0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobResponse renders a job's current state; callers hold s.mu and
// have verified the id exists.
func (s *Server) jobResponse(id int) JobResponse {
	res, status := s.f.Result(id)
	resp := JobResponse{
		ID:         id,
		Tenant:     res.Job.Tenant,
		Status:     status.String(),
		Arrival:    res.Job.Arrival,
		Deadline:   res.Job.Deadline,
		VirtualNow: s.f.Now(),
	}
	if status == core.StatusCompleted {
		resp.PlacedAt = res.PlacedAt
		resp.Finished = res.Finished
		resp.JCT = res.JCT
		resp.WaitTime = res.WaitTime
		resp.RemoteGates = res.RemoteGates
		if res.Job.Deadline > 0 {
			met := res.Finished <= res.Job.Deadline
			resp.MetDeadline = &met
		}
	}
	return resp
}

// TraceResponse is GET /v1/jobs/{id}/trace: one job's span tree in
// virtual time. Attribution's phases sum to its JCT bitwise for
// completed jobs (local compute is derived as the remainder at
// settlement). Rounds holds the most recent retained round spans —
// when RoundsDropped > 0 the ring overwrote the oldest
// RoundsDropped of the RoundsTotal recorded.
type TraceResponse struct {
	ID      int     `json:"id"`
	Tenant  int     `json:"tenant"`
	Arrival float64 `json:"arrival"`
	// Finished is the settlement instant; meaningful once Done.
	Finished float64 `json:"finished"`
	Done     bool    `json:"done"`
	Failed   bool    `json:"failed"`

	Attribution trace.Attribution `json:"attribution"`

	// Admit is present once the job has been placed.
	Admit         *trace.AdmitSpan    `json:"admit,omitempty"`
	Compiles      []trace.CompileSpan `json:"compiles,omitempty"`
	Rounds        []trace.RoundSpan   `json:"rounds,omitempty"`
	Suspends      []trace.SuspendSpan `json:"suspends,omitempty"`
	Rehomes       []trace.RehomeSpan  `json:"rehomes,omitempty"`
	Faults        []trace.FaultSpan   `json:"faults,omitempty"`
	RoundsTotal   int                 `json:"rounds_total"`
	RoundsDropped int                 `json:"rounds_dropped"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer", 0)
		return
	}
	rec := s.f.Trace()
	if rec == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled (start the daemon with -trace)", 0)
		return
	}
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	tr := rec.Get(id)
	var resp TraceResponse
	if tr != nil {
		resp = traceResponse(tr)
	}
	s.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no trace for job %d", id), 0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceResponse renders one trace; callers hold s.mu (the recorder
// shares the federation's synchronization).
func traceResponse(tr *trace.JobTrace) TraceResponse {
	resp := TraceResponse{
		ID:            tr.ID,
		Tenant:        tr.Tenant,
		Arrival:       tr.Arrival,
		Finished:      tr.Finished,
		Done:          tr.Done,
		Failed:        tr.Failed,
		Attribution:   tr.Attr,
		Compiles:      tr.Compiles,
		Rounds:        tr.Rounds(nil),
		Suspends:      tr.Suspends,
		Rehomes:       tr.Rehomes,
		Faults:        tr.Faults,
		RoundsTotal:   tr.RoundsTotal,
		RoundsDropped: tr.RoundsDropped,
	}
	if tr.Placed() {
		admit := tr.Admit
		resp.Admit = &admit
	}
	return resp
}

// StatsResponse is GET /v1/stats: the accepted stream's aggregates so
// far. Online covers settled jobs (completed + failed); SLO carries
// deadline attainment and cross-tenant fairness in AggregateSLO's
// shape, with NaN rendered as null.
type StatsResponse struct {
	VirtualNow float64 `json:"virtual_now"`
	Submitted  int     `json:"submitted"`
	Settled    int     `json:"settled"`
	// Rejected counts 429-rejected submissions (rate or quota); they
	// never reach the controller and are absent from every aggregate.
	Rejected int `json:"rejected"`
	// Shed counts 503-shed submissions (backlog over the shedding
	// watermark); like rejections they never reach the controller.
	Shed   int                 `json:"shed"`
	Online metrics.OnlineStats `json:"online"`
	SLO    SLOWire             `json:"slo"`
	// PlanCache reports the compile-once plan caches' hit/miss/eviction
	// counters and occupancy, merged across shards (all zero with
	// "enabled": false when every controller runs uncached).
	PlanCache plan.Stats `json:"plan_cache"`
	// Preemption counts checkpoint preemptions, resumes, and rescued
	// deadlines, summed across shards (all zero with -preempt off).
	Preemption core.PreemptStats `json:"preemption"`
	// Faults counts injected faults by kind and the recovery work they
	// forced — rescues, retries, reroutes, exhausted budgets — summed
	// across shards (all zero with no fault plan and no injections).
	Faults fault.Stats `json:"faults"`
	// Federation reports the routing tier: shard count, discipline,
	// admission-router counters, and the per-shard breakdown. A
	// single-controller server shows one shard with zeroed counters.
	Federation FederationWire `json:"federation"`
	// Attribution is the per-tenant JCT attribution aggregate — exact
	// sums over each tenant's settled traces, so every row's phases sum
	// to its JCT bitwise. Present only while tracing is on.
	Attribution []trace.TenantAttribution `json:"attribution,omitempty"`
}

// FederationWire is /v1/stats' federated view.
type FederationWire struct {
	Shards   int             `json:"shards"`
	Routing  string          `json:"routing"`
	Router   fed.RouterStats `json:"router"`
	PerShard []ShardWire     `json:"per_shard"`
}

// ShardWire is one shard's slice of the federated view: its lifecycle
// counts and its local plan cache, so affinity routing's cache-locality
// payoff is observable per shard.
type ShardWire struct {
	Shard     int               `json:"shard"`
	Snapshot  core.LiveSnapshot `json:"snapshot"`
	PlanCache plan.Stats        `json:"plan_cache"`
}

// federationWire renders the routing tier; callers hold s.mu.
func (s *Server) federationWire() FederationWire {
	fw := FederationWire{
		Shards:   s.f.NumShards(),
		Routing:  s.f.Routing().String(),
		Router:   s.f.RouterStats(),
		PerShard: make([]ShardWire, s.f.NumShards()),
	}
	snaps := s.f.ShardSnapshots()
	for i := range fw.PerShard {
		fw.PerShard[i] = ShardWire{
			Shard:     i,
			Snapshot:  snaps[i],
			PlanCache: s.f.Shard(i).Controller().PlanCacheStats(),
		}
	}
	return fw
}

// NullableFloat is a float64 that marshals NaN as JSON null (the
// encoder rejects NaN outright) and unmarshals null back to NaN — the
// one place the /v1/stats NaN→null mapping lives. An aggregate is NaN
// whenever its input set is empty: no settled jobs, no
// deadline-carrying jobs, or too few tenants for a fairness index.
type NullableFloat float64

// IsNull reports whether the value marshals as null.
func (f NullableFloat) IsNull() bool { return math.IsNaN(float64(f)) }

// MarshalJSON implements json.Marshaler: NaN → null.
func (f NullableFloat) MarshalJSON() ([]byte, error) {
	if f.IsNull() {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

// UnmarshalJSON implements json.Unmarshaler: null → NaN.
func (f *NullableFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = NullableFloat(math.NaN())
		return nil
	}
	return json.Unmarshal(b, (*float64)(f))
}

// SLOWire is metrics.SLOStats on the wire, NaNs as null (NullableFloat).
type SLOWire struct {
	Attainment NullableFloat   `json:"attainment"`
	Fairness   NullableFloat   `json:"fairness"`
	PerTenant  []TenantSLOWire `json:"per_tenant"`
}

// TenantSLOWire is one tenant's SLO slice on the wire.
type TenantSLOWire struct {
	Tenant     int           `json:"tenant"`
	Weight     int           `json:"weight"`
	Completed  int           `json:"completed"`
	Failed     int           `json:"failed"`
	MeanJCT    NullableFloat `json:"mean_jct"`
	P99JCT     NullableFloat `json:"p99_jct"`
	Attainment NullableFloat `json:"attainment"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	s.sweep()
	settled := s.sortedSettled()
	resp := StatsResponse{
		VirtualNow: s.f.Now(),
		Submitted:  s.submitted,
		Settled:    len(settled),
		Rejected:   s.rejected,
		Shed:       s.shedded,
		Online:     core.OnlineStatsOf(settled),
		SLO:        sloWire(metrics.AggregateSLO(core.Outcomes(settled))),
		PlanCache:  s.f.PlanCacheStats(),
		Preemption: s.f.PreemptStats(),
		Faults:     s.f.FaultStats(),
		Federation: s.federationWire(),
	}
	if rec := s.f.Trace(); rec != nil {
		resp.Attribution = rec.Tenants()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ClusterResponse is GET /v1/cluster: the federation's instantaneous
// state under the virtual clock. Snapshot aggregates every shard and
// QPUs concatenates their loads in shard order (QPU ids are
// shard-local); Shards carries each shard cloud's own view.
type ClusterResponse struct {
	VirtualNow float64            `json:"virtual_now"`
	TimeScale  float64            `json:"time_scale"`
	Draining   bool               `json:"draining"`
	Snapshot   core.LiveSnapshot  `json:"snapshot"`
	QPUs       []core.QPULoad     `json:"qpus"`
	Shards     []ShardClusterWire `json:"shards"`
}

// ShardClusterWire is one shard cloud's slice of /v1/cluster.
type ShardClusterWire struct {
	Shard    int               `json:"shard"`
	Snapshot core.LiveSnapshot `json:"snapshot"`
	QPUs     []core.QPULoad    `json:"qpus"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	snaps := s.f.ShardSnapshots()
	loads := s.f.QPULoads()
	resp := ClusterResponse{
		VirtualNow: s.f.Now(),
		TimeScale:  s.cfg.TimeScale,
		Draining:   s.draining,
		Snapshot:   s.f.Snapshot(),
		Shards:     make([]ShardClusterWire, s.f.NumShards()),
	}
	for i := range resp.Shards {
		resp.Shards[i] = ShardClusterWire{Shard: i, Snapshot: snaps[i], QPUs: loads[i]}
		resp.QPUs = append(resp.QPUs, loads[i]...)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// bucket is one tenant's token bucket (tokens = submissions).
type bucket struct {
	tokens float64
	last   time.Time
}

// allow takes one token from the tenant's bucket, reporting how long
// until the next token when empty. Callers hold s.mu.
func (s *Server) allow(tenant int, now time.Time) (bool, float64) {
	if s.cfg.Rate <= 0 {
		return true, 0
	}
	b := s.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(s.cfg.Burst), last: now}
		s.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * s.cfg.Rate
	if max := float64(s.cfg.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, (1 - b.tokens) / s.cfg.Rate
}

// buildCircuit resolves a submission's circuit: a qlib benchmark name
// or an inline OpenQASM 2.0 program, exactly one of the two.
func buildCircuit(req SubmitRequest) (*circuit.Circuit, error) {
	switch {
	case req.Circuit != "" && req.QASM != "":
		return nil, errors.New("set exactly one of circuit and qasm, not both")
	case req.Circuit != "":
		c, err := qlib.Build(req.Circuit)
		if err != nil {
			return nil, fmt.Errorf("unknown circuit %q", req.Circuit)
		}
		return c, nil
	case req.QASM != "":
		c, err := qasm.Parse("inline", req.QASM)
		if err != nil {
			return nil, fmt.Errorf("qasm: %v", err)
		}
		if c.NumQubits() == 0 {
			return nil, errors.New("qasm: empty register")
		}
		return c, nil
	default:
		return nil, errors.New("set one of circuit (qlib name) and qasm (inline program)")
	}
}

func sloWire(s metrics.SLOStats) SLOWire {
	out := SLOWire{
		Attainment: NullableFloat(s.Attainment),
		Fairness:   NullableFloat(s.Fairness),
		PerTenant:  make([]TenantSLOWire, 0, len(s.PerTenant)),
	}
	for _, t := range s.PerTenant {
		out.PerTenant = append(out.PerTenant, TenantSLOWire{
			Tenant:     t.Tenant,
			Weight:     t.Weight,
			Completed:  t.Completed,
			Failed:     t.Failed,
			MeanJCT:    NullableFloat(t.MeanJCT),
			P99JCT:     NullableFloat(t.P99JCT),
			Attainment: NullableFloat(t.Attainment),
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfter float64) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter))))
	}
	writeJSON(w, code, ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

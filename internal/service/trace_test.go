package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/trace"
	"cloudqc/internal/wal"
)

// newTracedWALServer is newWALServer with the span recorder attached:
// the server discovers it through the federation, no service-level
// configuration involved.
func newTracedWALServer(t *testing.T, path string) (*Server, *fakeClock, *trace.Recorder, *wal.Log) {
	t.Helper()
	trc := trace.New()
	ccfg := testControllerConfig(7, core.WFQMode)
	ccfg.Recorder = metrics.NewRecorder(5)
	ccfg.Trace = trc
	lc, err := core.NewLiveController(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	var wlog *wal.Log
	if path != "" {
		if wlog, _, err = wal.Open(path); err != nil {
			t.Fatal(err)
		}
	}
	clock := newFakeClock()
	srv, err := New(Config{Controller: lc, Now: clock.now, TimeScale: 1000, WAL: wlog})
	if err != nil {
		t.Fatal(err)
	}
	return srv, clock, trc, wlog
}

// getTrace fetches one job's trace, asserting the status code; the
// decoded response and the raw body are both returned (the raw body is
// what the WAL differential compares byte-for-byte).
func getTrace(t *testing.T, srv *Server, id int, wantCode int) (TraceResponse, string) {
	t.Helper()
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("GET", "/v1/jobs/"+itoa(id)+"/trace", nil))
	if rw.Code != wantCode {
		t.Fatalf("GET /v1/jobs/%d/trace: %d (want %d)\n%s", id, rw.Code, wantCode, rw.Body.String())
	}
	var tr TraceResponse
	if wantCode == http.StatusOK {
		if err := json.Unmarshal(rw.Body.Bytes(), &tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, rw.Body.String()
}

// TestTraceEndpointDisabled: without -trace the endpoint 404s (tracing
// off is the zero-cost default, not an empty trace), and a malformed id
// is a 400 regardless.
func TestTraceEndpointDisabled(t *testing.T) {
	srv, _, _, _, _ := newWALServer(t, "")
	getTrace(t, srv, 0, http.StatusNotFound)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("GET", "/v1/jobs/bogus/trace", nil))
	if rw.Code != http.StatusBadRequest {
		t.Fatalf("non-integer id: %d, want 400", rw.Code)
	}
}

// TestTraceEndpoint drives the standard 12-job stream on a traced
// server and checks every job's span tree: settled, attribution summing
// to the JCT bitwise, the admission decision present with the WFQ
// virtual-start tag, and at least one compile span. Unknown ids 404.
func TestTraceEndpoint(t *testing.T) {
	srv, clock, _, _ := newTracedWALServer(t, "")
	driveWALStream(t, srv, clock)
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 12; id++ {
		tr, _ := getTrace(t, srv, id, http.StatusOK)
		if tr.ID != id || !tr.Done || tr.Failed {
			t.Fatalf("job %d trace %+v", id, tr)
		}
		a := tr.Attribution
		if sum := a.Queue + a.Compile + a.Local + a.Network + a.Suspended; sum != a.JCT {
			t.Fatalf("job %d phases sum to %v, JCT %v (%+v)", id, sum, a.JCT, a)
		}
		if tr.Admit == nil || tr.Admit.Mode != "wfq" || !tr.Admit.WFQ {
			t.Fatalf("job %d admit span %+v", id, tr.Admit)
		}
		if len(tr.Compiles) == 0 {
			t.Fatalf("job %d has no compile span", id)
		}
		if tr.RoundsTotal < len(tr.Rounds) || tr.RoundsDropped != tr.RoundsTotal-len(tr.Rounds) {
			t.Fatalf("job %d ring accounting: total %d, dropped %d, retained %d",
				id, tr.RoundsTotal, tr.RoundsDropped, len(tr.Rounds))
		}
	}
	getTrace(t, srv, 99, http.StatusNotFound)
}

// TestStatsAttributionMatchesTraces is the aggregation differential:
// each tenant's attribution in /v1/stats (and the /metrics families)
// equals the sum over that tenant's per-job traces exactly — no
// sampling, no drift.
func TestStatsAttributionMatchesTraces(t *testing.T) {
	srv, clock, _, _ := newTracedWALServer(t, "")
	driveWALStream(t, srv, clock)
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	sums := map[int]*trace.TenantAttribution{}
	for id := 0; id < 12; id++ {
		tr, _ := getTrace(t, srv, id, http.StatusOK)
		ta := sums[tr.Tenant]
		if ta == nil {
			ta = &trace.TenantAttribution{Tenant: tr.Tenant}
			sums[tr.Tenant] = ta
		}
		if tr.Failed {
			ta.Failed++
		} else {
			ta.Completed++
		}
		ta.JCT += tr.Attribution.JCT
		ta.Queue += tr.Attribution.Queue
		ta.Compile += tr.Attribution.Compile
		ta.Local += tr.Attribution.Local
		ta.Network += tr.Attribution.Network
		ta.Suspended += tr.Attribution.Suspended
	}

	var stats StatsResponse
	if err := json.Unmarshal([]byte(rawGET(t, srv, "/v1/stats")), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Attribution) != len(sums) {
		t.Fatalf("stats carries %d tenant attributions, traces span %d tenants",
			len(stats.Attribution), len(sums))
	}
	for _, got := range stats.Attribution {
		want := sums[got.Tenant]
		if want == nil || got != *want {
			t.Fatalf("tenant %d attribution %+v, trace sums %+v", got.Tenant, got, want)
		}
	}

	// The /metrics families agree with the same sums.
	_, _, samples := parseExposition(t, rawGET(t, srv, "/metrics"))
	if got := samples["cloudqcd_trace_jobs_total"]; len(got) != 1 || got[0] != 12 {
		t.Fatalf("cloudqcd_trace_jobs_total = %v, want [12]", got)
	}
	var phaseSum, wantPhaseSum float64
	for _, v := range samples["cloudqcd_jct_attribution_cx_total"] {
		phaseSum += v
	}
	for _, ta := range sums {
		wantPhaseSum += ta.Queue + ta.Compile + ta.Local + ta.Network + ta.Suspended
	}
	if phaseSum != wantPhaseSum {
		t.Fatalf("attribution metric sums to %v, traces to %v", phaseSum, wantPhaseSum)
	}
}

// TestTraceWALReplay: a WAL-replayed daemon rebuilds every span tree
// byte-identically — the recorder is re-populated by replaying the
// operation stream through the same deterministic stack, so the trace
// bodies (and the stats attribution inside the full stats body) match
// the crashed process's exactly.
func TestTraceWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _ := newTracedWALServer(t, path)
	driveWALStream(t, srvA, clockA)
	if _, err := srvA.Drain(); err != nil {
		t.Fatal(err)
	}
	wantStats := rawGET(t, srvA, "/v1/stats")
	wantBodies := make([]string, 12)
	for id := 0; id < 12; id++ {
		_, wantBodies[id] = getTrace(t, srvA, id, http.StatusOK)
	}

	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, _, _ := newTracedWALServer(t, "")
	if _, err := srvB.Replay(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Drain(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 12; id++ {
		if _, got := getTrace(t, srvB, id, http.StatusOK); got != wantBodies[id] {
			t.Fatalf("job %d trace diverges after replay\n got %s\nwant %s", id, got, wantBodies[id])
		}
	}
	if got := rawGET(t, srvB, "/v1/stats"); got != wantStats {
		t.Fatalf("stats body diverges after replay\n got %s\nwant %s", got, wantStats)
	}
}

// TestTraceCrossShardRehome: a job preempted on shard 0 and resumed on
// shard 1 carries the whole story in one trace — a resolved suspension,
// positive suspended time, and a rehome span stamped with the router's
// decision — because the federation shares one recorder across shards.
func TestTraceCrossShardRehome(t *testing.T) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = 7
	f, err := fed.New(fed.Config{
		Shard: core.Config{
			Placer:  place.NewCloudQC(pCfg),
			Mode:    core.EDFMode,
			Seed:    7,
			Preempt: core.PreemptRescue,
		},
		Clouds: []*cloud.Cloud{
			cloud.NewRandom(8, 0.3, 20, 5, 1),
			cloud.New(graph.Path(3), 20, 5),
		},
		SpillDepth: 1,
		Trace:      trace.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	srv, err := New(Config{Federation: f, Now: clock.now, TimeScale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	victim := submitRaw(t, srv, SubmitRequest{Tenant: 0, Circuit: "qugan_n39"}, http.StatusAccepted)
	clock.advance(10 * time.Millisecond)
	submitRaw(t, srv, SubmitRequest{Tenant: 1, Circuit: "ghz_n127", DeadlineSlack: 1e6}, http.StatusAccepted)
	moved := false
	for i := 0; i < 400 && !moved; i++ {
		clock.advance(50 * time.Millisecond)
		rawGET(t, srv, "/v1/stats")
		if s, ok := f.ShardOf(victim.ID); ok && s == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("victim never rehomed (preempt %+v)", f.PreemptStats())
	}
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	tr, _ := getTrace(t, srv, victim.ID, http.StatusOK)
	if !tr.Done || tr.Failed {
		t.Fatalf("victim trace %+v", tr)
	}
	if len(tr.Suspends) == 0 || tr.Attribution.Suspended <= 0 {
		t.Fatalf("victim has no suspension: %+v / %+v", tr.Suspends, tr.Attribution)
	}
	for _, s := range tr.Suspends {
		if !s.Resumed {
			t.Fatalf("unresolved suspension %+v after drain", s)
		}
	}
	if len(tr.Rehomes) == 0 {
		t.Fatal("victim carries no rehome span")
	}
	last := tr.Rehomes[len(tr.Rehomes)-1]
	if last.From != 0 || last.To != 1 {
		t.Fatalf("rehome %+v, want shard 0 → 1", last)
	}
	switch last.Kind {
	case "affinity", "spill", "cold", "random", "direct":
	default:
		t.Fatalf("rehome kind %q is not a router decision", last.Kind)
	}
	if sum := tr.Attribution.Queue + tr.Attribution.Compile + tr.Attribution.Local +
		tr.Attribution.Network + tr.Attribution.Suspended; sum != tr.Attribution.JCT {
		t.Fatalf("victim phases sum to %v, JCT %v", sum, tr.Attribution.JCT)
	}
}

// TestEventsDroppedMarker: a tiny event ring overwrites unread events;
// an explicit-cursor resumer that fell off the ring gets a synthetic
// dropped marker (monotone seq, missed count), a fresh client gets
// none, and the daemon-wide drop counter surfaces on /metrics.
func TestEventsDroppedMarker(t *testing.T) {
	lc, err := core.NewLiveController(testControllerConfig(7, core.FIFOMode))
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	srv, err := New(Config{Controller: lc, Now: clock.now, TimeScale: 1000, EventBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		clock.advance(5 * time.Millisecond)
		submitRaw(t, srv, SubmitRequest{Tenant: i % 2, QASM: ghz3QASM}, http.StatusAccepted)
	}
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	srv.mu.Lock()
	dropped := srv.events.dropped
	resumed := srv.events.after(0)
	fresh := srv.events.after(-1)
	srv.mu.Unlock()
	if dropped <= 0 {
		t.Fatalf("ring of 4 never dropped across 6 submissions (dropped=%d)", dropped)
	}
	if len(resumed) == 0 || resumed[0].Type != EventDropped {
		t.Fatalf("resume after cursor 0 did not lead with a dropped marker: %+v", resumed)
	}
	mark := resumed[0]
	if mark.Job != -1 || mark.Tenant != -1 || mark.Shard != -1 || mark.Missed <= 0 {
		t.Fatalf("dropped marker %+v", mark)
	}
	if len(resumed) < 2 || mark.Seq != resumed[1].Seq-1 {
		t.Fatalf("marker seq %d must slot just before oldest retained %d", mark.Seq, resumed[1].Seq)
	}
	// Cursor 0 saw event 0; everything up to the oldest retained is lost.
	if mark.Missed != resumed[1].Seq-1 {
		t.Fatalf("marker %+v: missed %d, want %d (cursor 0 → oldest %d)",
			mark, mark.Missed, resumed[1].Seq-1, resumed[1].Seq)
	}
	for _, ev := range fresh {
		if ev.Type == EventDropped {
			t.Fatalf("fresh client (no cursor) saw a dropped marker: %+v", ev)
		}
	}

	_, _, samples := parseExposition(t, rawGET(t, srv, "/metrics"))
	if got := samples["cloudqcd_events_dropped_total"]; len(got) != 1 || got[0] != float64(dropped) {
		t.Fatalf("cloudqcd_events_dropped_total = %v, want [%d]", got, dropped)
	}
}

package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudqc/internal/core"
)

// sseRead parses one SSE stream until want events have been collected
// (heartbeat comments are skipped), then returns them. The reader must
// already be positioned at the stream start.
func sseRead(t *testing.T, sc *bufio.Scanner, want int) []Event {
	t.Helper()
	var (
		evs []Event
		cur string
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			cur = strings.TrimPrefix(line, "data: ")
		case line == "" && cur != "":
			var ev Event
			if err := json.Unmarshal([]byte(cur), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", cur, err)
			}
			evs = append(evs, ev)
			cur = ""
			if len(evs) == want {
				return evs
			}
		}
	}
	t.Fatalf("stream ended after %d events, want %d (scan err %v)", len(evs), want, sc.Err())
	return nil
}

// TestSSEJobStream: a settled job's per-job stream replays its whole
// lifecycle in order — submit, queued, placed, done — with increasing
// sequence numbers, then ends (the handler returns after the done
// event, so a plain GET completes).
func TestSSEJobStream(t *testing.T) {
	srv, ts, clock := newTestServer(t, Config{}, 7, core.FIFOMode)
	var jr JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 3, QASM: ghz3QASM}, &jr); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	clock.advance(2 * time.Second)
	rawGET(t, srv, "/v1/stats") // paces the clock; the job settles

	resp, err := http.Get(ts.URL + "/v1/jobs/" + itoa(jr.ID) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var types []string
	var evs []Event
	for _, ev := range sseRead(t, sc, 4) {
		types = append(types, ev.Type)
		evs = append(evs, ev)
	}
	if got := strings.Join(types, ","); got != "submit,queued,placed,done" {
		t.Fatalf("lifecycle %q", got)
	}
	for i, ev := range evs {
		if ev.Job != jr.ID || ev.Tenant != 3 {
			t.Fatalf("event %d targets job %d tenant %d, want job %d tenant 3", i, ev.Job, ev.Tenant, jr.ID)
		}
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("sequence not increasing: %d then %d", evs[i-1].Seq, ev.Seq)
		}
	}
	if last := evs[len(evs)-1]; last.Status != "completed" {
		t.Fatalf("done status %q", last.Status)
	}
	// The handler must have returned — the body is fully consumed.
	if sc.Scan() {
		t.Fatalf("per-job stream kept going after done: %q", sc.Text())
	}

	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/99999/events", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job events: %d, want 404", code)
	}
}

// TestSSEGlobalResume: the firehose replays the retained backlog, and a
// reconnect with Last-Event-ID (or ?since=) resumes exactly after the
// last delivered event — no duplicates, no gaps.
func TestSSEGlobalResume(t *testing.T) {
	srv, ts, clock := newTestServer(t, Config{}, 7, core.FIFOMode)
	for tenant := 0; tenant < 2; tenant++ {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: tenant, QASM: ghz3QASM}, nil); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", tenant, code)
		}
		clock.advance(time.Second)
	}
	clock.advance(2 * time.Second)
	rawGET(t, srv, "/v1/stats")

	// Two settled jobs = 8 lifecycle events. Read the first 5, note the
	// cursor, drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	first := sseRead(t, bufio.NewScanner(resp.Body), 5)
	cancel()
	resp.Body.Close()

	// Resume via Last-Event-ID: exactly the remaining 3 events arrive.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	req2, err := http.NewRequestWithContext(ctx2, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", itoa(first[len(first)-1].Seq))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := sseRead(t, bufio.NewScanner(resp2.Body), 3)
	if rest[0].Seq != first[len(first)-1].Seq+1 {
		t.Fatalf("resume gap: cursor %d then %d", first[len(first)-1].Seq, rest[0].Seq)
	}
	cancel2()

	// ?since= drives the same cursor for clients that can't set headers.
	ctx3, cancel3 := context.WithCancel(context.Background())
	defer cancel3()
	req3, err := http.NewRequestWithContext(ctx3, "GET", ts.URL+"/v1/events?since="+itoa(first[2].Seq), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	tail := sseRead(t, bufio.NewScanner(resp3.Body), 5)
	if tail[0].Seq != first[2].Seq+1 {
		t.Fatalf("?since resume gap: cursor %d then %d", first[2].Seq, tail[0].Seq)
	}
}

// TestSSEHeartbeat: an idle stream emits comment heartbeats so proxies
// keep the connection open, and the heartbeat path keeps advancing
// virtual time (the stream is a pacer even with no other traffic).
func TestSSEHeartbeat(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Heartbeat: 5 * time.Millisecond}, 7, core.FIFOMode)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": heartbeat") {
				got <- sc.Text()
				return
			}
		}
	}()
	select {
	case <-got:
	case <-deadline:
		t.Fatal("no heartbeat within 5s")
	}
}

// TestSSEPreemptResume: the cross-shard rescue surfaces as preempted /
// resumed events on the victim's stream, with the resumed event stamped
// with the shard the checkpoint landed on.
func TestSSEPreemptResume(t *testing.T) {
	srv, clock, f := newCrossShardWALServer(t, "")
	victim := submitRaw(t, srv, SubmitRequest{Tenant: 0, Circuit: "qugan_n39"}, http.StatusAccepted)
	clock.advance(10 * time.Millisecond)
	submitRaw(t, srv, SubmitRequest{Tenant: 1, Circuit: "ghz_n127", DeadlineSlack: 1e6}, http.StatusAccepted)
	moved := false
	for i := 0; i < 400 && !moved; i++ {
		clock.advance(50 * time.Millisecond)
		rawGET(t, srv, "/v1/stats")
		if s, ok := f.ShardOf(victim.ID); ok && s == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("victim never rehomed (preempt %+v)", f.PreemptStats())
	}
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}

	// The per-job stream replays the whole retained lifecycle and ends
	// at done, so the recorder captures the complete body.
	body := rawGET(t, srv, "/v1/jobs/"+itoa(victim.ID)+"/events")
	sc := bufio.NewScanner(strings.NewReader(body))
	var evs []Event
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(sc.Text(), "data: ")), &ev); err != nil {
				t.Fatal(err)
			}
			evs = append(evs, ev)
		}
	}
	var preempted, resumed bool
	for _, ev := range evs {
		switch ev.Type {
		case EventPreempted:
			preempted = true
		case EventResumed:
			resumed = true
			if ev.Shard != 1 {
				t.Fatalf("resumed on shard %d, want 1", ev.Shard)
			}
		}
	}
	if !preempted || !resumed {
		t.Fatalf("lifecycle missing preempted/resumed: %+v", evs)
	}
	if last := evs[len(evs)-1]; last.Type != EventDone || last.Status != "completed" {
		t.Fatalf("final event %+v", last)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

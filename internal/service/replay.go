package service

import (
	"time"

	"errors"
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/wal"
)

// Replay rebuilds the server's state from write-ahead-log records
// recovered by wal.Open, before the server takes traffic. Replay is
// exact, not approximate: step records re-walk the original daemon's
// StepUntil boundaries (preserving shared-WFQ billing order and
// preemption rehoming instants) and job records re-submit each accepted
// job with its original arrival stamp, so the deterministic router and
// id sequencer reassign the very same shard-tagged ids and the
// LiveController-matches-Run guarantee makes every result, round count,
// and recorder sample bit-identical to the uninterrupted run
// (TestWALReplayDifferential).
//
// Rate limits and quotas are not re-checked — each logged job already
// passed them — but the load-shedding degrade rule is re-applied at
// each record, reproducing any WFQ→FIFO stretches. Shed (503) and
// rejected (429) submissions were never logged, so nothing replays
// them. After Replay the wall→virtual epoch is re-anchored so the
// pacer continues from the recovered virtual time instead of jumping
// back to zero.
//
// The record stream may be fed in consecutive chunks (each call
// continues where the previous ended), but never twice: a step record
// at or behind the replayed position is rejected, which is what makes
// accidental double-replay of the same log a loud error instead of a
// silently forked history.
func (s *Server) Replay(recs []wal.Record) (jobs int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, errors.New("service: replay into a drained server")
	}
	for i, rec := range recs {
		switch rec.Type {
		case wal.TypeStep:
			if rec.V <= s.walV {
				return jobs, fmt.Errorf("service: replay record %d steps to virtual time %g, at or behind the replayed position %g (duplicate or out-of-order replay?)", i, rec.V, s.walV)
			}
			if err := s.f.StepUntil(rec.V); err != nil {
				return jobs, fmt.Errorf("service: replay record %d (step to %g): %w", i, rec.V, err)
			}
			s.walV = rec.V
		case wal.TypeJob:
			circ, cerr := buildCircuit(SubmitRequest{Circuit: rec.Circuit, QASM: rec.QASM})
			if cerr != nil {
				return jobs, fmt.Errorf("service: replay record %d: %v", i, cerr)
			}
			// The same degrade decision the live path took before this
			// submission, at the same backlog (and the same skip of the
			// backlog snapshot when no watermark is configured).
			if s.cfg.ShedBacklog > 0 || s.cfg.DegradeBacklog > 0 {
				s.applyDegrade(s.backlog())
			}
			job := &core.Job{
				ID:       -1,
				Circuit:  circ,
				Arrival:  rec.V,
				Tenant:   rec.Tenant,
				Priority: rec.Priority,
				Deadline: rec.Deadline,
			}
			if serr := s.f.Submit(job); serr != nil {
				return jobs, fmt.Errorf("service: replay record %d (job): %w", i, serr)
			}
			s.noteSubmitted(job)
			jobs++
		case wal.TypeFault:
			// Re-inject at the same stream position. The live path only
			// logged injections the federation had already accepted, so an
			// error here means the log and the build disagree (wrong
			// topology or shard count) — fail loudly rather than diverge.
			if rec.Fault == nil {
				return jobs, fmt.Errorf("service: replay record %d (fault) carries no event", i)
			}
			if ferr := s.f.Inject(*rec.Fault); ferr != nil {
				return jobs, fmt.Errorf("service: replay record %d (fault %s): %w", i, rec.Fault.Kind, ferr)
			}
		default:
			return jobs, fmt.Errorf("service: replay record %d has unknown type %q", i, rec.Type)
		}
	}
	s.sweep()
	// Re-anchor the pacer: the next advance at wall time "now" must map
	// onto the replayed virtual position, not restart at zero. Nanosecond
	// rounding can land the next computed v a hair below walV; the
	// advance-side v > walV guard and StepUntil's clamp absorb that.
	if s.walV > 0 {
		s.epoch = s.cfg.Now().Add(-time.Duration(s.walV / s.cfg.TimeScale * float64(time.Second)))
	}
	return jobs, nil
}

package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cloudqc/internal/core"
)

// Event types, in a job's lifecycle order. A preempted job may cycle
// placed→preempted→resumed any number of times before done.
const (
	// EventSubmit: the service accepted the submission (202 sent).
	EventSubmit = "submit"
	// EventQueued: the job's arrival entered the admission queue.
	EventQueued = "queued"
	// EventPlaced: admission reserved qubits and execution started.
	EventPlaced = "placed"
	// EventPreempted: preemption checkpointed the job off the cloud.
	EventPreempted = "preempted"
	// EventEvicted: a fault (QPU outage or shard drain) checkpointed
	// the job off its placement; it re-enters the queue under its
	// original id for re-placement elsewhere.
	EventEvicted = "evicted"
	// EventResumed: the checkpoint replayed onto a fresh placement
	// (possibly on another shard — Shard says where it landed).
	EventResumed = "resumed"
	// EventDone: the job settled; Status is "completed" or "failed".
	EventDone = "done"
	// EventDropped: a synthetic marker, never stored in the ring — a
	// resuming client's cursor predates the oldest retained event, so
	// Missed events were overwritten before it reconnected. Emitted
	// once at the head of the replay; the stream then continues from
	// the oldest retained event.
	EventDropped = "dropped"
)

// Event is one SSE payload: job Job (owned by tenant Tenant) underwent
// Type on shard Shard at virtual time VTime. Seq is the stream cursor —
// reconnect with Last-Event-ID (or ?since=) set to the last seen Seq to
// resume without gaps, as long as the server's event ring still holds
// it. Events are an in-memory convenience, not durable state: a
// restarted daemon regenerates them from WAL replay.
type Event struct {
	Seq    int     `json:"seq"`
	Type   string  `json:"type"`
	Job    int     `json:"job"`
	Tenant int     `json:"tenant"`
	Shard  int     `json:"shard"`
	VTime  float64 `json:"vtime"`
	// Status is the job's settled state on EventDone, empty otherwise.
	Status string `json:"status,omitempty"`
	// Missed counts ring-overwritten events on an EventDropped marker,
	// zero otherwise.
	Missed int `json:"missed,omitempty"`
}

// eventLog is a bounded ring of events with a broadcast channel:
// publishing closes the current wait channel, waking every blocked
// stream to collect what it missed. All access under Server.mu.
type eventLog struct {
	buf   []Event
	start int // ring index of the oldest retained event
	n     int
	seq   int // next sequence number
	// dropped counts events the full ring overwrote — the
	// cloudqcd_events_dropped_total series, and the reason resuming
	// clients can see a "dropped" marker.
	dropped int
	wake    chan struct{}
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{buf: make([]Event, capacity), wake: make(chan struct{})}
}

// append stamps ev with the next sequence number, retains it (evicting
// the oldest event when full), and wakes blocked streams.
func (l *eventLog) append(ev Event) {
	ev.Seq = l.seq
	l.seq++
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = ev
		l.n++
	} else {
		l.buf[l.start] = ev
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	}
	close(l.wake)
	l.wake = make(chan struct{})
}

// after returns copies of every retained event with Seq > since. A
// cursor that predates the oldest retained event gets a synthetic
// EventDropped marker first, telling the client how many events the
// ring overwrote in its gap; the marker's Seq is one below the oldest
// retained event so the stream's cursor stays monotone through it.
func (l *eventLog) after(since int) []Event {
	var out []Event
	if oldest := l.seq - l.n; since >= 0 && since+1 < oldest {
		out = append(out, Event{
			Seq: oldest - 1, Type: EventDropped, Job: -1, Tenant: -1, Shard: -1,
			Missed: oldest - 1 - since,
		})
	}
	for i := 0; i < l.n; i++ {
		ev := l.buf[(l.start+i)%len(l.buf)]
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}

// waitCh returns the channel the next append closes.
func (l *eventLog) waitCh() chan struct{} { return l.wake }

// onTransition is the federation's status-transition hook: it maps core
// lifecycle transitions onto wire events. It fires synchronously inside
// StepUntil — the caller already holds s.mu, so it must only touch
// plain state (never lock, never call back into the federation beyond
// what transition delivery allows).
func (s *Server) onTransition(shard int, tr core.Transition) {
	ev := Event{Job: tr.JobID, Tenant: s.jobTenant[tr.JobID], Shard: shard, VTime: tr.At}
	switch {
	case tr.To == core.StatusPending:
		// Internal: submission acceptance already emitted EventSubmit,
		// and a cross-shard resume's re-validation lands as EventResumed
		// when the checkpoint is re-placed.
		return
	case tr.To == core.StatusQueued && tr.Reason == core.ReasonPreempted:
		ev.Type = EventPreempted
	case tr.To == core.StatusQueued && tr.Reason == core.ReasonEvicted:
		ev.Type = EventEvicted
	case tr.To == core.StatusQueued:
		ev.Type = EventQueued
	case tr.To == core.StatusRunning && tr.Reason == core.ReasonResumed:
		ev.Type = EventResumed
	case tr.To == core.StatusRunning:
		ev.Type = EventPlaced
	case tr.To == core.StatusCompleted || tr.To == core.StatusFailed:
		ev.Type = EventDone
		ev.Status = tr.To.String()
		delete(s.jobTenant, tr.JobID)
	default:
		return
	}
	s.events.append(ev)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.streamEvents(w, r, -1)
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer", 0)
		return
	}
	s.mu.Lock()
	_, status := s.f.Result(id)
	s.mu.Unlock()
	if status == core.StatusUnknown {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %d", id), 0)
		return
	}
	s.streamEvents(w, r, id)
}

// streamEvents serves one SSE connection: replay the retained backlog
// past the client's cursor, then block for new events, advancing the
// virtual clock on a heartbeat so streams make progress even with no
// other traffic. jobID ≥ 0 filters to one job and ends after its done
// event; -1 streams everything until the client disconnects.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, jobID int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported", 0)
		return
	}
	since := -1
	if c := r.Header.Get("Last-Event-ID"); c != "" {
		if n, err := strconv.Atoi(c); err == nil {
			since = n
		}
	} else if c := r.URL.Query().Get("since"); c != "" {
		if n, err := strconv.Atoi(c); err == nil {
			since = n
		}
	}
	// SSE outlives any server write deadline by design.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	_ = rc.SetReadDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	heartbeat := time.NewTimer(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		s.mu.Lock()
		if err := s.advance(s.cfg.Now()); err != nil {
			s.mu.Unlock()
			return
		}
		s.sweep()
		evs := s.events.after(since)
		wake := s.events.waitCh()
		s.mu.Unlock()

		done := false
		for _, ev := range evs {
			since = ev.Seq
			// Dropped markers pass the per-job filter: a gap in the ring
			// may have swallowed this job's events too.
			if jobID >= 0 && ev.Job != jobID && ev.Type != EventDropped {
				continue
			}
			writeSSE(w, ev)
			if jobID >= 0 && ev.Type == EventDone {
				done = true
			}
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if done {
			return
		}
		if !heartbeat.Stop() {
			select {
			case <-heartbeat.C:
			default:
			}
		}
		heartbeat.Reset(s.cfg.Heartbeat)
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-heartbeat.C:
			// Keep proxies from idling the connection out, and re-enter
			// the loop so the advance above moves virtual time along.
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE frames one event: its Seq doubles as the SSE id, so
// EventSource's automatic Last-Event-ID reconnect resumes the cursor.
func writeSSE(w io.Writer, ev Event) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
)

// fakeClock drives the virtual-time pacer deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testControllerConfig is shared between the server under test and the
// offline reference Run, so stats can be compared bit-for-bit.
func testControllerConfig(seed int64, mode core.Mode) core.Config {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	return core.Config{
		Cloud:  cloud.NewRandom(10, 0.3, 20, 5, 1),
		Placer: place.NewCloudQC(pCfg),
		Mode:   mode,
		Seed:   seed,
	}
}

func newTestServer(t *testing.T, cfg Config, seed int64, mode core.Mode) (*Server, *httptest.Server, *fakeClock) {
	t.Helper()
	lc, err := core.NewLiveController(testControllerConfig(seed, mode))
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	cfg.Controller = lc
	cfg.Now = clock.now
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1000
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, clock
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %s %s response (%d): %v\n%s", method, url, resp.StatusCode, err, data)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestServiceEndToEnd is the acceptance flow: two tenants submit over
// HTTP, one exceeds its in-flight quota (429 with a retry hint), jobs
// are polled to completion under the virtual-time pacer, and the final
// /v1/stats SLO numbers match AggregateSLO over an offline Run of the
// identical stream.
func TestServiceEndToEnd(t *testing.T) {
	const seed = 11
	_, ts, clock := newTestServer(t, Config{MaxInFlight: 2}, seed, core.WFQMode)

	type accepted struct {
		resp    JobResponse
		circuit string
		prio    int
	}
	var stream []accepted
	submit := func(tenant, prio int, name string, slack float64) (JobResponse, int, http.Header) {
		var jr JobResponse
		code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{
			Tenant: tenant, Priority: prio, Circuit: name, DeadlineSlack: slack,
		}, &jr)
		if code == http.StatusAccepted {
			stream = append(stream, accepted{resp: jr, circuit: name, prio: prio})
		}
		return jr, code, hdr
	}

	// Tenant 0 fills its quota; tenant 1 is unaffected by it.
	if _, code, _ := submit(0, 1, "qft_n29", 50); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	clock.advance(100 * time.Millisecond)
	if _, code, _ := submit(0, 1, "qugan_n39", 50); code != http.StatusAccepted {
		t.Fatalf("second submit: %d", code)
	}
	var rej ErrorResponse
	code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 0, Circuit: "qft_n29"}, &rej)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" || rej.RetryAfterSeconds <= 0 {
		t.Fatalf("429 without retry hint: header %q, body %+v", hdr.Get("Retry-After"), rej)
	}
	if !strings.Contains(rej.Error, "quota") {
		t.Fatalf("429 error %q does not mention the quota", rej.Error)
	}
	clock.advance(100 * time.Millisecond)
	if _, code, _ := submit(1, 4, "ghz_n127", 80); code != http.StatusAccepted {
		t.Fatalf("tenant 1 submit: %d", code)
	}

	// Poll all jobs to completion under the pacer.
	poll := func(id int) JobResponse {
		var jr JobResponse
		for i := 0; i < 300; i++ {
			code, _ := doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil, &jr)
			if code != http.StatusOK {
				t.Fatalf("poll job %d: %d", id, code)
			}
			if jr.Status == "completed" || jr.Status == "failed" {
				return jr
			}
			clock.advance(2 * time.Second)
		}
		t.Fatalf("job %d never settled: %+v", id, jr)
		return jr
	}
	for i := 0; i < 3; i++ {
		if jr := poll(i); jr.Status != "completed" {
			t.Fatalf("job %d = %+v, want completed", i, jr)
		}
	}

	// Quota freed: tenant 0 may submit again.
	jr4, code, _ := submit(0, 1, "qft_n29", 50)
	if code != http.StatusAccepted {
		t.Fatalf("post-completion submit: %d, want 202", code)
	}
	if got := poll(jr4.ID); got.Status != "completed" {
		t.Fatalf("job %d = %+v, want completed", jr4.ID, got)
	}

	// Stats must match AggregateSLO/AggregateOnline over an offline Run
	// of the identical stream (same arrivals, tenants, deadlines).
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Submitted != len(stream) || stats.Settled != len(stream) {
		t.Fatalf("stats counts %+v, want %d submitted and settled", stats, len(stream))
	}
	if stats.Rejected != 1 {
		t.Fatalf("stats rejected = %d, want 1", stats.Rejected)
	}

	jobs := make([]*core.Job, 0, len(stream))
	for _, a := range stream {
		c, err := buildCircuit(SubmitRequest{Circuit: a.circuit})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, &core.Job{
			ID:       a.resp.ID,
			Circuit:  c,
			Arrival:  a.resp.Arrival,
			Tenant:   a.resp.Tenant,
			Priority: a.prio,
			Deadline: a.resp.Deadline,
		})
	}
	ref, err := core.NewController(testControllerConfig(seed, core.WFQMode))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantSLO := metrics.AggregateSLO(core.Outcomes(want))
	if stats.SLO.Attainment.IsNull() || float64(stats.SLO.Attainment) != wantSLO.Attainment {
		t.Fatalf("SLO attainment %v, want %v", stats.SLO.Attainment, wantSLO.Attainment)
	}
	if stats.SLO.Fairness.IsNull() || float64(stats.SLO.Fairness) != wantSLO.Fairness {
		t.Fatalf("SLO fairness %v, want %v", stats.SLO.Fairness, wantSLO.Fairness)
	}
	if len(stats.SLO.PerTenant) != len(wantSLO.PerTenant) {
		t.Fatalf("per-tenant count %d, want %d", len(stats.SLO.PerTenant), len(wantSLO.PerTenant))
	}
	for i, wt := range wantSLO.PerTenant {
		gt := stats.SLO.PerTenant[i]
		if gt.Tenant != wt.Tenant || gt.Completed != wt.Completed || gt.Failed != wt.Failed ||
			float64(gt.MeanJCT) != wt.MeanJCT ||
			float64(gt.Attainment) != wt.Attainment {
			t.Fatalf("tenant %d SLO diverged: got %+v, want %+v", wt.Tenant, gt, wt)
		}
	}
	var jcts, waits []float64
	makespan := 0.0
	for _, r := range want {
		jcts = append(jcts, r.JCT)
		waits = append(waits, r.WaitTime)
		if r.Finished > makespan {
			makespan = r.Finished
		}
	}
	wantOnline := metrics.AggregateOnline(jcts, waits, 0, makespan)
	if stats.Online != wantOnline {
		t.Fatalf("online stats diverged:\ngot  %+v\nwant %+v", stats.Online, wantOnline)
	}
}

// TestServiceRateLimit exercises the token bucket: Burst submissions
// pass, the next is 429 with the refill time, and the bucket refills
// with the wall clock.
func TestServiceRateLimit(t *testing.T) {
	_, ts, clock := newTestServer(t, Config{Rate: 1, Burst: 2}, 3, core.FIFOMode)
	submit := func() (int, http.Header, ErrorResponse) {
		var e ErrorResponse
		var jr json.RawMessage
		code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 0, Circuit: "qft_n29"}, &jr)
		if code != http.StatusAccepted {
			_ = json.Unmarshal(jr, &e)
		}
		return code, hdr, e
	}
	for i := 0; i < 2; i++ {
		if code, _, e := submit(); code != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d %+v", i, code, e)
		}
	}
	code, hdr, e := submit()
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: %d, want 429", code)
	}
	if e.RetryAfterSeconds <= 0 || e.RetryAfterSeconds > 1 {
		t.Fatalf("retry_after_seconds = %v, want (0, 1]", e.RetryAfterSeconds)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", hdr.Get("Retry-After"))
	}
	// A different tenant has its own bucket.
	var jr JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 1, Circuit: "qft_n29"}, &jr); code != http.StatusAccepted {
		t.Fatalf("tenant 1 submit: %d", code)
	}
	// The bucket refills with the wall clock.
	clock.advance(1100 * time.Millisecond)
	if code, _, e := submit(); code != http.StatusAccepted {
		t.Fatalf("post-refill submit: %d %+v", code, e)
	}
}

// TestServiceSubmitValidation locks down the 400 paths.
func TestServiceSubmitValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, 5, core.BatchMode)
	cases := []struct {
		name string
		req  SubmitRequest
		want string
	}{
		{"empty", SubmitRequest{}, "set one of"},
		{"both", SubmitRequest{Circuit: "qft_n29", QASM: "OPENQASM 2.0;"}, "not both"},
		{"unknown", SubmitRequest{Circuit: "nope_n1"}, "unknown circuit"},
		{"badqasm", SubmitRequest{QASM: "qreg q[2]; frobnicate q[0];"}, "qasm"},
	}
	for _, tc := range cases {
		var e ErrorResponse
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", tc.req, &e)
		if code != http.StatusBadRequest || !strings.Contains(e.Error, tc.want) {
			t.Fatalf("%s: code %d err %q, want 400 containing %q", tc.name, code, e.Error, tc.want)
		}
	}
	var e ErrorResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/abc", nil, &e); code != http.StatusBadRequest {
		t.Fatalf("non-integer id: %d, want 400", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/99", nil, &e); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d, want 404", code)
	}
}

// TestServiceInlineQASM submits an inline OpenQASM program and runs it
// to completion.
func TestServiceInlineQASM(t *testing.T) {
	_, ts, clock := newTestServer(t, Config{}, 7, core.BatchMode)
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[2];`
	var jr JobResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 2, QASM: src}, &jr)
	if code != http.StatusAccepted {
		t.Fatalf("inline qasm submit: %d", code)
	}
	for i := 0; i < 100 && jr.Status != "completed"; i++ {
		clock.advance(time.Second)
		doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, jr.ID), nil, &jr)
	}
	if jr.Status != "completed" {
		t.Fatalf("inline qasm job = %+v, want completed", jr)
	}
}

// TestServiceClusterEndpoint checks the cluster view's accounting.
func TestServiceClusterEndpoint(t *testing.T) {
	_, ts, clock := newTestServer(t, Config{}, 9, core.BatchMode)
	var cr ClusterResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cluster", nil, &cr); code != http.StatusOK {
		t.Fatal("cluster endpoint failed")
	}
	if cr.Snapshot.Active != 0 || cr.Snapshot.Utilization != 0 || len(cr.QPUs) != 10 {
		t.Fatalf("idle cluster = %+v", cr)
	}
	var jr JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "ghz_n127"}, &jr); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	clock.advance(50 * time.Millisecond)
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/cluster", nil, &cr); code != http.StatusOK {
		t.Fatal("cluster endpoint failed")
	}
	if cr.Snapshot.Active != 1 {
		t.Fatalf("cluster after submit = %+v, want 1 active", cr.Snapshot)
	}
	if cr.Snapshot.Utilization <= 0 || cr.Snapshot.Utilization > 1 {
		t.Fatalf("utilization %v out of range", cr.Snapshot.Utilization)
	}
	used := 0
	for _, q := range cr.QPUs {
		used += q.UsedComputing
	}
	if want := int(math.Round(cr.Snapshot.Utilization * 200)); used != want {
		t.Fatalf("per-QPU used %d inconsistent with utilization %v (want %d of 200)",
			used, cr.Snapshot.Utilization, want)
	}
}

// TestServiceDrain: draining rejects new submissions with 409 Conflict
// (the typed core.ErrDrained condition), settles the backlog, and
// keeps status/stats readable.
func TestServiceDrain(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{}, 13, core.FIFOMode)
	var jr JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "qft_n29"}, &jr); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	results, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Failed {
		t.Fatalf("drain results = %+v", results)
	}
	var e ErrorResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "qft_n29"}, &e); code != http.StatusConflict {
		t.Fatalf("post-drain submit: %d, want 409", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/0", nil, &jr); code != http.StatusOK || jr.Status != "completed" {
		t.Fatalf("post-drain status: %d %+v", code, jr)
	}
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK || stats.Settled != 1 {
		t.Fatalf("post-drain stats: %d %+v", code, stats)
	}
	if _, err := srv.Drain(); err == nil {
		t.Fatal("second drain should error")
	}
}

// TestServiceConfigValidation locks down New's validation and defaults.
func TestServiceConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil backend should error")
	}
	lc, err := core.NewLiveController(testControllerConfig(1, core.BatchMode))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Controller: lc, Federation: fed.Wrap(lc)}); err == nil {
		t.Fatal("both Controller and Federation should error")
	}
	if _, err := New(Config{Controller: lc, TimeScale: -1}); err == nil {
		t.Fatal("negative TimeScale should error")
	}
	srv, err := New(Config{Controller: lc, Rate: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.TimeScale != 1000 || srv.cfg.Burst != 3 {
		t.Fatalf("defaults: TimeScale %v Burst %d, want 1000 and ceil(Rate)=3",
			srv.cfg.TimeScale, srv.cfg.Burst)
	}
}

// TestServiceConcurrentRequests hammers the server from parallel
// clients — the mutex around the live controller is the only thing
// between them, so the race lane (go test -race) exercises it for real.
// Uses the real wall clock: interleavings are arbitrary by design.
func TestServiceConcurrentRequests(t *testing.T) {
	lc, err := core.NewLiveController(testControllerConfig(17, core.WFQMode))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Controller: lc, TimeScale: 100000, Rate: 1000, Burst: 4, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				body, _ := json.Marshal(SubmitRequest{Tenant: tenant, Circuit: "qft_n29", DeadlineSlack: 50})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("tenant %d submit %d: %d", tenant, i, resp.StatusCode)
					return
				}
			}
		}(tenant)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/v1/stats", "/v1/cluster", "/v1/jobs/0"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, res := range lc.Results() {
		if !lc.Status(res.Job.ID).Settled() {
			t.Fatalf("job %d unsettled after drain", res.Job.ID)
		}
	}
}

// TestServiceQuotaDoesNotBurnRateTokens: quota rejections are checked
// before the token bucket, so polling for a free slot cannot exhaust
// the rate budget the eventual accepted submission needs.
func TestServiceQuotaDoesNotBurnRateTokens(t *testing.T) {
	_, ts, clock := newTestServer(t, Config{Rate: 1, Burst: 1, MaxInFlight: 1}, 3, core.FIFOMode)
	submit := func() (int, ErrorResponse) {
		var raw json.RawMessage
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 0, Circuit: "qft_n29"}, &raw)
		var e ErrorResponse
		if code != http.StatusAccepted {
			_ = json.Unmarshal(raw, &e)
		}
		return code, e
	}
	if code, e := submit(); code != http.StatusAccepted {
		t.Fatalf("first submit: %d %+v", code, e)
	}
	// Over quota with an empty bucket: the rejection must name the
	// quota, proving the quota check runs before the rate check.
	code, e := submit()
	if code != http.StatusTooManyRequests || !strings.Contains(e.Error, "quota") {
		t.Fatalf("immediate retry: %d %q, want 429 quota", code, e.Error)
	}
	// Retry just before the job settles (its JCT is 2990.9 CX, i.e.
	// wall +2.9909s at timescale 1000): still over quota; must not
	// debit the token the bucket refilled in the meantime.
	clock.advance(2900 * time.Millisecond)
	if code, e := submit(); code != http.StatusTooManyRequests || !strings.Contains(e.Error, "quota") {
		t.Fatalf("pre-settle retry: %d %q, want 429 quota", code, e.Error)
	}
	// 100ms later the job has settled. Only 0.1 tokens refilled since
	// the retry, so if that rejection had burned the token this
	// submission would bounce off the rate limit instead of landing.
	clock.advance(100 * time.Millisecond)
	if code, e := submit(); code != http.StatusAccepted {
		t.Fatalf("post-settle submit: %d %+v (quota rejections burned the rate budget?)", code, e)
	}
}

package service

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
)

// metricFamily is one /metrics series: its name, Prometheus type, and
// one-line meaning. The table drives the exposition's HELP/TYPE headers
// and is cross-checked against docs/OPERATIONS.md's metrics reference
// by TestMetricsEndpoint, so the operator doc cannot drift from what
// the daemon actually serves.
type metricFamily struct {
	name, typ, help string
}

// metricFamilies lists every exposed series, in exposition order.
var metricFamilies = []metricFamily{
	{"cloudqcd_virtual_time_cx", "gauge", "Current virtual time in CX units."},
	{"cloudqcd_rounds_total", "counter", "Scheduling rounds executed across all shards."},
	{"cloudqcd_events_total", "counter", "Discrete events handled across all shards."},
	{"cloudqcd_utilization", "gauge", "Capacity-weighted fraction of computing qubits reserved."},
	{"cloudqcd_backlog", "gauge", "Jobs waiting for service (pending + queued), all shards."},
	{"cloudqcd_queue_depth", "gauge", "Jobs waiting for service on one shard (label: shard)."},
	{"cloudqcd_jobs_submitted_total", "counter", "Accepted submissions."},
	{"cloudqcd_jobs_settled_total", "counter", "Jobs settled (completed + failed)."},
	{"cloudqcd_jobs_completed_total", "counter", "Jobs completed."},
	{"cloudqcd_jobs_failed_total", "counter", "Jobs failed."},
	{"cloudqcd_jobs_rejected_total", "counter", "429-rejected submissions (labels: tenant, reason=rate|quota)."},
	{"cloudqcd_jobs_shed_total", "counter", "503-shed submissions past the shedding watermark (label: tenant)."},
	{"cloudqcd_tenant_inflight", "gauge", "Unsettled jobs per tenant (label: tenant)."},
	{"cloudqcd_admission_degraded", "gauge", "1 while admission is degraded to FIFO by the backlog watermark."},
	{"cloudqcd_plan_cache_hits_total", "counter", "Plan-cache hits, summed across shards."},
	{"cloudqcd_plan_cache_misses_total", "counter", "Plan-cache misses, summed across shards."},
	{"cloudqcd_plan_cache_evictions_total", "counter", "Plan-cache LRU evictions, summed across shards."},
	{"cloudqcd_plan_cache_size", "gauge", "Plan-cache entries resident, summed across shards."},
	{"cloudqcd_plan_cache_capacity", "gauge", "Plan-cache capacity bound, summed across shards."},
	{"cloudqcd_preemptions_total", "counter", "Jobs checkpointed off the cloud by preemption."},
	{"cloudqcd_resumes_total", "counter", "Preempted jobs resumed onto a fresh placement."},
	{"cloudqcd_rescued_deadlines_total", "counter", "Preemption-triggering jobs that then met their deadline."},
	{"cloudqcd_router_decisions_total", "counter", "Admission-router decisions (label: kind=affinity|spill|cold|random)."},
	{"cloudqcd_faults_injected_total", "counter", "Faults fired by the injector (label: kind=qpu_outage|link_degrade|shard_drain)."},
	{"cloudqcd_jobs_rescued_total", "counter", "Jobs checkpointed off a failed resource and re-enqueued (label: cause=qpu_outage|shard_drain)."},
	{"cloudqcd_fault_retries_total", "counter", "Remote-gate rounds that failed across degraded links."},
	{"cloudqcd_fault_reroutes_total", "counter", "Dead-edge route-arounds applied to running jobs."},
	{"cloudqcd_fault_retry_exhausted_total", "counter", "Jobs failed after exhausting their degraded-link retry budget."},
	{"cloudqcd_events_dropped_total", "counter", "SSE events overwritten by the full event ring before any client read them."},
	{"cloudqcd_trace_jobs_total", "counter", "Job traces held by the span recorder (0 while tracing is off)."},
	{"cloudqcd_jct_attribution_cx_total", "counter", "Settled virtual time per phase, CX units (labels: tenant, phase=queue|compile|local|network|suspended)."},
	{"cloudqcd_wal_enabled", "gauge", "1 when a write-ahead log is attached."},
	{"cloudqcd_wal_records_total", "counter", "WAL records appended since open."},
	{"cloudqcd_wal_bytes_total", "counter", "WAL bytes appended since open."},
	{"cloudqcd_wal_fsyncs_total", "counter", "WAL fsyncs issued (one per accepted submission)."},
	{"cloudqcd_wal_fsync_seconds_total", "counter", "Total WAL fsync latency in seconds (divide by fsyncs for the mean)."},
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4), hand-rolled: the repo takes no client-library
// dependency for what is a few fmt.Fprintf calls.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.mu.Lock()
	if err := s.advance(s.cfg.Now()); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	s.sweep()
	s.renderMetrics(&buf)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// renderMetrics writes the full exposition. Callers hold s.mu and have
// advanced + swept.
func (s *Server) renderMetrics(buf *bytes.Buffer) {
	snap := s.f.Snapshot()
	shardSnaps := s.f.ShardSnapshots()
	pc := s.f.PlanCacheStats()
	pre := s.f.PreemptStats()
	rt := s.f.RouterStats()

	completed, failed := 0, 0
	for _, res := range s.settled {
		if res.Failed {
			failed++
		} else {
			completed++
		}
	}

	emit := func(name string, sample func()) {
		fam := familyNamed(name)
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		sample()
	}
	plain := func(name string, v float64) {
		emit(name, func() { fmt.Fprintf(buf, "%s %s\n", name, fmtFloat(v)) })
	}

	plain("cloudqcd_virtual_time_cx", s.f.Now())
	plain("cloudqcd_rounds_total", float64(snap.Rounds))
	plain("cloudqcd_events_total", float64(snap.Events))
	plain("cloudqcd_utilization", snap.Utilization)
	plain("cloudqcd_backlog", float64(snap.Pending+snap.Queued))
	emit("cloudqcd_queue_depth", func() {
		for i, sh := range shardSnaps {
			fmt.Fprintf(buf, "cloudqcd_queue_depth{shard=\"%d\"} %d\n", i, sh.Pending+sh.Queued)
		}
	})
	plain("cloudqcd_jobs_submitted_total", float64(s.submitted))
	plain("cloudqcd_jobs_settled_total", float64(len(s.settled)))
	plain("cloudqcd_jobs_completed_total", float64(completed))
	plain("cloudqcd_jobs_failed_total", float64(failed))
	emit("cloudqcd_jobs_rejected_total", func() {
		for _, t := range sortedKeys(s.rejRate) {
			fmt.Fprintf(buf, "cloudqcd_jobs_rejected_total{tenant=\"%d\",reason=\"rate\"} %d\n", t, s.rejRate[t])
		}
		for _, t := range sortedKeys(s.rejQuota) {
			fmt.Fprintf(buf, "cloudqcd_jobs_rejected_total{tenant=\"%d\",reason=\"quota\"} %d\n", t, s.rejQuota[t])
		}
	})
	emit("cloudqcd_jobs_shed_total", func() {
		for _, t := range sortedKeys(s.shed) {
			fmt.Fprintf(buf, "cloudqcd_jobs_shed_total{tenant=\"%d\"} %d\n", t, s.shed[t])
		}
	})
	emit("cloudqcd_tenant_inflight", func() {
		tenants := make([]int, 0, len(s.unsettled))
		for t := range s.unsettled {
			tenants = append(tenants, t)
		}
		sort.Ints(tenants)
		for _, t := range tenants {
			fmt.Fprintf(buf, "cloudqcd_tenant_inflight{tenant=\"%d\"} %d\n", t, len(s.unsettled[t]))
		}
	})
	degraded := 0.0
	if s.degraded {
		degraded = 1
	}
	plain("cloudqcd_admission_degraded", degraded)
	plain("cloudqcd_plan_cache_hits_total", float64(pc.Hits))
	plain("cloudqcd_plan_cache_misses_total", float64(pc.Misses))
	plain("cloudqcd_plan_cache_evictions_total", float64(pc.Evictions))
	plain("cloudqcd_plan_cache_size", float64(pc.Size))
	plain("cloudqcd_plan_cache_capacity", float64(pc.Capacity))
	plain("cloudqcd_preemptions_total", float64(pre.Preemptions))
	plain("cloudqcd_resumes_total", float64(pre.Resumes))
	plain("cloudqcd_rescued_deadlines_total", float64(pre.RescuedDeadlines))
	emit("cloudqcd_router_decisions_total", func() {
		for _, kv := range []struct {
			kind string
			n    int64
		}{{"affinity", rt.AffinityHits}, {"spill", rt.Spills}, {"cold", rt.Cold}, {"random", rt.Random}} {
			fmt.Fprintf(buf, "cloudqcd_router_decisions_total{kind=%q} %d\n", kv.kind, kv.n)
		}
	})
	fs := s.f.FaultStats()
	emit("cloudqcd_faults_injected_total", func() {
		for _, kv := range []struct {
			kind string
			n    int64
		}{{"qpu_outage", fs.QPUOutages}, {"link_degrade", fs.LinkDegrades}, {"shard_drain", fs.ShardDrains}} {
			fmt.Fprintf(buf, "cloudqcd_faults_injected_total{kind=%q} %d\n", kv.kind, kv.n)
		}
	})
	emit("cloudqcd_jobs_rescued_total", func() {
		for _, kv := range []struct {
			cause string
			n     int64
		}{{"qpu_outage", fs.RescuedOutage}, {"shard_drain", fs.RescuedDrain}} {
			fmt.Fprintf(buf, "cloudqcd_jobs_rescued_total{cause=%q} %d\n", kv.cause, kv.n)
		}
	})
	plain("cloudqcd_fault_retries_total", float64(fs.Retries))
	plain("cloudqcd_fault_reroutes_total", float64(fs.Reroutes))
	plain("cloudqcd_fault_retry_exhausted_total", float64(fs.RetryExhausted))
	plain("cloudqcd_events_dropped_total", float64(s.events.dropped))
	trc := s.f.Trace()
	traceJobs := 0
	if trc != nil {
		traceJobs = trc.Len()
	}
	plain("cloudqcd_trace_jobs_total", float64(traceJobs))
	emit("cloudqcd_jct_attribution_cx_total", func() {
		if trc == nil {
			return
		}
		for _, ta := range trc.Tenants() {
			for _, pv := range []struct {
				phase string
				v     float64
			}{{"queue", ta.Queue}, {"compile", ta.Compile}, {"local", ta.Local}, {"network", ta.Network}, {"suspended", ta.Suspended}} {
				fmt.Fprintf(buf, "cloudqcd_jct_attribution_cx_total{tenant=\"%d\",phase=%q} %s\n", ta.Tenant, pv.phase, fmtFloat(pv.v))
			}
		}
	})
	walEnabled := 0.0
	var ws struct {
		records, syncs int
		bytes          int64
		syncSeconds    float64
	}
	if w := s.cfg.WAL; w != nil {
		walEnabled = 1
		st := w.Stats()
		ws.records, ws.bytes, ws.syncs, ws.syncSeconds = st.Records, st.Bytes, st.Syncs, st.SyncSeconds
	}
	plain("cloudqcd_wal_enabled", walEnabled)
	plain("cloudqcd_wal_records_total", float64(ws.records))
	plain("cloudqcd_wal_bytes_total", float64(ws.bytes))
	plain("cloudqcd_wal_fsyncs_total", float64(ws.syncs))
	plain("cloudqcd_wal_fsync_seconds_total", ws.syncSeconds)
}

// familyNamed resolves a family from the table; a rendered name missing
// from the table is a programming error the scrape test also catches.
func familyNamed(name string) metricFamily {
	for _, fam := range metricFamilies {
		if fam.name == name {
			return fam
		}
	}
	return metricFamily{name: name, typ: "untyped", help: "(undocumented)"}
}

// fmtFloat renders a sample value: integral values without an exponent,
// everything else in Go's shortest form (Prometheus accepts both).
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortedKeys returns m's keys ascending (deterministic expositions).
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

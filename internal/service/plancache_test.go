package service

import (
	"testing"
	"time"

	"cloudqc/internal/core"
)

// TestStatsReportsPlanCache: repeated submissions of one template drive
// plan-cache hits, and GET /v1/stats surfaces the counters.
func TestStatsReportsPlanCache(t *testing.T) {
	_, ts, clock := newTestServer(t, Config{}, 21, core.FIFOMode)

	for i := 0; i < 3; i++ {
		var resp JobResponse
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Circuit: "qft_n29"}, &resp)
		if code != 202 {
			t.Fatalf("submit %d: code %d", i, code)
		}
		// Run each job to completion before the next submission, so the
		// cloud returns to the identical all-free state and the next
		// admit hits the cache.
		clock.advance(time.Hour)
		var stats StatsResponse
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != 200 {
			t.Fatalf("stats code %d", code)
		}
		if stats.Settled != i+1 {
			t.Fatalf("after job %d: settled %d", i, stats.Settled)
		}
	}

	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats code %d", code)
	}
	pc := stats.PlanCache
	if !pc.Enabled {
		t.Fatalf("plan cache not enabled by default: %+v", pc)
	}
	if pc.Misses < 1 || pc.Hits < 2 {
		t.Fatalf("repeated template did not hit: %+v", pc)
	}
	if pc.Size < 1 {
		t.Fatalf("cache reports empty after inserts: %+v", pc)
	}
}

// TestPlanCacheSizeKnob: ServiceConfig.PlanCacheSize resizes or
// disables the controller's cache at construction.
func TestPlanCacheSizeKnob(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{PlanCacheSize: 3}, 22, core.FIFOMode)
	if s := srv.f.PlanCacheStats(); !s.Enabled || s.Capacity != 3 {
		t.Fatalf("PlanCacheSize 3 gave stats %+v", s)
	}

	off, ts, _ := newTestServer(t, Config{PlanCacheSize: -1}, 23, core.FIFOMode)
	if s := off.f.PlanCacheStats(); s.Enabled {
		t.Fatalf("PlanCacheSize -1 left the cache enabled: %+v", s)
	}
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != 200 {
		t.Fatalf("stats code %d", code)
	}
	if stats.PlanCache.Enabled {
		t.Fatalf("disabled cache reported enabled on the wire: %+v", stats.PlanCache)
	}
}

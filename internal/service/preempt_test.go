package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
)

// TestServicePreemptionCrossShard: over HTTP, a job preempted on shard
// 0 and resumed on shard 1 answers GET /v1/jobs/{id} under its original
// id the whole way through, and /v1/stats reports the preemption
// counters. The shard shapes mirror the federation-level test: the
// 127-qubit trigger only fits the big shard, so the 39-qubit victim is
// spilled to the idle small shard when it resumes.
func TestServicePreemptionCrossShard(t *testing.T) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = 7
	f, err := fed.New(fed.Config{
		Shard: core.Config{
			Placer:  place.NewCloudQC(pCfg),
			Mode:    core.EDFMode,
			Seed:    7,
			Preempt: core.PreemptRescue,
		},
		Clouds: []*cloud.Cloud{
			cloud.NewRandom(8, 0.3, 20, 5, 1),
			cloud.New(graph.Path(3), 20, 5),
		},
		SpillDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	srv, err := New(Config{Federation: f, Now: clock.now, TimeScale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var victim JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 0, Circuit: "qugan_n39"}, &victim); code != http.StatusAccepted {
		t.Fatalf("victim submit: %d", code)
	}
	clock.advance(10 * time.Millisecond) // 10 CX units at timescale 1000
	var trigger JobResponse
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", SubmitRequest{Tenant: 1, Circuit: "ghz_n127", DeadlineSlack: 1e6}, &trigger); code != http.StatusAccepted {
		t.Fatalf("trigger submit: %d", code)
	}

	// Walk the wall clock forward in fine steps; each stats poll paces
	// the federation, whose step boundaries run preemption and rehoming
	// (the spill decision needs to observe shard 0 still busy with the
	// trigger, so steps must be shorter than the trigger's runtime).
	// Throughout, the victim's id keeps resolving.
	victimURL := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, victim.ID)
	moved := false
	for i := 0; i < 400 && !moved; i++ {
		clock.advance(50 * time.Millisecond)
		var stats StatsResponse
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
			t.Fatalf("stats poll %d failed", i)
		}
		var jr JobResponse
		if code, _ := doJSON(t, "GET", victimURL, nil, &jr); code != http.StatusOK || jr.ID != victim.ID {
			t.Fatalf("victim id lost mid-run: %d %+v (stats %+v)", code, jr, stats.Preemption)
		}
		if s, ok := f.ShardOf(victim.ID); ok && s == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("victim never rehomed to shard 1 over HTTP (preempt %+v)", f.PreemptStats())
	}

	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if code, _ := doJSON(t, "GET", victimURL, nil, &jr); code != http.StatusOK || jr.ID != victim.ID || jr.Status != "completed" {
		t.Fatalf("post-drain victim: %d %+v", code, jr)
	}
	var stats StatsResponse
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("post-drain stats failed")
	}
	if stats.Preemption.Preemptions == 0 || stats.Preemption.Resumes != stats.Preemption.Preemptions {
		t.Fatalf("stats preemption counters %+v", stats.Preemption)
	}
}

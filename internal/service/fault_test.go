package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/fault"
	"cloudqc/internal/wal"
)

// postFault POSTs one fault event body through the handler and returns
// the decoded acknowledgement, asserting the expected status code.
func postFault(t *testing.T, srv *Server, body string, wantCode int) FaultResponse {
	t.Helper()
	rw := httptest.NewRecorder()
	hr := httptest.NewRequest("POST", "/v1/faults", strings.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rw, hr)
	if rw.Code != wantCode {
		t.Fatalf("POST /v1/faults: %d (want %d)\n%s", rw.Code, wantCode, rw.Body.String())
	}
	var fr FaultResponse
	if wantCode == http.StatusAccepted {
		if err := json.Unmarshal(rw.Body.Bytes(), &fr); err != nil {
			t.Fatal(err)
		}
	}
	return fr
}

// TestServiceFaultEndpoint drives the admin fault surface end to end on
// a two-shard federation: malformed and out-of-fleet events are 400s, a
// shard drain is acknowledged with a 202, the drained shard's jobs keep
// answering under their original ids from their new shard, and the
// injection shows up in /v1/stats and /metrics.
func TestServiceFaultEndpoint(t *testing.T) {
	srv, clock, f := newCrossShardWALServer(t, "")
	for _, body := range []string{
		`{"kind":"meteor_strike"}`,
		`{"kind":"qpu_outage","shard":5,"qpu":0,"from":0,"to":10}`,
		`{"kind":"qpu_outage","qpu":0,"from":10,"to":10}`,
		`not json at all`,
	} {
		postFault(t, srv, body, http.StatusBadRequest)
	}

	// Distinct tenants cold-route across both shards; qugan_n39 fits the
	// small 3-QPU shard and runs long enough to be resident at the drain.
	ids := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		jr := submitRaw(t, srv, SubmitRequest{Tenant: i, Circuit: "qugan_n39"}, http.StatusAccepted)
		ids = append(ids, jr.ID)
	}
	var onShard1 []int
	for _, id := range ids {
		if s, ok := f.ShardOf(id); ok && s == 1 {
			onShard1 = append(onShard1, id)
		}
	}
	if len(onShard1) == 0 {
		t.Fatal("setup: no job routed to shard 1")
	}

	fr := postFault(t, srv, `{"kind":"shard_drain","shard":1,"from":0}`, http.StatusAccepted)
	if fr.Kind != fault.KindShardDrain || fr.Shard != 1 {
		t.Fatalf("drain acknowledgement %+v", fr)
	}
	for i := 0; i < 100 && f.FaultStats().ShardDrains == 0; i++ {
		clock.advance(50 * time.Millisecond)
		rawGET(t, srv, "/v1/stats")
	}
	fs := f.FaultStats()
	if fs.ShardDrains != 1 {
		t.Fatalf("drain never fired: %+v", fs)
	}
	if fs.RescuedDrain != int64(len(onShard1)) {
		t.Fatalf("rescued %d jobs off shard 1, want %d", fs.RescuedDrain, len(onShard1))
	}

	// Every evacuated job still answers under its original id, rehomed.
	for _, id := range onShard1 {
		if s, ok := f.ShardOf(id); !ok || s != 0 {
			t.Fatalf("job %d on shard %d (ok=%v) after drain, want 0", id, s, ok)
		}
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, httptest.NewRequest("GET", fmt.Sprintf("/v1/jobs/%d", id), nil))
		if rw.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%d after drain: %d\n%s", id, rw.Code, rw.Body.String())
		}
		var jr JobResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		if jr.ID != id {
			t.Fatalf("job %d answers as %d after rehome", id, jr.ID)
		}
	}

	var st struct {
		Faults fault.Stats `json:"faults"`
	}
	if err := json.Unmarshal([]byte(rawGET(t, srv, "/v1/stats")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Faults != fs {
		t.Fatalf("/v1/stats faults %+v, want %+v", st.Faults, fs)
	}
	if m := rawGET(t, srv, "/metrics"); !strings.Contains(m, `cloudqcd_faults_injected_total{kind="shard_drain"} 1`) {
		t.Fatalf("/metrics missing the drain counter:\n%s", m)
	}

	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	postFault(t, srv, `{"kind":"qpu_outage","qpu":0,"from":0,"to":10}`, http.StatusConflict)
}

// driveFaultWALStream is driveWALStream with two admin fault injections
// woven into the middle of the submission stream — a QPU outage window
// and a degraded-link window, both WAL-logged — and a long final advance
// so both fault windows open and close inside the run.
func driveFaultWALStream(t *testing.T, srv *Server, clock *fakeClock) {
	t.Helper()
	edge := cloud.NewRandom(10, 0.3, 20, 5, 1).Topology().Edges()[0]
	gaps := []time.Duration{0, 7, 13, 4, 21, 9, 16, 3, 11, 26, 8, 14}
	for i, gap := range gaps {
		clock.advance(gap * time.Millisecond)
		req := SubmitRequest{Tenant: i % 3, Priority: 1 + i%3, QASM: ghz3QASM}
		if i%4 == 1 {
			req.QASM = chain4QASM
		}
		if i%5 == 2 {
			req.DeadlineSlack = 200
		}
		submitRaw(t, srv, req, http.StatusAccepted)
		switch i {
		case 3:
			postFault(t, srv, `{"kind":"qpu_outage","qpu":0,"from":40,"to":90}`, http.StatusAccepted)
		case 7:
			postFault(t, srv, fmt.Sprintf(
				`{"kind":"link_degrade","u":%d,"v":%d,"scale":0.5,"from":60,"to":140}`,
				edge.U, edge.V), http.StatusAccepted)
		}
		if i%3 == 2 {
			clock.advance(5 * time.Millisecond)
			rawGET(t, srv, "/v1/stats")
		}
	}
	clock.advance(200 * time.Millisecond)
	rawGET(t, srv, "/v1/stats")
}

// TestWALReplayFaultDifferential extends the kill-at-every-record
// matrix to fault-bearing logs: with an outage and a dead-link window
// recorded mid-stream, a daemon killed after ANY record and restarted
// over the recovered prefix plus the rest of the stream reproduces the
// uninterrupted faulted run bit-identically.
func TestWALReplayFaultDifferential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, lcA, recA, _ := newWALServer(t, path)
	driveFaultWALStream(t, srvA, clockA)
	resA, err := srvA.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wantResults := resultsJSON(t, resA)
	wantStats := rawGET(t, srvA, "/v1/stats")
	wantRounds, wantEvents := lcA.RunStats().Rounds, lcA.RunStats().Events
	wantSamples := recA.Samples()

	// Both injected faults genuinely fired in the reference run.
	var st struct {
		Faults fault.Stats `json:"faults"`
	}
	if err := json.Unmarshal([]byte(wantStats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Faults.QPUOutages != 1 || st.Faults.LinkDegrades != 1 {
		t.Fatalf("reference faults never fired: %+v", st.Faults)
	}

	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	njobs, nfaults := 0, 0
	for _, r := range recs {
		switch r.Type {
		case wal.TypeJob:
			njobs++
		case wal.TypeFault:
			nfaults++
		}
	}
	if njobs != 12 || nfaults != 2 {
		t.Fatalf("log holds %d job / %d fault records, want 12 / 2", njobs, nfaults)
	}

	for k := 0; k <= len(recs); k++ {
		srvB, _, lcB, recB, _ := newWALServer(t, "")
		n1, err := srvB.Replay(recs[:k])
		if err != nil {
			t.Fatalf("cut %d: replay prefix: %v", k, err)
		}
		n2, err := srvB.Replay(recs[k:])
		if err != nil {
			t.Fatalf("cut %d: replay suffix: %v", k, err)
		}
		if n1+n2 != njobs {
			t.Fatalf("cut %d: replayed %d+%d jobs, want %d", k, n1, n2, njobs)
		}
		resB, err := srvB.Drain()
		if err != nil {
			t.Fatalf("cut %d: drain: %v", k, err)
		}
		if got := resultsJSON(t, resB); got != wantResults {
			t.Fatalf("cut %d: results diverge\n got %s\nwant %s", k, got, wantResults)
		}
		if st := lcB.RunStats(); st.Rounds != wantRounds || st.Events != wantEvents {
			t.Fatalf("cut %d: rounds/events %d/%d, want %d/%d", k, st.Rounds, st.Events, wantRounds, wantEvents)
		}
		if !reflect.DeepEqual(recB.Samples(), wantSamples) {
			t.Fatalf("cut %d: recorder series diverges (%d vs %d samples)", k, len(recB.Samples()), len(wantSamples))
		}
		if got := rawGET(t, srvB, "/v1/stats"); got != wantStats {
			t.Fatalf("cut %d: stats body diverges\n got %s\nwant %s", k, got, wantStats)
		}
	}
}

// TestWALFaultDuplicateReplayRejected: a fault-bearing log fed twice
// must fail loudly instead of silently re-injecting history.
func TestWALFaultDuplicateReplayRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _, _ := newWALServer(t, path)
	driveFaultWALStream(t, srvA, clockA)
	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, _, _, _ := newWALServer(t, "")
	if _, err := srvB.Replay(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Replay(recs); err == nil {
		t.Fatal("second replay of a fault-bearing log succeeded; want duplicate-replay error")
	}
}

// TestWALTornFaultRecord: a crash tearing the final record — here a
// fault injection — drops exactly that record on recovery, and the
// replayed prefix still drains cleanly.
func TestWALTornFaultRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _, _ := newWALServer(t, path)
	submitRaw(t, srvA, SubmitRequest{Tenant: 0, QASM: ghz3QASM}, http.StatusAccepted)
	clockA.advance(10 * time.Millisecond)
	submitRaw(t, srvA, SubmitRequest{Tenant: 1, QASM: chain4QASM}, http.StatusAccepted)
	postFault(t, srvA, `{"kind":"qpu_outage","qpu":1,"from":500,"to":600}`, http.StatusAccepted)

	_, intact, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if intact[len(intact)-1].Type != wal.TypeFault {
		t.Fatalf("final record is %q, want the fault", intact[len(intact)-1].Type)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recovered, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(intact)-1 {
		t.Fatalf("recovered %d records from torn log, want %d", len(recovered), len(intact)-1)
	}
	srvB, _, _, _, _ := newWALServer(t, "")
	if _, err := srvB.Replay(recovered); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Drain(); err != nil {
		t.Fatal(err)
	}
}

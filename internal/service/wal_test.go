package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/wal"
)

// Small inline circuits keep the differential matrix cheap: every cut
// point replays and drains the whole stream from scratch.
const (
	ghz3QASM   = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nmeasure q[2] -> c[2];\n"
	chain4QASM = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\nmeasure q[3] -> c[3];\n"
)

// newWALServer builds a WFQ server over a fresh controller of the
// shared test configuration, with its own recorder (sampled every 5 CX
// so the series has real length) and, when path is non-empty, a WAL.
func newWALServer(t *testing.T, path string) (*Server, *fakeClock, *core.LiveController, *metrics.Recorder, *wal.Log) {
	t.Helper()
	rec := metrics.NewRecorder(5)
	ccfg := testControllerConfig(7, core.WFQMode)
	ccfg.Recorder = rec
	lc, err := core.NewLiveController(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	var wlog *wal.Log
	if path != "" {
		var recovered []wal.Record
		if wlog, recovered, err = wal.Open(path); err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 0 {
			t.Fatalf("fresh log recovered %d records", len(recovered))
		}
	}
	clock := newFakeClock()
	srv, err := New(Config{Controller: lc, Now: clock.now, TimeScale: 1000, WAL: wlog})
	if err != nil {
		t.Fatal(err)
	}
	return srv, clock, lc, rec, wlog
}

// rawGET runs one request through the handler without a socket and
// returns the raw body — byte-for-byte comparable across servers.
func rawGET(t *testing.T, srv *Server, path string) string {
	t.Helper()
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", path, rw.Code, rw.Body.String())
	}
	return rw.Body.String()
}

// submitRaw POSTs one submission through the handler and returns the
// decoded response, asserting the expected status code.
func submitRaw(t *testing.T, srv *Server, req SubmitRequest, wantCode int) JobResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rw := httptest.NewRecorder()
	hr := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rw, hr)
	if rw.Code != wantCode {
		t.Fatalf("POST /v1/jobs: %d (want %d)\n%s", rw.Code, wantCode, rw.Body.String())
	}
	var jr JobResponse
	if wantCode == http.StatusAccepted {
		if err := json.Unmarshal(rw.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
	}
	return jr
}

// driveWALStream submits a deterministic 12-job mixed stream — three
// tenants with distinct WFQ weights, two circuit shapes, a couple of
// deadline-carrying jobs — with clock advances between submissions and
// periodic stats polls (extra step records with no adjacent job).
func driveWALStream(t *testing.T, srv *Server, clock *fakeClock) {
	t.Helper()
	gaps := []time.Duration{0, 7, 13, 4, 21, 9, 16, 3, 11, 26, 8, 14}
	for i, gap := range gaps {
		clock.advance(gap * time.Millisecond)
		req := SubmitRequest{Tenant: i % 3, Priority: 1 + i%3, QASM: ghz3QASM}
		if i%4 == 1 {
			req.QASM = chain4QASM
		}
		if i%5 == 2 {
			req.DeadlineSlack = 200
		}
		submitRaw(t, srv, req, http.StatusAccepted)
		if i%3 == 2 {
			clock.advance(5 * time.Millisecond)
			rawGET(t, srv, "/v1/stats")
		}
	}
	clock.advance(40 * time.Millisecond)
	rawGET(t, srv, "/v1/stats")
}

// resultsJSON canonicalizes drain results for bit-identity comparison.
func resultsJSON(t *testing.T, res []*core.JobResult) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestWALReplayDifferential is the durability contract: kill the
// daemon after ANY record and a restarted daemon that replays the
// recovered prefix, then the rest of the stream, reproduces the
// uninterrupted run bit-identically — per-job results, round/event
// counts, the full recorder series, and the /v1/stats wire body.
// Every cut point k plays recs[:k] and recs[k:] as separate Replay
// calls, modeling a crash-recovered prefix plus the live traffic that
// would have followed.
func TestWALReplayDifferential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, lcA, recA, _ := newWALServer(t, path)
	driveWALStream(t, srvA, clockA)
	resA, err := srvA.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wantResults := resultsJSON(t, resA)
	wantStats := rawGET(t, srvA, "/v1/stats")
	wantRounds, wantEvents := lcA.RunStats().Rounds, lcA.RunStats().Events
	wantSamples := recA.Samples()

	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	njobs := 0
	for _, r := range recs {
		if r.Type == wal.TypeJob {
			njobs++
		}
	}
	if njobs != 12 {
		t.Fatalf("log holds %d job records, want 12", njobs)
	}

	for k := 0; k <= len(recs); k++ {
		srvB, _, lcB, recB, _ := newWALServer(t, "")
		n1, err := srvB.Replay(recs[:k])
		if err != nil {
			t.Fatalf("cut %d: replay prefix: %v", k, err)
		}
		n2, err := srvB.Replay(recs[k:])
		if err != nil {
			t.Fatalf("cut %d: replay suffix: %v", k, err)
		}
		if n1+n2 != njobs {
			t.Fatalf("cut %d: replayed %d+%d jobs, want %d", k, n1, n2, njobs)
		}
		resB, err := srvB.Drain()
		if err != nil {
			t.Fatalf("cut %d: drain: %v", k, err)
		}
		if got := resultsJSON(t, resB); got != wantResults {
			t.Fatalf("cut %d: results diverge\n got %s\nwant %s", k, got, wantResults)
		}
		if st := lcB.RunStats(); st.Rounds != wantRounds || st.Events != wantEvents {
			t.Fatalf("cut %d: rounds/events %d/%d, want %d/%d", k, st.Rounds, st.Events, wantRounds, wantEvents)
		}
		if !reflect.DeepEqual(recB.Samples(), wantSamples) {
			t.Fatalf("cut %d: recorder series diverges (%d vs %d samples)", k, len(recB.Samples()), len(wantSamples))
		}
		if got := rawGET(t, srvB, "/v1/stats"); got != wantStats {
			t.Fatalf("cut %d: stats body diverges\n got %s\nwant %s", k, got, wantStats)
		}
	}
}

// TestWALDuplicateReplayRejected: feeding the same log twice must fail
// loudly on the first repeated step record instead of silently forking
// history with duplicate jobs.
func TestWALDuplicateReplayRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _, _ := newWALServer(t, path)
	driveWALStream(t, srvA, clockA)
	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, _, _, _ := newWALServer(t, "")
	if _, err := srvB.Replay(recs); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Replay(recs); err == nil {
		t.Fatal("second replay of the same log succeeded; want duplicate-replay error")
	}
}

// TestWALTruncatedFinalRecord: a crash mid-append leaves a torn final
// line; recovery must drop exactly that record and replay the intact
// prefix — the service keeps working on the recovered state.
func TestWALTruncatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _, _ := newWALServer(t, path)
	driveWALStream(t, srvA, clockA)
	_, intact, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: strip its newline and half its bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recovered, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(intact)-1 {
		t.Fatalf("recovered %d records from torn log, want %d", len(recovered), len(intact)-1)
	}
	srvB, _, _, _, _ := newWALServer(t, "")
	if _, err := srvB.Replay(recovered); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestWALEmptyLogColdStart: a fresh (or cleanly truncated) log recovers
// zero records and the daemon cold-starts normally — submissions are
// logged and a subsequent restart replays them.
func TestWALEmptyLogColdStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, _, _, wlog := newWALServer(t, path)
	if _, err := srvA.Replay(nil); err != nil {
		t.Fatalf("empty replay on cold start: %v", err)
	}
	submitRaw(t, srvA, SubmitRequest{Tenant: 0, QASM: ghz3QASM}, http.StatusAccepted)
	clockA.advance(20 * time.Millisecond)
	submitRaw(t, srvA, SubmitRequest{Tenant: 1, QASM: ghz3QASM}, http.StatusAccepted)
	if st := wlog.Stats(); st.Records < 3 || st.Syncs < 2 {
		t.Fatalf("wal stats after two submissions: %+v", st)
	}
	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, _, _, _ := newWALServer(t, "")
	n, err := srvB.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d jobs, want 2", n)
	}
	if _, err := srvB.Drain(); err != nil {
		t.Fatal(err)
	}
}

// newCrossShardWALServer builds the two-shard preempt-rescue federation
// of TestServicePreemptionCrossShard, with an optional WAL.
func newCrossShardWALServer(t *testing.T, path string) (*Server, *fakeClock, *fed.Federation) {
	t.Helper()
	pCfg := place.DefaultConfig()
	pCfg.Seed = 7
	f, err := fed.New(fed.Config{
		Shard: core.Config{
			Placer:  place.NewCloudQC(pCfg),
			Mode:    core.EDFMode,
			Seed:    7,
			Preempt: core.PreemptRescue,
		},
		Clouds: []*cloud.Cloud{
			cloud.NewRandom(8, 0.3, 20, 5, 1),
			cloud.New(graph.Path(3), 20, 5),
		},
		SpillDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wlog *wal.Log
	if path != "" {
		if wlog, _, err = wal.Open(path); err != nil {
			t.Fatal(err)
		}
	}
	clock := newFakeClock()
	srv, err := New(Config{Federation: f, Now: clock.now, TimeScale: 1000, WAL: wlog})
	if err != nil {
		t.Fatal(err)
	}
	return srv, clock, f
}

// TestWALReplayCrossShard: the hardest recovery case — a job preempted
// on shard 0 and resumed on shard 1 mid-log. Replaying into a fresh
// two-shard federation reproduces the cross-shard rehoming (the job
// answers under its original id on the same shard) and the preemption
// counters, and the drained results match the uninterrupted run's
// byte for byte.
func TestWALReplayCrossShard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	srvA, clockA, fA := newCrossShardWALServer(t, path)
	victim := submitRaw(t, srvA, SubmitRequest{Tenant: 0, Circuit: "qugan_n39"}, http.StatusAccepted)
	clockA.advance(10 * time.Millisecond)
	submitRaw(t, srvA, SubmitRequest{Tenant: 1, Circuit: "ghz_n127", DeadlineSlack: 1e6}, http.StatusAccepted)
	moved := false
	for i := 0; i < 400 && !moved; i++ {
		clockA.advance(50 * time.Millisecond)
		rawGET(t, srvA, "/v1/stats")
		if s, ok := fA.ShardOf(victim.ID); ok && s == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("victim never rehomed to shard 1 (preempt %+v)", fA.PreemptStats())
	}

	// "Kill" here: the log ends with the victim already rehomed. A
	// fresh federation replaying it must land in the same state.
	_, recs, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, fB := newCrossShardWALServer(t, "")
	if _, err := srvB.Replay(recs); err != nil {
		t.Fatal(err)
	}
	if s, ok := fB.ShardOf(victim.ID); !ok || s != 1 {
		t.Fatalf("replayed victim on shard %d (ok=%v), want 1", s, ok)
	}
	if pa, pb := fA.PreemptStats(), fB.PreemptStats(); !reflect.DeepEqual(pa, pb) || pb.Preemptions == 0 {
		t.Fatalf("preempt stats diverge: live %+v, replayed %+v", pa, pb)
	}

	resA, err := srvA.Drain()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := srvB.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := resultsJSON(t, resA), resultsJSON(t, resB); a != b {
		t.Fatalf("drained results diverge\nlive   %s\nreplay %s", a, b)
	}
	jr := JobResponse{}
	rw := httptest.NewRecorder()
	srvB.ServeHTTP(rw, httptest.NewRequest("GET", fmt.Sprintf("/v1/jobs/%d", victim.ID), nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("post-drain victim on replayed server: %d", rw.Code)
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ID != victim.ID || jr.Status != "completed" {
		t.Fatalf("post-drain victim %+v", jr)
	}
}

package core

// WFQClock is weighted-fair-queueing admission's virtual-clock space:
// per-tenant virtual service behind a stable tenant→slot table, plus
// the global virtual time. Slots are allocated on first sight and never
// move, so the charge and ordering hot paths index plain slices instead
// of hashing maps (see wfqOrder).
//
// A Controller owns a private clock by default, reset per run. Handing
// one clock to several controllers via Config.SharedWFQ extends
// weighted fairness across them: every shard bills tenants into the
// same clocks, so a tenant's placements anywhere raise its start tags
// everywhere — the federation layer's cross-shard WFQ. With a single
// controller over a fresh shared clock the admission order is
// bit-identical to the private default.
//
// A WFQClock is not safe for concurrent use; callers serialize access
// (a federation steps its shards sequentially).
type WFQClock struct {
	// slots maps a tenant id to its slot; ids is the inverse.
	slots map[int]int
	ids   []int
	// service is each slot's virtual service: placed intensity divided
	// by tenant weight, accumulated on successful placement only.
	service []float64
	// vtime is the global virtual time — the start tag of the last
	// admission, which denies idle tenants credit for idle spans.
	vtime float64
}

// NewWFQClock returns an empty clock: no tenants, virtual time 0.
func NewWFQClock() *WFQClock {
	return &WFQClock{slots: make(map[int]int)}
}

// slot returns the tenant's stable slot, allocating one on first sight
// with zero virtual service.
func (w *WFQClock) slot(tenant int) int {
	if s, ok := w.slots[tenant]; ok {
		return s
	}
	s := len(w.ids)
	w.slots[tenant] = s
	w.ids = append(w.ids, tenant)
	w.service = append(w.service, 0)
	return s
}

// Reset zeroes every tenant's virtual service and the virtual time,
// keeping the tenant→slot table (slots stay stable across runs so
// controller scratch sized to the table remains valid).
func (w *WFQClock) Reset() {
	for i := range w.service {
		w.service[i] = 0
	}
	w.vtime = 0
}

// Service returns a tenant's accumulated virtual service (0 for
// tenants the clock has never seen).
func (w *WFQClock) Service(tenant int) float64 {
	if s, ok := w.slots[tenant]; ok {
		return w.service[s]
	}
	return 0
}

// VTime returns the global virtual time.
func (w *WFQClock) VTime() float64 { return w.vtime }

// Tenants returns the tenant ids the clock has seen, in slot order
// (first-seen order).
func (w *WFQClock) Tenants() []int {
	return append([]int(nil), w.ids...)
}

package core

import (
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/qlib"
)

// BenchmarkWFQOrder isolates one WFQ admission-ordering round at a
// tenant count where the per-round bookkeeping, not the placer,
// dominates: 64 tenants × 4 queued jobs. The slot-indexed scratch
// (stable tenant→slot table, slice-backed clocks) makes a warm round
// allocation-free and map-free; the admission order itself is pinned
// bit-identical by the differential tests.
func BenchmarkWFQOrder(b *testing.B) {
	ct, err := NewController(Config{
		Cloud: cloud.NewRandom(10, 0.3, 20, 5, 1),
		Mode:  WFQMode,
		Seed:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var jobs []*Job
	id := 0
	for tenant := 0; tenant < 64; tenant++ {
		for k := 0; k < 4; k++ {
			jobs = append(jobs, &Job{
				ID:       id,
				Circuit:  qlib.GHZ(8 + (id*7)%48), // varied widths → distinct intensities
				Tenant:   tenant,
				Priority: 1 + tenant%4,
				Arrival:  float64(k),
			})
			id++
		}
	}
	ct.resetScheduling(len(jobs))
	ct.memoizeIntensity(jobs)
	arrived := make([]*Job, len(jobs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(arrived, jobs)
		ct.wfqOrder(arrived)
	}
}

package core

import (
	"math/rand"
	"testing"

	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
)

// tenantJobs builds a two-tenant stream by hand: tenant ids, weights,
// deadlines, and staggered arrivals over a fixed circuit list.
func tenantJobs(t *testing.T, specs []struct {
	name     string
	tenant   int
	priority int
	arrival  float64
	deadline float64
}) []*Job {
	t.Helper()
	var jobs []*Job
	for i, s := range specs {
		c, err := qlib.Build(s.name)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, &Job{
			ID: i, Circuit: c, Arrival: s.arrival,
			Tenant: s.tenant, Priority: s.priority, Deadline: s.deadline,
		})
	}
	return jobs
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"": BatchMode, "batch": BatchMode, "fifo": FIFOMode, "edf": EDFMode, "wfq": WFQMode,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("lifo"); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestUnknownModeRejected(t *testing.T) {
	if _, err := NewController(Config{Cloud: testCloud(), Mode: Mode(99)}); err == nil {
		t.Fatal("out-of-range mode should error")
	}
}

// TestEDFEqualDeadlinesMatchesFIFO is the differential guarantee of the
// EDF admission order: when every job carries the same deadline, the
// (arrival, ID) tie-break makes EDF admit exactly like FIFO, so the two
// modes must produce bit-identical results on the same seeded stream.
func TestEDFEqualDeadlinesMatchesFIFO(t *testing.T) {
	mk := func() []*Job {
		js, err := buildJobs([]string{"knn_n67", "qft_n63", "ghz_n127", "ising_n66", "qugan_n71"})
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range js {
			j.Arrival = float64(i) * 700
			j.Deadline = 5e6 // same for everyone
		}
		return js
	}
	for seed := int64(1); seed <= 2; seed++ {
		fifo := equivConfig(t, seed, FIFOMode, 20)
		want, err := fifo.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		edf := equivConfig(t, seed, EDFMode, 20)
		got, err := edf.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.Failed != w.Failed || g.PlacedAt != w.PlacedAt ||
				g.Finished != w.Finished || g.JCT != w.JCT {
				t.Fatalf("seed %d job %d diverged:\nFIFO %+v\nEDF  %+v", seed, w.Job.ID, *w, *g)
			}
		}
	}
}

// TestWFQSingleTenantMatchesBatch is WFQ's differential guarantee: with
// one tenant the start-time fair queue degenerates to ascending
// intensity — the batch manager's order — so results must be
// bit-identical.
func TestWFQSingleTenantMatchesBatch(t *testing.T) {
	mk := func() []*Job {
		js, err := buildJobs([]string{"qugan_n111", "qft_n63", "knn_n67", "qugan_n39", "multiplier_n45"})
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range js {
			j.Arrival = float64(i) * 500
		}
		return js
	}
	for seed := int64(1); seed <= 2; seed++ {
		batch := equivConfig(t, seed, BatchMode, 20)
		want, err := batch.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		wfq := equivConfig(t, seed, WFQMode, 20)
		got, err := wfq.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.Failed != w.Failed || g.PlacedAt != w.PlacedAt ||
				g.Finished != w.Finished || g.JCT != w.JCT {
				t.Fatalf("seed %d job %d diverged:\nBatch %+v\nWFQ   %+v", seed, w.Job.ID, *w, *g)
			}
		}
	}
}

// TestNewModesMatchLockStep extends the event-vs-lock-step equivalence
// to the tenant-aware admission modes: on batch workloads (all arrivals
// at 0 — the setting the equivalence guarantee covers; on timed streams
// the event core deliberately admits arrivals immediately instead of on
// the round grid) every new path must stay bit-identical between the
// two controller loops.
func TestNewModesMatchLockStep(t *testing.T) {
	mk := func() []*Job {
		return tenantJobs(t, []struct {
			name     string
			tenant   int
			priority int
			arrival  float64
			deadline float64
		}{
			{"ghz_n127", 1, 1, 0, 9e5},
			{"qft_n63", 2, 4, 0, 3e5},
			{"ghz_n127", 1, 1, 0, 8e5},
			{"knn_n67", 2, 4, 0, 2e5},
			{"qugan_n71", 1, 1, 0, 6e5},
		})
	}
	for _, mode := range []Mode{EDFMode, WFQMode} {
		for seed := int64(1); seed <= 2; seed++ {
			ref := equivConfig(t, seed, mode, 20)
			want, err := ref.RunLockStep(mk())
			if err != nil {
				t.Fatal(err)
			}
			ev := equivConfig(t, seed, mode, 20)
			got, err := ev.Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				w, g := want[i], got[i]
				if g.Failed != w.Failed || g.PlacedAt != w.PlacedAt ||
					g.Finished != w.Finished || g.JCT != w.JCT || g.WaitTime != w.WaitTime {
					t.Fatalf("mode %d seed %d job %d diverged:\nlock-step %+v\nevent     %+v",
						mode, seed, w.Job.ID, *w, *g)
				}
			}
		}
	}
}

// TestEDFAdmitsEarliestDeadlineFirst saturates a small cloud so only one
// wide job fits at a time: the later submission with the earlier
// deadline must be placed first.
func TestEDFAdmitsEarliestDeadlineFirst(t *testing.T) {
	jobs := tenantJobs(t, []struct {
		name     string
		tenant   int
		priority int
		arrival  float64
		deadline float64
	}{
		{"ghz_n127", 0, 0, 0, 9e5}, // loose deadline, submitted first
		{"ghz_n127", 0, 0, 0, 1e5}, // tight deadline, submitted second
	})
	ct := equivConfig(t, 1, EDFMode, 8) // 8x20 = 160 computing qubits: one 127-wide job at a time
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].PlacedAt >= res[0].PlacedAt {
		t.Fatalf("tight-deadline job placed at %v, loose at %v; EDF should invert submission order",
			res[1].PlacedAt, res[0].PlacedAt)
	}
}

// TestWFQOrderInterleavesTenantsByWeight drives the admission order
// directly: two tenants with identical job lists, one at twice the
// weight — the heavier tenant must win ties and drain earlier, and each
// tenant's own jobs must stay in ascending intensity order.
func TestWFQOrderInterleavesTenantsByWeight(t *testing.T) {
	var arrived []*Job
	id := 0
	for _, tenant := range []struct{ id, prio int }{{1, 1}, {2, 2}} {
		for _, n := range []int{50, 40, 30} { // deliberately unsorted within tenant
			arrived = append(arrived, &Job{
				ID: id, Circuit: qlib.GHZ(n), Tenant: tenant.id, Priority: tenant.prio,
			})
			id++
		}
	}
	ct := equivConfig(t, 1, WFQMode, 20)
	ct.wfq = NewWFQClock()
	ct.orderArrived(arrived)

	lastSeen := map[int]int{}
	prevIntensity := map[int]float64{}
	for pos, j := range arrived {
		lastSeen[j.Tenant] = pos
		in := Intensity(j.Circuit, DefaultBatchWeights())
		if prev, ok := prevIntensity[j.Tenant]; ok && in < prev {
			t.Fatalf("tenant %d jobs out of intensity order at position %d", j.Tenant, pos)
		}
		prevIntensity[j.Tenant] = in
	}
	if arrived[0].Tenant != 2 {
		t.Fatalf("first slot went to tenant %d; weight 2 should win the opening tie", arrived[0].Tenant)
	}
	if lastSeen[2] >= lastSeen[1] {
		t.Fatalf("heavier tenant drained at position %d, lighter at %d; want heavier first",
			lastSeen[2], lastSeen[1])
	}
	// The order must interleave, not exhaust one tenant first.
	if lastSeen[2] == 2 {
		t.Fatal("tenant 2 ran entirely before tenant 1: not fair queueing, just priority")
	}
}

// TestRequestsCarryTenantTags runs two concurrently-placed tenants and
// asserts the allocation policy sees their tenant ids and weights on the
// round's requests.
func TestRequestsCarryTenantTags(t *testing.T) {
	rec := &tenantRecordingPolicy{}
	ct := controller(t, Config{Seed: 3, Policy: rec})
	jobs := tenantJobs(t, []struct {
		name     string
		tenant   int
		priority int
		arrival  float64
		deadline float64
	}{
		{"ghz_n127", 4, 2, 0, 0},
		{"ghz_n127", 9, 5, 0, 0},
	})
	if _, err := ct.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if !rec.seen[tenantTag{4, 2}] || !rec.seen[tenantTag{9, 5}] {
		t.Fatalf("policy saw tenant tags %v; want both {4 2} and {9 5}", rec.seen)
	}
}

type tenantTag struct{ tenant, weight int }

// tenantRecordingPolicy delegates to CloudQC but records the (tenant,
// weight) tags on every request it is handed.
type tenantRecordingPolicy struct {
	inner sched.CloudQCPolicy
	seen  map[tenantTag]bool
}

func (p *tenantRecordingPolicy) Name() string { return "recording" }

func (p *tenantRecordingPolicy) Allocate(reqs []sched.Request, budget []int, rng *rand.Rand) map[sched.NodeKey]int {
	if p.seen == nil {
		p.seen = make(map[tenantTag]bool)
	}
	for _, r := range reqs {
		p.seen[tenantTag{r.Tenant, r.TenantWeight}] = true
	}
	return p.inner.Allocate(reqs, budget, rng)
}

func TestOutcomesConversion(t *testing.T) {
	jobs := tenantJobs(t, []struct {
		name     string
		tenant   int
		priority int
		arrival  float64
		deadline float64
	}{
		{"ghz_n127", 1, 2, 0, 4e5},
		{"qft_n63", 2, 0, 100, 0},
	})
	ct := controller(t, Config{Seed: 1})
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	out := Outcomes(res)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Tenant != 1 || out[0].Weight != 2 || out[0].Deadline != 4e5 {
		t.Fatalf("outcome 0 = %+v", out[0])
	}
	if out[0].JCT != res[0].JCT || out[0].Finished != res[0].Finished {
		t.Fatalf("outcome 0 times = %+v vs result %+v", out[0], res[0])
	}
	if out[1].Tenant != 2 || out[1].Deadline != 0 {
		t.Fatalf("outcome 1 = %+v", out[1])
	}
	// Failed jobs report no times.
	failed := Outcomes([]*JobResult{{Job: jobs[0], Failed: true}})
	if failed[0].JCT != 0 || failed[0].Finished != 0 || !failed[0].Failed {
		t.Fatalf("failed outcome = %+v", failed[0])
	}
}

// TestControllerReuseRefreshesIntensity guards the per-run reset of the
// intensity memo: job IDs are only unique within one Run, so a reused
// controller must re-derive intensities for a second stream instead of
// billing (and ordering) it by the first stream's circuits.
func TestControllerReuseRefreshesIntensity(t *testing.T) {
	ct := controller(t, Config{Seed: 1, Mode: WFQMode})
	small := []*Job{{ID: 0, Circuit: qlib.GHZ(10)}}
	if _, err := ct.Run(small); err != nil {
		t.Fatal(err)
	}
	first := ct.intensity[0]
	big := []*Job{{ID: 0, Circuit: qlib.GHZ(100)}}
	if _, err := ct.Run(big); err != nil {
		t.Fatal(err)
	}
	want := Intensity(big[0].Circuit, DefaultBatchWeights())
	if got := ct.intensity[0]; got != want || got == first {
		t.Fatalf("second run memoized intensity %v (first run's %v); want fresh %v", got, first, want)
	}
}

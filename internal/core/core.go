// Package core is CloudQC's multi-tenant controller: it admits quantum
// circuit jobs into the cloud (batch-ordered by the paper's intensity
// metric, Eq. 11, or FIFO), places them with a pluggable placement
// algorithm, and executes all active jobs' remote DAGs concurrently —
// sharing every QPU's communication qubits across tenants each EPR round
// and releasing computing qubits as jobs complete.
//
// Run is driven by the discrete-event engine in internal/des: job
// arrivals, maturing computing-qubit releases, placement retries, and
// shared EPR rounds are scheduled events, and spans where every active
// job waits on local gate tails are skipped in one clock jump instead of
// being simulated round by round. RunLockStep keeps the original
// round-per-iteration loop as a reference implementation; on batch
// workloads the two produce bit-identical results (see TestRunMatchesLockStep).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/des"
	"cloudqc/internal/epr"
	"cloudqc/internal/fault"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/sched"
	"cloudqc/internal/trace"
)

// Job is one tenant's circuit submission.
type Job struct {
	// ID identifies the job in results; unique within one Run.
	ID int
	// Circuit is the submitted program.
	Circuit *circuit.Circuit
	// Arrival is the submission time (0 for batch mode).
	Arrival float64
	// Tenant identifies the submitting tenant; the zero value is the
	// single default tenant of tenant-oblivious workloads.
	Tenant int
	// Priority is the tenant's scheduling weight: WFQ admission serves
	// tenants in proportion to it, and the tenant-weighted allocation
	// policy splits each round's communication budget by it.
	// Non-positive means 1.
	Priority int
	// Deadline is the job's absolute SLO deadline in CX units; EDF
	// admission orders by it and metrics report attainment against it.
	// Zero or negative means the job carries no deadline.
	Deadline float64
}

// weight resolves the job's scheduling weight (non-positive Priority
// defaults to 1).
func (j *Job) weight() float64 {
	if j.Priority <= 0 {
		return 1
	}
	return float64(j.Priority)
}

// JobResult reports one job's fate.
type JobResult struct {
	Job *Job
	// Failed is set when the job could never be placed (e.g. larger than
	// the whole cloud); the remaining fields are zero.
	Failed bool
	// PlacedAt is when computing qubits were reserved.
	PlacedAt float64
	// Finished is when the last gate (including trailing local gates)
	// completed.
	Finished float64
	// JCT = Finished − Arrival (queueing included), the paper's metric.
	JCT float64
	// WaitTime = PlacedAt − Arrival, the admission wait. A preempted and
	// resumed job reports its first placement here: requeue spans after a
	// preemption count toward JCT but not WaitTime, so the JCT-vs-wait
	// decomposition in OnlineStats keeps meaning "time to first service".
	WaitTime float64
	// RemoteGates is the job's remote DAG size under its placement.
	RemoteGates int
	// Placement is the qubit→QPU assignment used.
	Placement *place.Placement
}

// BatchWeights are Eq. 11's λ coefficients for the intensity metric
// I = λ1·(#2q/n) + λ2·n + λ3·depth.
type BatchWeights struct {
	L1, L2, L3 float64
}

// DefaultBatchWeights weights the three terms equally.
func DefaultBatchWeights() BatchWeights { return BatchWeights{L1: 1, L2: 1, L3: 1} }

// Intensity computes Eq. 11 for a circuit.
func Intensity(c *circuit.Circuit, w BatchWeights) float64 {
	n := float64(c.NumQubits())
	return w.L1*float64(c.TwoQubitGateCount())/n + w.L2*n + w.L3*float64(c.Depth())
}

// Mode selects the job admission order.
type Mode int

const (
	// BatchMode orders waiting jobs by descending intensity (CloudQC's
	// batch manager).
	BatchMode Mode = iota + 1
	// FIFOMode admits strictly in arrival order (CloudQC-FIFO baseline).
	FIFOMode
	// EDFMode admits waiting jobs earliest-deadline-first: ascending
	// absolute Deadline, jobs without deadlines last, ties by arrival
	// then ID. With all-equal deadlines it reduces to FIFO order.
	EDFMode
	// WFQMode is weighted fair queueing across tenants (start-time fair
	// queueing): each tenant accumulates virtual service — placed
	// intensity divided by its weight — and admission repeatedly takes
	// the cheapest waiting job of the least-served backlogged tenant. A
	// tenant going idle is not credited for the idle span (its virtual
	// service restarts at the global virtual time), so weights bound
	// each tenant's share of admissions without letting a latecomer
	// starve the rest. With a single tenant it reduces to batch
	// (ascending-intensity) order.
	WFQMode
)

// String names the mode as ParseMode spells it.
func (m Mode) String() string {
	switch m {
	case BatchMode:
		return "batch"
	case FIFOMode:
		return "fifo"
	case EDFMode:
		return "edf"
	case WFQMode:
		return "wfq"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps a CLI mode name to its admission mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "batch":
		return BatchMode, nil
	case "fifo":
		return FIFOMode, nil
	case "edf":
		return EDFMode, nil
	case "wfq":
		return WFQMode, nil
	default:
		return 0, fmt.Errorf("core: unknown admission mode %q (want batch, fifo, edf, or wfq)", s)
	}
}

// Config assembles a Controller.
type Config struct {
	// Cloud is the shared QPU cluster. Run mutates its reservations.
	Cloud *cloud.Cloud
	// Placer decides qubit→QPU assignments (default: CloudQC placement).
	Placer place.Placer
	// Policy divides communication qubits each round (default CloudQC).
	Policy sched.Policy
	// Model is the latency/EPR model (default: Table I, p=0.3).
	Model epr.Model
	// Weights are the batch manager's λ coefficients.
	Weights BatchWeights
	// Mode selects batch or FIFO admission (default batch).
	Mode Mode
	// Seed drives EPR sampling and randomized policies.
	Seed int64
	// Recorder, when non-nil, receives one utilization/queue sample per
	// scheduling round.
	Recorder *metrics.Recorder
	// PlanCacheSize bounds the compile-once plan cache that memoizes
	// placement and remote-DAG construction per (circuit fingerprint,
	// cloud shape, free-capacity signature): 0 means
	// plan.DefaultCapacity, negative disables caching. The cache only
	// engages when Placer is deterministic (place.DeterministicPlacer —
	// the CloudQC placers are); cached and uncached runs are
	// bit-identical either way.
	PlanCacheSize int
	// SharedWFQ, when non-nil, makes WFQ admission bill tenants into
	// the given shared virtual-clock space instead of a private
	// per-controller one. The federation layer hands one clock to every
	// shard so weighted fairness extends across shards: a tenant's
	// placements on any shard raise its start tags on all of them. The
	// clock is owned by the caller and never reset by the controller;
	// a single controller over a fresh shared clock behaves identically
	// to the private default.
	SharedWFQ *WFQClock
	// Preempt selects the preemption policy applied at EPR-round
	// boundaries (default PreemptOff). With PreemptOff the controller is
	// bit-identical to the pre-preemption code path.
	Preempt PreemptPolicy
	// ExportPreempted, when set on a live controller, exports preempted
	// jobs through TakePreempted instead of re-enqueueing them locally,
	// so the federation layer can re-route a resume to a different
	// shard. Set by fed.New on multi-shard federations; meaningless for
	// one-shot runs.
	ExportPreempted bool
	// OnTransition, when non-nil, is invoked at every live job lifecycle
	// transition (the service layer derives its SSE streams from these).
	// Fires synchronously inside the scheduling loop: the hook must be
	// fast and must not call back into the controller. Never fires for
	// one-shot Run calls, which keep no status index.
	OnTransition func(Transition)
	// Trace, when non-nil, records virtual-time execution spans and JCT
	// attribution for every job (see internal/trace). All hooks sit
	// behind nil checks, so the nil default is the zero-cost off switch:
	// an untraced run is bit-identical to one on a controller built
	// before tracing existed. A federation hands one shared recorder to
	// every shard so traces survive cross-shard rehoming; the recorder
	// follows the controller's synchronization discipline.
	Trace *trace.Recorder
	// Faults, when non-nil, schedules the plan's QPU-outage and
	// link-degrade events on the run's engine (see internal/fault and
	// fault.go in this package). The plan must be core-tier: shard
	// drains belong to fed.Config.Faults, which splits a full plan with
	// ForShard. Event shard indices are ignored here — the plan is
	// taken to be this controller's own slice. Nil keeps every fault
	// hook dormant: the run is bit-identical to a fault-free controller.
	Faults *fault.Plan
}

// RunStats summarizes the control-loop work of the last Run, for
// benchmarking the event-driven core against the lock-step reference.
type RunStats struct {
	// Rounds counts executed scheduling rounds: every loop iteration in
	// RunLockStep, every round tick in the event-driven Run.
	Rounds int
	// Events counts live discrete events the controller handled
	// (arrivals plus executed ticks; superseded tick closures are not
	// counted); zero for RunLockStep.
	Events int
}

// Controller executes multi-tenant workloads on a quantum cloud.
type Controller struct {
	cfg Config
	rng *rand.Rand
	// intensity memoizes Eq. 11 per job ID for the batch manager's sort.
	intensity map[int]float64
	// wfq holds WFQ admission's virtual clocks — per-tenant virtual
	// service (placed intensity / weight) behind a stable tenant→slot
	// table, plus the global virtual time. Private clocks reset per
	// run; a Config.SharedWFQ clock is federation-owned and persists.
	wfq *WFQClock
	// stats describes the last Run/RunLockStep call.
	stats RunStats
	// preempt counts preemption activity; reset with the per-run
	// scheduling state.
	preempt PreemptStats
	// faultStats counts fault-injection and recovery activity; reset
	// with the per-run scheduling state.
	faultStats fault.Stats
	// planCache memoizes compile artifacts (placement, remote DAG) per
	// (circuit fingerprint, free-capacity signature); nil when caching
	// is disabled or the placer is not deterministic.
	planCache *plan.Cache
	// statePool recycles retired jobs' sched.JobStates so cache-hit
	// admissions reuse per-node arrays instead of allocating fresh ones.
	statePool []*sched.JobState
	// Admission-round scratch, reused so the admit hot path stops
	// allocating: the arrived-jobs list, the free-capacity snapshot, and
	// WFQ ordering's slot-indexed grouping and virtual-clock copies
	// (see wfqOrder).
	arrived     []*Job
	freeScratch []int
	wfqGroups   [][]*Job
	wfqRound    []int
	wfqSvc      []float64
	wfqCursor   []int
	wfqCharge   []float64
}

// statePoolCap bounds the JobState pool: enough for any realistic
// concurrent-active set without pinning unbounded per-node arrays.
const statePoolCap = 64

// NewController validates the configuration and applies defaults.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("core: Config.Cloud is required")
	}
	if cfg.Placer == nil {
		cfg.Placer = place.NewCloudQC(place.DefaultConfig())
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.CloudQCPolicy{}
	}
	// Only a fully zero Model means "use the paper's default"; a partial
	// model (some latencies set, EPRAttempt forgotten) is a caller bug
	// that Validate reports rather than silently overwriting the set
	// fields.
	if cfg.Model == (epr.Model{}) {
		cfg.Model = epr.DefaultModel()
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Weights == (BatchWeights{}) {
		cfg.Weights = DefaultBatchWeights()
	}
	if cfg.Mode == 0 {
		cfg.Mode = BatchMode
	}
	if cfg.Mode < BatchMode || cfg.Mode > WFQMode {
		return nil, fmt.Errorf("core: unknown admission mode %d", cfg.Mode)
	}
	if cfg.Preempt < PreemptOff || cfg.Preempt > PreemptPriority {
		return nil, fmt.Errorf("core: unknown preemption policy %d", cfg.Preempt)
	}
	if err := validateFaults(&cfg); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cloud.NumQPUs(); i++ {
		if cfg.Cloud.QPU(i).Comm < 1 {
			return nil, fmt.Errorf("core: QPU %d has no communication qubits", i)
		}
	}
	ct := &Controller{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		intensity: make(map[int]float64),
	}
	if cfg.PlanCacheSize >= 0 {
		if _, ok := cfg.Placer.(place.DeterministicPlacer); ok {
			ct.planCache = plan.New(cfg.PlanCacheSize)
		}
	}
	return ct, nil
}

// PlanCacheStats reports the plan cache's cumulative hit/miss/eviction
// counters; the zero Stats (Enabled false) when caching is off.
func (ct *Controller) PlanCacheStats() plan.Stats {
	if ct.planCache == nil {
		return plan.Stats{}
	}
	return ct.planCache.Stats()
}

// ConfigurePlanCache re-bounds the plan cache: size > 0 sets the LRU
// capacity (evicting down if needed), 0 resets to plan.DefaultCapacity,
// negative disables caching entirely. Enabling on a controller whose
// placer is not deterministic is a no-op.
func (ct *Controller) ConfigurePlanCache(size int) {
	if size < 0 {
		ct.planCache = nil
		return
	}
	if ct.planCache == nil {
		if _, ok := ct.cfg.Placer.(place.DeterministicPlacer); ok {
			ct.planCache = plan.New(size)
		}
		return
	}
	ct.planCache.SetCapacity(size)
}

// activeJob is one placed, executing job.
type activeJob struct {
	job       *Job
	state     *sched.JobState
	placement *place.Placement
	placedAt  float64
	// firstPlacedAt is the job's first-ever placement time: equal to
	// placedAt unless the job was preempted and resumed, in which case
	// placedAt is the resume placement and firstPlacedAt the original —
	// the one results report as PlacedAt/WaitTime.
	firstPlacedAt float64
	// tr caches the job's trace so the per-round hook skips the
	// recorder's map; nil whenever tracing is off.
	tr *trace.JobTrace
}

// release is a (time, placement) pair for computing qubits whose job
// finished but whose trailing local work ends later.
type release struct {
	at        float64
	placement *place.Placement
}

// resetScheduling restarts the per-run scheduling state — the WFQ
// virtual clocks, the run-stats counters, and the intensity memo. Job
// IDs are only unique within one run, so a reused Controller must not
// bill a new stream's jobs at a previous stream's circuits'
// intensities. A shared WFQ clock is federation-owned and left alone:
// wiping it would erase the other shards' billing. It returns the
// cloud's total computing-qubit capacity.
func (ct *Controller) resetScheduling(jobHint int) int {
	switch {
	case ct.cfg.SharedWFQ != nil:
		ct.wfq = ct.cfg.SharedWFQ
	case ct.wfq == nil:
		ct.wfq = NewWFQClock()
	default:
		ct.wfq.Reset()
	}
	ct.intensity = make(map[int]float64, jobHint)
	ct.stats = RunStats{}
	ct.preempt = PreemptStats{}
	ct.faultStats = fault.Stats{}
	totalComputing := 0
	for i := 0; i < ct.cfg.Cloud.NumQPUs(); i++ {
		totalComputing += ct.cfg.Cloud.QPU(i).Computing
	}
	return totalComputing
}

// validateJob rejects nil circuits, empty registers (a 0-qubit circuit
// makes Intensity divide by zero, and the NaN would silently corrupt
// the batch sort), and IDs already present in results, then claims the
// job's result slot.
func validateJob(j *Job, results map[int]*JobResult) error {
	if j.Circuit == nil {
		return fmt.Errorf("core: job %d has no circuit", j.ID)
	}
	if j.Circuit.NumQubits() == 0 {
		return fmt.Errorf("core: job %d has an empty register", j.ID)
	}
	if _, dup := results[j.ID]; dup {
		return fmt.Errorf("core: duplicate job ID %d", j.ID)
	}
	results[j.ID] = &JobResult{Job: j}
	return nil
}

// prepare validates the submitted jobs, initializes their result slots,
// and resets the per-run scheduling state.
func (ct *Controller) prepare(jobs []*Job) (map[int]*JobResult, int, error) {
	results := make(map[int]*JobResult, len(jobs))
	totalComputing := ct.resetScheduling(len(jobs))
	for _, j := range jobs {
		if err := validateJob(j, results); err != nil {
			return nil, 0, err
		}
	}
	return results, totalComputing, nil
}

// LastRunStats reports the control-loop work of the most recent Run or
// RunLockStep call.
func (ct *Controller) LastRunStats() RunStats { return ct.stats }

// runState is the event-driven Run's mutable state, shared by the event
// closures scheduled on the engine.
type runState struct {
	ct             *Controller
	eng            *des.Engine
	results        map[int]*JobResult
	totalComputing int
	// queue holds arrived jobs awaiting placement. Unlike the lock-step
	// loop, jobs enter it only when their arrival event fires, so its
	// length is exactly the arrived-but-unplaced count the Recorder
	// samples as Queued.
	queue           []*Job
	pendingArrivals int
	active          []*activeJob
	releases        []release
	budget          []int
	// Per-round scratch, reused across ticks so the hot path stops
	// allocating: the flattened request list, each active job's ready
	// set (inner slices keep their capacity), and the states slice
	// scheduleNext hands to EarliestEnableTime.
	reqBuf    []sched.Request
	readyBuf  [][]int
	statesBuf []*sched.JobState
	// Traced-round scratch (per-active request counts, granted sums,
	// and max path hops), touched only when cfg.Trace is set so the
	// untraced round loop stays exactly as it was.
	reqCountBuf []int
	grantBuf    []int
	hopsBuf     []int
	// nextRound is the next shared EPR round's time. Round times advance
	// by repeated EPRAttempt addition from the instant multi-tenant
	// execution (re)started — exactly the float sequence the lock-step
	// loop produces — and are NaN while no job is active.
	nextRound float64
	// capacityChanged gates admission: set by arrivals and maturing
	// releases, consumed by the next tick.
	capacityChanged bool
	// tickGen invalidates superseded tick events: the engine has no
	// cancel, so a rescheduled tick bumps the generation and the stale
	// closure becomes a no-op.
	tickGen int
	// tickAt is the scheduled live tick's time (NaN when none).
	tickAt float64
	// maxFinished tracks the latest job completion for the closing
	// recorder sample.
	maxFinished float64
	// live marks a LiveController-owned state: jobs the placer can never
	// fit on an all-free cloud are marked failed instead of aborting the
	// run — an always-on service must survive one impossible job — and
	// the controller wakes at maturing releases even with nothing queued
	// or pending, since more jobs may arrive at any time. Run keeps the
	// one-shot behavior on both counts.
	live bool
	// status indexes per-job lifecycle states for the live controller
	// (nil in one-shot runs), with settled counters alongside, so
	// status queries and snapshots cost O(1) instead of scanning the
	// full submission history. Maintained via setStatus at every
	// transition point.
	status    map[int]JobStatus
	completed int
	failed    int
	// draining ends a live run: no more submissions are coming, so
	// trailing releases are applied silently like Run's tail instead of
	// waking the controller.
	draining bool
	err      error
	// Preemption state, nil/empty with PreemptOff configured so the off
	// path carries no behavior change: resume maps a preempted job's ID
	// to its checkpoint for the re-admission pass, rescued marks jobs
	// whose queueing triggered a rescue preemption (their on-time finish
	// increments RescuedDeadlines), and exported collects preempted jobs
	// awaiting federation re-routing (TakePreempted).
	resume   map[int]*resumeState
	rescued  map[int]bool
	exported []PreemptedJob
	// faults is the fault injector's overlay (see fault.go), nil
	// without a plan so the fault-free path carries no behavior change.
	faults *faultState
	// halted marks an evacuated shard (fed drained it): stale event
	// closures still in the engine must not resurrect exported jobs.
	halted bool
}

// Run executes the jobs to completion and returns their results ordered
// by job ID. The cloud's computing-qubit reservations are restored to
// their initial state before returning.
//
// Run is event-driven: arrivals, maturing releases, placement retries,
// and shared EPR rounds are events on an internal/des engine, and when
// every active job's ready set is empty the clock jumps straight to the
// next enabling time instead of spinning one iteration per EPRAttempt
// slot. On batch workloads it reproduces RunLockStep's results
// bit-identically while executing strictly fewer scheduling rounds.
func (ct *Controller) Run(jobs []*Job) ([]*JobResult, error) {
	results, totalComputing, err := ct.prepare(jobs)
	if err != nil {
		return nil, err
	}
	st := &runState{
		ct:              ct,
		eng:             des.NewEngine(),
		results:         results,
		totalComputing:  totalComputing,
		pendingArrivals: len(jobs),
		budget:          make([]int, ct.cfg.Cloud.NumQPUs()),
		nextRound:       math.NaN(),
		tickAt:          math.NaN(),
	}
	if ct.cfg.Preempt != PreemptOff {
		st.resume = make(map[int]*resumeState)
		st.rescued = make(map[int]bool)
	}
	// Fault events land on the engine before the workload's arrivals,
	// so at a shared instant the fault transition precedes the arrival.
	st.faultInit()
	first := math.Inf(1)
	for _, j := range jobs {
		j := j
		at := j.Arrival
		if at < 0 {
			at = 0 // like the lock-step loop, a negative arrival means "already here"
		}
		if at < first {
			first = at
		}
		// Priority scheduling: arrivals precede any controller tick at
		// the same instant, whether queued up front (here) or injected
		// mid-run (LiveController.Submit).
		st.eng.SchedulePriority(at, func() { st.arrive(j) })
	}
	if ct.cfg.Recorder != nil && first > 0 {
		// Opening sample: the idle span before the first arrival belongs
		// to the recorded horizon (the lock-step loop's t=0 iteration
		// captures it too).
		ct.cfg.Recorder.Record(metrics.Sample{Time: 0, Utilization: ct.cfg.Cloud.Utilization()})
	}
	st.eng.Run()
	if st.err != nil {
		// Failed runs must not leak reservations either: release every
		// still-active placement, pending release, and outage hold so
		// the shared cloud is usable for the next Run.
		for _, aj := range st.active {
			aj.placement.Release(ct.cfg.Cloud)
		}
		for _, r := range st.releases {
			r.placement.Release(ct.cfg.Cloud)
		}
		st.releaseFaultHolds()
		return nil, st.err
	}

	// Final releases restore the cloud. Outage holds were returned by
	// their qpuUp events (the engine drains every scheduled fault).
	for _, r := range st.releases {
		r.placement.Release(ct.cfg.Cloud)
	}
	if ct.cfg.Recorder != nil && len(jobs) > 0 {
		// Closing sample: thinned recorders would otherwise drop the
		// end-of-run state and under-cover the horizon (see
		// metrics.Recorder.Flush).
		end := st.eng.Now()
		if st.maxFinished > end {
			end = st.maxFinished
		}
		ct.cfg.Recorder.Flush(metrics.Sample{
			Time:        end,
			Utilization: ct.cfg.Cloud.Utilization(),
		})
	}

	out := make([]*JobResult, 0, len(results))
	for _, j := range jobs {
		out = append(out, results[j.ID])
	}
	return out, nil
}

// setStatus records a live job's lifecycle transition and keeps the
// settled counters current. A nil receiver or one-shot run (no status
// index) is a no-op, so the shared admission/retire paths can call it
// unconditionally.
func (st *runState) setStatus(id int, s JobStatus) {
	st.setStatusReason(id, s, ReasonNone)
}

// setStatusReason is setStatus with an explicit transition reason for
// the OnTransition hook (preemption and resume paths).
func (st *runState) setStatusReason(id int, s JobStatus, why TransitionReason) {
	if st == nil || st.status == nil {
		return
	}
	old := st.status[id]
	st.status[id] = s
	switch s {
	case StatusCompleted:
		st.completed++
	case StatusFailed:
		st.failed++
	}
	st.notify(Transition{JobID: id, From: old, To: s, At: st.eng.Now(), Reason: why})
}

// arrive is the arrival event: the job joins the admission queue and a
// tick at the current instant places it if capacity allows — unlike the
// lock-step loop, which only re-ran admission after a release and could
// strand an arrival on an idle cloud until some other job finished.
func (st *runState) arrive(j *Job) {
	if st.halted {
		// Evacuated shard: the job was exported for rehoming (Evacuate
		// adjusted pendingArrivals); the stale closure must not
		// resurrect it here.
		return
	}
	st.pendingArrivals--
	if st.err != nil {
		return
	}
	st.ct.stats.Events++
	st.queue = append(st.queue, j)
	if tc := st.ct.cfg.Trace; tc != nil {
		// A resume arrival rehomed from another shard finds its trace
		// already open in the shared recorder; Arrive keeps it.
		tc.Arrive(j.ID, j.Tenant, j.Arrival)
	}
	st.setStatus(j.ID, StatusQueued)
	st.capacityChanged = true
	st.requestTick(st.eng.Now())
}

// requestTick schedules the controller tick at `at`, superseding any
// later-scheduled tick. Requests at or after the pending tick are
// no-ops: ticks only ever move earlier, never later.
func (st *runState) requestTick(at float64) {
	if !math.IsNaN(st.tickAt) && st.tickAt <= at {
		return
	}
	st.tickGen++
	gen := st.tickGen
	st.tickAt = at
	st.eng.Schedule(at, func() {
		if gen != st.tickGen || st.err != nil {
			return
		}
		st.tickAt = math.NaN()
		st.tick()
	})
}

// tick is one controller pass at the current instant, mirroring one
// lock-step loop iteration: apply matured releases, retry admission,
// sample the recorder, run the shared EPR round if one is due, retire
// finished jobs, and schedule the next tick.
func (st *runState) tick() {
	ct := st.ct
	ct.stats.Events++
	t := st.eng.Now()

	// Apply matured releases.
	kept := st.releases[:0]
	for _, r := range st.releases {
		if r.at <= t {
			r.placement.Release(ct.cfg.Cloud)
			st.capacityChanged = true
		} else {
			kept = append(kept, r)
		}
	}
	st.releases = kept
	if st.faults != nil {
		// Capacity a matured release just returned on a downed QPU goes
		// straight back into the outage hold.
		st.faultTopUp()
	}

	// Admission: try placing waiting jobs. Admitting onto an idle cloud
	// (re)starts the round clock at this instant, matching the lock-step
	// loop's jump-then-iterate behavior.
	if st.capacityChanged {
		wasIdle := len(st.active) == 0
		var err error
		st.queue, st.active, err = ct.admit(st.queue, st.active, st.results, t, st.totalComputing, st)
		if err != nil {
			st.err = err
			return
		}
		st.capacityChanged = false
		if wasIdle && len(st.active) > 0 {
			st.nextRound = t
		}
	}

	if ct.cfg.Recorder != nil {
		ct.cfg.Recorder.Record(metrics.Sample{
			Time:        t,
			Utilization: ct.cfg.Cloud.Utilization(),
			Active:      len(st.active),
			Queued:      len(st.queue),
		})
	}

	// One shared EPR round across every active job, when a round is due.
	// Off-grid ticks (an arrival landing between rounds) only admit; the
	// round cadence of already-running jobs is preserved. Requests and
	// ready sets accumulate into reused scratch buffers — the same
	// values collectRequests (the lock-step reference's allocating
	// variant) would produce.
	if !math.IsNaN(st.nextRound) && t >= st.nextRound {
		ct.stats.Rounds++
		traced := ct.cfg.Trace != nil
		if traced {
			st.reqCountBuf = zeroInts(st.reqCountBuf, len(st.active))
			st.grantBuf = zeroInts(st.grantBuf, len(st.active))
			st.hopsBuf = zeroInts(st.hopsBuf, len(st.active))
		}
		st.reqBuf = st.reqBuf[:0]
		for len(st.readyBuf) < len(st.active) {
			st.readyBuf = append(st.readyBuf, nil)
		}
		for idx, aj := range st.active {
			ready := aj.state.AppendReady(st.readyBuf[idx][:0], t)
			st.readyBuf[idx] = ready
			base := len(st.reqBuf)
			st.reqBuf = aj.state.AppendRequests(st.reqBuf, idx, ready)
			for i := base; i < len(st.reqBuf); i++ {
				st.reqBuf[i].Tenant = aj.job.Tenant
				st.reqBuf[i].TenantWeight = aj.job.Priority
			}
			if traced {
				st.reqCountBuf[idx] = len(st.reqBuf) - base
				for i := base; i < len(st.reqBuf); i++ {
					if h := len(st.reqBuf[i].Path) - 1; h > st.hopsBuf[idx] {
						st.hopsBuf[idx] = h
					}
				}
			}
		}
		var alloc map[sched.NodeKey]int
		if len(st.reqBuf) > 0 {
			for i := range st.budget {
				st.budget[i] = ct.cfg.Cloud.QPU(i).Comm
			}
			if f := st.faults; f != nil {
				// A downed QPU generates no EPR pairs for the interval.
				for i := range st.budget {
					if f.down[i] > 0 {
						st.budget[i] = 0
					}
				}
			}
			alloc = ct.cfg.Policy.Allocate(st.reqBuf, st.budget, ct.rng)
			for idx, aj := range st.active {
				if !traced {
					for _, u := range st.readyBuf[idx] {
						st.attempt(aj.state, u, alloc[sched.NodeKey{Job: idx, Node: u}], t)
					}
					continue
				}
				granted := 0
				for _, u := range st.readyBuf[idx] {
					g := alloc[sched.NodeKey{Job: idx, Node: u}]
					st.attempt(aj.state, u, g, t)
					granted += g
				}
				st.grantBuf[idx] = granted
			}
		}
		if traced {
			// Every active traced job sees every round tick — including
			// ready-empty ones — so the network-stall accumulator closes
			// each attempt stretch at the round that follows it.
			for idx, aj := range st.active {
				if aj.tr != nil {
					aj.tr.Round(t, len(st.readyBuf[idx]), st.reqCountBuf[idx], st.grantBuf[idx], st.hopsBuf[idx])
				}
			}
		}
		if st.faults != nil {
			// After the traced Round hooks so a retry-failed job's spans
			// close in recording order; before retirement so a job that
			// completed this round retires instead of failing.
			st.faultRetryPass(t, alloc)
		}
		st.nextRound = t + ct.cfg.Model.EPRAttempt
	}

	// Retire completed jobs; their execution states return to the pool
	// for later admissions to reuse.
	remaining := st.active[:0]
	for _, aj := range st.active {
		if !aj.state.Done() {
			remaining = append(remaining, aj)
			continue
		}
		finished := aj.state.JCT()
		res := st.results[aj.job.ID]
		res.PlacedAt = aj.firstPlacedAt
		res.Finished = finished
		res.JCT = finished - aj.job.Arrival
		res.WaitTime = aj.firstPlacedAt - aj.job.Arrival
		if aj.tr != nil {
			// Before the status transition, so the service's done event
			// already sees the finalized attribution.
			ct.cfg.Trace.Settle(aj.tr, finished, aj.state.MaxFinish())
		}
		st.releases = append(st.releases, release{at: finished, placement: aj.placement})
		st.setStatus(aj.job.ID, StatusCompleted)
		if st.rescued != nil && st.rescued[aj.job.ID] {
			delete(st.rescued, aj.job.ID)
			if aj.job.Deadline > 0 && finished <= aj.job.Deadline {
				ct.preempt.RescuedDeadlines++
			}
		}
		if finished > st.maxFinished {
			st.maxFinished = finished
		}
		ct.releaseJobState(aj.state)
		aj.state = nil
	}
	st.active = remaining

	st.maybePreempt(t)
	st.scheduleNext(t)
}

// zeroInts returns buf resized to n entries, all zero, growing the
// backing array only until it warms up to the run's active-set size.
func zeroInts(buf []int, n int) []int {
	for len(buf) < n {
		buf = append(buf, 0)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// scheduleNext decides when the controller must wake again after a tick
// at time t. With active jobs it is the next round that can make
// progress: rounds advance on the EPRAttempt grid, and grid slots where
// no job has a ready node and no release matures are skipped in one
// jump. With an idle cloud it is the next release (arrival events wake
// the controller on their own); no wake source left with jobs still
// queued means they can never be placed.
func (st *runState) scheduleNext(t float64) {
	if len(st.active) == 0 {
		st.nextRound = math.NaN()
		if len(st.queue) == 0 && st.pendingArrivals == 0 && (!st.live || st.draining) {
			return // done: only the final releases remain
		}
		// Wake at the next maturing release even with nothing queued:
		// later arrivals need the freed capacity applied, and the
		// Recorder's sample-and-hold series must see utilization drop at
		// the release, not at the next arrival. A live controller wakes
		// even with nothing pending at all — more jobs may arrive at any
		// time, which is exactly the state pendingArrivals > 0 models in
		// a one-shot run.
		next := math.Inf(1)
		for _, r := range st.releases {
			if r.at > t && r.at < next {
				next = r.at
			}
		}
		if !math.IsInf(next, 1) {
			st.requestTick(next)
		} else if st.faults != nil && st.faults.anyDown() {
			// Queued jobs may be waiting on capacity an outage is
			// holding; the pending qpuUp event wakes the controller and
			// retries admission before any unplaceable verdict.
			return
		} else if len(st.queue) > 0 && st.pendingArrivals == 0 && math.IsNaN(st.tickAt) {
			// The tickAt guard covers preemption's same-instant re-admission
			// tick: the queue holds jobs a committed preemption just made
			// placeable, not jobs that can never be placed. Without
			// preemption no tick is ever pending here, so the guard is
			// vacuous on the off path.
			// Nothing active, nothing maturing, nothing still to arrive:
			// the queued jobs can never be placed. The one-shot Run
			// aborts; a live controller fails the jobs and keeps serving.
			if st.live {
				for _, j := range st.queue {
					st.results[j.ID].Failed = true
					if tc := st.ct.cfg.Trace; tc != nil {
						tc.Fail(j.ID, t)
					}
					st.setStatus(j.ID, StatusFailed)
				}
				st.queue = st.queue[:0]
			} else {
				st.err = fmt.Errorf("core: %d jobs unplaceable with all resources free", len(st.queue))
			}
		}
		return
	}

	// Earliest instant any active job can attempt EPR generation; a
	// maturing release also matters (placement retries, utilization
	// samples), processed on the round grid like the lock-step loop.
	st.statesBuf = st.statesBuf[:0]
	for _, aj := range st.active {
		st.statesBuf = append(st.statesBuf, aj.state)
	}
	wake, ok := sched.EarliestEnableTime(st.statesBuf, t)
	if !ok {
		// Unreachable: an unfinished job always has a runnable node. Keep
		// the round cadence rather than spinning the skip loop forever.
		wake = t
	}
	for _, r := range st.releases {
		if r.at > t && r.at < wake {
			wake = r.at
		}
	}
	// Advance to the first round slot covering wake by repeated
	// EPRAttempt addition — the identical float sequence the lock-step
	// loop walks, so skipping stalls cannot perturb round times (and
	// with them EPR sampling) by even one ulp.
	next := st.nextRound
	for next < wake {
		next += st.ct.cfg.Model.EPRAttempt
	}
	st.nextRound = next
	st.requestTick(next)
}

// admit tries to place every waiting job that has arrived, in the
// configured admission order (batch intensity, FIFO, EDF, or WFQ). Jobs
// larger than the whole cloud are marked failed. st carries the live
// status index (nil from the lock-step loop).
func (ct *Controller) admit(queue []*Job, active []*activeJob, results map[int]*JobResult, t float64, totalComputing int, st *runState) ([]*Job, []*activeJob, error) {
	// Partition in place: not-yet-arrived jobs compact into queue's
	// prefix, arrived ones move to a controller-owned scratch list.
	// Bounced jobs are appended back onto the prefix — the combined
	// length never exceeds the original queue, so the hot path
	// reallocates nothing once the scratch warms up.
	arrived := ct.arrived[:0]
	waiting := queue[:0]
	for _, j := range queue {
		if j.Arrival <= t {
			arrived = append(arrived, j)
		} else {
			waiting = append(waiting, j)
		}
	}
	ct.orderArrived(arrived)
	for _, j := range arrived {
		if j.Circuit.NumQubits() > totalComputing {
			results[j.ID].Failed = true
			if tc := ct.cfg.Trace; tc != nil {
				tc.Fail(j.ID, t)
			}
			st.setStatus(j.ID, StatusFailed)
			continue
		}
		pl, dag, prio, cacheHit, err := ct.compile(j)
		if err != nil {
			var infeasible *place.ErrInfeasible
			if errors.As(err, &infeasible) {
				waiting = append(waiting, j) // retry after a release
				continue
			}
			// Return the state held so far: callers release the active
			// placements on this path so the cloud is not leaked.
			ct.arrived = arrived[:0]
			return waiting, active, fmt.Errorf("core: placing job %d: %w", j.ID, err)
		}
		if err := pl.Reserve(ct.cfg.Cloud); err != nil {
			waiting = append(waiting, j)
			continue
		}
		// A preempted job re-entering admission resumes instead of
		// restarting: its checkpoint replays onto the fresh placement, it
		// keeps its original first-placement timestamp, and its WFQ
		// virtual-clock charge from the first placement stands (resuming
		// is not new service, so the tenant is not billed twice).
		var rs *resumeState
		if st != nil && st.resume != nil {
			rs = st.resume[j.ID]
		}
		var wfqStart float64
		wfqBilled := false
		if ct.cfg.Mode == WFQMode && rs == nil {
			// Bill only what was actually served: jobs bounced back to
			// waiting must not inflate their tenant's virtual service.
			wfqStart = ct.chargeWFQ(j)
			wfqBilled = true
		}
		state := ct.takeJobState(dag, prio, t)
		first := t
		if rs != nil {
			state.ApplyCheckpoint(rs.cp, t)
			first = rs.firstPlacedAt
			delete(st.resume, j.ID)
			ct.preempt.Resumes++
		}
		aj := &activeJob{job: j, state: state, placement: pl, placedAt: t, firstPlacedAt: first}
		if tc := ct.cfg.Trace; tc != nil {
			if tr := tc.Get(j.ID); tr != nil {
				tr.Compiled(t, cacheHit, rs != nil)
				tr.Place(t, ct.cfg.Mode.String(), wfqStart, wfqBilled, rs != nil)
				aj.tr = tr
			}
		}
		active = append(active, aj)
		results[j.ID].RemoteGates = dag.Len()
		results[j.ID].Placement = pl
		if rs != nil {
			st.setStatusReason(j.ID, StatusRunning, ReasonResumed)
		} else {
			st.setStatus(j.ID, StatusRunning)
		}
	}
	ct.arrived = arrived[:0]
	// Preserve arrival order among the still-waiting arrived jobs by
	// re-sorting the combined waiting list on (Arrival, ID).
	sort.SliceStable(waiting, func(i, k int) bool {
		if waiting[i].Arrival != waiting[k].Arrival {
			return waiting[i].Arrival < waiting[k].Arrival
		}
		return waiting[i].ID < waiting[k].ID
	})
	return waiting, active, nil
}

// compile resolves a job's placement and remote DAG against the cloud's
// current free-capacity state: a plan-cache hit returns the memoized
// assignment, DAG skeleton, and priorities; a miss (or disabled cache)
// runs the full placer pipeline and, on success, caches the artifacts
// under the exact free snapshot the placer saw. Because the cached
// placement was computed under an identical snapshot by a deterministic
// placer, a hit is bit-identical to what the cold path would produce —
// and necessarily still fits the QPUs it touches. The hit flag reports
// which path served the compile, for trace spans.
func (ct *Controller) compile(j *Job) (*place.Placement, *sched.RemoteDAG, []int, bool, error) {
	cl := ct.cfg.Cloud
	if ct.planCache == nil {
		pl, err := ct.cfg.Placer.Place(cl, j.Circuit)
		if err != nil {
			return nil, nil, nil, false, err
		}
		dag := sched.BuildRemoteDAG(j.Circuit, cl, pl.QubitToQPU, ct.cfg.Model.Latency)
		return pl, dag, nil, false, nil
	}
	free := ct.freeScratch[:0]
	for i, n := 0, cl.NumQPUs(); i < n; i++ {
		free = append(free, cl.FreeComputing(i))
	}
	ct.freeScratch = free
	key := plan.Key{
		Circuit: j.Circuit.Fingerprint(),
		Cloud:   cl.Signature(),
		Free:    plan.FreeSignature(free),
	}
	if e, ok := ct.planCache.Lookup(key, free); ok {
		return &place.Placement{Circuit: j.Circuit, QubitToQPU: e.Assign}, e.DAG, e.Prio, true, nil
	}
	pl, err := ct.cfg.Placer.Place(cl, j.Circuit)
	if err != nil {
		return nil, nil, nil, false, err
	}
	dag := sched.BuildRemoteDAG(j.Circuit, cl, pl.QubitToQPU, ct.cfg.Model.Latency)
	prio := dag.Priorities()
	ct.planCache.Insert(key, free, &plan.Entry{
		Assign: pl.QubitToQPU,
		// CommCost is an O(two-qubit gates) pass — noise next to the
		// placement sweep this miss already paid; RemoteOps is the remote
		// DAG's node count by construction (one node per QPU-crossing
		// two-qubit gate), so it costs nothing to record.
		CommCost:  place.CommCost(j.Circuit, cl, pl.QubitToQPU),
		RemoteOps: dag.Len(),
		DAG:       dag,
		Prio:      prio,
	})
	return pl, dag, prio, false, nil
}

// takeJobState builds a job's execution state, reusing a pooled
// JobState's per-node arrays when one is available. prio is the cached
// priority slice on plan-cache hits (nil computes it fresh).
func (ct *Controller) takeJobState(dag *sched.RemoteDAG, prio []int, start float64) *sched.JobState {
	var s *sched.JobState
	if n := len(ct.statePool); n > 0 {
		s = ct.statePool[n-1]
		ct.statePool[n-1] = nil
		ct.statePool = ct.statePool[:n-1]
	} else {
		s = new(sched.JobState)
	}
	s.Reinit(dag, prio, start)
	return s
}

// releaseJobState returns a retired job's execution state to the pool.
// Callers must not touch s afterwards.
func (ct *Controller) releaseJobState(s *sched.JobState) {
	if len(ct.statePool) < statePoolCap {
		ct.statePool = append(ct.statePool, s)
	}
}

// orderArrived sorts the arrived-and-waiting jobs into this round's
// admission order for the configured mode; FIFO leaves the queue's
// (arrival, ID) order untouched.
func (ct *Controller) orderArrived(arrived []*Job) {
	switch ct.cfg.Mode {
	case BatchMode:
		ct.memoizeIntensity(arrived)
		// Ascending intensity: the metric estimates a job's cost (2-qubit
		// density, width, depth), so cheapest-first minimizes mean JCT —
		// the ordering that yields the paper's CDF improvement over FIFO.
		sort.SliceStable(arrived, func(i, k int) bool {
			return ct.intensity[arrived[i].ID] < ct.intensity[arrived[k].ID]
		})
	case EDFMode:
		// Earliest absolute deadline first; deadline-free jobs sort last.
		// The (arrival, ID) tie-break makes all-equal deadlines reduce to
		// FIFO for streams submitted in (arrival, ID) order.
		sort.SliceStable(arrived, func(i, k int) bool {
			di, dk := deadlineOf(arrived[i]), deadlineOf(arrived[k])
			if di != dk {
				return di < dk
			}
			if arrived[i].Arrival != arrived[k].Arrival {
				return arrived[i].Arrival < arrived[k].Arrival
			}
			return arrived[i].ID < arrived[k].ID
		})
	case WFQMode:
		ct.memoizeIntensity(arrived)
		ct.wfqOrder(arrived)
	}
}

// memoizeIntensity caches Eq. 11 per job for the intensity-driven
// admission orders.
func (ct *Controller) memoizeIntensity(jobs []*Job) {
	for _, j := range jobs {
		if _, ok := ct.intensity[j.ID]; !ok {
			ct.intensity[j.ID] = Intensity(j.Circuit, ct.cfg.Weights)
		}
	}
}

// deadlineOf treats unset deadlines as infinitely late for EDF ordering.
func deadlineOf(j *Job) float64 {
	if j.Deadline <= 0 {
		return math.Inf(1)
	}
	return j.Deadline
}

// wfqOrder arranges arrived into weighted fair admission order by
// simulating start-time fair queueing on scratch copies of the virtual
// clocks: each tenant's jobs queue in ascending (intensity, arrival,
// ID) order, and the next slot goes to the head job with the smallest
// start tag max(service[tenant], vtime) — ties to the smaller finish
// tag start + intensity/weight, then the smaller tenant id. The scratch
// clocks are charged as if every job were placed so one tenant's many
// cheap jobs cannot all outrank a rival's single expensive one; the
// real clocks advance only when a job actually reserves capacity (see
// chargeWFQ), so jobs bounced back to waiting are never billed. With a
// single tenant the order degenerates to ascending intensity — batch
// order.
//
// Every structure here is slot-indexed through the WFQClock's stable
// tenant→slot table: grouping, scratch clocks, and cursors are plain
// slices reused across rounds, so a round costs zero map operations
// and zero allocations once the scratch is warm. (Memory scales with
// the distinct tenants the clock has seen, exactly like the clock
// itself; a private clock resets per run.)
func (ct *Controller) wfqOrder(arrived []*Job) {
	if len(arrived) < 2 {
		return
	}
	w := ct.wfq
	groups := ct.wfqGroups
	round := ct.wfqRound[:0]
	for _, j := range arrived {
		s := w.slot(j.Tenant)
		for len(groups) <= s {
			groups = append(groups, nil)
		}
		if len(groups[s]) == 0 {
			round = append(round, s)
		}
		groups[s] = append(groups[s], j)
	}
	ct.wfqGroups = groups
	defer func() {
		// Release the grouped job pointers (the [:0] reslice alone would
		// keep them reachable through the backing arrays) and leave every
		// touched group empty for the next round's len==0 "new slot" test.
		for _, s := range round {
			g := groups[s]
			for i := range g {
				g[i] = nil
			}
			groups[s] = g[:0]
		}
		ct.wfqRound = round[:0]
	}()
	// Slots are allocated in first-seen order, not tenant order; sort
	// this round's slots by tenant id so admission ties keep breaking to
	// the smaller tenant id, exactly as the ordering always has. Both
	// sorts are allocation-free insertion sorts: sort.Slice's reflection
	// closures were the last per-round allocations, round slices are
	// small (tenants queued now, one tenant's jobs), and insertion sort
	// is stable so the order matches sort.SliceStable's exactly.
	for i := 1; i < len(round); i++ {
		s := round[i]
		k := i
		for k > 0 && w.ids[round[k-1]] > w.ids[s] {
			round[k] = round[k-1]
			k--
		}
		round[k] = s
	}
	for _, s := range round {
		g := groups[s]
		for i := 1; i < len(g); i++ {
			j := g[i]
			k := i
			for k > 0 && ct.wfqJobLess(j, g[k-1]) {
				g[k] = g[k-1]
				k--
			}
			g[k] = j
		}
	}
	// Scratch clocks sized to the slot table; only this round's slots
	// are (re)initialized and read. charge caches each slot's head-job
	// cost (intensity/weight), refreshed as cursors advance, so the
	// O(picks × slots) selection loop below probes plain float slices
	// instead of hashing the intensity map per probe.
	svc, cursor, charge := ct.wfqSvc, ct.wfqCursor, ct.wfqCharge
	for len(svc) < len(w.service) {
		svc = append(svc, 0)
	}
	for len(cursor) < len(w.service) {
		cursor = append(cursor, 0)
	}
	for len(charge) < len(w.service) {
		charge = append(charge, 0)
	}
	ct.wfqSvc, ct.wfqCursor, ct.wfqCharge = svc, cursor, charge
	for _, s := range round {
		svc[s] = w.service[s]
		cursor[s] = 0
		h := groups[s][0]
		charge[s] = ct.intensity[h.ID] / h.weight()
	}
	vtime := w.vtime
	for i := range arrived {
		best := -1
		var bestStart, bestFinish float64
		for _, s := range round {
			if cursor[s] >= len(groups[s]) {
				continue
			}
			start := svc[s]
			if start < vtime {
				start = vtime
			}
			finish := start + charge[s]
			if best < 0 || start < bestStart || (start == bestStart && finish < bestFinish) {
				best, bestStart, bestFinish = s, start, finish
			}
		}
		j := groups[best][cursor[best]]
		cursor[best]++
		if cursor[best] < len(groups[best]) {
			h := groups[best][cursor[best]]
			charge[best] = ct.intensity[h.ID] / h.weight()
		}
		arrived[i] = j
		svc[best] = bestFinish
		vtime = bestStart
	}
}

// wfqJobLess orders one tenant's queued jobs: ascending intensity,
// then arrival, then ID — the per-tenant queue order start-time fair
// queueing consumes.
func (ct *Controller) wfqJobLess(a, b *Job) bool {
	ia, ib := ct.intensity[a.ID], ct.intensity[b.ID]
	if ia != ib {
		return ia < ib
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// chargeWFQ bills a successfully placed job to its tenant's virtual
// service and advances the global virtual time to the job's start tag,
// which it returns (trace spans record it as the admission decision's
// WFQ virtual start). Starting at max(service, vtime) denies credit
// for idle spans: a tenant that submitted nothing for a while competes
// from the current virtual time, not from its stale low service.
func (ct *Controller) chargeWFQ(j *Job) float64 {
	w := ct.wfq
	s := w.slot(j.Tenant)
	start := w.service[s]
	if start < w.vtime {
		start = w.vtime
	}
	w.service[s] = start + ct.intensity[j.ID]/j.weight()
	w.vtime = start
	return start
}

// collectRequests gathers one round's policy requests across the active
// jobs, tagging each request with its submitting tenant and weight for
// tenant-aware allocation policies. It also returns each job's ready
// node set, which the caller replays into Attempt after allocation.
func collectRequests(active []*activeJob, t float64) ([]sched.Request, map[int][]int) {
	var reqs []sched.Request
	readyByJob := make(map[int][]int, len(active))
	for idx, aj := range active {
		ready := aj.state.Ready(t)
		readyByJob[idx] = ready
		rs := aj.state.Requests(idx, ready)
		for i := range rs {
			rs[i].Tenant = aj.job.Tenant
			rs[i].TenantWeight = aj.job.Priority
		}
		reqs = append(reqs, rs...)
	}
	return reqs, readyByJob
}

// Outcomes converts run results into the metrics layer's plain job
// outcomes for SLO aggregation (deadline attainment, cross-tenant
// fairness, per-tenant breakdowns).
func Outcomes(results []*JobResult) []metrics.JobOutcome {
	out := make([]metrics.JobOutcome, 0, len(results))
	for _, r := range results {
		o := metrics.JobOutcome{
			Tenant:   r.Job.Tenant,
			Weight:   r.Job.Priority,
			Failed:   r.Failed,
			Deadline: r.Job.Deadline,
		}
		if !r.Failed {
			o.JCT, o.Finished = r.JCT, r.Finished
		}
		out = append(out, o)
	}
	return out
}

// Package core is CloudQC's multi-tenant controller: it admits quantum
// circuit jobs into the cloud (batch-ordered by the paper's intensity
// metric, Eq. 11, or FIFO), places them with a pluggable placement
// algorithm, and executes all active jobs' remote DAGs concurrently —
// sharing every QPU's communication qubits across tenants each EPR round
// and releasing computing qubits as jobs complete.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/sched"
)

// Job is one tenant's circuit submission.
type Job struct {
	// ID identifies the job in results; unique within one Run.
	ID int
	// Circuit is the submitted program.
	Circuit *circuit.Circuit
	// Arrival is the submission time (0 for batch mode).
	Arrival float64
}

// JobResult reports one job's fate.
type JobResult struct {
	Job *Job
	// Failed is set when the job could never be placed (e.g. larger than
	// the whole cloud); the remaining fields are zero.
	Failed bool
	// PlacedAt is when computing qubits were reserved.
	PlacedAt float64
	// Finished is when the last gate (including trailing local gates)
	// completed.
	Finished float64
	// JCT = Finished − Arrival (queueing included), the paper's metric.
	JCT float64
	// WaitTime = PlacedAt − Arrival.
	WaitTime float64
	// RemoteGates is the job's remote DAG size under its placement.
	RemoteGates int
	// Placement is the qubit→QPU assignment used.
	Placement *place.Placement
}

// BatchWeights are Eq. 11's λ coefficients for the intensity metric
// I = λ1·(#2q/n) + λ2·n + λ3·depth.
type BatchWeights struct {
	L1, L2, L3 float64
}

// DefaultBatchWeights weights the three terms equally.
func DefaultBatchWeights() BatchWeights { return BatchWeights{L1: 1, L2: 1, L3: 1} }

// Intensity computes Eq. 11 for a circuit.
func Intensity(c *circuit.Circuit, w BatchWeights) float64 {
	n := float64(c.NumQubits())
	return w.L1*float64(c.TwoQubitGateCount())/n + w.L2*n + w.L3*float64(c.Depth())
}

// Mode selects the job admission order.
type Mode int

const (
	// BatchMode orders waiting jobs by descending intensity (CloudQC's
	// batch manager).
	BatchMode Mode = iota + 1
	// FIFOMode admits strictly in arrival order (CloudQC-FIFO baseline).
	FIFOMode
)

// Config assembles a Controller.
type Config struct {
	// Cloud is the shared QPU cluster. Run mutates its reservations.
	Cloud *cloud.Cloud
	// Placer decides qubit→QPU assignments (default: CloudQC placement).
	Placer place.Placer
	// Policy divides communication qubits each round (default CloudQC).
	Policy sched.Policy
	// Model is the latency/EPR model (default: Table I, p=0.3).
	Model epr.Model
	// Weights are the batch manager's λ coefficients.
	Weights BatchWeights
	// Mode selects batch or FIFO admission (default batch).
	Mode Mode
	// Seed drives EPR sampling and randomized policies.
	Seed int64
	// Recorder, when non-nil, receives one utilization/queue sample per
	// scheduling round.
	Recorder *metrics.Recorder
}

// Controller executes multi-tenant workloads on a quantum cloud.
type Controller struct {
	cfg Config
	rng *rand.Rand
	// intensity memoizes Eq. 11 per job ID for the batch manager's sort.
	intensity map[int]float64
}

// NewController validates the configuration and applies defaults.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Cloud == nil {
		return nil, errors.New("core: Config.Cloud is required")
	}
	if cfg.Placer == nil {
		cfg.Placer = place.NewCloudQC(place.DefaultConfig())
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.CloudQCPolicy{}
	}
	if cfg.Model.EPRAttempt == 0 {
		cfg.Model = epr.DefaultModel()
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Weights == (BatchWeights{}) {
		cfg.Weights = DefaultBatchWeights()
	}
	if cfg.Mode == 0 {
		cfg.Mode = BatchMode
	}
	for i := 0; i < cfg.Cloud.NumQPUs(); i++ {
		if cfg.Cloud.QPU(i).Comm < 1 {
			return nil, fmt.Errorf("core: QPU %d has no communication qubits", i)
		}
	}
	return &Controller{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		intensity: make(map[int]float64),
	}, nil
}

// activeJob is one placed, executing job.
type activeJob struct {
	job       *Job
	state     *sched.JobState
	placement *place.Placement
	placedAt  float64
}

// Run executes the jobs to completion and returns their results ordered
// by job ID. The cloud's computing-qubit reservations are restored to
// their initial state before returning.
func (ct *Controller) Run(jobs []*Job) ([]*JobResult, error) {
	results := make(map[int]*JobResult, len(jobs))
	totalComputing := 0
	for i := 0; i < ct.cfg.Cloud.NumQPUs(); i++ {
		totalComputing += ct.cfg.Cloud.QPU(i).Computing
	}
	var queue []*Job
	for _, j := range jobs {
		if j.Circuit == nil {
			return nil, fmt.Errorf("core: job %d has no circuit", j.ID)
		}
		if _, dup := results[j.ID]; dup {
			return nil, fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		results[j.ID] = &JobResult{Job: j}
		queue = append(queue, j)
	}

	var active []*activeJob
	// releases holds (time, placement) pairs for computing qubits whose
	// jobs finished but whose trailing local work ends later.
	type release struct {
		at        float64
		placement *place.Placement
	}
	var releases []release

	t := 0.0
	capacityChanged := true
	budget := make([]int, ct.cfg.Cloud.NumQPUs())

	for len(queue) > 0 || len(active) > 0 {
		// Apply matured releases.
		kept := releases[:0]
		for _, r := range releases {
			if r.at <= t {
				r.placement.Release(ct.cfg.Cloud)
				capacityChanged = true
			} else {
				kept = append(kept, r)
			}
		}
		releases = kept

		// Admission: try placing waiting, arrived jobs.
		if capacityChanged {
			var err error
			queue, active, err = ct.admit(queue, active, results, t, totalComputing)
			if err != nil {
				return nil, err
			}
			capacityChanged = false
		}

		if ct.cfg.Recorder != nil {
			ct.cfg.Recorder.Record(metrics.Sample{
				Time:        t,
				Utilization: ct.cfg.Cloud.Utilization(),
				Active:      len(active),
				Queued:      len(queue),
			})
		}

		// One shared EPR round across every active job.
		var reqs []sched.Request
		readyByJob := make(map[int][]int, len(active))
		for idx, aj := range active {
			ready := aj.state.Ready(t)
			readyByJob[idx] = ready
			reqs = append(reqs, aj.state.Requests(idx, ready)...)
		}
		if len(reqs) > 0 {
			for i := range budget {
				budget[i] = ct.cfg.Cloud.QPU(i).Comm
			}
			alloc := ct.cfg.Policy.Allocate(reqs, budget, ct.rng)
			for idx, aj := range active {
				for _, u := range readyByJob[idx] {
					aj.state.Attempt(u, alloc[sched.NodeKey{Job: idx, Node: u}], t, ct.cfg.Model, ct.rng)
				}
			}
		}

		// Retire completed jobs.
		remaining := active[:0]
		for _, aj := range active {
			if !aj.state.Done() {
				remaining = append(remaining, aj)
				continue
			}
			finished := aj.state.JCT()
			res := results[aj.job.ID]
			res.PlacedAt = aj.placedAt
			res.Finished = finished
			res.JCT = finished - aj.job.Arrival
			res.WaitTime = aj.placedAt - aj.job.Arrival
			releases = append(releases, release{at: finished, placement: aj.placement})
		}
		active = remaining

		if len(queue) == 0 && len(active) == 0 {
			break
		}

		// Advance the clock: to the next round if anything is running,
		// otherwise jump to the next enabling event (arrival or release).
		next := t + ct.cfg.Model.EPRAttempt
		if len(active) == 0 {
			next = math.Inf(1)
			for _, j := range queue {
				if j.Arrival > t && j.Arrival < next {
					next = j.Arrival
				}
			}
			for _, r := range releases {
				if r.at > t && r.at < next {
					next = r.at
				}
			}
			if math.IsInf(next, 1) {
				// Waiting jobs, nothing running, nothing to release:
				// capacity will never change again.
				return nil, fmt.Errorf("core: %d jobs unplaceable with all resources free", len(queue))
			}
			capacityChanged = true
		}
		t = next
	}

	// Final releases restore the cloud.
	for _, r := range releases {
		r.placement.Release(ct.cfg.Cloud)
	}

	out := make([]*JobResult, 0, len(results))
	for _, j := range jobs {
		out = append(out, results[j.ID])
	}
	return out, nil
}

// admit tries to place every waiting job that has arrived, in batch or
// FIFO order. Jobs larger than the whole cloud are marked failed.
func (ct *Controller) admit(queue []*Job, active []*activeJob, results map[int]*JobResult, t float64, totalComputing int) ([]*Job, []*activeJob, error) {
	arrived := make([]*Job, 0, len(queue))
	var waiting []*Job
	for _, j := range queue {
		if j.Arrival <= t {
			arrived = append(arrived, j)
		} else {
			waiting = append(waiting, j)
		}
	}
	if ct.cfg.Mode == BatchMode {
		for _, j := range arrived {
			if _, ok := ct.intensity[j.ID]; !ok {
				ct.intensity[j.ID] = Intensity(j.Circuit, ct.cfg.Weights)
			}
		}
		// Ascending intensity: the metric estimates a job's cost (2-qubit
		// density, width, depth), so cheapest-first minimizes mean JCT —
		// the ordering that yields the paper's CDF improvement over FIFO.
		sort.SliceStable(arrived, func(i, k int) bool {
			return ct.intensity[arrived[i].ID] < ct.intensity[arrived[k].ID]
		})
	}
	for _, j := range arrived {
		if j.Circuit.NumQubits() > totalComputing {
			results[j.ID].Failed = true
			continue
		}
		pl, err := ct.cfg.Placer.Place(ct.cfg.Cloud, j.Circuit)
		if err != nil {
			var infeasible *place.ErrInfeasible
			if errors.As(err, &infeasible) {
				waiting = append(waiting, j) // retry after a release
				continue
			}
			return nil, nil, fmt.Errorf("core: placing job %d: %w", j.ID, err)
		}
		if err := pl.Reserve(ct.cfg.Cloud); err != nil {
			waiting = append(waiting, j)
			continue
		}
		dag := sched.BuildRemoteDAG(j.Circuit, ct.cfg.Cloud, pl.QubitToQPU, ct.cfg.Model.Latency)
		state := sched.NewJobState(dag, t)
		active = append(active, &activeJob{job: j, state: state, placement: pl, placedAt: t})
		results[j.ID].RemoteGates = dag.Len()
		results[j.ID].Placement = pl
	}
	// Preserve arrival order among the still-waiting arrived jobs by
	// re-sorting the combined waiting list on (Arrival, ID).
	sort.SliceStable(waiting, func(i, k int) bool {
		if waiting[i].Arrival != waiting[k].Arrival {
			return waiting[i].Arrival < waiting[k].Arrival
		}
		return waiting[i].ID < waiting[k].ID
	})
	return waiting, active, nil
}

package core

import (
	"fmt"

	"cloudqc/internal/plan"
)

// Shard wraps one LiveController as a self-contained unit of a
// federation: its own cloud, its own RNG stream, its own plan cache —
// no state shared with any other shard except an optional
// Config.SharedWFQ clock — tagged with its federation index and
// exposing the load signals the admission router reads.
type Shard struct {
	index int
	lc    *LiveController
}

// NewShard builds shard index over its own controller configuration
// (see NewLiveController for validation and defaults).
func NewShard(index int, cfg Config) (*Shard, error) {
	lc, err := NewLiveController(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: shard %d: %w", index, err)
	}
	return &Shard{index: index, lc: lc}, nil
}

// WrapShard adopts an existing live controller as shard index — how
// the service layer lifts a single-controller configuration into a
// 1-shard federation without disturbing the controller's state.
func WrapShard(index int, lc *LiveController) *Shard {
	return &Shard{index: index, lc: lc}
}

// Index returns the shard's position in its federation.
func (s *Shard) Index() int { return s.index }

// Controller returns the wrapped live controller.
func (s *Shard) Controller() *LiveController { return s.lc }

// ShardSignals is a shard's router-facing load summary at one instant.
type ShardSignals struct {
	// Pending, Queued, and Active count unsettled jobs by lifecycle
	// stage; Depth is their sum — the backlog figure the federation's
	// spillover rule compares across shards.
	Pending, Queued, Active, Depth int
	// Utilization is the reserved fraction of the shard cloud's
	// computing qubits (matured trailing releases discounted).
	Utilization float64
	// TotalComputing is the shard cloud's computing-qubit capacity; the
	// router skips shards that can never fit a circuit.
	TotalComputing int
	// PlanCache is the shard's compile-cache counters — affinity
	// routing's payoff is visible as this hit rate.
	PlanCache plan.Stats
}

// Signals reports the shard's current load signals.
func (s *Shard) Signals() ShardSignals {
	snap := s.lc.Snapshot()
	return ShardSignals{
		Pending:        snap.Pending,
		Queued:         snap.Queued,
		Active:         snap.Active,
		Depth:          snap.Pending + snap.Queued + snap.Active,
		Utilization:    snap.Utilization,
		TotalComputing: s.lc.TotalComputing(),
		PlanCache:      s.lc.PlanCacheStats(),
	}
}

package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
)

func testCloud() *cloud.Cloud {
	return cloud.NewRandom(20, 0.3, 20, 5, 1)
}

func controller(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Cloud == nil {
		cfg.Cloud = testCloud()
	}
	ct, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestIntensityMetric(t *testing.T) {
	c := qlib.GHZ(10) // 9 CX, depth 11 with measures, 10 qubits
	got := Intensity(c, BatchWeights{L1: 1, L2: 1, L3: 1})
	want := 9.0/10 + 10 + 11
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Intensity = %v, want %v", got, want)
	}
	// λ weights scale the terms independently.
	if Intensity(c, BatchWeights{L2: 1}) != 10 {
		t.Fatal("L2-only intensity should equal qubit count")
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("nil cloud should error")
	}
	bad := Config{Cloud: testCloud(), Model: epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 2}}
	if _, err := NewController(bad); err == nil {
		t.Fatal("invalid model should error")
	}
	noComm := Config{Cloud: cloud.New(graph.Path(2), 20, 0)}
	if _, err := NewController(noComm); err == nil {
		t.Fatal("zero-comm cloud should error")
	}
}

func TestRunSingleSmallJob(t *testing.T) {
	ct := controller(t, Config{Seed: 1})
	jobs := []*Job{{ID: 1, Circuit: qlib.GHZ(10)}}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Failed {
		t.Fatalf("results = %+v", res[0])
	}
	if res[0].RemoteGates != 0 {
		t.Fatalf("10-qubit GHZ should be local, got %d remote gates", res[0].RemoteGates)
	}
	if res[0].JCT <= 0 {
		t.Fatalf("JCT = %v", res[0].JCT)
	}
	// Cloud restored.
	if ct.cfg.Cloud.Utilization() != 0 {
		t.Fatal("cloud not restored after run")
	}
}

func TestRunDistributedJob(t *testing.T) {
	ct := controller(t, Config{Seed: 2})
	jobs := []*Job{{ID: 7, Circuit: qlib.GHZ(127)}}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Failed || r.RemoteGates == 0 {
		t.Fatalf("expected distributed execution: %+v", r)
	}
	if r.JCT <= 0 || r.Finished < r.PlacedAt {
		t.Fatalf("inconsistent times: %+v", r)
	}
}

func TestRunMultipleJobsAllComplete(t *testing.T) {
	ct := controller(t, Config{Seed: 3})
	var jobs []*Job
	for i, name := range []string{"ghz_n127", "knn_n67", "ising_n66", "qugan_n71"} {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild(name)})
	}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed", r.Job.ID)
		}
		if r.JCT <= 0 {
			t.Fatalf("job %d JCT = %v", r.Job.ID, r.JCT)
		}
	}
	if ct.cfg.Cloud.Utilization() != 0 {
		t.Fatal("cloud not restored")
	}
}

func TestRunQueueingWhenOversubscribed(t *testing.T) {
	// 6 x 127-qubit jobs on a 400-qubit cloud force queueing: at most 3
	// can run at once, so at least one job must wait.
	ct := controller(t, Config{Seed: 4})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.GHZ(127)})
	}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	waited := 0
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed", r.Job.ID)
		}
		if r.WaitTime > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Fatal("oversubscription should force at least one job to wait")
	}
}

func TestRunJobLargerThanCloudFails(t *testing.T) {
	small := cloud.New(graph.Path(3), 10, 5) // 30 qubits total
	ct := controller(t, Config{Cloud: small, Seed: 5})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.GHZ(127)},
		{ID: 1, Circuit: qlib.GHZ(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Failed {
		t.Fatal("127-qubit job on 30-qubit cloud must fail")
	}
	if res[1].Failed {
		t.Fatal("small job should still complete")
	}
}

func TestRunDuplicateIDRejected(t *testing.T) {
	ct := controller(t, Config{Seed: 6})
	_, err := ct.Run([]*Job{
		{ID: 1, Circuit: qlib.GHZ(5)},
		{ID: 1, Circuit: qlib.GHZ(6)},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate ID error", err)
	}
}

func TestRunNilCircuitRejected(t *testing.T) {
	ct := controller(t, Config{Seed: 6})
	if _, err := ct.Run([]*Job{{ID: 1}}); err == nil {
		t.Fatal("nil circuit should error")
	}
}

func TestBatchModeOrdersByIntensity(t *testing.T) {
	// Two jobs, cloud only fits one at a time. Batch mode runs the
	// cheaper job (lower intensity) first even though it was submitted
	// second — shortest-estimated-job-first.
	small := cloud.New(graph.Path(2), 20, 5) // 40 qubits total
	light := qlib.GHZ(30)
	heavy := qlib.MustBuild("ising_n34")
	if Intensity(heavy, DefaultBatchWeights()) <= Intensity(light, DefaultBatchWeights()) {
		t.Skip("fixture assumption broken")
	}
	ct := controller(t, Config{Cloud: small, Mode: BatchMode, Seed: 7})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: heavy},
		{ID: 1, Circuit: light},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].PlacedAt > res[0].PlacedAt {
		t.Fatalf("light job placed at %v after heavy at %v", res[1].PlacedAt, res[0].PlacedAt)
	}
}

func TestFIFOModePreservesOrder(t *testing.T) {
	// Heavy submitted first: FIFO must keep it first even though batch
	// mode would reorder (light has lower intensity).
	small := cloud.New(graph.Path(2), 20, 5)
	light := qlib.GHZ(30)
	heavy := qlib.MustBuild("ising_n34")
	ct := controller(t, Config{Cloud: small, Mode: FIFOMode, Seed: 8})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: heavy},
		{ID: 1, Circuit: light},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].PlacedAt > res[1].PlacedAt {
		t.Fatalf("FIFO violated: job 0 placed at %v, job 1 at %v", res[0].PlacedAt, res[1].PlacedAt)
	}
}

func TestArrivalsRespected(t *testing.T) {
	ct := controller(t, Config{Seed: 9})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.GHZ(10), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(10), Arrival: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].PlacedAt < 500 {
		t.Fatalf("job placed at %v before its arrival 500", res[1].PlacedAt)
	}
	if res[1].JCT >= res[1].Finished {
		t.Fatal("JCT must be measured from arrival, not zero")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Seed: 11})
		var jobs []*Job
		for i, name := range []string{"ghz_n127", "knn_n67"} {
			jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild(name)})
		}
		res, err := ct.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var jcts []float64
		for _, r := range res {
			jcts = append(jcts, r.JCT)
		}
		return jcts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic JCTs: %v vs %v", a, b)
		}
	}
}

func TestCrossTenantContentionSlowsJobs(t *testing.T) {
	// The same distributed job, alone vs alongside a competitor sharing
	// the cloud: contention for communication qubits must not make it
	// faster, and usually slows it.
	mkJobs := func(n int) []*Job {
		var jobs []*Job
		for i := 0; i < n; i++ {
			jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild("knn_n67")})
		}
		return jobs
	}
	avgJCT := func(n int) float64 {
		total := 0.0
		const reps = 5
		for s := int64(0); s < reps; s++ {
			ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Seed: s})
			res, err := ct.Run(mkJobs(n))
			if err != nil {
				t.Fatal(err)
			}
			total += res[0].JCT
		}
		return total / reps
	}
	alone, contended := avgJCT(1), avgJCT(3)
	if contended < alone*0.95 {
		t.Fatalf("contended JCT %v unexpectedly beat solo %v", contended, alone)
	}
}

func TestSchedulerPolicyPluggable(t *testing.T) {
	for _, p := range []sched.Policy{sched.GreedyPolicy{}, sched.AveragePolicy{}, sched.RandomPolicy{}} {
		ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Policy: p, Seed: 13})
		res, err := ct.Run([]*Job{{ID: 0, Circuit: qlib.MustBuild("knn_n67")}})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res[0].Failed || res[0].JCT <= 0 {
			t.Fatalf("%s: bad result %+v", p.Name(), res[0])
		}
	}
}

func TestRecorderCapturesUtilization(t *testing.T) {
	rec := metrics.NewRecorder(0)
	ct := controller(t, Config{Seed: 15, Recorder: rec})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.GHZ(127)})
	}
	if _, err := ct.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("recorder captured nothing")
	}
	if rec.PeakUtilization() <= 0 {
		t.Fatal("peak utilization should be positive with running jobs")
	}
	if rec.PeakUtilization() > 1 {
		t.Fatalf("utilization above 1: %v", rec.PeakUtilization())
	}
}

// equivConfig builds a fresh controller for the equivalence tests: the
// two runs under comparison must not share a controller (RNG state), a
// placer (internal search state), or a cloud (reservations).
func equivConfig(t *testing.T, seed int64, mode Mode, qpus int) *Controller {
	t.Helper()
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	ct, err := NewController(Config{
		Cloud:  cloud.NewRandom(qpus, 0.3, 20, 5, 1),
		Placer: place.NewCloudQC(pCfg),
		Mode:   mode,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestRunMatchesLockStep is the seeded equivalence guarantee: on batch
// workloads (all arrivals at 0) the event-driven Run must reproduce the
// lock-step reference's JobResults bit-identically — same RNG draws at
// the same round times, just without simulating the empty rounds.
func TestRunMatchesLockStep(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		qpus  int
		batch func(seed int64) ([]*Job, error)
	}{
		{"qugan-batch", BatchMode, 20, func(seed int64) ([]*Job, error) {
			return buildJobs([]string{"qugan_n39", "qugan_n71", "qugan_n111", "qugan_n39", "qugan_n71"})
		}},
		{"mixed-fifo", FIFOMode, 20, func(seed int64) ([]*Job, error) {
			return buildJobs([]string{"knn_n67", "qft_n63", "ghz_n127", "ising_n66"})
		}},
		{"oversubscribed", BatchMode, 8, func(seed int64) ([]*Job, error) {
			// 5 x 127-qubit jobs on a 160-qubit cloud force queueing and
			// release-driven placement retries.
			return buildJobs([]string{"ghz_n127", "ghz_n127", "ghz_n127", "ghz_n127", "ghz_n127"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				jobsA, err := tc.batch(seed)
				if err != nil {
					t.Fatal(err)
				}
				jobsB, err := tc.batch(seed)
				if err != nil {
					t.Fatal(err)
				}
				ref := equivConfig(t, seed, tc.mode, tc.qpus)
				want, err := ref.RunLockStep(jobsA)
				if err != nil {
					t.Fatal(err)
				}
				ev := equivConfig(t, seed, tc.mode, tc.qpus)
				got, err := ev.Run(jobsB)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("result count %d vs %d", len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("seed %d job %d diverged:\nlock-step %+v\nevent     %+v",
							seed, w.Job.ID, *w, *g)
					}
				}
				if ev.LastRunStats().Rounds > ref.LastRunStats().Rounds {
					t.Fatalf("event-driven run used more rounds (%d) than lock-step (%d)",
						ev.LastRunStats().Rounds, ref.LastRunStats().Rounds)
				}
			}
		})
	}
}

func buildJobs(names []string) ([]*Job, error) {
	var jobs []*Job
	for i, name := range names {
		c, err := qlib.Build(name)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, &Job{ID: i, Circuit: c})
	}
	return jobs, nil
}

// TestRunSkipsStalledRounds checks the headline fix: when active jobs
// wait on long local tails, the event-driven clock jumps instead of
// spinning one round per EPRAttempt slot.
func TestRunSkipsStalledRounds(t *testing.T) {
	jobs := func() []*Job {
		js, err := buildJobs([]string{"multiplier_n45", "adder_n64"})
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	ref := equivConfig(t, 3, BatchMode, 20)
	if _, err := ref.RunLockStep(jobs()); err != nil {
		t.Fatal(err)
	}
	ev := equivConfig(t, 3, BatchMode, 20)
	if _, err := ev.Run(jobs()); err != nil {
		t.Fatal(err)
	}
	lock, event := ref.LastRunStats().Rounds, ev.LastRunStats().Rounds
	if event >= lock {
		t.Fatalf("event-driven rounds %d not fewer than lock-step %d", event, lock)
	}
	t.Logf("rounds: lock-step %d, event-driven %d (%.1fx fewer)",
		lock, event, float64(lock)/float64(event))
}

// TestQueuedCountsOnlyArrived is the Recorder regression test: a job
// whose arrival is far in the future must not inflate the Queued sample
// while the cloud sits idle or runs earlier jobs.
func TestQueuedCountsOnlyArrived(t *testing.T) {
	rec := metrics.NewRecorder(0)
	ct := controller(t, Config{Seed: 21, Recorder: rec})
	const lateArrival = 1e6
	_, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.MustBuild("knn_n67"), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(10), Arrival: lateArrival},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, s := range rec.Samples() {
		if s.Time < lateArrival && s.Queued != 0 {
			t.Fatalf("sample at %v reports Queued=%d before the job arrived", s.Time, s.Queued)
		}
	}
}

// TestRunFlushesClosingSample: thinned recorders must still capture the
// end-of-run state.
func TestRunFlushesClosingSample(t *testing.T) {
	rec := metrics.NewRecorder(1e9) // thinning window wider than any run
	ct := controller(t, Config{Seed: 22, Recorder: rec})
	res, err := ct.Run([]*Job{{ID: 0, Circuit: qlib.MustBuild("knn_n67")}})
	if err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d, want opening + closing", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Time < res[0].Finished {
		t.Fatalf("closing sample at %v predates job finish %v", last.Time, res[0].Finished)
	}
	if last.Utilization != 0 {
		t.Fatalf("closing utilization = %v, want 0 after all releases", last.Utilization)
	}
}

func TestModelDefaultsOnlyWhenFullyZero(t *testing.T) {
	// Fully zero model: paper defaults apply.
	ct := controller(t, Config{Seed: 23})
	if ct.cfg.Model != epr.DefaultModel() {
		t.Fatalf("zero model not defaulted: %+v", ct.cfg.Model)
	}
	// Partial model (latencies set, EPRAttempt forgotten): the caller's
	// fields must not be silently replaced — this is an error.
	partial := epr.Model{SuccessProb: 0.5}
	if _, err := NewController(Config{Cloud: testCloud(), Model: partial}); err == nil {
		t.Fatal("partial model should error, not be overwritten")
	}
}

func TestEmptyRegisterJobRejected(t *testing.T) {
	ct := controller(t, Config{Seed: 24})
	// circuit.New rejects 0 qubits, but a zero-value Circuit slips past
	// it and used to reach Intensity, whose division by zero produced a
	// NaN that silently corrupted the batch sort.
	empty := &circuit.Circuit{Name: "empty"}
	_, err := ct.Run([]*Job{{ID: 0, Circuit: empty}})
	if err == nil || !strings.Contains(err.Error(), "empty register") {
		t.Fatalf("err = %v, want empty-register rejection", err)
	}
	if _, err := ct.RunLockStep([]*Job{{ID: 0, Circuit: empty}}); err == nil {
		t.Fatal("lock-step reference must reject empty registers too")
	}
}

// TestOnlineArrivalAdmittedOnIdleCapacity: the lock-step loop only
// re-ran admission after a release, so a job arriving while the cloud
// had free capacity (but other jobs were running) waited for an
// unrelated completion. The event-driven core admits it on arrival.
func TestOnlineArrivalAdmittedOnArrival(t *testing.T) {
	ct := controller(t, Config{Seed: 25})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.MustBuild("knn_n67"), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(10), Arrival: 55}, // fits alongside job 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Finished <= 55 {
		t.Skip("fixture assumption broken: job 0 finished before job 1 arrived")
	}
	if res[1].WaitTime != 0 {
		t.Fatalf("job 1 waited %v despite free capacity at arrival", res[1].WaitTime)
	}
	if res[1].PlacedAt != 55 {
		t.Fatalf("job 1 placed at %v, want its arrival instant 55", res[1].PlacedAt)
	}
}

// TestSparseStreamUtilizationMatchesLockStep: on a sparse online stream
// the event-driven core must wake at release times even with nothing
// queued, and must record the idle span before the first arrival —
// otherwise sample-and-hold holds stale utilization across idle gaps
// and MeanUtilization is grossly overstated vs the lock-step reference.
func TestSparseStreamUtilizationMatchesLockStep(t *testing.T) {
	mkJobs := func() []*Job {
		c := qlib.MustBuild("knn_n67")
		return []*Job{
			{ID: 0, Circuit: c, Arrival: 1000},
			{ID: 1, Circuit: c, Arrival: 200000},
		}
	}
	recRef := metrics.NewRecorder(0)
	ref := equivConfig(t, 5, BatchMode, 20)
	ref.cfg.Recorder = recRef
	if _, err := ref.RunLockStep(mkJobs()); err != nil {
		t.Fatal(err)
	}
	recEv := metrics.NewRecorder(0)
	ev := equivConfig(t, 5, BatchMode, 20)
	ev.cfg.Recorder = recEv
	if _, err := ev.Run(mkJobs()); err != nil {
		t.Fatal(err)
	}
	a, b := recRef.MeanUtilization(), recEv.MeanUtilization()
	if math.Abs(a-b) > 0.02 {
		t.Fatalf("mean utilization diverged: lock-step %v, event-driven %v", a, b)
	}
	// The idle prefix [0, 1000) must be part of the recorded horizon.
	if first := recEv.Samples()[0]; first.Time != 0 || first.Utilization != 0 {
		t.Fatalf("first sample = %+v, want idle opening sample at t=0", first)
	}
}

// failingPlacer places its first job normally, then errors hard.
type failingPlacer struct {
	inner place.Placer
	calls int
}

func (p *failingPlacer) Name() string { return "failing" }

func (p *failingPlacer) Place(cl *cloud.Cloud, c *circuit.Circuit) (*place.Placement, error) {
	p.calls++
	if p.calls > 1 {
		return nil, errors.New("placer exploded")
	}
	return p.inner.Place(cl, c)
}

// TestRunErrorReleasesReservations: a failed run must not leak computing
// qubit reservations on the shared cloud.
func TestRunErrorReleasesReservations(t *testing.T) {
	for name, run := range map[string]func(*Controller, []*Job) ([]*JobResult, error){
		"event":    (*Controller).Run,
		"lockstep": (*Controller).RunLockStep,
	} {
		t.Run(name, func(t *testing.T) {
			cl := testCloud()
			ct, err := NewController(Config{
				Cloud:  cl,
				Placer: &failingPlacer{inner: place.NewCloudQC(place.DefaultConfig())},
				Seed:   27,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = run(ct, []*Job{
				{ID: 0, Circuit: qlib.GHZ(127)},
				{ID: 1, Circuit: qlib.GHZ(127)},
			})
			if err == nil {
				t.Fatal("second placement should have errored")
			}
			if cl.Utilization() != 0 {
				t.Fatalf("%s leaked reservations: utilization %v after failed run", name, cl.Utilization())
			}
		})
	}
}

func TestRunUnplaceableWaitingJobsError(t *testing.T) {
	// A job that fits the cloud's total capacity but can never be placed
	// (per-QPU fragmentation) must surface the lock-step loop's
	// "unplaceable with all resources free" error, not hang.
	small := cloud.New(graph.Path(3), 10, 5)
	ct := controller(t, Config{Cloud: small, Seed: 26})
	big := qlib.GHZ(28) // 28 <= 30 total, but placement may still fail repeatedly
	res, err := ct.Run([]*Job{{ID: 0, Circuit: big}})
	if err != nil {
		if !strings.Contains(err.Error(), "unplaceable") {
			t.Fatalf("err = %v, want unplaceable error", err)
		}
		return
	}
	// Placement succeeded on this topology: fine — the error path is
	// covered by the infeasible case below.
	if res[0].Failed {
		t.Fatal("job within total capacity should not be marked failed")
	}
}

func TestLocalJobJCTMatchesCriticalPath(t *testing.T) {
	ct := controller(t, Config{Seed: 14})
	c := circuit.New("tiny", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.M(1))
	res, err := ct.Run([]*Job{{ID: 0, Circuit: c}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].JCT-6.1) > 1e-9 {
		t.Fatalf("JCT = %v, want 6.1 (0.1 + 1 + 5)", res[0].JCT)
	}
}

package core

import (
	"math"
	"strings"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
)

func testCloud() *cloud.Cloud {
	return cloud.NewRandom(20, 0.3, 20, 5, 1)
}

func controller(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.Cloud == nil {
		cfg.Cloud = testCloud()
	}
	ct, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestIntensityMetric(t *testing.T) {
	c := qlib.GHZ(10) // 9 CX, depth 11 with measures, 10 qubits
	got := Intensity(c, BatchWeights{L1: 1, L2: 1, L3: 1})
	want := 9.0/10 + 10 + 11
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Intensity = %v, want %v", got, want)
	}
	// λ weights scale the terms independently.
	if Intensity(c, BatchWeights{L2: 1}) != 10 {
		t.Fatal("L2-only intensity should equal qubit count")
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("nil cloud should error")
	}
	bad := Config{Cloud: testCloud(), Model: epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 2}}
	if _, err := NewController(bad); err == nil {
		t.Fatal("invalid model should error")
	}
	noComm := Config{Cloud: cloud.New(graph.Path(2), 20, 0)}
	if _, err := NewController(noComm); err == nil {
		t.Fatal("zero-comm cloud should error")
	}
}

func TestRunSingleSmallJob(t *testing.T) {
	ct := controller(t, Config{Seed: 1})
	jobs := []*Job{{ID: 1, Circuit: qlib.GHZ(10)}}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Failed {
		t.Fatalf("results = %+v", res[0])
	}
	if res[0].RemoteGates != 0 {
		t.Fatalf("10-qubit GHZ should be local, got %d remote gates", res[0].RemoteGates)
	}
	if res[0].JCT <= 0 {
		t.Fatalf("JCT = %v", res[0].JCT)
	}
	// Cloud restored.
	if ct.cfg.Cloud.Utilization() != 0 {
		t.Fatal("cloud not restored after run")
	}
}

func TestRunDistributedJob(t *testing.T) {
	ct := controller(t, Config{Seed: 2})
	jobs := []*Job{{ID: 7, Circuit: qlib.GHZ(127)}}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Failed || r.RemoteGates == 0 {
		t.Fatalf("expected distributed execution: %+v", r)
	}
	if r.JCT <= 0 || r.Finished < r.PlacedAt {
		t.Fatalf("inconsistent times: %+v", r)
	}
}

func TestRunMultipleJobsAllComplete(t *testing.T) {
	ct := controller(t, Config{Seed: 3})
	var jobs []*Job
	for i, name := range []string{"ghz_n127", "knn_n67", "ising_n66", "qugan_n71"} {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild(name)})
	}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed", r.Job.ID)
		}
		if r.JCT <= 0 {
			t.Fatalf("job %d JCT = %v", r.Job.ID, r.JCT)
		}
	}
	if ct.cfg.Cloud.Utilization() != 0 {
		t.Fatal("cloud not restored")
	}
}

func TestRunQueueingWhenOversubscribed(t *testing.T) {
	// 6 x 127-qubit jobs on a 400-qubit cloud force queueing: at most 3
	// can run at once, so at least one job must wait.
	ct := controller(t, Config{Seed: 4})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.GHZ(127)})
	}
	res, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	waited := 0
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed", r.Job.ID)
		}
		if r.WaitTime > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Fatal("oversubscription should force at least one job to wait")
	}
}

func TestRunJobLargerThanCloudFails(t *testing.T) {
	small := cloud.New(graph.Path(3), 10, 5) // 30 qubits total
	ct := controller(t, Config{Cloud: small, Seed: 5})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.GHZ(127)},
		{ID: 1, Circuit: qlib.GHZ(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Failed {
		t.Fatal("127-qubit job on 30-qubit cloud must fail")
	}
	if res[1].Failed {
		t.Fatal("small job should still complete")
	}
}

func TestRunDuplicateIDRejected(t *testing.T) {
	ct := controller(t, Config{Seed: 6})
	_, err := ct.Run([]*Job{
		{ID: 1, Circuit: qlib.GHZ(5)},
		{ID: 1, Circuit: qlib.GHZ(6)},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate ID error", err)
	}
}

func TestRunNilCircuitRejected(t *testing.T) {
	ct := controller(t, Config{Seed: 6})
	if _, err := ct.Run([]*Job{{ID: 1}}); err == nil {
		t.Fatal("nil circuit should error")
	}
}

func TestBatchModeOrdersByIntensity(t *testing.T) {
	// Two jobs, cloud only fits one at a time. Batch mode runs the
	// cheaper job (lower intensity) first even though it was submitted
	// second — shortest-estimated-job-first.
	small := cloud.New(graph.Path(2), 20, 5) // 40 qubits total
	light := qlib.GHZ(30)
	heavy := qlib.MustBuild("ising_n34")
	if Intensity(heavy, DefaultBatchWeights()) <= Intensity(light, DefaultBatchWeights()) {
		t.Skip("fixture assumption broken")
	}
	ct := controller(t, Config{Cloud: small, Mode: BatchMode, Seed: 7})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: heavy},
		{ID: 1, Circuit: light},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].PlacedAt > res[0].PlacedAt {
		t.Fatalf("light job placed at %v after heavy at %v", res[1].PlacedAt, res[0].PlacedAt)
	}
}

func TestFIFOModePreservesOrder(t *testing.T) {
	// Heavy submitted first: FIFO must keep it first even though batch
	// mode would reorder (light has lower intensity).
	small := cloud.New(graph.Path(2), 20, 5)
	light := qlib.GHZ(30)
	heavy := qlib.MustBuild("ising_n34")
	ct := controller(t, Config{Cloud: small, Mode: FIFOMode, Seed: 8})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: heavy},
		{ID: 1, Circuit: light},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].PlacedAt > res[1].PlacedAt {
		t.Fatalf("FIFO violated: job 0 placed at %v, job 1 at %v", res[0].PlacedAt, res[1].PlacedAt)
	}
}

func TestArrivalsRespected(t *testing.T) {
	ct := controller(t, Config{Seed: 9})
	res, err := ct.Run([]*Job{
		{ID: 0, Circuit: qlib.GHZ(10), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(10), Arrival: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].PlacedAt < 500 {
		t.Fatalf("job placed at %v before its arrival 500", res[1].PlacedAt)
	}
	if res[1].JCT >= res[1].Finished {
		t.Fatal("JCT must be measured from arrival, not zero")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []float64 {
		ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Seed: 11})
		var jobs []*Job
		for i, name := range []string{"ghz_n127", "knn_n67"} {
			jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild(name)})
		}
		res, err := ct.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var jcts []float64
		for _, r := range res {
			jcts = append(jcts, r.JCT)
		}
		return jcts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic JCTs: %v vs %v", a, b)
		}
	}
}

func TestCrossTenantContentionSlowsJobs(t *testing.T) {
	// The same distributed job, alone vs alongside a competitor sharing
	// the cloud: contention for communication qubits must not make it
	// faster, and usually slows it.
	mkJobs := func(n int) []*Job {
		var jobs []*Job
		for i := 0; i < n; i++ {
			jobs = append(jobs, &Job{ID: i, Circuit: qlib.MustBuild("knn_n67")})
		}
		return jobs
	}
	avgJCT := func(n int) float64 {
		total := 0.0
		const reps = 5
		for s := int64(0); s < reps; s++ {
			ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Seed: s})
			res, err := ct.Run(mkJobs(n))
			if err != nil {
				t.Fatal(err)
			}
			total += res[0].JCT
		}
		return total / reps
	}
	alone, contended := avgJCT(1), avgJCT(3)
	if contended < alone*0.95 {
		t.Fatalf("contended JCT %v unexpectedly beat solo %v", contended, alone)
	}
}

func TestSchedulerPolicyPluggable(t *testing.T) {
	for _, p := range []sched.Policy{sched.GreedyPolicy{}, sched.AveragePolicy{}, sched.RandomPolicy{}} {
		ct := controller(t, Config{Cloud: cloud.NewRandom(20, 0.3, 20, 5, 1), Policy: p, Seed: 13})
		res, err := ct.Run([]*Job{{ID: 0, Circuit: qlib.MustBuild("knn_n67")}})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res[0].Failed || res[0].JCT <= 0 {
			t.Fatalf("%s: bad result %+v", p.Name(), res[0])
		}
	}
}

func TestRecorderCapturesUtilization(t *testing.T) {
	rec := metrics.NewRecorder(0)
	ct := controller(t, Config{Seed: 15, Recorder: rec})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, &Job{ID: i, Circuit: qlib.GHZ(127)})
	}
	if _, err := ct.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("recorder captured nothing")
	}
	if rec.PeakUtilization() <= 0 {
		t.Fatal("peak utilization should be positive with running jobs")
	}
	if rec.PeakUtilization() > 1 {
		t.Fatalf("utilization above 1: %v", rec.PeakUtilization())
	}
}

func TestLocalJobJCTMatchesCriticalPath(t *testing.T) {
	ct := controller(t, Config{Seed: 14})
	c := circuit.New("tiny", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.M(1))
	res, err := ct.Run([]*Job{{ID: 0, Circuit: c}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].JCT-6.1) > 1e-9 {
		t.Fatalf("JCT = %v, want 6.1 (0.1 + 1 + 5)", res[0].JCT)
	}
}

// Preemption tests live in an external test package: the off-path
// differential drives a 1-shard Federation, and internal/fed imports
// core, so an in-package test would cycle. Everything under test is
// exported API.
package core_test

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
)

// preemptCloud is the functional tests' cluster: 8 QPUs x 20 computing
// qubits cannot co-run two 127-qubit jobs, so a second GHZ-127 must
// either wait for run-to-completion or preempt.
func preemptCloud() *cloud.Cloud { return cloud.NewRandom(8, 0.3, 20, 5, 1) }

func preemptConfig(policy core.PreemptPolicy, mode core.Mode) core.Config {
	pCfg := place.DefaultConfig()
	pCfg.Seed = 7
	return core.Config{
		Cloud:   preemptCloud(),
		Placer:  place.NewCloudQC(pCfg),
		Mode:    mode,
		Seed:    7,
		Preempt: policy,
	}
}

// preemptStream mirrors live_test.go's liveStream for the external test
// package: a deterministic 8-job qlib stream, batch or Poisson, with
// tenants, weights, and depth-scaled deadlines.
func preemptStream(t *testing.T, poisson bool, seed int64) []*core.Job {
	t.Helper()
	names := []string{"qugan_n39", "qft_n29", "ghz_n127", "qugan_n71", "ising_n66", "qft_n63", "cat_n65", "qft_n29"}
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	jobs := make([]*core.Job, 0, len(names))
	for i, name := range names {
		c := mustBuild(t, name)
		jobs = append(jobs, &core.Job{
			ID: i, Circuit: c, Arrival: arrival,
			Tenant:   i % 3,
			Priority: 1 << (i % 3),
			Deadline: arrival + float64(c.Depth())*(20+rng.Float64()*60),
		})
		if poisson {
			arrival += rng.ExpFloat64() * 1500
		}
	}
	return jobs
}

// preemptEquivConfig mirrors live_test.go's liveEquivConfig: the
// differential cloud plus an unthinned recorder.
func preemptEquivConfig(seed int64, mode core.Mode) (core.Config, *metrics.Recorder) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	rec := metrics.NewRecorder(0)
	return core.Config{
		Cloud:    cloud.NewRandom(10, 0.3, 20, 5, 1),
		Placer:   place.NewCloudQC(pCfg),
		Mode:     mode,
		Seed:     seed,
		Recorder: rec,
	}, rec
}

func mustBuild(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	c, err := qlib.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParsePreempt(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want core.PreemptPolicy
	}{
		{"", core.PreemptOff},
		{"off", core.PreemptOff},
		{"rescue", core.PreemptRescue},
		{"priority", core.PreemptPriority},
	} {
		got, err := core.ParsePreempt(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePreempt(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := core.ParsePreempt("bogus"); err == nil {
		t.Fatal("ParsePreempt(bogus) succeeded")
	}
	if _, err := core.NewController(core.Config{Cloud: preemptCloud(), Preempt: core.PreemptPolicy(9)}); err == nil {
		t.Fatal("NewController accepted an out-of-range preemption policy")
	}
}

// TestPreemptRescueFunctional drives the whole lifecycle: a long job
// owns the cloud, a deadline-carrying job arrives, rescue preempts the
// incumbent at a round boundary, the trigger runs, and the victim
// resumes from its checkpoint under its original identity.
func TestPreemptRescueFunctional(t *testing.T) {
	ct, err := core.NewController(preemptConfig(core.PreemptRescue, core.EDFMode))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*core.Job{
		{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(127), Arrival: 10, Deadline: 1e9},
	}
	results, err := ct.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ps := ct.PreemptStats()
	if ps.Preemptions == 0 {
		t.Fatalf("rescue never fired: %+v", ps)
	}
	if ps.Resumes != ps.Preemptions {
		t.Fatalf("every preempted job must resume by drain: %+v", ps)
	}
	if ps.RescuedDeadlines != 1 {
		t.Fatalf("rescued deadlines = %d, want 1 (%+v)", ps.RescuedDeadlines, ps)
	}
	for _, r := range results {
		if r.Failed {
			t.Fatalf("job %d failed: %+v", r.Job.ID, *r)
		}
	}
	r0, r1 := results[0], results[1]
	if r0.Job.ID != 0 || r1.Job.ID != 1 {
		t.Fatalf("ids across preemption: got %d, %d", r0.Job.ID, r1.Job.ID)
	}
	// The victim yielded: the deadline job overtakes it.
	if r1.Finished >= r0.Finished {
		t.Fatalf("trigger finished at %v, after its victim's %v", r1.Finished, r0.Finished)
	}
	if r1.Finished > jobs[1].Deadline {
		t.Fatalf("trigger missed the deadline it preempted for: %v > %v", r1.Finished, jobs[1].Deadline)
	}
	// Satellite guarantee: a preempted-and-resumed job's WaitTime is its
	// admission wait only. Job 0 was placed at t=0; its later re-placement
	// must stretch JCT, not wait.
	if r0.PlacedAt != 0 || r0.WaitTime != 0 {
		t.Fatalf("victim PlacedAt=%v WaitTime=%v, want 0/0 (admission wait only)", r0.PlacedAt, r0.WaitTime)
	}
	if r0.JCT != r0.Finished {
		t.Fatalf("victim JCT %v != Finished %v with arrival 0", r0.JCT, r0.Finished)
	}
}

// TestPreemptPriorityFunctional: under the priority policy a
// heavyweight tenant displaces a lightweight one with no deadlines in
// sight.
func TestPreemptPriorityFunctional(t *testing.T) {
	ct, err := core.NewController(preemptConfig(core.PreemptPriority, core.FIFOMode))
	if err != nil {
		t.Fatal(err)
	}
	results, err := ct.Run([]*core.Job{
		{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0, Tenant: 0, Priority: 1},
		{ID: 1, Circuit: qlib.GHZ(127), Arrival: 10, Tenant: 1, Priority: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := ct.PreemptStats()
	if ps.Preemptions == 0 || ps.Resumes != ps.Preemptions {
		t.Fatalf("priority preemption stats %+v", ps)
	}
	if ps.RescuedDeadlines != 0 {
		t.Fatalf("no deadlines in play, yet rescued = %d", ps.RescuedDeadlines)
	}
	if results[0].Failed || results[1].Failed {
		t.Fatalf("jobs failed: %+v / %+v", *results[0], *results[1])
	}
	if results[1].Finished >= results[0].Finished {
		t.Fatalf("heavy job finished at %v, after the light victim's %v",
			results[1].Finished, results[0].Finished)
	}
}

// TestResumeHitsPlanCache pins the elastic re-placement fast path: the
// preemption probe compiles the trigger at the post-release free state
// and inserts the plan, so the follow-up admission is a cache hit — and
// the victim's own resume recompiles at a free state its first
// admission already populated. The two circuits are distinct, so
// without preemption this run has zero cross-job cache traffic.
func TestResumeHitsPlanCache(t *testing.T) {
	ct, err := core.NewController(preemptConfig(core.PreemptRescue, core.EDFMode))
	if err != nil {
		t.Fatal(err)
	}
	results, err := ct.Run([]*core.Job{
		{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0},
		{ID: 1, Circuit: mustBuild(t, "qft_n63"), Arrival: 10, Deadline: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct.PreemptStats().Preemptions == 0 {
		t.Fatal("setup: rescue never fired")
	}
	for _, r := range results {
		if r.Failed {
			t.Fatalf("job %d failed", r.Job.ID)
		}
	}
	if s := ct.PlanCacheStats(); s.Hits == 0 {
		t.Fatalf("resume path missed the plan cache entirely: %+v", s)
	}
}

// TestPreemptionOffDifferential is the hard guarantee the refactor
// rides on: with preemption disabled the controller is bit-identical to
// the pre-preemption code on every observable. Run, LiveController, and
// a 1-shard Federation each replay batch and Poisson streams under
// FIFO, EDF, and WFQ; per-job results, run statistics, recorder series,
// and preemption counters must agree exactly.
func TestPreemptionOffDifferential(t *testing.T) {
	cases := []struct {
		name    string
		poisson bool
		mode    core.Mode
	}{
		{"batch-fifo", false, core.FIFOMode},
		{"batch-edf", false, core.EDFMode},
		{"batch-wfq", false, core.WFQMode},
		{"poisson-fifo", true, core.FIFOMode},
		{"poisson-edf", true, core.EDFMode},
		{"poisson-wfq", true, core.WFQMode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(1)
			// Reference: one-shot Run with the zero-value (off) policy,
			// exactly the configuration every pre-preemption caller built.
			jobsA := preemptStream(t, tc.poisson, seed)
			cfgA, recA := preemptEquivConfig(seed, tc.mode)
			ref, err := core.NewController(cfgA)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(jobsA)
			if err != nil {
				t.Fatal(err)
			}
			if ref.PreemptStats() != (core.PreemptStats{}) {
				t.Fatalf("off-policy run counted preemptions: %+v", ref.PreemptStats())
			}

			// Live controller with PreemptOff spelled explicitly.
			jobsB := preemptStream(t, tc.poisson, seed)
			cfgB, recB := preemptEquivConfig(seed, tc.mode)
			cfgB.Preempt = core.PreemptOff
			lc, err := core.NewLiveController(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobsB {
				if err := lc.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := lc.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotLive, err := lc.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if lc.PreemptStats() != (core.PreemptStats{}) {
				t.Fatalf("off-policy live controller counted preemptions: %+v", lc.PreemptStats())
			}

			// 1-shard federation with PreemptOff spelled explicitly.
			jobsC := preemptStream(t, tc.poisson, seed)
			cfgC, recC := preemptEquivConfig(seed, tc.mode)
			cfgC.Preempt = core.PreemptOff
			fedCloud := cfgC.Cloud
			cfgC.Cloud, cfgC.Recorder = nil, nil
			f, err := fed.New(fed.Config{
				Shard:     cfgC,
				Clouds:    []*cloud.Cloud{fedCloud},
				Recorders: []*metrics.Recorder{recC},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobsC {
				if err := f.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := f.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotFed, err := f.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if f.PreemptStats() != (core.PreemptStats{}) {
				t.Fatalf("off-policy federation counted preemptions: %+v", f.PreemptStats())
			}

			for name, got := range map[string][]*core.JobResult{"live": gotLive, "fed": gotFed} {
				if len(got) != len(want) {
					t.Fatalf("%s result count %d vs %d", name, len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("%s job %d diverged:\nref %+v\ngot %+v", name, w.Job.ID, *w, *g)
					}
				}
			}
			if ref.LastRunStats() != lc.RunStats() || ref.LastRunStats() != f.RunStats() {
				t.Fatalf("run stats diverged: ref %+v live %+v fed %+v",
					ref.LastRunStats(), lc.RunStats(), f.RunStats())
			}
			sa, sb, sc := recA.Samples(), recB.Samples(), recC.Samples()
			if len(sa) != len(sb) || len(sa) != len(sc) {
				t.Fatalf("recorder lengths diverged: %d / %d / %d", len(sa), len(sb), len(sc))
			}
			for i := range sa {
				if sa[i] != sb[i] || sa[i] != sc[i] {
					t.Fatalf("sample %d diverged: ref %+v live %+v fed %+v", i, sa[i], sb[i], sc[i])
				}
			}
		})
	}
}

package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
)

// liveStream builds a deterministic job stream for the differential
// tests: batch (all arrivals 0) or Poisson arrivals, optionally with
// tenants, weights, and depth-scaled deadlines. Streams are rebuilt
// per run so the reference and live controllers never share Job
// pointers.
func liveStream(t *testing.T, poisson, tenants bool, seed int64) []*Job {
	t.Helper()
	names := []string{"qugan_n39", "qft_n29", "ghz_n127", "qugan_n71", "ising_n66", "qft_n63", "cat_n65", "qft_n29"}
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	jobs := make([]*Job, 0, len(names))
	for i, name := range names {
		c, err := qlib.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{ID: i, Circuit: c, Arrival: arrival}
		if tenants {
			j.Tenant = i % 3
			j.Priority = 1 << (i % 3)
			j.Deadline = arrival + float64(c.Depth())*(20+rng.Float64()*60)
		}
		jobs = append(jobs, j)
		if poisson {
			arrival += rng.ExpFloat64() * 1500
		}
	}
	return jobs
}

// liveEquivConfig mirrors equivConfig with an unthinned recorder so the
// differential test can compare the full utilization series too.
func liveEquivConfig(seed int64, mode Mode) (Config, *metrics.Recorder) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	rec := metrics.NewRecorder(0)
	return Config{
		Cloud:    cloud.NewRandom(10, 0.3, 20, 5, 1),
		Placer:   place.NewCloudQC(pCfg),
		Mode:     mode,
		Seed:     seed,
		Recorder: rec,
	}, rec
}

// TestLiveControllerMatchesRun is the live subsystem's differential
// guarantee: submitting a workload's jobs at their arrival times
// through a LiveController — Submit before the clock passes each
// arrival, with arbitrary idle steps in between — reproduces the
// one-shot Run bit-identically: same per-job results, same round and
// event counts, same recorder series, same SLO aggregates.
func TestLiveControllerMatchesRun(t *testing.T) {
	cases := []struct {
		name             string
		poisson, tenants bool
		mode             Mode
	}{
		{"batch-fifo", false, false, FIFOMode},
		{"batch-wfq", false, true, WFQMode},
		{"poisson-fifo", true, false, FIFOMode},
		{"poisson-wfq", true, true, WFQMode},
		{"poisson-batchmode", true, false, BatchMode},
		{"poisson-edf", true, true, EDFMode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				jobsA := liveStream(t, tc.poisson, tc.tenants, seed)
				jobsB := liveStream(t, tc.poisson, tc.tenants, seed)

				cfgA, recA := liveEquivConfig(seed, tc.mode)
				ref, err := NewController(cfgA)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Run(jobsA)
				if err != nil {
					t.Fatal(err)
				}

				cfgB, recB := liveEquivConfig(seed, tc.mode)
				lc, err := NewLiveController(cfgB)
				if err != nil {
					t.Fatal(err)
				}
				for i, j := range jobsB {
					if i > 0 && j.Arrival > jobsB[i-1].Arrival {
						// An idle step strictly between arrivals must not
						// perturb the run.
						if err := lc.StepUntil((jobsB[i-1].Arrival + j.Arrival) / 2); err != nil {
							t.Fatal(err)
						}
					}
					if err := lc.StepUntil(j.Arrival); err != nil {
						t.Fatal(err)
					}
					if err := lc.Submit(j); err != nil {
						t.Fatal(err)
					}
				}
				got, err := lc.Drain()
				if err != nil {
					t.Fatal(err)
				}

				if len(got) != len(want) {
					t.Fatalf("result count %d vs %d", len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("seed %d job %d diverged:\none-shot %+v\nlive     %+v",
							seed, w.Job.ID, *w, *g)
					}
				}
				if ref.LastRunStats() != lc.RunStats() {
					t.Fatalf("seed %d run stats diverged: one-shot %+v, live %+v",
						seed, ref.LastRunStats(), lc.RunStats())
				}
				sa, sb := recA.Samples(), recB.Samples()
				if len(sa) != len(sb) {
					t.Fatalf("seed %d recorder length diverged: %d vs %d", seed, len(sa), len(sb))
				}
				for i := range sa {
					if sa[i] != sb[i] {
						t.Fatalf("seed %d sample %d diverged: %+v vs %+v", seed, i, sa[i], sb[i])
					}
				}
				if tc.tenants {
					sw := metrics.AggregateSLO(Outcomes(want))
					sg := metrics.AggregateSLO(Outcomes(got))
					if sw.Attainment != sg.Attainment || sw.Fairness != sg.Fairness ||
						len(sw.PerTenant) != len(sg.PerTenant) {
						t.Fatalf("seed %d SLO stats diverged:\none-shot %+v\nlive     %+v", seed, sw, sg)
					}
				}
			}
		})
	}
}

// TestLiveSubmitMidRun is what Run cannot do at all: jobs injected
// after the simulation started, while earlier jobs are still
// executing, all complete.
func TestLiveSubmitMidRun(t *testing.T) {
	cfg, _ := liveEquivConfig(3, BatchMode)
	lc, err := NewLiveController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qlib.Build("ghz_n127")
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&Job{ID: 0, Circuit: c}); err != nil {
		t.Fatal(err)
	}
	if err := lc.StepUntil(5); err != nil {
		t.Fatal(err)
	}
	if s := lc.Status(0); s != StatusRunning {
		t.Fatalf("job 0 status = %v at t=5, want running", s)
	}
	// Inject a second job mid-flight; Arrival 0 in the past clamps the
	// arrival event to now but keeps the caller's JCT stamp.
	if err := lc.Submit(&Job{ID: 1, Circuit: c, Arrival: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := lc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Failed || r.Finished <= 0 {
			t.Fatalf("job %d did not complete: %+v", r.Job.ID, *r)
		}
	}
	if res[1].PlacedAt < 5 {
		t.Fatalf("job 1 placed at %v, before its submission instant 5", res[1].PlacedAt)
	}
	if res[1].JCT != res[1].Finished-2 {
		t.Fatalf("job 1 JCT %v not charged from its Arrival stamp 2", res[1].JCT)
	}
}

// TestLiveStatusLifecycle walks one oversubscribed pair of jobs through
// pending -> queued -> running -> completed.
func TestLiveStatusLifecycle(t *testing.T) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = 5
	lc, err := NewLiveController(Config{
		// 8 QPUs x 20 computing: two 127-qubit jobs cannot run together.
		Cloud:  cloud.NewRandom(8, 0.3, 20, 5, 1),
		Placer: place.NewCloudQC(pCfg),
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := qlib.Build("ghz_n127")
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&Job{ID: 0, Circuit: c}); err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&Job{ID: 1, Circuit: c, Arrival: 10}); err != nil {
		t.Fatal(err)
	}
	if s := lc.Status(1); s != StatusPending {
		t.Fatalf("job 1 status = %v before its arrival, want pending", s)
	}
	if err := lc.StepUntil(11); err != nil {
		t.Fatal(err)
	}
	if s := lc.Status(0); s != StatusRunning {
		t.Fatalf("job 0 status = %v at t=11, want running", s)
	}
	if s := lc.Status(1); s != StatusQueued {
		t.Fatalf("job 1 status = %v at t=11, want queued", s)
	}
	snap := lc.Snapshot()
	if snap.Active != 1 || snap.Queued != 1 || snap.Pending != 0 {
		t.Fatalf("snapshot %+v, want 1 active + 1 queued", snap)
	}
	if snap.Utilization <= 0 || snap.Utilization > 1 {
		t.Fatalf("utilization %v out of range", snap.Utilization)
	}
	if _, err := lc.Drain(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id <= 1; id++ {
		if s := lc.Status(id); s != StatusCompleted {
			t.Fatalf("job %d status = %v after drain, want completed", id, s)
		}
	}
	if s := lc.Status(99); s != StatusUnknown {
		t.Fatalf("unknown job status = %v", s)
	}
}

// TestLiveUnplaceableJobFailsNotFatal: a job the placer can never fit
// fails, and the controller keeps serving later jobs — the one-shot
// Run aborts the whole batch here.
func TestLiveUnplaceableJobFailsNotFatal(t *testing.T) {
	small := cloud.New(graph.Path(3), 10, 5)
	pCfg := place.DefaultConfig()
	pCfg.Seed = 26
	lc, err := NewLiveController(Config{Cloud: small, Placer: place.NewCloudQC(pCfg), Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	big := qlib.GHZ(28) // 28 <= 30 total capacity, but per-QPU fragmentation can defeat placement
	if err := lc.Submit(&Job{ID: 0, Circuit: big}); err != nil {
		t.Fatal(err)
	}
	if err := lc.StepUntil(1e6); err != nil {
		t.Fatal(err)
	}
	st := lc.Status(0)
	if st != StatusFailed && st != StatusCompleted {
		t.Fatalf("oversized job status = %v, want failed or completed", st)
	}
	// The controller must survive either way: a small follow-up job
	// completes.
	if err := lc.Submit(&Job{ID: 1, Circuit: qlib.GHZ(4), Arrival: lc.Now()}); err != nil {
		t.Fatal(err)
	}
	res, err := lc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Failed {
		t.Fatal("follow-up job failed after unplaceable job")
	}
}

// TestLiveControllerMisuse locks down the terminal-state and
// validation errors.
func TestLiveControllerMisuse(t *testing.T) {
	cfg, _ := liveEquivConfig(1, BatchMode)
	lc, err := NewLiveController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := qlib.GHZ(4)
	if err := lc.Submit(&Job{ID: 0, Circuit: c}); err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&Job{ID: 0, Circuit: c}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate submit err = %v", err)
	}
	if err := lc.Submit(&Job{ID: 1}); err == nil || !strings.Contains(err.Error(), "no circuit") {
		t.Fatalf("nil-circuit submit err = %v", err)
	}
	if _, err := lc.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Drain(); err == nil {
		t.Fatal("second drain should error")
	}
	if err := lc.Submit(&Job{ID: 2, Circuit: c}); err == nil {
		t.Fatal("submit after drain should error")
	}
	if err := lc.StepUntil(10); err == nil {
		t.Fatal("step after drain should error")
	}
}

// TestLiveSnapshotDiscountsTrailingReleases: after the last job
// finishes, matured-but-unapplied trailing releases must not inflate
// the reported utilization.
func TestLiveSnapshotDiscountsTrailingReleases(t *testing.T) {
	cfg, _ := liveEquivConfig(2, BatchMode)
	lc, err := NewLiveController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qlib.Build("qft_n29")
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&Job{ID: 0, Circuit: c}); err != nil {
		t.Fatal(err)
	}
	if err := lc.StepUntil(1e7); err != nil {
		t.Fatal(err)
	}
	snap := lc.Snapshot()
	if snap.Completed != 1 {
		t.Fatalf("snapshot %+v, want 1 completed", snap)
	}
	if math.Abs(snap.Utilization) > 1e-12 {
		t.Fatalf("utilization %v after completion, want 0 (trailing releases discounted; %d pending)",
			snap.Utilization, snap.PendingReleases)
	}
}

package core

import (
	"fmt"

	"cloudqc/internal/fault"
	"cloudqc/internal/sched"
)

// This file is the core tier of the fault injector (internal/fault):
// QPU outages and link degradations scheduled on the run's own
// discrete-event engine, plus the recovery paths they exercise —
// checkpoint-rescue of evicted jobs (reusing the preemption resume
// machinery) and the bounded retry / route-around policy for remote
// gates crossing degraded links. Every hook sits behind a nil
// st.faults check, so a run without a FaultPlan is bit-identical to
// the pre-fault controller (TestFaultOffDifferential). Shard drains
// are the federation tier's concern (fed.Config.Faults); NewController
// rejects them.

// faultState is the live fault overlay of one run.
type faultState struct {
	plan *fault.Plan
	// down is the per-QPU outage depth (overlapping outages nest);
	// hold the computing qubits the injector has reserved on each
	// downed QPU so admission cannot place there. Trailing releases
	// maturing mid-outage are swept into hold by faultTopUp.
	down []int
	hold []int
	// scale maps a degraded edge (sorted endpoints) to its effective
	// per-attempt success probability — already validated and scaled by
	// epr.Model.DegradedProb, so 0 means a dead link and nothing is
	// ever negative. Edges absent from the map are healthy.
	scale map[[2]int]float64
	// retries counts each job's failed remote-gate rounds across
	// degraded links toward plan.Budget().
	retries map[int]int
	// base is the model's fault-free success probability; probFn the
	// per-edge probability closure handed to AttemptDegraded, bound
	// once so the round hot path does not allocate a method value.
	base   float64
	probFn func(a, b int) float64
}

// edgeKey canonicalizes an undirected edge.
func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (f *faultState) prob(a, b int) float64 {
	if p, ok := f.scale[edgeKey(a, b)]; ok {
		return p
	}
	return f.base
}

// anyDown reports whether any QPU is currently held down — in which
// case a queued job with nothing else running is waiting for the
// pending recovery event, not unplaceable.
func (f *faultState) anyDown() bool {
	for _, d := range f.down {
		if d > 0 {
			return true
		}
	}
	return false
}

// pathDegradation reports whether any edge of an entanglement path is
// degraded, and whether one is outright dead (probability 0).
func (f *faultState) pathDegradation(path []int) (degraded, dead bool) {
	for k := 0; k+1 < len(path); k++ {
		if p, ok := f.scale[edgeKey(path[k], path[k+1])]; ok {
			degraded = true
			if p == 0 {
				dead = true
			}
		}
	}
	return degraded, dead
}

// validateFaults range-checks a core-tier fault plan against the cloud
// and the EPR model at construction time, so a bad plan fails loudly
// in NewController instead of mid-run.
func validateFaults(cfg *Config) error {
	p := cfg.Faults
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	topo := cfg.Cloud.Topology()
	for i, e := range p.Events {
		switch e.Kind {
		case fault.KindShardDrain:
			return fmt.Errorf("core: fault event %d is a shard_drain — a federation-tier fault (fed.Config.Faults splits plans with ForShard)", i)
		case fault.KindQPUOutage:
			if e.QPU >= cfg.Cloud.NumQPUs() {
				return fmt.Errorf("core: fault event %d downs QPU %d, cloud has %d", i, e.QPU, cfg.Cloud.NumQPUs())
			}
		case fault.KindLinkDegrade:
			if e.U >= topo.N() || e.V >= topo.N() || !topo.HasEdge(e.U, e.V) {
				return fmt.Errorf("core: fault event %d degrades nonexistent link (%d, %d)", i, e.U, e.V)
			}
			// The satellite guarantee: validate at the same checkpoint
			// the fault layer scales through, so a degraded probability
			// can hit exactly 0 but never go negative.
			if _, err := cfg.Model.DegradedProb(e.Scale); err != nil {
				return fmt.Errorf("core: fault event %d: %w", i, err)
			}
		}
	}
	return nil
}

// faultEnsure lazily builds the run's fault overlay (live injection may
// arm it on a controller configured without a plan).
func (st *runState) faultEnsure(p *fault.Plan) *faultState {
	if st.faults == nil {
		n := st.ct.cfg.Cloud.NumQPUs()
		f := &faultState{
			plan:    p,
			down:    make([]int, n),
			hold:    make([]int, n),
			scale:   make(map[[2]int]float64),
			retries: make(map[int]int),
			base:    st.ct.cfg.Model.SuccessProb,
		}
		f.probFn = f.prob
		st.faults = f
	}
	return st.faults
}

// faultInit arms a configured fault plan: the overlay is built and
// every event's start/end lands on the engine as a priority event, so
// at a shared instant faults fire before the controller tick — an
// outage starting exactly at an arrival is seen by that arrival's
// admission. Called once, before any workload event is scheduled.
func (st *runState) faultInit() {
	p := st.ct.cfg.Faults
	if p == nil {
		return
	}
	st.faultEnsure(p)
	for _, e := range p.Events {
		st.scheduleFault(e)
	}
}

// scheduleFault lands one validated event's transitions on the engine.
func (st *runState) scheduleFault(e fault.Event) {
	guard := func(fn func()) func() {
		return func() {
			if st.err != nil || st.halted {
				return
			}
			fn()
		}
	}
	switch e.Kind {
	case fault.KindQPUOutage:
		st.eng.SchedulePriority(e.From, guard(func() { st.qpuDown(e.QPU, e.From) }))
		st.eng.SchedulePriority(e.To, guard(func() { st.qpuUp(e.QPU, e.To) }))
	case fault.KindLinkDegrade:
		st.eng.SchedulePriority(e.From, guard(func() { st.linkDegrade(e.U, e.V, e.Scale, e.From) }))
		st.eng.SchedulePriority(e.To, guard(func() { st.linkRestore(e.U, e.V) }))
	}
}

// qpuDown takes QPU q down: jobs holding computing qubits there are
// released and either checkpoint-rescued (re-enqueued for re-placement
// elsewhere, keeping id/tenant/WFQ billing exactly like preemption) or
// failed under RecoveryNone, and the QPU's free capacity is reserved
// into hold so admission cannot place onto it until qpuUp.
func (st *runState) qpuDown(q int, t float64) {
	ct := st.ct
	f := st.faults
	ct.faultStats.QPUOutages++
	f.down[q]++
	if f.down[q] > 1 {
		return // nested outage: victims already gone, capacity already held
	}
	evicted := false
	for _, aj := range st.active {
		if !placementUses(aj.placement.QubitToQPU, q) {
			continue
		}
		aj.placement.Release(ct.cfg.Cloud)
		if f.plan.Rescue() {
			ct.faultStats.RescuedOutage++
			st.rescueVictim(aj, t, fault.KindQPUOutage)
		} else {
			ct.faultStats.FailedOutage++
			st.failVictim(aj, t, fault.KindQPUOutage)
		}
		evicted = true
	}
	if evicted {
		st.compactActive()
		st.capacityChanged = true
	}
	if free := ct.cfg.Cloud.FreeComputing(q); free > 0 {
		if err := ct.cfg.Cloud.Reserve(q, free); err != nil {
			st.err = fmt.Errorf("core: holding downed QPU %d: %w", q, err)
			return
		}
		f.hold[q] += free
	}
	st.requestTick(t)
}

// qpuUp ends an outage: the held capacity returns and admission retries
// at this instant.
func (st *runState) qpuUp(q int, t float64) {
	f := st.faults
	f.down[q]--
	if f.down[q] > 0 {
		return
	}
	if f.hold[q] > 0 {
		st.ct.cfg.Cloud.Release(q, f.hold[q])
		f.hold[q] = 0
	}
	st.capacityChanged = true
	st.requestTick(t)
}

// linkDegrade scales one edge's EPR success probability for the
// interval. The effective probability goes through DegradedProb — the
// satellite validation point — so it may hit exactly 0 (a dead link)
// but never goes negative. At most one degrade is active per edge: an
// overlapping event overwrites, and the earliest end clears.
func (st *runState) linkDegrade(u, v int, scale, t float64) {
	ct := st.ct
	ct.faultStats.LinkDegrades++
	p, err := ct.cfg.Model.DegradedProb(scale)
	if err != nil {
		st.err = fmt.Errorf("core: degrading link (%d, %d) at %g: %w", u, v, t, err)
		return
	}
	st.faults.scale[edgeKey(u, v)] = p
}

func (st *runState) linkRestore(u, v int) {
	delete(st.faults.scale, edgeKey(u, v))
}

// placementUses reports whether a qubit→QPU assignment touches QPU q.
func placementUses(qubitToQPU []int, q int) bool {
	for _, p := range qubitToQPU {
		if p == q {
			return true
		}
	}
	return false
}

// compactActive drops evicted entries (state nil) from the active set.
func (st *runState) compactActive() {
	remaining := st.active[:0]
	for _, aj := range st.active {
		if aj.state != nil {
			remaining = append(remaining, aj)
		}
	}
	st.active = remaining
}

// rescueVictim checkpoints one evicted job whose reservations the
// caller already released — preemptVictim's twin on the fault path,
// with ReasonEvicted transitions and a fault span. The checkpoint
// deliberately skips the Checkpointable gate: a failure forfeits
// in-flight partial entanglement, which is physically what an outage
// does, and Checkpoint snapshots exactly the completed gates.
func (st *runState) rescueVictim(aj *activeJob, t float64, kind string) {
	ct := st.ct
	cp := aj.state.Checkpoint()
	ct.releaseJobState(aj.state)
	aj.state = nil
	id := aj.job.ID
	if aj.tr != nil {
		aj.tr.Fault(t, kind)
		aj.tr.Preempt(t)
	}
	if ct.cfg.ExportPreempted && st.live && !st.draining {
		// Federation re-routes the resume exactly like a preemption
		// export: this shard forgets the job so SubmitResume can
		// re-validate it wherever the router rehomes it.
		if st.status != nil {
			st.notify(Transition{JobID: id, From: st.status[id], To: StatusQueued, At: t, Reason: ReasonEvicted})
		}
		delete(st.results, id)
		delete(st.status, id)
		st.exported = append(st.exported, PreemptedJob{Job: aj.job, cp: cp, firstPlacedAt: aj.firstPlacedAt})
		return
	}
	if st.resume == nil {
		st.resume = make(map[int]*resumeState) // PreemptOff runs have no resume map yet
	}
	st.resume[id] = &resumeState{cp: cp, firstPlacedAt: aj.firstPlacedAt}
	st.queue = append(st.queue, aj.job)
	st.setStatusReason(id, StatusQueued, ReasonEvicted)
}

// failVictim fails one evicted job outright (RecoveryNone, or an
// exhausted retry budget). The caller already released its placement.
func (st *runState) failVictim(aj *activeJob, t float64, kind string) {
	ct := st.ct
	ct.releaseJobState(aj.state)
	aj.state = nil
	res := st.results[aj.job.ID]
	res.Failed = true
	res.PlacedAt, res.Finished, res.JCT, res.WaitTime = 0, 0, 0, 0
	res.RemoteGates = 0
	res.Placement = nil
	if aj.tr != nil {
		aj.tr.Fault(t, kind)
	}
	if tc := ct.cfg.Trace; tc != nil {
		tc.Fail(aj.job.ID, t)
	}
	st.setStatus(aj.job.ID, StatusFailed)
}

// faultTopUp sweeps capacity freed on a downed QPU (a trailing release
// maturing mid-outage) into the outage hold, so the interval guarantee
// — nothing places onto a down QPU — survives release timing.
func (st *runState) faultTopUp() {
	f := st.faults
	cl := st.ct.cfg.Cloud
	for q := range f.down {
		if f.down[q] == 0 {
			continue
		}
		if free := cl.FreeComputing(q); free > 0 {
			if err := cl.Reserve(q, free); err != nil {
				st.err = fmt.Errorf("core: re-holding downed QPU %d: %w", q, err)
				return
			}
			f.hold[q] += free
		}
	}
}

// releaseFaultHolds returns every outage hold to the cloud — the
// error-path and evacuation counterpart of qpuUp's release, so a
// poisoned or drained run never leaks the injector's reservations.
func (st *runState) releaseFaultHolds() {
	f := st.faults
	if f == nil {
		return
	}
	for q, n := range f.hold {
		if n > 0 {
			st.ct.cfg.Cloud.Release(q, n)
			f.hold[q] = 0
		}
	}
}

// attempt dispatches one ready node's EPR attempt: the fault-free path
// calls Attempt untouched; with any degrade active, AttemptDegraded
// draws per-edge probabilities — same draw count, so runs are
// deterministic and a vacuous overlay reproduces Attempt bit-for-bit.
func (st *runState) attempt(s *sched.JobState, u, pairs int, t float64) {
	f := st.faults
	if f == nil || len(f.scale) == 0 {
		s.Attempt(u, pairs, t, st.ct.cfg.Model, st.ct.rng)
		return
	}
	s.AttemptDegraded(u, pairs, t, st.ct.cfg.Model, st.ct.rng, f.probFn)
}

// faultRetryPass runs after a round's attempts: each granted node still
// short of entanglement whose path crosses a degraded edge burns one
// retry — or, when the path is outright dead and the plan allows it,
// reroutes onto a live path and pays nothing. Jobs that exhaust their
// retry budget fail cleanly and release their capacity.
func (st *runState) faultRetryPass(t float64, alloc map[sched.NodeKey]int) {
	f := st.faults
	if len(f.scale) == 0 || alloc == nil {
		return
	}
	ct := st.ct
	budget := f.plan.Budget()
	exhausted := false
	for idx, aj := range st.active {
		if aj.state.Done() {
			continue // completed this round: retire, don't fail on a spent budget
		}
		for _, u := range st.readyBuf[idx] {
			if alloc[sched.NodeKey{Job: idx, Node: u}] <= 0 || aj.state.HopsLeft(u) == 0 {
				continue
			}
			degraded, dead := f.pathDegradation(aj.state.Path(u))
			if !degraded {
				continue
			}
			if dead && f.plan.RouteAround {
				if np := st.routeAround(aj.state.Path(u)); np != nil {
					aj.state.Reroute(u, np)
					ct.faultStats.Reroutes++
					if aj.tr != nil {
						aj.tr.Fault(t, "reroute")
					}
					continue
				}
			}
			ct.faultStats.Retries++
			f.retries[aj.job.ID]++
		}
		if f.retries[aj.job.ID] >= budget {
			ct.faultStats.RetryExhausted++
			delete(f.retries, aj.job.ID)
			aj.placement.Release(ct.cfg.Cloud)
			st.failVictim(aj, t, "retry_exhausted")
			exhausted = true
		}
	}
	if exhausted {
		st.compactActive()
		st.capacityChanged = true
		st.requestTick(t)
	}
}

// routeAround finds a shortest alternative path between the endpoints
// of a dead entanglement path, avoiding every dead edge. The BFS
// expands neighbors in ascending order, so the choice is deterministic
// (the same tie-breaks as the cloud's precomputed trees). Returns nil
// when the dead edges disconnect the endpoints.
func (st *runState) routeAround(path []int) []int {
	f := st.faults
	topo := st.ct.cfg.Cloud.Topology()
	src, dst := path[0], path[len(path)-1]
	prev := make([]int, topo.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	frontier := []int{src}
	for len(frontier) > 0 && prev[dst] == -1 {
		var next []int
		for _, u := range frontier {
			for _, v := range topo.Neighbors(u) {
				if prev[v] != -1 {
					continue
				}
				if p, ok := f.scale[edgeKey(u, v)]; ok && p == 0 {
					continue
				}
				prev[v] = u
				next = append(next, v)
			}
		}
		frontier = next
	}
	if prev[dst] == -1 {
		return nil
	}
	var out []int
	for x := dst; x != src; x = prev[x] {
		out = append(out, x)
	}
	out = append(out, src)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FaultStats reports the injector's counters for the current run
// (reset by each Run call; monotone over a LiveController's life). The
// zero Stats without a plan.
func (ct *Controller) FaultStats() fault.Stats { return ct.faultStats }

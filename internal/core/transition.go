package core

import "fmt"

// TransitionReason qualifies a status transition whose To state alone is
// ambiguous: a job lands in StatusQueued both on plain admission-queue
// entry and when preemption checkpoints it off the cloud, and lands in
// StatusRunning both on first placement and when a checkpoint resumes.
type TransitionReason int

const (
	// ReasonNone marks an ordinary lifecycle step.
	ReasonNone TransitionReason = iota
	// ReasonPreempted marks a Running→Queued transition caused by the
	// preemption machinery checkpointing the job off the cloud.
	ReasonPreempted
	// ReasonResumed marks a transition of a previously preempted job
	// re-entering service: Pending on cross-shard SubmitResume, Running
	// when its checkpoint replays onto a fresh placement.
	ReasonResumed
	// ReasonEvicted marks a Running→Queued transition caused by the
	// fault layer checkpointing the job off a downed QPU or a draining
	// shard. Resumes of evicted jobs report ReasonResumed like
	// preemption resumes.
	ReasonEvicted
)

// String names the reason as the service's SSE events spell it.
func (r TransitionReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonPreempted:
		return "preempted"
	case ReasonResumed:
		return "resumed"
	case ReasonEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("TransitionReason(%d)", int(r))
	}
}

// Transition is one job lifecycle state change on a live controller, as
// delivered to the Config.OnTransition hook: the job moved From→To at
// virtual time At. Reason disambiguates preemption-driven transitions
// from ordinary ones.
type Transition struct {
	JobID  int
	From   JobStatus
	To     JobStatus
	At     float64
	Reason TransitionReason
}

// SetOnTransition installs (or, with nil, removes) the controller's
// lifecycle-transition hook. The hook fires synchronously from inside
// the scheduling loop at every live-status change — it must be fast and
// must not call back into the controller. One-shot Run calls keep no
// status index and never fire it.
func (ct *Controller) SetOnTransition(fn func(Transition)) { ct.cfg.OnTransition = fn }

// Mode returns the admission mode currently applied to new ticks.
func (ct *Controller) Mode() Mode { return ct.cfg.Mode }

// SetMode switches the admission order applied from the next tick on.
// Jobs already placed are unaffected; queued jobs are re-ordered under
// the new mode. Switching away from WFQ and back preserves the WFQ
// virtual clocks (tenants' accumulated service is not forgotten), which
// is what the service layer's overload degradation to FIFO relies on.
func (ct *Controller) SetMode(m Mode) error {
	if m < BatchMode || m > WFQMode {
		return fmt.Errorf("core: unknown admission mode %d", int(m))
	}
	ct.cfg.Mode = m
	return nil
}

// notify delivers a transition to the configured hook, if any. Callers
// must only invoke it for live-status changes (st.status != nil).
func (st *runState) notify(tr Transition) {
	if fn := st.ct.cfg.OnTransition; fn != nil {
		fn(tr)
	}
}

package core

import (
	"fmt"
	"sort"

	"cloudqc/internal/sched"
)

// PreemptPolicy selects whether and why the controller preempts running
// jobs at EPR-round boundaries. Preemption is checkpoint-based: a victim
// is snapshotted (sched.Checkpoint), its computing qubits are released,
// and it re-enters the admission queue as a resume-job that replays the
// checkpoint onto a fresh compile — a plan-cache hit when the cloud is
// back in a seen free state, a correct cold compile otherwise. Victims
// keep their job ID, tenant billing (WFQ virtual-clock position), and
// original admission wait; only their execution stretches.
type PreemptPolicy int

const (
	// PreemptOff disables preemption: placements are final, execution is
	// run-to-completion, and the controller is bit-identical to the
	// pre-preemption code on every observable (results, rounds, events,
	// recorder series) — see TestPreemptionOffDifferential.
	PreemptOff PreemptPolicy = iota
	// PreemptRescue preempts only to rescue deadlines: a queued job with
	// a live deadline may displace running jobs whose deadlines are
	// strictly later (no deadline sorts as infinitely late). Victims are
	// chosen lowest-weight first, most slack first.
	PreemptRescue
	// PreemptPriority preempts on tenant weight: a queued job may
	// displace running jobs of strictly lower weight, independent of
	// deadlines.
	PreemptPriority
)

// String names the policy as the -preempt flag spells it.
func (p PreemptPolicy) String() string {
	switch p {
	case PreemptOff:
		return "off"
	case PreemptRescue:
		return "rescue"
	case PreemptPriority:
		return "priority"
	default:
		return fmt.Sprintf("PreemptPolicy(%d)", int(p))
	}
}

// ParsePreempt maps a CLI policy name to its PreemptPolicy.
func ParsePreempt(s string) (PreemptPolicy, error) {
	switch s {
	case "", "off":
		return PreemptOff, nil
	case "rescue":
		return PreemptRescue, nil
	case "priority":
		return PreemptPriority, nil
	default:
		return 0, fmt.Errorf("core: unknown preemption policy %q (want off, rescue, or priority)", s)
	}
}

// PreemptStats counts preemption activity across a run (or a live
// controller's lifetime): jobs checkpointed off the cloud, resume-jobs
// re-placed, and rescued deadlines — preemption-triggering jobs that
// went on to finish within their deadline.
type PreemptStats struct {
	Preemptions      int `json:"preemptions"`
	Resumes          int `json:"resumes"`
	RescuedDeadlines int `json:"rescued_deadlines"`
}

// Add accumulates other into s (federation-level aggregation).
func (s *PreemptStats) Add(other PreemptStats) {
	s.Preemptions += other.Preemptions
	s.Resumes += other.Resumes
	s.RescuedDeadlines += other.RescuedDeadlines
}

// PreemptStats reports the preemption counters of the current run (reset
// by each Run/RunLockStep call; monotone over a LiveController's life).
func (ct *Controller) PreemptStats() PreemptStats { return ct.preempt }

// PreemptedJob is a preempted job exported for resumption elsewhere: the
// federation layer collects these from a shard (TakePreempted) and
// re-routes them, possibly to a different shard, via SubmitResume. The
// resume payload is opaque outside core.
type PreemptedJob struct {
	Job           *Job
	cp            sched.Checkpoint
	firstPlacedAt float64
}

// resumeState is the controller-internal half of a preempted job: admit
// replays the checkpoint onto the job's next placement and restores its
// original admission timestamps.
type resumeState struct {
	cp            sched.Checkpoint
	firstPlacedAt float64
}

// maybePreempt runs the configured preemption policy at a round
// boundary: pick the neediest queued job (the trigger), and if a set of
// strictly-less-entitled running victims can be checkpointed to make it
// fit, commit the swap. At most one trigger commits per pass — the
// resulting same-instant tick re-runs admission and, if the queue still
// warrants it, the next pass preempts again. Never called with
// PreemptOff configured.
func (st *runState) maybePreempt(t float64) {
	ct := st.ct
	if ct.cfg.Preempt == PreemptOff || len(st.active) == 0 || len(st.queue) == 0 {
		return
	}
	triggers := make([]*Job, 0, len(st.queue))
	for _, j := range st.queue {
		if j.Arrival > t {
			continue
		}
		if ct.cfg.Preempt == PreemptRescue && !(j.Deadline > t) {
			// Rescue only fires for live deadlines: a job without one (or
			// whose deadline already passed) gains nothing from displacing
			// others.
			continue
		}
		triggers = append(triggers, j)
	}
	if len(triggers) == 0 {
		return
	}
	// Neediest first: earliest deadline under rescue, heaviest weight
	// under priority; (arrival, ID) tie-breaks keep the order
	// deterministic.
	sort.SliceStable(triggers, func(i, k int) bool {
		a, b := triggers[i], triggers[k]
		if ct.cfg.Preempt == PreemptRescue {
			if da, db := deadlineOf(a), deadlineOf(b); da != db {
				return da < db
			}
		} else if wa, wb := a.weight(), b.weight(); wa != wb {
			return wa > wb
		}
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	})
	for _, trig := range triggers {
		if st.tryPreemptFor(trig, t) {
			return
		}
	}
}

// victimEligible reports whether running job v may be displaced by
// queued trigger trig. Both orderings are strict, so preemption can
// never cycle: a resumed victim is by construction less entitled than
// its trigger and cannot later displace it.
func victimEligible(policy PreemptPolicy, trig, v *Job) bool {
	switch policy {
	case PreemptRescue:
		return deadlineOf(v) > deadlineOf(trig)
	case PreemptPriority:
		return v.weight() < trig.weight()
	default:
		return false
	}
}

// tryPreemptFor probes whether checkpointing eligible victims frees
// enough capacity to place trig, releasing victims one at a time
// (cheapest entitlement first) and re-compiling trig after each. The
// probe is exact: it uses the same compile() admission will, so success
// here guarantees the follow-up tick places trig — and the probe's
// compile warmed the plan cache, making that placement a cache hit. On
// failure every released reservation is restored and the cloud is
// byte-identical to before the call.
func (st *runState) tryPreemptFor(trig *Job, t float64) bool {
	ct := st.ct
	var cands []*activeJob
	for _, aj := range st.active {
		// placedAt < t bounds work per instant: a job placed by this very
		// tick (or a resume placed moments ago at t) is not re-eligible
		// until time advances, so a pass cannot thrash at one instant.
		if !(aj.placedAt < t) {
			continue
		}
		if !victimEligible(ct.cfg.Preempt, trig, aj.job) {
			continue
		}
		// Only between-rounds states are preemptible: a victim holding
		// partial multi-hop entanglement has in-flight remote state with
		// no placement-independent checkpoint.
		if !aj.state.Checkpointable() {
			continue
		}
		cands = append(cands, aj)
	}
	if len(cands) == 0 {
		return false
	}
	// Cheapest victims first: lowest weight, then most slack (latest
	// deadline), then newest (highest ID) — descending ID also makes the
	// order deterministic.
	sort.SliceStable(cands, func(i, k int) bool {
		a, b := cands[i].job, cands[k].job
		if wa, wb := a.weight(), b.weight(); wa != wb {
			return wa < wb
		}
		if da, db := deadlineOf(a), deadlineOf(b); da != db {
			return da > db
		}
		return a.ID > b.ID
	})
	released := 0
	fits := false
	for _, aj := range cands {
		aj.placement.Release(ct.cfg.Cloud)
		released++
		if _, _, _, _, err := ct.compile(trig); err == nil {
			fits = true
			break
		}
	}
	if !fits {
		// Rollback: restore exactly the capacity just released. Reserve
		// cannot fail here — each placement goes back onto QPUs it was
		// occupying a moment ago.
		for i := released - 1; i >= 0; i-- {
			if err := cands[i].placement.Reserve(ct.cfg.Cloud); err != nil {
				st.err = fmt.Errorf("core: preemption rollback failed for job %d: %w", cands[i].job.ID, err)
				return false
			}
		}
		return false
	}
	for _, aj := range cands[:released] {
		st.preemptVictim(aj, t)
	}
	remaining := st.active[:0]
	for _, aj := range st.active {
		if aj.state != nil {
			remaining = append(remaining, aj)
		}
	}
	st.active = remaining
	if ct.cfg.Preempt == PreemptRescue {
		st.rescued[trig.ID] = true
	}
	// The same-instant tick re-runs admission on the freed capacity; the
	// probe guarantees trig places there.
	st.capacityChanged = true
	st.requestTick(t)
	return true
}

// preemptVictim checkpoints one victim whose reservations the probe
// already released: snapshot its completed remote gates, retire its
// execution state to the pool, and either re-enqueue it locally as a
// resume-job or export it for the federation layer to re-route. The
// victim keeps its ID, arrival, and first-placement timestamp, so its
// eventual result reports admission wait only (requeue time lands in
// JCT, not WaitTime).
func (st *runState) preemptVictim(aj *activeJob, t float64) {
	ct := st.ct
	ct.preempt.Preemptions++
	cp := aj.state.Checkpoint()
	ct.releaseJobState(aj.state)
	aj.state = nil
	id := aj.job.ID
	if aj.tr != nil {
		// The suspension span opens here and closes at the resume
		// placement — on whichever shard the federation rehomes it to,
		// since the recorder is shared.
		aj.tr.Preempt(t)
	}
	if ct.cfg.ExportPreempted && st.live && !st.draining {
		// Federation re-routes the resume (possibly to another shard):
		// this shard forgets the job entirely — result slot, status, and
		// ID reservation — so SubmitResume can re-validate it wherever it
		// lands. The transition hook fires before the status entry is
		// deleted, so observers still see the Running→Queued preemption.
		if st.status != nil {
			st.notify(Transition{JobID: id, From: st.status[id], To: StatusQueued, At: t, Reason: ReasonPreempted})
		}
		delete(st.results, id)
		delete(st.status, id)
		st.exported = append(st.exported, PreemptedJob{Job: aj.job, cp: cp, firstPlacedAt: aj.firstPlacedAt})
		return
	}
	st.resume[id] = &resumeState{cp: cp, firstPlacedAt: aj.firstPlacedAt}
	st.queue = append(st.queue, aj.job)
	st.setStatusReason(id, StatusQueued, ReasonPreempted)
}

package core

import (
	"math/rand"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/qlib"
)

// cacheStream builds a repeated-template job stream: a handful of
// distinct qlib circuits cycled across many jobs (every job gets its
// own Circuit instance, like real submissions), so the plan cache sees
// genuine cross-job template reuse.
func cacheStream(t *testing.T, poisson, tenants bool, seed int64) []*Job {
	t.Helper()
	templates := []string{"ghz_n127", "qft_n29", "qugan_n39", "cat_n65"}
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	jobs := make([]*Job, 0, 12)
	for i := 0; i < 12; i++ {
		c, err := qlib.Build(templates[i%len(templates)])
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{ID: i, Circuit: c, Arrival: arrival}
		if tenants {
			j.Tenant = i % 3
			j.Priority = 1 << (i % 3)
			j.Deadline = arrival + float64(c.Depth())*(20+rng.Float64()*60)
		}
		jobs = append(jobs, j)
		if poisson {
			arrival += rng.ExpFloat64() * 2000
		}
	}
	return jobs
}

// cacheConfig mirrors liveEquivConfig with the plan cache switchable.
func cacheConfig(seed int64, mode Mode, cacheSize int) (Config, *metrics.Recorder) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	rec := metrics.NewRecorder(0)
	return Config{
		Cloud:         cloud.NewRandom(10, 0.3, 20, 5, 1),
		Placer:        place.NewCloudQC(pCfg),
		Mode:          mode,
		Seed:          seed,
		Recorder:      rec,
		PlanCacheSize: cacheSize,
	}, rec
}

// TestPlanCacheDifferential is the tentpole's bit-identicality
// guarantee: with the plan cache enabled, every admission mode on batch
// and Poisson repeated-template streams produces exactly the results,
// round/event counts, and recorder series of a cache-disabled run — and
// the cached run must actually hit (a vacuously cold cache would prove
// nothing).
func TestPlanCacheDifferential(t *testing.T) {
	cases := []struct {
		name    string
		mode    Mode
		poisson bool
		tenants bool
	}{
		{"batch-batchmode", BatchMode, false, false},
		{"batch-fifo", FIFOMode, false, false},
		{"batch-edf", EDFMode, false, true},
		{"batch-wfq", WFQMode, false, true},
		{"poisson-batchmode", BatchMode, true, false},
		{"poisson-fifo", FIFOMode, true, false},
		{"poisson-edf", EDFMode, true, true},
		{"poisson-wfq", WFQMode, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				cfgCold, recCold := cacheConfig(seed, tc.mode, -1) // cache disabled
				cold, err := NewController(cfgCold)
				if err != nil {
					t.Fatal(err)
				}
				if s := cold.PlanCacheStats(); s.Enabled {
					t.Fatal("negative PlanCacheSize did not disable the cache")
				}
				want, err := cold.Run(cacheStream(t, tc.poisson, tc.tenants, seed))
				if err != nil {
					t.Fatal(err)
				}

				cfgHot, recHot := cacheConfig(seed, tc.mode, 0) // default-sized cache
				hot, err := NewController(cfgHot)
				if err != nil {
					t.Fatal(err)
				}
				got, err := hot.Run(cacheStream(t, tc.poisson, tc.tenants, seed))
				if err != nil {
					t.Fatal(err)
				}

				if stats := hot.PlanCacheStats(); !stats.Enabled || stats.Hits == 0 {
					t.Fatalf("seed %d: cached run never hit (stats %+v); differential is vacuous",
						seed, stats)
				}
				if len(got) != len(want) {
					t.Fatalf("result count %d vs %d", len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("seed %d job %d diverged:\ncold %+v\nhot  %+v",
							seed, w.Job.ID, *w, *g)
					}
					if (w.Placement == nil) != (g.Placement == nil) {
						t.Fatalf("seed %d job %d placement presence diverged", seed, w.Job.ID)
					}
					if w.Placement != nil {
						wq, gq := w.Placement.QubitToQPU, g.Placement.QubitToQPU
						if len(wq) != len(gq) {
							t.Fatalf("seed %d job %d placement widths differ", seed, w.Job.ID)
						}
						for q := range wq {
							if wq[q] != gq[q] {
								t.Fatalf("seed %d job %d qubit %d placed on %d (cold) vs %d (hot)",
									seed, w.Job.ID, q, wq[q], gq[q])
							}
						}
					}
				}
				if cold.LastRunStats() != hot.LastRunStats() {
					t.Fatalf("seed %d run stats diverged: cold %+v, hot %+v",
						seed, cold.LastRunStats(), hot.LastRunStats())
				}
				sc, sh := recCold.Samples(), recHot.Samples()
				if len(sc) != len(sh) {
					t.Fatalf("seed %d recorder length diverged: %d vs %d", seed, len(sc), len(sh))
				}
				for i := range sc {
					if sc[i] != sh[i] {
						t.Fatalf("seed %d sample %d diverged: %+v vs %+v", seed, i, sc[i], sh[i])
					}
				}
			}
		})
	}
}

// TestPlanCacheLiveDifferential: the live controller with the cache
// reproduces the cache-disabled one-shot Run bit-identically on a
// Poisson repeated-template stream under WFQ — cache, streaming
// submission, and state pooling composed.
func TestPlanCacheLiveDifferential(t *testing.T) {
	const seed = 3
	cfgCold, _ := cacheConfig(seed, WFQMode, -1)
	cold, err := NewController(cfgCold)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Run(cacheStream(t, true, true, seed))
	if err != nil {
		t.Fatal(err)
	}

	cfgHot, _ := cacheConfig(seed, WFQMode, 0)
	lc, err := NewLiveController(cfgHot)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range cacheStream(t, true, true, seed) {
		if err := lc.StepUntil(j.Arrival); err != nil {
			t.Fatal(err)
		}
		if err := lc.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	got, err := lc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if stats := lc.PlanCacheStats(); stats.Hits == 0 {
		t.Fatalf("live cached run never hit: %+v", stats)
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Job.ID != w.Job.ID || g.Failed != w.Failed || g.Finished != w.Finished ||
			g.JCT != w.JCT || g.RemoteGates != w.RemoteGates {
			t.Fatalf("job %d diverged:\ncold run %+v\nlive hot %+v", w.Job.ID, *w, *g)
		}
	}
	if cold.LastRunStats() != lc.RunStats() {
		t.Fatalf("run stats diverged: cold %+v, live %+v", cold.LastRunStats(), lc.RunStats())
	}
}

// TestPlanCacheCapacityInvalidation: a cached placement is never reused
// once the cloud's free capacity changed — the free-capacity signature
// keys it out — and every hit's placement fits the QPUs it touches.
func TestPlanCacheCapacityInvalidation(t *testing.T) {
	cfg, _ := cacheConfig(1, BatchMode, 0)
	ct, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := qlib.Build("ghz_n127") // spans several 20-qubit QPUs
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{ID: 0, Circuit: c}

	// Cold compile on the idle cloud populates the cache.
	pl1, _, _, hit1, err := ct.compile(job)
	if err != nil {
		t.Fatal(err)
	}
	if s := ct.PlanCacheStats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after cold compile: %+v", s)
	}
	if hit1 {
		t.Fatal("cold compile reported a cache hit")
	}

	// Same template, same idle cloud: must hit with the identical
	// assignment, and the entry's cost metrics must match the place
	// package's ground truth for that assignment.
	pl2, dag2, _, hit2, err := ct.compile(job)
	if err != nil {
		t.Fatal(err)
	}
	if s := ct.PlanCacheStats(); s.Hits != 1 {
		t.Fatalf("identical state did not hit: %+v", s)
	}
	if !hit2 {
		t.Fatal("warm compile did not report a cache hit")
	}
	free := cfg.Cloud.FreeSnapshot()
	entry, ok := ct.planCache.Lookup(plan.Key{
		Circuit: c.Fingerprint(),
		Cloud:   cfg.Cloud.Signature(),
		Free:    plan.FreeSignature(free),
	}, free)
	if !ok {
		t.Fatal("direct lookup missed the warmed entry")
	}
	if want := place.CommCost(c, cfg.Cloud, pl2.QubitToQPU); entry.CommCost != want {
		t.Fatalf("cached CommCost %v, ground truth %v", entry.CommCost, want)
	}
	if want := place.RemoteOps(c, pl2.QubitToQPU); entry.RemoteOps != want || entry.RemoteOps != dag2.Len() {
		t.Fatalf("cached RemoteOps %d, ground truth %d, dag %d", entry.RemoteOps, want, dag2.Len())
	}
	for q := range pl1.QubitToQPU {
		if pl1.QubitToQPU[q] != pl2.QubitToQPU[q] {
			t.Fatalf("hit returned a different placement at qubit %d", q)
		}
	}

	// Occupy one QPU the cached placement uses: the signature changes,
	// the stale plan must not be served, and the fresh plan must fit the
	// shrunken capacity.
	used := pl1.UsedQPUs()[0]
	if err := cfg.Cloud.Reserve(used, cfg.Cloud.FreeComputing(used)); err != nil {
		t.Fatal(err)
	}
	pl3, _, _, hit3, err := ct.compile(job)
	if err != nil {
		t.Fatal(err)
	}
	// Hits stay at 2 (the compile hit plus the direct entry inspection
	// above); the capacity change must cost a fresh miss.
	if s := ct.PlanCacheStats(); s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("capacity change did not invalidate: %+v", s)
	}
	if hit3 {
		t.Fatal("capacity-changed compile reported a cache hit")
	}
	if err := pl3.Validate(cfg.Cloud); err != nil {
		t.Fatalf("post-change placement does not fit: %v", err)
	}
	for _, q := range pl3.UsedQPUs() {
		if q == used {
			t.Fatalf("fresh placement uses fully occupied QPU %d", used)
		}
	}
}

// TestPlanCacheEvictionStaysCorrect: a single-entry cache thrashing
// across alternating templates still produces results identical to an
// uncached run — eviction affects performance only.
func TestPlanCacheEvictionStaysCorrect(t *testing.T) {
	const seed = 4
	cfgCold, _ := cacheConfig(seed, FIFOMode, -1)
	cold, err := NewController(cfgCold)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Run(cacheStream(t, true, false, seed))
	if err != nil {
		t.Fatal(err)
	}

	cfgTiny, _ := cacheConfig(seed, FIFOMode, 1)
	tiny, err := NewController(cfgTiny)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tiny.Run(cacheStream(t, true, false, seed))
	if err != nil {
		t.Fatal(err)
	}
	stats := tiny.PlanCacheStats()
	if stats.Capacity != 1 || stats.Evictions == 0 {
		t.Fatalf("single-entry cache never evicted: %+v", stats)
	}
	for i := range want {
		if want[i].Job.ID != got[i].Job.ID || want[i].Failed != got[i].Failed ||
			want[i].Finished != got[i].Finished || want[i].JCT != got[i].JCT {
			t.Fatalf("job %d diverged under eviction pressure", want[i].Job.ID)
		}
	}
}

// TestPlanCacheDisabledForStatefulPlacers: the Random baseline draws
// from a persistent RNG, so memoizing it would change results — the
// controller must refuse to cache it.
func TestPlanCacheDisabledForStatefulPlacers(t *testing.T) {
	ct, err := NewController(Config{
		Cloud:  cloud.NewRandom(10, 0.3, 20, 5, 1),
		Placer: place.NewRandom(1),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := ct.PlanCacheStats(); s.Enabled {
		t.Fatalf("cache enabled for the stateful Random placer: %+v", s)
	}
	// Asking for a cache explicitly must stay a no-op.
	ct.ConfigurePlanCache(64)
	if s := ct.PlanCacheStats(); s.Enabled {
		t.Fatal("ConfigurePlanCache enabled caching for a stateful placer")
	}
}

// TestConfigurePlanCache: resizing and disabling through the public
// knob.
func TestConfigurePlanCache(t *testing.T) {
	cfg, _ := cacheConfig(1, BatchMode, 0)
	ct, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := ct.PlanCacheStats(); !s.Enabled || s.Capacity != plan.DefaultCapacity {
		t.Fatalf("default cache stats %+v", s)
	}
	ct.ConfigurePlanCache(7)
	if s := ct.PlanCacheStats(); s.Capacity != 7 {
		t.Fatalf("capacity after resize = %d, want 7", s.Capacity)
	}
	ct.ConfigurePlanCache(-1)
	if s := ct.PlanCacheStats(); s.Enabled {
		t.Fatalf("cache still enabled after disable: %+v", s)
	}
	// Re-enabling restores a fresh cache for the deterministic placer.
	ct.ConfigurePlanCache(16)
	if s := ct.PlanCacheStats(); !s.Enabled || s.Capacity != 16 {
		t.Fatalf("re-enable stats %+v", s)
	}
}

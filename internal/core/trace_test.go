// Trace integration tests live in the external test package for the
// same reason the preemption tests do: the determinism matrix drives
// Federations, and internal/fed imports core.
package core_test

import (
	"reflect"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/metrics"
	"cloudqc/internal/qlib"
	"cloudqc/internal/trace"
)

// TestTraceOffDifferential is the tentpole's hard guarantee: the span
// recorder is observation-only. An untraced run (the nil-recorder
// zero-cost path every pre-trace caller built) and a traced run of the
// same stream agree bit-identically on every pre-existing observable —
// per-job results, run statistics, recorder series — across Run,
// LiveController, and a 1-shard Federation, while the traced side's
// attributions sum to each job's JCT exactly.
func TestTraceOffDifferential(t *testing.T) {
	cases := []struct {
		name    string
		poisson bool
		mode    core.Mode
	}{
		{"batch-fifo", false, core.FIFOMode},
		{"batch-edf", false, core.EDFMode},
		{"batch-wfq", false, core.WFQMode},
		{"poisson-fifo", true, core.FIFOMode},
		{"poisson-edf", true, core.EDFMode},
		{"poisson-wfq", true, core.WFQMode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(1)
			// Reference: untraced one-shot Run — Config.Trace nil.
			jobsA := preemptStream(t, tc.poisson, seed)
			cfgA, recA := preemptEquivConfig(seed, tc.mode)
			ref, err := core.NewController(cfgA)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(jobsA)
			if err != nil {
				t.Fatal(err)
			}

			// Traced one-shot Run of the identical stream.
			jobsB := preemptStream(t, tc.poisson, seed)
			cfgB, recB := preemptEquivConfig(seed, tc.mode)
			trcB := trace.New()
			cfgB.Trace = trcB
			ct, err := core.NewController(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			gotRun, err := ct.Run(jobsB)
			if err != nil {
				t.Fatal(err)
			}

			// Traced live controller.
			jobsC := preemptStream(t, tc.poisson, seed)
			cfgC, recC := preemptEquivConfig(seed, tc.mode)
			trcC := trace.New()
			cfgC.Trace = trcC
			lc, err := core.NewLiveController(cfgC)
			if err != nil {
				t.Fatal(err)
			}
			if lc.Trace() != trcC {
				t.Fatal("LiveController.Trace() lost the recorder")
			}
			for _, j := range jobsC {
				if err := lc.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := lc.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotLive, err := lc.Drain()
			if err != nil {
				t.Fatal(err)
			}

			// Traced 1-shard federation, recorder shared via fed.Config.
			jobsD := preemptStream(t, tc.poisson, seed)
			cfgD, recD := preemptEquivConfig(seed, tc.mode)
			trcD := trace.New()
			fedCloud := cfgD.Cloud
			cfgD.Cloud, cfgD.Recorder = nil, nil
			f, err := fed.New(fed.Config{
				Shard:     cfgD,
				Clouds:    []*cloud.Cloud{fedCloud},
				Recorders: []*metrics.Recorder{recD},
				Trace:     trcD,
			})
			if err != nil {
				t.Fatal(err)
			}
			if f.Trace() != trcD {
				t.Fatal("Federation.Trace() lost the recorder")
			}
			for _, j := range jobsD {
				if err := f.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := f.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotFed, err := f.Drain()
			if err != nil {
				t.Fatal(err)
			}

			for name, got := range map[string][]*core.JobResult{"run": gotRun, "live": gotLive, "fed": gotFed} {
				if len(got) != len(want) {
					t.Fatalf("%s result count %d vs %d", name, len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("%s job %d diverged from untraced reference:\nref %+v\ngot %+v", name, w.Job.ID, *w, *g)
					}
				}
			}
			if ref.LastRunStats() != ct.LastRunStats() ||
				ref.LastRunStats() != lc.RunStats() || ref.LastRunStats() != f.RunStats() {
				t.Fatalf("run stats diverged: ref %+v run %+v live %+v fed %+v",
					ref.LastRunStats(), ct.LastRunStats(), lc.RunStats(), f.RunStats())
			}
			sa, sb, sc, sd := recA.Samples(), recB.Samples(), recC.Samples(), recD.Samples()
			if len(sa) != len(sb) || len(sa) != len(sc) || len(sa) != len(sd) {
				t.Fatalf("recorder lengths diverged: %d / %d / %d / %d", len(sa), len(sb), len(sc), len(sd))
			}
			for i := range sa {
				if sa[i] != sb[i] || sa[i] != sc[i] || sa[i] != sd[i] {
					t.Fatalf("sample %d diverged: ref %+v run %+v live %+v fed %+v", i, sa[i], sb[i], sc[i], sd[i])
				}
			}

			// The traced arms carry identical span trees — a trace is a
			// pure function of the workload, not of the driver — and every
			// attribution sums to its JCT bitwise against the reference
			// results.
			for _, trc := range []*trace.Recorder{trcC, trcD} {
				if !reflect.DeepEqual(trcB.Traces(), trc.Traces()) {
					t.Fatal("span trees diverge across Run / live / fed drivers")
				}
			}
			if trcB.Len() != len(want) {
				t.Fatalf("recorder holds %d traces, want %d", trcB.Len(), len(want))
			}
			for _, w := range want {
				tr := trcB.Get(w.Job.ID)
				if tr == nil || !tr.Done {
					t.Fatalf("job %d has no settled trace", w.Job.ID)
				}
				if tr.Attr.JCT != w.JCT || tr.Failed != w.Failed {
					t.Fatalf("job %d trace JCT %v/failed=%v, result %v/%v",
						w.Job.ID, tr.Attr.JCT, tr.Failed, w.JCT, w.Failed)
				}
				sum := tr.Attr.Queue + tr.Attr.Compile + tr.Attr.Local + tr.Attr.Network + tr.Attr.Suspended
				if sum != tr.Attr.JCT {
					t.Fatalf("job %d phases sum to %v, JCT %v (%+v)", w.Job.ID, sum, tr.Attr.JCT, tr.Attr)
				}
				if !w.Failed && tr.Attr.Queue != w.WaitTime {
					t.Fatalf("job %d queue phase %v, result wait %v", w.Job.ID, tr.Attr.Queue, w.WaitTime)
				}
			}
		})
	}
}

// TestTraceDeterminism4Shards: the same Poisson stream traced twice
// through a 4-shard preempt-enabled federation yields identical span
// trees — traces live on the virtual clock, so nothing about sharding,
// routing, or suspension perturbs them between runs.
func TestTraceDeterminism4Shards(t *testing.T) {
	run := func() *trace.Recorder {
		trc := trace.New()
		scfg := preemptConfig(core.PreemptRescue, core.EDFMode)
		cloudShape := scfg.Cloud
		scfg.Cloud = nil
		f, err := fed.New(fed.Config{
			Shard: scfg,
			Clouds: []*cloud.Cloud{
				cloudShape,
				cloud.NewRandom(8, 0.3, 20, 5, 2),
				cloud.NewRandom(8, 0.3, 20, 5, 3),
				cloud.NewRandom(8, 0.3, 20, 5, 4),
			},
			Trace: trc,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range preemptStream(t, true, 3) {
			if err := f.StepUntil(j.Arrival); err != nil {
				t.Fatal(err)
			}
			j.ID = -1 // let the federation's sequencer assign shard-tagged ids
			if err := f.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.Drain(); err != nil {
			t.Fatal(err)
		}
		return trc
	}
	a, b := run(), run()
	if a.Len() == 0 {
		t.Fatal("no traces recorded")
	}
	if !reflect.DeepEqual(a.Traces(), b.Traces()) {
		t.Fatal("4-shard traced runs diverge")
	}
	if !reflect.DeepEqual(a.Tenants(), b.Tenants()) {
		t.Fatal("4-shard tenant attributions diverge")
	}
	for _, tr := range a.Traces() {
		if !tr.Done {
			t.Fatalf("job %d trace never settled", tr.ID)
		}
		sum := tr.Attr.Queue + tr.Attr.Compile + tr.Attr.Local + tr.Attr.Network + tr.Attr.Suspended
		if sum != tr.Attr.JCT {
			t.Fatalf("job %d phases sum to %v, JCT %v", tr.ID, sum, tr.Attr.JCT)
		}
	}
}

// TestTraceSuspendSpans: a rescue preemption shows up on the victim's
// trace as a resolved suspension with matching suspended-phase time,
// and the resume's recompile is span-recorded.
func TestTraceSuspendSpans(t *testing.T) {
	trc := trace.New()
	cfg := preemptConfig(core.PreemptRescue, core.EDFMode)
	cfg.Trace = trc
	ct, err := core.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The rescue-functional scenario: a long incumbent owns the cloud,
	// a deadline-carrying job preempts it at a round boundary.
	results, err := ct.Run([]*core.Job{
		{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0},
		{ID: 1, Circuit: qlib.GHZ(127), Arrival: 10, Deadline: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ct.PreemptStats().Preemptions == 0 {
		t.Fatal("setup: rescue never fired")
	}
	suspended := 0
	for _, r := range results {
		tr := trc.Get(r.Job.ID)
		for _, s := range tr.Suspends {
			if !s.Resumed || s.To < s.From {
				t.Fatalf("job %d unresolved suspension %+v after drain", r.Job.ID, s)
			}
		}
		if len(tr.Suspends) > 0 {
			suspended++
			if tr.Attr.Suspended <= 0 {
				t.Fatalf("job %d has suspensions but zero suspended phase: %+v", r.Job.ID, tr.Attr)
			}
			var resumes int
			for _, c := range tr.Compiles {
				if c.Resume {
					resumes++
				}
			}
			if resumes != len(tr.Suspends) {
				t.Fatalf("job %d: %d resume compiles for %d suspensions", r.Job.ID, resumes, len(tr.Suspends))
			}
		}
	}
	if suspended == 0 {
		t.Fatal("preemptions fired but no trace carries a suspension span")
	}
}

// TestFedRejectsShardTrace: the recorder must be shared through
// fed.Config.Trace, never smuggled per shard.
func TestFedRejectsShardTrace(t *testing.T) {
	scfg := preemptConfig(core.PreemptOff, core.FIFOMode)
	scfg.Trace = trace.New()
	cloudShape := scfg.Cloud
	scfg.Cloud = nil
	if _, err := fed.New(fed.Config{Shard: scfg, Clouds: []*cloud.Cloud{cloudShape}}); err == nil {
		t.Fatal("fed.New accepted a per-shard trace recorder")
	}
}

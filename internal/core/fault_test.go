// Fault-injection tests live in the external test package for the same
// reason the preemption tests do: the off-path differential drives a
// 1-shard Federation, and internal/fed imports core.
package core_test

import (
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fault"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/qlib"
	"cloudqc/internal/trace"
)

// faultCloud is the outage tests' cluster: 7 QPUs x 20 computing qubits
// are exactly enough that GHZ-127 must span all seven, so downing ANY
// QPU is guaranteed to evict it.
func faultCloud() *cloud.Cloud { return cloud.NewRandom(7, 0.3, 20, 5, 1) }

// k4Cloud is the route-around tests' cluster: a complete 4-QPU graph
// where killing the three edges among QPUs {0,1,2} leaves QPU 3 as a
// live relay between any pair — every dead shortest path has exactly
// one detour, through the hub.
func k4Cloud() *cloud.Cloud {
	g := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v, 1)
		}
	}
	return cloud.New(g, 20, 5)
}

// deadTriangle kills the three edges among QPUs {0,1,2} for the whole
// run. GHZ-70 over 4x20 qubits must span all four QPUs, and its CX
// chain cuts between adjacent fragments; the hub hosts at most one
// fragment, so at least one cut crosses a dead direct edge — the
// route-around (or retry-exhaustion) path is guaranteed to engage.
func deadTriangle() []fault.Event {
	var evs []fault.Event
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			evs = append(evs, fault.Event{
				Kind: fault.KindLinkDegrade, U: u, V: v, Scale: 0, From: 0, To: 1e9,
			})
		}
	}
	return evs
}

func faultConfig(cl *cloud.Cloud, plan *fault.Plan, tr *trace.Recorder) core.Config {
	cfg := preemptConfig(core.PreemptOff, core.FIFOMode)
	cfg.Cloud = cl
	cfg.Faults = plan
	cfg.Trace = tr
	return cfg
}

// TestFaultOffDifferential is the tentpole's hard guarantee: with no
// FaultPlan every fault hook stays dormant, so Run, LiveController, and
// a 1-shard Federation (whose code paths all carry the hooks) agree
// bit-for-bit on every observable and count zero fault activity.
func TestFaultOffDifferential(t *testing.T) {
	cases := []struct {
		name    string
		poisson bool
		mode    core.Mode
	}{
		{"batch-wfq", false, core.WFQMode},
		{"poisson-fifo", true, core.FIFOMode},
		{"poisson-edf", true, core.EDFMode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(3)
			jobsA := preemptStream(t, tc.poisson, seed)
			cfgA, recA := preemptEquivConfig(seed, tc.mode)
			ref, err := core.NewController(cfgA)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(jobsA)
			if err != nil {
				t.Fatal(err)
			}
			if ref.FaultStats() != (fault.Stats{}) {
				t.Fatalf("planless run counted faults: %+v", ref.FaultStats())
			}

			jobsB := preemptStream(t, tc.poisson, seed)
			cfgB, recB := preemptEquivConfig(seed, tc.mode)
			lc, err := core.NewLiveController(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobsB {
				if err := lc.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := lc.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotLive, err := lc.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if lc.FaultStats() != (fault.Stats{}) {
				t.Fatalf("planless live controller counted faults: %+v", lc.FaultStats())
			}

			jobsC := preemptStream(t, tc.poisson, seed)
			cfgC, recC := preemptEquivConfig(seed, tc.mode)
			fedCloud := cfgC.Cloud
			cfgC.Cloud, cfgC.Recorder = nil, nil
			f, err := fed.New(fed.Config{
				Shard:     cfgC,
				Clouds:    []*cloud.Cloud{fedCloud},
				Recorders: []*metrics.Recorder{recC},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobsC {
				if err := f.StepUntil(j.Arrival); err != nil {
					t.Fatal(err)
				}
				if err := f.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			gotFed, err := f.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if f.FaultStats() != (fault.Stats{}) {
				t.Fatalf("planless federation counted faults: %+v", f.FaultStats())
			}

			for name, got := range map[string][]*core.JobResult{"live": gotLive, "fed": gotFed} {
				if len(got) != len(want) {
					t.Fatalf("%s result count %d vs %d", name, len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("%s job %d diverged:\nref %+v\ngot %+v", name, w.Job.ID, *w, *g)
					}
				}
			}
			if ref.LastRunStats() != lc.RunStats() || ref.LastRunStats() != f.RunStats() {
				t.Fatalf("run stats diverged: ref %+v live %+v fed %+v",
					ref.LastRunStats(), lc.RunStats(), f.RunStats())
			}
			sa, sb, sc := recA.Samples(), recB.Samples(), recC.Samples()
			if len(sa) != len(sb) || len(sa) != len(sc) {
				t.Fatalf("recorder lengths diverged: %d / %d / %d", len(sa), len(sb), len(sc))
			}
			for i := range sa {
				if sa[i] != sb[i] || sa[i] != sc[i] {
					t.Fatalf("sample %d diverged: ref %+v live %+v fed %+v", i, sa[i], sb[i], sc[i])
				}
			}
		})
	}
}

// runOutage runs one GHZ-127 job through a mid-run outage of QPU 0 and
// returns its result and the injector counters.
func runOutage(t *testing.T, recovery string, tr *trace.Recorder) (*core.JobResult, fault.Stats) {
	t.Helper()
	plan := &fault.Plan{
		Recovery: recovery,
		Events:   []fault.Event{{Kind: fault.KindQPUOutage, QPU: 0, From: 50, To: 3000}},
	}
	ct, err := core.NewController(faultConfig(faultCloud(), plan, tr))
	if err != nil {
		t.Fatal(err)
	}
	results, err := ct.Run([]*core.Job{{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Job.ID != 0 {
		t.Fatalf("results %+v", results)
	}
	return results[0], ct.FaultStats()
}

// TestFaultOutageRescue drives the whole outage lifecycle: the job is
// running when its QPU goes down, checkpoints off it, waits out the
// outage (held capacity leaves no room for 127 qubits on 6 QPUs), and
// resumes to completion under its original identity — and the whole
// faulted run is bit-reproducible.
func TestFaultOutageRescue(t *testing.T) {
	tr := trace.New()
	res, fs := runOutage(t, fault.RecoveryRescue, tr)
	if res.Failed {
		t.Fatalf("rescued job failed: %+v", *res)
	}
	if fs.QPUOutages != 1 || fs.RescuedOutage != 1 || fs.FailedOutage != 0 {
		t.Fatalf("outage stats %+v", fs)
	}
	// The outage held all free capacity on QPU 0 until t=3000; the job
	// cannot re-place before the QPU returns.
	if res.Finished <= 3000 {
		t.Fatalf("job finished at %v, before the outage ended", res.Finished)
	}
	if res.JCT != res.Finished {
		t.Fatalf("JCT %v != Finished %v with arrival 0", res.JCT, res.Finished)
	}
	jt := tr.Get(0)
	if jt == nil || len(jt.Faults) == 0 {
		t.Fatal("no fault span on the victim's trace")
	}
	if jt.Faults[0].Kind != fault.KindQPUOutage || jt.Faults[0].At != 50 {
		t.Fatalf("fault span %+v", jt.Faults[0])
	}
	// Bit-reproducibility: an identical configuration replays the
	// identical faulted run.
	res2, fs2 := runOutage(t, fault.RecoveryRescue, nil)
	if fs2 != fs || res2.Finished != res.Finished || res2.JCT != res.JCT ||
		res2.WaitTime != res.WaitTime || res2.RemoteGates != res.RemoteGates {
		t.Fatalf("faulted run not reproducible:\nfirst  %+v %+v\nsecond %+v %+v", *res, fs, *res2, fs2)
	}
}

// TestFaultOutageNoRecovery: under the no-recovery ablation the same
// outage fails the resident job outright.
func TestFaultOutageNoRecovery(t *testing.T) {
	res, fs := runOutage(t, fault.RecoveryNone, nil)
	if !res.Failed {
		t.Fatalf("no-recovery victim survived: %+v", *res)
	}
	if fs.QPUOutages != 1 || fs.FailedOutage != 1 || fs.RescuedOutage != 0 {
		t.Fatalf("outage stats %+v", fs)
	}
}

// TestFaultRouteAround: with every edge among QPUs {0,1,2} dead, remote
// gates crossing them re-path through the hub QPU 3 and the job still
// completes; without route-around the same faults burn the job's retry
// budget and it fails cleanly.
func TestFaultRouteAround(t *testing.T) {
	run := func(reroute bool, budget int) (*core.JobResult, fault.Stats) {
		plan := &fault.Plan{RouteAround: reroute, RetryBudget: budget, Events: deadTriangle()}
		ct, err := core.NewController(faultConfig(k4Cloud(), plan, nil))
		if err != nil {
			t.Fatal(err)
		}
		results, err := ct.Run([]*core.Job{{ID: 0, Circuit: qlib.GHZ(70), Arrival: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return results[0], ct.FaultStats()
	}

	res, fs := run(true, 0)
	if res.Failed {
		t.Fatalf("route-around job failed: %+v (stats %+v)", *res, fs)
	}
	if fs.Reroutes == 0 {
		t.Fatalf("no reroute despite a guaranteed dead cut: %+v", fs)
	}
	if fs.RetryExhausted != 0 {
		t.Fatalf("route-around run exhausted a budget: %+v", fs)
	}

	res, fs = run(false, 3)
	if !res.Failed {
		t.Fatalf("dead links with no route-around and budget 3, yet job survived (stats %+v)", fs)
	}
	if fs.RetryExhausted != 1 || fs.Retries < 3 || fs.Reroutes != 0 {
		t.Fatalf("retry stats %+v", fs)
	}
}

// TestFaultLiveInject covers the admin-injection path: a live outage is
// clamped to virtual now and rescues the resident job; malformed,
// expired, out-of-range, and federation-tier events are rejected.
func TestFaultLiveInject(t *testing.T) {
	cfg := faultConfig(faultCloud(), nil, nil)
	lc, err := core.NewLiveController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Submit(&core.Job{ID: 0, Circuit: qlib.GHZ(127), Arrival: 0}); err != nil {
		t.Fatal(err)
	}
	if err := lc.StepUntil(50); err != nil {
		t.Fatal(err)
	}
	for _, e := range []fault.Event{
		{Kind: "bogus", From: 100, To: 200},
		{Kind: fault.KindShardDrain, From: 100},
		{Kind: fault.KindQPUOutage, QPU: 99, From: 100, To: 200},
		{Kind: fault.KindLinkDegrade, U: 0, V: 99, Scale: 0.5, From: 100, To: 200},
		{Kind: fault.KindQPUOutage, QPU: 0, From: 0, To: 10}, // interval already past now=50
	} {
		if err := lc.InjectFault(e); err == nil {
			t.Fatalf("bad injection accepted: %+v", e)
		}
	}
	// From 0 clamps to now=50; the resident job is evicted and rescued.
	if err := lc.InjectFault(fault.Event{Kind: fault.KindQPUOutage, QPU: 0, From: 0, To: 3000}); err != nil {
		t.Fatal(err)
	}
	results, err := lc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Failed {
		t.Fatalf("results %+v", results)
	}
	fs := lc.FaultStats()
	if fs.QPUOutages != 1 || fs.RescuedOutage != 1 {
		t.Fatalf("live-injection stats %+v", fs)
	}
	if err := lc.InjectFault(fault.Event{Kind: fault.KindQPUOutage, QPU: 0, From: 0, To: 1e9}); err == nil {
		t.Fatal("injection into a drained controller accepted")
	}
}

// TestFaultConfigValidation: NewController range-checks the plan against
// the cloud at construction time.
func TestFaultConfigValidation(t *testing.T) {
	for name, plan := range map[string]*fault.Plan{
		"shard-drain": {Events: []fault.Event{{Kind: fault.KindShardDrain, From: 0}}},
		"qpu-range":   {Events: []fault.Event{{Kind: fault.KindQPUOutage, QPU: 64, From: 0, To: 10}}},
		"no-edge":     {Events: []fault.Event{{Kind: fault.KindLinkDegrade, U: 0, V: 64, Scale: 0.5, From: 0, To: 10}}},
		"recovery":    {Recovery: "pray", Events: nil},
	} {
		if _, err := core.NewController(faultConfig(faultCloud(), plan, nil)); err == nil {
			t.Fatalf("%s: invalid plan accepted", name)
		}
	}
}

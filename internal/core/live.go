package core

import (
	"errors"
	"fmt"
	"math"

	"cloudqc/internal/des"
	"cloudqc/internal/fault"
	"cloudqc/internal/metrics"
	"cloudqc/internal/plan"
	"cloudqc/internal/trace"
)

// ErrDrained is returned by Submit, StepUntil, and Drain once a live
// controller has been drained and retired. The service layer maps it
// to 409 Conflict; callers can test for it with errors.Is even through
// the federation layer's wrapping.
var ErrDrained = errors.New("core: live controller already drained")

// JobStatus is a submitted job's lifecycle state in a LiveController.
type JobStatus int

const (
	// StatusUnknown means the job ID was never submitted.
	StatusUnknown JobStatus = iota
	// StatusPending means the job is submitted but its arrival time is
	// still in the virtual future.
	StatusPending
	// StatusQueued means the job has arrived and waits for placement.
	StatusQueued
	// StatusRunning means the job holds computing qubits and is
	// executing its remote DAG.
	StatusRunning
	// StatusCompleted means the job finished; its JobResult is final.
	StatusCompleted
	// StatusFailed means the job can never be placed (larger than the
	// cloud, or unplaceable with every resource free).
	StatusFailed
)

// String returns the status's wire name (used verbatim by the service
// layer's JSON API).
func (s JobStatus) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Settled reports whether the status is terminal (completed or failed).
func (s JobStatus) Settled() bool { return s == StatusCompleted || s == StatusFailed }

// LiveSnapshot is one instant of a LiveController's cluster state.
type LiveSnapshot struct {
	// Now is the current virtual time in CX units.
	Now float64
	// Pending, Queued, Active, Completed, and Failed count submitted
	// jobs by lifecycle state; they sum to the total submitted.
	Pending, Queued, Active, Completed, Failed int
	// Utilization is the fraction of computing qubits reserved, with
	// matured-but-unapplied trailing releases already discounted.
	Utilization float64
	// PendingReleases counts placements whose jobs finished but whose
	// computing qubits have not been returned yet.
	PendingReleases int
	// Rounds and Events are the controller's cumulative scheduling work
	// (see RunStats).
	Rounds, Events int
}

// LiveController is the incremental façade over the event-driven
// multi-tenant controller: where Run consumes a complete workload and
// executes it to completion, a LiveController accepts jobs at any
// virtual time after the run starts and advances the clock in steps.
//
//	lc, _ := core.NewLiveController(cfg)
//	lc.Submit(job)            // at any time, arrival = now
//	lc.StepUntil(t)           // advance virtual time to t
//	lc.Snapshot()             // cluster state, lc.Status(id) per job
//	results, _ := lc.Drain()  // run the backlog dry and stop
//
// Admission, placement, EPR-round allocation, and metrics reuse the
// exact event machinery behind Run: submitting a workload's jobs at
// their arrival times (Submit before the clock passes each arrival)
// reproduces Run's results bit-identically — same rounds, same JCTs,
// same recorder series (see TestLiveControllerMatchesRun).
//
// A LiveController is not safe for concurrent use; the service layer
// (internal/service) serializes access.
type LiveController struct {
	ct *Controller
	st *runState
	// jobs preserves submission order for Results.
	jobs []*Job
	// started latches the first clock advance, which decides the
	// recorder's opening sample exactly like Run's pre-loop check.
	started bool
	drained bool
}

// NewLiveController validates the configuration (see NewController) and
// returns a live controller with the virtual clock at 0 and no jobs.
func NewLiveController(cfg Config) (*LiveController, error) {
	ct, err := NewController(cfg)
	if err != nil {
		return nil, err
	}
	total := ct.resetScheduling(0)
	st := &runState{
		ct:             ct,
		eng:            des.NewEngine(),
		results:        make(map[int]*JobResult),
		totalComputing: total,
		budget:         make([]int, cfg.Cloud.NumQPUs()),
		nextRound:      math.NaN(),
		tickAt:         math.NaN(),
		live:           true,
		status:         make(map[int]JobStatus),
	}
	if ct.cfg.Preempt != PreemptOff {
		st.resume = make(map[int]*resumeState)
		st.rescued = make(map[int]bool)
	}
	st.faultInit()
	return &LiveController{ct: ct, st: st}, nil
}

// Now returns the current virtual time in CX units.
func (lc *LiveController) Now() float64 { return lc.st.eng.Now() }

// Submit injects a job into the run. The job arrives at
// max(Job.Arrival, Now()): a future Arrival schedules it ahead of time,
// a zero or past one means "arrives now" (Job.Arrival itself is left
// untouched — JCT accounting charges from the caller's stamp, exactly
// like Run). Submissions at the current instant precede any controller
// tick already scheduled there, so a job submitted at time t is
// indistinguishable from one queued up front with Arrival t.
func (lc *LiveController) Submit(j *Job) error {
	if lc.drained {
		return ErrDrained
	}
	if lc.st.err != nil {
		return lc.st.err
	}
	if err := validateJob(j, lc.st.results); err != nil {
		return err
	}
	at := j.Arrival
	if now := lc.st.eng.Now(); at < now {
		at = now
	}
	lc.jobs = append(lc.jobs, j)
	lc.st.setStatusReason(j.ID, StatusPending, ReasonNone)
	lc.st.pendingArrivals++
	lc.st.eng.SchedulePriority(at, func() { lc.st.arrive(j) })
	return nil
}

// SubmitResume injects a preempted job exported by another controller
// (TakePreempted on the preempting shard): the job re-enters admission
// under its original ID and arrival stamp, and its checkpoint replays
// onto whatever placement admission finds here — by construction a
// strict superset of nothing, so execution only moves forward. Like
// Submit, the arrival event fires at max(Job.Arrival, Now()).
func (lc *LiveController) SubmitResume(pj PreemptedJob) error {
	if lc.drained {
		return ErrDrained
	}
	if lc.st.err != nil {
		return lc.st.err
	}
	j := pj.Job
	if err := validateJob(j, lc.st.results); err != nil {
		return err
	}
	if lc.st.resume == nil {
		lc.st.resume = make(map[int]*resumeState)
	}
	lc.st.resume[j.ID] = &resumeState{cp: pj.cp, firstPlacedAt: pj.firstPlacedAt}
	at := j.Arrival
	if now := lc.st.eng.Now(); at < now {
		at = now
	}
	lc.jobs = append(lc.jobs, j)
	lc.st.setStatusReason(j.ID, StatusPending, ReasonResumed)
	lc.st.pendingArrivals++
	lc.st.eng.SchedulePriority(at, func() { lc.st.arrive(j) })
	return nil
}

// TakePreempted hands over the jobs preempted since the last call (only
// a controller configured with ExportPreempted accumulates any). The
// controller forgets them completely — result slots, status, and
// submission-order entries are gone, as if the jobs were never
// submitted here — so the federation layer can SubmitResume each one on
// whichever shard its router picks, including this one.
func (lc *LiveController) TakePreempted() []PreemptedJob {
	out := lc.st.exported
	if len(out) == 0 {
		return nil
	}
	lc.st.exported = nil
	gone := make(map[int]bool, len(out))
	for _, pj := range out {
		gone[pj.Job.ID] = true
	}
	kept := lc.jobs[:0]
	for _, j := range lc.jobs {
		if !gone[j.ID] {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(lc.jobs); i++ {
		lc.jobs[i] = nil
	}
	lc.jobs = kept
	return out
}

// PreemptStats reports the controller's cumulative preemption counters.
func (lc *LiveController) PreemptStats() PreemptStats { return lc.ct.preempt }

// begin latches the first clock advance and emits the recorder's
// opening sample when the horizon starts idle — the same "idle span
// before the first arrival" rule Run applies before draining its event
// queue. target is how far the caller is about to advance; a no-op
// step (nothing scheduled, clock staying at 0) defers the decision.
func (lc *LiveController) begin(target float64) {
	if lc.started {
		return
	}
	next, ok := lc.st.eng.NextAt()
	if !ok && target <= 0 {
		return
	}
	lc.started = true
	if lc.ct.cfg.Recorder != nil && (!ok || next > 0) {
		lc.ct.cfg.Recorder.Record(metrics.Sample{Time: 0, Utilization: lc.ct.cfg.Cloud.Utilization()})
	}
}

// StepUntil advances the virtual clock to t, executing every event
// strictly before t (arrivals, admission ticks, EPR rounds, releases).
// Events at exactly t stay pending so the caller can still Submit jobs
// arriving at t before they run; a clock already past t only replays
// due events. Returns the first execution error, which is sticky.
func (lc *LiveController) StepUntil(t float64) error {
	if lc.drained {
		return ErrDrained
	}
	if lc.st.err != nil {
		return lc.st.err
	}
	if now := lc.st.eng.Now(); t < now {
		t = now
	}
	lc.begin(t)
	lc.st.eng.RunBefore(t)
	return lc.st.err
}

// Drain runs every submitted job to completion, returns the computing
// qubits of trailing releases, emits the recorder's closing sample, and
// retires the controller: further Submit/StepUntil/Drain calls fail.
// Results are returned in submission order.
func (lc *LiveController) Drain() ([]*JobResult, error) {
	if lc.drained {
		return nil, ErrDrained
	}
	lc.begin(math.Inf(1))
	// No more submissions are coming: stop waking at trailing releases
	// (Run's tail applies them silently), and cancel an already-pending
	// idle wake — when the system is idle with nothing queued or still
	// arriving, the only tick that can be scheduled is such a wake.
	lc.st.draining = true
	if len(lc.st.active) == 0 && len(lc.st.queue) == 0 && lc.st.pendingArrivals == 0 &&
		!math.IsNaN(lc.st.tickAt) {
		lc.st.tickGen++
		lc.st.tickAt = math.NaN()
	}
	lc.st.eng.Run()
	lc.drained = true
	cl := lc.ct.cfg.Cloud
	if lc.st.err != nil {
		// Like Run's failure path: a poisoned run must not leak
		// reservations on the shared cloud.
		for _, aj := range lc.st.active {
			aj.placement.Release(cl)
		}
		for _, r := range lc.st.releases {
			r.placement.Release(cl)
		}
		lc.st.active, lc.st.releases = nil, nil
		lc.st.releaseFaultHolds()
		return nil, lc.st.err
	}
	for _, r := range lc.st.releases {
		r.placement.Release(cl)
	}
	lc.st.releases = nil
	// Outage holds were returned by their qpuUp events (the engine
	// drained every scheduled fault); sweep any injected leftovers.
	lc.st.releaseFaultHolds()
	if lc.ct.cfg.Recorder != nil && len(lc.jobs) > 0 {
		end := lc.st.eng.Now()
		if lc.st.maxFinished > end {
			end = lc.st.maxFinished
		}
		lc.ct.cfg.Recorder.Flush(metrics.Sample{Time: end, Utilization: cl.Utilization()})
	}
	return lc.Results(), nil
}

// Status reports a submitted job's lifecycle state in O(1): the status
// index is maintained at every transition (submit, arrival, placement,
// retirement, failure).
func (lc *LiveController) Status(id int) JobStatus {
	return lc.st.status[id] // zero value = StatusUnknown for never-submitted ids
}

// Result returns a job's result slot and status. The result is only
// final once the status is settled; callers must not mutate it.
func (lc *LiveController) Result(id int) (*JobResult, JobStatus) {
	res, ok := lc.st.results[id]
	if !ok {
		return nil, StatusUnknown
	}
	return res, lc.Status(id)
}

// Results returns every submitted job's result slot in submission
// order; entries for unsettled jobs are partial (see Result).
func (lc *LiveController) Results() []*JobResult {
	out := make([]*JobResult, 0, len(lc.jobs))
	for _, j := range lc.jobs {
		out = append(out, lc.st.results[j.ID])
	}
	return out
}

// SettledResults returns the results of completed and failed jobs in
// submission order — the stream slice metrics aggregation consumes
// mid-run (Outcomes + AggregateSLO, AggregateOnline).
func (lc *LiveController) SettledResults() []*JobResult {
	out := make([]*JobResult, 0, len(lc.jobs))
	for _, j := range lc.jobs {
		if lc.Status(j.ID).Settled() {
			out = append(out, lc.st.results[j.ID])
		}
	}
	return out
}

// RunStats reports the cumulative scheduling-round and event counts of
// the live run so far.
func (lc *LiveController) RunStats() RunStats { return lc.ct.stats }

// PlanCacheStats reports the compile-once plan cache's hit/miss
// counters (the zero Stats when caching is disabled) — surfaced by the
// service layer on GET /v1/stats.
func (lc *LiveController) PlanCacheStats() plan.Stats { return lc.ct.PlanCacheStats() }

// Trace returns the configured span recorder (nil when tracing is
// off).
func (lc *LiveController) Trace() *trace.Recorder { return lc.ct.cfg.Trace }

// ConfigurePlanCache re-bounds the plan cache mid-run: size > 0 sets
// the LRU capacity, 0 resets to the default, negative disables caching
// (see Controller.ConfigurePlanCache).
func (lc *LiveController) ConfigurePlanCache(size int) { lc.ct.ConfigurePlanCache(size) }

// Snapshot summarizes the cluster's current state.
func (lc *LiveController) Snapshot() LiveSnapshot {
	t := lc.st.eng.Now()
	s := LiveSnapshot{
		Now:       t,
		Pending:   lc.st.pendingArrivals,
		Queued:    len(lc.st.queue),
		Active:    len(lc.st.active),
		Completed: lc.st.completed,
		Failed:    lc.st.failed,
		Rounds:    lc.ct.stats.Rounds,
		Events:    lc.ct.stats.Events,
	}
	s.Utilization = lc.ct.cfg.Cloud.Utilization()
	matured := 0
	for _, r := range lc.st.releases {
		s.PendingReleases++
		if r.at <= t {
			matured += len(r.placement.QubitToQPU)
		}
	}
	if matured > 0 && lc.st.totalComputing > 0 {
		s.Utilization -= float64(matured) / float64(lc.st.totalComputing)
		if s.Utilization < 0 {
			s.Utilization = 0 // float dust from the discount
		}
	}
	return s
}

// QPULoad is one QPU's capacity and current reservation.
type QPULoad struct {
	ID              int
	Computing, Comm int
	UsedComputing   int
}

// QPULoads reports per-QPU computing reservations (communication qubits
// are claimed and returned within each EPR round, so only their
// capacity is meaningful between rounds). Matured trailing releases are
// discounted exactly like Snapshot's Utilization, so summing the loads
// always agrees with the snapshot in the same view.
func (lc *LiveController) QPULoads() []QPULoad {
	cl := lc.ct.cfg.Cloud
	out := make([]QPULoad, cl.NumQPUs())
	for i := range out {
		q := cl.QPU(i)
		out[i] = QPULoad{ID: i, Computing: q.Computing, Comm: q.Comm, UsedComputing: q.UsedComputing()}
	}
	t := lc.st.eng.Now()
	for _, r := range lc.st.releases {
		if r.at > t {
			continue
		}
		for qpu, n := range r.placement.QubitsPerQPU() {
			out[qpu].UsedComputing -= n
		}
	}
	return out
}

// SetOnTransition installs (or removes, with nil) the controller's
// lifecycle-transition hook — see Config.OnTransition.
func (lc *LiveController) SetOnTransition(fn func(Transition)) { lc.ct.SetOnTransition(fn) }

// Mode returns the admission mode currently applied to new ticks.
func (lc *LiveController) Mode() Mode { return lc.ct.Mode() }

// SetMode switches the admission order from the next tick on (the
// service layer's overload degradation to FIFO) — see Controller.SetMode.
func (lc *LiveController) SetMode(m Mode) error { return lc.ct.SetMode(m) }

// EPRAttempt returns the model's EPR-attempt round length in CX units —
// the granularity the service's virtual-time pacer maps wall time onto.
func (lc *LiveController) EPRAttempt() float64 { return lc.ct.cfg.Model.EPRAttempt }

// TotalComputing returns the cloud's total computing-qubit capacity —
// the ceiling a federation router checks before offering a shard a
// circuit it could never fit.
func (lc *LiveController) TotalComputing() int { return lc.st.totalComputing }

// FaultStats reports the controller's cumulative fault-injection and
// recovery counters (the zero Stats without a plan or injections).
func (lc *LiveController) FaultStats() fault.Stats { return lc.ct.faultStats }

// InjectFault schedules one fault event live, at max(e.From, Now()) —
// the admin POST /v1/faults path. Interval faults already over after
// the clamp are rejected, as are shard drains (fed.Inject handles
// those) and events out of the cloud's range.
func (lc *LiveController) InjectFault(e fault.Event) error {
	if lc.drained {
		return ErrDrained
	}
	if lc.st.err != nil {
		return lc.st.err
	}
	if err := e.Validate(); err != nil {
		return err
	}
	cl := lc.ct.cfg.Cloud
	switch e.Kind {
	case fault.KindShardDrain:
		return errors.New("core: shard_drain is a federation-tier fault (fed.Federation.Inject)")
	case fault.KindQPUOutage:
		if e.QPU >= cl.NumQPUs() {
			return fmt.Errorf("core: fault downs QPU %d, cloud has %d", e.QPU, cl.NumQPUs())
		}
	case fault.KindLinkDegrade:
		topo := cl.Topology()
		if e.U >= topo.N() || e.V >= topo.N() || !topo.HasEdge(e.U, e.V) {
			return fmt.Errorf("core: fault degrades nonexistent link (%d, %d)", e.U, e.V)
		}
		if _, err := lc.ct.cfg.Model.DegradedProb(e.Scale); err != nil {
			return err
		}
	}
	if now := lc.st.eng.Now(); e.From < now {
		e.From = now
		if e.To <= e.From {
			return fmt.Errorf("core: fault interval ends at %g, already past virtual time %g", e.To, now)
		}
	}
	lc.st.faultEnsure(&fault.Plan{})
	lc.st.scheduleFault(e)
	return nil
}

// Evacuate checkpoints every unsettled job off the controller and
// halts it — the core half of a federation shard drain. Active jobs
// checkpoint like an eviction; queued and pending jobs move as-is
// (preempted ones carry their existing checkpoints); already-exported
// preemptions ride along. Settled results stay readable. The cloud's
// reservations, trailing releases, and outage holds are all returned,
// so the drained shard ends with zero resident jobs and a fully free
// cloud. After Evacuate the controller is drained: stale engine events
// are inert and every mutating call fails with ErrDrained.
func (lc *LiveController) Evacuate() (resumes []PreemptedJob, waiting []*Job) {
	st := lc.st
	ct := lc.ct
	t := st.eng.Now()
	tc := ct.cfg.Trace
	for _, aj := range st.active {
		aj.placement.Release(ct.cfg.Cloud)
		cp := aj.state.Checkpoint()
		ct.releaseJobState(aj.state)
		aj.state = nil
		if aj.tr != nil {
			aj.tr.Fault(t, fault.KindShardDrain)
			aj.tr.Preempt(t)
		}
		resumes = append(resumes, PreemptedJob{Job: aj.job, cp: cp, firstPlacedAt: aj.firstPlacedAt})
	}
	st.active = nil
	collect := func(j *Job) {
		if tc != nil {
			if tr := tc.Get(j.ID); tr != nil {
				tr.Fault(t, fault.KindShardDrain)
			}
		}
		if rs := st.resume[j.ID]; rs != nil {
			delete(st.resume, j.ID)
			resumes = append(resumes, PreemptedJob{Job: j, cp: rs.cp, firstPlacedAt: rs.firstPlacedAt})
		} else {
			waiting = append(waiting, j)
		}
	}
	for _, j := range st.queue {
		collect(j)
	}
	st.queue = nil
	for _, j := range lc.jobs {
		if st.status[j.ID] == StatusPending {
			st.pendingArrivals--
			collect(j)
		}
	}
	resumes = append(resumes, st.exported...)
	st.exported = nil
	for _, r := range st.releases {
		r.placement.Release(ct.cfg.Cloud)
	}
	st.releases = nil
	st.releaseFaultHolds()
	// Forget the moved jobs entirely — result slots, status, and
	// submission-order entries — so SubmitResume/Submit re-validate
	// them wherever the router rehomes them.
	gone := make(map[int]bool, len(resumes)+len(waiting))
	for _, pj := range resumes {
		gone[pj.Job.ID] = true
	}
	for _, j := range waiting {
		gone[j.ID] = true
	}
	kept := lc.jobs[:0]
	for _, j := range lc.jobs {
		if gone[j.ID] {
			delete(st.results, j.ID)
			delete(st.status, j.ID)
		} else {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(lc.jobs); i++ {
		lc.jobs[i] = nil
	}
	lc.jobs = kept
	st.halted = true
	lc.drained = true
	return resumes, waiting
}

// OnlineStatsOf aggregates a result set's completed-job JCTs and waits,
// failed count, and last-completion makespan into OnlineStats — the
// summary the service's /v1/stats and the daemon's drain report share.
func OnlineStatsOf(results []*JobResult) metrics.OnlineStats {
	var jcts, waits []float64
	failed := 0
	makespan := 0.0
	for _, r := range results {
		if r.Failed {
			failed++
			continue
		}
		jcts = append(jcts, r.JCT)
		waits = append(waits, r.WaitTime)
		if r.Finished > makespan {
			makespan = r.Finished
		}
	}
	return metrics.AggregateOnline(jcts, waits, failed, makespan)
}

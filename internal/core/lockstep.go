package core

import (
	"fmt"
	"math"

	"cloudqc/internal/metrics"
	"cloudqc/internal/sched"
)

// RunLockStep is the original round-per-iteration controller loop, kept
// as the reference implementation for the event-driven Run: on batch
// workloads the two produce bit-identical JobResults (the equivalence
// tests and BenchmarkClusterOnline rely on this). It advances the clock
// by one EPRAttempt slot per iteration whenever any job is active — even
// when every active job is stalled on local gate tails — so sparse
// workloads burn O(horizon/EPRAttempt) empty rounds that Run skips.
//
// New code should call Run; RunLockStep exists for differential testing
// and benchmarking only.
func (ct *Controller) RunLockStep(jobs []*Job) ([]*JobResult, error) {
	results, totalComputing, err := ct.prepare(jobs)
	if err != nil {
		return nil, err
	}
	queue := append([]*Job(nil), jobs...)

	var active []*activeJob
	var releases []release

	t := 0.0
	capacityChanged := true
	budget := make([]int, ct.cfg.Cloud.NumQPUs())

	for len(queue) > 0 || len(active) > 0 {
		ct.stats.Rounds++
		// Apply matured releases.
		kept := releases[:0]
		for _, r := range releases {
			if r.at <= t {
				r.placement.Release(ct.cfg.Cloud)
				capacityChanged = true
			} else {
				kept = append(kept, r)
			}
		}
		releases = kept

		// Admission: try placing waiting, arrived jobs.
		if capacityChanged {
			var err error
			queue, active, err = ct.admit(queue, active, results, t, totalComputing, nil)
			if err != nil {
				for _, aj := range active {
					aj.placement.Release(ct.cfg.Cloud)
				}
				for _, r := range releases {
					r.placement.Release(ct.cfg.Cloud)
				}
				return nil, err
			}
			capacityChanged = false
		}

		if ct.cfg.Recorder != nil {
			// Queued counts arrived-but-unplaced jobs only: this queue
			// still holds jobs with Arrival > t, and reporting them
			// over-states queue depth on online runs.
			queued := 0
			for _, j := range queue {
				if j.Arrival <= t {
					queued++
				}
			}
			ct.cfg.Recorder.Record(metrics.Sample{
				Time:        t,
				Utilization: ct.cfg.Cloud.Utilization(),
				Active:      len(active),
				Queued:      queued,
			})
		}

		// One shared EPR round across every active job.
		reqs, readyByJob := collectRequests(active, t)
		if len(reqs) > 0 {
			for i := range budget {
				budget[i] = ct.cfg.Cloud.QPU(i).Comm
			}
			alloc := ct.cfg.Policy.Allocate(reqs, budget, ct.rng)
			for idx, aj := range active {
				for _, u := range readyByJob[idx] {
					aj.state.Attempt(u, alloc[sched.NodeKey{Job: idx, Node: u}], t, ct.cfg.Model, ct.rng)
				}
			}
		}

		// Retire completed jobs.
		remaining := active[:0]
		for _, aj := range active {
			if !aj.state.Done() {
				remaining = append(remaining, aj)
				continue
			}
			finished := aj.state.JCT()
			res := results[aj.job.ID]
			res.PlacedAt = aj.placedAt
			res.Finished = finished
			res.JCT = finished - aj.job.Arrival
			res.WaitTime = aj.placedAt - aj.job.Arrival
			releases = append(releases, release{at: finished, placement: aj.placement})
		}
		active = remaining

		if len(queue) == 0 && len(active) == 0 {
			break
		}

		// Advance the clock: to the next round if anything is running,
		// otherwise jump to the next enabling event (arrival or release).
		next := t + ct.cfg.Model.EPRAttempt
		if len(active) == 0 {
			next = math.Inf(1)
			for _, j := range queue {
				if j.Arrival > t && j.Arrival < next {
					next = j.Arrival
				}
			}
			for _, r := range releases {
				if r.at > t && r.at < next {
					next = r.at
				}
			}
			if math.IsInf(next, 1) {
				// Waiting jobs, nothing running, nothing to release:
				// capacity will never change again.
				return nil, fmt.Errorf("core: %d jobs unplaceable with all resources free", len(queue))
			}
			capacityChanged = true
		}
		t = next
	}

	// Final releases restore the cloud.
	for _, r := range releases {
		r.placement.Release(ct.cfg.Cloud)
	}

	out := make([]*JobResult, 0, len(results))
	for _, j := range jobs {
		out = append(out, results[j.ID])
	}
	return out, nil
}

package workload

import (
	"strings"
	"testing"

	"cloudqc/internal/qlib"
)

func TestAllWorkloadsResolvable(t *testing.T) {
	for _, w := range All() {
		if len(w.Circuits) == 0 {
			t.Fatalf("workload %s empty", w.Name)
		}
		for _, name := range w.Circuits {
			if _, err := qlib.Build(name); err != nil {
				t.Fatalf("workload %s: %v", w.Name, err)
			}
		}
	}
}

func TestBatchSizeAndIDs(t *testing.T) {
	jobs, err := Mixed().Batch(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("batch size = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Arrival != 0 {
			t.Fatalf("batch arrival = %v, want 0", j.Arrival)
		}
		if j.Circuit == nil {
			t.Fatalf("job %d has nil circuit", i)
		}
	}
}

func TestBatchDeterministicAndSeedSensitive(t *testing.T) {
	a, err := Mixed().Batch(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mixed().Batch(20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Circuit.Name != b[i].Circuit.Name {
			t.Fatal("same seed should give identical batches")
		}
	}
	c, err := Mixed().Batch(20, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Circuit.Name != c[i].Circuit.Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should usually differ")
	}
}

func TestBatchSharesCircuitInstances(t *testing.T) {
	jobs, err := QFT().Batch(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	first := map[string]interface{}{}
	for _, j := range jobs {
		byName[j.Circuit.Name]++
		if prev, ok := first[j.Circuit.Name]; ok {
			if prev != interface{}(j.Circuit) {
				t.Fatal("same benchmark should share one cached circuit instance")
			}
		} else {
			first[j.Circuit.Name] = j.Circuit
		}
	}
	if len(byName) < 2 {
		t.Fatalf("30 draws from 3 circuits should hit >= 2 names: %v", byName)
	}
}

func TestBatchErrors(t *testing.T) {
	if _, err := Mixed().Batch(0, 1); err == nil {
		t.Fatal("zero size should error")
	}
	bad := Workload{Name: "bad", Circuits: []string{"nope"}}
	if _, err := bad.Batch(3, 1); err == nil {
		t.Fatal("unknown circuit should error")
	}
	empty := Workload{Name: "empty"}
	if _, err := empty.Batch(3, 1); err == nil {
		t.Fatal("empty pool should error")
	}
}

func TestPoissonBatchArrivalsNondecreasing(t *testing.T) {
	jobs, err := Qugan().PoissonBatch(15, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Arrival != 0 {
		t.Fatalf("first arrival = %v, want 0", jobs[0].Arrival)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("arrivals must be nondecreasing")
		}
	}
	last := jobs[len(jobs)-1].Arrival
	if last <= 0 {
		t.Fatalf("arrivals never advanced: last = %v", last)
	}
}

func TestPoissonBatchNegativeRateErrors(t *testing.T) {
	if _, err := Qugan().PoissonBatch(5, -1, 3); err == nil {
		t.Fatal("negative interarrival should error")
	}
}

func TestPoissonBatchValidatesBeforeBuilding(t *testing.T) {
	// A bad rate must be rejected up front, not after every circuit in
	// the batch has been built: with an unresolvable pool, reaching the
	// build step would surface the wrong error.
	bad := Workload{Name: "bad", Circuits: []string{"no_such_circuit"}}
	_, err := bad.PoissonBatch(5, -1, 3)
	if err == nil {
		t.Fatal("negative interarrival should error")
	}
	if !strings.Contains(err.Error(), "interarrival") {
		t.Fatalf("err = %v, want interarrival validation before circuit building", err)
	}
}

func TestUniformBatchArrivals(t *testing.T) {
	jobs, err := QFT().UniformBatch(5, 250, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.Arrival != float64(i)*250 {
			t.Fatalf("job %d arrival = %v, want %v", i, j.Arrival, float64(i)*250)
		}
	}
	if _, err := QFT().UniformBatch(5, -1, 3); err == nil {
		t.Fatal("negative interarrival should error")
	}
}

func TestBurstyBatchArrivals(t *testing.T) {
	const burst = 3
	jobs, err := Qugan().BurstyBatch(10, burst, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs within one burst share an arrival instant; bursts advance.
	for i, j := range jobs {
		if j.Arrival != jobs[(i/burst)*burst].Arrival {
			t.Fatalf("job %d arrival %v differs from its burst head", i, j.Arrival)
		}
		if i > 0 && j.Arrival < jobs[i-1].Arrival {
			t.Fatal("arrivals must be nondecreasing")
		}
	}
	if jobs[len(jobs)-1].Arrival <= 0 {
		t.Fatal("bursts never advanced")
	}
	if _, err := Qugan().BurstyBatch(5, 0, 100, 3); err == nil {
		t.Fatal("zero burst size should error")
	}
	if _, err := Qugan().BurstyBatch(5, 2, -1, 3); err == nil {
		t.Fatal("negative gap should error")
	}
}

func TestArrivalsDispatch(t *testing.T) {
	for _, process := range []string{"", "poisson", "uniform", "bursty"} {
		jobs, err := Mixed().Arrivals(process, 6, 500, 4)
		if err != nil {
			t.Fatalf("%q: %v", process, err)
		}
		if len(jobs) != 6 {
			t.Fatalf("%q: %d jobs", process, len(jobs))
		}
	}
	// Same seed, any process: identical circuit draws, so processes are
	// directly comparable.
	poisson, _ := Mixed().Arrivals("poisson", 6, 500, 4)
	uniform, _ := Mixed().Arrivals("uniform", 6, 500, 4)
	for i := range poisson {
		if poisson[i].Circuit.Name != uniform[i].Circuit.Name {
			t.Fatal("processes should share circuit draws for a given seed")
		}
	}
	if _, err := Mixed().Arrivals("warp", 6, 500, 4); err == nil {
		t.Fatal("unknown process should error")
	}
}

func TestArrivalsBurstyShortStreamStillSpreads(t *testing.T) {
	// A stream shorter than DefaultBurstSize must not collapse into one
	// burst at t=0 — that would silently turn the rate sweep into a
	// no-op batch run.
	jobs, err := Mixed().Arrivals("bursty", 3, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Arrival == jobs[len(jobs)-1].Arrival {
		t.Fatal("short bursty stream degenerated into a single burst")
	}
}

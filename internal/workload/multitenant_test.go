package workload

import (
	"reflect"
	"testing"
)

func testMix(perTenant int) []TenantSpec {
	return DefaultTenantMix(QFT(), perTenant, "poisson", 1000)
}

func TestMultiTenantStampsFields(t *testing.T) {
	jobs, err := MultiTenant(testMix(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 15 {
		t.Fatalf("len = %d, want 15", len(jobs))
	}
	perTenant := map[int]int{}
	prios := map[int]int{}
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("IDs must be re-assigned in merge order: job %d has ID %d", i, j.ID)
		}
		if i > 0 && jobs[i-1].Arrival > j.Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if j.Deadline <= j.Arrival {
			t.Fatalf("job %d deadline %v not after arrival %v", i, j.Deadline, j.Arrival)
		}
		// Deadline slack is depth-scaled and within the default range.
		slack := (j.Deadline - j.Arrival) / float64(j.Circuit.Depth())
		if slack < DefaultMinSlack || slack > DefaultMaxSlack {
			t.Fatalf("job %d slack %v outside [%v, %v]", i, slack, DefaultMinSlack, DefaultMaxSlack)
		}
		perTenant[j.Tenant]++
		prios[j.Tenant] = j.Priority
	}
	if perTenant[0] != 5 || perTenant[1] != 5 || perTenant[2] != 5 {
		t.Fatalf("per-tenant counts = %v", perTenant)
	}
	if prios[0] != 1 || prios[1] != 2 || prios[2] != 4 {
		t.Fatalf("priorities = %v", prios)
	}
}

func TestMultiTenantDeterministicAndSeedSensitive(t *testing.T) {
	a, err := MultiTenant(testMix(6), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultiTenant(testMix(6), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline ||
			a[i].Tenant != b[i].Tenant || a[i].Circuit.Name != b[i].Circuit.Name {
			t.Fatalf("mix not deterministic at job %d", i)
		}
	}
	c, err := MultiTenant(testMix(6), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival || a[i].Circuit.Name != c[i].Circuit.Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different mixes")
	}
}

func TestMultiTenantTenantsDecorrelated(t *testing.T) {
	// Tenants with identical specs must not replay each other's streams.
	jobs, err := MultiTenant(testMix(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	byTenant := map[int][]float64{}
	for _, j := range jobs {
		byTenant[j.Tenant] = append(byTenant[j.Tenant], j.Arrival)
	}
	if reflect.DeepEqual(byTenant[0], byTenant[1]) {
		t.Fatal("tenants 0 and 1 drew identical arrival streams")
	}
}

func TestMultiTenantNoDeadlinesWhenSlackZero(t *testing.T) {
	mix := testMix(3)
	for i := range mix {
		mix[i].MinSlack, mix[i].MaxSlack = 0, 0
	}
	jobs, err := MultiTenant(mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Deadline != 0 {
			t.Fatalf("zero slack range should leave deadlines unset, got %v", j.Deadline)
		}
	}
}

func TestMultiTenantValidation(t *testing.T) {
	if _, err := MultiTenant(nil, 1); err == nil {
		t.Fatal("empty mix should error")
	}
	dup := testMix(2)
	dup[1].Tenant = dup[0].Tenant
	if _, err := MultiTenant(dup, 1); err == nil {
		t.Fatal("duplicate tenant ids should error")
	}
	bad := testMix(2)
	bad[0].MinSlack, bad[0].MaxSlack = 50, 10
	if _, err := MultiTenant(bad, 1); err == nil {
		t.Fatal("inverted slack range should error")
	}
}

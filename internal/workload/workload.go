// Package workload defines the multi-tenant workload suites of the
// paper's evaluation (Sec. VI-D) and samples seeded job batches from
// them.
package workload

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/circuit"
	"cloudqc/internal/core"
	"cloudqc/internal/qlib"
)

// Workload is a named pool of benchmark circuits that batches sample
// from with replacement.
type Workload struct {
	// Name labels the workload in reports ("Mixed", "QFT", ...).
	Name string
	// Circuits lists the qlib benchmark names in the pool.
	Circuits []string
}

// Mixed is the paper's mixed workload: assorted circuit families and
// widths.
func Mixed() Workload {
	return Workload{Name: "Mixed", Circuits: []string{
		"knn_n129", "qugan_n111", "qugan_n71", "qft_n63", "multiplier_n45", "multiplier_n75",
	}}
}

// QFT is the QFT-only workload at three widths.
func QFT() Workload {
	return Workload{Name: "QFT", Circuits: []string{"qft_n29", "qft_n63", "qft_n100"}}
}

// Qugan is the QuGAN-only workload at three widths.
func Qugan() Workload {
	return Workload{Name: "Qugan", Circuits: []string{"qugan_n39", "qugan_n71", "qugan_n111"}}
}

// Arithmetic is the adder/multiplier workload.
func Arithmetic() Workload {
	return Workload{Name: "Arithmetic", Circuits: []string{
		"adder_n64", "adder_n118", "multiplier_n45", "multiplier_n75",
	}}
}

// All returns the four evaluation workloads in paper order
// (Figs. 14-17).
func All() []Workload {
	return []Workload{Mixed(), QFT(), Qugan(), Arithmetic()}
}

// Batch samples `size` jobs uniformly with replacement, all arriving at
// time 0 (the paper's batch setting). Circuits are cached and shared
// between jobs — the execution pipeline never mutates them.
func (w Workload) Batch(size int, seed int64) ([]*core.Job, error) {
	if size <= 0 {
		return nil, fmt.Errorf("workload: non-positive batch size %d", size)
	}
	if len(w.Circuits) == 0 {
		return nil, fmt.Errorf("workload %q: empty circuit pool", w.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	cache := make(map[string]*circuit.Circuit, len(w.Circuits))
	jobs := make([]*core.Job, 0, size)
	for i := 0; i < size; i++ {
		name := w.Circuits[rng.Intn(len(w.Circuits))]
		c, ok := cache[name]
		if !ok {
			built, err := qlib.Build(name)
			if err != nil {
				return nil, fmt.Errorf("workload %q: %w", w.Name, err)
			}
			c = built
			cache[name] = c
		}
		jobs = append(jobs, &core.Job{ID: i, Circuit: c})
	}
	return jobs, nil
}

// PoissonBatch samples `size` jobs with exponentially distributed
// inter-arrival times of the given mean, modeling the paper's "incoming
// job" mode where requests arrive sequentially.
func (w Workload) PoissonBatch(size int, meanInterarrival float64, seed int64) ([]*core.Job, error) {
	if meanInterarrival < 0 {
		return nil, fmt.Errorf("workload: negative interarrival %v", meanInterarrival)
	}
	jobs, err := w.Batch(size, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	t := 0.0
	for _, j := range jobs {
		j.Arrival = t
		t += rng.ExpFloat64() * meanInterarrival
	}
	return jobs, nil
}

// UniformBatch samples `size` jobs arriving at a deterministic constant
// rate: job i arrives at i*interarrival. It is the zero-variance arrival
// process the online experiments compare Poisson and bursty streams
// against.
func (w Workload) UniformBatch(size int, interarrival float64, seed int64) ([]*core.Job, error) {
	if interarrival < 0 {
		return nil, fmt.Errorf("workload: negative interarrival %v", interarrival)
	}
	jobs, err := w.Batch(size, seed)
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		j.Arrival = float64(i) * interarrival
	}
	return jobs, nil
}

// BurstyBatch samples `size` jobs arriving in bursts: groups of up to
// burstSize jobs land simultaneously, and consecutive bursts are
// separated by exponentially distributed gaps of the given mean. It
// models synchronized tenants (e.g. a shared deadline) stressing the
// admission queue harder than a Poisson stream of the same average rate.
func (w Workload) BurstyBatch(size, burstSize int, meanBurstGap float64, seed int64) ([]*core.Job, error) {
	if burstSize <= 0 {
		return nil, fmt.Errorf("workload: non-positive burst size %d", burstSize)
	}
	if meanBurstGap < 0 {
		return nil, fmt.Errorf("workload: negative burst gap %v", meanBurstGap)
	}
	jobs, err := w.Batch(size, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	t := 0.0
	for i, j := range jobs {
		if i > 0 && i%burstSize == 0 {
			t += rng.ExpFloat64() * meanBurstGap
		}
		j.Arrival = t
	}
	return jobs, nil
}

// DefaultBurstSize is the burst width Arrivals uses for the "bursty"
// process on streams wide enough to hold several such bursts.
const DefaultBurstSize = 4

// Arrivals samples `size` jobs whose arrival times follow the named
// process at the given mean inter-arrival time per job:
//
//	"poisson"  exponential inter-arrival gaps (PoissonBatch)
//	"uniform"  one job every meanInterarrival exactly (UniformBatch)
//	"bursty"   bursts of up to DefaultBurstSize simultaneous jobs, with
//	           burst gaps scaled so the long-run job rate matches
//	           (BurstyBatch); short streams shrink the burst so there
//	           are always at least two bursts — otherwise every job
//	           would land at t=0 and the rate parameter would be a
//	           silent no-op
//
// The empty string selects "poisson". All processes draw the same
// circuit sequence for a given seed, so they are directly comparable.
func (w Workload) Arrivals(process string, size int, meanInterarrival float64, seed int64) ([]*core.Job, error) {
	switch process {
	case "", "poisson":
		return w.PoissonBatch(size, meanInterarrival, seed)
	case "uniform":
		return w.UniformBatch(size, meanInterarrival, seed)
	case "bursty":
		width := DefaultBurstSize
		if m := (size + 1) / 2; width > m {
			width = m
		}
		if width < 1 {
			width = 1
		}
		return w.BurstyBatch(size, width, float64(width)*meanInterarrival, seed)
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (want poisson, uniform, or bursty)", process)
	}
}

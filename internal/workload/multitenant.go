package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cloudqc/internal/core"
)

// TenantSpec describes one tenant of a multi-tenant mix: its circuit
// pool, arrival process, scheduling weight, and deadline distribution.
type TenantSpec struct {
	// Tenant is the id stamped on the generated jobs; unique per mix.
	Tenant int
	// Priority is the tenant's scheduling weight (WFQ admission,
	// tenant-weighted EPR allocation); non-positive means 1.
	Priority int
	// Workload is the tenant's circuit pool.
	Workload Workload
	// Jobs is how many jobs the tenant submits.
	Jobs int
	// Process and MeanInterarrival parameterize the tenant's arrival
	// process (see Workload.Arrivals; empty Process means Poisson).
	Process          string
	MeanInterarrival float64
	// MinSlack and MaxSlack bound the per-job deadline slack, drawn
	// uniformly in [MinSlack, MaxSlack] and scaled by circuit depth:
	// deadline = arrival + depth × slack, in CX units. Both zero means
	// the tenant's jobs carry no deadlines.
	MinSlack, MaxSlack float64
}

// Default slack bounds for deadline-carrying tenant mixes: a job's
// deadline is its arrival plus depth × U[DefaultMinSlack,
// DefaultMaxSlack] CX — tight enough that overload misses deadlines,
// loose enough that an uncontended job meets them.
const (
	DefaultMinSlack = 20.0
	DefaultMaxSlack = 80.0
)

// MultiTenant samples one merged job stream from heterogeneous tenants:
// each tenant draws its own circuit sequence, arrival process, and
// deadline slacks from a per-tenant seeded stream, then the streams
// merge in arrival order with globally unique job IDs (ties broken by
// tenant id, so the merge is deterministic). Job Tenant/Priority/
// Deadline fields are stamped from the spec.
func MultiTenant(specs []TenantSpec, seed int64) ([]*core.Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: empty tenant mix")
	}
	seen := make(map[int]bool, len(specs))
	var all []*core.Job
	for i, spec := range specs {
		if seen[spec.Tenant] {
			return nil, fmt.Errorf("workload: duplicate tenant id %d", spec.Tenant)
		}
		seen[spec.Tenant] = true
		if spec.MinSlack < 0 || spec.MaxSlack < spec.MinSlack {
			return nil, fmt.Errorf("workload: tenant %d has invalid slack range [%v, %v]",
				spec.Tenant, spec.MinSlack, spec.MaxSlack)
		}
		ts := tenantSeed(seed, i)
		jobs, err := spec.Workload.Arrivals(spec.Process, spec.Jobs, spec.MeanInterarrival, ts)
		if err != nil {
			return nil, fmt.Errorf("workload: tenant %d: %w", spec.Tenant, err)
		}
		// Arrivals consumes ts (circuit draws) and ts+1 (arrival gaps);
		// slack draws get their own stream so adding a deadline range
		// never perturbs the circuits or arrivals.
		slackRNG := rand.New(rand.NewSource(ts + 2))
		for _, j := range jobs {
			j.Tenant = spec.Tenant
			j.Priority = spec.Priority
			if spec.MaxSlack > 0 {
				slack := spec.MinSlack + slackRNG.Float64()*(spec.MaxSlack-spec.MinSlack)
				j.Deadline = j.Arrival + float64(j.Circuit.Depth())*slack
			}
		}
		all = append(all, jobs...)
	}
	// Merge in arrival order; per-tenant streams are already
	// arrival-sorted, and the (Arrival, Tenant) key makes the merge
	// deterministic across equal arrivals.
	sort.SliceStable(all, func(i, k int) bool {
		if all[i].Arrival != all[k].Arrival {
			return all[i].Arrival < all[k].Arrival
		}
		return all[i].Tenant < all[k].Tenant
	})
	for i, j := range all {
		j.ID = i
	}
	return all, nil
}

// DefaultTenantMix builds the three-tenant mix the SLO experiments use
// over one workload: priorities 1, 2, and 4, identical arrival processes
// at the given mean inter-arrival time, perTenant jobs each, and
// deadlines drawn with the default slack range.
func DefaultTenantMix(w Workload, perTenant int, process string, meanInterarrival float64) []TenantSpec {
	mix := make([]TenantSpec, 3)
	for i, prio := range []int{1, 2, 4} {
		mix[i] = TenantSpec{
			Tenant:           i,
			Priority:         prio,
			Workload:         w,
			Jobs:             perTenant,
			Process:          process,
			MeanInterarrival: meanInterarrival,
			MinSlack:         DefaultMinSlack,
			MaxSlack:         DefaultMaxSlack,
		}
	}
	return mix
}

// tenantSeed decorrelates per-tenant sample streams with a
// SplitMix64-style finalizer, mirroring the experiment runner's task
// seeding: the value depends only on (seed, tenant index), never on
// slice order or goroutine scheduling.
func tenantSeed(seed int64, tenant int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(tenant+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

package graph

import "math/rand"

// Random returns an Erdős–Rényi G(n, p) graph with unit edge weights,
// repaired to be connected: after sampling, any disconnected component is
// attached to the growing giant component through a random vertex pair.
// The same (n, p, seed) always yields the same graph.
func Random(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 1)
			}
		}
	}
	repairConnectivity(g, rng)
	return g
}

// Ring returns a cycle over n vertices with unit weights (n >= 3), or a
// single edge for n == 2, or an edgeless graph for n < 2. Used as a
// deterministic topology in tests and examples.
func Ring(n int) *Graph {
	g := New(n)
	if n == 2 {
		g.AddEdge(0, 1, 1)
		return g
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	if n >= 3 {
		g.AddEdge(n-1, 0, 1)
	}
	return g
}

// Path returns a path graph 0-1-...-(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// Grid returns a rows×cols grid graph with unit weights; vertex (r, c)
// has index r*cols + c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.AddEdge(v, v+1, 1)
			}
			if r+1 < rows {
				g.AddEdge(v, v+cols, 1)
			}
		}
	}
	return g
}

func repairConnectivity(g *Graph, rng *rand.Rand) {
	comps := g.Components()
	for len(comps) > 1 {
		// Attach each later component to the first with one random edge.
		a := comps[0][rng.Intn(len(comps[0]))]
		b := comps[1][rng.Intn(len(comps[1]))]
		g.AddEdge(a, b, 1)
		comps = g.Components()
	}
}

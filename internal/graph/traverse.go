package graph

// BFSOrder returns the vertices reachable from start in breadth-first
// order. Neighbors are visited in ascending index order, so the result is
// deterministic.
func (g *Graph) BFSOrder(start int) []int {
	g.check(start)
	visited := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int{start}
	visited[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// HopDistances returns the unweighted shortest-path distance (hop count)
// from start to every vertex. Unreachable vertices get -1.
func (g *Graph) HopDistances(start int) []int {
	g.check(start)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsHops returns the hop-count distance matrix via one BFS per
// vertex. Unreachable pairs are -1.
func (g *Graph) AllPairsHops() [][]int {
	d := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		d[u] = g.HopDistances(u)
	}
	return d
}

// HopTree returns start's BFS distances together with the BFS-tree
// parent of every vertex (parent[start] = start; unreachable vertices
// get dist -1 and parent -1). Neighbors are visited in ascending index
// order, so walking parents from v back to start reproduces exactly the
// path ShortestPath(start, v) returns — callers that precompute one
// tree per vertex get ShortestPath answers by table walk instead of a
// fresh BFS per query (see cloud.Path).
func (g *Graph) HopTree(start int) (dist, parent []int) {
	g.check(start)
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[start] = 0
	parent[start] = start
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// ShortestPath returns one shortest path (by hops) from u to v inclusive,
// or nil if v is unreachable from u. Ties break toward lower vertex
// indices, so the result is deterministic.
func (g *Graph) ShortestPath(u, v int) []int {
	g.check(u)
	g.check(v)
	if u == v {
		return []int{u}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for _, nb := range g.Neighbors(x) {
			if prev[nb] < 0 {
				prev[nb] = x
				queue = append(queue, nb)
			}
		}
	}
	if prev[v] < 0 {
		return nil
	}
	var rev []int
	for x := v; x != u; x = prev[x] {
		rev = append(rev, x)
	}
	rev = append(rev, u)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Connected reports whether the graph is connected. The empty graph and
// single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.BFSOrder(0)) == g.n
}

// Components returns the connected components, each sorted ascending, in
// order of their smallest vertex.
func (g *Graph) Components() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if visited[v] {
			continue
		}
		comp := g.BFSOrder(v)
		for _, u := range comp {
			visited[u] = true
		}
		sorted := append([]int(nil), comp...)
		insertionSort(sorted)
		comps = append(comps, sorted)
	}
	return comps
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

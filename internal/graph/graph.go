// Package graph provides the weighted undirected graphs used throughout
// CloudQC: circuit interaction graphs, QPU topologies, and the contracted
// partition graphs exchanged between the placement stages.
//
// Vertices are dense integers in [0, N). Edge weights are float64 and
// symmetric. The zero value of Graph is not usable; construct with New.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected graph over vertices 0..N-1.
// Parallel edges are merged by summing weights. Self-loops are rejected.
type Graph struct {
	n   int
	adj []map[int]float64
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds weight w to the edge {u, v}, creating it if absent.
// Adding a self-loop or an out-of-range endpoint panics: both indicate a
// programming error in the caller, not a recoverable condition.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// SetEdge sets the weight of edge {u, v}, overwriting any previous weight.
// A weight of 0 removes the edge.
func (g *Graph) SetEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if w == 0 {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		return
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// Weight returns the weight of edge {u, v}, or 0 if the edge is absent.
func (g *Graph) Weight(u, v int) float64 {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// WeightedDegree returns the sum of edge weights incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	g.check(u)
	var s float64
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// Neighbors returns the neighbors of u in ascending order. The returned
// slice is freshly allocated; callers may modify it.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	ns := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		ns = append(ns, v)
	}
	sort.Ints(ns)
	return ns
}

// Edge is one undirected edge with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns all edges sorted by (U, V). Each undirected edge appears
// exactly once with U < V.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// NumEdges returns the number of distinct undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// TotalWeight returns the sum of all edge weights (each edge counted once).
func (g *Graph) TotalWeight() float64 {
	var s float64
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				s += w
			}
		}
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			c.adj[u][v] = w
		}
	}
	return c
}

// Subgraph returns the induced subgraph on the given vertices along with
// the mapping from new vertex index to original vertex. Duplicate vertices
// in the input are ignored.
func (g *Graph) Subgraph(vertices []int) (*Graph, []int) {
	seen := make(map[int]bool, len(vertices))
	var keep []int
	for _, v := range vertices {
		g.check(v)
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sort.Ints(keep)
	index := make(map[int]int, len(keep))
	for i, v := range keep {
		index[v] = i
	}
	sub := New(len(keep))
	for i, v := range keep {
		for nb, w := range g.adj[v] {
			if j, ok := index[nb]; ok && j > i {
				sub.AddEdge(i, j, w)
			}
		}
	}
	return sub, keep
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

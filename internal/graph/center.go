package graph

// Center returns the vertex minimizing eccentricity (the longest hop
// distance to any reachable vertex), breaking ties first by higher
// weighted degree and then by lower index. For a disconnected graph the
// center is computed over each vertex's reachable set, which makes the
// function total; callers that care should check Connected first.
//
// Center panics on an empty graph.
func (g *Graph) Center() int {
	if g.n == 0 {
		panic("graph: center of empty graph")
	}
	best, bestEcc, bestDeg := -1, -1, 0.0
	for v := 0; v < g.n; v++ {
		ecc := 0
		for _, d := range g.HopDistances(v) {
			if d > ecc {
				ecc = d
			}
		}
		deg := g.WeightedDegree(v)
		switch {
		case best < 0, ecc < bestEcc, ecc == bestEcc && deg > bestDeg:
			best, bestEcc, bestDeg = v, ecc, deg
		}
	}
	return best
}

type closeCand struct {
	vertex int
	d      int
	deg    float64
}

func (a closeCand) less(b closeCand) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	if a.deg != b.deg {
		return a.deg > b.deg
	}
	return a.vertex < b.vertex
}

// KClosest returns up to k vertices closest to v by hop distance,
// excluding v itself, preferring smaller distance, then higher weighted
// degree, then lower index. Unreachable vertices are never returned.
func (g *Graph) KClosest(v, k int) []int {
	g.check(v)
	dist := g.HopDistances(v)
	var cs []closeCand
	for u := 0; u < g.n; u++ {
		if u == v || dist[u] < 0 {
			continue
		}
		cs = append(cs, closeCand{vertex: u, d: dist[u], deg: g.WeightedDegree(u)})
	}
	// Insertion sort keeps determinism explicit; candidate lists here are
	// small (cloud topologies have tens of QPUs).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].less(cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if k > len(cs) {
		k = len(cs)
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, cs[i].vertex)
	}
	return out
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSOrderPath(t *testing.T) {
	g := Path(4)
	got := g.BFSOrder(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", got, want)
		}
	}
}

func TestBFSOrderFromMiddle(t *testing.T) {
	g := Path(5)
	got := g.BFSOrder(2)
	// Neighbors visited in ascending order: 1 before 3.
	want := []int{2, 1, 3, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", got, want)
		}
	}
}

func TestHopDistancesPath(t *testing.T) {
	g := Path(5)
	d := g.HopDistances(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := g.HopDistances(0)
	if d[2] != -1 {
		t.Fatalf("dist to isolated vertex = %d, want -1", d[2])
	}
}

func TestShortestPathRing(t *testing.T) {
	g := Ring(6)
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Fatalf("path length = %d (%v), want 4 vertices", len(p), p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path uses non-edge %d-%d", p[i], p[i+1])
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := Path(3)
	p := g.ShortestPath(1, 1)
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("self path = %v, want [1]", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if p := g.ShortestPath(0, 3); p != nil {
		t.Fatalf("path across components = %v, want nil", p)
	}
}

func TestConnected(t *testing.T) {
	if !Path(5).Connected() {
		t.Fatal("path should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1, 1)
	if g.Connected() {
		t.Fatal("graph with isolated vertices should not be connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("empty and singleton graphs are connected by definition")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

// Property: BFS hop distances obey the triangle inequality on connected
// random graphs: d(a,c) <= d(a,b) + d(b,c).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(12, 0.25, seed)
		d := g.AllPairsHops()
		for a := 0; a < g.N(); a++ {
			for b := 0; b < g.N(); b++ {
				for c := 0; c < g.N(); c++ {
					if d[a][c] > d[a][b]+d[b][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS from any vertex of a Random graph reaches all vertices
// (Random repairs connectivity).
func TestQuickRandomConnected(t *testing.T) {
	f := func(seed int64) bool {
		g := Random(15, 0.1, seed)
		return g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"testing"
	"testing/quick"
)

func TestCenterPath(t *testing.T) {
	// The center of a 5-path is vertex 2.
	if c := Path(5).Center(); c != 2 {
		t.Fatalf("Center(path5) = %d, want 2", c)
	}
}

func TestCenterStar(t *testing.T) {
	g := New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, i, 1)
	}
	if c := g.Center(); c != 0 {
		t.Fatalf("Center(star) = %d, want hub 0", c)
	}
}

func TestCenterTieBreakByDegreeWeight(t *testing.T) {
	// 4-cycle: all vertices have eccentricity 2. Boost vertex 3's weighted
	// degree; it should win the tie.
	g := Ring(4)
	g.SetEdge(3, 0, 10)
	if c := g.Center(); c != 3 && c != 0 {
		t.Fatalf("Center = %d, want 0 or 3 (highest weighted degree)", c)
	}
}

func TestCenterSingleton(t *testing.T) {
	if c := New(1).Center(); c != 0 {
		t.Fatalf("Center(singleton) = %d, want 0", c)
	}
}

func TestCenterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Center of empty graph should panic")
		}
	}()
	New(0).Center()
}

func TestKClosestPath(t *testing.T) {
	g := Path(6)
	got := g.KClosest(0, 3)
	want := []int{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("KClosest = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KClosest = %v, want %v", got, want)
		}
	}
}

func TestKClosestClampsToReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	got := g.KClosest(0, 10)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("KClosest = %v, want [1]", got)
	}
}

// Property: the center's eccentricity is minimal among all vertices.
func TestQuickCenterEccentricityMinimal(t *testing.T) {
	ecc := func(g *Graph, v int) int {
		m := 0
		for _, d := range g.HopDistances(v) {
			if d > m {
				m = d
			}
		}
		return m
	}
	f := func(seed int64) bool {
		g := Random(10, 0.3, seed)
		c := g.Center()
		ce := ecc(g, c)
		for v := 0; v < g.N(); v++ {
			if ecc(g, v) < ce {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges() = %d, want 0", g.NumEdges())
	}
	if g.TotalWeight() != 0 {
		t.Fatalf("TotalWeight() = %v, want 0", g.TotalWeight())
	}
}

func TestAddEdgeAccumulates(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	if w := g.Weight(0, 1); w != 5 {
		t.Fatalf("Weight(0,1) = %v, want 5", w)
	}
	if w := g.Weight(1, 0); w != 5 {
		t.Fatalf("Weight(1,0) = %v, want 5 (symmetry)", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges() = %d, want 1", g.NumEdges())
	}
}

func TestSetEdgeOverwritesAndRemoves(t *testing.T) {
	g := New(3)
	g.SetEdge(0, 2, 4)
	if w := g.Weight(0, 2); w != 4 {
		t.Fatalf("Weight = %v, want 4", w)
	}
	g.SetEdge(0, 2, 7)
	if w := g.Weight(0, 2); w != 7 {
		t.Fatalf("Weight after overwrite = %v, want 7", w)
	}
	g.SetEdge(0, 2, 0)
	if g.HasEdge(0, 2) {
		t.Fatal("edge should be removed by SetEdge(..., 0)")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge self-loop should panic")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex should panic")
		}
	}()
	New(2).AddEdge(0, 2, 1)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1, 2)
	g.AddEdge(0, 2, 1)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("len(Edges) = %d, want 2", len(es))
	}
	if es[0] != (Edge{U: 0, V: 2, W: 1}) || es[1] != (Edge{U: 1, V: 3, W: 2}) {
		t.Fatalf("Edges = %v", es)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 5)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone missing original edge")
	}
}

func TestSubgraph(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	sub, verts := g.Subgraph([]int{1, 2, 4, 2})
	if sub.N() != 3 {
		t.Fatalf("sub.N() = %d, want 3 (duplicates ignored)", sub.N())
	}
	if len(verts) != 3 || verts[0] != 1 || verts[1] != 2 || verts[2] != 4 {
		t.Fatalf("verts = %v, want [1 2 4]", verts)
	}
	// Only the 1-2 edge survives; 4 is isolated in the induced subgraph.
	if sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("induced edges wrong: %v", sub.Edges())
	}
}

func TestWeightedDegree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(0, 2, 2.5)
	if d := g.WeightedDegree(0); d != 4 {
		t.Fatalf("WeightedDegree(0) = %v, want 4", d)
	}
	if d := g.Degree(0); d != 2 {
		t.Fatalf("Degree(0) = %d, want 2", d)
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	if tw := g.TotalWeight(); tw != 5 {
		t.Fatalf("TotalWeight = %v, want 5", tw)
	}
}

// Property: for random graphs, Weight is always symmetric and NumEdges
// matches the length of Edges().
func TestQuickSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := Random(n, 0.3, seed)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && g.Weight(u, v) != g.Weight(v, u) {
					return false
				}
			}
		}
		return len(g.Edges()) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package route

import (
	"testing"
	"testing/quick"

	"cloudqc/internal/graph"
)

func TestKShortestOnRing(t *testing.T) {
	// A 6-ring has exactly two loopless paths between opposite nodes:
	// lengths 3 and 3.
	g := graph.Ring(6)
	paths := KShortest(g, 0, 3, 4)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	for _, p := range paths {
		if len(p) != 4 {
			t.Fatalf("ring path %v should have 4 nodes", p)
		}
		validatePath(t, g, p, 0, 3)
	}
	if samePath(paths[0], paths[1]) {
		t.Fatal("duplicate paths returned")
	}
}

func TestKShortestOrderedByLength(t *testing.T) {
	// Diamond with a long detour: 0-1-3 (short), 0-2-3 (short),
	// 0-4-5-3 (long).
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	paths := KShortest(g, 0, 3, 5)
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	if len(paths[0]) != 3 || len(paths[1]) != 3 || len(paths[2]) != 4 {
		t.Fatalf("path lengths wrong: %v", paths)
	}
}

func TestKShortestUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	if paths := KShortest(g, 0, 3, 2); paths != nil {
		t.Fatalf("unreachable should be nil, got %v", paths)
	}
}

func TestKShortestTrivial(t *testing.T) {
	g := graph.Path(3)
	paths := KShortest(g, 1, 1, 3)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("self path = %v", paths)
	}
	if KShortest(g, 0, 2, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestKShortestLoopless(t *testing.T) {
	g := graph.Random(12, 0.3, 7)
	for _, p := range KShortest(g, 0, 11, 6) {
		seen := map[int]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("path %v revisits %d", p, v)
			}
			seen[v] = true
		}
	}
}

func TestTableLookup(t *testing.T) {
	g := graph.Ring(6)
	tab := NewTable(g, [][2]int{{0, 3}, {3, 0}, {1, 2}}, 3)
	if got := tab.Paths(0, 3); len(got) != 2 {
		t.Fatalf("Paths(0,3) = %v", got)
	}
	// Direction-insensitive.
	if got := tab.Paths(3, 0); len(got) != 2 {
		t.Fatalf("Paths(3,0) = %v", got)
	}
	if tab.Paths(0, 5) != nil {
		t.Fatal("unprecomputed pair should be nil")
	}
}

func TestSelectAvoidsCongestion(t *testing.T) {
	g := graph.Ring(6)
	tab := NewTable(g, [][2]int{{0, 3}}, 3)
	budget := []int{5, 0, 5, 5, 5, 5} // node 1 exhausted
	p := tab.Select(0, 3, budget)
	for _, v := range p {
		if v == 1 {
			t.Fatalf("selected congested path %v", p)
		}
	}
	// With ample budget everywhere, the (lexicographically first)
	// shortest path wins deterministically.
	even := []int{5, 5, 5, 5, 5, 5}
	p2 := tab.Select(0, 3, even)
	validatePath(t, g, p2, 0, 3)
}

func TestSelectNilForUnknownPair(t *testing.T) {
	g := graph.Ring(4)
	tab := NewTable(g, nil, 2)
	if tab.Select(0, 2, []int{1, 1, 1, 1}) != nil {
		t.Fatal("unknown pair should select nil")
	}
}

// Property: on random connected graphs, every returned path is a valid
// simple path with nondecreasing lengths, and the first equals the BFS
// shortest path length.
func TestQuickKShortestValid(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.Random(10, 0.3, seed)
		paths := KShortest(g, 0, 9, 4)
		if len(paths) == 0 {
			return false // Random() repairs connectivity
		}
		want := len(g.ShortestPath(0, 9))
		if len(paths[0]) != want {
			return false
		}
		prev := 0
		for _, p := range paths {
			if p[0] != 0 || p[len(p)-1] != 9 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					return false
				}
			}
			if len(p) < prev {
				return false
			}
			prev = len(p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func validatePath(t *testing.T, g *graph.Graph, p []int, from, to int) {
	t.Helper()
	if p[0] != from || p[len(p)-1] != to {
		t.Fatalf("path %v endpoints wrong", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path %v uses non-edge %d-%d", p, p[i], p[i+1])
		}
	}
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package route provides entanglement-path selection over the quantum
// cloud topology: k-shortest-path enumeration (Yen's algorithm on hop
// counts) and congestion-aware path choice for remote gates.
//
// The paper's model notes that C_ij "depends on the distance between two
// QPUs since it may require entanglement swapping at intermediate
// nodes"; its EPR setting follows concurrent entanglement-routing work
// (Shi & Qian, SIGCOMM 2020). This package supplies the corresponding
// substrate: multi-hop gates can spread their EPR attempts over
// alternative paths instead of always contending on the single shortest
// one.
package route

import (
	"sort"

	"cloudqc/internal/graph"
)

// KShortest returns up to k loopless shortest paths (by hop count) from
// u to v, each inclusive of both endpoints, ordered by length then
// lexicographically. Returns nil when v is unreachable. u == v yields
// the single trivial path.
func KShortest(g *graph.Graph, u, v, k int) [][]int {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(u, v)
	if first == nil {
		return nil
	}
	paths := [][]int{first}
	if u == v {
		return paths
	}
	var candidates [][]int
	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Yen: for each spur node in the previous path, remove the edges
		// used by known paths sharing the root, then find a spur path.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			root := prev[:i+1]
			work := g.Clone()
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, root) {
					work.SetEdge(p[i], p[i+1], 0)
				}
			}
			// Remove root nodes (except spur) by detaching their edges,
			// keeping paths loopless.
			for _, rn := range root[:len(root)-1] {
				for _, nb := range work.Neighbors(rn) {
					work.SetEdge(rn, nb, 0)
				}
			}
			spurPath := work.ShortestPath(spur, v)
			if spurPath == nil {
				continue
			}
			full := append(append([]int(nil), root[:len(root)-1]...), spurPath...)
			if !containsPath(paths, full) && !containsPath(candidates, full) {
				candidates = append(candidates, full)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if len(candidates[a]) != len(candidates[b]) {
				return len(candidates[a]) < len(candidates[b])
			}
			return lexLess(candidates[a], candidates[b])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(set [][]int, p []int) bool {
	for _, q := range set {
		if len(q) != len(p) {
			continue
		}
		same := true
		for i := range q {
			if q[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Table precomputes alternative paths for every QPU pair that needs
// them, so per-round path selection is a lookup.
type Table struct {
	k     int
	paths map[[2]int][][]int
}

// NewTable builds a k-alternative path table over the topology for the
// given QPU pairs (deduplicated, direction-insensitive).
func NewTable(g *graph.Graph, pairs [][2]int, k int) *Table {
	t := &Table{k: k, paths: make(map[[2]int][][]int, len(pairs))}
	for _, pr := range pairs {
		key := normPair(pr[0], pr[1])
		if _, done := t.paths[key]; done {
			continue
		}
		t.paths[key] = KShortest(g, key[0], key[1], k)
	}
	return t
}

// Paths returns the alternatives for a pair (in canonical orientation),
// or nil if the pair was not precomputed.
func (t *Table) Paths(a, b int) [][]int {
	return t.paths[normPair(a, b)]
}

// Select returns the precomputed path whose bottleneck budget is
// largest: max over paths of min over path QPUs of budget. Ties prefer
// shorter paths, then enumeration order. Falls back to nil when the
// pair has no paths.
func (t *Table) Select(a, b int, budget []int) []int {
	paths := t.Paths(a, b)
	if len(paths) == 0 {
		return nil
	}
	best, bestBottleneck := paths[0], bottleneck(paths[0], budget)
	for _, p := range paths[1:] {
		if bn := bottleneck(p, budget); bn > bestBottleneck {
			best, bestBottleneck = p, bn
		}
	}
	return best
}

func bottleneck(path []int, budget []int) int {
	bn := budget[path[0]]
	for _, q := range path[1:] {
		if budget[q] < bn {
			bn = budget[q]
		}
	}
	return bn
}

func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Package simq is a dense state-vector quantum simulator for circuits
// of up to ~20 qubits. CloudQC's placement and scheduling never simulate
// quantum state — simq exists to validate the circuit generator library
// semantically (a GHZ circuit must produce a GHZ state, an adder must
// add) and to let downstream users execute small circuits end to end.
package simq

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"cloudqc/internal/circuit"
)

// maxQubits bounds the dense simulation (2^20 amplitudes = 16 MiB).
const maxQubits = 20

// State is a pure quantum state over n qubits. Amplitude indices use
// qubit 0 as the least significant bit.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> over n qubits.
func NewState(n int) *State {
	if n < 1 || n > maxQubits {
		panic(fmt.Sprintf("simq: qubit count %d outside [1,%d]", n, maxQubits))
	}
	amp := make([]complex128, 1<<n)
	amp[0] = 1
	return &State{n: n, amp: amp}
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state |i>.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// Probability returns |amplitude|^2 of basis state |i>.
func (s *State) Probability(i int) float64 {
	a := s.amp[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns the state's total probability (1 for a valid state).
func (s *State) Norm() float64 {
	var p float64
	for i := range s.amp {
		p += s.Probability(i)
	}
	return p
}

// apply1 applies the 2x2 unitary {{a,b},{c,d}} to qubit q.
func (s *State) apply1(q int, a, b, c, d complex128) {
	bit := 1 << q
	for i := 0; i < len(s.amp); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = a*a0 + b*a1
		s.amp[j] = c*a0 + d*a1
	}
}

// applyControlled applies the 2x2 unitary to target t when control c is 1.
func (s *State) applyControlled(c, t int, u00, u01, u10, u11 complex128) {
	cb, tb := 1<<c, 1<<t
	for i := 0; i < len(s.amp); i++ {
		if i&cb == 0 || i&tb != 0 {
			continue
		}
		j := i | tb
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = u00*a0 + u01*a1
		s.amp[j] = u10*a0 + u11*a1
	}
}

// Apply executes one gate. Measurement gates require ApplyMeasure (they
// need randomness); passing one here panics.
func (s *State) Apply(g circuit.Gate) {
	isq2 := complex(1/math.Sqrt2, 0)
	switch g.Name {
	case "h":
		s.apply1(g.Qubits[0], isq2, isq2, isq2, -isq2)
	case "x":
		s.apply1(g.Qubits[0], 0, 1, 1, 0)
	case "y":
		s.apply1(g.Qubits[0], 0, -1i, 1i, 0)
	case "z":
		s.apply1(g.Qubits[0], 1, 0, 0, -1)
	case "s":
		s.apply1(g.Qubits[0], 1, 0, 0, 1i)
	case "sdg":
		s.apply1(g.Qubits[0], 1, 0, 0, -1i)
	case "t":
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case "tdg":
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case "rx":
		c, sn := complex(math.Cos(g.Param/2), 0), complex(math.Sin(g.Param/2), 0)
		s.apply1(g.Qubits[0], c, -1i*sn, -1i*sn, c)
	case "ry":
		c, sn := complex(math.Cos(g.Param/2), 0), complex(math.Sin(g.Param/2), 0)
		s.apply1(g.Qubits[0], c, -sn, sn, c)
	case "rz", "u1", "p":
		s.apply1(g.Qubits[0], cmplx.Exp(complex(0, -g.Param/2)), 0, 0, cmplx.Exp(complex(0, g.Param/2)))
	case "cx":
		s.applyControlled(g.Qubits[0], g.Qubits[1], 0, 1, 1, 0)
	case "cz":
		s.applyControlled(g.Qubits[0], g.Qubits[1], 1, 0, 0, -1)
	case "cp", "cu1", "crz":
		s.applyControlled(g.Qubits[0], g.Qubits[1], 1, 0, 0, cmplx.Exp(complex(0, g.Param)))
	case "swap":
		a, b := g.Qubits[0], g.Qubits[1]
		s.applyControlled(a, b, 0, 1, 1, 0)
		s.applyControlled(b, a, 0, 1, 1, 0)
		s.applyControlled(a, b, 0, 1, 1, 0)
	case "measure":
		panic("simq: use ApplyMeasure for measurement gates")
	default:
		panic(fmt.Sprintf("simq: unsupported gate %q", g.Name))
	}
}

// ApplyMeasure measures qubit q in the computational basis, collapsing
// the state, and returns the outcome bit.
func (s *State) ApplyMeasure(q int, rng *rand.Rand) int {
	bit := 1 << q
	var p1 float64
	for i := range s.amp {
		if i&bit != 0 {
			p1 += s.Probability(i)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	// Project and renormalize.
	keep := 0
	if outcome == 1 {
		keep = bit
	}
	var norm float64
	for i := range s.amp {
		if i&bit != keep {
			s.amp[i] = 0
		} else {
			norm += s.Probability(i)
		}
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
	return outcome
}

// Run executes a whole circuit on |0...0> and returns the final state
// plus measurement outcomes indexed by qubit (-1 for unmeasured qubits).
// Gates after a qubit's measurement keep operating on the collapsed
// state, matching the circuit model used throughout this repository.
func Run(c *circuit.Circuit, seed int64) (*State, []int) {
	s := NewState(c.NumQubits())
	rng := rand.New(rand.NewSource(seed))
	outcomes := make([]int, c.NumQubits())
	for i := range outcomes {
		outcomes[i] = -1
	}
	for _, g := range c.Gates() {
		if g.Kind == circuit.Measure {
			outcomes[g.Qubits[0]] = s.ApplyMeasure(g.Qubits[0], rng)
			continue
		}
		s.Apply(g)
	}
	return s, outcomes
}

// Probabilities returns the full basis-state probability vector.
func (s *State) Probabilities() []float64 {
	ps := make([]float64, len(s.amp))
	for i := range s.amp {
		ps[i] = s.Probability(i)
	}
	return ps
}

package simq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudqc/internal/circuit"
	"cloudqc/internal/qlib"
)

const eps = 1e-9

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Probability(0) != 1 {
		t.Fatalf("P(|000>) = %v", s.Probability(0))
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestNewStateBounds(t *testing.T) {
	for _, n := range []int{0, 21} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewState(%d) should panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.Apply(circuit.H(0))
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(1)-0.5) > eps {
		t.Fatalf("H|0> probs = %v, %v", s.Probability(0), s.Probability(1))
	}
	s.Apply(circuit.H(0)) // H is self-inverse
	if math.Abs(s.Probability(0)-1) > eps {
		t.Fatalf("HH|0> != |0>: %v", s.Probability(0))
	}
}

func TestXFlips(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.X(1))
	if math.Abs(s.Probability(0b10)-1) > eps {
		t.Fatalf("X(1)|00> probs: %v", s.Probabilities())
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.H(0))
	s.Apply(circuit.CX(0, 1))
	if math.Abs(s.Probability(0b00)-0.5) > eps || math.Abs(s.Probability(0b11)-0.5) > eps {
		t.Fatalf("bell probs: %v", s.Probabilities())
	}
	if s.Probability(0b01) > eps || s.Probability(0b10) > eps {
		t.Fatalf("bell cross terms: %v", s.Probabilities())
	}
}

func TestGHZStateFromGenerator(t *testing.T) {
	// The qlib GHZ generator must produce (|0..0> + |1..1>)/sqrt(2)
	// before measurement.
	c := qlib.GHZ(8)
	s := NewState(8)
	for _, g := range c.Gates() {
		if g.Kind == circuit.Measure {
			break
		}
		s.Apply(g)
	}
	all1 := 1<<8 - 1
	if math.Abs(s.Probability(0)-0.5) > eps || math.Abs(s.Probability(all1)-0.5) > eps {
		t.Fatalf("GHZ endpoint probs: %v, %v", s.Probability(0), s.Probability(all1))
	}
}

func TestBVRecoversHiddenString(t *testing.T) {
	// Bernstein–Vazirani measures the hidden string deterministically.
	c := qlib.BV(9, 4) // 8 data qubits, 4 ones
	_, outcomes := Run(c, 1)
	var recovered, want int
	data := 8
	for i := 0; i < data; i++ {
		if outcomes[i] == 1 {
			recovered |= 1 << i
		}
		if (i*4)/data != ((i+1)*4)/data { // generator's secret-bit rule
			want |= 1 << i
		}
	}
	if recovered != want {
		t.Fatalf("BV recovered %b, want %b", recovered, want)
	}
}

func TestAdderAdds(t *testing.T) {
	// 4-bit Cuccaro adder (n=10): the generator loads a=0101=5 (bits
	// 0,2 of a set) and b=0011=3, so the sum register must read 8.
	c := qlib.Adder(10)
	_, outcomes := Run(c, 1)
	m := 4
	b := func(i int) int { return 1 + 2*i }
	sum := 0
	for i := 0; i < m; i++ {
		if outcomes[b(i)] == 1 {
			sum |= 1 << i
		}
	}
	if outcomes[9] == 1 { // carry out
		sum |= 1 << m
	}
	// Generator operand pattern: a bits set where i%2==0 -> a = 0101b = 5;
	// b bits set where i%4<2 -> b = 0011b = 3.
	if sum != 8 {
		t.Fatalf("adder produced %d, want 8", sum)
	}
}

func TestQFTInverseRoundTrip(t *testing.T) {
	// QFT then inverse QFT on a basis state returns the basis state.
	n := 4
	fwd := qlib.QFT(n)
	s := NewState(n)
	s.Apply(circuit.X(1)) // start in |0010>
	var gates []circuit.Gate
	for _, g := range fwd.Gates() {
		if g.Kind != circuit.Measure {
			gates = append(gates, g)
		}
	}
	for _, g := range gates {
		s.Apply(g)
	}
	// Inverse: reversed gate order with negated parameters.
	for i := len(gates) - 1; i >= 0; i-- {
		g := gates[i]
		g.Param = -g.Param
		s.Apply(g)
	}
	if math.Abs(s.Probability(0b0010)-1) > 1e-6 {
		t.Fatalf("QFT round trip lost the state: P = %v", s.Probability(0b0010))
	}
}

func TestSwapGate(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.X(0))
	s.Apply(circuit.Swap(0, 1))
	if math.Abs(s.Probability(0b10)-1) > eps {
		t.Fatalf("swap probs: %v", s.Probabilities())
	}
}

func TestSwapTestOnEqualStates(t *testing.T) {
	// Swap test on identical registers (both |0>): the ancilla must
	// always measure 0 — validating qlib's full Fredkin decomposition.
	c := qlib.SwapTest(3)
	for seed := int64(0); seed < 20; seed++ {
		_, outcomes := Run(c, seed)
		if outcomes[0] != 0 {
			t.Fatalf("swap test on equal states measured ancilla=1 (seed %d)", seed)
		}
	}
}

func TestWStateAmplitudes(t *testing.T) {
	// Before measurement, the n=5 W state has probability 1/n on each
	// single-excitation basis state and zero elsewhere.
	n := 5
	c := qlib.WState(n)
	s := NewState(n)
	for _, g := range c.Gates() {
		if g.Kind == circuit.Measure {
			break
		}
		s.Apply(g)
	}
	for basis := 0; basis < 1<<n; basis++ {
		p := s.Probability(basis)
		if popcount(basis) == 1 {
			if math.Abs(p-1/float64(n)) > 1e-9 {
				t.Fatalf("P(%05b) = %v, want %v", basis, p, 1/float64(n))
			}
		} else if p > 1e-9 {
			t.Fatalf("P(%05b) = %v, want 0", basis, p)
		}
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	// One Grover iteration over m=4 data qubits amplifies the all-ones
	// string to ~47% (sin^2(3θ), sin θ = 1/4) from the uniform 1/16.
	c := qlib.Grover(8)
	s := NewState(8)
	for _, g := range c.Gates() {
		if g.Kind == circuit.Measure {
			break
		}
		s.Apply(g)
	}
	// Marginal probability that data qubits 0..3 are all ones.
	var marked float64
	for basis := 0; basis < 1<<8; basis++ {
		if basis&0b1111 == 0b1111 {
			marked += s.Probability(basis)
		}
	}
	if marked < 0.4 || marked > 0.55 {
		t.Fatalf("P(marked) = %v, want ~0.47", marked)
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestMeasureCollapsesState(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.H(0))
	s.Apply(circuit.CX(0, 1))
	rng := rand.New(rand.NewSource(5))
	first := s.ApplyMeasure(0, rng)
	// Entangled partner must agree deterministically now.
	second := s.ApplyMeasure(1, rng)
	if first != second {
		t.Fatalf("bell measurement disagreement: %d vs %d", first, second)
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("collapsed norm = %v", s.Norm())
	}
}

func TestMeasureStatistics(t *testing.T) {
	ones := 0
	const trials = 2000
	for seed := int64(0); seed < trials; seed++ {
		s := NewState(1)
		s.Apply(circuit.H(0))
		rng := rand.New(rand.NewSource(seed))
		ones += s.ApplyMeasure(0, rng)
	}
	frac := float64(ones) / trials
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("H|0> measurement frequency %v, want ~0.5", frac)
	}
}

func TestRunReportsUnmeasuredAsMinusOne(t *testing.T) {
	c := circuit.New("partial", 3)
	c.Append(circuit.H(0), circuit.M(0))
	_, outcomes := Run(c, 1)
	if outcomes[1] != -1 || outcomes[2] != -1 {
		t.Fatalf("unmeasured outcomes = %v", outcomes)
	}
	if outcomes[0] != 0 && outcomes[0] != 1 {
		t.Fatalf("measured outcome = %d", outcomes[0])
	}
}

func TestUnsupportedGatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown gate should panic")
		}
	}()
	NewState(1).Apply(circuit.Gate{Name: "frob", Kind: circuit.Single, Qubits: [2]int{0, -1}})
}

func TestMeasureViaApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply(measure) should panic")
		}
	}()
	NewState(1).Apply(circuit.M(0))
}

// Property: every unitary gate preserves the norm.
func TestQuickUnitarityPreservesNorm(t *testing.T) {
	gates := []func(a, b int, p float64) circuit.Gate{
		func(a, _ int, _ float64) circuit.Gate { return circuit.H(a) },
		func(a, _ int, p float64) circuit.Gate { return circuit.RX(a, p) },
		func(a, _ int, p float64) circuit.Gate { return circuit.RY(a, p) },
		func(a, _ int, p float64) circuit.Gate { return circuit.RZ(a, p) },
		func(a, b int, _ float64) circuit.Gate { return circuit.CX(a, b) },
		func(a, b int, _ float64) circuit.Gate { return circuit.CZ(a, b) },
		func(a, b int, p float64) circuit.Gate { return circuit.CP(a, b, p) },
		func(a, b int, _ float64) circuit.Gate { return circuit.Swap(a, b) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := NewState(n)
		for i := 0; i < 25; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if b == a {
				b = (b + 1) % n
			}
			g := gates[rng.Intn(len(gates))](a, b, rng.Float64()*2*math.Pi)
			s.Apply(g)
		}
		return math.Abs(s.Norm()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Toffoli decomposed by qlib acts as a doubly-controlled NOT
// on every computational basis state of 3 qubits.
func TestToffoliDecompositionTruthTable(t *testing.T) {
	for input := 0; input < 8; input++ {
		c := circuit.New("tof", 3)
		for q := 0; q < 3; q++ {
			if input&(1<<q) != 0 {
				c.Append(circuit.X(q))
			}
		}
		qlib.AppendToffoli(c, 0, 1, 2)
		s := NewState(3)
		for _, g := range c.Gates() {
			s.Apply(g)
		}
		want := input
		if input&0b011 == 0b011 {
			want ^= 0b100
		}
		if p := s.Probability(want); math.Abs(p-1) > 1e-9 {
			t.Fatalf("toffoli input %03b: P(%03b) = %v", input, want, p)
		}
	}
}

// Package plan is CloudQC's compile-once plan cache: the expensive,
// state-independent artifacts of admitting a job — the placement
// assignment, its communication cost and remote-operation count, and
// the contracted remote DAG skeleton with its critical-path priorities
// — memoized per (circuit fingerprint, cloud shape, free-capacity
// signature).
//
// Workload generators and the cloudqcd service draw jobs from a small
// library of circuit templates, yet the controller used to re-run the
// full placement pipeline (community detection → multilevel
// partitioning → part mapping) and re-contract the remote DAG for every
// arriving job. The cache makes repeated templates nearly free to
// admit while staying bit-identical to the cold path: entries are
// keyed by the exact per-QPU free-computing snapshot the placer saw,
// and a deterministic placer is a pure function of (circuit structure,
// free snapshot), so a hit returns precisely the placement a fresh
// Place call would have computed — and, a fortiori, one whose QPUs
// still have the room it needs. Any change in free capacity changes
// the signature and forces the full placer.
//
// The cache is bounded (LRU eviction), counts hits/misses/evictions,
// and is safe for concurrent use. One cache belongs to one controller
// configuration: the key does not cover the placer's parameters or the
// latency model, which are fixed per controller.
package plan

import (
	"sync"

	"cloudqc/internal/circuit"
	"cloudqc/internal/sched"
)

// DefaultCapacity bounds a controller's plan cache when no explicit
// size is configured: enough for a qlib-scale template library across
// dozens of distinct cloud occupancy states.
const DefaultCapacity = 256

// Key identifies one cached plan: what circuit, on what cloud, under
// which free-capacity state.
type Key struct {
	// Circuit is the template's structural fingerprint.
	Circuit circuit.Fingerprint
	// Cloud is the cloud's immutable shape signature (cloud.Signature).
	Cloud uint64
	// Free is the free-capacity signature: a hash of the per-QPU free
	// computing-qubit snapshot at placement time. Entries additionally
	// store the full snapshot, compared verbatim on lookup, so a hash
	// collision degrades to a miss instead of a wrong reuse.
	Free uint64
}

// FreeSignature hashes a per-QPU free computing-qubit snapshot into the
// Key.Free field (FNV-1a over the counts).
func FreeSignature(free []int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, f := range free {
		v := uint64(int64(f))
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Entry is one cached compile result. All fields are shared, read-only:
// concurrent jobs admitted from the same entry alias the same
// assignment slice, DAG skeleton, and priority slice, none of which
// execution mutates (sched.JobState keeps its own per-run arrays).
type Entry struct {
	// Assign maps each qubit to its QPU — Placement.QubitToQPU. Callers
	// must not modify it.
	Assign []int
	// CommCost is the paper's placement objective Σ D_ij·C_π(i)π(j)
	// under Assign.
	CommCost float64
	// RemoteOps counts two-qubit gates crossing QPUs under Assign.
	RemoteOps int
	// DAG is the contracted remote DAG skeleton for Assign.
	DAG *sched.RemoteDAG
	// Prio is DAG.Priorities(), computed once per template instead of
	// once per job.
	Prio []int

	// free is the exact snapshot the entry was compiled under, verified
	// on lookup.
	free []int
}

// Stats are a cache's cumulative counters.
type Stats struct {
	// Hits and Misses count Lookup outcomes; Evictions counts entries
	// dropped by the LRU bound or a capacity shrink.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Size is the current entry count, Capacity the LRU bound.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Enabled is false when the owning controller runs without a cache
	// (non-deterministic placer, or caching disabled by configuration).
	Enabled bool `json:"enabled"`
}

// Cache is a bounded, thread-safe LRU of compile plans.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*node
	// Intrusive LRU list: head is most recently used, tail next to evict.
	head, tail *node
	hits       int64
	misses     int64
	evictions  int64
}

// node is one LRU slot.
type node struct {
	key        Key
	entry      *Entry
	prev, next *node
}

// New returns an empty cache holding at most capacity entries
// (DefaultCapacity when non-positive).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{capacity: capacity, entries: make(map[Key]*node)}
}

// Lookup returns the plan cached under key, verifying the stored free
// snapshot matches free verbatim (a signature collision is a miss, not
// a wrong plan). A hit refreshes the entry's LRU position.
func (c *Cache) Lookup(key Key, free []int) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok && sameSnapshot(n.entry.free, free) {
		c.moveToFront(n)
		c.hits++
		return n.entry, true
	}
	c.misses++
	return nil, false
}

// Insert stores a freshly compiled plan under key, recording the free
// snapshot it was compiled against (copied) and evicting the least
// recently used entry when full. Re-inserting an existing key replaces
// its entry.
func (c *Cache) Insert(key Key, free []int, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.free = append([]int(nil), free...)
	if n, ok := c.entries[key]; ok {
		n.entry = e
		c.moveToFront(n)
		return
	}
	for len(c.entries) >= c.capacity {
		c.evict()
	}
	n := &node{key: key, entry: e}
	c.entries[key] = n
	c.pushFront(n)
}

// SetCapacity re-bounds the cache (DefaultCapacity when non-positive),
// evicting LRU entries down to the new capacity.
func (c *Cache) SetCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	for len(c.entries) > c.capacity {
		c.evict()
	}
}

// Stats returns the cache's counters. A live Cache always reports
// Enabled; controllers running without a cache report the zero Stats.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Capacity:  c.capacity,
		Enabled:   true,
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func sameSnapshot(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evict drops the LRU tail. Callers hold c.mu.
func (c *Cache) evict() {
	n := c.tail
	if n == nil {
		return
	}
	c.unlink(n)
	delete(c.entries, n.key)
	c.evictions++
}

func (c *Cache) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

package plan

import (
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/sched"
)

func key(n uint64) Key {
	return Key{Circuit: circuit.Fingerprint{Hash: n, Qubits: 4, Gates: 8}, Cloud: 1, Free: n}
}

func entry(assign ...int) *Entry {
	return &Entry{Assign: assign, DAG: &sched.RemoteDAG{}}
}

// TestLookupInsert: basic hit/miss behavior and counter accounting.
func TestLookupInsert(t *testing.T) {
	c := New(4)
	free := []int{5, 5, 5}
	if _, ok := c.Lookup(key(1), free); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(key(1), free, entry(0, 0, 1))
	e, ok := c.Lookup(key(1), free)
	if !ok || len(e.Assign) != 3 {
		t.Fatalf("lookup after insert: ok=%v entry=%+v", ok, e)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 || s.Capacity != 4 || !s.Enabled {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSnapshotVerification: a lookup whose key matches but whose free
// snapshot differs (a signature collision, or capacity drift under a
// colliding hash) must miss rather than return a plan compiled for a
// different cloud state — the invariant that keeps cached placements
// from being reused where they no longer fit.
func TestSnapshotVerification(t *testing.T) {
	c := New(4)
	c.Insert(key(7), []int{5, 5, 5}, entry(0, 1, 2))
	if _, ok := c.Lookup(key(7), []int{5, 4, 5}); ok {
		t.Fatal("hit despite differing free snapshot under the same key")
	}
	if _, ok := c.Lookup(key(7), []int{5, 5}); ok {
		t.Fatal("hit despite differing snapshot length")
	}
	if _, ok := c.Lookup(key(7), []int{5, 5, 5}); !ok {
		t.Fatal("miss on the matching snapshot")
	}
}

// TestInsertCopiesSnapshot: the cache must not alias the caller's
// (reused scratch) snapshot buffer.
func TestInsertCopiesSnapshot(t *testing.T) {
	c := New(4)
	scratch := []int{5, 5, 5}
	c.Insert(key(1), scratch, entry(0))
	scratch[0] = 9 // the controller reuses its scratch next round
	if _, ok := c.Lookup(key(1), []int{5, 5, 5}); !ok {
		t.Fatal("mutating the caller's snapshot buffer corrupted the entry")
	}
}

// TestLRUEviction: filling past capacity evicts least-recently-used
// first, and a hit refreshes recency.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	free := []int{5}
	c.Insert(key(1), free, entry(0))
	c.Insert(key(2), free, entry(0))
	if _, ok := c.Lookup(key(1), free); !ok { // refresh 1; 2 is now LRU
		t.Fatal("miss on resident entry")
	}
	c.Insert(key(3), free, entry(0)) // evicts 2
	if _, ok := c.Lookup(key(2), free); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []Key{key(1), key(3)} {
		if _, ok := c.Lookup(k, free); !ok {
			t.Fatalf("recently used entry %v was evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats after eviction = %+v", s)
	}
}

// TestSetCapacity: shrinking evicts down to the bound; non-positive
// resets to the default.
func TestSetCapacity(t *testing.T) {
	c := New(8)
	free := []int{5}
	for i := uint64(1); i <= 6; i++ {
		c.Insert(key(i), free, entry(0))
	}
	c.SetCapacity(2)
	if s := c.Stats(); s.Size != 2 || s.Capacity != 2 || s.Evictions != 4 {
		t.Fatalf("stats after shrink = %+v", s)
	}
	// The two most recently inserted survive.
	for _, k := range []Key{key(5), key(6)} {
		if _, ok := c.Lookup(k, free); !ok {
			t.Fatalf("entry %v should have survived the shrink", k)
		}
	}
	c.SetCapacity(0)
	if s := c.Stats(); s.Capacity != DefaultCapacity {
		t.Fatalf("capacity after reset = %d, want %d", s.Capacity, DefaultCapacity)
	}
}

// TestReinsertReplaces: inserting an existing key swaps the entry
// without growing the cache.
func TestReinsertReplaces(t *testing.T) {
	c := New(2)
	free := []int{5}
	c.Insert(key(1), free, entry(0))
	c.Insert(key(1), free, entry(1))
	if c.Len() != 1 {
		t.Fatalf("len = %d after re-insert, want 1", c.Len())
	}
	e, ok := c.Lookup(key(1), free)
	if !ok || e.Assign[0] != 1 {
		t.Fatalf("re-insert did not replace: ok=%v assign=%v", ok, e.Assign)
	}
}

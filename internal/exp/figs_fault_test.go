package exp

import (
	"strings"
	"testing"
)

// TestRescueImprovesFaultAttainment is the fault figure's acceptance
// criterion: under injected QPU outages, checkpoint-rescue strictly
// improves SLO attainment over no-recovery for at least one workload,
// the improvement is accounted for by rescued evictions, and the
// no-recovery arm's losses are accounted for by outage failures. The
// grid is the smallest one that exhibits the effect (2 jobs/tenant, one
// outage rate), deterministic by seeding.
func TestRescueImprovesFaultAttainment(t *testing.T) {
	o := Defaults()
	o.Reps = 1
	rows, err := Faults(o, "poisson", 2, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 1 rate × 3 arms.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byArm := map[string]map[string]FaultRow{}
	for _, r := range rows {
		if byArm[r.Workload] == nil {
			byArm[r.Workload] = map[string]FaultRow{}
		}
		byArm[r.Workload][r.Policy] = r
		if r.Stream.Completed+r.Stream.Failed != 6 {
			t.Fatalf("row %s/%s accounts for %d jobs, want 6",
				r.Workload, r.Policy, r.Stream.Completed+r.Stream.Failed)
		}
		if r.Faults.QPUOutages != int64(r.Outages) {
			t.Fatalf("row %s/%s fired %d outages, want %d",
				r.Workload, r.Policy, r.Faults.QPUOutages, r.Outages)
		}
		switch r.Policy {
		case "None":
			// No-recovery loses exactly the jobs the outages killed.
			if int64(r.Stream.Failed) != r.Faults.FailedOutage+r.Faults.RetryExhausted {
				t.Fatalf("row %s/None: %d failures vs injector %+v",
					r.Workload, r.Stream.Failed, r.Faults)
			}
			if r.Faults.RescuedOutage != 0 {
				t.Fatalf("row %s/None rescued a job: %+v", r.Workload, r.Faults)
			}
		case "Rescue", "Rescue+Reroute":
			if r.Faults.FailedOutage != 0 {
				t.Fatalf("row %s/%s failed a job to an outage under rescue: %+v",
					r.Workload, r.Policy, r.Faults)
			}
		}
	}
	improved := false
	for wl, arms := range byArm {
		none, rescue := arms["None"], arms["Rescue"]
		if rescue.SLO.Attainment > none.SLO.Attainment {
			improved = true
			if rescue.Faults.RescuedOutage == 0 {
				t.Fatalf("%s: attainment improved (%.2f > %.2f) without a rescued eviction: %+v",
					wl, rescue.SLO.Attainment, none.SLO.Attainment, rescue.Faults)
			}
		}
	}
	if !improved {
		t.Fatalf("rescue never strictly improved attainment over no-recovery:\n%s", RenderFaults(rows))
	}
	text := RenderFaults(rows)
	for _, col := range []string{"Outages", "Recovery", "Attain", "Rescued", "FailedOut", "Reroutes"} {
		if !strings.Contains(text, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, text)
		}
	}
}

package exp

import (
	"strings"
	"testing"

	"cloudqc/internal/core"
)

// TestRescueImprovesAttainment is the preemption figure's acceptance
// criterion: under load, the deadline-rescue arm strictly improves SLO
// attainment over run-to-completion for at least one workload, the
// rescue arm's counters account for the improvement, and arms never
// lose jobs. The grid is the smallest one that exhibits the effect
// (2 jobs/tenant, one arrival rate), deterministic by seeding.
func TestRescueImprovesAttainment(t *testing.T) {
	o := Defaults()
	o.Reps = 1
	rows, err := Preemption(o, "poisson", 2, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 1 rate × 3 arms.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byArm := map[string]map[string]PreemptRow{}
	for _, r := range rows {
		if byArm[r.Workload] == nil {
			byArm[r.Workload] = map[string]PreemptRow{}
		}
		byArm[r.Workload][r.Policy] = r
		if r.Stream.Completed+r.Stream.Failed != 6 {
			t.Fatalf("row %s/%s accounts for %d jobs, want 6",
				r.Workload, r.Policy, r.Stream.Completed+r.Stream.Failed)
		}
		if r.Policy == "Off" && r.Preempt != (core.PreemptStats{}) {
			t.Fatalf("off arm counted preemptions: %+v", r)
		}
		if r.Preempt.Resumes != r.Preempt.Preemptions {
			t.Fatalf("row %s/%s leaked a preempted job: %+v", r.Workload, r.Policy, r.Preempt)
		}
	}
	improved := false
	for wl, arms := range byArm {
		off, rescue := arms["Off"], arms["Rescue"]
		if rescue.SLO.Attainment > off.SLO.Attainment {
			improved = true
			if rescue.Preempt.RescuedDeadlines == 0 {
				t.Fatalf("%s: attainment improved (%.2f > %.2f) without a rescued deadline: %+v",
					wl, rescue.SLO.Attainment, off.SLO.Attainment, rescue.Preempt)
			}
		}
	}
	if !improved {
		t.Fatalf("rescue never strictly improved attainment over off:\n%s", RenderPreemption(rows))
	}
	text := RenderPreemption(rows)
	for _, col := range []string{"Preempt", "Attain", "P99JCT", "Rescued"} {
		if !strings.Contains(text, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, text)
		}
	}
}

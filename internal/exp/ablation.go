package exp

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// Ablations probe the design choices DESIGN.md calls out: the
// imbalance-factor sweep in placement, the batch manager's ordering,
// congestion-aware multipath routing, and purification overhead under
// link-fidelity constraints.

// AblationImbalance compares CloudQC placement restricted to a single
// imbalance factor against the full Algorithm 1 sweep, by communication
// cost on one circuit. X carries the single-α values; the final series
// entry (X = -1) is the full sweep.
func AblationImbalance(o Options, circuitName string) (SweepSeries, error) {
	o = o.withDefaults()
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	s := SweepSeries{Method: "CloudQC"}
	alphas := place.DefaultConfig().ImbalanceFactors
	for _, alpha := range alphas {
		cfg := place.DefaultConfig()
		cfg.ImbalanceFactors = []float64{alpha}
		cfg.Seed = o.Seed
		pl, err := place.NewCloudQC(cfg).Place(cl, c)
		if err != nil {
			return SweepSeries{}, fmt.Errorf("ablation imbalance α=%v: %w", alpha, err)
		}
		s.X = append(s.X, alpha)
		s.Y = append(s.Y, place.CommCost(c, cl, pl.QubitToQPU))
	}
	full := place.DefaultConfig()
	full.Seed = o.Seed
	pl, err := place.NewCloudQC(full).Place(cl, c)
	if err != nil {
		return SweepSeries{}, err
	}
	s.X = append(s.X, -1) // sentinel: full sweep
	s.Y = append(s.Y, place.CommCost(c, cl, pl.QubitToQPU))
	return s, nil
}

// AblationOrderRow is one batch-ordering policy's outcome.
type AblationOrderRow struct {
	Order   string
	MeanJCT float64
	P90JCT  float64
}

// AblationBatchOrder compares the batch manager's ascending-intensity
// order (shortest estimated job first) against FIFO submission order on
// a sampled batch, isolating the ordering decision (same placement,
// same policy).
func AblationBatchOrder(o Options, w workload.Workload, batchSize int) ([]AblationOrderRow, error) {
	o = o.withDefaults()
	if batchSize <= 0 {
		batchSize = 12
	}
	var rows []AblationOrderRow
	for _, mode := range []struct {
		name string
		mode core.Mode
	}{
		{name: "intensity-asc", mode: core.BatchMode},
		{name: "fifo", mode: core.FIFOMode},
	} {
		var jcts []float64
		for b := 0; b < o.Reps; b++ {
			seed := o.Seed + int64(b)*2657
			jobs, err := w.Batch(batchSize, seed)
			if err != nil {
				return nil, err
			}
			ct, err := core.NewController(core.Config{
				Cloud: o.cloudFor(),
				Model: o.model(),
				Mode:  mode.mode,
				Seed:  seed,
			})
			if err != nil {
				return nil, err
			}
			results, err := ct.Run(jobs)
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				if !r.Failed {
					jcts = append(jcts, r.JCT)
				}
			}
		}
		rows = append(rows, AblationOrderRow{
			Order:   mode.name,
			MeanJCT: stats.Mean(jcts),
			P90JCT:  stats.Percentile(jcts, 0.9),
		})
	}
	return rows, nil
}

// AblationMultipath compares single-path scheduling against
// congestion-aware k-path routing on a sparse topology (where alternate
// paths exist and the shortest one bottlenecks). Returns one series per
// k with mean JCT on the given circuit.
func AblationMultipath(o Options, circuitName string, ks []int) (SweepSeries, error) {
	o = o.withDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 3}
	}
	// Sparser topology than the default, and a *scattered* (random)
	// placement: CloudQC placement makes almost every remote gate
	// single-hop, which leaves nothing for routing to improve. The
	// ablation isolates the scheduler, so a placement with real
	// multi-hop gates is the right stress.
	topo := graph.Random(o.QPUs, 0.12, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	pl, err := place.NewRandom(o.Seed).Place(cl, c)
	if err != nil {
		return SweepSeries{}, err
	}
	dag := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, o.model().Latency)
	s := SweepSeries{Method: "CloudQC"}
	for _, k := range ks {
		var jcts []float64
		for rep := 0; rep < o.Reps; rep++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(rep)*7919))
			res, err := sched.RunMultipath(dag, cl, o.model(), sched.CloudQCPolicy{}, rng, k)
			if err != nil {
				return SweepSeries{}, err
			}
			jcts = append(jcts, res.JCT)
		}
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, stats.Mean(jcts))
	}
	return s, nil
}

// AblationFidelity sweeps the link fidelity and reports mean JCT with
// purification enforced at the given end-to-end threshold, quantifying
// what EPR quality buys (the paper's future-work extension).
func AblationFidelity(o Options, circuitName string, fidelities []float64, threshold float64) (SweepSeries, error) {
	o = o.withDefaults()
	if len(fidelities) == 0 {
		fidelities = []float64{0.8, 0.85, 0.9, 0.95, 0.99}
	}
	if threshold == 0 {
		threshold = 0.9
	}
	// Scattered placement: multi-hop gates make the end-to-end fidelity
	// decay that purification must repair (CloudQC placement keeps gates
	// single-hop and the ablation would be a no-op at high fidelities).
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	pl, err := place.NewRandom(o.Seed).Place(cl, c)
	if err != nil {
		return SweepSeries{}, err
	}
	dag := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, o.model().Latency)
	s := SweepSeries{Method: "CloudQC"}
	for _, lf := range fidelities {
		fm := epr.FidelityModel{Model: o.model(), LinkFidelity: lf, Threshold: threshold}
		var jcts []float64
		for rep := 0; rep < o.Reps; rep++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(rep)*104729))
			res, err := sched.RunFidelity(dag, cl, fm, sched.CloudQCPolicy{}, rng)
			if err != nil {
				return SweepSeries{}, fmt.Errorf("ablation fidelity %v: %w", lf, err)
			}
			jcts = append(jcts, res.JCT)
		}
		s.X = append(s.X, lf)
		s.Y = append(s.Y, stats.Mean(jcts))
	}
	return s, nil
}

// IncomingRow summarizes the incoming-job (sequential arrival) mode at
// one arrival rate.
type IncomingRow struct {
	MeanInterarrival float64
	MeanJCT          float64
	MeanWait         float64
	PeakUtilization  float64
}

// IncomingMode evaluates the paper's sequential-arrival mode: jobs
// arrive as a Poisson process and are placed FIFO; faster arrivals mean
// more queueing and higher utilization.
func IncomingMode(o Options, w workload.Workload, size int, interarrivals []float64) ([]IncomingRow, error) {
	o = o.withDefaults()
	if size <= 0 {
		size = 10
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{500, 2000, 8000}
	}
	var rows []IncomingRow
	for _, ia := range interarrivals {
		var jcts, waits []float64
		peak := 0.0
		for rep := 0; rep < o.Reps; rep++ {
			seed := o.Seed + int64(rep)*6151
			jobs, err := w.PoissonBatch(size, ia, seed)
			if err != nil {
				return nil, err
			}
			rec := metricsRecorder()
			ct, err := core.NewController(core.Config{
				Cloud:    o.cloudFor(),
				Model:    o.model(),
				Mode:     core.FIFOMode,
				Seed:     seed,
				Recorder: rec,
			})
			if err != nil {
				return nil, err
			}
			results, err := ct.Run(jobs)
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				if r.Failed {
					continue
				}
				jcts = append(jcts, r.JCT)
				waits = append(waits, r.WaitTime)
			}
			if p := rec.PeakUtilization(); p > peak {
				peak = p
			}
		}
		rows = append(rows, IncomingRow{
			MeanInterarrival: ia,
			MeanJCT:          stats.Mean(jcts),
			MeanWait:         stats.Mean(waits),
			PeakUtilization:  peak,
		})
	}
	return rows, nil
}

// metricsRecorder returns the per-round recorder used by IncomingMode
// (thinned to one sample per 100 time units to bound memory).
func metricsRecorder() *metrics.Recorder { return metrics.NewRecorder(100) }

// RenderIncoming renders incoming-mode rows.
func RenderIncoming(rows []IncomingRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			stats.F(r.MeanInterarrival),
			stats.F(r.MeanJCT),
			stats.F(r.MeanWait),
			fmt.Sprintf("%.2f", r.PeakUtilization),
		})
	}
	return stats.Table([]string{"Interarrival", "MeanJCT", "MeanWait", "PeakUtil"}, out)
}

// RenderAblationOrder renders batch-order ablation rows.
func RenderAblationOrder(rows []AblationOrderRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Order, stats.F(r.MeanJCT), stats.F(r.P90JCT)})
	}
	return stats.Table([]string{"Order", "MeanJCT", "P90JCT"}, out)
}

package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// Ablations probe the design choices DESIGN.md calls out: the
// imbalance-factor sweep in placement, the batch manager's ordering,
// congestion-aware multipath routing, and purification overhead under
// link-fidelity constraints. Like every experiment in this package,
// independent tasks fan out to the worker pool; the compared
// configurations share RNG streams (see runner.go) so each ablation
// isolates its design knob.

// AblationImbalance compares CloudQC placement restricted to a single
// imbalance factor against the full Algorithm 1 sweep, by communication
// cost on one circuit. X carries the single-α values; the final series
// entry (X = -1) is the full sweep.
func AblationImbalance(o Options, circuitName string) (SweepSeries, error) {
	o = o.withDefaults()
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	alphas := place.DefaultConfig().ImbalanceFactors
	configs := make([]place.Config, 0, len(alphas)+1)
	for _, alpha := range alphas {
		cfg := place.DefaultConfig()
		cfg.ImbalanceFactors = []float64{alpha}
		cfg.Seed = o.Seed
		configs = append(configs, cfg)
	}
	full := place.DefaultConfig()
	full.Seed = o.Seed
	configs = append(configs, full)
	costs, err := runIndexed(o.workers(), len(configs), func(i int) (float64, error) {
		cl := cloud.New(topo, o.Computing, o.Comm)
		pl, err := place.NewCloudQC(configs[i]).Place(cl, c)
		if err != nil {
			if i < len(alphas) {
				return 0, fmt.Errorf("ablation imbalance α=%v: %w", alphas[i], err)
			}
			return 0, err
		}
		return place.CommCost(c, cl, pl.QubitToQPU), nil
	})
	if err != nil {
		return SweepSeries{}, err
	}
	s := SweepSeries{Method: "CloudQC", Y: costs}
	s.X = append(s.X, alphas...)
	s.X = append(s.X, -1) // sentinel: full sweep
	return s, nil
}

// AblationOrderRow is one batch-ordering policy's outcome.
type AblationOrderRow struct {
	Order   string
	MeanJCT float64
	P90JCT  float64
}

// AblationBatchOrder compares the batch manager's ascending-intensity
// order (shortest estimated job first) against FIFO submission order on
// a sampled batch, isolating the ordering decision (same placement,
// same policy, same per-rep job streams).
func AblationBatchOrder(o Options, w workload.Workload, batchSize int) ([]AblationOrderRow, error) {
	o = o.withDefaults()
	if batchSize <= 0 {
		batchSize = 12
	}
	modes := []struct {
		name string
		mode core.Mode
	}{
		{name: "intensity-asc", mode: core.BatchMode},
		{name: "fifo", mode: core.FIFOMode},
	}
	batchJCTs, err := runIndexed(o.workers(), len(modes)*o.Reps, func(i int) ([]float64, error) {
		mi, b := i/o.Reps, i%o.Reps
		seed := taskSeed(o.Seed, 0, b) // shared across modes: paired batches
		jobs, err := w.Batch(batchSize, seed)
		if err != nil {
			return nil, err
		}
		ct, err := core.NewController(core.Config{
			Cloud: o.cloudFor(),
			Model: o.model(),
			Mode:  modes[mi].mode,
			Seed:  seed,
		})
		if err != nil {
			return nil, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return nil, err
		}
		var jcts []float64
		for _, r := range results {
			if !r.Failed {
				jcts = append(jcts, r.JCT)
			}
		}
		return jcts, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationOrderRow
	for mi, mode := range modes {
		var jcts []float64
		for b := 0; b < o.Reps; b++ {
			jcts = append(jcts, batchJCTs[mi*o.Reps+b]...)
		}
		rows = append(rows, AblationOrderRow{
			Order:   mode.name,
			MeanJCT: stats.Mean(jcts),
			P90JCT:  stats.Percentile(jcts, 0.9),
		})
	}
	return rows, nil
}

// AblationMultipath compares single-path scheduling against
// congestion-aware k-path routing on a sparse topology (where alternate
// paths exist and the shortest one bottlenecks). Returns one series per
// k with mean JCT on the given circuit.
func AblationMultipath(o Options, circuitName string, ks []int) (SweepSeries, error) {
	o = o.withDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 3}
	}
	// Sparser topology than the default, and a *scattered* (random)
	// placement: CloudQC placement makes almost every remote gate
	// single-hop, which leaves nothing for routing to improve. The
	// ablation isolates the scheduler, so a placement with real
	// multi-hop gates is the right stress.
	topo := graph.Random(o.QPUs, 0.12, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	pl, err := place.NewRandom(o.Seed).Place(cl, c)
	if err != nil {
		return SweepSeries{}, err
	}
	dag := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, o.model().Latency)
	flat, err := runIndexed(o.workers(), len(ks)*o.Reps, func(i int) (float64, error) {
		ki, rep := i/o.Reps, i%o.Reps
		// Shared across k: every path budget replays the same streams.
		rng := taskRNG(o.Seed, 0, rep)
		res, err := sched.RunMultipath(dag, cl, o.model(), sched.CloudQCPolicy{}, rng, ks[ki])
		if err != nil {
			return 0, err
		}
		return res.JCT, nil
	})
	if err != nil {
		return SweepSeries{}, err
	}
	s := SweepSeries{Method: "CloudQC", Y: meanPerPoint(flat, len(ks), o.Reps)}
	for _, k := range ks {
		s.X = append(s.X, float64(k))
	}
	return s, nil
}

// AblationFidelity sweeps the link fidelity and reports mean JCT with
// purification enforced at the given end-to-end threshold, quantifying
// what EPR quality buys (the paper's future-work extension).
func AblationFidelity(o Options, circuitName string, fidelities []float64, threshold float64) (SweepSeries, error) {
	o = o.withDefaults()
	if len(fidelities) == 0 {
		fidelities = []float64{0.8, 0.85, 0.9, 0.95, 0.99}
	}
	if threshold == 0 {
		threshold = 0.9
	}
	// Scattered placement: multi-hop gates make the end-to-end fidelity
	// decay that purification must repair (CloudQC placement keeps gates
	// single-hop and the ablation would be a no-op at high fidelities).
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	c, err := qlib.Build(circuitName)
	if err != nil {
		return SweepSeries{}, err
	}
	pl, err := place.NewRandom(o.Seed).Place(cl, c)
	if err != nil {
		return SweepSeries{}, err
	}
	dag := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, o.model().Latency)
	flat, err := runIndexed(o.workers(), len(fidelities)*o.Reps, func(i int) (float64, error) {
		fi, rep := i/o.Reps, i%o.Reps
		fm := epr.FidelityModel{Model: o.model(), LinkFidelity: fidelities[fi], Threshold: threshold}
		// Shared across fidelities: the sweep isolates purification cost.
		rng := taskRNG(o.Seed, 0, rep)
		res, err := sched.RunFidelity(dag, cl, fm, sched.CloudQCPolicy{}, rng)
		if err != nil {
			return 0, fmt.Errorf("ablation fidelity %v: %w", fidelities[fi], err)
		}
		return res.JCT, nil
	})
	if err != nil {
		return SweepSeries{}, err
	}
	return SweepSeries{Method: "CloudQC", X: fidelities, Y: meanPerPoint(flat, len(fidelities), o.Reps)}, nil
}

// IncomingRow summarizes the incoming-job (sequential arrival) mode at
// one arrival rate.
type IncomingRow struct {
	MeanInterarrival float64
	MeanJCT          float64
	MeanWait         float64
	PeakUtilization  float64
}

// incomingRep is one (arrival rate × rep) task's raw outcome.
type incomingRep struct {
	jcts, waits []float64
	peak        float64
}

// IncomingMode evaluates the paper's sequential-arrival mode: jobs
// arrive as a Poisson process and are placed FIFO; faster arrivals mean
// more queueing and higher utilization. Arrival rates share per-rep
// streams, so each row sees the same job population at different
// spacings.
func IncomingMode(o Options, w workload.Workload, size int, interarrivals []float64) ([]IncomingRow, error) {
	o = o.withDefaults()
	if size <= 0 {
		size = 10
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{500, 2000, 8000}
	}
	reps, err := runIndexed(o.workers(), len(interarrivals)*o.Reps, func(i int) (incomingRep, error) {
		ii, rep := i/o.Reps, i%o.Reps
		seed := taskSeed(o.Seed, 0, rep)
		jobs, err := w.PoissonBatch(size, interarrivals[ii], seed)
		if err != nil {
			return incomingRep{}, err
		}
		rec := metricsRecorder()
		ct, err := core.NewController(core.Config{
			Cloud:    o.cloudFor(),
			Model:    o.model(),
			Mode:     core.FIFOMode,
			Seed:     seed,
			Recorder: rec,
		})
		if err != nil {
			return incomingRep{}, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return incomingRep{}, err
		}
		var r incomingRep
		for _, res := range results {
			if res.Failed {
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
		}
		r.peak = rec.PeakUtilization()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []IncomingRow
	for ii, ia := range interarrivals {
		var jcts, waits []float64
		peak := 0.0
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[ii*o.Reps+rep]
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			if r.peak > peak {
				peak = r.peak
			}
		}
		rows = append(rows, IncomingRow{
			MeanInterarrival: ia,
			MeanJCT:          stats.Mean(jcts),
			MeanWait:         stats.Mean(waits),
			PeakUtilization:  peak,
		})
	}
	return rows, nil
}

// metricsRecorder returns the per-round recorder used by IncomingMode
// (thinned to one sample per 100 time units to bound memory).
func metricsRecorder() *metrics.Recorder { return metrics.NewRecorder(100) }

// RenderIncoming renders incoming-mode rows.
func RenderIncoming(rows []IncomingRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			stats.F(r.MeanInterarrival),
			stats.F(r.MeanJCT),
			stats.F(r.MeanWait),
			fmt.Sprintf("%.2f", r.PeakUtilization),
		})
	}
	return stats.Table([]string{"Interarrival", "MeanJCT", "MeanWait", "PeakUtil"}, out)
}

// RenderAblationOrder renders batch-order ablation rows.
func RenderAblationOrder(rows []AblationOrderRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Order, stats.F(r.MeanJCT), stats.F(r.P90JCT)})
	}
	return stats.Table([]string{"Order", "MeanJCT", "P90JCT"}, out)
}

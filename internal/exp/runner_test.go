package exp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cloudqc/internal/workload"
)

func TestTaskSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for point := 0; point < 16; point++ {
		for rep := 0; rep < 16; rep++ {
			s := taskSeed(1, point, rep)
			if s != taskSeed(1, point, rep) {
				t.Fatalf("taskSeed(1, %d, %d) not deterministic", point, rep)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) -> %d", point, rep, prev[0], prev[1], s)
			}
			seen[s] = [2]int{point, rep}
		}
	}
	if taskSeed(1, 0, 0) == taskSeed(2, 0, 0) {
		t.Fatal("base seed should change task seeds")
	}
}

func TestRunIndexedMatchesSequential(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := runIndexed(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 64} {
		got, err := runIndexed(workers, 100, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

func TestRunIndexedFirstErrorWins(t *testing.T) {
	fn := func(i int) (int, error) {
		if i >= 17 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 32} {
		_, err := runIndexed(workers, 100, fn)
		if err == nil || err.Error() != "task 17 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
	if _, err := runIndexed(8, 0, func(int) (int, error) { return 0, errors.New("never") }); err != nil {
		t.Fatalf("n=0 should be a no-op, got %v", err)
	}
}

// TestParallelSweepDeterministic is the tentpole's acceptance test: for
// a fixed Seed, a representative stochastic sweep is bit-identical at
// any worker count.
func TestParallelSweepDeterministic(t *testing.T) {
	base := fastOpts()
	base.Reps = 2
	run := func(workers int) []SweepSeries {
		o := base
		o.Workers = workers
		series, err := JCTVsCommQubits(o, "qugan_n111", []int{5, 7})
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d diverges from sequential:\n%v\nvs\n%v", workers, got, want)
		}
	}
}

// TestParallelMultiTenantDeterministic covers the controller-driven
// path: batches sampled and simulated on the pool must pool into the
// same per-method JCT streams at any worker count.
func TestParallelMultiTenantDeterministic(t *testing.T) {
	base := fastOpts()
	run := func(workers int) []CDFSeries {
		o := base
		o.Workers = workers
		series, err := MultiTenantCDF(o, workload.Qugan(), 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	want := run(1)
	if got := run(6); !reflect.DeepEqual(got, want) {
		t.Fatalf("Workers=6 diverges from sequential:\n%v\nvs\n%v", got, want)
	}
}

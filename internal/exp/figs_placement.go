package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
)

// CapacitySweep is the paper's x-axis for Figs. 6-9: computing qubits
// per QPU.
func CapacitySweep() []int { return []int{10, 15, 20, 25, 30, 35, 40, 45, 50} }

// OverheadCircuits lists the representative circuits of Figs. 6-9 in
// figure order.
func OverheadCircuits() []string {
	return []string{"qugan_n111", "qft_n160", "multiplier_n75", "qv_n100"}
}

// OverheadVsCapacity regenerates one of Figs. 6-9: communication
// overhead (Σ D_ij·C_ij) of every placement method as the per-QPU
// computing qubit count varies.
func OverheadVsCapacity(o Options, circuitName string, capacities []int) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(capacities) == 0 {
		capacities = CapacitySweep()
	}
	c, err := qlib.Build(circuitName)
	if err != nil {
		return nil, err
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	series := make([]SweepSeries, 0, 5)
	for _, p := range placersFor(o) {
		s := SweepSeries{Method: p.Name()}
		for _, cap := range capacities {
			if cap*o.QPUs < c.NumQubits() {
				continue // circuit cannot fit this cloud at all
			}
			cl := cloud.New(topo, cap, o.Comm)
			pl, err := p.Place(cl, c)
			if err != nil {
				return nil, fmt.Errorf("overhead sweep: %s at capacity %d: %w", p.Name(), cap, err)
			}
			s.X = append(s.X, float64(cap))
			s.Y = append(s.Y, place.CommCost(c, cl, pl.QubitToQPU))
		}
		series = append(series, s)
	}
	return series, nil
}

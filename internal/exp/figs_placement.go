package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
)

// CapacitySweep is the paper's x-axis for Figs. 6-9: computing qubits
// per QPU.
func CapacitySweep() []int { return []int{10, 15, 20, 25, 30, 35, 40, 45, 50} }

// OverheadCircuits lists the representative circuits of Figs. 6-9 in
// figure order.
func OverheadCircuits() []string {
	return []string{"qugan_n111", "qft_n160", "multiplier_n75", "qv_n100"}
}

// OverheadVsCapacity regenerates one of Figs. 6-9: communication
// overhead (Σ D_ij·C_ij) of every placement method as the per-QPU
// computing qubit count varies. Every (method × capacity) placement is
// an independent worker-pool task with its own placer and cloud;
// placements are deterministic in Options.Seed, so no per-rep streams
// are involved.
func OverheadVsCapacity(o Options, circuitName string, capacities []int) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(capacities) == 0 {
		capacities = CapacitySweep()
	}
	c, err := qlib.Build(circuitName)
	if err != nil {
		return nil, err
	}
	feasible := capacities[:0:0]
	for _, cap := range capacities {
		if cap*o.QPUs >= c.NumQubits() {
			feasible = append(feasible, cap) // else the circuit cannot fit this cloud at all
		}
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	nMethods := len(placersFor(o))
	costs, err := runIndexed(o.workers(), nMethods*len(feasible), func(i int) (float64, error) {
		pi, ci := i/len(feasible), i%len(feasible)
		p := placersFor(o)[pi] // fresh placer per task: SA/GA/Random hold internal RNG state
		cl := cloud.New(topo, feasible[ci], o.Comm)
		pl, err := p.Place(cl, c)
		if err != nil {
			return 0, fmt.Errorf("overhead sweep: %s at capacity %d: %w", p.Name(), feasible[ci], err)
		}
		return place.CommCost(c, cl, pl.QubitToQPU), nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]SweepSeries, 0, nMethods)
	for pi, p := range placersFor(o) {
		s := SweepSeries{Method: p.Name()}
		for ci, cap := range feasible {
			s.X = append(s.X, float64(cap))
			s.Y = append(s.Y, costs[pi*len(feasible)+ci])
		}
		series = append(series, s)
	}
	return series, nil
}

package exp

import (
	"fmt"
	"math"

	"cloudqc/internal/core"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// sloMethod is one line of the SLO figure: an admission mode paired
// with an EPR allocation policy factory. Policies are built per task —
// the tenant-weighted allocator carries reusable scratch, so parallel
// tasks must not share one instance.
type sloMethod struct {
	name   string
	mode   core.Mode
	policy func() sched.Policy
}

// sloMethods are the figure's schedulers: the two CloudQC baselines,
// the two deadline/tenant-aware admission modes, and WFQ admission
// combined with the tenant-weighted EPR allocator (starvation bounded
// at both layers).
func sloMethods() []sloMethod {
	cloudqc := func() sched.Policy { return sched.CloudQCPolicy{} }
	return []sloMethod{
		{"Batch", core.BatchMode, cloudqc},
		{"FIFO", core.FIFOMode, cloudqc},
		{"EDF", core.EDFMode, cloudqc},
		{"WFQ", core.WFQMode, cloudqc},
		{"WFQ+TW", core.WFQMode, func() sched.Policy { return sched.NewTenantWeightedPolicy() }},
	}
}

// SLORow is one (workload × arrival rate × scheduler) cell of the SLO
// figure: deadline attainment, cross-tenant fairness, and job-stream
// statistics for a three-tenant mix (priorities 1/2/4) under the given
// scheduler.
type SLORow struct {
	Workload         string
	MeanInterarrival float64
	Method           string
	// SLO aggregates deadline attainment, Jain fairness over per-tenant
	// mean JCTs, and per-tenant breakdowns across all reps.
	SLO metrics.SLOStats
	// Stream summarizes throughput/JCT/wait like the online figure.
	Stream metrics.OnlineStats
}

// sloRep is one (workload × rate × method × rep) task's raw outcome.
type sloRep struct {
	outcomes    []metrics.JobOutcome
	jcts, waits []float64
	failed      int
	makespan    float64
}

// SLO evaluates tenant- and deadline-aware scheduling across the four
// evaluation workloads: each cell runs a three-tenant mix (weights 1, 2,
// and 4, per-tenant arrival processes, deadlines drawn from circuit
// depth × slack) under Batch, FIFO, EDF, WFQ, and WFQ with the
// tenant-weighted EPR allocator, reporting SLO attainment, Jain's
// fairness index over per-tenant mean JCTs, and the usual job-stream
// statistics. Sweeping interarrivals traces attainment and fairness vs
// load.
//
// Tasks fan out to the experiment worker pool. Seeding follows the
// package convention: the per-task seed depends on (workload, rep)
// only, so every arrival rate and every scheduler faces the same tenant
// mixes and the sweep isolates load and scheduling discipline.
func SLO(o Options, process string, perTenant int, interarrivals []float64) ([]SLORow, error) {
	o = o.withDefaults()
	if perTenant == 0 {
		perTenant = 4
	}
	if perTenant < 0 {
		return nil, fmt.Errorf("exp: negative per-tenant stream size %d", perTenant)
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{500, 2000, 8000}
	}
	workloads := workload.All()
	methods := sloMethods()
	points := len(workloads) * len(interarrivals) * len(methods)
	reps, err := runIndexed(o.workers(), points*o.Reps, func(i int) (sloRep, error) {
		pt, rep := i/o.Reps, i%o.Reps
		wi := pt / (len(interarrivals) * len(methods))
		ii := pt / len(methods) % len(interarrivals)
		mi := pt % len(methods)
		// Seed by (workload, rep) only: every rate and every scheduler
		// replays the same tenant mixes, so a cell difference isolates
		// the load level or the scheduling discipline, never the draw.
		seed := taskSeed(o.Seed, wi, rep)
		mix := workload.DefaultTenantMix(workloads[wi], perTenant, process, interarrivals[ii])
		jobs, err := workload.MultiTenant(mix, seed)
		if err != nil {
			return sloRep{}, err
		}
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		ct, err := core.NewController(core.Config{
			Cloud:  o.cloudFor(),
			Placer: place.NewCloudQC(pCfg),
			Policy: methods[mi].policy(),
			Model:  o.model(),
			Mode:   methods[mi].mode,
			Seed:   seed,
		})
		if err != nil {
			return sloRep{}, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return sloRep{}, fmt.Errorf("slo %s %s ia=%v rep %d: %w",
				workloads[wi].Name, methods[mi].name, interarrivals[ii], rep, err)
		}
		r := sloRep{outcomes: core.Outcomes(results)}
		for _, res := range results {
			if res.Failed {
				r.failed++
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
			if res.Finished > r.makespan {
				r.makespan = res.Finished
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SLORow, 0, points)
	for pt := 0; pt < points; pt++ {
		wi := pt / (len(interarrivals) * len(methods))
		ii := pt / len(methods) % len(interarrivals)
		mi := pt % len(methods)
		var outcomes []metrics.JobOutcome
		var jcts, waits []float64
		failed := 0
		var makespan float64
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[pt*o.Reps+rep]
			outcomes = append(outcomes, r.outcomes...)
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			failed += r.failed
			makespan += r.makespan
		}
		rows = append(rows, SLORow{
			Workload:         workloads[wi].Name,
			MeanInterarrival: interarrivals[ii],
			Method:           methods[mi].name,
			SLO:              metrics.AggregateSLO(outcomes),
			Stream:           metrics.AggregateOnline(jcts, waits, failed, makespan),
		})
	}
	return rows, nil
}

// RenderSLO renders SLO rows grouped by workload and arrival rate.
func RenderSLO(rows []SLORow) string {
	headers := []string{"Workload", "Interarrival", "Scheduler", "Done", "Fail",
		"Attain", "Jain", "MeanJCT", "P99JCT", "MeanWait"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload,
			stats.F(r.MeanInterarrival),
			r.Method,
			fmt.Sprintf("%d", r.Stream.Completed),
			fmt.Sprintf("%d", r.Stream.Failed),
			fmtFrac(r.SLO.Attainment),
			fmtFrac(r.SLO.Fairness),
			stats.F(r.Stream.MeanJCT),
			stats.F(r.Stream.P99JCT),
			stats.F(r.Stream.MeanWait),
		})
	}
	return stats.Table(headers, out)
}

// fmtFrac renders a [0,1] statistic with two decimals, and the
// undefined (NaN) case — no deadline-carrying jobs, no completed
// tenants — as "-".
func fmtFrac(x float64) string {
	if math.IsNaN(x) {
		return "-"
	}
	return fmt.Sprintf("%.2f", x)
}

package exp

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the experiment engine shared by every table/figure
// generator in the package: a bounded worker pool over independent
// (sweep point × repetition) simulation tasks, with per-task RNG seeds
// derived purely from (Options.Seed, point index, rep). Because no task
// reads another task's RNG stream and every result lands in its own
// slot, output is bit-identical for any worker count.
//
// Seeding convention: the "point" index separates streams along swept
// axes (communication qubits, EPR probability, arrival rate, batch
// index, circuit row, ...) while the dimensions an experiment *compares*
// (scheduling policy, framework variant, batch ordering, execution plan)
// deliberately share a stream, so paired tasks see identical stochastic
// inputs and their difference isolates the design choice under test.

// workers resolves the Workers knob: positive values are used as-is; the
// zero value means one worker per available CPU.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// taskSeed derives the RNG seed for the (point, rep) task of an
// experiment with the given base seed. A SplitMix64-style finalizer
// decorrelates neighbouring points and reps, and the value depends only
// on the three inputs — never on scheduling order or worker count.
func taskSeed(seed int64, point, rep int) int64 {
	z := uint64(seed)
	z += 0x9e3779b97f4a7c15 * uint64(point+1)
	z += 0xc2b2ae3d27d4eb4f * uint64(rep+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// taskRNG returns the rand stream for one (point, rep) task.
func taskRNG(seed int64, point, rep int) *rand.Rand {
	return rand.New(rand.NewSource(taskSeed(seed, point, rep)))
}

// runIndexed runs fn(0), ..., fn(n-1) across at most workers goroutines
// and returns the results in index order. The output depends only on fn
// and n, not on workers or goroutine scheduling: each task writes its
// own slot, and on failure the error with the lowest task index wins —
// the same error a sequential loop would hit first. Only tasks indexed
// above the lowest failure seen so far may be skipped, so the winning
// task always runs and the returned error is stable at any worker
// count.
func runIndexed[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next, minErr atomic.Int64
	minErr.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int64(next.Add(1)) - 1
				if i >= int64(n) {
					return
				}
				if i > minErr.Load() {
					continue // a lower-indexed task already failed; drain
				}
				v, err := fn(int(i))
				if err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if i >= cur || minErr.CompareAndSwap(cur, i) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// meanPerPoint collapses a flat [point][rep] task-result grid (rep
// fastest-varying) to one mean per point.
func meanPerPoint(flat []float64, points, reps int) []float64 {
	means := make([]float64, points)
	for p := 0; p < points; p++ {
		var sum float64
		for r := 0; r < reps; r++ {
			sum += flat[p*reps+r]
		}
		means[p] = sum / float64(reps)
	}
	return means
}

package exp

import (
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/place"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// MultiTenantMethods lists the three framework variants of Figs. 14-17.
func MultiTenantMethods() []string {
	return []string{"CloudQC", "CloudQC-BFS", "CloudQC-FIFO"}
}

// CDFSeries is one method's job-completion-time CDF.
type CDFSeries struct {
	Method string
	Points []stats.CDFPoint
	// JCTs are the raw per-job completion times the CDF summarizes.
	JCTs []float64
}

// MultiTenantCDF regenerates one of Figs. 14-17: the job completion time
// CDF of CloudQC vs CloudQC-BFS vs CloudQC-FIFO over seeded batches of
// the given workload. batches × batchSize jobs execute per method
// (paper: 50 batches × 20 circuits × 20 topologies; defaults here are
// scaled down but configurable).
func MultiTenantCDF(o Options, w workload.Workload, batches, batchSize int) ([]CDFSeries, error) {
	o = o.withDefaults()
	if batches <= 0 {
		batches = 5
	}
	if batchSize <= 0 {
		batchSize = 20
	}
	methods := MultiTenantMethods()
	// One task per (method × batch). Batch b is repetition b of the
	// experiment: its seed drives workload sampling and controller
	// simulation alike, shared across methods so all three variants face
	// identical job streams (the CDF comparison is paired).
	batchJCTs, err := runIndexed(o.workers(), len(methods)*batches, func(i int) ([]float64, error) {
		mi, b := i/batches, i%batches
		seed := taskSeed(o.Seed, 0, b)
		jobs, err := w.Batch(batchSize, seed)
		if err != nil {
			return nil, err
		}
		cfg, err := methodConfig(methods[mi], o, seed)
		if err != nil {
			return nil, err
		}
		ct, err := core.NewController(cfg)
		if err != nil {
			return nil, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return nil, fmt.Errorf("multitenant %s batch %d: %w", methods[mi], b, err)
		}
		var jcts []float64
		for _, r := range results {
			if r.Failed {
				continue
			}
			jcts = append(jcts, r.JCT)
		}
		return jcts, nil
	})
	if err != nil {
		return nil, err
	}
	var out []CDFSeries
	for mi, method := range methods {
		var jcts []float64
		for b := 0; b < batches; b++ {
			jcts = append(jcts, batchJCTs[mi*batches+b]...)
		}
		out = append(out, CDFSeries{Method: method, Points: stats.ECDF(jcts), JCTs: jcts})
	}
	return out, nil
}

func methodConfig(method string, o Options, seed int64) (core.Config, error) {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	cfg := core.Config{
		Cloud:  o.cloudFor(),
		Policy: sched.CloudQCPolicy{},
		Model:  o.model(),
		Mode:   core.BatchMode,
		Seed:   seed,
	}
	switch method {
	case "CloudQC":
		cfg.Placer = place.NewCloudQC(pCfg)
	case "CloudQC-BFS":
		pCfg.UseBFS = true
		cfg.Placer = place.NewCloudQC(pCfg)
	case "CloudQC-FIFO":
		cfg.Placer = place.NewCloudQC(pCfg)
		cfg.Mode = core.FIFOMode
	default:
		return core.Config{}, fmt.Errorf("exp: unknown multi-tenant method %q", method)
	}
	return cfg, nil
}

// RenderCDF renders CDF series as mean / median / p90 summary rows plus
// selected CDF probes, which is how EXPERIMENTS.md reports Figs. 14-17.
func RenderCDF(series []CDFSeries) string {
	headers := []string{"Method", "Jobs", "MeanJCT", "MedianJCT", "P90JCT", "MaxJCT"}
	var rows [][]string
	for _, s := range series {
		rows = append(rows, []string{
			s.Method,
			fmt.Sprintf("%d", len(s.JCTs)),
			stats.F(stats.Mean(s.JCTs)),
			stats.F(stats.Median(s.JCTs)),
			stats.F(stats.Percentile(s.JCTs, 0.9)),
			stats.F(stats.Max(s.JCTs)),
		})
	}
	return stats.Table(headers, rows)
}

package exp

import (
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/place"
	"cloudqc/internal/stats"
	"cloudqc/internal/trace"
	"cloudqc/internal/workload"
)

// attrModes are the attribution figure's arms: the admission modes
// whose queueing disciplines shape where a job's completion time goes.
func attrModes() []core.Mode {
	return []core.Mode{core.FIFOMode, core.EDFMode, core.WFQMode}
}

// AttributionRow is one (workload × arrival rate × admission mode)
// cell: completion counts and the exact per-phase JCT attribution
// summed over every settled job — the time-breakdown-vs-load figure
// only the virtual-time tracer can draw, because its phases sum to the
// JCT bitwise rather than being sampled.
type AttributionRow struct {
	Workload         string
	MeanInterarrival float64
	Mode             string
	Completed        int
	Failed           int
	// Attr is the summed attribution across the cell's settled jobs
	// (queue + compile + local + network + suspended == JCT holds for
	// the sums exactly as it does per job).
	Attr trace.Attribution
}

// Attribution traces where completion time goes — queue wait, network
// stall, local compute, suspension — against load for each admission
// mode: every cell runs the three-tenant mix under one mode with a
// fresh span recorder and sums the per-job attributions. As the
// interarrival gap shrinks, the queue fraction's growth curve separates
// the modes; the network fraction stays a property of the placements.
//
// Seeding follows the package convention: the per-task seed depends on
// (workload, rep) only, so every load level and every mode replays
// identical tenant mixes.
func Attribution(o Options, process string, perTenant int, interarrivals []float64) ([]AttributionRow, error) {
	o = o.withDefaults()
	if perTenant == 0 {
		perTenant = 4
	}
	if perTenant < 0 {
		return nil, fmt.Errorf("exp: negative per-tenant stream size %d", perTenant)
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{300, 1000, 4000}
	}
	workloads := workload.All()
	modes := attrModes()
	points := len(workloads) * len(interarrivals) * len(modes)
	type attrRep struct {
		completed, failed int
		attr              trace.Attribution
	}
	reps, err := runIndexed(o.workers(), points*o.Reps, func(i int) (attrRep, error) {
		pt, rep := i/o.Reps, i%o.Reps
		wi := pt / (len(interarrivals) * len(modes))
		ii := pt / len(modes) % len(interarrivals)
		mi := pt % len(modes)
		seed := taskSeed(o.Seed, wi, rep)
		mix := workload.DefaultTenantMix(workloads[wi], perTenant, process, interarrivals[ii])
		jobs, err := workload.MultiTenant(mix, seed)
		if err != nil {
			return attrRep{}, err
		}
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		rec := trace.New()
		ct, err := core.NewController(core.Config{
			Cloud:  o.cloudFor(),
			Placer: place.NewCloudQC(pCfg),
			Model:  o.model(),
			Mode:   modes[mi],
			Seed:   seed,
			Trace:  rec,
		})
		if err != nil {
			return attrRep{}, err
		}
		if _, err := ct.Run(jobs); err != nil {
			return attrRep{}, fmt.Errorf("attribution %s %s ia=%v rep %d: %w",
				workloads[wi].Name, modes[mi], interarrivals[ii], rep, err)
		}
		var r attrRep
		for _, ta := range rec.Tenants() {
			r.completed += ta.Completed
			r.failed += ta.Failed
			r.attr.JCT += ta.JCT
			r.attr.Queue += ta.Queue
			r.attr.Compile += ta.Compile
			r.attr.Local += ta.Local
			r.attr.Network += ta.Network
			r.attr.Suspended += ta.Suspended
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AttributionRow, 0, points)
	for pt := 0; pt < points; pt++ {
		wi := pt / (len(interarrivals) * len(modes))
		ii := pt / len(modes) % len(interarrivals)
		mi := pt % len(modes)
		row := AttributionRow{
			Workload:         workloads[wi].Name,
			MeanInterarrival: interarrivals[ii],
			Mode:             modes[mi].String(),
		}
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[pt*o.Reps+rep]
			row.Completed += r.completed
			row.Failed += r.failed
			row.Attr.JCT += r.attr.JCT
			row.Attr.Queue += r.attr.Queue
			row.Attr.Compile += r.attr.Compile
			row.Attr.Local += r.attr.Local
			row.Attr.Network += r.attr.Network
			row.Attr.Suspended += r.attr.Suspended
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAttribution renders attribution rows as the time-breakdown
// figure: mean JCT per completed job and each phase's fraction of the
// summed completion time.
func RenderAttribution(rows []AttributionRow) string {
	headers := []string{"Workload", "Interarrival", "Mode", "Done", "Fail",
		"MeanJCT", "Queue", "Network", "Local", "Suspended"}
	var out [][]string
	for _, r := range rows {
		mean := 0.0
		if r.Completed > 0 {
			mean = r.Attr.JCT / float64(r.Completed)
		}
		out = append(out, []string{
			r.Workload,
			stats.F(r.MeanInterarrival),
			r.Mode,
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Failed),
			stats.F(mean),
			fmtShare(r.Attr.Queue, r.Attr.JCT),
			fmtShare(r.Attr.Network, r.Attr.JCT),
			fmtShare(r.Attr.Local, r.Attr.JCT),
			fmtShare(r.Attr.Suspended, r.Attr.JCT),
		})
	}
	return stats.Table(headers, out)
}

// fmtShare renders phase/total as a percentage, dashing out an empty
// cell and clamping the floating-point dust the derived local phase
// may carry below zero.
func fmtShare(phase, total float64) string {
	if total <= 0 {
		return "-"
	}
	f := phase / total
	if f < 0 {
		f = 0
	}
	return fmt.Sprintf("%.1f%%", f*100)
}

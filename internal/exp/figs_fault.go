package exp

import (
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/fault"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// faultArm is one line of the faults figure: a recovery configuration
// run against an identical fault schedule. The schedule — QPU outages
// plus two dead-link windows — is held fixed across arms, so a cell
// difference isolates the recovery policy, never the faults themselves.
type faultArm struct {
	name     string
	recovery string
	reroute  bool
}

// faultArms are the figure's three arms: fail evicted jobs outright
// (the no-recovery baseline), checkpoint-rescue, and rescue plus
// dead-edge route-around.
func faultArms() []faultArm {
	return []faultArm{
		{"None", fault.RecoveryNone, false},
		{"Rescue", fault.RecoveryRescue, false},
		{"Rescue+Reroute", fault.RecoveryRescue, true},
	}
}

// FaultRow is one (workload × outage rate × recovery arm) cell: SLO
// attainment and fairness, stream statistics (the p99 JCT axis), and
// the injector counters that explain them.
type FaultRow struct {
	Workload string
	// Outages is the failure-rate axis: QPU outages injected over the
	// stream's arrival horizon.
	Outages int
	Policy  string
	SLO     metrics.SLOStats
	Stream  metrics.OnlineStats
	Faults  fault.Stats
}

// faultRep is one (cell × rep) task's raw outcome.
type faultRep struct {
	outcomes    []metrics.JobOutcome
	jcts, waits []float64
	failed      int
	makespan    float64
	faults      fault.Stats
}

// faultOutageDuration is each injected outage's length in CX units —
// long enough that jobs resident on the downed QPU are genuinely
// interrupted, short enough that capacity recovers between outages.
const faultOutageDuration = 4000

// Faults traces SLO attainment and p99 JCT against the QPU-failure
// rate for no-recovery vs checkpoint-rescue vs rescue+route-around:
// each cell runs the three-tenant deadline mix under EDF admission
// against a deterministic fault schedule of n QPU outages (spread over
// the arrival horizon by fault.OutageSchedule) plus two dead-link
// windows, varying only the recovery knobs. Under no-recovery every
// eviction is a failed job; checkpoint-rescue re-enqueues them — the
// strict attainment win TestRescueImprovesFaultAttainment pins — and
// route-around additionally saves jobs whose entanglement paths cross
// the dead links from burning their retry budgets.
//
// Seeding follows the package convention: the per-task seed depends on
// (workload, rep) only, so every rate and every arm replays identical
// tenant mixes against identical fault schedules.
func Faults(o Options, process string, perTenant int, rates []int) ([]FaultRow, error) {
	o = o.withDefaults()
	if perTenant == 0 {
		perTenant = 4
	}
	if perTenant < 0 {
		return nil, fmt.Errorf("exp: negative per-tenant stream size %d", perTenant)
	}
	if len(rates) == 0 {
		rates = []int{2, 6, 12}
	}
	const interarrival = 1000.0
	// The outage window covers the arrival span plus an execution tail.
	horizon := float64(perTenant) * interarrival * 2
	workloads := workload.All()
	arms := faultArms()
	points := len(workloads) * len(rates) * len(arms)
	reps, err := runIndexed(o.workers(), points*o.Reps, func(i int) (faultRep, error) {
		pt, rep := i/o.Reps, i%o.Reps
		wi := pt / (len(rates) * len(arms))
		ri := pt / len(arms) % len(rates)
		ai := pt % len(arms)
		seed := taskSeed(o.Seed, wi, rep)
		mix := workload.DefaultTenantMix(workloads[wi], perTenant, process, interarrival)
		jobs, err := workload.MultiTenant(mix, seed)
		if err != nil {
			return faultRep{}, err
		}
		cl := o.cloudFor()
		plan := fault.OutageSchedule(o.QPUs, rates[ri], 0, horizon, faultOutageDuration, seed)
		if plan == nil {
			plan = &fault.Plan{}
		}
		// Two dead-link windows on real topology edges, identical across
		// arms: only the route-around arm can path around them.
		if edges := cl.Topology().Edges(); len(edges) > 0 {
			for li, at := range []float64{horizon * 0.25, horizon * 0.55} {
				e := edges[li*(len(edges)/2)%len(edges)]
				plan.Events = append(plan.Events, fault.Event{
					Kind: fault.KindLinkDegrade, U: e.U, V: e.V,
					Scale: 0, From: at, To: at + horizon*0.15,
				})
			}
		}
		plan.Recovery = arms[ai].recovery
		plan.RouteAround = arms[ai].reroute
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		ct, err := core.NewController(core.Config{
			Cloud:  cl,
			Placer: place.NewCloudQC(pCfg),
			Model:  o.model(),
			Mode:   core.EDFMode,
			Seed:   seed,
			Faults: plan,
		})
		if err != nil {
			return faultRep{}, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return faultRep{}, fmt.Errorf("faults %s %s n=%d rep %d: %w",
				workloads[wi].Name, arms[ai].name, rates[ri], rep, err)
		}
		r := faultRep{outcomes: core.Outcomes(results), faults: ct.FaultStats()}
		for _, res := range results {
			if res.Failed {
				r.failed++
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
			if res.Finished > r.makespan {
				r.makespan = res.Finished
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FaultRow, 0, points)
	for pt := 0; pt < points; pt++ {
		wi := pt / (len(rates) * len(arms))
		ri := pt / len(arms) % len(rates)
		ai := pt % len(arms)
		var outcomes []metrics.JobOutcome
		var jcts, waits []float64
		failed := 0
		var makespan float64
		var fs fault.Stats
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[pt*o.Reps+rep]
			outcomes = append(outcomes, r.outcomes...)
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			failed += r.failed
			makespan += r.makespan
			fs.Add(r.faults)
		}
		rows = append(rows, FaultRow{
			Workload: workloads[wi].Name,
			Outages:  rates[ri],
			Policy:   arms[ai].name,
			SLO:      metrics.AggregateSLO(outcomes),
			Stream:   metrics.AggregateOnline(jcts, waits, failed, makespan),
			Faults:   fs,
		})
	}
	return rows, nil
}

// RenderFaults renders fault rows grouped by workload and outage rate:
// attainment and p99 JCT are the figure's two y-axes, the injector
// counters its annotations.
func RenderFaults(rows []FaultRow) string {
	headers := []string{"Workload", "Outages", "Recovery", "Done", "Fail",
		"Attain", "Jain", "MeanJCT", "P99JCT", "Rescued", "FailedOut", "Retries", "Reroutes", "Exhausted"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload,
			fmt.Sprintf("%d", r.Outages),
			r.Policy,
			fmt.Sprintf("%d", r.Stream.Completed),
			fmt.Sprintf("%d", r.Stream.Failed),
			fmtFrac(r.SLO.Attainment),
			fmtFrac(r.SLO.Fairness),
			stats.F(r.Stream.MeanJCT),
			stats.F(r.Stream.P99JCT),
			fmt.Sprintf("%d", r.Faults.RescuedOutage),
			fmt.Sprintf("%d", r.Faults.FailedOutage),
			fmt.Sprintf("%d", r.Faults.Retries),
			fmt.Sprintf("%d", r.Faults.Reroutes),
			fmt.Sprintf("%d", r.Faults.RetryExhausted),
		})
	}
	return stats.Table(headers, out)
}

package exp

import (
	"fmt"
	"sort"

	"cloudqc/internal/core"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// FederationRow is one (shard count × routing) cell of the federation
// figure: the same 8-tenant bursty stream over the same total QPU
// capacity, split across more controller shards.
type FederationRow struct {
	Shards  int
	Routing string
	Stats   metrics.OnlineStats
	// Fairness is Jain's index over per-tenant mean JCTs — the
	// cross-shard WFQ guarantee says sharding must not erode it.
	Fairness float64
	// HitRate is the federated plan-cache hit rate (hits over
	// hits+misses, merged across shards) — affinity routing's payoff.
	HitRate float64
	// Router carries the admission router's decision counters.
	Router fed.RouterStats
}

// federationCell is one (shard count, routing) arm of the sweep.
type federationCell struct {
	shards  int
	routing fed.Routing
}

// federationRep is one cell × rep task's raw outcome.
type federationRep struct {
	outcomes []metrics.JobOutcome
	jcts     []float64
	waits    []float64
	failed   int
	makespan float64
	cache    float64 // hits
	misses   float64
	router   fed.RouterStats
}

// Federation evaluates the federated controller tier: one topology's
// total capacity is split across 1, 2, 4, ... controller shards (via
// the k-way partitioner) behind the global admission router, and an
// 8-tenant bursty WFQ stream measures what sharding costs. Shard
// counts above 1 run both routing arms — affinity (plan-cache
// locality, spill depth 1) and random (the ablation) — over identical
// job streams, so their hit-rate difference isolates the router.
//
// Two paper-style claims are visible in the figure: cross-shard WFQ
// holds Jain fairness at the single-cloud baseline (the shared
// virtual-clock space bills tenants federation-wide), and affinity
// routing beats random routing on federated plan-cache hit rate.
func Federation(o Options, shardCounts []int, jobsPerTenant int, mode core.Mode) ([]FederationRow, error) {
	o = o.withDefaults()
	if mode == 0 {
		mode = core.WFQMode
	}
	if jobsPerTenant == 0 {
		jobsPerTenant = 5
	}
	if jobsPerTenant < 0 {
		return nil, fmt.Errorf("exp: negative federation jobs per tenant %d", jobsPerTenant)
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	sorted := append([]int(nil), shardCounts...)
	sort.Ints(sorted)
	var cells []federationCell
	for _, n := range sorted {
		if n < 1 {
			return nil, fmt.Errorf("exp: federation shard count %d < 1", n)
		}
		cells = append(cells, federationCell{shards: n, routing: fed.RouteAffinity})
		if n > 1 {
			cells = append(cells, federationCell{shards: n, routing: fed.RouteRandom})
		}
	}

	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	reps, err := runIndexed(o.workers(), len(cells)*o.Reps, func(i int) (federationRep, error) {
		cell, rep := cells[i/o.Reps], i%o.Reps
		// Every cell is compared against every other (shard counts
		// against the 1-shard baseline, routing arms against each
		// other), so all cells of a rep share one stream: point 0.
		seed := taskSeed(o.Seed, 0, rep)
		jobs, err := federationStream(jobsPerTenant, seed)
		if err != nil {
			return federationRep{}, err
		}
		clouds, err := fed.PartitionClouds(topo, cell.shards, o.Computing, o.Comm, 0.1, o.Seed)
		if err != nil {
			return federationRep{}, err
		}
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		f, err := fed.New(fed.Config{
			Shard: core.Config{
				Placer: place.NewCloudQC(pCfg),
				Model:  o.model(),
				Mode:   mode,
				Seed:   seed,
			},
			Clouds:  clouds,
			Routing: cell.routing,
			// Spill depth 1: yield plan-cache locality to load early,
			// the fairness-leaning setting for bursty tenant mixes.
			SpillDepth: 1,
		})
		if err != nil {
			return federationRep{}, err
		}
		for _, j := range jobs {
			if err := f.StepUntil(j.Arrival); err != nil {
				return federationRep{}, err
			}
			if err := f.Submit(j); err != nil {
				return federationRep{}, err
			}
		}
		results, err := f.Drain()
		if err != nil {
			return federationRep{}, fmt.Errorf("federation %d shards %s rep %d: %w",
				cell.shards, cell.routing, rep, err)
		}
		var r federationRep
		r.outcomes = core.Outcomes(results)
		for _, res := range results {
			if res.Failed {
				r.failed++
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
			if res.Finished > r.makespan {
				r.makespan = res.Finished
			}
		}
		pc := f.PlanCacheStats()
		r.cache = float64(pc.Hits)
		r.misses = float64(pc.Misses)
		r.router = f.RouterStats()
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]FederationRow, 0, len(cells))
	for ci, cell := range cells {
		var jcts, waits []float64
		var outcomes []metrics.JobOutcome
		failed := 0
		var makespan, hits, misses float64
		var router fed.RouterStats
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[ci*o.Reps+rep]
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			outcomes = append(outcomes, r.outcomes...)
			failed += r.failed
			makespan += r.makespan
			hits += r.cache
			misses += r.misses
			router.AffinityHits += r.router.AffinityHits
			router.Spills += r.router.Spills
			router.Cold += r.router.Cold
			router.Random += r.router.Random
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = hits / (hits + misses)
		}
		rows = append(rows, FederationRow{
			Shards:   cell.shards,
			Routing:  cell.routing.String(),
			Stats:    metrics.AggregateOnline(jcts, waits, failed, makespan),
			Fairness: metrics.AggregateSLO(outcomes).Fairness,
			HitRate:  hitRate,
			Router:   router,
		})
	}
	return rows, nil
}

// federationStream builds the figure's 8-tenant bursty mix: each
// tenant repeatedly submits its own template (distinct fingerprints,
// so affinity routing has locality to protect and random routing
// recompiles each template on every shard it scatters to). Templates
// are chosen with comparable gate counts — Jain's index over
// per-tenant mean JCTs should reflect scheduling, not circuit-cost
// luck — and all fit a quarter of the default topology's capacity.
func federationStream(jobsPerTenant int, seed int64) ([]*core.Job, error) {
	templates := []string{
		"wstate_n36", "bv_n70", "cc_n64", "ising_n34",
		"qaoa_n32", "qugan_n39", "ising_n66", "knn_n67",
	}
	mix := make([]workload.TenantSpec, len(templates))
	for i, name := range templates {
		mix[i] = workload.TenantSpec{
			Tenant:           i,
			Priority:         1,
			Workload:         workload.Workload{Name: name, Circuits: []string{name}},
			Jobs:             jobsPerTenant,
			Process:          "bursty",
			MeanInterarrival: 3000,
			MinSlack:         workload.DefaultMinSlack,
			MaxSlack:         workload.DefaultMaxSlack,
		}
	}
	return workload.MultiTenant(mix, seed)
}

// RenderFederation renders federation rows: scaling, fairness, and the
// routing ablation in one table.
func RenderFederation(rows []FederationRow) string {
	headers := []string{"Shards", "Routing", "Done", "Fail", "Jobs/kCX",
		"MeanJCT", "P99JCT", "Jain", "CacheHit", "Affine", "Spill", "Cold", "Rand"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Shards),
			r.Routing,
			fmt.Sprintf("%d", r.Stats.Completed),
			fmt.Sprintf("%d", r.Stats.Failed),
			fmt.Sprintf("%.2f", r.Stats.Throughput),
			stats.F(r.Stats.MeanJCT),
			stats.F(r.Stats.P99JCT),
			fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.2f", r.HitRate),
			fmt.Sprintf("%d", r.Router.AffinityHits),
			fmt.Sprintf("%d", r.Router.Spills),
			fmt.Sprintf("%d", r.Router.Cold),
			fmt.Sprintf("%d", r.Router.Random),
		})
	}
	return stats.Table(headers, out)
}

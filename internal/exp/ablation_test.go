package exp

import (
	"strings"
	"testing"

	"cloudqc/internal/workload"
)

func TestAblationImbalance(t *testing.T) {
	s, err := AblationImbalance(fastOpts(), "qugan_n71")
	if err != nil {
		t.Fatal(err)
	}
	// Five single-α points plus the full-sweep sentinel.
	if len(s.X) != 6 || s.X[len(s.X)-1] != -1 {
		t.Fatalf("X = %v", s.X)
	}
	// The full sweep can never lose to the worst single α: it considers
	// strictly more candidates under the same scoring.
	full := s.Y[len(s.Y)-1]
	worst := s.Y[0]
	for _, y := range s.Y[:len(s.Y)-1] {
		if y > worst {
			worst = y
		}
	}
	if full > worst {
		t.Fatalf("full sweep cost %v worse than worst single α %v", full, worst)
	}
}

func TestAblationBatchOrder(t *testing.T) {
	o := fastOpts()
	o.Reps = 2
	rows, err := AblationBatchOrder(o, workload.Qugan(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanJCT <= 0 || r.P90JCT < r.MeanJCT*0.2 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	out := RenderAblationOrder(rows)
	if !strings.Contains(out, "intensity-asc") || !strings.Contains(out, "fifo") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationMultipath(t *testing.T) {
	o := fastOpts()
	o.Reps = 2
	s, err := AblationMultipath(o, "knn_n67", []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 2 {
		t.Fatalf("X = %v", s.X)
	}
	for _, y := range s.Y {
		if y <= 0 {
			t.Fatalf("JCT = %v", y)
		}
	}
}

func TestAblationFidelity(t *testing.T) {
	o := fastOpts()
	o.Reps = 2
	s, err := AblationFidelity(o, "knn_n67", []float64{0.8, 0.999}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 2 {
		t.Fatalf("Y = %v", s.Y)
	}
	// At link fidelity 0.8 purification must fire (0.8 < 0.9 threshold
	// even at one hop), costing strictly more time than at 0.999.
	if s.Y[0] <= s.Y[1] {
		t.Fatalf("JCT at fidelity 0.8 (%v) should exceed 0.999 (%v)", s.Y[0], s.Y[1])
	}
}

func TestTeleportComparison(t *testing.T) {
	o := fastOpts()
	rows, err := TeleportComparison(o, []string{"adder_n64"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Teleports == 0 || r.PlanNodes >= r.StaticNodes {
		t.Fatalf("adder should migrate: %+v", r)
	}
	if r.PlanJCT >= r.StaticJCT {
		t.Fatalf("adder teleportation should win: %+v", r)
	}
	out := RenderTeleport(rows)
	if !strings.Contains(out, "Speedup") || !strings.Contains(out, "adder_n64") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestIncomingMode(t *testing.T) {
	o := fastOpts()
	o.Reps = 1
	rows, err := IncomingMode(o, workload.Qugan(), 6, []float64{500, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Slower arrivals mean less queueing: mean wait must not increase.
	if rows[1].MeanWait > rows[0].MeanWait+1e-9 {
		t.Fatalf("wait at interarrival 8000 (%v) exceeds 500 (%v)",
			rows[1].MeanWait, rows[0].MeanWait)
	}
	out := RenderIncoming(rows)
	if !strings.Contains(out, "Interarrival") {
		t.Fatalf("render:\n%s", out)
	}
}

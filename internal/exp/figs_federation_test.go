package exp

import (
	"math"
	"strings"
	"testing"

	"cloudqc/internal/core"
)

// TestFederationFigure locks the figure's two acceptance claims on the
// 4-shard / 8-tenant bursty mix: cross-shard WFQ keeps Jain fairness
// within 5% of the single-cloud baseline, and affinity routing beats
// the random-routing ablation on federated plan-cache hit rate.
func TestFederationFigure(t *testing.T) {
	o := Options{Seed: 11, Reps: 3}
	rows, err := Federation(o, []int{1, 4}, 4, core.WFQMode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (1-affinity, 4-affinity, 4-random)", len(rows))
	}
	byCell := map[string]FederationRow{}
	for _, r := range rows {
		byCell[r.Routing+string(rune('0'+r.Shards))] = r
	}
	base, ok1 := byCell["affinity1"]
	aff, ok2 := byCell["affinity4"]
	rnd, ok3 := byCell["random4"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing cells in %+v", rows)
	}

	if base.Stats.Failed != 0 || aff.Stats.Failed != 0 {
		t.Fatalf("failures under affinity routing: base %d, 4-shard %d",
			base.Stats.Failed, aff.Stats.Failed)
	}
	if base.Fairness <= 0 || base.Fairness > 1 {
		t.Fatalf("baseline Jain %v out of range", base.Fairness)
	}
	// Cross-shard WFQ guarantee: sharding must not erode fairness by
	// more than 5% of the single-cloud WFQ baseline.
	if drop := (base.Fairness - aff.Fairness) / base.Fairness; drop > 0.05 {
		t.Fatalf("4-shard Jain %v vs baseline %v: dropped %.1f%% (> 5%%)",
			aff.Fairness, base.Fairness, drop*100)
	}
	// Ablation: affinity routing's plan-cache locality must show up in
	// the federated hit rate.
	if aff.HitRate <= rnd.HitRate {
		t.Fatalf("affinity hit rate %v not above random %v", aff.HitRate, rnd.HitRate)
	}
	// The routing arms draw from disjoint counter sets.
	if aff.Router.Random != 0 || rnd.Router.AffinityHits+rnd.Router.Spills+rnd.Router.Cold != 0 {
		t.Fatalf("router counters crossed arms: affinity %+v, random %+v", aff.Router, rnd.Router)
	}

	out := RenderFederation(rows)
	for _, want := range []string{"Shards", "Jain", "CacheHit", "affinity", "random"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

// TestFederationFigureDeterministic: the figure is bit-identical at
// any worker count.
func TestFederationFigureDeterministic(t *testing.T) {
	run := func(workers int) []FederationRow {
		rows, err := Federation(Options{Seed: 3, Reps: 2, Workers: workers}, []int{1, 2}, 3, core.WFQMode)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.Shards != rb.Shards || ra.Routing != rb.Routing || ra.Router != rb.Router ||
			ra.Stats != rb.Stats || ra.HitRate != rb.HitRate ||
			!(ra.Fairness == rb.Fairness || (math.IsNaN(ra.Fairness) && math.IsNaN(rb.Fairness))) {
			t.Fatalf("row %d differs across worker counts:\n%+v\n%+v", i, ra, rb)
		}
	}
}

package exp

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
)

// TeleportRow compares cat-entangler execution (every remote gate pays
// its own EPR) against teleportation-enabled execution (bursty qubits
// migrate) for one circuit.
type TeleportRow struct {
	Circuit     string
	StaticNodes int
	PlanNodes   int
	Teleports   int
	StaticJCT   float64
	PlanJCT     float64
}

// TeleportCircuits is the default comparison set: two winners (QFT's
// paired-CX phase blocks, the adder's MAJ/UMA ladders), one near-tie,
// and the multiplier counterexample whose alternating Toffoli streams
// make migrations ping-pong.
func TeleportCircuits() []string {
	return []string{"qft_n63", "adder_n64", "swap_test_n115", "multiplier_n45"}
}

// TeleportComparison evaluates the teleportation extension: same
// CloudQC placement, same scheduler, two execution plans.
func TeleportComparison(o Options, circuits []string) ([]TeleportRow, error) {
	o = o.withDefaults()
	if len(circuits) == 0 {
		circuits = TeleportCircuits()
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	cfg := place.DefaultConfig()
	cfg.Seed = o.Seed
	placer := place.NewCloudQC(cfg)
	m := o.model()

	meanJCT := func(d *sched.RemoteDAG) (float64, error) {
		var jcts []float64
		for rep := 0; rep < o.Reps; rep++ {
			rng := rand.New(rand.NewSource(o.Seed + int64(rep)*7919))
			res, err := sched.Run(d, cl, m, sched.CloudQCPolicy{}, rng)
			if err != nil {
				return 0, err
			}
			jcts = append(jcts, res.JCT)
		}
		return stats.Mean(jcts), nil
	}

	var rows []TeleportRow
	for _, name := range circuits {
		c, err := qlib.Build(name)
		if err != nil {
			return nil, err
		}
		pl, err := placer.Place(cl, c)
		if err != nil {
			return nil, fmt.Errorf("teleport comparison: placing %s: %w", name, err)
		}
		static := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, m.Latency)
		plan, st := sched.BuildMigratingDAG(c, cl, pl.QubitToQPU, m.Latency, sched.PlanOptions{})
		sJCT, err := meanJCT(static)
		if err != nil {
			return nil, err
		}
		pJCT, err := meanJCT(plan)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TeleportRow{
			Circuit:     name,
			StaticNodes: static.Len(),
			PlanNodes:   plan.Len(),
			Teleports:   st.Teleports,
			StaticJCT:   sJCT,
			PlanJCT:     pJCT,
		})
	}
	return rows, nil
}

// RenderTeleport renders teleport comparison rows.
func RenderTeleport(rows []TeleportRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Circuit,
			fmt.Sprintf("%d", r.StaticNodes),
			fmt.Sprintf("%d", r.PlanNodes),
			fmt.Sprintf("%d", r.Teleports),
			stats.F(r.StaticJCT),
			stats.F(r.PlanJCT),
			fmt.Sprintf("%.2fx", r.StaticJCT/r.PlanJCT),
		})
	}
	return stats.Table(
		[]string{"Circuit", "RemoteGates", "PlanNodes", "Teleports", "CatJCT", "TeleJCT", "Speedup"},
		out)
}

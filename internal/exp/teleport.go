package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
)

// TeleportRow compares cat-entangler execution (every remote gate pays
// its own EPR) against teleportation-enabled execution (bursty qubits
// migrate) for one circuit.
type TeleportRow struct {
	Circuit     string
	StaticNodes int
	PlanNodes   int
	Teleports   int
	StaticJCT   float64
	PlanJCT     float64
}

// TeleportCircuits is the default comparison set: two winners (QFT's
// paired-CX phase blocks, the adder's MAJ/UMA ladders), one near-tie,
// and the multiplier counterexample whose alternating Toffoli streams
// make migrations ping-pong.
func TeleportCircuits() []string {
	return []string{"qft_n63", "adder_n64", "swap_test_n115", "multiplier_n45"}
}

// teleportPlans holds one circuit's two execution DAGs.
type teleportPlans struct {
	static, plan *sched.RemoteDAG
	teleports    int
}

// TeleportComparison evaluates the teleportation extension: same
// CloudQC placement, same scheduler, two execution plans. Placements
// (one per circuit) and simulations (circuit × plan × rep) fan out to
// the worker pool; the two plans of a circuit share per-rep streams so
// their JCT ratio isolates the execution strategy.
func TeleportComparison(o Options, circuits []string) ([]TeleportRow, error) {
	o = o.withDefaults()
	if len(circuits) == 0 {
		circuits = TeleportCircuits()
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	m := o.model()

	plans, err := runIndexed(o.workers(), len(circuits), func(ci int) (teleportPlans, error) {
		c, err := qlib.Build(circuits[ci])
		if err != nil {
			return teleportPlans{}, err
		}
		cfg := place.DefaultConfig()
		cfg.Seed = o.Seed
		pl, err := place.NewCloudQC(cfg).Place(cloud.New(topo, o.Computing, o.Comm), c)
		if err != nil {
			return teleportPlans{}, fmt.Errorf("teleport comparison: placing %s: %w", circuits[ci], err)
		}
		static := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, m.Latency)
		plan, st := sched.BuildMigratingDAG(c, cl, pl.QubitToQPU, m.Latency, sched.PlanOptions{})
		return teleportPlans{static: static, plan: plan, teleports: st.Teleports}, nil
	})
	if err != nil {
		return nil, err
	}

	// Flat (circuit × {static,plan} × rep) simulation grid; circuit ci is
	// sweep point ci, and both plans replay its rep streams.
	flat, err := runIndexed(o.workers(), len(circuits)*2*o.Reps, func(i int) (float64, error) {
		rep := i % o.Reps
		variant := (i / o.Reps) % 2
		ci := i / (2 * o.Reps)
		dag := plans[ci].static
		if variant == 1 {
			dag = plans[ci].plan
		}
		res, err := sched.Run(dag, cl, m, sched.CloudQCPolicy{}, taskRNG(o.Seed, ci, rep))
		if err != nil {
			return 0, err
		}
		return res.JCT, nil
	})
	if err != nil {
		return nil, err
	}
	means := meanPerPoint(flat, len(circuits)*2, o.Reps)

	var rows []TeleportRow
	for ci, name := range circuits {
		rows = append(rows, TeleportRow{
			Circuit:     name,
			StaticNodes: plans[ci].static.Len(),
			PlanNodes:   plans[ci].plan.Len(),
			Teleports:   plans[ci].teleports,
			StaticJCT:   means[ci*2],
			PlanJCT:     means[ci*2+1],
		})
	}
	return rows, nil
}

// RenderTeleport renders teleport comparison rows.
func RenderTeleport(rows []TeleportRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Circuit,
			fmt.Sprintf("%d", r.StaticNodes),
			fmt.Sprintf("%d", r.PlanNodes),
			fmt.Sprintf("%d", r.Teleports),
			stats.F(r.StaticJCT),
			stats.F(r.PlanJCT),
			fmt.Sprintf("%.2fx", r.StaticJCT/r.PlanJCT),
		})
	}
	return stats.Table(
		[]string{"Circuit", "RemoteGates", "PlanNodes", "Teleports", "CatJCT", "TeleJCT", "Speedup"},
		out)
}

package exp

import (
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// OnlineRow is one (workload × arrival rate) cell of the online figure:
// job-stream statistics plus time-weighted cloud utilization for a
// stream of incoming jobs at the given mean inter-arrival time.
type OnlineRow struct {
	Workload         string
	MeanInterarrival float64
	Stats            metrics.OnlineStats
	MeanUtilization  float64
}

// onlineRep is one (workload × rate × rep) task's raw outcome.
type onlineRep struct {
	jcts, waits []float64
	failed      int
	makespan    float64
	utilization float64
}

// Online evaluates the paper's "incoming jobs" setting across the four
// evaluation workloads: jobs arrive over time (arrival process
// "poisson", "uniform", or "bursty"; see workload.Arrivals), the
// admission manager (mode; 0 means batch) admits and places them as
// capacity allows, and each cell reports throughput, JCT percentiles,
// wait time, and mean utilization. Sweeping interarrivals traces JCT
// and utilization vs. arrival rate — faster arrivals mean deeper
// queues, longer waits, higher utilization.
//
// Online streams are tenant-oblivious and deadline-free, so EDFMode
// reduces to FIFO order and WFQMode to batch order here; SLO is the
// figure where those modes differentiate.
//
// Tasks fan out to the experiment worker pool: one point per
// (workload × rate), with arrival rates sharing per-rep streams so each
// column of the figure faces the same job population at different
// spacings.
func Online(o Options, process string, size int, interarrivals []float64, mode core.Mode) ([]OnlineRow, error) {
	o = o.withDefaults()
	if mode == 0 {
		mode = core.BatchMode
	}
	if size == 0 {
		size = 10
	}
	if size < 0 {
		return nil, fmt.Errorf("exp: negative online stream size %d", size)
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{500, 2000, 8000}
	}
	workloads := workload.All()
	points := len(workloads) * len(interarrivals)
	reps, err := runIndexed(o.workers(), points*o.Reps, func(i int) (onlineRep, error) {
		pt, rep := i/o.Reps, i%o.Reps
		wi, ii := pt/len(interarrivals), pt%len(interarrivals)
		// Seed by (workload, rep) only: every arrival rate replays the
		// same circuit draws and arrival-gap stream, stretched to its
		// spacing, so the sweep isolates the rate.
		seed := taskSeed(o.Seed, wi, rep)
		jobs, err := workloads[wi].Arrivals(process, size, interarrivals[ii], seed)
		if err != nil {
			return onlineRep{}, err
		}
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		rec := metrics.NewRecorder(0)
		ct, err := core.NewController(core.Config{
			Cloud:    o.cloudFor(),
			Placer:   place.NewCloudQC(pCfg),
			Policy:   sched.CloudQCPolicy{},
			Model:    o.model(),
			Mode:     mode,
			Seed:     seed,
			Recorder: rec,
		})
		if err != nil {
			return onlineRep{}, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return onlineRep{}, fmt.Errorf("online %s ia=%v rep %d: %w",
				workloads[wi].Name, interarrivals[ii], rep, err)
		}
		var r onlineRep
		for _, res := range results {
			if res.Failed {
				r.failed++
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
			if res.Finished > r.makespan {
				r.makespan = res.Finished
			}
		}
		r.utilization = rec.MeanUtilization()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]OnlineRow, 0, points)
	for pt := 0; pt < points; pt++ {
		wi, ii := pt/len(interarrivals), pt%len(interarrivals)
		var jcts, waits []float64
		failed := 0
		var makespan, utilArea float64
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[pt*o.Reps+rep]
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			failed += r.failed
			makespan += r.makespan
			// Weight each rep's mean utilization by its horizon so the
			// row's utilization and throughput cover the same combined
			// span (an unweighted average would let a short rep's value
			// count as much as a long one's).
			utilArea += r.utilization * r.makespan
		}
		util := 0.0
		if makespan > 0 {
			util = utilArea / makespan
		}
		rows = append(rows, OnlineRow{
			Workload:         workloads[wi].Name,
			MeanInterarrival: interarrivals[ii],
			// Throughput over the summed makespans: completed jobs per
			// kCX of simulated time across all reps.
			Stats:           metrics.AggregateOnline(jcts, waits, failed, makespan),
			MeanUtilization: util,
		})
	}
	return rows, nil
}

// RenderOnline renders online rows grouped by workload.
func RenderOnline(rows []OnlineRow) string {
	headers := []string{"Workload", "Interarrival", "Done", "Fail",
		"Jobs/kCX", "MeanJCT", "P50JCT", "P99JCT", "MeanWait", "MeanUtil"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload,
			stats.F(r.MeanInterarrival),
			fmt.Sprintf("%d", r.Stats.Completed),
			fmt.Sprintf("%d", r.Stats.Failed),
			fmt.Sprintf("%.2f", r.Stats.Throughput),
			stats.F(r.Stats.MeanJCT),
			stats.F(r.Stats.P50JCT),
			stats.F(r.Stats.P99JCT),
			stats.F(r.Stats.MeanWait),
			fmt.Sprintf("%.2f", r.MeanUtilization),
		})
	}
	return stats.Table(headers, out)
}

package exp

import (
	"reflect"
	"strings"
	"testing"
)

func TestOnlineRowsCoverWorkloadsAndRates(t *testing.T) {
	o := Defaults()
	o.Reps = 1
	rows, err := Online(o, "poisson", 4, []float64{1000, 5000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*2 {
		t.Fatalf("rows = %d, want 4 workloads x 2 rates", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Completed+r.Stats.Failed == 0 {
			t.Fatalf("row %+v saw no jobs", r)
		}
		if r.Stats.Completed > 0 && (r.Stats.MeanJCT <= 0 || r.Stats.Throughput <= 0) {
			t.Fatalf("row %+v has degenerate stats", r)
		}
		if r.MeanUtilization < 0 || r.MeanUtilization > 1 {
			t.Fatalf("utilization %v outside [0,1]", r.MeanUtilization)
		}
	}
	out := RenderOnline(rows)
	if !strings.Contains(out, "Mixed") || !strings.Contains(out, "P99JCT") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

// TestOnlineDeterministicAcrossWorkers: the online figure must be
// bit-identical at any worker-pool size, like every other experiment.
func TestOnlineDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []OnlineRow {
		o := Defaults()
		o.Reps = 1
		o.Workers = workers
		rows, err := Online(o, "bursty", 4, []float64{2000}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	sequential, parallel := run(1), run(4)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatalf("worker count changed results:\nworkers=1: %+v\nworkers=4: %+v",
			sequential, parallel)
	}
}

func TestOnlineUnknownProcessErrors(t *testing.T) {
	o := Defaults()
	o.Reps = 1
	if _, err := Online(o, "fractal", 3, []float64{1000}, 0); err == nil {
		t.Fatal("unknown arrival process should error")
	}
}

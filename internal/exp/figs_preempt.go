package exp

import (
	"fmt"

	"cloudqc/internal/core"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

// preemptArm is one line of the preemption figure: a preemption policy
// layered under EDF admission. Admission is held fixed across arms so a
// cell difference isolates preemption itself, not the queue order.
type preemptArm struct {
	name   string
	policy core.PreemptPolicy
}

// preemptArms are the figure's three arms: run-to-completion (the
// pre-preemption controller), deadline rescue, and priority preemption.
func preemptArms() []preemptArm {
	return []preemptArm{
		{"Off", core.PreemptOff},
		{"Rescue", core.PreemptRescue},
		{"Priority", core.PreemptPriority},
	}
}

// PreemptRow is one (workload × arrival rate × preemption policy) cell:
// SLO attainment and fairness, stream statistics (the p99 JCT axis of
// the figure), and the preemption counters that explain them.
type PreemptRow struct {
	Workload         string
	MeanInterarrival float64
	Policy           string
	SLO              metrics.SLOStats
	Stream           metrics.OnlineStats
	Preempt          core.PreemptStats
}

// preemptRep is one (cell × rep) task's raw outcome.
type preemptRep struct {
	outcomes    []metrics.JobOutcome
	jcts, waits []float64
	failed      int
	makespan    float64
	preempt     core.PreemptStats
}

// Preemption traces SLO attainment and p99 JCT against load for
// preemption off/rescue/priority: each cell runs the three-tenant mix
// (weights 1/2/4, deadlines from circuit depth × slack) under EDF
// admission, varying only the preemption policy. At high load the
// rescue arm's checkpoint-and-displace recovers deadlines a
// run-to-completion controller must miss — the figure the tentpole's
// acceptance criterion pins (see TestRescueImprovesAttainment).
//
// Seeding follows the package convention: the per-task seed depends on
// (workload, rep) only, so every load level and every policy replays
// identical tenant mixes.
func Preemption(o Options, process string, perTenant int, interarrivals []float64) ([]PreemptRow, error) {
	o = o.withDefaults()
	if perTenant == 0 {
		perTenant = 4
	}
	if perTenant < 0 {
		return nil, fmt.Errorf("exp: negative per-tenant stream size %d", perTenant)
	}
	if len(interarrivals) == 0 {
		interarrivals = []float64{300, 1000, 4000}
	}
	workloads := workload.All()
	arms := preemptArms()
	points := len(workloads) * len(interarrivals) * len(arms)
	reps, err := runIndexed(o.workers(), points*o.Reps, func(i int) (preemptRep, error) {
		pt, rep := i/o.Reps, i%o.Reps
		wi := pt / (len(interarrivals) * len(arms))
		ii := pt / len(arms) % len(interarrivals)
		ai := pt % len(arms)
		seed := taskSeed(o.Seed, wi, rep)
		mix := workload.DefaultTenantMix(workloads[wi], perTenant, process, interarrivals[ii])
		jobs, err := workload.MultiTenant(mix, seed)
		if err != nil {
			return preemptRep{}, err
		}
		pCfg := place.DefaultConfig()
		pCfg.Seed = seed
		ct, err := core.NewController(core.Config{
			Cloud:   o.cloudFor(),
			Placer:  place.NewCloudQC(pCfg),
			Model:   o.model(),
			Mode:    core.EDFMode,
			Seed:    seed,
			Preempt: arms[ai].policy,
		})
		if err != nil {
			return preemptRep{}, err
		}
		results, err := ct.Run(jobs)
		if err != nil {
			return preemptRep{}, fmt.Errorf("preempt %s %s ia=%v rep %d: %w",
				workloads[wi].Name, arms[ai].name, interarrivals[ii], rep, err)
		}
		r := preemptRep{outcomes: core.Outcomes(results), preempt: ct.PreemptStats()}
		for _, res := range results {
			if res.Failed {
				r.failed++
				continue
			}
			r.jcts = append(r.jcts, res.JCT)
			r.waits = append(r.waits, res.WaitTime)
			if res.Finished > r.makespan {
				r.makespan = res.Finished
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PreemptRow, 0, points)
	for pt := 0; pt < points; pt++ {
		wi := pt / (len(interarrivals) * len(arms))
		ii := pt / len(arms) % len(interarrivals)
		ai := pt % len(arms)
		var outcomes []metrics.JobOutcome
		var jcts, waits []float64
		failed := 0
		var makespan float64
		var ps core.PreemptStats
		for rep := 0; rep < o.Reps; rep++ {
			r := reps[pt*o.Reps+rep]
			outcomes = append(outcomes, r.outcomes...)
			jcts = append(jcts, r.jcts...)
			waits = append(waits, r.waits...)
			failed += r.failed
			makespan += r.makespan
			ps.Add(r.preempt)
		}
		rows = append(rows, PreemptRow{
			Workload:         workloads[wi].Name,
			MeanInterarrival: interarrivals[ii],
			Policy:           arms[ai].name,
			SLO:              metrics.AggregateSLO(outcomes),
			Stream:           metrics.AggregateOnline(jcts, waits, failed, makespan),
			Preempt:          ps,
		})
	}
	return rows, nil
}

// RenderPreemption renders preemption rows grouped by workload and
// arrival rate: the attainment and p99 JCT columns are the figure's two
// y-axes, the counter columns its annotations.
func RenderPreemption(rows []PreemptRow) string {
	headers := []string{"Workload", "Interarrival", "Preempt", "Done", "Fail",
		"Attain", "Jain", "MeanJCT", "P99JCT", "Preempted", "Resumed", "Rescued"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload,
			stats.F(r.MeanInterarrival),
			r.Policy,
			fmt.Sprintf("%d", r.Stream.Completed),
			fmt.Sprintf("%d", r.Stream.Failed),
			fmtFrac(r.SLO.Attainment),
			fmtFrac(r.SLO.Fairness),
			stats.F(r.Stream.MeanJCT),
			stats.F(r.Stream.P99JCT),
			fmt.Sprintf("%d", r.Preempt.Preemptions),
			fmt.Sprintf("%d", r.Preempt.Resumes),
			fmt.Sprintf("%d", r.Preempt.RescuedDeadlines),
		})
	}
	return stats.Table(headers, out)
}

package exp

import (
	"reflect"
	"strings"
	"testing"
)

func sloTestOptions(workers int) Options {
	o := Defaults()
	o.Reps = 1
	o.Workers = workers
	return o
}

func TestSLORowsCoverGrid(t *testing.T) {
	rows, err := SLO(sloTestOptions(0), "poisson", 2, []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 1 rate × 5 schedulers.
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	schedulers := map[string]bool{}
	for _, r := range rows {
		schedulers[r.Method] = true
		if r.Stream.Completed+r.Stream.Failed != 6 {
			t.Fatalf("row %s/%s accounts for %d jobs, want 6",
				r.Workload, r.Method, r.Stream.Completed+r.Stream.Failed)
		}
		if r.Stream.Completed > 0 {
			if !(r.SLO.Attainment >= 0 && r.SLO.Attainment <= 1) {
				t.Fatalf("attainment out of range: %+v", r)
			}
			if !(r.SLO.Fairness > 0 && r.SLO.Fairness <= 1+1e-12) {
				t.Fatalf("fairness out of range: %+v", r)
			}
			if len(r.SLO.PerTenant) == 0 {
				t.Fatalf("missing per-tenant breakdown: %+v", r)
			}
		}
	}
	for _, m := range []string{"Batch", "FIFO", "EDF", "WFQ", "WFQ+TW"} {
		if !schedulers[m] {
			t.Fatalf("scheduler %s missing from rows (have %v)", m, schedulers)
		}
	}
	text := RenderSLO(rows)
	for _, col := range []string{"Attain", "Jain", "Scheduler"} {
		if !strings.Contains(text, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, text)
		}
	}
}

// TestSLODeterministicAcrossWorkers is the figure's bit-identical
// guarantee: any -workers value must reproduce the sequential rows
// exactly, including the tenant-aware modes.
func TestSLODeterministicAcrossWorkers(t *testing.T) {
	seq, err := SLO(sloTestOptions(1), "poisson", 1, []float64{1500})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SLO(sloTestOptions(8), "poisson", 1, []float64{1500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ across worker counts:\nseq %+v\npar %+v", seq, par)
	}
}

func TestSLOValidation(t *testing.T) {
	if _, err := SLO(sloTestOptions(1), "fractal", 2, []float64{1000}); err == nil {
		t.Fatal("unknown arrival process should error")
	}
	if _, err := SLO(sloTestOptions(1), "poisson", -1, []float64{1000}); err == nil {
		t.Fatal("negative stream size should error")
	}
}

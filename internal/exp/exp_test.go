package exp

import (
	"strings"
	"testing"

	"cloudqc/internal/workload"
)

// fastOpts keeps experiment unit tests quick while exercising the full
// pipeline.
func fastOpts() Options {
	o := Defaults()
	o.Reps = 1
	return o
}

func TestTableIMentionsAllOps(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Single-qubit", "CX and CZ", "Measure", "EPR preparation", "10 CX"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TableI missing %q:\n%s", want, out)
		}
	}
}

func TestTable2CoversPaperRows(t *testing.T) {
	rows := Table2()
	if len(rows) != 21 {
		t.Fatalf("Table2 rows = %d, want 21", len(rows))
	}
	for _, r := range rows {
		if r.GenTwoQubit <= 0 || r.GenDepth <= 0 {
			t.Fatalf("row %s has degenerate generated stats: %+v", r.Name, r)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "qft_n160") || !strings.Contains(out, "25440") {
		t.Fatalf("render missing expected cells:\n%s", out)
	}
}

func TestTable3SmallSubset(t *testing.T) {
	rows, err := Table3(fastOpts(), []string{"ghz_n127", "ising_n66"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range Table3Methods() {
			if _, ok := r.Remote[m]; !ok {
				t.Fatalf("row %s missing method %s", r.Circuit, m)
			}
		}
		// Paper's headline: CloudQC beats Random on structured circuits.
		if r.Remote["CloudQC"] > r.Remote["Random"] {
			t.Errorf("%s: CloudQC %d worse than Random %d",
				r.Circuit, r.Remote["CloudQC"], r.Remote["Random"])
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "ghz_n127") || !strings.Contains(out, "CloudQC-BFS") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestOverheadVsCapacitySkipsInfeasiblePoints(t *testing.T) {
	// 10 qubits/QPU x 20 QPUs = 200 < 127? no, fits; use a capacity the
	// circuit cannot fit to confirm skipping: qft_n160 at 10x20=200 fits
	// too, so use a tiny sweep value via custom opts.
	o := fastOpts()
	series, err := OverheadVsCapacity(o, "ghz_n127", []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for _, x := range s.X {
			if x == 5 {
				t.Fatalf("capacity 5 (cloud 100 < 127 qubits) should be skipped for %s", s.Method)
			}
		}
		if len(s.X) != 1 {
			t.Fatalf("series %s X = %v, want just capacity 20", s.Method, s.X)
		}
	}
}

func TestOverheadVsCapacityOrdering(t *testing.T) {
	series, err := OverheadVsCapacity(fastOpts(), "qugan_n111", []int{20, 50})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range series {
		byName[s.Method] = s.Y
	}
	if len(byName) != 5 {
		t.Fatalf("methods = %v", byName)
	}
	// CloudQC should beat Random at every swept capacity (paper Fig. 6).
	for i := range byName["CloudQC"] {
		if byName["CloudQC"][i] > byName["Random"][i] {
			t.Errorf("capacity idx %d: CloudQC %v worse than Random %v",
				i, byName["CloudQC"][i], byName["Random"][i])
		}
	}
}

func TestJCTVsCommQubitsShape(t *testing.T) {
	series, err := JCTVsCommQubits(fastOpts(), "qugan_n111", []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("policies = %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %s: %v %v", s.Method, s.X, s.Y)
		}
		if s.Y[0] <= 0 {
			t.Fatalf("series %s: non-positive JCT", s.Method)
		}
	}
}

func TestJCTVsEPRProbDecreases(t *testing.T) {
	o := fastOpts()
	o.Reps = 3
	series, err := JCTVsEPRProb(o, "qugan_n111", []float64{0.1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.Y[1] >= s.Y[0] {
			t.Errorf("%s: JCT at p=0.5 (%v) should beat p=0.1 (%v)", s.Method, s.Y[1], s.Y[0])
		}
	}
}

func TestFig22RelativeToCloudQC(t *testing.T) {
	rows, err := Fig22(fastOpts(), []string{"vqe_uccsd_n28"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Relative["CloudQC"] != 1 {
		t.Fatalf("CloudQC relative JCT = %v, want 1", r.Relative["CloudQC"])
	}
	for _, m := range []string{"Greedy", "Average", "Random"} {
		if r.Relative[m] <= 0 {
			t.Fatalf("%s relative JCT = %v", m, r.Relative[m])
		}
	}
	out := RenderFig22(rows)
	if !strings.Contains(out, "vqe_uccsd_n28") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMultiTenantCDFSmall(t *testing.T) {
	series, err := MultiTenantCDF(fastOpts(), workload.Qugan(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("methods = %d", len(series))
	}
	for _, s := range series {
		if len(s.JCTs) != 4 {
			t.Fatalf("%s: jobs = %d, want 4", s.Method, len(s.JCTs))
		}
		if len(s.Points) == 0 || s.Points[len(s.Points)-1].P != 1 {
			t.Fatalf("%s: malformed CDF %v", s.Method, s.Points)
		}
	}
	out := RenderCDF(series)
	for _, m := range MultiTenantMethods() {
		if !strings.Contains(out, m) {
			t.Fatalf("render missing %s:\n%s", m, out)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	o := Defaults()
	if o.QPUs != 20 || o.Computing != 20 || o.Comm != 5 || o.EdgeProb != 0.3 || o.EPRProb != 0.3 {
		t.Fatalf("Defaults = %+v, want the paper's Sec. VI-A setting", o)
	}
}

func TestWithDefaultsFillsZeroFields(t *testing.T) {
	o := Options{Seed: 9}.withDefaults()
	if o.QPUs != 20 || o.Reps != 3 || o.Seed != 9 {
		t.Fatalf("withDefaults = %+v", o)
	}
}

func TestWithDefaultsBackfillsSeed(t *testing.T) {
	// A zero-valued Options must run with the documented default seed,
	// not silently with seed 0.
	o := Options{}.withDefaults()
	if o.Seed != Defaults().Seed {
		t.Fatalf("Seed = %d, want default %d", o.Seed, Defaults().Seed)
	}
	if o.Workers != 0 {
		t.Fatalf("Workers = %d, want 0 (resolved to CPU count at run time)", o.Workers)
	}
}

func TestFmtXSentinel(t *testing.T) {
	cases := map[float64]string{
		-1:   "-1",
		0:    "0",
		0.15: "0.15",
		0.1:  "0.10",
		1:    "1",
		5:    "5",
	}
	for x, want := range cases {
		if got := fmtX(x); got != want {
			t.Errorf("fmtX(%v) = %q, want %q", x, got, want)
		}
	}
}

func TestRenderSweepRaggedSeries(t *testing.T) {
	// One method missing part of the sweep must not panic; its missing
	// cells render as "-".
	s := []SweepSeries{
		{Method: "Short", X: []float64{1}, Y: []float64{10}},
		{Method: "Full", X: []float64{1, 2}, Y: []float64{30, 40}},
	}
	out := RenderSweep("x", s)
	if !strings.Contains(out, "40") || !strings.Contains(out, "-") {
		t.Fatalf("ragged render:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want header + rule + 2 rows:\n%s", out)
	}
}

func TestRenderSweepAlignsByXValue(t *testing.T) {
	// A mid-sweep gap must leave "-" in the gap row, not shift later
	// values onto the wrong x.
	s := []SweepSeries{
		{Method: "Gappy", X: []float64{1, 3}, Y: []float64{10, 30}},
		{Method: "Full", X: []float64{1, 2, 3}, Y: []float64{70, 80, 90}},
	}
	lines := strings.Split(strings.TrimSpace(RenderSweep("x", s)), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + rule + 3 rows:\n%v", lines)
	}
	for _, want := range []struct{ row, cells string }{
		{lines[2], "1  10  70"},
		{lines[3], "2  -  80"},
		{lines[4], "3  30  90"},
	} {
		if strings.Join(strings.Fields(want.row), "  ") != want.cells {
			t.Errorf("row %q, want cells %q", want.row, want.cells)
		}
	}
}

func TestNegativeRepsFallBackToDefault(t *testing.T) {
	// A negative -reps must not panic the experiment engine (it used to
	// reach make([]T, n) with n < 0); it degrades to the default.
	o := Options{Reps: -1}.withDefaults()
	if o.Reps != Defaults().Reps {
		t.Fatalf("Reps = %d, want default %d", o.Reps, Defaults().Reps)
	}
	if _, err := runIndexed(4, -3, func(int) (int, error) { return 0, nil }); err != nil {
		t.Fatalf("negative n should be a no-op, got %v", err)
	}
}

func TestRenderSweepLayout(t *testing.T) {
	s := []SweepSeries{
		{Method: "A", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Method: "B", X: []float64{1, 2}, Y: []float64{30, 40}},
	}
	out := RenderSweep("x", s)
	if !strings.Contains(out, "A") || !strings.Contains(out, "40") {
		t.Fatalf("render:\n%s", out)
	}
	if RenderSweep("x", nil) != "" {
		t.Fatal("empty series should render empty")
	}
}

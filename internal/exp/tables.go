package exp

import (
	"fmt"

	"cloudqc/internal/circuit"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/stats"
)

// Table2Row compares one circuit's paper-reported characteristics with
// the qlib generator's output.
type Table2Row struct {
	Name                       string
	Qubits                     int
	PaperTwoQubit, GenTwoQubit int
	PaperDepth, GenDepth       int
}

// Table2 regenerates Table II: for every benchmark the paper lists, the
// generated circuit's characteristics next to the published ones.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, p := range qlib.Table2() {
		c := qlib.MustBuild(p.Name)
		rows = append(rows, Table2Row{
			Name:          p.Name,
			Qubits:        c.NumQubits(),
			PaperTwoQubit: p.TwoQubit,
			GenTwoQubit:   c.TwoQubitGateCount(),
			PaperDepth:    p.Depth,
			GenDepth:      c.Depth(),
		})
	}
	return rows
}

// RenderTable2 renders Table2 rows.
func RenderTable2(rows []Table2Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprintf("%d", r.Qubits),
			fmt.Sprintf("%d", r.PaperTwoQubit),
			fmt.Sprintf("%d", r.GenTwoQubit),
			fmt.Sprintf("%d", r.PaperDepth),
			fmt.Sprintf("%d", r.GenDepth),
		})
	}
	return stats.Table(
		[]string{"Circuit", "Qubits", "2q(paper)", "2q(gen)", "Depth(paper)", "Depth(gen)"},
		out)
}

// Table3Circuits lists the paper's Table III benchmark set in row order.
func Table3Circuits() []string {
	return []string{
		"ghz_n127", "bv_n70", "bv_n140", "ising_n34", "ising_n66", "ising_n98",
		"cat_n65", "cat_n130", "swap_test_n115", "knn_n67", "knn_n129",
		"qugan_n71", "qugan_n111", "cc_n64", "adder_n64", "adder_n118",
		"multiplier_n45", "multiplier_n75", "qft_n63", "qft_n160",
	}
}

// Table3Methods lists the placement methods in the paper's column order.
func Table3Methods() []string {
	return []string{"SA", "Random", "GA", "CloudQC-BFS", "CloudQC"}
}

// Table3Row holds one circuit's remote-operation counts per placement
// method.
type Table3Row struct {
	Circuit string
	Remote  map[string]int
}

// placersFor constructs the five Table III placement algorithms.
func placersFor(o Options) []place.Placer {
	bfsCfg := place.DefaultConfig()
	bfsCfg.UseBFS = true
	bfsCfg.Seed = o.Seed
	cqCfg := place.DefaultConfig()
	cqCfg.Seed = o.Seed
	return []place.Placer{
		place.NewAnnealer(o.Seed),
		place.NewRandom(o.Seed),
		place.NewGenetic(o.Seed),
		place.NewCloudQC(bfsCfg),
		place.NewCloudQC(cqCfg),
	}
}

// Table3 regenerates Table III: single-circuit placement remote-op
// counts for every method over the benchmark set. Every (circuit ×
// method) placement runs as an independent worker-pool task with its
// own placer and cloud; placements are deterministic in Options.Seed.
func Table3(o Options, circuits []string) ([]Table3Row, error) {
	o = o.withDefaults()
	if len(circuits) == 0 {
		circuits = Table3Circuits()
	}
	built, err := runIndexed(o.workers(), len(circuits), func(ci int) (*circuit.Circuit, error) {
		return qlib.Build(circuits[ci])
	})
	if err != nil {
		return nil, err
	}
	nMethods := len(placersFor(o))
	remote, err := runIndexed(o.workers(), len(circuits)*nMethods, func(i int) (int, error) {
		ci, pi := i/nMethods, i%nMethods
		p := placersFor(o)[pi] // fresh placer per task: SA/GA/Random hold internal RNG state
		cl := o.cloudFor()     // fresh reservations per method
		pl, err := p.Place(cl, built[ci])
		if err != nil {
			return 0, fmt.Errorf("table3: %s on %s: %w", p.Name(), circuits[ci], err)
		}
		return place.RemoteOps(built[ci], pl.QubitToQPU), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for ci, name := range circuits {
		row := Table3Row{Circuit: name, Remote: map[string]int{}}
		for pi, p := range placersFor(o) {
			row.Remote[p.Name()] = remote[ci*nMethods+pi]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 renders Table3 rows in the paper's column order.
func RenderTable3(rows []Table3Row) string {
	headers := append([]string{"Circuit"}, Table3Methods()...)
	var out [][]string
	for _, r := range rows {
		row := []string{r.Circuit}
		for _, m := range Table3Methods() {
			row = append(row, fmt.Sprintf("%d", r.Remote[m]))
		}
		out = append(out, row)
	}
	return stats.Table(headers, out)
}

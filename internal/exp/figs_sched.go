package exp

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
)

// SchedPolicies returns the four allocation policies of the scheduling
// evaluation in the paper's legend order.
func SchedPolicies() []sched.Policy {
	return []sched.Policy{
		sched.GreedyPolicy{},
		sched.AveragePolicy{},
		sched.RandomPolicy{},
		sched.CloudQCPolicy{},
	}
}

// CommQubitSweep is the x-axis of Figs. 10-13.
func CommQubitSweep() []int { return []int{5, 6, 7, 8, 9, 10} }

// EPRProbSweep is the x-axis of Figs. 18-21.
func EPRProbSweep() []float64 { return []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5} }

// SchedCircuits lists the representative circuits of Figs. 10-13 and
// 18-21 in figure order.
func SchedCircuits() []string {
	return []string{"qugan_n111", "qft_n160", "multiplier_n75", "qv_n100"}
}

// schedFixture places a circuit once (with CloudQC placement) so every
// policy schedules the identical remote DAG.
type schedFixture struct {
	topo   *graph.Graph
	circ   string
	assign []int
}

func newSchedFixture(o Options, circuitName string) (*schedFixture, error) {
	c, err := qlib.Build(circuitName)
	if err != nil {
		return nil, err
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	cfg := place.DefaultConfig()
	cfg.Seed = o.Seed
	pl, err := place.NewCloudQC(cfg).Place(cl, c)
	if err != nil {
		return nil, fmt.Errorf("sched fixture: placing %s: %w", circuitName, err)
	}
	return &schedFixture{topo: topo, circ: circuitName, assign: pl.QubitToQPU}, nil
}

// meanJCT runs the fixture's remote DAG under one policy on a cloud with
// the given comm qubits and EPR probability, averaged over o.Reps seeds.
func (f *schedFixture) meanJCT(o Options, p sched.Policy, comm int, prob float64) (float64, error) {
	c := qlib.MustBuild(f.circ)
	cl := cloud.New(f.topo, o.Computing, comm)
	m := epr.DefaultModel()
	m.SuccessProb = prob
	dag := sched.BuildRemoteDAG(c, cl, f.assign, m.Latency)
	var jcts []float64
	for rep := 0; rep < o.Reps; rep++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(rep)*7919))
		res, err := sched.Run(dag, cl, m, p, rng)
		if err != nil {
			return 0, err
		}
		jcts = append(jcts, res.JCT)
	}
	return stats.Mean(jcts), nil
}

// JCTVsCommQubits regenerates one of Figs. 10-13: mean job completion
// time per policy as communication qubits per QPU vary.
func JCTVsCommQubits(o Options, circuitName string, comm []int) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(comm) == 0 {
		comm = CommQubitSweep()
	}
	f, err := newSchedFixture(o, circuitName)
	if err != nil {
		return nil, err
	}
	var series []SweepSeries
	for _, p := range SchedPolicies() {
		s := SweepSeries{Method: p.Name()}
		for _, cq := range comm {
			jct, err := f.meanJCT(o, p, cq, o.EPRProb)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(cq))
			s.Y = append(s.Y, jct)
		}
		series = append(series, s)
	}
	return series, nil
}

// JCTVsEPRProb regenerates one of Figs. 18-21: mean job completion time
// per policy as the EPR success probability varies.
func JCTVsEPRProb(o Options, circuitName string, probs []float64) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(probs) == 0 {
		probs = EPRProbSweep()
	}
	f, err := newSchedFixture(o, circuitName)
	if err != nil {
		return nil, err
	}
	var series []SweepSeries
	for _, p := range SchedPolicies() {
		s := SweepSeries{Method: p.Name()}
		for _, prob := range probs {
			jct, err := f.meanJCT(o, p, o.Comm, prob)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, prob)
			s.Y = append(s.Y, jct)
		}
		series = append(series, s)
	}
	return series, nil
}

// Fig22Circuits lists the benchmark set of Fig. 22 (network scheduling
// at the default setting). The paper's "100.qasm" entry is interpreted
// as qv_n100 and vqe_uccsd_n28 comes from the registry's VQE generator.
func Fig22Circuits() []string {
	return []string{
		"knn_n129", "qugan_n111", "qft_n63", "qft_n160", "vqe_uccsd_n28",
		"qv_n100", "adder_n64", "adder_n118", "multiplier_n45", "multiplier_n75",
	}
}

// Fig22Row is one circuit's JCT per policy relative to CloudQC (CloudQC
// = 1.0 by construction).
type Fig22Row struct {
	Circuit  string
	Relative map[string]float64
}

// Fig22 regenerates the relative-JCT comparison of the four scheduling
// policies at the default setting.
func Fig22(o Options, circuits []string) ([]Fig22Row, error) {
	o = o.withDefaults()
	if len(circuits) == 0 {
		circuits = Fig22Circuits()
	}
	var rows []Fig22Row
	for _, name := range circuits {
		f, err := newSchedFixture(o, name)
		if err != nil {
			return nil, err
		}
		abs := map[string]float64{}
		for _, p := range SchedPolicies() {
			jct, err := f.meanJCT(o, p, o.Comm, o.EPRProb)
			if err != nil {
				return nil, err
			}
			abs[p.Name()] = jct
		}
		base := abs["CloudQC"]
		row := Fig22Row{Circuit: name, Relative: map[string]float64{}}
		for m, v := range abs {
			row.Relative[m] = v / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig22 renders Fig. 22 rows with policies in legend order.
func RenderFig22(rows []Fig22Row) string {
	headers := []string{"Circuit", "CloudQC", "Average", "Random", "Greedy"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Circuit,
			fmt.Sprintf("%.2f", r.Relative["CloudQC"]),
			fmt.Sprintf("%.2f", r.Relative["Average"]),
			fmt.Sprintf("%.2f", r.Relative["Random"]),
			fmt.Sprintf("%.2f", r.Relative["Greedy"]),
		})
	}
	return stats.Table(headers, out)
}

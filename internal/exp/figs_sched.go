package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/stats"
)

// SchedPolicies returns the four allocation policies of the scheduling
// evaluation in the paper's legend order.
func SchedPolicies() []sched.Policy {
	return []sched.Policy{
		sched.GreedyPolicy{},
		sched.AveragePolicy{},
		sched.RandomPolicy{},
		sched.CloudQCPolicy{},
	}
}

// CommQubitSweep is the x-axis of Figs. 10-13.
func CommQubitSweep() []int { return []int{5, 6, 7, 8, 9, 10} }

// EPRProbSweep is the x-axis of Figs. 18-21.
func EPRProbSweep() []float64 { return []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5} }

// SchedCircuits lists the representative circuits of Figs. 10-13 and
// 18-21 in figure order.
func SchedCircuits() []string {
	return []string{"qugan_n111", "qft_n160", "multiplier_n75", "qv_n100"}
}

// schedFixture places a circuit once (with CloudQC placement) so every
// policy schedules the identical remote DAG.
type schedFixture struct {
	topo   *graph.Graph
	circ   string
	assign []int
}

func newSchedFixture(o Options, circuitName string) (*schedFixture, error) {
	c, err := qlib.Build(circuitName)
	if err != nil {
		return nil, err
	}
	topo := graph.Random(o.QPUs, o.EdgeProb, o.Seed)
	cl := cloud.New(topo, o.Computing, o.Comm)
	cfg := place.DefaultConfig()
	cfg.Seed = o.Seed
	pl, err := place.NewCloudQC(cfg).Place(cl, c)
	if err != nil {
		return nil, fmt.Errorf("sched fixture: placing %s: %w", circuitName, err)
	}
	return &schedFixture{topo: topo, circ: circuitName, assign: pl.QubitToQPU}, nil
}

// pointFixture is the per-sweep-point simulation input: the cloud under
// test and the fixture's remote DAG contracted against it. Both are
// read-only under sched.Run, so concurrent tasks share one fixture.
type pointFixture struct {
	cl  *cloud.Cloud
	dag *sched.RemoteDAG
	m   epr.Model
}

// pointFor contracts the fixture's circuit for one (comm, prob) setting.
func (f *schedFixture) pointFor(o Options, comm int, prob float64) pointFixture {
	c := qlib.MustBuild(f.circ)
	cl := cloud.New(f.topo, o.Computing, comm)
	m := epr.DefaultModel()
	m.SuccessProb = prob
	return pointFixture{cl: cl, dag: sched.BuildRemoteDAG(c, cl, f.assign, m.Latency), m: m}
}

// policyJCTs fans every (policy × point × rep) simulation out to the
// worker pool and returns the per-policy mean JCT per point. Seeds
// derive from (Seed, point, rep) only — policies share streams so the
// comparison is paired.
func policyJCTs(o Options, points []pointFixture) ([][]float64, error) {
	policies := SchedPolicies()
	nPts, reps := len(points), o.Reps
	flat, err := runIndexed(o.workers(), len(policies)*nPts*reps, func(i int) (float64, error) {
		rep := i % reps
		pt := (i / reps) % nPts
		pi := i / (reps * nPts)
		f := points[pt]
		res, err := sched.Run(f.dag, f.cl, f.m, policies[pi], taskRNG(o.Seed, pt, rep))
		if err != nil {
			return 0, err
		}
		return res.JCT, nil
	})
	if err != nil {
		return nil, err
	}
	perPolicy := make([][]float64, len(policies))
	for pi := range policies {
		perPolicy[pi] = meanPerPoint(flat[pi*nPts*reps:(pi+1)*nPts*reps], nPts, reps)
	}
	return perPolicy, nil
}

// JCTVsCommQubits regenerates one of Figs. 10-13: mean job completion
// time per policy as communication qubits per QPU vary.
func JCTVsCommQubits(o Options, circuitName string, comm []int) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(comm) == 0 {
		comm = CommQubitSweep()
	}
	f, err := newSchedFixture(o, circuitName)
	if err != nil {
		return nil, err
	}
	points, err := runIndexed(o.workers(), len(comm), func(i int) (pointFixture, error) {
		return f.pointFor(o, comm[i], o.EPRProb), nil
	})
	if err != nil {
		return nil, err
	}
	means, err := policyJCTs(o, points)
	if err != nil {
		return nil, err
	}
	var series []SweepSeries
	for pi, p := range SchedPolicies() {
		s := SweepSeries{Method: p.Name(), Y: means[pi]}
		for _, cq := range comm {
			s.X = append(s.X, float64(cq))
		}
		series = append(series, s)
	}
	return series, nil
}

// JCTVsEPRProb regenerates one of Figs. 18-21: mean job completion time
// per policy as the EPR success probability varies.
func JCTVsEPRProb(o Options, circuitName string, probs []float64) ([]SweepSeries, error) {
	o = o.withDefaults()
	if len(probs) == 0 {
		probs = EPRProbSweep()
	}
	f, err := newSchedFixture(o, circuitName)
	if err != nil {
		return nil, err
	}
	points, err := runIndexed(o.workers(), len(probs), func(i int) (pointFixture, error) {
		return f.pointFor(o, o.Comm, probs[i]), nil
	})
	if err != nil {
		return nil, err
	}
	means, err := policyJCTs(o, points)
	if err != nil {
		return nil, err
	}
	var series []SweepSeries
	for pi, p := range SchedPolicies() {
		series = append(series, SweepSeries{Method: p.Name(), X: probs, Y: means[pi]})
	}
	return series, nil
}

// Fig22Circuits lists the benchmark set of Fig. 22 (network scheduling
// at the default setting). The paper's "100.qasm" entry is interpreted
// as qv_n100 and vqe_uccsd_n28 comes from the registry's VQE generator.
func Fig22Circuits() []string {
	return []string{
		"knn_n129", "qugan_n111", "qft_n63", "qft_n160", "vqe_uccsd_n28",
		"qv_n100", "adder_n64", "adder_n118", "multiplier_n45", "multiplier_n75",
	}
}

// Fig22Row is one circuit's JCT per policy relative to CloudQC (CloudQC
// = 1.0 by construction).
type Fig22Row struct {
	Circuit  string
	Relative map[string]float64
}

// Fig22 regenerates the relative-JCT comparison of the four scheduling
// policies at the default setting. Placements (one per circuit) and
// simulations (circuit × policy × rep, each circuit acting as one sweep
// point) both run on the worker pool.
func Fig22(o Options, circuits []string) ([]Fig22Row, error) {
	o = o.withDefaults()
	if len(circuits) == 0 {
		circuits = Fig22Circuits()
	}
	points, err := runIndexed(o.workers(), len(circuits), func(ci int) (pointFixture, error) {
		f, err := newSchedFixture(o, circuits[ci])
		if err != nil {
			return pointFixture{}, err
		}
		return f.pointFor(o, o.Comm, o.EPRProb), nil
	})
	if err != nil {
		return nil, err
	}
	means, err := policyJCTs(o, points)
	if err != nil {
		return nil, err
	}
	policies := SchedPolicies()
	var rows []Fig22Row
	for ci, name := range circuits {
		abs := map[string]float64{}
		for pi, p := range policies {
			abs[p.Name()] = means[pi][ci]
		}
		base := abs["CloudQC"]
		row := Fig22Row{Circuit: name, Relative: map[string]float64{}}
		for m, v := range abs {
			row.Relative[m] = v / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig22 renders Fig. 22 rows with policies in legend order.
func RenderFig22(rows []Fig22Row) string {
	headers := []string{"Circuit", "CloudQC", "Average", "Random", "Greedy"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Circuit,
			fmt.Sprintf("%.2f", r.Relative["CloudQC"]),
			fmt.Sprintf("%.2f", r.Relative["Average"]),
			fmt.Sprintf("%.2f", r.Relative["Random"]),
			fmt.Sprintf("%.2f", r.Relative["Greedy"]),
		})
	}
	return stats.Table(headers, out)
}

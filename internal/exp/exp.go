// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each experiment returns structured data plus a
// renderer producing the aligned text tables that EXPERIMENTS.md and the
// cloudqc CLI print.
//
// Experiments decompose into independent (sweep point × repetition)
// simulation tasks that run on a bounded worker pool (see runner.go).
// Options.Workers bounds the pool; every task seeds its own RNG from
// (Options.Seed, point index, rep), so for a fixed Seed the output is
// bit-identical at any worker count — Workers: 1 reproduces a plain
// sequential loop.
//
// Defaults follow the paper: 20 QPUs, random topology with edge
// probability 0.3, 20 computing and 5 communication qubits per QPU, EPR
// success probability 0.3, Table I latencies.
package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/stats"
)

// Options are the shared experiment knobs.
type Options struct {
	// QPUs is the cloud size (default 20).
	QPUs int
	// EdgeProb is the random-topology edge probability (default 0.3).
	EdgeProb float64
	// Computing and Comm are per-QPU qubit counts (defaults 20 and 5).
	Computing, Comm int
	// EPRProb is the per-attempt EPR success probability (default 0.3).
	EPRProb float64
	// Seed drives topology generation and simulation sampling.
	Seed int64
	// Reps averages stochastic simulations over this many runs
	// (default 3).
	Reps int
	// Workers bounds the experiment worker pool. 0 (the zero value)
	// means one worker per available CPU; 1 runs tasks sequentially.
	// Results are identical for any value — only wall-clock changes.
	Workers int
}

// Defaults returns the paper's evaluation setting.
func Defaults() Options {
	return Options{QPUs: 20, EdgeProb: 0.3, Computing: 20, Comm: 5, EPRProb: 0.3, Seed: 1, Reps: 3}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.QPUs == 0 {
		o.QPUs = d.QPUs
	}
	if o.EdgeProb == 0 {
		o.EdgeProb = d.EdgeProb
	}
	if o.Computing == 0 {
		o.Computing = d.Computing
	}
	if o.Comm == 0 {
		o.Comm = d.Comm
	}
	if o.EPRProb == 0 {
		o.EPRProb = d.EPRProb
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	return o
}

// cloudFor builds the experiment cloud for these options.
func (o Options) cloudFor() *cloud.Cloud {
	return cloud.New(graph.Random(o.QPUs, o.EdgeProb, o.Seed), o.Computing, o.Comm)
}

// model returns the EPR model for these options.
func (o Options) model() epr.Model {
	m := epr.DefaultModel()
	m.SuccessProb = o.EPRProb
	return m
}

// TableI renders the operation latency table (paper Table I).
func TableI() string {
	l := epr.DefaultLatency()
	rows := [][]string{
		{"Single-qubit gates", fmt.Sprintf("%.1f CX", l.OneQubit)},
		{"CX and CZ gates", fmt.Sprintf("%.0f CX", l.TwoQubit)},
		{"Measure", fmt.Sprintf("%.0f CX", l.Measure)},
		{"EPR preparation", fmt.Sprintf("%.0f CX", l.EPRAttempt)},
	}
	return stats.Table([]string{"Operation", "Latency"}, rows)
}

// SweepSeries is one method's line in a sweep figure: Y[i] is the metric
// at X[i].
type SweepSeries struct {
	Method string
	X, Y   []float64
}

// RenderSweep renders sweep series as a table: one row per X value, one
// column per method. Rows cover the longest series' x-axis and cells are
// matched by X value, so a series missing a point (e.g. one method
// skipping part of a sweep) renders `-` there instead of panicking or
// misattributing a neighbouring point's value.
func RenderSweep(xLabel string, series []SweepSeries) string {
	if len(series) == 0 {
		return ""
	}
	headers := []string{xLabel}
	longest := 0
	for si, s := range series {
		headers = append(headers, s.Method)
		if len(s.X) > len(series[longest].X) {
			longest = si
		}
	}
	var rows [][]string
	for _, x := range series[longest].X {
		row := []string{fmtX(x)}
		for _, s := range series {
			cell := "-"
			for j, sx := range s.X {
				if sx == x {
					cell = stats.F(s.Y[j])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return stats.Table(headers, rows)
}

// fmtX formats sweep x-values: probabilities (values strictly between 0
// and 1) keep two decimals so 0.15 and 0.1 stay distinct; everything
// else — including negative sentinels like the ablation sweep's -1 —
// uses the compact default.
func fmtX(x float64) string {
	if x > 0 && x < 1 {
		return fmt.Sprintf("%.2f", x)
	}
	return stats.F(x)
}

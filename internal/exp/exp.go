// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VI). Each experiment returns structured data plus a
// renderer producing the aligned text tables that EXPERIMENTS.md and the
// cloudqc CLI print.
//
// Defaults follow the paper: 20 QPUs, random topology with edge
// probability 0.3, 20 computing and 5 communication qubits per QPU, EPR
// success probability 0.3, Table I latencies.
package exp

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/stats"
)

// Options are the shared experiment knobs.
type Options struct {
	// QPUs is the cloud size (default 20).
	QPUs int
	// EdgeProb is the random-topology edge probability (default 0.3).
	EdgeProb float64
	// Computing and Comm are per-QPU qubit counts (defaults 20 and 5).
	Computing, Comm int
	// EPRProb is the per-attempt EPR success probability (default 0.3).
	EPRProb float64
	// Seed drives topology generation and simulation sampling.
	Seed int64
	// Reps averages stochastic simulations over this many runs
	// (default 3).
	Reps int
}

// Defaults returns the paper's evaluation setting.
func Defaults() Options {
	return Options{QPUs: 20, EdgeProb: 0.3, Computing: 20, Comm: 5, EPRProb: 0.3, Seed: 1, Reps: 3}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.QPUs == 0 {
		o.QPUs = d.QPUs
	}
	if o.EdgeProb == 0 {
		o.EdgeProb = d.EdgeProb
	}
	if o.Computing == 0 {
		o.Computing = d.Computing
	}
	if o.Comm == 0 {
		o.Comm = d.Comm
	}
	if o.EPRProb == 0 {
		o.EPRProb = d.EPRProb
	}
	if o.Reps == 0 {
		o.Reps = d.Reps
	}
	return o
}

// cloudFor builds the experiment cloud for these options.
func (o Options) cloudFor() *cloud.Cloud {
	return cloud.New(graph.Random(o.QPUs, o.EdgeProb, o.Seed), o.Computing, o.Comm)
}

// model returns the EPR model for these options.
func (o Options) model() epr.Model {
	m := epr.DefaultModel()
	m.SuccessProb = o.EPRProb
	return m
}

// TableI renders the operation latency table (paper Table I).
func TableI() string {
	l := epr.DefaultLatency()
	rows := [][]string{
		{"Single-qubit gates", fmt.Sprintf("%.1f CX", l.OneQubit)},
		{"CX and CZ gates", fmt.Sprintf("%.0f CX", l.TwoQubit)},
		{"Measure", fmt.Sprintf("%.0f CX", l.Measure)},
		{"EPR preparation", fmt.Sprintf("%.0f CX", l.EPRAttempt)},
	}
	return stats.Table([]string{"Operation", "Latency"}, rows)
}

// SweepSeries is one method's line in a sweep figure: Y[i] is the metric
// at X[i].
type SweepSeries struct {
	Method string
	X, Y   []float64
}

// RenderSweep renders sweep series as a table: one row per X value, one
// column per method.
func RenderSweep(xLabel string, series []SweepSeries) string {
	if len(series) == 0 {
		return ""
	}
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Method)
	}
	var rows [][]string
	for i := range series[0].X {
		row := []string{fmtX(series[0].X[i])}
		for _, s := range series {
			row = append(row, stats.F(s.Y[i]))
		}
		rows = append(rows, row)
	}
	return stats.Table(headers, rows)
}

// fmtX formats sweep x-values: probabilities (sub-1 values) keep two
// decimals so 0.15 and 0.1 stay distinct.
func fmtX(x float64) string {
	if x != 0 && x < 1 {
		return fmt.Sprintf("%.2f", x)
	}
	return stats.F(x)
}

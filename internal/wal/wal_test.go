package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	want := []Record{
		{Type: TypeStep, V: 1.5},
		{Type: TypeJob, V: 1.5, Tenant: 2, Priority: 1, Deadline: 99.5, Circuit: "ghz_n127"},
		{Type: TypeStep, V: 3},
		{Type: TypeJob, V: 3, QASM: "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n"},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 4 || st.Syncs != 1 || st.Bytes == 0 || st.SyncSeconds < 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openT(t, path)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Recovered records don't count toward append-side stats.
	if l2.Stats().Records != 0 {
		t.Fatalf("reopened stats %+v", l2.Stats())
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openT(t, path)
	if err := l.Append(Record{Type: TypeStep, V: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial line with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"t":"job","v":9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := openT(t, path)
	if len(recs) != 1 || recs[0].V != 7 {
		t.Fatalf("recovered %+v", recs)
	}
	// The tail must be gone: appending then reopening yields two records.
	if err := l2.Append(Record{Type: TypeStep, V: 8}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, recs := openT(t, path)
	defer l3.Close()
	if len(recs) != 2 || recs[1].V != 8 {
		t.Fatalf("after truncate+append recovered %+v", recs)
	}
}

func TestCorruptRecordEndsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openT(t, path)
	for _, v := range []float64{1, 2, 3} {
		if err := l.Append(Record{Type: TypeStep, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle record: its CRC no longer
	// matches, so the scan must stop after record one even though record
	// three is intact.
	lines := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 1 {
				data[i+10] ^= 0xff
				break
			}
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || recs[0].V != 1 {
		t.Fatalf("recovered %+v, want just the first record", recs)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openT(t, path)
	if err := l.Append(Record{Type: TypeJob, V: 1, Circuit: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeStep, V: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || recs[0].Type != TypeStep || recs[0].V != 2 {
		t.Fatalf("after reset recovered %+v", recs)
	}
}

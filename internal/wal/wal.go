// Package wal is cloudqcd's write-ahead log: an append-only operation
// log of everything that shapes a live federation's state — every
// virtual-clock advance ("step" records) and every accepted submission
// ("job" records, fsynced before the job is admitted). Because the
// LiveController is bit-identical to a one-shot Run over the same
// operation stream, replaying the log through a freshly built
// federation reproduces the original daemon's state exactly: job ids,
// per-job results, round/event counts, and recorder series.
//
// On-disk format: one record per line,
//
//	CCCCCCCC {"t":"step","v":123.5}\n
//
// where CCCCCCCC is the lowercase-hex IEEE CRC32 of the JSON payload.
// Open scans the whole file, stops at the first torn or corrupt record
// (a crash mid-append leaves at most one), truncates the tail, and
// returns the intact prefix for replay.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cloudqc/internal/fault"
)

// Record types.
const (
	// TypeStep logs a virtual-clock advance: replay calls StepUntil(V).
	TypeStep = "step"
	// TypeJob logs an accepted submission; replay re-submits it. The job
	// id is NOT logged — ids are assigned deterministically by the
	// federation's router+sequencer, so replay reproduces them.
	TypeJob = "job"
	// TypeFault logs an accepted admin fault injection (POST /v1/faults);
	// replay re-injects it at the same position in the operation stream,
	// so the recovery work it triggers replays bit-identically.
	TypeFault = "fault"
)

// Record is one logged operation. Step records use only V (the
// StepUntil target). Job records carry the submission as accepted:
// V is the virtual arrival stamp, Circuit a qlib circuit name or QASM
// the inline program (exactly one is set), and Tenant/Priority/Deadline
// the admission parameters (Deadline is absolute virtual time, 0 for
// none).
type Record struct {
	Type     string  `json:"t"`
	V        float64 `json:"v"`
	Tenant   int     `json:"tenant,omitempty"`
	Priority int     `json:"priority,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	Circuit  string  `json:"circuit,omitempty"`
	QASM     string  `json:"qasm,omitempty"`
	// Fault carries a fault record's injected event (V mirrors the
	// event's start for log readability; replay uses the event itself).
	Fault *fault.Event `json:"fault,omitempty"`
}

// Stats summarizes a log's append-side activity for /metrics. Records
// and Bytes count appends since Open (recovered records not included);
// Syncs and SyncSeconds accumulate fsync count and total latency.
type Stats struct {
	Records     int
	Bytes       int64
	Syncs       int
	SyncSeconds float64
}

// Log is an open write-ahead log positioned for appending. It is not
// safe for concurrent use; the service layer serializes all access
// under its request mutex.
type Log struct {
	f     *os.File
	path  string
	stats Stats
}

// Open opens (creating if absent) the log at path, scans every intact
// record, truncates any torn or corrupt tail, and returns the log
// positioned for appending plus the recovered records in append order.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	recs, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, path: path}, recs, nil
}

// scan reads records from the start of f, returning the intact prefix
// and the byte offset just past its last record. A torn line (no
// newline), a malformed frame, a CRC mismatch, or invalid JSON ends the
// scan — everything from there on is the tail a crash left behind.
func scan(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("wal: seek: %w", err)
	}
	var (
		recs []Record
		good int64
		rd   = bufio.NewReader(f)
	)
	for {
		line, err := rd.ReadString('\n')
		if err == io.EOF {
			// No trailing newline: a torn final record (or empty file).
			return recs, good, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("wal: read: %w", err)
		}
		rec, ok := parseLine(line)
		if !ok {
			return recs, good, nil
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
}

// parseLine decodes one framed record line ("crc8hex json\n").
func parseLine(line string) (Record, bool) {
	body, okCut := strings.CutSuffix(line, "\n")
	if !okCut || len(body) < 10 || body[8] != ' ' {
		return Record{}, false
	}
	want, err := strconv.ParseUint(body[:8], 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := body[9:]
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, false
	}
	switch rec.Type {
	case TypeStep, TypeJob:
	case TypeFault:
		if rec.Fault == nil {
			return Record{}, false
		}
	default:
		return Record{}, false
	}
	return rec, true
}

// Append frames and writes one record. Step records are left to the
// OS page cache (losing a tail of clock advances on crash is benign —
// replay just ends at an earlier virtual time); call Sync after job
// records, whose durability is acknowledged to the client.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := l.f.WriteString(line); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.stats.Records++
	l.stats.Bytes += int64(len(line))
	return nil
}

// AppendStep logs a virtual-clock advance to v (unsynced).
func (l *Log) AppendStep(v float64) error {
	return l.Append(Record{Type: TypeStep, V: v})
}

// Sync flushes appended records to stable storage, accumulating the
// fsync latency into Stats for the /metrics endpoint.
func (l *Log) Sync() error {
	start := time.Now()
	err := l.f.Sync()
	l.stats.Syncs++
	l.stats.SyncSeconds += time.Since(start).Seconds()
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Stats returns the append-side counters since Open.
func (l *Log) Stats() Stats { return l.stats }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Reset truncates the log to empty — called after a clean drain, when
// every logged job has settled and the history is no longer needed.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return l.Sync()
}

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close sync: %w", err)
	}
	return l.f.Close()
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 4 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Median(xs); p != 2.5 {
		t.Fatalf("median = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty Min/Max should be NaN")
	}
}

func TestECDFSteps(t *testing.T) {
	pts := ECDF([]float64{1, 2, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("ECDF = %v, want 3 distinct points", pts)
	}
	if pts[0] != (CDFPoint{X: 1, P: 0.25}) {
		t.Fatalf("pts[0] = %v", pts[0])
	}
	if pts[1] != (CDFPoint{X: 2, P: 0.75}) {
		t.Fatalf("pts[1] = %v (duplicates collapse to final fraction)", pts[1])
	}
	if pts[2] != (CDFPoint{X: 3, P: 1}) {
		t.Fatalf("pts[2] = %v", pts[2])
	}
	if ECDF(nil) != nil {
		t.Fatal("ECDF(nil) should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	pts := ECDF([]float64{10, 20, 30})
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 1.0 / 3}, {25, 2.0 / 3}, {30, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := CDFAt(pts, tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("CDFAt(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"longest-row", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestF(t *testing.T) {
	if F(3) != "3" {
		t.Fatalf("F(3) = %q", F(3))
	}
	if F(3.14) != "3.1" {
		t.Fatalf("F(3.14) = %q", F(3.14))
	}
}

// Property: ECDF is nondecreasing in both X and P, ends at P=1, and
// CDFAt(max) = 1.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		pts := ECDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return math.Abs(pts[len(pts)-1].P-1) < 1e-12 && CDFAt(pts, Max(xs)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Percentile(p) <= Max for any p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p := float64(pRaw) / 255
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-12 && v <= Max(xs)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: Jain = %v, want 1", got)
	}
	// One entity takes everything: index = 1/n.
	if got := JainIndex([]float64{9, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("monopolized shares: Jain = %v, want 1/3", got)
	}
	// Mildly unequal: strictly between 1/n and 1.
	got := JainIndex([]float64{1, 2, 3})
	if got <= 1.0/3 || got >= 1 {
		t.Fatalf("Jain = %v, want in (1/3, 1)", got)
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Fatal("empty sample should be NaN")
	}
	if !math.IsNaN(JainIndex([]float64{0, 0})) {
		t.Fatal("all-zero sample should be NaN")
	}
}

// Package stats provides the summary statistics and table rendering the
// experiment harness uses: means, percentiles, empirical CDFs, and
// aligned plain-text tables matching the paper's figures and tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-quantile (0 <= p <= 1) by linear
// interpolation on the sorted sample; NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Min returns the smallest element, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// JainIndex is Jain's fairness index (Σx)² / (n·Σx²) over a sample of
// non-negative per-entity allocations: 1 when all entities receive the
// same amount, approaching 1/n as one entity takes everything. Empty or
// all-zero samples return NaN — there is no allocation to be fair about.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// ECDF returns the empirical CDF of the sample as ascending step points,
// one per distinct value.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var pts []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue // emit only the last occurrence of each value
		}
		pts = append(pts, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return pts
}

// CDFAt evaluates an ECDF at x: the fraction of samples <= x.
func CDFAt(pts []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range pts {
		if pt.X > x {
			break
		}
		p = pt.P
	}
	return p
}

// Table renders rows as an aligned plain-text table with a header rule.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for tables: integers without decimals,
// otherwise one decimal place.
func F(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.1f", x)
}

package epr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudqc/internal/circuit"
)

func TestDefaultLatencyTable1(t *testing.T) {
	l := DefaultLatency()
	if l.OneQubit != 0.1 || l.TwoQubit != 1 || l.Measure != 5 || l.EPRAttempt != 10 {
		t.Fatalf("DefaultLatency = %+v, want Table I values", l)
	}
}

func TestGateDuration(t *testing.T) {
	l := DefaultLatency()
	if l.GateDuration(circuit.Single) != 0.1 {
		t.Fatal("1q duration")
	}
	if l.GateDuration(circuit.Two) != 1 {
		t.Fatal("2q duration")
	}
	if l.GateDuration(circuit.Measure) != 5 {
		t.Fatal("measure duration")
	}
}

func TestGateDurationUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	DefaultLatency().GateDuration(circuit.Kind(99))
}

func TestValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel()
	bad.SuccessProb = 0
	if bad.Validate() == nil {
		t.Fatal("p=0 should be invalid")
	}
	bad = DefaultModel()
	bad.SuccessProb = 1.5
	if bad.Validate() == nil {
		t.Fatal("p>1 should be invalid")
	}
	bad = DefaultModel()
	bad.EPRAttempt = 0
	if bad.Validate() == nil {
		t.Fatal("zero EPR latency should be invalid")
	}
}

func TestRoundSuccess(t *testing.T) {
	m := DefaultModel() // p = 0.3
	if got := m.RoundSuccess(1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("RoundSuccess(1) = %v", got)
	}
	// 1 - 0.7^2 = 0.51
	if got := m.RoundSuccess(2); math.Abs(got-0.51) > 1e-12 {
		t.Fatalf("RoundSuccess(2) = %v", got)
	}
	if got := m.RoundSuccess(0); got != 0 {
		t.Fatalf("RoundSuccess(0) = %v, want 0", got)
	}
}

func TestRoundSuccessMonotonicInPairs(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for pairs := 1; pairs <= 10; pairs++ {
		p := m.RoundSuccess(pairs)
		if p <= prev {
			t.Fatalf("RoundSuccess not increasing at %d pairs", pairs)
		}
		prev = p
	}
}

func TestExpectedRounds(t *testing.T) {
	m := Model{Latency: DefaultLatency(), SuccessProb: 0.5}
	if got := m.ExpectedRounds(1); got != 2 {
		t.Fatalf("ExpectedRounds(1) = %v, want 2", got)
	}
	if !math.IsInf(m.ExpectedRounds(0), 1) {
		t.Fatal("ExpectedRounds(0) should be +Inf")
	}
}

func TestExpectedRemoteLatencySingleHop(t *testing.T) {
	m := Model{Latency: DefaultLatency(), SuccessProb: 0.5}
	// EPR: 10 * 2 = 20; no swaps; + gate 1 + measure 5 = 26.
	if got := m.ExpectedRemoteLatency(1); math.Abs(got-26) > 1e-12 {
		t.Fatalf("ExpectedRemoteLatency(1) = %v, want 26", got)
	}
}

func TestExpectedRemoteLatencyMultiHop(t *testing.T) {
	m := Model{Latency: DefaultLatency(), SuccessProb: 0.5}
	// 2 hops: 2*20 EPR + 1 swap (5) + 1 + 5 = 51.
	if got := m.ExpectedRemoteLatency(2); math.Abs(got-51) > 1e-12 {
		t.Fatalf("ExpectedRemoteLatency(2) = %v, want 51", got)
	}
	// hops < 1 clamps to 1.
	if m.ExpectedRemoteLatency(0) != m.ExpectedRemoteLatency(1) {
		t.Fatal("hops=0 should clamp to 1")
	}
}

func TestSampleRoundSuccessFrequency(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(1))
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if m.SampleRoundSuccess(rng, 1) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("empirical success rate %v, want ~0.3", got)
	}
}

func TestSampleRoundSuccessZeroPairs(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(1))
	if m.SampleRoundSuccess(rng, 0) {
		t.Fatal("zero pairs can never succeed")
	}
}

// Property: remote latency grows monotonically with hop count.
func TestQuickRemoteLatencyMonotone(t *testing.T) {
	f := func(seedByte uint8) bool {
		p := 0.05 + float64(seedByte%90)/100 // 0.05 .. 0.94
		m := Model{Latency: DefaultLatency(), SuccessProb: p}
		prev := 0.0
		for h := 1; h <= 6; h++ {
			l := m.ExpectedRemoteLatency(h)
			if l <= prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

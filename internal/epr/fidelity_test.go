package epr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPurifyImproves(t *testing.T) {
	for _, f := range []float64{0.6, 0.8, 0.95} {
		if p := Purify(f); p <= f {
			t.Fatalf("Purify(%v) = %v, should improve", f, p)
		}
	}
	// Fixed points: 0.5 and 1.
	if p := Purify(0.5); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("Purify(0.5) = %v", p)
	}
	if p := Purify(1); p != 1 {
		t.Fatalf("Purify(1) = %v", p)
	}
}

func TestPurifyKnownValue(t *testing.T) {
	// F = 0.8: 0.64 / (0.64 + 0.04) = 16/17.
	want := 16.0 / 17.0
	if p := Purify(0.8); math.Abs(p-want) > 1e-12 {
		t.Fatalf("Purify(0.8) = %v, want %v", p, want)
	}
}

func TestPathFidelityDecays(t *testing.T) {
	f := DefaultFidelityModel()
	if got := f.PathFidelity(1); math.Abs(got-0.97) > 1e-12 {
		t.Fatalf("1-hop fidelity = %v", got)
	}
	if got := f.PathFidelity(3); math.Abs(got-math.Pow(0.97, 3)) > 1e-12 {
		t.Fatalf("3-hop fidelity = %v", got)
	}
	if f.PathFidelity(0) != f.PathFidelity(1) {
		t.Fatal("hops < 1 should clamp to 1")
	}
}

func TestPurifyRoundsZeroWhenAlreadyGood(t *testing.T) {
	f := DefaultFidelityModel()
	f.LinkFidelity = 0.99
	f.Threshold = 0.9
	r, err := f.PurifyRounds(1)
	if err != nil || r != 0 {
		t.Fatalf("rounds = %d, err = %v; want 0, nil", r, err)
	}
	pairs, err := f.PairsPerHop(1)
	if err != nil || pairs != 1 {
		t.Fatalf("pairs = %d, err = %v", pairs, err)
	}
}

func TestPurifyRoundsIncreaseWithHops(t *testing.T) {
	f := DefaultFidelityModel() // 0.97 link, 0.9 threshold
	r1, err := f.PurifyRounds(1)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := f.PurifyRounds(5)
	if err != nil {
		t.Fatal(err)
	}
	if r5 < r1 {
		t.Fatalf("rounds(5 hops) = %d < rounds(1 hop) = %d", r5, r1)
	}
	// 0.97^5 ≈ 0.859 < 0.9, so 5 hops must need at least one round.
	if r5 < 1 {
		t.Fatalf("5-hop purification rounds = %d, want >= 1", r5)
	}
}

func TestPurifyRoundsUnreachable(t *testing.T) {
	f := DefaultFidelityModel()
	f.LinkFidelity = 0.51 // barely above the 0.5 fixed point
	f.Threshold = 0.999
	if _, err := f.PurifyRounds(4); err == nil {
		t.Fatal("unreachable threshold should error")
	}
}

func TestFidelityValidate(t *testing.T) {
	ok := DefaultFidelityModel()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultFidelityModel()
	bad.LinkFidelity = 0.4
	if bad.Validate() == nil {
		t.Fatal("fidelity <= 0.5 should be invalid")
	}
	bad = DefaultFidelityModel()
	bad.Threshold = 0
	if bad.Validate() == nil {
		t.Fatal("zero threshold should be invalid")
	}
	bad = DefaultFidelityModel()
	bad.SuccessProb = 0
	if bad.Validate() == nil {
		t.Fatal("invalid base model should propagate")
	}
}

// Property: PairsPerHop is a power of two and nondecreasing in hop
// count whenever the threshold is reachable.
func TestQuickPairsPerHopMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		fm := DefaultFidelityModel()
		fm.LinkFidelity = 0.9 + float64(raw%10)/100 // 0.90 .. 0.99
		fm.Threshold = 0.85
		prev := 0
		for hops := 1; hops <= 4; hops++ {
			pairs, err := fm.PairsPerHop(hops)
			if err != nil {
				return true // unreachable is acceptable; monotonicity vacuous
			}
			if pairs&(pairs-1) != 0 {
				return false // not a power of two
			}
			if pairs < prev {
				return false
			}
			prev = pairs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package epr

import (
	"fmt"
	"math"
)

// FidelityModel extends the EPR model with link fidelity and
// entanglement purification — the extension the paper flags as future
// work ("we might consider the reliability of quantum links between
// QPUs ... easily encoded into the edge weights").
//
// Raw EPR pairs on one hop have fidelity LinkFidelity. Entanglement
// swapping across h hops multiplies fidelities (F_e2e ≈ F^h, the
// standard first-order model). When the end-to-end fidelity would fall
// below Threshold, each hop's pair is purified first: one BBPSSW-style
// round consumes two pairs of fidelity F and yields one of
// F' = F² / (F² + (1−F)²), so r rounds cost 2^r raw pairs per hop.
type FidelityModel struct {
	Model
	// LinkFidelity is the fidelity of one raw EPR pair over one hop,
	// in (0.5, 1].
	LinkFidelity float64
	// Threshold is the minimum acceptable end-to-end fidelity for a
	// remote gate, in (0, 1].
	Threshold float64
}

// DefaultFidelityModel returns the paper's EPR defaults with a 0.97
// link fidelity and a 0.9 end-to-end threshold.
func DefaultFidelityModel() FidelityModel {
	return FidelityModel{Model: DefaultModel(), LinkFidelity: 0.97, Threshold: 0.9}
}

// Validate extends Model.Validate with the fidelity parameters.
func (f FidelityModel) Validate() error {
	if err := f.Model.Validate(); err != nil {
		return err
	}
	if f.LinkFidelity <= 0.5 || f.LinkFidelity > 1 {
		return fmt.Errorf("epr: link fidelity %v outside (0.5, 1]", f.LinkFidelity)
	}
	if f.Threshold <= 0 || f.Threshold > 1 {
		return fmt.Errorf("epr: fidelity threshold %v outside (0, 1]", f.Threshold)
	}
	return nil
}

// Purify applies one BBPSSW-style purification round to fidelity F.
func Purify(f float64) float64 {
	return f * f / (f*f + (1-f)*(1-f))
}

// PathFidelity returns the unpurified end-to-end fidelity over hops
// links: LinkFidelity^hops.
func (f FidelityModel) PathFidelity(hops int) float64 {
	if hops < 1 {
		hops = 1
	}
	return math.Pow(f.LinkFidelity, float64(hops))
}

// maxPurifyRounds bounds the purification recursion; past this the
// threshold is declared unreachable (2^6 = 64 raw pairs per hop already
// exceeds any plausible communication qubit budget).
const maxPurifyRounds = 6

// PurifyRounds returns the number of purification rounds each hop needs
// so that the end-to-end fidelity over hops links clears Threshold, or
// an error when the threshold is unreachable within maxPurifyRounds.
func (f FidelityModel) PurifyRounds(hops int) (int, error) {
	if hops < 1 {
		hops = 1
	}
	// Per-hop requirement so that hopF^hops >= Threshold.
	perHop := math.Pow(f.Threshold, 1/float64(hops))
	cur := f.LinkFidelity
	for r := 0; r <= maxPurifyRounds; r++ {
		if cur >= perHop {
			return r, nil
		}
		cur = Purify(cur)
	}
	return 0, fmt.Errorf("epr: fidelity threshold %v unreachable over %d hops from link fidelity %v",
		f.Threshold, hops, f.LinkFidelity)
}

// PairsPerHop returns how many raw EPR successes each hop must
// accumulate (2^rounds) to deliver one purified pair meeting Threshold.
func (f FidelityModel) PairsPerHop(hops int) (int, error) {
	r, err := f.PurifyRounds(hops)
	if err != nil {
		return 0, err
	}
	return 1 << r, nil
}

// Package epr models quantum-network primitives: the operation latency
// table of the paper (Table I) and probabilistic EPR pair generation.
//
// One time unit is the execution time of one CX gate. EPR generation is
// Bernoulli per attempt: allocating x communication-qubit pairs to a hop
// yields per-round success probability 1−(1−p)^x, and a failed round
// still consumes the communication qubits — both properties the paper
// calls out.
package epr

import (
	"fmt"
	"math"
	"math/rand"

	"cloudqc/internal/circuit"
)

// Latency is the operation latency table (paper Table I), in CX units.
type Latency struct {
	// OneQubit is the duration of any single-qubit gate (~0.1 CX).
	OneQubit float64
	// TwoQubit is the duration of CX/CZ gates (1 CX by definition).
	TwoQubit float64
	// Measure is the readout duration (~5 CX).
	Measure float64
	// EPRAttempt is the duration of one EPR pair generation attempt
	// (~10 CX).
	EPRAttempt float64
}

// DefaultLatency returns Table I's values.
func DefaultLatency() Latency {
	return Latency{OneQubit: 0.1, TwoQubit: 1, Measure: 5, EPRAttempt: 10}
}

// GateDuration returns the latency of a local gate of the given kind.
func (l Latency) GateDuration(k circuit.Kind) float64 {
	switch k {
	case circuit.Single:
		return l.OneQubit
	case circuit.Two:
		return l.TwoQubit
	case circuit.Measure:
		return l.Measure
	default:
		panic(fmt.Sprintf("epr: unknown gate kind %v", k))
	}
}

// Model combines the latency table with the EPR success probability
// (paper default 0.3, consistent with multi-node network experiments).
type Model struct {
	Latency
	// SuccessProb is the per-attempt EPR generation success probability,
	// in (0, 1].
	SuccessProb float64
}

// DefaultModel returns the paper's default model: Table I latencies and
// EPR success probability 0.3.
func DefaultModel() Model {
	return Model{Latency: DefaultLatency(), SuccessProb: 0.3}
}

// Validate reports whether the model's parameters are usable.
func (m Model) Validate() error {
	if m.SuccessProb <= 0 || m.SuccessProb > 1 {
		return fmt.Errorf("epr: success probability %v outside (0, 1]", m.SuccessProb)
	}
	if m.EPRAttempt <= 0 || m.TwoQubit <= 0 {
		return fmt.Errorf("epr: non-positive latency %+v", m.Latency)
	}
	return nil
}

// DegradedProb validates and applies a fault-layer link degradation:
// the effective per-attempt success probability of an edge whose base
// probability is m.SuccessProb, scaled by scale. Validate is bypassed
// for models mutated after construction, so this is the checkpoint the
// fault layer goes through instead: the scaled probability may hit
// exactly 0 (a dead link) but can never go negative or exceed 1.
func (m Model) DegradedProb(scale float64) (float64, error) {
	if scale < 0 || scale > 1 || math.IsNaN(scale) {
		return 0, fmt.Errorf("epr: degradation scale %v outside [0, 1]", scale)
	}
	p := m.SuccessProb * scale
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("epr: degraded success probability %v outside [0, 1]", p)
	}
	return p, nil
}

// RoundSuccessProb is RoundSuccess for an explicit per-attempt success
// probability — the fault layer's per-edge variant: 1−(1−p)^pairs.
func RoundSuccessProb(p float64, pairs int) float64 {
	if pairs <= 0 || p <= 0 {
		return 0
	}
	return 1 - math.Pow(1-p, float64(pairs))
}

// RoundSuccess returns the probability that at least one of `pairs`
// parallel EPR attempts succeeds in one round: 1−(1−p)^pairs.
func (m Model) RoundSuccess(pairs int) float64 {
	if pairs <= 0 {
		return 0
	}
	return 1 - math.Pow(1-m.SuccessProb, float64(pairs))
}

// SampleRoundSuccess draws one Bernoulli round outcome for the given
// number of parallel attempt pairs.
func (m Model) SampleRoundSuccess(rng *rand.Rand, pairs int) bool {
	if pairs <= 0 {
		return false
	}
	return rng.Float64() < m.RoundSuccess(pairs)
}

// ExpectedRounds returns the expected number of attempt rounds until the
// first success with `pairs` parallel attempts per round (geometric
// mean 1/RoundSuccess).
func (m Model) ExpectedRounds(pairs int) float64 {
	p := m.RoundSuccess(pairs)
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// ExpectedRemoteLatency estimates the wall-clock cost of one remote gate
// whose endpoints are `hops` QPU links apart, assuming one attempt pair
// per hop: per-hop expected EPR time, entanglement swapping at each
// intermediate node (one measurement each), then the local gate and the
// final measurement of the cat-entangler protocol. Placement scoring
// uses this deterministic estimate (Algorithm 1's estimate_time).
func (m Model) ExpectedRemoteLatency(hops int) float64 {
	if hops < 1 {
		hops = 1
	}
	eprTime := m.EPRAttempt * m.ExpectedRounds(1)
	swaps := float64(hops-1) * m.Measure
	return float64(hops)*eprTime + swaps + m.TwoQubit + m.Measure
}

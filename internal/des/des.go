// Package des is a minimal discrete-event simulation engine: a clock and
// a time-ordered event queue with stable FIFO ordering for simultaneous
// events. The multi-tenant controller (internal/core) drives job
// arrivals, placement retries, and shared EPR scheduling rounds through
// it — arrivals are scheduled up front, while the controller keeps one
// live "tick" event that it supersedes (there is no cancel; callers
// guard stale closures, e.g. with a generation counter) whenever an
// earlier wake-up becomes necessary.
package des

import (
	"container/heap"
	"fmt"
)

// Engine owns the simulation clock and pending events. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now       float64
	seq       int64
	processed int
	queue     eventHeap
}

// NewEngine returns an engine with the clock at 0 and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// Schedule enqueues fn to run at absolute time at. Scheduling in the
// past panics — that is always a logic bug in the caller.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run delay units from now.
func (e *Engine) ScheduleAfter(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	e.now = t
}

type event struct {
	at  float64
	seq int64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Package des is a minimal discrete-event simulation engine: a clock and
// a time-ordered event queue with stable FIFO ordering for simultaneous
// events. The multi-tenant controller (internal/core) drives job
// arrivals, placement retries, and shared EPR scheduling rounds through
// it — arrivals are scheduled up front, while the controller keeps one
// live "tick" event that it supersedes (there is no cancel; callers
// guard stale closures, e.g. with a generation counter) whenever an
// earlier wake-up becomes necessary.
package des

import (
	"container/heap"
	"fmt"
)

// Engine owns the simulation clock and pending events. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now       float64
	seq       int64
	headSeq   int64
	processed int
	queue     eventHeap
}

// NewEngine returns an engine with the clock at 0 and no events.
func NewEngine() *Engine {
	return &Engine{headSeq: headSeqBase}
}

// headSeqBase seeds the head-of-time sequence far below every normal
// sequence number, so SchedulePriority events sort before Schedule
// events at the same instant while staying FIFO among themselves.
const headSeqBase = -(int64(1) << 62)

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// Schedule enqueues fn to run at absolute time at. Scheduling in the
// past panics — that is always a logic bug in the caller.
func (e *Engine) Schedule(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn to run delay units from now.
func (e *Engine) ScheduleAfter(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// SchedulePriority enqueues fn to run at absolute time at, ahead of
// every Schedule-queued event at the same instant; among themselves,
// priority events keep FIFO order. The controller schedules job
// arrivals this way so an arrival always precedes a controller tick at
// the same time — for the one-shot Run this matches scheduling all
// arrivals up front, and for the live controller it makes late
// submissions at time t indistinguishable from up-front ones.
func (e *Engine) SchedulePriority(at float64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	e.headSeq++
	heap.Push(&e.queue, &event{at: at, seq: e.headSeq, fn: fn})
}

// NextAt returns the time of the earliest pending event, or false when
// the queue is empty.
func (e *Engine) NextAt() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	e.now = t
}

// RunBefore executes events with time strictly < t, then advances the
// clock to t. Events at exactly t stay queued, so a caller can still
// inject priority events (job arrivals) at t that precede them — the
// live controller's step primitive.
func (e *Engine) RunBefore(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("des: RunBefore(%v) before now %v", t, e.now))
	}
	for len(e.queue) > 0 && e.queue[0].at < t {
		e.Step()
	}
	e.now = t
}

type event struct {
	at  float64
	seq int64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

package des

import (
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestProcessedCounts(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() { e.Schedule(3, func() {}) })
	if e.Processed() != 0 {
		t.Fatalf("Processed = %d before running", e.Processed())
	}
	e.Run()
	if e.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3 (including the nested event)", e.Processed())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestScheduleAfter(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Schedule(2, func() {
		e.ScheduleAfter(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 5 {
		t.Fatalf("ScheduleAfter fired at %v, want 5", at)
	}
}

func TestScheduleAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	NewEngine().ScheduleAfter(-1, func() {})
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			e.ScheduleAfter(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if e.Now() != 9 {
		t.Fatalf("Now = %v, want 9", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1 and 2", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired = %v", fired)
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past should panic")
		}
	}()
	e.RunUntil(1)
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine should return false")
	}
}

// Property: events always execute in nondecreasing time order, whatever
// the insertion order.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var seen []float64
		for _, raw := range times {
			at := float64(raw)
			e.Schedule(at, func() { seen = append(seen, at) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePriorityPrecedesSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() { order = append(order, "tick") })
	// Priority events beat earlier-scheduled normal events at the same
	// instant, and stay FIFO among themselves.
	e.SchedulePriority(1, func() { order = append(order, "arrive-a") })
	e.SchedulePriority(1, func() { order = append(order, "arrive-b") })
	e.Schedule(0, func() { order = append(order, "early") })
	e.Run()
	want := []string{"early", "arrive-a", "arrive-b", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePriorityPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	e.RunUntil(5)
	e.SchedulePriority(4, func() {})
}

func TestRunBeforeExcludesBoundary(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.Schedule(1, func() { fired = append(fired, 1) })
	e.Schedule(2, func() { fired = append(fired, 2) })
	e.RunBefore(2)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("Now = %v, want 2", e.Now())
	}
	// The boundary event is still pending and a priority event injected
	// at now precedes it.
	e.SchedulePriority(2, func() { fired = append(fired, -2) })
	e.Run()
	if len(fired) != 3 || fired[1] != -2 || fired[2] != 2 {
		t.Fatalf("fired = %v, want [1 -2 2]", fired)
	}
}

func TestRunBeforePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	e.RunUntil(5)
	e.RunBefore(4)
}

func TestNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty engine should report false")
	}
	e.Schedule(7, func() {})
	e.Schedule(3, func() {})
	if at, ok := e.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = %v, %v, want 3, true", at, ok)
	}
}

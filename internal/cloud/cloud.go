// Package cloud models the quantum cloud of the paper (Sec. III): a set
// of QPUs, each with computing qubits (run gates) and communication
// qubits (generate EPR pairs for remote gates), connected by quantum
// links in a fixed topology managed by a central controller.
package cloud

import (
	"errors"
	"fmt"
	"math"

	"cloudqc/internal/graph"
)

// ErrInsufficientCapacity reports a Reserve request exceeding a QPU's
// free computing qubits. Recovery paths that re-place evicted jobs
// match on it with errors.Is to distinguish "no room right now" from a
// genuine accounting bug (which panics in Release instead).
var ErrInsufficientCapacity = errors.New("insufficient free computing capacity")

// QPU is one quantum processing unit. Computing qubits are reserved for
// the lifetime of a placed circuit; communication qubits are claimed and
// returned every EPR-attempt round by the network scheduler.
type QPU struct {
	// ID is the QPU's vertex index in the cloud topology.
	ID int
	// Computing is the total number of computing qubits.
	Computing int
	// Comm is the total number of communication qubits.
	Comm int

	used int
}

// FreeComputing returns the number of unreserved computing qubits.
func (q *QPU) FreeComputing() int { return q.Computing - q.used }

// UsedComputing returns the number of reserved computing qubits.
func (q *QPU) UsedComputing() int { return q.used }

// Cloud is a cluster of QPUs and its quantum-link topology. Hop
// distances and shortest-path trees are precomputed at construction:
// the paper's placement cost C_ij is the path length between QPU i and
// QPU j, and Path answers come from a next-hop table walk instead of a
// per-call BFS (BuildRemoteDAG asks for one path per remote gate).
type Cloud struct {
	qpus []*QPU
	topo *graph.Graph
	dist [][]int
	// parent[i][v] is v's parent in the BFS shortest-path tree rooted at
	// QPU i (the next hop from v toward i); -1 when unreachable. Walking
	// parent[i] from j back to i reproduces topo.ShortestPath(i, j)
	// exactly, tie-breaks included.
	parent [][]int
	// sig canonically identifies the cloud's immutable shape (topology +
	// per-QPU capacities) for plan-cache keys.
	sig uint64
}

// New builds a cloud over the given topology where every QPU has the
// same computing and communication qubit counts (the paper's default is
// 20 QPUs x 20 computing + 5 communication qubits).
func New(topo *graph.Graph, computing, comm int) *Cloud {
	if computing <= 0 || comm < 0 {
		panic(fmt.Sprintf("cloud: invalid qubit counts computing=%d comm=%d", computing, comm))
	}
	qpus := make([]*QPU, topo.N())
	for i := range qpus {
		qpus[i] = &QPU{ID: i, Computing: computing, Comm: comm}
	}
	c := &Cloud{qpus: qpus, topo: topo}
	c.dist = make([][]int, topo.N())
	c.parent = make([][]int, topo.N())
	for i := 0; i < topo.N(); i++ {
		// One BFS per vertex yields both the AllPairsHops row and the
		// shortest-path tree Path walks.
		c.dist[i], c.parent[i] = topo.HopTree(i)
	}
	c.sig = c.signature()
	return c
}

// signature hashes the cloud's immutable shape: QPU count, per-QPU
// capacities, and the topology's edge list.
func (c *Cloud) signature() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(c.qpus)))
	for _, q := range c.qpus {
		mix(uint64(q.Computing))
		mix(uint64(q.Comm))
	}
	for _, e := range c.topo.Edges() {
		mix(uint64(e.U))
		mix(uint64(e.V))
		mix(math.Float64bits(e.W))
	}
	return h
}

// Signature canonically identifies the cloud's immutable shape
// (topology and per-QPU qubit counts, not current reservations) —
// half of a plan-cache key (see internal/plan).
func (c *Cloud) Signature() uint64 { return c.sig }

// NewRandom builds a cloud over a connected Erdős–Rényi topology
// (paper default: edge probability 0.3).
func NewRandom(n int, pEdge float64, computing, comm int, seed int64) *Cloud {
	return New(graph.Random(n, pEdge, seed), computing, comm)
}

// NumQPUs returns the number of QPUs.
func (c *Cloud) NumQPUs() int { return len(c.qpus) }

// QPU returns the i-th QPU.
func (c *Cloud) QPU(i int) *QPU { return c.qpus[i] }

// Topology returns the quantum-link graph. Callers must not modify it.
func (c *Cloud) Topology() *graph.Graph { return c.topo }

// Distance returns the hop count between QPUs i and j (C_ij in the
// paper's placement objective), or -1 if disconnected.
func (c *Cloud) Distance(i, j int) int { return c.dist[i][j] }

// Path returns one shortest QPU path from i to j inclusive, or nil if
// j is unreachable from i. The path is read off the precomputed
// shortest-path tree rooted at i — O(path length) per call — and is
// identical, tie-breaks included, to what a fresh BFS
// (graph.ShortestPath) would return.
func (c *Cloud) Path(i, j int) []int {
	if i == j {
		return []int{i}
	}
	d := c.dist[i][j]
	if d < 0 {
		return nil
	}
	path := make([]int, d+1)
	for x, k := j, d; k >= 0; k-- {
		path[k] = x
		x = c.parent[i][x]
	}
	return path
}

// Reserve claims n computing qubits on QPU i, failing if fewer are free.
func (c *Cloud) Reserve(i, n int) error {
	q := c.qpus[i]
	if n < 0 {
		return fmt.Errorf("cloud: negative reservation %d", n)
	}
	if q.FreeComputing() < n {
		return fmt.Errorf("cloud: QPU %d has %d free computing qubits, need %d: %w",
			i, q.FreeComputing(), n, ErrInsufficientCapacity)
	}
	q.used += n
	return nil
}

// Release returns n computing qubits to QPU i. Releasing more than is
// reserved panics: that is always an accounting bug.
func (c *Cloud) Release(i, n int) {
	q := c.qpus[i]
	if n < 0 || n > q.used {
		panic(fmt.Sprintf("cloud: release %d on QPU %d with %d used", n, i, q.used))
	}
	q.used -= n
}

// FreeComputing returns the free computing qubits of QPU i.
func (c *Cloud) FreeComputing(i int) int { return c.qpus[i].FreeComputing() }

// TotalFreeComputing sums free computing qubits across the cloud.
func (c *Cloud) TotalFreeComputing() int {
	total := 0
	for _, q := range c.qpus {
		total += q.FreeComputing()
	}
	return total
}

// MaxFreeComputing returns the largest single-QPU free computing count;
// circuits at or below it can run without distribution.
func (c *Cloud) MaxFreeComputing() int {
	m := 0
	for _, q := range c.qpus {
		if f := q.FreeComputing(); f > m {
			m = f
		}
	}
	return m
}

// FreeSnapshot returns the current free computing qubits per QPU.
func (c *Cloud) FreeSnapshot() []int {
	s := make([]int, len(c.qpus))
	for i, q := range c.qpus {
		s[i] = q.FreeComputing()
	}
	return s
}

// CapacityGraph returns a copy of the topology whose edge weights embed
// the endpoints' free computing qubits (paper Sec. V-B: "we can embed
// the number of computing qubits into the edge weight"), so community
// detection favors dense groups of QPUs with spare capacity.
func (c *Cloud) CapacityGraph() *graph.Graph {
	g := graph.New(c.topo.N())
	for _, e := range c.topo.Edges() {
		free := float64(c.qpus[e.U].FreeComputing() + c.qpus[e.V].FreeComputing())
		g.AddEdge(e.U, e.V, 1+free)
	}
	return g
}

// Utilization returns the fraction of computing qubits currently
// reserved, in [0, 1].
func (c *Cloud) Utilization() float64 {
	used, total := 0, 0
	for _, q := range c.qpus {
		used += q.used
		total += q.Computing
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

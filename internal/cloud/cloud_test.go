package cloud

import (
	"testing"
	"testing/quick"

	"cloudqc/internal/graph"
)

func testCloud() *Cloud {
	// 4 QPUs on a path: 0-1-2-3.
	return New(graph.Path(4), 20, 5)
}

func TestNewDefaults(t *testing.T) {
	c := testCloud()
	if c.NumQPUs() != 4 {
		t.Fatalf("NumQPUs = %d", c.NumQPUs())
	}
	q := c.QPU(2)
	if q.Computing != 20 || q.Comm != 5 || q.FreeComputing() != 20 {
		t.Fatalf("QPU = %+v", q)
	}
	if c.TotalFreeComputing() != 80 {
		t.Fatalf("TotalFreeComputing = %d", c.TotalFreeComputing())
	}
}

func TestDistanceIsHops(t *testing.T) {
	c := testCloud()
	if d := c.Distance(0, 3); d != 3 {
		t.Fatalf("Distance(0,3) = %d, want 3", d)
	}
	if d := c.Distance(1, 1); d != 0 {
		t.Fatalf("Distance(1,1) = %d, want 0", d)
	}
}

func TestPathEndpoints(t *testing.T) {
	c := testCloud()
	p := c.Path(0, 2)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("Path(0,2) = %v", p)
	}
}

func TestReserveRelease(t *testing.T) {
	c := testCloud()
	if err := c.Reserve(1, 15); err != nil {
		t.Fatal(err)
	}
	if f := c.FreeComputing(1); f != 5 {
		t.Fatalf("free after reserve = %d, want 5", f)
	}
	if err := c.Reserve(1, 6); err == nil {
		t.Fatal("over-reservation should fail")
	}
	c.Release(1, 15)
	if f := c.FreeComputing(1); f != 20 {
		t.Fatalf("free after release = %d, want 20", f)
	}
}

func TestReserveNegative(t *testing.T) {
	c := testCloud()
	if err := c.Reserve(0, -1); err == nil {
		t.Fatal("negative reservation should fail")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	c := testCloud()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	c.Release(0, 1)
}

func TestMaxFreeComputing(t *testing.T) {
	c := testCloud()
	if err := c.Reserve(0, 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(1, 10); err != nil {
		t.Fatal(err)
	}
	if m := c.MaxFreeComputing(); m != 20 {
		t.Fatalf("MaxFreeComputing = %d, want 20", m)
	}
}

func TestFreeSnapshot(t *testing.T) {
	c := testCloud()
	if err := c.Reserve(2, 7); err != nil {
		t.Fatal(err)
	}
	s := c.FreeSnapshot()
	want := []int{20, 20, 13, 20}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", s, want)
		}
	}
}

func TestCapacityGraphEmbedsFreeQubits(t *testing.T) {
	c := testCloud()
	g1 := c.CapacityGraph()
	if w := g1.Weight(0, 1); w != 41 { // 1 + 20 + 20
		t.Fatalf("weight before reserve = %v, want 41", w)
	}
	if err := c.Reserve(0, 10); err != nil {
		t.Fatal(err)
	}
	g2 := c.CapacityGraph()
	if w := g2.Weight(0, 1); w != 31 { // 1 + 10 + 20
		t.Fatalf("weight after reserve = %v, want 31", w)
	}
	if g2.HasEdge(0, 2) {
		t.Fatal("capacity graph must preserve topology (no 0-2 edge)")
	}
}

func TestUtilization(t *testing.T) {
	c := testCloud()
	if u := c.Utilization(); u != 0 {
		t.Fatalf("initial utilization = %v", u)
	}
	if err := c.Reserve(0, 20); err != nil {
		t.Fatal(err)
	}
	if u := c.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestNewRandomConnected(t *testing.T) {
	c := NewRandom(20, 0.3, 20, 5, 7)
	if c.NumQPUs() != 20 {
		t.Fatalf("NumQPUs = %d", c.NumQPUs())
	}
	if !c.Topology().Connected() {
		t.Fatal("random cloud topology must be connected")
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if c.Distance(i, j) < 0 {
				t.Fatalf("Distance(%d,%d) unreachable", i, j)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero computing qubits should panic")
		}
	}()
	New(graph.Path(2), 0, 5)
}

// Property: reserve/release round trips preserve total free capacity.
func TestQuickReserveReleaseConservation(t *testing.T) {
	f := func(seed int64) bool {
		c := NewRandom(5, 0.5, 20, 5, seed)
		before := c.TotalFreeComputing()
		s := uint64(seed)
		var reserved [5]int
		for i := 0; i < 20; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			q := int(s>>33) % 5
			n := int(s>>17) % 8
			if c.Reserve(q, n) == nil {
				reserved[q] += n
			}
		}
		for q, n := range reserved {
			c.Release(q, n)
		}
		return c.TotalFreeComputing() == before && c.Utilization() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package cloud

import (
	"reflect"
	"testing"

	"cloudqc/internal/graph"
)

// TestPathMatchesBFS: the next-hop-table walk must reproduce the
// per-call BFS it replaced exactly — same shortest paths, same
// lower-index tie-breaks — across every QPU pair of several random
// topologies. BuildRemoteDAG's output (and with it every cached remote
// DAG) depends on these paths byte for byte.
func TestPathMatchesBFS(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := NewRandom(20, 0.3, 20, 5, seed)
		g := c.Topology()
		for i := 0; i < c.NumQPUs(); i++ {
			for j := 0; j < c.NumQPUs(); j++ {
				want := g.ShortestPath(i, j)
				got := c.Path(i, j)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d Path(%d,%d) = %v, BFS says %v", seed, i, j, got, want)
				}
				if want != nil && c.Distance(i, j) != len(want)-1 {
					t.Fatalf("seed %d Distance(%d,%d) = %d, path length %d",
						seed, i, j, c.Distance(i, j), len(want)-1)
				}
			}
		}
	}
}

// TestPathDisconnected: unreachable pairs return nil, like the BFS did.
func TestPathDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	c := New(g, 5, 2)
	if p := c.Path(0, 2); p != nil {
		t.Fatalf("Path across components = %v, want nil", p)
	}
	if p := c.Path(3, 3); len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path = %v, want [3]", p)
	}
}

// TestSignature: the shape signature is stable for identical clouds and
// distinguishes topology and capacity changes; reservations (mutable
// state) must not affect it.
func TestSignature(t *testing.T) {
	a := NewRandom(10, 0.3, 20, 5, 1)
	b := NewRandom(10, 0.3, 20, 5, 1)
	if a.Signature() != b.Signature() {
		t.Fatal("identical clouds have different signatures")
	}
	if c := NewRandom(10, 0.3, 21, 5, 1); c.Signature() == a.Signature() {
		t.Fatal("computing-capacity change kept the signature")
	}
	if c := NewRandom(10, 0.3, 20, 6, 1); c.Signature() == a.Signature() {
		t.Fatal("comm-capacity change kept the signature")
	}
	if c := NewRandom(10, 0.3, 20, 5, 2); c.Signature() == a.Signature() {
		t.Fatal("different topology kept the signature")
	}
	sig := a.Signature()
	if err := a.Reserve(0, 3); err != nil {
		t.Fatal(err)
	}
	if a.Signature() != sig {
		t.Fatal("reservation changed the shape signature")
	}
	a.Release(0, 3)
}

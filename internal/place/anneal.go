package place

import (
	"math"
	"math/rand"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
)

// Annealer is the simulated-annealing baseline following Mao et al.
// (INFOCOM 2023): states are full qubit→QPU assignments, neighbors move
// one qubit or swap two, energy is the communication cost, and the
// temperature decays geometrically. Move deltas are evaluated
// incrementally so large circuits stay fast.
type Annealer struct {
	// Iterations is the number of proposed moves (default 20000).
	Iterations int
	// InitialTemp and Cooling control the schedule (defaults 50, 0.9995).
	InitialTemp float64
	Cooling     float64

	rng *rand.Rand
}

// NewAnnealer returns an annealer with the default schedule.
func NewAnnealer(seed int64) *Annealer {
	return &Annealer{
		Iterations:  20000,
		InitialTemp: 50,
		Cooling:     0.9995,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Name implements Placer.
func (a *Annealer) Name() string { return "SA" }

// Place implements Placer.
func (a *Annealer) Place(cl *cloud.Cloud, c *circuit.Circuit) (*Placement, error) {
	start := NewRandom(a.rng.Int63())
	pl, err := start.Place(cl, c)
	if err != nil {
		return nil, err
	}
	assign := pl.QubitToQPU
	n := len(assign)
	free := cl.FreeSnapshot()
	for _, q := range assign {
		free[q]--
	}
	adj := interactionAdjacency(c)

	cur := CommCost(c, cl, assign)
	best := append([]int(nil), assign...)
	bestCost := cur
	temp := a.InitialTemp
	for it := 0; it < a.Iterations; it++ {
		if a.rng.Intn(2) == 0 {
			// Move one qubit to a random QPU with room.
			qb := a.rng.Intn(n)
			to := a.rng.Intn(cl.NumQPUs())
			from := assign[qb]
			if to == from || free[to] == 0 {
				temp *= a.Cooling
				continue
			}
			delta := moveDelta(cl, adj, assign, qb, to)
			if accept(a.rng, delta, temp) {
				assign[qb] = to
				free[from]++
				free[to]--
				cur += delta
			}
		} else {
			// Swap two qubits across QPUs (capacity-neutral).
			qa, qb := a.rng.Intn(n), a.rng.Intn(n)
			if qa == qb || assign[qa] == assign[qb] {
				temp *= a.Cooling
				continue
			}
			delta := swapDelta(cl, adj, assign, qa, qb)
			if accept(a.rng, delta, temp) {
				assign[qa], assign[qb] = assign[qb], assign[qa]
				cur += delta
			}
		}
		if cur < bestCost {
			bestCost = cur
			copy(best, assign)
		}
		temp *= a.Cooling
	}
	return &Placement{Circuit: c, QubitToQPU: best}, nil
}

func accept(rng *rand.Rand, delta, temp float64) bool {
	if delta <= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-delta/temp)
}

// interactionAdjacency precomputes, per qubit, its interacting partners
// and weights for O(degree) move deltas.
func interactionAdjacency(c *circuit.Circuit) [][]weightedQubit {
	adj := make([][]weightedQubit, c.NumQubits())
	for _, e := range c.InteractionGraph().Edges() {
		adj[e.U] = append(adj[e.U], weightedQubit{q: e.V, w: e.W})
		adj[e.V] = append(adj[e.V], weightedQubit{q: e.U, w: e.W})
	}
	return adj
}

type weightedQubit struct {
	q int
	w float64
}

// moveDelta is the communication-cost change from moving qb to QPU `to`.
func moveDelta(cl *cloud.Cloud, adj [][]weightedQubit, assign []int, qb, to int) float64 {
	from := assign[qb]
	var d float64
	for _, nb := range adj[qb] {
		other := assign[nb.q]
		d += nb.w * float64(cl.Distance(to, other)-cl.Distance(from, other))
	}
	return d
}

// swapDelta is the cost change from exchanging the QPUs of qa and qb.
func swapDelta(cl *cloud.Cloud, adj [][]weightedQubit, assign []int, qa, qb int) float64 {
	pa, pb := assign[qa], assign[qb]
	var d float64
	for _, nb := range adj[qa] {
		if nb.q == qb {
			continue // their mutual edge cost is unchanged by a swap
		}
		other := assign[nb.q]
		d += nb.w * float64(cl.Distance(pb, other)-cl.Distance(pa, other))
	}
	for _, nb := range adj[qb] {
		if nb.q == qa {
			continue
		}
		other := assign[nb.q]
		d += nb.w * float64(cl.Distance(pa, other)-cl.Distance(pb, other))
	}
	return d
}

package place

import (
	"math"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

// CommCost returns the paper's communication cost for a qubit assignment:
// Σ over qubit pairs of D_ij · C_π(i)π(j), where D is the interaction
// weight and C the hop distance between the hosting QPUs.
func CommCost(c *circuit.Circuit, cl *cloud.Cloud, qubitToQPU []int) float64 {
	return commCostEdges(c.InteractionGraph().Edges(), cl, qubitToQPU)
}

// commCostEdges is CommCost over a precomputed interaction edge list, so
// sweep loops don't rebuild the interaction graph per candidate.
func commCostEdges(edges []graph.Edge, cl *cloud.Cloud, qubitToQPU []int) float64 {
	var cost float64
	for _, e := range edges {
		cost += e.W * float64(cl.Distance(qubitToQPU[e.U], qubitToQPU[e.V]))
	}
	return cost
}

// RemoteOps returns the number of two-qubit gates whose qubits land on
// different QPUs — the Table III metric.
func RemoteOps(c *circuit.Circuit, qubitToQPU []int) int {
	n := 0
	for _, g := range c.Gates() {
		if g.Kind == circuit.Two && qubitToQPU[g.Qubits[0]] != qubitToQPU[g.Qubits[1]] {
			n++
		}
	}
	return n
}

// EstimateTime returns the DAG critical-path runtime of the circuit under
// the placement: local gates cost their Table I latency; remote two-qubit
// gates cost the expected EPR + swap + execution latency for their hop
// distance. This is Algorithm 1's estimate_time — it deliberately ignores
// communication-qubit contention, which the network scheduler handles.
func EstimateTime(dag *circuit.DAG, cl *cloud.Cloud, m epr.Model, qubitToQPU []int) float64 {
	gates := dag.Circuit().Gates()
	total, _ := dag.CriticalPath(func(i int) float64 {
		g := gates[i]
		if g.Kind == circuit.Two {
			a, b := qubitToQPU[g.Qubits[0]], qubitToQPU[g.Qubits[1]]
			if a != b {
				return m.ExpectedRemoteLatency(cl.Distance(a, b))
			}
		}
		return m.GateDuration(g.Kind)
	})
	return total
}

// Score combines estimated runtime T and communication cost C into the
// paper's placement score S = a/T + b/C; higher is better. Zero C (a
// fully local placement) scores as if C were 0.5, keeping the score
// finite while still dominating any placement with real communication.
func Score(a, b, t, c float64) float64 {
	if t <= 0 {
		t = math.SmallestNonzeroFloat64
	}
	if c <= 0 {
		c = 0.5
	}
	return a/t + b/c
}

// RemoteOpsPerQPU returns R(V_j) for every QPU: the number of remote
// operations with one endpoint on that QPU (Eq. 7 of the paper).
func RemoteOpsPerQPU(c *circuit.Circuit, numQPUs int, qubitToQPU []int) []int {
	r := make([]int, numQPUs)
	for _, g := range c.Gates() {
		if g.Kind != circuit.Two {
			continue
		}
		a, b := qubitToQPU[g.Qubits[0]], qubitToQPU[g.Qubits[1]]
		if a != b {
			r[a]++
			r[b]++
		}
	}
	return r
}

package place

import (
	"fmt"
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/community"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/partition"
)

// Config parameterizes the CloudQC placer. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// ImbalanceFactors is Algorithm 1's α sweep for the graph partitioner.
	ImbalanceFactors []float64
	// ScoreAlpha and ScoreBeta weight the placement score S = a/T + b/C.
	ScoreAlpha, ScoreBeta float64
	// Model supplies latencies for the runtime estimate.
	Model epr.Model
	// Seed drives partitioner tie-breaking.
	Seed int64
	// RemoteOpsEpsilon, when positive, rejects candidate placements where
	// any QPU is endpoint of more than this many remote operations
	// (Eq. 6's R(V_j) <= ε constraint). Zero disables the constraint.
	RemoteOpsEpsilon int
	// UseBFS selects the CloudQC-BFS variant: feasible QPU sets are grown
	// by breadth-first search instead of community detection.
	UseBFS bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation.
func DefaultConfig() Config {
	return Config{
		ImbalanceFactors: []float64{0.05, 0.1, 0.2, 0.35, 0.5},
		ScoreAlpha:       1,
		ScoreBeta:        1,
		Model:            epr.DefaultModel(),
		Seed:             1,
	}
}

// CloudQC is the paper's placement algorithm (Algorithm 1): sweep
// partition granularities and imbalance factors, map each candidate's
// parts onto a feasible QPU set found by community detection
// (Algorithm 2), score every candidate by estimated runtime and
// communication cost, and keep the best.
type CloudQC struct {
	cfg Config
}

// NewCloudQC returns a CloudQC placer with the given configuration.
func NewCloudQC(cfg Config) *CloudQC {
	if len(cfg.ImbalanceFactors) == 0 {
		cfg.ImbalanceFactors = DefaultConfig().ImbalanceFactors
	}
	if cfg.ScoreAlpha == 0 && cfg.ScoreBeta == 0 {
		cfg.ScoreAlpha, cfg.ScoreBeta = 1, 1
	}
	if cfg.Model.EPRAttempt == 0 {
		cfg.Model = epr.DefaultModel()
	}
	return &CloudQC{cfg: cfg}
}

// DeterministicPlacement marks CloudQC (and CloudQC-BFS) as cacheable:
// the partitioner and community detection seed their randomness per
// call from the configured seed, so Place is a pure function of
// (circuit, free-capacity state).
func (p *CloudQC) DeterministicPlacement() {}

// Name implements Placer.
func (p *CloudQC) Name() string {
	if p.cfg.UseBFS {
		return "CloudQC-BFS"
	}
	return "CloudQC"
}

// Place implements Placer (Algorithm 1).
func (p *CloudQC) Place(cl *cloud.Cloud, c *circuit.Circuit) (*Placement, error) {
	size := c.NumQubits()
	if size > cl.TotalFreeComputing() {
		return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
	}

	// Fast path: the whole circuit fits one QPU. Best fit: the feasible
	// QPU with the least leftover capacity, preserving large QPUs for
	// large future jobs (design objective 2, "dynamics in quantum cloud").
	if size <= cl.MaxFreeComputing() {
		best, leftover := -1, 0
		for i := 0; i < cl.NumQPUs(); i++ {
			free := cl.FreeComputing(i)
			if free < size {
				continue
			}
			if best < 0 || free-size < leftover {
				best, leftover = i, free-size
			}
		}
		assign := make([]int, size)
		for i := range assign {
			assign[i] = best
		}
		return &Placement{Circuit: c, QubitToQPU: assign}, nil
	}

	ig := c.InteractionGraph()
	igEdges := ig.Edges()
	dag := circuit.BuildDAG(c)
	kMin := minParts(size, cl)
	kMax := feasibleQPUs(cl)
	if kMax > size {
		kMax = size
	}
	if kMin < 2 {
		kMin = 2
	}
	if kMin > kMax {
		return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
	}

	var best *Placement
	bestScore := 0.0
	for _, alpha := range p.cfg.ImbalanceFactors {
		for k := kMin; k <= kMax; k++ {
			res, err := partition.KWay(ig, k, alpha, p.cfg.Seed)
			if err != nil {
				continue
			}
			assign, err := p.mapParts(cl, ig, res)
			if err != nil {
				continue
			}
			if eps := p.cfg.RemoteOpsEpsilon; eps > 0 {
				if exceedsRemoteEps(c, cl.NumQPUs(), assign, eps) {
					continue
				}
			}
			t := EstimateTime(dag, cl, p.cfg.Model, assign)
			cost := commCostEdges(igEdges, cl, assign)
			s := Score(p.cfg.ScoreAlpha, p.cfg.ScoreBeta, t, cost)
			if best == nil || s > bestScore {
				best = &Placement{Circuit: c, QubitToQPU: assign}
				bestScore = s
			}
		}
	}
	if best == nil {
		return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
	}
	return best, nil
}

// minParts is ⌈size / largest-free-QPU⌉: the fewest parts that could
// possibly fit.
func minParts(size int, cl *cloud.Cloud) int {
	maxFree := cl.MaxFreeComputing()
	if maxFree == 0 {
		return size + 1 // forces infeasibility upstream
	}
	return (size + maxFree - 1) / maxFree
}

func feasibleQPUs(cl *cloud.Cloud) int {
	n := 0
	for i := 0; i < cl.NumQPUs(); i++ {
		if cl.FreeComputing(i) > 0 {
			n++
		}
	}
	return n
}

func exceedsRemoteEps(c *circuit.Circuit, numQPUs int, assign []int, eps int) bool {
	for _, r := range RemoteOpsPerQPU(c, numQPUs, assign) {
		if r > eps {
			return true
		}
	}
	return false
}

// mapParts is Algorithm 2: find a feasible QPU set (community detection
// on the capacity-weighted cloud graph, or BFS for the -BFS variant),
// map the partition interaction graph's center to the QPU set's center,
// then expand outward by BFS, placing each part on the feasible QPU
// closest to its already-placed heaviest neighbor.
func (p *CloudQC) mapParts(cl *cloud.Cloud, ig *graph.Graph, res *partition.Result) ([]int, error) {
	k := res.K
	// Part interaction graph: how strongly parts talk to each other.
	pg := graph.New(k)
	for _, e := range ig.Edges() {
		if res.Parts[e.U] != res.Parts[e.V] {
			pg.AddEdge(res.Parts[e.U], res.Parts[e.V], e.W)
		}
	}

	candidates := p.qpuCandidates(cl, res)
	free := cl.FreeSnapshot()
	partQPU := make([]int, k)
	for i := range partQPU {
		partQPU[i] = -1
	}
	used := make([]bool, cl.NumQPUs())

	// Center-to-center seed mapping.
	cp := pg.Center()
	order := pg.BFSOrder(cp)
	if len(order) < k {
		// Disconnected part graph: append the remaining parts in index
		// order so every part still gets mapped.
		inOrder := make([]bool, k)
		for _, pt := range order {
			inOrder[pt] = true
		}
		for pt := 0; pt < k; pt++ {
			if !inOrder[pt] {
				order = append(order, pt)
			}
		}
	}

	for _, part := range order {
		anchor := p.anchorFor(cl, pg, partQPU, part, candidates)
		qpu := pickQPU(cl, candidates, used, free, res.Sizes[part], anchor)
		if qpu < 0 {
			// Community too small: retry against the whole cloud.
			qpu = pickQPU(cl, allQPUs(cl), used, free, res.Sizes[part], anchor)
		}
		if qpu < 0 {
			return nil, fmt.Errorf("place: no QPU fits part %d (size %d)", part, res.Sizes[part])
		}
		partQPU[part] = qpu
		used[qpu] = true
		free[qpu] -= res.Sizes[part]
	}

	assign := make([]int, len(res.Parts))
	for qb, pt := range res.Parts {
		assign[qb] = partQPU[pt]
	}
	return assign, nil
}

// qpuCandidates returns the QPU set Algorithm 2 maps into: the best
// community (enough capacity, dense, capacity-weighted) or the BFS-grown
// set for the -BFS variant. The set is ordered for deterministic
// iteration.
func (p *CloudQC) qpuCandidates(cl *cloud.Cloud, res *partition.Result) []int {
	size := 0
	for _, s := range res.Sizes {
		size += s
	}
	if p.cfg.UseBFS {
		return bfsQPUSet(cl, size)
	}
	comms := community.Detect(cl.CapacityGraph())
	type scored struct {
		group []int
		free  int
	}
	var best *scored
	for _, g := range comms.Groups {
		if len(g) < res.K {
			continue
		}
		freeSum := 0
		for _, q := range g {
			freeSum += cl.FreeComputing(q)
		}
		if freeSum < size {
			continue
		}
		// Prefer the tightest adequate community: it leaves the rest of
		// the cloud contiguous for future jobs.
		if best == nil || freeSum < best.free {
			best = &scored{group: g, free: freeSum}
		}
	}
	if best == nil {
		return allQPUs(cl)
	}
	return best.group
}

// bfsQPUSet grows a QPU set by BFS from the freest QPU until the
// collected free capacity covers the circuit.
func bfsQPUSet(cl *cloud.Cloud, size int) []int {
	seed := 0
	for i := 1; i < cl.NumQPUs(); i++ {
		if cl.FreeComputing(i) > cl.FreeComputing(seed) {
			seed = i
		}
	}
	var set []int
	freeSum := 0
	for _, q := range cl.Topology().BFSOrder(seed) {
		if cl.FreeComputing(q) == 0 {
			continue
		}
		set = append(set, q)
		freeSum += cl.FreeComputing(q)
		if freeSum >= size {
			break
		}
	}
	sort.Ints(set)
	return set
}

func allQPUs(cl *cloud.Cloud) []int {
	out := make([]int, cl.NumQPUs())
	for i := range out {
		out[i] = i
	}
	return out
}

// anchorFor returns the QPU the part wants to sit near: the QPU of its
// heaviest already-placed neighbor part, or the candidate set's center
// for the first part.
func (p *CloudQC) anchorFor(cl *cloud.Cloud, pg *graph.Graph, partQPU []int, part int, candidates []int) int {
	bestQPU, bestW := -1, 0.0
	for _, nb := range pg.Neighbors(part) {
		if partQPU[nb] < 0 {
			continue
		}
		if w := pg.Weight(part, nb); w > bestW {
			bestQPU, bestW = partQPU[nb], w
		}
	}
	if bestQPU >= 0 {
		return bestQPU
	}
	sub, verts := cl.Topology().Subgraph(candidates)
	return verts[sub.Center()]
}

// pickQPU selects the unused candidate QPU with enough free capacity
// closest to anchor, breaking ties toward more free capacity then lower
// id.
func pickQPU(cl *cloud.Cloud, candidates []int, used []bool, free []int, need, anchor int) int {
	best, bestD, bestFree := -1, 0, 0
	for _, q := range candidates {
		if used[q] || free[q] < need {
			continue
		}
		d := cl.Distance(anchor, q)
		if d < 0 {
			continue
		}
		if best < 0 || d < bestD || (d == bestD && free[q] > bestFree) {
			best, bestD, bestFree = q, d, free[q]
		}
	}
	return best
}

// Package place implements CloudQC's circuit placement (paper Sec. V-B,
// Algorithms 1 and 2) and the evaluation baselines: Random search,
// Simulated Annealing (Mao et al.), a Genetic Algorithm, and the
// CloudQC-BFS variant that replaces community detection with BFS.
//
// A placement maps every qubit of a circuit to a QPU such that no QPU's
// free computing qubits are exceeded. Quality is measured by the paper's
// communication cost Σ D_ij·C_π(i)π(j) (interaction weight times QPU hop
// distance) and by the remote-operation count Σ D_ij·1[π(i)≠π(j)].
package place

import (
	"fmt"
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
)

// Placement assigns every qubit of one circuit to a QPU.
type Placement struct {
	// Circuit is the placed circuit.
	Circuit *circuit.Circuit
	// QubitToQPU maps each qubit index to its QPU id.
	QubitToQPU []int
}

// UsedQPUs returns the distinct QPUs hosting at least one qubit,
// ascending.
func (p *Placement) UsedQPUs() []int {
	seen := map[int]bool{}
	for _, q := range p.QubitToQPU {
		seen[q] = true
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// QubitsPerQPU counts how many qubits each used QPU hosts.
func (p *Placement) QubitsPerQPU() map[int]int {
	counts := map[int]int{}
	for _, q := range p.QubitToQPU {
		counts[q]++
	}
	return counts
}

// Validate checks that the placement is total and respects the cloud's
// free computing capacity.
func (p *Placement) Validate(cl *cloud.Cloud) error {
	if len(p.QubitToQPU) != p.Circuit.NumQubits() {
		return fmt.Errorf("place: %d assignments for %d qubits",
			len(p.QubitToQPU), p.Circuit.NumQubits())
	}
	for qb, qpu := range p.QubitToQPU {
		if qpu < 0 || qpu >= cl.NumQPUs() {
			return fmt.Errorf("place: qubit %d on invalid QPU %d", qb, qpu)
		}
	}
	for qpu, n := range p.QubitsPerQPU() {
		if free := cl.FreeComputing(qpu); n > free {
			return fmt.Errorf("place: QPU %d hosts %d qubits but has %d free", qpu, n, free)
		}
	}
	return nil
}

// Reserve claims the placement's computing qubits from the cloud. On
// failure nothing stays reserved.
func (p *Placement) Reserve(cl *cloud.Cloud) error {
	counts := p.QubitsPerQPU()
	var done []int
	for qpu, n := range counts {
		if err := cl.Reserve(qpu, n); err != nil {
			for _, d := range done {
				cl.Release(d, counts[d])
			}
			return err
		}
		done = append(done, qpu)
	}
	return nil
}

// Release returns the placement's computing qubits to the cloud.
func (p *Placement) Release(cl *cloud.Cloud) {
	for qpu, n := range p.QubitsPerQPU() {
		cl.Release(qpu, n)
	}
}

// Placer is a circuit placement algorithm. Place must not mutate the
// cloud; callers reserve capacity explicitly via Placement.Reserve.
type Placer interface {
	// Name identifies the algorithm in reports ("CloudQC", "SA", ...).
	Name() string
	// Place computes a placement of c on cl's currently free resources.
	Place(cl *cloud.Cloud, c *circuit.Circuit) (*Placement, error)
}

// DeterministicPlacer marks placement algorithms whose Place is a pure
// function of the circuit's structure and the cloud's current
// free-capacity state: identical inputs always yield the identical
// placement, with no state carried between calls. The controller's
// compile-once plan cache (internal/plan) engages only for
// deterministic placers — a hit then returns exactly what a fresh
// Place call would have, keeping cached and uncached runs
// bit-identical. The Random, SA, and GA baselines draw from a
// persistent RNG across calls and must not be memoized.
type DeterministicPlacer interface {
	Placer
	// DeterministicPlacement is a marker method; implementations do
	// nothing.
	DeterministicPlacement()
}

// ErrInfeasible is returned when the cloud lacks capacity for a circuit.
type ErrInfeasible struct {
	Circuit string
	Need    int
	Free    int
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("place: circuit %s needs %d qubits, cloud has %d free",
		e.Circuit, e.Need, e.Free)
}

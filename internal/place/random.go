package place

import (
	"math/rand"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
)

// Random is the paper's random-placement baseline: start from a random
// QPU, random-walk the topology collecting QPUs until their combined
// free capacity covers the circuit, then scatter qubits uniformly over
// the collected set (respecting capacity).
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random placer.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Placer.
func (r *Random) Name() string { return "Random" }

// Place implements Placer.
func (r *Random) Place(cl *cloud.Cloud, c *circuit.Circuit) (*Placement, error) {
	size := c.NumQubits()
	if size > cl.TotalFreeComputing() {
		return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
	}
	set := r.randomQPUSet(cl, size)
	assign := make([]int, size)
	free := cl.FreeSnapshot()
	for qb := 0; qb < size; qb++ {
		// Rejection-sample a QPU from the set with room left.
		q := -1
		for tries := 0; tries < 4*len(set); tries++ {
			cand := set[r.rng.Intn(len(set))]
			if free[cand] > 0 {
				q = cand
				break
			}
		}
		if q < 0 {
			for _, cand := range set {
				if free[cand] > 0 {
					q = cand
					break
				}
			}
		}
		if q < 0 {
			return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
		}
		assign[qb] = q
		free[q]--
	}
	return &Placement{Circuit: c, QubitToQPU: assign}, nil
}

// randomQPUSet random-walks the topology from a random start, adding
// every newly visited QPU with free capacity until the set can host the
// circuit.
func (r *Random) randomQPUSet(cl *cloud.Cloud, size int) []int {
	n := cl.NumQPUs()
	start := r.rng.Intn(n)
	visited := make([]bool, n)
	var set []int
	freeSum := 0
	cur := start
	visited[cur] = true
	if cl.FreeComputing(cur) > 0 {
		set = append(set, cur)
		freeSum += cl.FreeComputing(cur)
	}
	for freeSum < size {
		nbs := cl.Topology().Neighbors(cur)
		if len(nbs) == 0 {
			break
		}
		cur = nbs[r.rng.Intn(len(nbs))]
		if !visited[cur] {
			visited[cur] = true
			if cl.FreeComputing(cur) > 0 {
				set = append(set, cur)
				freeSum += cl.FreeComputing(cur)
			}
		}
		if allVisited(visited) {
			break
		}
	}
	// Top up from any remaining QPUs if the walk stalled.
	for q := 0; q < n && freeSum < size; q++ {
		if !visited[q] && cl.FreeComputing(q) > 0 {
			visited[q] = true
			set = append(set, q)
			freeSum += cl.FreeComputing(q)
		}
	}
	return set
}

func allVisited(v []bool) bool {
	for _, b := range v {
		if !b {
			return false
		}
	}
	return true
}

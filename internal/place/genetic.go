package place

import (
	"math/rand"
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
)

// Genetic is the GA baseline: chromosomes are qubit→QPU assignments,
// fitness is 1/(1+communication cost), selection is 3-way tournament,
// crossover is uniform with capacity repair, and mutation moves single
// qubits.
type Genetic struct {
	// Population and Generations bound the search (defaults 30, 60).
	Population  int
	Generations int
	// MutationRate is the per-qubit mutation probability (default 0.02).
	MutationRate float64

	rng *rand.Rand
}

// NewGenetic returns a GA placer with default parameters.
func NewGenetic(seed int64) *Genetic {
	return &Genetic{
		Population:   30,
		Generations:  60,
		MutationRate: 0.02,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Name implements Placer.
func (g *Genetic) Name() string { return "GA" }

// Place implements Placer.
func (g *Genetic) Place(cl *cloud.Cloud, c *circuit.Circuit) (*Placement, error) {
	size := c.NumQubits()
	if size > cl.TotalFreeComputing() {
		return nil, &ErrInfeasible{Circuit: c.Name, Need: size, Free: cl.TotalFreeComputing()}
	}
	adj := interactionAdjacency(c)
	cost := func(assign []int) float64 {
		var total float64
		for qb, nbs := range adj {
			for _, nb := range nbs {
				if nb.q > qb {
					total += nb.w * float64(cl.Distance(assign[qb], assign[nb.q]))
				}
			}
		}
		return total
	}

	pop := make([][]int, g.Population)
	costs := make([]float64, g.Population)
	seeder := NewRandom(g.rng.Int63())
	for i := range pop {
		pl, err := seeder.Place(cl, c)
		if err != nil {
			return nil, err
		}
		pop[i] = pl.QubitToQPU
		costs[i] = cost(pop[i])
	}

	bestIdx := argmin(costs)
	best := append([]int(nil), pop[bestIdx]...)
	bestCost := costs[bestIdx]

	for gen := 0; gen < g.Generations; gen++ {
		next := make([][]int, 0, g.Population)
		// Elitism: carry the champion forward unchanged.
		next = append(next, append([]int(nil), best...))
		for len(next) < g.Population {
			a := g.tournament(costs)
			b := g.tournament(costs)
			child := g.crossover(pop[a], pop[b])
			g.mutate(cl, child)
			g.repair(cl, child)
			next = append(next, child)
		}
		pop = next
		for i := range pop {
			costs[i] = cost(pop[i])
			if costs[i] < bestCost {
				bestCost = costs[i]
				copy(best, pop[i])
			}
		}
	}
	return &Placement{Circuit: c, QubitToQPU: best}, nil
}

func (g *Genetic) tournament(costs []float64) int {
	best := g.rng.Intn(len(costs))
	for i := 0; i < 2; i++ {
		c := g.rng.Intn(len(costs))
		if costs[c] < costs[best] {
			best = c
		}
	}
	return best
}

func (g *Genetic) crossover(a, b []int) []int {
	child := make([]int, len(a))
	for i := range child {
		if g.rng.Intn(2) == 0 {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

func (g *Genetic) mutate(cl *cloud.Cloud, assign []int) {
	for qb := range assign {
		if g.rng.Float64() < g.MutationRate {
			assign[qb] = g.rng.Intn(cl.NumQPUs())
		}
	}
}

// repair moves qubits off over-capacity QPUs onto the freest ones so the
// chromosome satisfies the capacity constraint.
func (g *Genetic) repair(cl *cloud.Cloud, assign []int) {
	free := cl.FreeSnapshot()
	load := make([]int, cl.NumQPUs())
	for _, q := range assign {
		load[q]++
	}
	type over struct{ qpu, excess int }
	var overs []over
	for q := range load {
		if load[q] > free[q] {
			overs = append(overs, over{qpu: q, excess: load[q] - free[q]})
		}
	}
	if len(overs) == 0 {
		return
	}
	sort.Slice(overs, func(i, j int) bool { return overs[i].qpu < overs[j].qpu })
	for _, o := range overs {
		moved := 0
		for qb := range assign {
			if moved == o.excess {
				break
			}
			if assign[qb] != o.qpu {
				continue
			}
			dest := -1
			for q := range load {
				if load[q] < free[q] && (dest < 0 || free[q]-load[q] > free[dest]-load[dest]) {
					dest = q
				}
			}
			if dest < 0 {
				return // nowhere to move; caller's capacity check prevents this
			}
			assign[qb] = dest
			load[o.qpu]--
			load[dest]++
			moved++
		}
	}
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

package place

import (
	"errors"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/qlib"
)

// smallCloud is 4 QPUs in a path, 20 computing + 5 comm qubits each.
func smallCloud() *cloud.Cloud {
	return cloud.New(graph.Path(4), 20, 5)
}

// paperCloud matches the paper's default: 20 QPUs, random p=0.3 topology,
// 20 computing + 5 communication qubits.
func paperCloud(seed int64) *cloud.Cloud {
	return cloud.NewRandom(20, 0.3, 20, 5, seed)
}

func TestPlacementUsedQPUs(t *testing.T) {
	c := circuit.New("t", 4)
	p := &Placement{Circuit: c, QubitToQPU: []int{2, 0, 2, 0}}
	used := p.UsedQPUs()
	if len(used) != 2 || used[0] != 0 || used[1] != 2 {
		t.Fatalf("UsedQPUs = %v", used)
	}
	counts := p.QubitsPerQPU()
	if counts[0] != 2 || counts[2] != 2 {
		t.Fatalf("QubitsPerQPU = %v", counts)
	}
}

func TestPlacementValidate(t *testing.T) {
	cl := smallCloud()
	c := circuit.New("t", 3)
	ok := &Placement{Circuit: c, QubitToQPU: []int{0, 1, 1}}
	if err := ok.Validate(cl); err != nil {
		t.Fatal(err)
	}
	short := &Placement{Circuit: c, QubitToQPU: []int{0}}
	if short.Validate(cl) == nil {
		t.Fatal("partial placement should fail validation")
	}
	bad := &Placement{Circuit: c, QubitToQPU: []int{0, 1, 9}}
	if bad.Validate(cl) == nil {
		t.Fatal("invalid QPU id should fail validation")
	}
}

func TestPlacementValidateCapacity(t *testing.T) {
	cl := smallCloud()
	if err := cl.Reserve(0, 19); err != nil {
		t.Fatal(err)
	}
	c := circuit.New("t", 3)
	p := &Placement{Circuit: c, QubitToQPU: []int{0, 0, 0}}
	if p.Validate(cl) == nil {
		t.Fatal("placement exceeding free capacity should fail")
	}
}

func TestReserveReleaseRoundTrip(t *testing.T) {
	cl := smallCloud()
	c := circuit.New("t", 6)
	p := &Placement{Circuit: c, QubitToQPU: []int{0, 0, 1, 1, 1, 3}}
	if err := p.Reserve(cl); err != nil {
		t.Fatal(err)
	}
	if cl.FreeComputing(0) != 18 || cl.FreeComputing(1) != 17 || cl.FreeComputing(3) != 19 {
		t.Fatalf("reserve wrong: %v", cl.FreeSnapshot())
	}
	p.Release(cl)
	if cl.TotalFreeComputing() != 80 {
		t.Fatalf("release wrong: %v", cl.FreeSnapshot())
	}
}

func TestReserveRollsBackOnFailure(t *testing.T) {
	cl := smallCloud()
	if err := cl.Reserve(1, 19); err != nil {
		t.Fatal(err)
	}
	c := circuit.New("t", 25)
	assign := make([]int, 25)
	for i := 5; i < 25; i++ {
		assign[i] = 1 // 20 qubits on QPU 1, which has only 1 free
	}
	p := &Placement{Circuit: c, QubitToQPU: assign}
	if err := p.Reserve(cl); err == nil {
		t.Fatal("reserve should fail")
	}
	if cl.FreeComputing(0) != 20 {
		t.Fatal("failed reserve must roll back partial reservations")
	}
}

func TestCommCostHandExample(t *testing.T) {
	cl := smallCloud() // path: dist(0,3) = 3
	c := circuit.New("t", 2)
	c.Append(circuit.CX(0, 1), circuit.CX(0, 1))
	cost := CommCost(c, cl, []int{0, 3})
	if cost != 6 { // D=2, C=3
		t.Fatalf("CommCost = %v, want 6", cost)
	}
	if cost := CommCost(c, cl, []int{1, 1}); cost != 0 {
		t.Fatalf("local CommCost = %v, want 0", cost)
	}
}

func TestRemoteOpsCount(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2), circuit.CX(0, 1), circuit.H(0))
	if n := RemoteOps(c, []int{0, 0, 1}); n != 1 {
		t.Fatalf("RemoteOps = %d, want 1", n)
	}
	if n := RemoteOps(c, []int{0, 1, 2}); n != 3 {
		t.Fatalf("RemoteOps = %d, want 3", n)
	}
}

func TestRemoteOpsPerQPU(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2))
	r := RemoteOpsPerQPU(c, 4, []int{0, 1, 1})
	if r[0] != 1 || r[1] != 1 || r[2] != 0 {
		t.Fatalf("RemoteOpsPerQPU = %v", r)
	}
}

func TestScoreOrdering(t *testing.T) {
	// Lower time and lower cost must both increase the score.
	if Score(1, 1, 10, 10) <= Score(1, 1, 20, 10) {
		t.Fatal("faster placement should score higher")
	}
	if Score(1, 1, 10, 10) <= Score(1, 1, 10, 20) {
		t.Fatal("cheaper placement should score higher")
	}
	// Zero communication dominates any real communication cost.
	if Score(1, 1, 10, 0) <= Score(1, 1, 10, 1) {
		t.Fatal("local placement should dominate")
	}
}

func TestCloudQCSingleQPUFastPath(t *testing.T) {
	cl := smallCloud()
	c := qlib.GHZ(10)
	p := NewCloudQC(DefaultConfig())
	pl, err := p.Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
	if len(pl.UsedQPUs()) != 1 {
		t.Fatalf("10-qubit circuit on 20-qubit QPUs should use one QPU, used %v", pl.UsedQPUs())
	}
	if RemoteOps(c, pl.QubitToQPU) != 0 {
		t.Fatal("single-QPU placement must have zero remote ops")
	}
}

func TestCloudQCBestFitPrefersTightQPU(t *testing.T) {
	cl := smallCloud()
	if err := cl.Reserve(0, 8); err != nil { // QPU0 has 12 free
		t.Fatal(err)
	}
	c := qlib.GHZ(11)
	pl, err := NewCloudQC(DefaultConfig()).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if pl.UsedQPUs()[0] != 0 {
		t.Fatalf("best fit should pick QPU 0 (12 free), got %v", pl.UsedQPUs())
	}
}

func TestCloudQCDistributesLargeCircuit(t *testing.T) {
	cl := smallCloud()
	c := qlib.GHZ(50)
	pl, err := NewCloudQC(DefaultConfig()).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
	if len(pl.UsedQPUs()) < 3 {
		t.Fatalf("50 qubits on 20-qubit QPUs needs >= 3, used %v", pl.UsedQPUs())
	}
}

func TestCloudQCChainCutQuality(t *testing.T) {
	// A GHZ chain partitions with cut ~= parts-1; CloudQC should stay
	// well below a random scattering.
	cl := paperCloud(3)
	c := qlib.GHZ(127)
	pl, err := NewCloudQC(DefaultConfig()).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
	remote := RemoteOps(c, pl.QubitToQPU)
	// Paper Table III: CloudQC achieves 8 on ghz_n127. Allow headroom
	// but require the same order of magnitude.
	if remote > 20 {
		t.Fatalf("ghz_n127 remote ops = %d, want <= 20 (paper: 8)", remote)
	}
}

func TestStarInteractionCircuitsPlaceable(t *testing.T) {
	// Bernstein–Vazirani interaction graphs are stars: without a coarse
	// vertex weight cap, multilevel coarsening collapses the star into
	// one unsplittable super-vertex and every candidate fails
	// (regression test for that bug).
	cl := paperCloud(1)
	for _, name := range []string{"bv_n70", "bv_n140", "cc_n64"} {
		c := qlib.MustBuild(name)
		for _, p := range []Placer{NewCloudQC(DefaultConfig()), bfsPlacer()} {
			pl, err := p.Place(cl, c)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
			if err := pl.Validate(cl); err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
		}
	}
}

func TestCloudQCInfeasible(t *testing.T) {
	cl := smallCloud() // 80 qubits total
	c := qlib.GHZ(127)
	_, err := NewCloudQC(DefaultConfig()).Place(cl, c)
	var infeasible *ErrInfeasible
	if !errors.As(err, &infeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestCloudQCRespectsReservations(t *testing.T) {
	cl := smallCloud()
	if err := cl.Reserve(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reserve(2, 20); err != nil {
		t.Fatal(err)
	}
	c := qlib.GHZ(30)
	pl, err := NewCloudQC(DefaultConfig()).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
	for _, q := range pl.UsedQPUs() {
		if q == 1 || q == 2 {
			t.Fatalf("placed on fully reserved QPU %d", q)
		}
	}
}

func TestCloudQCBFSVariantName(t *testing.T) {
	cfg := DefaultConfig()
	if NewCloudQC(cfg).Name() != "CloudQC" {
		t.Fatal("name")
	}
	cfg.UseBFS = true
	if NewCloudQC(cfg).Name() != "CloudQC-BFS" {
		t.Fatal("bfs name")
	}
}

func TestCloudQCBFSPlacesValidly(t *testing.T) {
	cl := paperCloud(5)
	cfg := DefaultConfig()
	cfg.UseBFS = true
	pl, err := NewCloudQC(cfg).Place(cl, qlib.MustBuild("knn_n67"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
}

func TestCloudQCEpsilonConstraint(t *testing.T) {
	cl := paperCloud(7)
	cfg := DefaultConfig()
	cfg.RemoteOpsEpsilon = 40
	c := qlib.MustBuild("knn_n67")
	pl, err := NewCloudQC(cfg).Place(cl, c)
	if err != nil {
		// A tight epsilon may make every candidate infeasible; that is a
		// legitimate outcome of Eq. 6.
		var infeasible *ErrInfeasible
		if !errors.As(err, &infeasible) {
			t.Fatalf("unexpected error type: %v", err)
		}
		return
	}
	for _, r := range RemoteOpsPerQPU(c, cl.NumQPUs(), pl.QubitToQPU) {
		if r > cfg.RemoteOpsEpsilon {
			t.Fatalf("R(V) = %d exceeds epsilon %d", r, cfg.RemoteOpsEpsilon)
		}
	}
}

func TestAllPlacersProduceValidPlacements(t *testing.T) {
	cl := paperCloud(11)
	placers := []Placer{
		NewCloudQC(DefaultConfig()),
		bfsPlacer(),
		NewRandom(1),
		NewAnnealer(1),
		NewGenetic(1),
	}
	for _, name := range []string{"ghz_n127", "knn_n67", "ising_n66"} {
		c := qlib.MustBuild(name)
		for _, p := range placers {
			pl, err := p.Place(cl, c)
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
			if err := pl.Validate(cl); err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
		}
	}
}

func bfsPlacer() Placer {
	cfg := DefaultConfig()
	cfg.UseBFS = true
	return NewCloudQC(cfg)
}

func TestCloudQCBeatsRandomOnStructuredCircuits(t *testing.T) {
	cl := paperCloud(13)
	for _, name := range []string{"ghz_n127", "ising_n98", "qugan_n71"} {
		c := qlib.MustBuild(name)
		clq, err := NewCloudQC(DefaultConfig()).Place(cl, c)
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := NewRandom(17).Place(cl, c)
		if err != nil {
			t.Fatal(err)
		}
		cqCost := CommCost(c, cl, clq.QubitToQPU)
		rndCost := CommCost(c, cl, rnd.QubitToQPU)
		if cqCost >= rndCost {
			t.Fatalf("%s: CloudQC cost %v not better than random %v", name, cqCost, rndCost)
		}
	}
}

func TestAnnealerImprovesOnRandom(t *testing.T) {
	cl := paperCloud(19)
	c := qlib.MustBuild("qugan_n71")
	sa := NewAnnealer(5)
	sa.Iterations = 5000
	pl, err := sa.Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := NewRandom(5).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if CommCost(c, cl, pl.QubitToQPU) > CommCost(c, cl, rnd.QubitToQPU) {
		t.Fatal("SA should not be worse than its random starting class")
	}
}

func TestGeneticRepairRespectsCapacity(t *testing.T) {
	cl := paperCloud(23)
	c := qlib.MustBuild("swap_test_n115")
	ga := NewGenetic(3)
	ga.Generations = 10
	pl, err := ga.Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(cl); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateTimeLocalVsRemote(t *testing.T) {
	cl := smallCloud()
	c := circuit.New("t", 2)
	c.Append(circuit.CX(0, 1))
	dag := circuit.BuildDAG(c)
	cfg := DefaultConfig()
	local := EstimateTime(dag, cl, cfg.Model, []int{0, 0})
	remote := EstimateTime(dag, cl, cfg.Model, []int{0, 3})
	if local != 1 {
		t.Fatalf("local estimate = %v, want 1", local)
	}
	if remote <= local {
		t.Fatal("remote gate must cost more than local")
	}
	nearer := EstimateTime(dag, cl, cfg.Model, []int{0, 1})
	if nearer >= remote {
		t.Fatal("closer QPUs must cost less than distant ones")
	}
}

func TestMoveDeltaMatchesFullRecompute(t *testing.T) {
	cl := paperCloud(29)
	c := qlib.MustBuild("ising_n34")
	pl, err := NewRandom(7).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	assign := pl.QubitToQPU
	adj := interactionAdjacency(c)
	before := CommCost(c, cl, assign)
	// Move qubit 5 to QPU 3.
	delta := moveDelta(cl, adj, assign, 5, 3)
	assign[5] = 3
	after := CommCost(c, cl, assign)
	if diff := after - before - delta; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("moveDelta %v != recomputed %v", delta, after-before)
	}
}

func TestSwapDeltaMatchesFullRecompute(t *testing.T) {
	cl := paperCloud(31)
	c := qlib.MustBuild("ising_n34")
	pl, err := NewRandom(9).Place(cl, c)
	if err != nil {
		t.Fatal(err)
	}
	assign := pl.QubitToQPU
	if assign[2] == assign[9] {
		assign[9] = (assign[9] + 1) % cl.NumQPUs()
	}
	adj := interactionAdjacency(c)
	before := CommCost(c, cl, assign)
	delta := swapDelta(cl, adj, assign, 2, 9)
	assign[2], assign[9] = assign[9], assign[2]
	after := CommCost(c, cl, assign)
	if diff := after - before - delta; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("swapDelta %v != recomputed %v", delta, after-before)
	}
}

package metrics

import (
	"math"
	"testing"
)

func TestRecordKeepsAll(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 5; i++ {
		r.Record(Sample{Time: float64(i), Utilization: 0.1 * float64(i)})
	}
	if len(r.Samples()) != 5 {
		t.Fatalf("samples = %d", len(r.Samples()))
	}
}

func TestRecordThinning(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 100; i++ {
		r.Record(Sample{Time: float64(i)})
	}
	// Samples at 0, 10, 20, ..., 90.
	if got := len(r.Samples()); got != 10 {
		t.Fatalf("thinned samples = %d, want 10", got)
	}
}

func TestPeakUtilization(t *testing.T) {
	r := NewRecorder(0)
	for _, u := range []float64{0.2, 0.9, 0.4} {
		r.Record(Sample{Utilization: u})
	}
	if p := r.PeakUtilization(); p != 0.9 {
		t.Fatalf("peak = %v", p)
	}
	if NewRecorder(0).PeakUtilization() != 0 {
		t.Fatal("empty peak should be 0")
	}
}

func TestMeanUtilizationTimeWeighted(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Sample{Time: 0, Utilization: 1})
	r.Record(Sample{Time: 10, Utilization: 0}) // 1.0 held for 10 units
	r.Record(Sample{Time: 30, Utilization: 0}) // 0.0 held for 20 units
	want := (1.0*10 + 0.0*20) / 30
	if m := r.MeanUtilization(); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
}

func TestMeanUtilizationDegenerate(t *testing.T) {
	r := NewRecorder(0)
	if r.MeanUtilization() != 0 {
		t.Fatal("empty mean should be 0")
	}
	// A series that never spans time never changed state: its value is
	// the mean. The old left-Riemann sum dropped the final (here, only)
	// sample and reported 0.
	r.Record(Sample{Time: 5, Utilization: 1})
	if r.MeanUtilization() != 1 {
		t.Fatalf("single-sample mean = %v, want the sample's utilization", r.MeanUtilization())
	}
	r.Record(Sample{Time: 5, Utilization: 0.5}) // zero span
	if r.MeanUtilization() != 0.5 {
		t.Fatalf("zero-span mean = %v, want last utilization", r.MeanUtilization())
	}
}

func TestMeanUtilizationUntilExtendsFinalHold(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Sample{Time: 0, Utilization: 0})
	r.Record(Sample{Time: 10, Utilization: 1})
	// Plain mean covers [0, 10]: the final sample's value contributes
	// nothing yet.
	if m := r.MeanUtilization(); m != 0 {
		t.Fatalf("mean = %v, want 0 over [0,10]", m)
	}
	// Extending to 30 holds utilization 1 for 20 more units.
	want := (0.0*10 + 1.0*20) / 30
	if m := r.MeanUtilizationUntil(30); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean until 30 = %v, want %v", m, want)
	}
	// Ends before the last sample clamp to the recorded horizon.
	if m := r.MeanUtilizationUntil(3); m != 0 {
		t.Fatalf("clamped mean = %v, want 0", m)
	}
}

func TestFlushBypassesThinning(t *testing.T) {
	r := NewRecorder(100)
	r.Record(Sample{Time: 0, Utilization: 1})
	r.Record(Sample{Time: 90, Utilization: 0.5}) // thinned away
	if len(r.Samples()) != 1 {
		t.Fatalf("samples = %d, want 1 before flush", len(r.Samples()))
	}
	r.Flush(Sample{Time: 90, Utilization: 0.5})
	if len(r.Samples()) != 2 {
		t.Fatalf("samples = %d, want closing sample kept", len(r.Samples()))
	}
	// The closing sample makes the first sample's 90-unit hold count.
	want := (1.0 * 90) / 90
	if m := r.MeanUtilization(); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
}

func TestFlushReplacesSameInstant(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Sample{Time: 5, Utilization: 0.7, Active: 2})
	r.Flush(Sample{Time: 5, Utilization: 0})
	if len(r.Samples()) != 1 {
		t.Fatalf("samples = %d, want same-instant flush to replace", len(r.Samples()))
	}
	if r.Samples()[0].Utilization != 0 {
		t.Fatal("flush should overwrite the same-instant sample")
	}
}

func TestAggregateOnline(t *testing.T) {
	jcts := []float64{100, 200, 300, 400}
	waits := []float64{0, 10, 20, 30}
	s := AggregateOnline(jcts, waits, 2, 2000)
	if s.Completed != 4 || s.Failed != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if s.MeanJCT != 250 || s.P50JCT != 250 {
		t.Fatalf("JCT stats = %+v", s)
	}
	if s.P99JCT <= s.P50JCT || s.P99JCT > 400 {
		t.Fatalf("P99 = %v out of range", s.P99JCT)
	}
	if s.MeanWait != 15 {
		t.Fatalf("MeanWait = %v", s.MeanWait)
	}
	// 4 jobs over 2000 CX = 2 jobs per kCX.
	if s.Throughput != 2 {
		t.Fatalf("Throughput = %v", s.Throughput)
	}
	empty := AggregateOnline(nil, nil, 0, 0)
	if empty.Completed != 0 || empty.Throughput != 0 || empty.MeanJCT != 0 {
		t.Fatalf("empty aggregate = %+v", empty)
	}
}

func TestMaxQueued(t *testing.T) {
	r := NewRecorder(0)
	for _, q := range []int{1, 7, 3} {
		r.Record(Sample{Queued: q})
	}
	if r.MaxQueued() != 7 {
		t.Fatalf("max queued = %d", r.MaxQueued())
	}
}

package metrics

import (
	"math"
	"testing"
)

func TestRecordKeepsAll(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 5; i++ {
		r.Record(Sample{Time: float64(i), Utilization: 0.1 * float64(i)})
	}
	if len(r.Samples()) != 5 {
		t.Fatalf("samples = %d", len(r.Samples()))
	}
}

func TestRecordThinning(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 100; i++ {
		r.Record(Sample{Time: float64(i)})
	}
	// Samples at 0, 10, 20, ..., 90.
	if got := len(r.Samples()); got != 10 {
		t.Fatalf("thinned samples = %d, want 10", got)
	}
}

func TestPeakUtilization(t *testing.T) {
	r := NewRecorder(0)
	for _, u := range []float64{0.2, 0.9, 0.4} {
		r.Record(Sample{Utilization: u})
	}
	if p := r.PeakUtilization(); p != 0.9 {
		t.Fatalf("peak = %v", p)
	}
	if NewRecorder(0).PeakUtilization() != 0 {
		t.Fatal("empty peak should be 0")
	}
}

func TestMeanUtilizationTimeWeighted(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Sample{Time: 0, Utilization: 1})
	r.Record(Sample{Time: 10, Utilization: 0}) // 1.0 held for 10 units
	r.Record(Sample{Time: 30, Utilization: 0}) // 0.0 held for 20 units
	want := (1.0*10 + 0.0*20) / 30
	if m := r.MeanUtilization(); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
}

func TestMeanUtilizationDegenerate(t *testing.T) {
	r := NewRecorder(0)
	if r.MeanUtilization() != 0 {
		t.Fatal("empty mean should be 0")
	}
	r.Record(Sample{Time: 5, Utilization: 1})
	if r.MeanUtilization() != 0 {
		t.Fatal("single-sample mean should be 0")
	}
	r.Record(Sample{Time: 5, Utilization: 1}) // zero span
	if r.MeanUtilization() != 0 {
		t.Fatal("zero-span mean should be 0")
	}
}

func TestMaxQueued(t *testing.T) {
	r := NewRecorder(0)
	for _, q := range []int{1, 7, 3} {
		r.Record(Sample{Queued: q})
	}
	if r.MaxQueued() != 7 {
		t.Fatalf("max queued = %d", r.MaxQueued())
	}
}

package metrics

import (
	"math"
	"sort"

	"cloudqc/internal/stats"
)

// JobOutcome is one job's fate in the plain-data form the SLO aggregator
// consumes; the controller converts its results with core.Outcomes. The
// metrics layer deliberately does not import core, so tenant-aware
// callers outside the controller can aggregate their own outcomes too.
type JobOutcome struct {
	// Tenant identifies the submitting tenant; Weight is its scheduling
	// weight (non-positive means 1).
	Tenant, Weight int
	// Failed marks jobs that could never be placed.
	Failed bool
	// JCT and Finished are the job's completion time and absolute finish
	// instant (zero for failed jobs).
	JCT, Finished float64
	// Deadline is the job's absolute SLO deadline; zero or negative means
	// the job carried none.
	Deadline float64
}

// TenantSLO is one tenant's slice of a run.
type TenantSLO struct {
	Tenant, Weight    int
	Completed, Failed int
	// MeanJCT and P99JCT summarize the tenant's completed jobs (NaN when
	// it completed none).
	MeanJCT, P99JCT float64
	// Attainment is the fraction of the tenant's deadline-carrying jobs
	// that finished by their deadline; NaN when it submitted none.
	Attainment float64
}

// SLOStats summarizes a tenant- and deadline-aware run: deadline
// attainment overall, a fairness index across tenants, and per-tenant
// breakdowns.
type SLOStats struct {
	// Attainment is the fraction of deadline-carrying jobs that finished
	// by their deadline; failed jobs with deadlines count as missed, jobs
	// without deadlines are excluded. NaN when no job carried a deadline.
	Attainment float64
	// Fairness is Jain's index over per-tenant mean JCTs — 1 when every
	// tenant sees the same mean completion time, approaching 1/#tenants
	// as one tenant's jobs are starved. Tenants with no completed jobs
	// are excluded; NaN with fewer than one contributing tenant.
	Fairness float64
	// PerTenant lists tenant breakdowns in ascending tenant id.
	PerTenant []TenantSLO
}

// AggregateSLO computes SLOStats from per-job outcomes.
func AggregateSLO(outcomes []JobOutcome) SLOStats {
	byTenant := make(map[int][]JobOutcome)
	for _, o := range outcomes {
		byTenant[o.Tenant] = append(byTenant[o.Tenant], o)
	}
	tenants := make([]int, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)

	var s SLOStats
	var met, withDeadline int
	var tenantMeans []float64
	for _, t := range tenants {
		row := TenantSLO{Tenant: t, Weight: 1}
		var jcts []float64
		var tMet, tWithDeadline int
		for _, o := range byTenant[t] {
			if o.Weight > 0 {
				row.Weight = o.Weight
			}
			if o.Failed {
				row.Failed++
			} else {
				row.Completed++
				jcts = append(jcts, o.JCT)
			}
			if o.Deadline > 0 {
				tWithDeadline++
				if !o.Failed && o.Finished <= o.Deadline {
					tMet++
				}
			}
		}
		row.MeanJCT = stats.Mean(jcts)
		row.P99JCT = stats.Percentile(jcts, 0.99)
		row.Attainment = ratioOrNaN(tMet, tWithDeadline)
		met += tMet
		withDeadline += tWithDeadline
		if len(jcts) > 0 {
			tenantMeans = append(tenantMeans, row.MeanJCT)
		}
		s.PerTenant = append(s.PerTenant, row)
	}
	s.Attainment = ratioOrNaN(met, withDeadline)
	s.Fairness = stats.JainIndex(tenantMeans)
	return s
}

func ratioOrNaN(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

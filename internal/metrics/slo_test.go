package metrics

import (
	"math"
	"testing"
)

func TestAggregateSLOAttainment(t *testing.T) {
	s := AggregateSLO([]JobOutcome{
		{Tenant: 0, JCT: 100, Finished: 100, Deadline: 200}, // met
		{Tenant: 0, JCT: 300, Finished: 300, Deadline: 200}, // missed
		{Tenant: 0, JCT: 50, Finished: 50},                  // no deadline: excluded
		{Tenant: 0, Failed: true, Deadline: 400},            // failed with deadline: missed
	})
	if got, want := s.Attainment, 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Attainment = %v, want %v", got, want)
	}
	if len(s.PerTenant) != 1 {
		t.Fatalf("PerTenant = %+v", s.PerTenant)
	}
	row := s.PerTenant[0]
	if row.Completed != 3 || row.Failed != 1 {
		t.Fatalf("tenant row = %+v", row)
	}
	if got, want := row.MeanJCT, (100.0+300+50)/3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanJCT = %v, want %v", got, want)
	}
}

func TestAggregateSLOPerTenantAndFairness(t *testing.T) {
	s := AggregateSLO([]JobOutcome{
		{Tenant: 2, Weight: 4, JCT: 100, Finished: 100, Deadline: 150},
		{Tenant: 1, Weight: 1, JCT: 100, Finished: 100, Deadline: 50},
		{Tenant: 1, Weight: 1, JCT: 300, Finished: 300, Deadline: 500},
	})
	if len(s.PerTenant) != 2 {
		t.Fatalf("PerTenant = %+v", s.PerTenant)
	}
	// Ascending tenant id, weights carried through.
	if s.PerTenant[0].Tenant != 1 || s.PerTenant[1].Tenant != 2 {
		t.Fatalf("tenant order = %+v", s.PerTenant)
	}
	if s.PerTenant[0].Weight != 1 || s.PerTenant[1].Weight != 4 {
		t.Fatalf("weights = %+v", s.PerTenant)
	}
	if got := s.PerTenant[0].Attainment; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tenant 1 attainment = %v, want 0.5", got)
	}
	// Per-tenant means are 200 and 100: Jain = 300² / (2·(200²+100²)) = 0.9.
	if got := s.Fairness; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("Fairness = %v, want 0.9", got)
	}
	// Equal mean JCTs → perfectly fair.
	eq := AggregateSLO([]JobOutcome{
		{Tenant: 0, JCT: 100, Finished: 100},
		{Tenant: 1, JCT: 100, Finished: 100},
	})
	if math.Abs(eq.Fairness-1) > 1e-12 {
		t.Fatalf("equal-JCT fairness = %v, want 1", eq.Fairness)
	}
}

func TestAggregateSLODegenerate(t *testing.T) {
	// No deadlines anywhere: attainment is undefined, not 0 or 1.
	s := AggregateSLO([]JobOutcome{{Tenant: 0, JCT: 10, Finished: 10}})
	if !math.IsNaN(s.Attainment) {
		t.Fatalf("Attainment = %v, want NaN", s.Attainment)
	}
	if s.Fairness != 1 {
		t.Fatalf("single-tenant fairness = %v, want 1", s.Fairness)
	}
	// Empty input.
	empty := AggregateSLO(nil)
	if !math.IsNaN(empty.Attainment) || len(empty.PerTenant) != 0 {
		t.Fatalf("empty = %+v", empty)
	}
	// All jobs failed: no per-tenant mean to be fair about.
	failed := AggregateSLO([]JobOutcome{{Tenant: 0, Failed: true}, {Tenant: 1, Failed: true}})
	if !math.IsNaN(failed.Fairness) {
		t.Fatalf("all-failed fairness = %v, want NaN", failed.Fairness)
	}
}

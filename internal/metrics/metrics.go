// Package metrics instruments multi-tenant runs: time series of cloud
// utilization, active and queued jobs, sampled every scheduling round.
// The paper's design objective 3 is "minimizing job completion time and
// maximizing quantum resource utilization"; this package measures the
// second half.
package metrics

// Sample is one instant of cluster state.
type Sample struct {
	// Time is the simulation clock in CX units.
	Time float64
	// Utilization is the fraction of computing qubits reserved, [0, 1].
	Utilization float64
	// Active is the number of jobs currently executing.
	Active int
	// Queued is the number of jobs waiting for placement.
	Queued int
}

// Recorder accumulates samples. The zero value records every call;
// construct with NewRecorder to thin samples to a minimum spacing.
type Recorder struct {
	every   float64
	last    float64
	started bool
	samples []Sample
}

// NewRecorder returns a recorder keeping at most one sample per `every`
// time units (0 keeps everything).
func NewRecorder(every float64) *Recorder {
	return &Recorder{every: every}
}

// Record appends a sample unless it is closer than `every` to the
// previous one.
func (r *Recorder) Record(s Sample) {
	if r.started && r.every > 0 && s.Time-r.last < r.every {
		return
	}
	r.samples = append(r.samples, s)
	r.last = s.Time
	r.started = true
}

// Samples returns the recorded series in time order.
func (r *Recorder) Samples() []Sample { return r.samples }

// PeakUtilization returns the highest recorded utilization (0 when
// empty).
func (r *Recorder) PeakUtilization() float64 {
	peak := 0.0
	for _, s := range r.samples {
		if s.Utilization > peak {
			peak = s.Utilization
		}
	}
	return peak
}

// MeanUtilization returns the time-weighted mean utilization across the
// recorded horizon (0 when fewer than two samples exist).
func (r *Recorder) MeanUtilization() float64 {
	if len(r.samples) < 2 {
		return 0
	}
	var area, span float64
	for i := 1; i < len(r.samples); i++ {
		dt := r.samples[i].Time - r.samples[i-1].Time
		area += r.samples[i-1].Utilization * dt
		span += dt
	}
	if span == 0 {
		return 0
	}
	return area / span
}

// MaxQueued returns the longest observed queue.
func (r *Recorder) MaxQueued() int {
	m := 0
	for _, s := range r.samples {
		if s.Queued > m {
			m = s.Queued
		}
	}
	return m
}

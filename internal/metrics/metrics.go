// Package metrics instruments multi-tenant runs: time series of cloud
// utilization, active and queued jobs, sampled every scheduling round,
// plus the aggregate job-stream statistics (throughput, JCT percentiles,
// wait times) the online "incoming jobs" mode reports. The paper's
// design objective 3 is "minimizing job completion time and maximizing
// quantum resource utilization"; this package measures both halves.
package metrics

import (
	"cloudqc/internal/stats"
)

// Sample is one instant of cluster state.
type Sample struct {
	// Time is the simulation clock in CX units.
	Time float64
	// Utilization is the fraction of computing qubits reserved, [0, 1].
	Utilization float64
	// Active is the number of jobs currently executing.
	Active int
	// Queued is the number of jobs waiting for placement.
	Queued int
}

// Recorder accumulates samples. The zero value records every call;
// construct with NewRecorder to thin samples to a minimum spacing.
type Recorder struct {
	every   float64
	last    float64
	started bool
	samples []Sample
}

// NewRecorder returns a recorder keeping at most one sample per `every`
// time units (0 keeps everything).
func NewRecorder(every float64) *Recorder {
	return &Recorder{every: every}
}

// Record appends a sample unless it is closer than `every` to the
// previous one.
func (r *Recorder) Record(s Sample) {
	if r.started && r.every > 0 && s.Time-r.last < r.every {
		return
	}
	r.samples = append(r.samples, s)
	r.last = s.Time
	r.started = true
}

// Flush appends a closing sample unconditionally, bypassing thinning —
// call it at end of run so the series covers the full horizon even when
// the final state change landed inside the thinning window and would
// have been dropped. A flush at the same instant as the last kept sample
// replaces it instead of recording a zero-width duplicate.
func (r *Recorder) Flush(s Sample) {
	if n := len(r.samples); n > 0 && r.samples[n-1].Time == s.Time {
		r.samples[n-1] = s
		return
	}
	r.samples = append(r.samples, s)
	r.last = s.Time
	r.started = true
}

// Samples returns the recorded series in time order.
func (r *Recorder) Samples() []Sample { return r.samples }

// PeakUtilization returns the highest recorded utilization (0 when
// empty).
func (r *Recorder) PeakUtilization() float64 {
	peak := 0.0
	for _, s := range r.samples {
		if s.Utilization > peak {
			peak = s.Utilization
		}
	}
	return peak
}

// MeanUtilization returns the time-weighted mean utilization across the
// recorded horizon under sample-and-hold semantics: each sample's value
// holds until the next sample. The final sample closes the horizon, so
// record one at end of run (see Flush) for full coverage. A series whose
// samples all share one instant never changed state, so its (last)
// utilization is returned rather than 0 — the left-Riemann sum used to
// stop at the second-to-last sample and drop that contribution entirely.
func (r *Recorder) MeanUtilization() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.MeanUtilizationUntil(r.samples[len(r.samples)-1].Time)
}

// MeanUtilizationUntil is MeanUtilization with the horizon extended to
// `end`: the final sample's utilization holds from its own time to end,
// the contribution MeanUtilization cannot see because the recorder does
// not know when the run finished. Ends before the last sample are
// clamped to it.
func (r *Recorder) MeanUtilizationUntil(end float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var area, span float64
	for i := 1; i < len(r.samples); i++ {
		dt := r.samples[i].Time - r.samples[i-1].Time
		area += r.samples[i-1].Utilization * dt
		span += dt
	}
	last := r.samples[len(r.samples)-1]
	if end > last.Time {
		area += last.Utilization * (end - last.Time)
		span += end - last.Time
	}
	if span == 0 {
		return last.Utilization
	}
	return area / span
}

// MaxQueued returns the longest observed queue.
func (r *Recorder) MaxQueued() int {
	m := 0
	for _, s := range r.samples {
		if s.Queued > m {
			m = s.Queued
		}
	}
	return m
}

// OnlineStats aggregates per-job outcomes of one online ("incoming
// jobs") run into the figures the paper's multi-tenant evaluation
// reports: throughput, completion-time percentiles, and queueing delay.
type OnlineStats struct {
	// Completed and Failed count jobs that finished vs. jobs that could
	// never be placed.
	Completed, Failed int
	// MeanJCT, P50JCT and P99JCT summarize completed jobs' completion
	// times (arrival to finish, queueing included), in CX units.
	MeanJCT, P50JCT, P99JCT float64
	// MeanWait is the average time from arrival to placement.
	MeanWait float64
	// Makespan is the horizon Throughput is measured over: the span from
	// time 0 (the start of the arrival process) to the last completion —
	// or, in rows aggregating several repetitions, the sum of those
	// spans.
	Makespan float64
	// Throughput is completed jobs per 1000 CX units of makespan.
	Throughput float64
}

// AggregateOnline computes OnlineStats from completed jobs' JCTs and
// wait times, the failed-job count, and the run's makespan.
func AggregateOnline(jcts, waits []float64, failed int, makespan float64) OnlineStats {
	s := OnlineStats{
		Completed: len(jcts),
		Failed:    failed,
		Makespan:  makespan,
	}
	if len(jcts) > 0 {
		s.MeanJCT = stats.Mean(jcts)
		s.P50JCT = stats.Percentile(jcts, 0.5)
		s.P99JCT = stats.Percentile(jcts, 0.99)
	}
	if len(waits) > 0 {
		s.MeanWait = stats.Mean(waits)
	}
	if makespan > 0 {
		s.Throughput = float64(s.Completed) / makespan * 1000
	}
	return s
}

package loadgen

import (
	"net/http/httptest"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/service"
)

// TestLoadgenSmall drives a modest stream through a real HTTP server
// and checks the report adds up: everything accepted (no limits
// configured), everything settled, latencies measured. The huge
// timescale makes virtual time effectively free so the backlog drains
// as fast as the wall clock polls.
func TestLoadgenSmall(t *testing.T) {
	lc, err := core.NewLiveController(core.Config{Cloud: cloud.NewRandom(10, 0.3, 20, 5, 1), Mode: core.FIFOMode, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(service.Config{Controller: lc, TimeScale: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(Config{BaseURL: ts.URL, Jobs: 500, Workers: 4, Tenants: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 500 || rep.Accepted != 500 || rep.Rejected != 0 || rep.Shed != 0 || rep.Other != 0 {
		t.Fatalf("report %+v: want 500 submitted and accepted", rep)
	}
	if rep.Settled < rep.Accepted {
		t.Fatalf("settled %d < accepted %d", rep.Settled, rep.Accepted)
	}
	if rep.SubmitP50 <= 0 || rep.SubmitP99 < rep.SubmitP50 {
		t.Fatalf("latencies p50=%v p99=%v", rep.SubmitP50, rep.SubmitP99)
	}
	if rep.JobsPerSec <= 0 {
		t.Fatalf("jobs/sec %v", rep.JobsPerSec)
	}
}

func TestLoadgenBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing BaseURL should error")
	}
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:0", Jobs: 0}); err == nil {
		t.Fatal("zero Jobs should error")
	}
}

// Package loadgen drives a live cloudqcd over HTTP with a sustained
// submission stream and measures what a client actually observes:
// accept/reject/shed counts, submit-latency percentiles, and end-to-end
// throughput once the backlog settles. It is the daemon's proof-of-load
// harness — cmd/loadgen wraps it as a CLI and BenchmarkLoadgen feeds
// its throughput into the benchjson pipeline.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cloudqc/internal/service"
)

// GHZ3QASM is the default workload: a 3-qubit GHZ circuit, small
// enough to fit any single QPU (no remote gates) and constant, so the
// plan cache absorbs every compile after the first — the configuration
// that measures the service path itself rather than placement cost.
const GHZ3QASM = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\nmeasure q[2] -> c[2];\n"

// Config parameterizes a load run against a live daemon.
type Config struct {
	// BaseURL is the daemon's root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Jobs is the total number of submissions to issue.
	Jobs int
	// Workers is the number of concurrent submitters (default 8).
	Workers int
	// Tenants spreads submissions round-robin over this many tenant ids
	// (default 4).
	Tenants int
	// Circuit is a qlib benchmark name; QASM an inline program. With
	// neither set, GHZ3QASM is used.
	Circuit string
	QASM    string
	// DeadlineSlack forwards to the submission body (0 = no deadlines).
	DeadlineSlack float64
	// SettleTimeout bounds the post-submission wait for every accepted
	// job to settle (default 2 minutes of wall time).
	SettleTimeout time.Duration
	// Client overrides the HTTP client (default: http.DefaultClient
	// with keep-alives, which this workload depends on).
	Client *http.Client
}

// Report is what the run observed.
type Report struct {
	// Jobs issued, and their outcomes: accepted (202), rejected (429),
	// shed (503), other (anything else — first error kept in Err).
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	Rejected  int `json:"rejected"`
	Shed      int `json:"shed"`
	Other     int `json:"other"`
	// SubmitWall is the submission phase's wall-clock duration;
	// SettleWall the additional wait until every accepted job settled.
	SubmitWall time.Duration `json:"submit_wall"`
	SettleWall time.Duration `json:"settle_wall"`
	// SubmitP50/P95/P99 are per-request submit latencies.
	SubmitP50 time.Duration `json:"submit_p50"`
	SubmitP95 time.Duration `json:"submit_p95"`
	SubmitP99 time.Duration `json:"submit_p99"`
	// StatusCounts tallies every HTTP status code the submission stream
	// saw — the breakdown behind Accepted/Rejected/Shed/Other.
	StatusCounts map[int]int `json:"status_counts,omitempty"`
	// Settled is the daemon's settled count when the run finished;
	// JobsPerSec is accepted jobs over the full wall time (submission +
	// settling) — client-observed end-to-end throughput.
	Settled    int     `json:"settled"`
	JobsPerSec float64 `json:"jobs_per_sec"`
}

// Run executes the configured load and reports. It returns an error
// only for harness-level failures (unreachable daemon, bad config);
// per-request rejections land in the Report.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("loadgen: Jobs %d: need at least 1", cfg.Jobs)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 2 * time.Minute
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Circuit == "" && cfg.QASM == "" {
		cfg.QASM = GHZ3QASM
	}

	// Pre-encode one body per tenant: the submission loop then does no
	// JSON work, only byte copies.
	bodies := make([][]byte, cfg.Tenants)
	for t := range bodies {
		b, err := json.Marshal(service.SubmitRequest{
			Tenant:        t,
			Circuit:       cfg.Circuit,
			QASM:          cfg.QASM,
			DeadlineSlack: cfg.DeadlineSlack,
		})
		if err != nil {
			return nil, err
		}
		bodies[t] = b
	}

	var (
		next     atomic.Int64
		rep      Report
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	perWorker := make([][]time.Duration, cfg.Workers)
	counts := make([]Report, cfg.Workers)
	url := cfg.BaseURL + "/v1/jobs"
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, cfg.Jobs/cfg.Workers+1)
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Jobs {
					break
				}
				body := bodies[i%cfg.Tenants]
				t0 := time.Now()
				resp, err := cfg.Client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				counts[w].Submitted++
				if counts[w].StatusCounts == nil {
					counts[w].StatusCounts = make(map[int]int)
				}
				counts[w].StatusCounts[resp.StatusCode]++
				switch resp.StatusCode {
				case http.StatusAccepted:
					counts[w].Accepted++
				case http.StatusTooManyRequests:
					counts[w].Rejected++
				case http.StatusServiceUnavailable:
					counts[w].Shed++
				default:
					counts[w].Other++
				}
			}
			perWorker[w] = lat
		}(w)
	}
	wg.Wait()
	rep.SubmitWall = time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("loadgen: %w", firstErr)
	}
	var lats []time.Duration
	rep.StatusCounts = make(map[int]int)
	for w := range counts {
		rep.Submitted += counts[w].Submitted
		rep.Accepted += counts[w].Accepted
		rep.Rejected += counts[w].Rejected
		rep.Shed += counts[w].Shed
		rep.Other += counts[w].Other
		for code, n := range counts[w].StatusCounts {
			rep.StatusCounts[code] += n
		}
		lats = append(lats, perWorker[w]...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rep.SubmitP50 = lats[n/2]
		rep.SubmitP95 = lats[n*95/100]
		rep.SubmitP99 = lats[n*99/100]
	}

	// Settling phase: poll stats until every accepted job has settled.
	settleStart := time.Now()
	deadline := settleStart.Add(cfg.SettleTimeout)
	for {
		stats, err := fetchStats(cfg.Client, cfg.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("loadgen: stats poll: %w", err)
		}
		rep.Settled = stats.Settled
		if rep.Settled >= rep.Accepted {
			break
		}
		if time.Now().After(deadline) {
			return &rep, fmt.Errorf("loadgen: %d/%d jobs settled after %v", rep.Settled, rep.Accepted, cfg.SettleTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep.SettleWall = time.Since(settleStart)
	if total := rep.SubmitWall + rep.SettleWall; total > 0 {
		rep.JobsPerSec = float64(rep.Accepted) / total.Seconds()
	}
	return &rep, nil
}

func fetchStats(c *http.Client, baseURL string) (*service.StatsResponse, error) {
	resp, err := c.Get(baseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	var stats service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

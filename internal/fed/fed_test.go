package fed

import (
	"errors"
	"math/rand"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
	"cloudqc/internal/workload"
)

// fedStream mirrors the core live differential test's stream: batch or
// Poisson arrivals, optionally with tenants, weights, and depth-scaled
// deadlines. Streams are rebuilt per run so the reference and the
// federation never share Job pointers.
func fedStream(t *testing.T, poisson, tenants bool, seed int64) []*core.Job {
	t.Helper()
	names := []string{"qugan_n39", "qft_n29", "ghz_n127", "qugan_n71", "ising_n66", "qft_n63", "cat_n65", "qft_n29"}
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	jobs := make([]*core.Job, 0, len(names))
	for i, name := range names {
		c, err := qlib.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		j := &core.Job{ID: i, Circuit: c, Arrival: arrival}
		if tenants {
			j.Tenant = i % 3
			j.Priority = 1 << (i % 3)
			j.Deadline = arrival + float64(c.Depth())*(20+rng.Float64()*60)
		}
		jobs = append(jobs, j)
		if poisson {
			arrival += rng.ExpFloat64() * 1500
		}
	}
	return jobs
}

// shardTemplate is the per-shard controller template the differential
// and routing tests share (no cloud, no recorder — per-shard fields).
func shardTemplate(seed int64, mode core.Mode) core.Config {
	pCfg := place.DefaultConfig()
	pCfg.Seed = seed
	return core.Config{
		Placer: place.NewCloudQC(pCfg),
		Mode:   mode,
		Seed:   seed,
	}
}

// TestFederationSingleShardMatchesLive is the federation tier's
// differential guarantee: a 1-shard federation is bit-identical to a
// bare LiveController — same per-job results, same round and event
// counts, same recorder series, same SLO aggregates — for batch and
// Poisson streams under FIFO, EDF, WFQ, and batch admission.
func TestFederationSingleShardMatchesLive(t *testing.T) {
	cases := []struct {
		name             string
		poisson, tenants bool
		mode             core.Mode
	}{
		{"batch-fifo", false, false, core.FIFOMode},
		{"batch-wfq", false, true, core.WFQMode},
		{"poisson-fifo", true, false, core.FIFOMode},
		{"poisson-wfq", true, true, core.WFQMode},
		{"poisson-batchmode", true, false, core.BatchMode},
		{"poisson-edf", true, true, core.EDFMode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				jobsA := fedStream(t, tc.poisson, tc.tenants, seed)
				jobsB := fedStream(t, tc.poisson, tc.tenants, seed)

				cfgA := shardTemplate(seed, tc.mode)
				cfgA.Cloud = cloud.NewRandom(10, 0.3, 20, 5, 1)
				recA := metrics.NewRecorder(0)
				cfgA.Recorder = recA
				lc, err := core.NewLiveController(cfgA)
				if err != nil {
					t.Fatal(err)
				}

				recB := metrics.NewRecorder(0)
				f, err := New(Config{
					Shard:     shardTemplate(seed, tc.mode),
					Clouds:    []*cloud.Cloud{cloud.NewRandom(10, 0.3, 20, 5, 1)},
					Recorders: []*metrics.Recorder{recB},
				})
				if err != nil {
					t.Fatal(err)
				}

				drive := func(submit func(*core.Job) error, step func(float64) error, jobs []*core.Job) {
					for i, j := range jobs {
						if i > 0 && j.Arrival > jobs[i-1].Arrival {
							if err := step((jobs[i-1].Arrival + j.Arrival) / 2); err != nil {
								t.Fatal(err)
							}
						}
						if err := step(j.Arrival); err != nil {
							t.Fatal(err)
						}
						if err := submit(j); err != nil {
							t.Fatal(err)
						}
					}
				}
				drive(lc.Submit, lc.StepUntil, jobsA)
				drive(f.Submit, f.StepUntil, jobsB)

				want, err := lc.Drain()
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.Drain()
				if err != nil {
					t.Fatal(err)
				}

				if len(got) != len(want) {
					t.Fatalf("result count %d vs %d", len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					if g.Job.ID != w.Job.ID || g.Failed != w.Failed ||
						g.PlacedAt != w.PlacedAt || g.Finished != w.Finished ||
						g.JCT != w.JCT || g.WaitTime != w.WaitTime ||
						g.RemoteGates != w.RemoteGates {
						t.Fatalf("seed %d job %d diverged:\nlive %+v\nfed  %+v",
							seed, w.Job.ID, *w, *g)
					}
				}
				if lc.RunStats() != f.RunStats() {
					t.Fatalf("seed %d run stats diverged: live %+v, fed %+v",
						seed, lc.RunStats(), f.RunStats())
				}
				sa, sb := recA.Samples(), recB.Samples()
				if len(sa) != len(sb) {
					t.Fatalf("seed %d recorder length diverged: %d vs %d", seed, len(sa), len(sb))
				}
				for i := range sa {
					if sa[i] != sb[i] {
						t.Fatalf("seed %d sample %d diverged: %+v vs %+v", seed, i, sa[i], sb[i])
					}
				}
				if tc.tenants {
					sw := metrics.AggregateSLO(core.Outcomes(want))
					sg := metrics.AggregateSLO(core.Outcomes(got))
					if sw.Attainment != sg.Attainment || sw.Fairness != sg.Fairness ||
						len(sw.PerTenant) != len(sg.PerTenant) {
						t.Fatalf("seed %d SLO stats diverged:\nlive %+v\nfed  %+v", seed, sw, sg)
					}
				}
			}
		})
	}
}

// uniformClouds builds n same-shape paper clouds (separate instances —
// reservations are mutable state).
func uniformClouds(n, qpus int) []*cloud.Cloud {
	out := make([]*cloud.Cloud, n)
	for i := range out {
		out[i] = cloud.NewRandom(qpus, 0.3, 20, 5, 1)
	}
	return out
}

// TestFederationAutoIDsShardTagged: auto-assigned IDs (Submit with a
// negative ID) are disjoint across shards and recover their shard by
// id mod N; explicitly claimed IDs are honored and never reissued.
func TestFederationAutoIDsShardTagged(t *testing.T) {
	f, err := New(Config{
		Shard:   shardTemplate(1, core.FIFOMode),
		Clouds:  uniformClouds(3, 8),
		Routing: RouteRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Claim an ID by hand first; auto assignment must skip it.
	if err := f.Submit(&core.Job{ID: 4, Circuit: qlib.GHZ(6)}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{4: true}
	for i := 0; i < 12; i++ {
		j := &core.Job{ID: -1, Circuit: qlib.GHZ(6)}
		if err := f.Submit(j); err != nil {
			t.Fatal(err)
		}
		if j.ID < 0 {
			t.Fatalf("submit left ID unassigned: %d", j.ID)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate auto ID %d", j.ID)
		}
		seen[j.ID] = true
		s, ok := f.ShardOf(j.ID)
		if !ok {
			t.Fatalf("job %d not registered", j.ID)
		}
		if j.ID%f.NumShards() != s {
			t.Fatalf("auto ID %d not tagged with shard %d", j.ID, s)
		}
	}
	if err := f.Submit(&core.Job{ID: 4, Circuit: qlib.GHZ(6)}); err == nil {
		t.Fatal("duplicate explicit ID accepted")
	}
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationDrainedErrors: after Drain, every entry point fails
// with core.ErrDrained, recognizable through errors.Is despite the
// federation's wrapping.
func TestFederationDrainedErrors(t *testing.T) {
	f, err := New(Config{
		Shard:  shardTemplate(1, core.FIFOMode),
		Clouds: uniformClouds(2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(&core.Job{ID: 0, Circuit: qlib.GHZ(6)}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(&core.Job{ID: 1, Circuit: qlib.GHZ(6)}); !errors.Is(err, core.ErrDrained) {
		t.Fatalf("submit after drain: err = %v, want ErrDrained", err)
	}
	if err := f.StepUntil(10); !errors.Is(err, core.ErrDrained) {
		t.Fatalf("step after drain: err = %v, want ErrDrained", err)
	}
	if _, err := f.Drain(); !errors.Is(err, core.ErrDrained) {
		t.Fatalf("second drain: err = %v, want ErrDrained", err)
	}
}

// TestFederationAffinityBeatsRandom pins the tentpole's payoff claim:
// on a repeated-template multi-tenant stream, affinity routing's
// federated plan-cache hit rate strictly exceeds the random-routing
// ablation's. Both runs see the identical stream and fleet.
func TestFederationAffinityBeatsRandom(t *testing.T) {
	hitRate := func(routing Routing) float64 {
		f, err := New(Config{
			Shard:   shardTemplate(7, core.FIFOMode),
			Clouds:  uniformClouds(4, 10),
			Routing: routing,
		})
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"qft_n29", "qugan_n39", "ghz_n127", "cat_n65"}
		rng := rand.New(rand.NewSource(7))
		arrival := 0.0
		id := 0
		for round := 0; round < 6; round++ {
			for tenant, name := range names {
				c, err := qlib.Build(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.StepUntil(arrival); err != nil {
					t.Fatal(err)
				}
				if err := f.Submit(&core.Job{ID: id, Circuit: c, Arrival: arrival, Tenant: tenant}); err != nil {
					t.Fatal(err)
				}
				id++
				arrival += rng.ExpFloat64() * 2000
			}
		}
		if _, err := f.Drain(); err != nil {
			t.Fatal(err)
		}
		ps := f.PlanCacheStats()
		if ps.Hits+ps.Misses == 0 {
			t.Fatal("plan cache never consulted")
		}
		return float64(ps.Hits) / float64(ps.Hits+ps.Misses)
	}
	aff := hitRate(RouteAffinity)
	rnd := hitRate(RouteRandom)
	if aff <= rnd {
		t.Fatalf("affinity hit rate %.3f not above random ablation %.3f", aff, rnd)
	}
}

// TestFederationCrossShardFairness: the shared WFQ clock holds weighted
// fairness across shards — on an 8-tenant bursty mix over the same
// total capacity (one 20-QPU cloud vs that topology partitioned into 4
// shard clouds), the 4-shard federation's Jain index over per-tenant
// mean JCTs stays within 5% of the single-cloud WFQ baseline's.
func TestFederationCrossShardFairness(t *testing.T) {
	base := fedFairness(t, 1)
	fed4 := fedFairness(t, 4)
	if base <= 0 {
		t.Fatalf("degenerate baseline fairness %v", base)
	}
	if diff := fed4 - base; diff < -0.05*base || diff > 0.05*base {
		t.Fatalf("4-shard Jain %.4f deviates more than 5%% from single-cloud baseline %.4f", fed4, base)
	}
}

// fedFairness runs the 8-tenant bursty mix over the paper's 20-QPU
// topology split into the given shard count and returns the Jain
// fairness index over per-tenant mean JCTs.
func fedFairness(t *testing.T, shards int) float64 {
	t.Helper()
	// One template per tenant, all of comparable gate count and all
	// fitting a 1/4-topology shard (~4 QPUs × 20 computing): Jain over
	// per-tenant mean JCTs then reflects scheduling, not circuit-cost
	// luck.
	templates := []string{
		"wstate_n36", "bv_n70", "cc_n64", "ising_n34",
		"qaoa_n32", "qugan_n39", "ising_n66", "knn_n67",
	}
	mix := make([]workload.TenantSpec, len(templates))
	for i, name := range templates {
		mix[i] = workload.TenantSpec{
			Tenant:           i,
			Priority:         1,
			Workload:         workload.Workload{Name: name, Circuits: []string{name}},
			Jobs:             4,
			Process:          "bursty",
			MeanInterarrival: 3000,
			MinSlack:         workload.DefaultMinSlack,
			MaxSlack:         workload.DefaultMaxSlack,
		}
	}
	jobs, err := workload.MultiTenant(mix, 11)
	if err != nil {
		t.Fatal(err)
	}
	topo := graph.Random(16, 0.3, 1)
	clouds, err := PartitionClouds(topo, shards, 20, 5, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Shard:      shardTemplate(11, core.WFQMode),
		Clouds:     clouds,
		SpillDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := f.StepUntil(j.Arrival); err != nil {
			t.Fatal(err)
		}
		if err := f.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed in %d-shard run", r.Job.ID, shards)
		}
	}
	return metrics.AggregateSLO(core.Outcomes(res)).Fairness
}

// TestFederationSpillover: when the affinity shard's backlog runs
// deeper than SpillDepth beyond the least-loaded shard, the router
// spills and re-pins.
func TestFederationSpillover(t *testing.T) {
	f, err := New(Config{
		Shard:      shardTemplate(3, core.FIFOMode),
		Clouds:     uniformClouds(2, 8),
		SpillDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One tenant, one template, submitted back to back with no clock
	// advance: every job lands on the affinity shard until its backlog
	// exceeds the empty rival's by more than 2.
	c := qlib.GHZ(100) // wide enough that one shard runs one at a time
	for i := 0; i < 8; i++ {
		if err := f.Submit(&core.Job{ID: i, Circuit: c, Tenant: 1}); err != nil {
			t.Fatal(err)
		}
	}
	rs := f.RouterStats()
	if rs.Spills == 0 {
		t.Fatalf("no spillover after 8 back-to-back submissions: %+v", rs)
	}
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionClouds: partitioning the paper topology conserves QPUs,
// yields connected shard clouds, and is deterministic.
func TestPartitionClouds(t *testing.T) {
	topo := graph.Random(20, 0.3, 1)
	clouds, err := PartitionClouds(topo, 4, 20, 5, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(clouds) != 4 {
		t.Fatalf("got %d clouds, want 4", len(clouds))
	}
	total := 0
	for i, cl := range clouds {
		if cl.NumQPUs() == 0 {
			t.Fatalf("shard %d cloud empty", i)
		}
		total += cl.NumQPUs()
		if !cl.CapacityGraph().Connected() {
			t.Fatalf("shard %d cloud disconnected", i)
		}
	}
	if total != 20 {
		t.Fatalf("partition lost QPUs: %d of 20", total)
	}
	again, err := PartitionClouds(topo, 4, 20, 5, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clouds {
		if clouds[i].Signature() != again[i].Signature() {
			t.Fatalf("partition not deterministic at shard %d", i)
		}
	}
}

// TestShardSeedDerivation: shard 0 keeps the base seed (the
// single-shard equivalence hinge), other shards decorrelate.
func TestShardSeedDerivation(t *testing.T) {
	if got := ShardSeed(42, 0); got != 42 {
		t.Fatalf("ShardSeed(42, 0) = %d, want 42", got)
	}
	seen := map[int64]bool{42: true}
	for i := 1; i < 16; i++ {
		s := ShardSeed(42, i)
		if seen[s] {
			t.Fatalf("shard %d seed collides: %d", i, s)
		}
		seen[s] = true
	}
}

package fed

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/circuit"
	"cloudqc/internal/core"
)

// Routing selects the federation's admission-routing discipline.
type Routing int

const (
	// RouteAffinity (the default) routes each job to the shard that
	// last served its (tenant, circuit fingerprint) pair — plan-cache
	// locality: that shard's cache already holds the template's compile
	// artifacts — spilling to the least-loaded shard when the affinity
	// shard's backlog runs SpillDepth or more jobs deeper. Unseen
	// pairs start on the least-loaded shard.
	RouteAffinity Routing = iota
	// RouteRandom routes uniformly at random (seeded, deterministic) —
	// the ablation arm that quantifies what affinity routing buys.
	RouteRandom
)

// String returns the routing's CLI/wire name.
func (r Routing) String() string {
	switch r {
	case RouteAffinity:
		return "affinity"
	case RouteRandom:
		return "random"
	default:
		return fmt.Sprintf("routing(%d)", int(r))
	}
}

// ParseRouting maps a CLI routing name to its discipline.
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "", "affinity":
		return RouteAffinity, nil
	case "random":
		return RouteRandom, nil
	default:
		return 0, fmt.Errorf("fed: unknown routing %q (want affinity or random)", s)
	}
}

// RouterStats are the admission router's cumulative decision counters,
// surfaced by the service layer on GET /v1/stats.
type RouterStats struct {
	// AffinityHits counts jobs routed to their remembered (tenant,
	// fingerprint) shard.
	AffinityHits int64 `json:"affinity_hits"`
	// Spills counts affinity decisions overridden by load: the
	// remembered shard's backlog exceeded the least-loaded shard's by
	// the spill depth or more, so the job moved (and the affinity
	// re-pinned to the new shard).
	Spills int64 `json:"spills"`
	// Cold counts first-sight (tenant, fingerprint) pairs, routed to
	// the least-loaded shard.
	Cold int64 `json:"cold"`
	// Random counts random-routing decisions (the ablation arm).
	Random int64 `json:"random"`
}

// affinityKey pins a tenant's circuit template to a shard.
type affinityKey struct {
	tenant int
	fp     circuit.Fingerprint
}

// router is the federation's global admission router.
type router struct {
	shards  []*core.Shard
	routing Routing
	// spill is the resolved backlog slack (-1 disables spillover).
	spill    int
	rng      *rand.Rand
	affinity map[affinityKey]int
	stats    RouterStats
	// depths is per-route scratch for the shards' backlog signals.
	depths []int
	// caps holds each shard's total computing capacity: shard clouds
	// may differ in size (the k-way partitioner balances vertex counts,
	// not exactly), so load comparisons normalize backlog by capacity —
	// a 4-QPU shard with 3 queued jobs is busier than a 6-QPU shard
	// with 4.
	caps []float64
	// disabled marks shards removed from routing by a shard_drain
	// fault; numDisabled caches the count so the fault-free random arm
	// keeps its exact Intn(n) draw (bit-identical off-path).
	disabled    []bool
	numDisabled int
}

func newRouter(shards []*core.Shard, routing Routing, spillDepth int, seed int64) (*router, error) {
	if routing != RouteAffinity && routing != RouteRandom {
		return nil, fmt.Errorf("fed: unknown routing %d", int(routing))
	}
	spill := spillDepth
	if spill == 0 {
		spill = DefaultSpillDepth
	} else if spill < 0 {
		spill = -1
	}
	caps := make([]float64, len(shards))
	for i, s := range shards {
		caps[i] = float64(s.Controller().TotalComputing())
		if caps[i] <= 0 {
			caps[i] = 1
		}
	}
	return &router{
		shards:   shards,
		routing:  routing,
		spill:    spill,
		rng:      rand.New(rand.NewSource(seed)),
		affinity: make(map[affinityKey]int),
		depths:   make([]int, len(shards)),
		caps:     caps,
		disabled: make([]bool, len(shards)),
	}, nil
}

// disable removes a drained shard from every future routing decision.
func (r *router) disable(shard int) {
	if !r.disabled[shard] {
		r.disabled[shard] = true
		r.numDisabled++
	}
}

// route picks the shard for one job. Deterministic given the
// submission sequence: load signals come from the shards' own state,
// ties break to the lower shard index, and the random arm draws from a
// seeded stream.
func (r *router) route(j *core.Job) int {
	n := len(r.shards)
	if n == 1 {
		return 0
	}
	if r.routing == RouteRandom {
		r.stats.Random++
		if r.numDisabled == 0 {
			return r.rng.Intn(n)
		}
		// Draw over the enabled shards only, walking the seeded stream
		// once per decision exactly as the fault-free arm does.
		k := r.rng.Intn(n - r.numDisabled)
		for i := 0; i < n; i++ {
			if r.disabled[i] {
				continue
			}
			if k == 0 {
				return i
			}
			k--
		}
		panic("fed: router: no enabled shard") // unreachable: drainShard keeps one enabled
	}

	// Load and fit signals. A shard whose whole cloud is smaller than
	// the circuit can only fail the job, so it is never offered one
	// unless no shard fits (then the lowest-index least-loaded shard
	// reports the failure deterministically). Drained shards never fit
	// and carry no load signal.
	width := j.Circuit.NumQubits()
	anyFits := false
	for i, s := range r.shards {
		if r.disabled[i] {
			r.depths[i] = 0
			continue
		}
		sig := s.Signals()
		r.depths[i] = sig.Depth
		if sig.TotalComputing >= width {
			anyFits = true
		}
	}
	fits := func(i int) bool {
		if r.disabled[i] {
			return false
		}
		return !anyFits || r.shards[i].Controller().TotalComputing() >= width
	}
	// Load is capacity-normalized backlog; least is the fitting shard
	// with the smallest load, ties to the lower index.
	load := func(i int) float64 { return float64(r.depths[i]) / r.caps[i] }
	least := -1
	for i := 0; i < n; i++ {
		if !fits(i) {
			continue
		}
		if least < 0 || load(i) < load(least) {
			least = i
		}
	}

	key := affinityKey{tenant: j.Tenant, fp: j.Circuit.Fingerprint()}
	if s, ok := r.affinity[key]; ok && fits(s) {
		// Spill when the affinity shard carries at least `spill` more
		// jobs than it would at the least-loaded shard's (normalized)
		// load; with equal capacities this is depth[s] >= depth[least]
		// + spill.
		if r.spill >= 0 && float64(r.depths[s]) >= load(least)*r.caps[s]+float64(r.spill) {
			r.stats.Spills++
			r.affinity[key] = least
			return least
		}
		r.stats.AffinityHits++
		return s
	}
	r.stats.Cold++
	r.affinity[key] = least
	return least
}

package fed

import (
	"reflect"
	"strings"
	"testing"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fault"
	"cloudqc/internal/qlib"
)

// faultFedPlan schedules all three fault classes across a 4-shard
// federation: an outage on shard 0, another on shard 1, a dead-link
// window on shard 2 (on a real edge of its topology), and a drain of
// shard 3.
func faultFedPlan(clouds []*cloud.Cloud) *fault.Plan {
	e := clouds[2].Topology().Edges()[0]
	return &fault.Plan{
		Recovery:    fault.RecoveryRescue,
		RouteAround: true,
		Events: []fault.Event{
			{Kind: fault.KindQPUOutage, Shard: 0, QPU: 0, From: 100, To: 700},
			{Kind: fault.KindQPUOutage, Shard: 1, QPU: 2, From: 150, To: 750},
			{Kind: fault.KindLinkDegrade, Shard: 2, U: e.U, V: e.V, Scale: 0, From: 50, To: 900},
			{Kind: fault.KindShardDrain, Shard: 3, From: 300},
		},
	}
}

// faultFedRun drives a 16-job 8-tenant stream through a 4-shard
// federation under the plan and returns everything observable.
func faultFedRun(t *testing.T) ([]*core.JobResult, fault.Stats, core.RunStats, RouterStats) {
	t.Helper()
	clouds := uniformClouds(4, 8)
	f, err := New(Config{
		Shard:  shardTemplate(5, core.WFQMode),
		Clouds: clouds,
		Faults: faultFedPlan(clouds),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 tenants x 2 jobs, all at t=0: distinct tenants cold-route across
	// all four shards and a GHZ-100 (~220 CX units, one at a time per
	// shard cloud) backlog keeps every shard resident when its fault
	// lands.
	for i := 0; i < 16; i++ {
		j := &core.Job{ID: i, Circuit: qlib.GHZ(100), Tenant: i % 8, Priority: 1 + i%3}
		if err := f.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return res, f.FaultStats(), f.RunStats(), f.RouterStats()
}

// TestFederationFaultDeterminism is the faults-on acceptance run: a
// 4-shard federation absorbing a QPU outage, a dead-link window, and a
// shard drain in one stream replays bit-identically, and every fault
// class verifiably fired.
func TestFederationFaultDeterminism(t *testing.T) {
	res1, fs1, rs1, rt1 := faultFedRun(t)
	res2, fs2, rs2, rt2 := faultFedRun(t)

	if fs1.QPUOutages != 2 || fs1.LinkDegrades != 1 || fs1.ShardDrains != 1 {
		t.Fatalf("faults did not all fire: %+v", fs1)
	}
	if fs1.RescuedDrain == 0 {
		t.Fatalf("drained shard held no work at t=2000: %+v", fs1)
	}
	if fs1 != fs2 {
		t.Fatalf("fault stats diverged:\nrun1 %+v\nrun2 %+v", fs1, fs2)
	}
	if rs1 != rs2 || rt1 != rt2 {
		t.Fatalf("run/router stats diverged: %+v/%+v vs %+v/%+v", rs1, rt1, rs2, rt2)
	}
	if len(res1) != 16 || len(res2) != 16 {
		t.Fatalf("result counts %d / %d, want 16", len(res1), len(res2))
	}
	for i := range res1 {
		a, b := res1[i], res2[i]
		if a.Job.ID != b.Job.ID || a.Failed != b.Failed || a.PlacedAt != b.PlacedAt ||
			a.Finished != b.Finished || a.JCT != b.JCT || a.WaitTime != b.WaitTime ||
			a.RemoteGates != b.RemoteGates {
			t.Fatalf("job %d diverged:\nrun1 %+v\nrun2 %+v", a.Job.ID, *a, *b)
		}
		// Compare the assignment, not the whole Placement: the Circuit
		// pointer inside carries lazily-memoized caches whose population
		// timing is not an observable.
		var qa, qb []int
		if a.Placement != nil {
			qa = a.Placement.QubitToQPU
		}
		if b.Placement != nil {
			qb = b.Placement.QubitToQPU
		}
		if !reflect.DeepEqual(qa, qb) {
			t.Fatalf("job %d placement diverged:\nrun1 %v\nrun2 %v", a.Job.ID, qa, qb)
		}
	}
	// Rescue recovery: faults never lose a job — every one of the 16
	// settles, and nothing failed except by retry exhaustion (counted).
	failed := int64(0)
	for _, r := range res1 {
		if r.Failed {
			failed++
		}
	}
	if failed != fs1.RetryExhausted+fs1.FailedOutage {
		t.Fatalf("%d failures vs stats %+v: a rescue leaked a job", failed, fs1)
	}
}

// TestFederationShardDrainRehome pins the drain contract: at the drain
// instant the doomed shard's residents all checkpoint and rehome under
// their original ids, the shard ends empty and leaves the routing set,
// and every job still settles.
func TestFederationShardDrainRehome(t *testing.T) {
	f, err := New(Config{
		Shard:  shardTemplate(9, core.FIFOMode),
		Clouds: uniformClouds(2, 8),
		Faults: &fault.Plan{Events: []fault.Event{{Kind: fault.KindShardDrain, Shard: 1, From: 100}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Six single-tenant GHZ-100 jobs (~220 CX units each, one at a time
	// per shard), so shard 1 holds one running and two queued jobs when
	// the drain lands at t=100.
	for i := 0; i < 6; i++ {
		if err := f.Submit(&core.Job{ID: i, Circuit: qlib.GHZ(100), Tenant: i}); err != nil {
			t.Fatal(err)
		}
	}
	onShard1 := map[int]bool{}
	for i := 0; i < 6; i++ {
		if s, ok := f.ShardOf(i); ok && s == 1 {
			onShard1[i] = true
		}
	}
	if len(onShard1) == 0 {
		t.Fatal("setup: no job routed to shard 1")
	}

	if err := f.StepUntil(1000); err != nil {
		t.Fatal(err)
	}
	fs := f.FaultStats()
	if fs.ShardDrains != 1 {
		t.Fatalf("drain never fired: %+v", fs)
	}
	if fs.RescuedDrain != int64(len(onShard1)) {
		t.Fatalf("rescued %d jobs off shard 1, want %d", fs.RescuedDrain, len(onShard1))
	}
	// The drained shard ends with zero resident jobs and a halted clock.
	snap := f.ShardSnapshots()[1]
	if snap.Pending+snap.Queued+snap.Active != 0 {
		t.Fatalf("drained shard still resident: %+v", snap)
	}
	// Every evacuated job rehomed to shard 0 under its original id.
	for id := range onShard1 {
		s, ok := f.ShardOf(id)
		if !ok || s != 0 {
			t.Fatalf("job %d on shard %d (ok=%v) after drain, want 0", id, s, ok)
		}
	}
	// The drained shard is out of the routing set: new submissions and
	// new faults both land elsewhere or are refused.
	late := &core.Job{ID: 100, Circuit: qlib.GHZ(20), Tenant: 9, Arrival: 1000}
	if err := f.Submit(late); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.ShardOf(100); s != 0 {
		t.Fatalf("post-drain submission routed to drained shard %d", s)
	}
	if err := f.Inject(fault.Event{Kind: fault.KindQPUOutage, Shard: 1, QPU: 0, From: 1100, To: 1200}); err == nil {
		t.Fatal("fault injection into a drained shard accepted")
	}

	res, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("got %d results, want 7", len(res))
	}
	for _, r := range res {
		if r.Failed {
			t.Fatalf("job %d failed across the drain: %+v", r.Job.ID, *r)
		}
	}
}

// TestFederationDrainLastShardRefused: the drain that would take down
// the final enabled shard fails loudly instead of stranding the jobs.
func TestFederationDrainLastShardRefused(t *testing.T) {
	f, err := New(Config{
		Shard:  shardTemplate(1, core.FIFOMode),
		Clouds: uniformClouds(2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Inject(fault.Event{Kind: fault.KindShardDrain, Shard: 0, From: 10}); err != nil {
		t.Fatal(err)
	}
	if err := f.Inject(fault.Event{Kind: fault.KindShardDrain, Shard: 1, From: 20}); err != nil {
		t.Fatal(err)
	}
	err = f.StepUntil(100)
	if err == nil || !strings.Contains(err.Error(), "last enabled shard") {
		t.Fatalf("second drain err = %v, want last-enabled-shard refusal", err)
	}
}

// TestFederationInjectValidation: live injection rejects malformed
// events, out-of-range shards, and drained federations; in-range QPU
// faults forward to the target shard.
func TestFederationInjectValidation(t *testing.T) {
	f, err := New(Config{
		Shard:  shardTemplate(1, core.FIFOMode),
		Clouds: uniformClouds(2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []fault.Event{
		{Kind: "bogus", From: 0},
		{Kind: fault.KindQPUOutage, Shard: 5, QPU: 0, From: 0, To: 10},
		{Kind: fault.KindQPUOutage, Shard: 0, QPU: 99, From: 0, To: 10},
	} {
		if err := f.Inject(e); err == nil {
			t.Fatalf("bad injection accepted: %+v", e)
		}
	}
	if err := f.Inject(fault.Event{Kind: fault.KindQPUOutage, Shard: 1, QPU: 0, From: 10, To: 20}); err != nil {
		t.Fatal(err)
	}
	if err := f.StepUntil(50); err != nil {
		t.Fatal(err)
	}
	if fs := f.FaultStats(); fs.QPUOutages != 1 {
		t.Fatalf("forwarded outage never fired: %+v", fs)
	}
	if _, err := f.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := f.Inject(fault.Event{Kind: fault.KindShardDrain, Shard: 0, From: 0}); err == nil {
		t.Fatal("injection after federation drain accepted")
	}
}

// TestFederationFaultConfigValidation: fed.New rejects per-shard plans
// on the template and events addressing shards beyond the fleet.
func TestFederationFaultConfigValidation(t *testing.T) {
	tpl := shardTemplate(1, core.FIFOMode)
	tpl.Faults = &fault.Plan{}
	if _, err := New(Config{Shard: tpl, Clouds: uniformClouds(2, 8)}); err == nil {
		t.Fatal("Shard.Faults accepted")
	}
	if _, err := New(Config{
		Shard:  shardTemplate(1, core.FIFOMode),
		Clouds: uniformClouds(2, 8),
		Faults: &fault.Plan{Events: []fault.Event{{Kind: fault.KindShardDrain, Shard: 7, From: 0}}},
	}); err == nil {
		t.Fatal("out-of-fleet fault event accepted")
	}
}

package fed

import (
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/graph"
	"cloudqc/internal/qlib"
)

// TestFederationCrossShardResumeKeepsID: a job preempted on shard 0 is
// rehomed by the affinity router to shard 1 and resumes there under its
// original ID, visible through ShardOf, Status, and the global Results
// order. The shards are sized asymmetrically so the scenario is forced:
// the 127-qubit trigger only fits shard 0, and at rehome time shard 0
// is the busier shard, so the spillover rule moves the 39-qubit victim
// to idle shard 1.
func TestFederationCrossShardResumeKeepsID(t *testing.T) {
	cfg := shardTemplate(7, core.EDFMode)
	cfg.Preempt = core.PreemptRescue
	f, err := New(Config{
		Shard: cfg,
		Clouds: []*cloud.Cloud{
			cloud.NewRandom(8, 0.3, 20, 5, 1), // 160 computing qubits
			cloud.New(graph.Path(3), 20, 5),   // 60: never fits the trigger
		},
		SpillDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	victim := &core.Job{ID: 0, Circuit: mustCircuit(t, "qugan_n39"), Tenant: 0}
	if err := f.Submit(victim); err != nil {
		t.Fatal(err)
	}
	if s, _ := f.ShardOf(0); s != 0 {
		t.Fatalf("victim started on shard %d, want 0", s)
	}
	if err := f.StepUntil(10); err != nil {
		t.Fatal(err)
	}
	// 39 + 127 > 160: the trigger queues on shard 0 (the only shard that
	// fits it) until rescue preempts the victim.
	trigger := &core.Job{ID: 1, Circuit: qlib.GHZ(127), Tenant: 1, Arrival: 10, Deadline: 1e9}
	if err := f.Submit(trigger); err != nil {
		t.Fatal(err)
	}

	// Step in small increments: rehoming happens at step boundaries, and
	// the router only spills the resume while shard 0 is still busy
	// running the trigger.
	moved := false
	for step := 10.0; step <= 2e5 && !moved; step += 50 {
		if err := f.StepUntil(step); err != nil {
			t.Fatal(err)
		}
		if s, ok := f.ShardOf(0); ok && s == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("victim never rehomed to shard 1 (preempt stats %+v)", f.PreemptStats())
	}
	if st := f.Status(0); st == core.StatusUnknown || st == core.StatusFailed {
		t.Fatalf("rehomed job status = %v mid-resume", st)
	}

	results, err := f.Drain()
	if err != nil {
		t.Fatal(err)
	}
	ps := f.PreemptStats()
	if ps.Preemptions == 0 || ps.Resumes != ps.Preemptions {
		t.Fatalf("federated preempt stats %+v", ps)
	}
	// Results stay in global submission order under the original IDs.
	if len(results) != 2 || results[0].Job.ID != 0 || results[1].Job.ID != 1 {
		t.Fatalf("results lost submission order or ids: %+v", results)
	}
	for _, r := range results {
		if r.Failed {
			t.Fatalf("job %d failed: %+v", r.Job.ID, *r)
		}
	}
	// The cross-shard resume keeps admission-wait bookkeeping: placed at
	// t=0 on shard 0, so wait stays 0 even though execution moved.
	if results[0].WaitTime != 0 || results[0].PlacedAt != 0 {
		t.Fatalf("rehomed victim PlacedAt=%v WaitTime=%v, want 0/0",
			results[0].PlacedAt, results[0].WaitTime)
	}
	// Outcomes carries the same identity through the metrics layer.
	outs := core.Outcomes(results)
	if len(outs) != 2 || outs[0].Tenant != 0 || outs[1].Tenant != 1 {
		t.Fatalf("outcomes lost tenant identity: %+v", outs)
	}
}

func mustCircuit(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	c, err := qlib.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

package fed

import (
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/graph"
	"cloudqc/internal/partition"
)

// PartitionClouds splits one QPU topology into n shard clouds with the
// multilevel k-way partitioner (min edge cut, balanced part sizes):
// each part's induced subgraph becomes its own cloud with uniform
// per-QPU capacities. A part whose induced subgraph comes out
// disconnected (the partitioner minimizes cut weight, not
// connectivity) is bridged with unit-weight links between its
// components, so every shard cloud satisfies the controller's
// connectivity expectations.
//
// The same inputs always produce the same clouds (the partitioner is
// seeded). Partitioning the paper's 20-QPU cloud in 4 gives shards of
// ~5 QPUs each — total capacity is conserved, per-shard capacity is
// not, so wide circuits may only fit on some (or no) shards; the
// admission router checks fit before offering a shard a job.
func PartitionClouds(topo *graph.Graph, n, computing, comm int, imbalance float64, seed int64) ([]*cloud.Cloud, error) {
	res, err := partition.KWay(topo, n, imbalance, seed)
	if err != nil {
		return nil, fmt.Errorf("fed: partitioning topology: %w", err)
	}
	parts := make([][]int, n)
	for v, p := range res.Parts {
		parts[p] = append(parts[p], v)
	}
	clouds := make([]*cloud.Cloud, n)
	for p, verts := range parts {
		if len(verts) == 0 {
			return nil, fmt.Errorf("fed: partition left shard %d empty (topology has %d QPUs for %d shards)",
				p, topo.N(), n)
		}
		sub, _ := topo.Subgraph(verts)
		if !sub.Connected() {
			bridge(sub)
		}
		clouds[p] = cloud.New(sub, computing, comm)
	}
	return clouds, nil
}

// bridge connects a disconnected subgraph by chaining each component's
// lowest-index vertex to the next component's with a unit-weight edge
// — the minimal, deterministic repair.
func bridge(g *graph.Graph) {
	comps := g.Components()
	for i := 1; i < len(comps); i++ {
		g.AddEdge(comps[i-1][0], comps[i][0], 1)
	}
}

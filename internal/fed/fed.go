// Package fed is CloudQC's federated multi-cloud controller tier: a
// Federation owns N controller shards — each a self-contained
// core.Shard over its own cloud (a separate provider region, or a
// partition of one topology via PartitionClouds) — behind a global
// admission router.
//
// The router places each job by tenant+fingerprint affinity: repeated
// templates from one tenant land on the shard whose plan cache already
// holds their compile artifacts, turning cold placements into ~µs
// cache hits, with load-based spillover to the least-loaded shard when
// the affinity shard's backlog runs too deep (see router.go). Weighted
// fairness extends across shards by handing every shard the same
// core.WFQClock: a tenant's placements anywhere raise its WFQ start
// tags everywhere, so cross-shard weighted shares hold federation-wide.
//
// The differential guarantee mirrors the repo's discipline: a 1-shard
// Federation is bit-identical to a bare LiveController — same per-job
// results, same round/event counts, same recorder series — because a
// single shard keeps the base seed, a fresh WFQ clock, and a router
// that degenerates to the identity (see TestFederationSingleShardMatchesLive).
//
// A Federation is not safe for concurrent use; the service layer
// serializes access, exactly as it does for a lone LiveController.
package fed

import (
	"errors"
	"fmt"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/fault"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/trace"
)

// Config assembles a Federation.
type Config struct {
	// Shard is the per-shard controller template: mode, policy, model,
	// weights, plan-cache size, and the base seed. Its Cloud, Recorder,
	// and SharedWFQ fields must be nil — clouds and recorders are
	// per-shard (below), and the federation owns the shared WFQ clock.
	Shard core.Config
	// Clouds are the shard clouds, one per shard (a cloud.Cloud carries
	// mutable reservations, so shards can never share one instance).
	// len(Clouds) is the shard count.
	Clouds []*cloud.Cloud
	// Recorders, when non-nil, gives shard i the recorder Recorders[i];
	// its length must equal len(Clouds). Entries may be nil.
	Recorders []*metrics.Recorder
	// NewPlacer, when non-nil, builds shard i's placer; otherwise every
	// shard shares Shard.Placer (fine for the deterministic CloudQC
	// placers, which are stateless — stateful placers like simulated
	// annealing need a factory so shards stay isolated).
	NewPlacer func(shard int) place.Placer
	// Routing selects the admission router (default RouteAffinity; see
	// router.go). RouteRandom is the ablation arm.
	Routing Routing
	// SpillDepth is the backlog slack the affinity router tolerates
	// before spilling to the least-loaded shard: spill when the
	// affinity shard's depth exceeds the least-loaded depth by
	// SpillDepth or more. 1 keeps affinity only between equally-loaded
	// shards (the fairness-leaning setting); 0 means DefaultSpillDepth;
	// negative disables spillover entirely.
	SpillDepth int
	// Trace, when non-nil, records every shard's execution spans into
	// one shared recorder — traces follow a job across cross-shard
	// rehomes, and the federation stamps each rehome's routing decision
	// onto the trace. Shard.Trace must be nil (the federation installs
	// this recorder on every shard).
	Trace *trace.Recorder
	// Faults, when non-nil, is the federation-wide fault plan: each
	// shard's QPU and link events are split off with ForShard (nil
	// slices keep that shard on the fault-free path), and shard_drain
	// events are intercepted here — the shard is evacuated and removed
	// from routing at the drain instant. Shard.Faults must be nil.
	Faults *fault.Plan
}

// DefaultSpillDepth is the affinity router's backlog-slack default: an
// affinity shard may run up to this many jobs minus one deeper than
// the least-loaded shard before the router gives up plan-cache
// locality for load.
const DefaultSpillDepth = 4

// Federation owns N controller shards behind one admission router and
// aggregates their results, statistics, and plan-cache counters.
type Federation struct {
	shards []*core.Shard
	wfq    *core.WFQClock
	router *router
	// jobs preserves global submission order for Results; shardOf maps
	// every accepted job ID to its shard.
	jobs    []*core.Job
	shardOf map[int]int
	// seq is the per-shard auto-ID counter: auto-assigned IDs are
	// shard-tagged (id = seq*N + shard) so every shard owns a disjoint
	// ID space and id mod N recovers the shard.
	seq     []int
	drained bool
	// epr is the shared model's round length (validated identical
	// across shards by construction — one template).
	epr float64
	// trace is the shared span recorder every shard writes into (nil
	// when tracing is off).
	trace *trace.Recorder
	// drains is the pending shard_drain schedule, ordered by (From,
	// Shard); StepUntil intercepts each before stepping past its
	// instant. disabled marks drained shards: never stepped, never
	// routed to, results still readable. fstats counts federation-tier
	// fault activity (drains and drain rescues; shard counters live on
	// the shards).
	drains   []fault.Event
	disabled []bool
	fstats   fault.Stats
}

// New validates the configuration and builds the federation: shard i
// runs the template configuration over Clouds[i] with seed
// ShardSeed(template.Seed, i) — shard 0 keeps the base seed, so a
// 1-shard federation is bit-identical to a bare controller — and, in
// WFQ mode, bills tenants into one shared virtual-clock space.
func New(cfg Config) (*Federation, error) {
	n := len(cfg.Clouds)
	if n == 0 {
		return nil, errors.New("fed: Config.Clouds is empty")
	}
	if cfg.Shard.Cloud != nil {
		return nil, errors.New("fed: Config.Shard.Cloud must be nil (clouds are per-shard)")
	}
	if cfg.Shard.Recorder != nil {
		return nil, errors.New("fed: Config.Shard.Recorder must be nil (use Config.Recorders)")
	}
	if cfg.Shard.SharedWFQ != nil {
		return nil, errors.New("fed: Config.Shard.SharedWFQ must be nil (the federation owns the shared clock)")
	}
	if cfg.Shard.Trace != nil {
		return nil, errors.New("fed: Config.Shard.Trace must be nil (use Config.Trace; the recorder is shared)")
	}
	if cfg.Recorders != nil && len(cfg.Recorders) != n {
		return nil, fmt.Errorf("fed: %d recorders for %d shards", len(cfg.Recorders), n)
	}
	if cfg.Shard.Faults != nil {
		return nil, errors.New("fed: Config.Shard.Faults must be nil (use Config.Faults; the federation splits plans per shard)")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		for i, e := range cfg.Faults.Events {
			if e.Shard >= n {
				return nil, fmt.Errorf("fed: fault event %d targets shard %d, federation has %d", i, e.Shard, n)
			}
		}
	}
	f := &Federation{
		wfq:      core.NewWFQClock(),
		shardOf:  make(map[int]int),
		seq:      make([]int, n),
		trace:    cfg.Trace,
		drains:   cfg.Faults.Drains(),
		disabled: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		if cfg.Clouds[i] == nil {
			return nil, fmt.Errorf("fed: Clouds[%d] is nil", i)
		}
		scfg := cfg.Shard
		scfg.Cloud = cfg.Clouds[i]
		scfg.Seed = ShardSeed(cfg.Shard.Seed, i)
		scfg.SharedWFQ = f.wfq
		// Multi-shard federations take custody of preempted jobs so the
		// router can re-place a resume on any shard; a single shard
		// requeues locally, keeping the 1-shard ≡ bare-controller
		// differential intact.
		scfg.ExportPreempted = n > 1
		if cfg.Recorders != nil {
			scfg.Recorder = cfg.Recorders[i]
		}
		scfg.Trace = cfg.Trace
		if cfg.NewPlacer != nil {
			scfg.Placer = cfg.NewPlacer(i)
		}
		scfg.Faults = cfg.Faults.ForShard(i)
		sh, err := core.NewShard(i, scfg)
		if err != nil {
			return nil, err
		}
		f.shards = append(f.shards, sh)
	}
	f.epr = f.shards[0].Controller().EPRAttempt()
	r, err := newRouter(f.shards, cfg.Routing, cfg.SpillDepth, cfg.Shard.Seed)
	if err != nil {
		return nil, err
	}
	f.router = r
	return f, nil
}

// Wrap adopts an existing live controller as a 1-shard federation
// without disturbing its state — how the service layer lifts a
// single-controller configuration into the federated backend. The
// controller keeps its own (private) WFQ clock.
func Wrap(lc *core.LiveController) *Federation {
	shards := []*core.Shard{core.WrapShard(0, lc)}
	r, _ := newRouter(shards, RouteAffinity, 0, 0)
	return &Federation{
		shards:   shards,
		router:   r,
		shardOf:  make(map[int]int),
		seq:      make([]int, 1),
		epr:      lc.EPRAttempt(),
		trace:    lc.Trace(),
		disabled: make([]bool, 1),
	}
}

// ShardSeed derives shard i's RNG seed from the federation's base seed
// with the SplitMix64-style finalizer the repo's deterministic
// parallelism uses throughout (exp task seeds, workload tenant seeds).
// Shard 0 keeps the base seed so a 1-shard federation reproduces a
// bare controller bit-identically.
func ShardSeed(seed int64, shard int) int64 {
	if shard == 0 {
		return seed
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NumShards returns the shard count.
func (f *Federation) NumShards() int { return len(f.shards) }

// Shard returns shard i.
func (f *Federation) Shard(i int) *core.Shard { return f.shards[i] }

// Now returns the federation's virtual time: the furthest shard clock
// (shards advance in lockstep through StepUntil, so they differ only
// in how far each one's last event landed before the common target).
func (f *Federation) Now() float64 {
	now := f.shards[0].Controller().Now()
	for _, s := range f.shards[1:] {
		if t := s.Controller().Now(); t > now {
			now = t
		}
	}
	return now
}

// EPRAttempt returns the shared model's EPR-attempt round length in CX
// units (the service pacer's granularity).
func (f *Federation) EPRAttempt() float64 { return f.epr }

// Submit routes the job to a shard and injects it there. A negative
// Job.ID asks the federation to assign one: auto IDs are shard-tagged
// (id ≡ shard mod N) so every shard owns a disjoint ID space.
// Non-negative IDs are the caller's and are checked for federation-wide
// uniqueness. Returns core.ErrDrained (wrapped) after Drain.
func (f *Federation) Submit(j *core.Job) error {
	if f.drained {
		return fmt.Errorf("fed: %w", core.ErrDrained)
	}
	if j.Circuit == nil {
		return fmt.Errorf("fed: job %d has no circuit", j.ID)
	}
	if j.ID >= 0 {
		if _, dup := f.shardOf[j.ID]; dup {
			return fmt.Errorf("fed: duplicate job ID %d", j.ID)
		}
	}
	s := f.router.route(j)
	if j.ID < 0 {
		j.ID = f.nextID(s)
	}
	if err := f.shards[s].Controller().Submit(j); err != nil {
		return fmt.Errorf("fed: shard %d: %w", s, err)
	}
	f.jobs = append(f.jobs, j)
	f.shardOf[j.ID] = s
	return nil
}

// nextID returns the shard's next free shard-tagged ID, skipping any
// the caller already claimed explicitly.
func (f *Federation) nextID(shard int) int {
	n := len(f.shards)
	for {
		id := f.seq[shard]*n + shard
		f.seq[shard]++
		if _, taken := f.shardOf[id]; !taken {
			return id
		}
	}
}

// StepUntil advances every shard's virtual clock to t, in shard order
// (deterministic: shard i's events at a given instant always run
// before shard i+1's). Pending shard drains whose instant the step
// would pass are intercepted in schedule order: the shards step to the
// drain instant, the doomed shard is evacuated and rehomed, and the
// step continues — so a drain lands at the same virtual time however
// the caller slices its steps. Returns the first shard error, which is
// sticky on that shard.
func (f *Federation) StepUntil(t float64) error {
	if f.drained {
		return fmt.Errorf("fed: %w", core.ErrDrained)
	}
	for len(f.drains) > 0 && f.drains[0].From < t {
		d := f.drains[0]
		if err := f.stepShards(d.From); err != nil {
			return err
		}
		f.drains = f.drains[1:]
		if err := f.drainShard(d.Shard, d.From); err != nil {
			return err
		}
	}
	return f.stepShards(t)
}

// stepShards advances every enabled shard to t and rehomes the step's
// preemption exports.
func (f *Federation) stepShards(t float64) error {
	for i, s := range f.shards {
		if f.disabled[i] {
			continue
		}
		if err := s.Controller().StepUntil(t); err != nil {
			return fmt.Errorf("fed: shard %d: %w", i, err)
		}
	}
	return f.rehome()
}

// drainShard is the shard_drain fault: the shard is evacuated — every
// unsettled job checkpoints off it — and removed from routing, then
// each evacuated job rehomes through the admission router under its
// original ID (resumes carry their checkpoints; queued and pending
// jobs re-enter admission as they were). Settled results stay readable
// on the drained shard. The last enabled shard refuses to drain.
func (f *Federation) drainShard(shard int, at float64) error {
	if f.disabled[shard] {
		return fmt.Errorf("fed: shard %d is already drained", shard)
	}
	enabled := 0
	for i := range f.shards {
		if !f.disabled[i] {
			enabled++
		}
	}
	if enabled <= 1 {
		return fmt.Errorf("fed: refusing to drain shard %d: it is the last enabled shard", shard)
	}
	f.fstats.ShardDrains++
	resumes, waiting := f.shards[shard].Controller().Evacuate()
	f.disabled[shard] = true
	f.router.disable(shard)
	submit := func(j *core.Job, run func(tgt int) error) error {
		before := f.router.stats
		tgt := f.router.route(j)
		if f.trace != nil {
			if tr := f.trace.Get(j.ID); tr != nil {
				tr.Rehome(at, shard, tgt, rehomeKind(before, f.router.stats))
			}
		}
		if err := run(tgt); err != nil {
			return fmt.Errorf("fed: rehoming job %d off drained shard %d: %w", j.ID, shard, err)
		}
		f.shardOf[j.ID] = tgt
		f.fstats.RescuedDrain++
		return nil
	}
	for _, pj := range resumes {
		pj := pj
		if err := submit(pj.Job, func(tgt int) error { return f.shards[tgt].Controller().SubmitResume(pj) }); err != nil {
			return err
		}
	}
	for _, j := range waiting {
		j := j
		if err := submit(j, func(tgt int) error { return f.shards[tgt].Controller().Submit(j) }); err != nil {
			return err
		}
	}
	return nil
}

// Inject schedules one fault event live — the admin POST /v1/faults
// path. Shard drains queue on the federation's own schedule (clamped
// to now); QPU and link faults forward to the target shard's
// controller. Replay determinism is the caller's concern: the service
// layer logs the injection in the WAL before calling.
func (f *Federation) Inject(e fault.Event) error {
	if f.drained {
		return fmt.Errorf("fed: %w", core.ErrDrained)
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Shard >= len(f.shards) {
		return fmt.Errorf("fed: fault targets shard %d, federation has %d", e.Shard, len(f.shards))
	}
	if f.disabled[e.Shard] {
		return fmt.Errorf("fed: shard %d is drained", e.Shard)
	}
	if e.Kind == fault.KindShardDrain {
		if now := f.Now(); e.From < now {
			e.From = now
		}
		i := len(f.drains)
		for i > 0 && (f.drains[i-1].From > e.From ||
			(f.drains[i-1].From == e.From && f.drains[i-1].Shard > e.Shard)) {
			i--
		}
		f.drains = append(f.drains, fault.Event{})
		copy(f.drains[i+1:], f.drains[i:])
		f.drains[i] = e
		return nil
	}
	if err := f.shards[e.Shard].Controller().InjectFault(e); err != nil {
		return fmt.Errorf("fed: shard %d: %w", e.Shard, err)
	}
	return nil
}

// FaultStats merges the federation's own fault counters (shard drains,
// drain rescues) with every shard's injector counters.
func (f *Federation) FaultStats() fault.Stats {
	s := f.fstats
	for _, sh := range f.shards {
		s.Add(sh.Controller().FaultStats())
	}
	return s
}

// rehome re-routes jobs the shards preempted and exported during the
// last step: each goes back through the admission router — whose
// affinity table re-pins the job's tenant+fingerprint to wherever the
// resume lands, so the pin keeps naming the shard holding the warm
// plan-cache entry — and re-enters that shard under its original ID.
// The resume's arrival event fires on the target shard's next step.
func (f *Federation) rehome() error {
	for src, s := range f.shards {
		for _, pj := range s.Controller().TakePreempted() {
			before := f.router.stats
			tgt := f.router.route(pj.Job)
			if f.trace != nil {
				if tr := f.trace.Get(pj.Job.ID); tr != nil {
					// The rehome happened at the preemption instant — the
					// open suspension's From — and the decision kind falls
					// out of which router counter the route ticked.
					at := 0.0
					if n := len(tr.Suspends); n > 0 {
						at = tr.Suspends[n-1].From
					}
					tr.Rehome(at, src, tgt, rehomeKind(before, f.router.stats))
				}
			}
			if err := f.shards[tgt].Controller().SubmitResume(pj); err != nil {
				return fmt.Errorf("fed: resuming job %d on shard %d: %w", pj.Job.ID, tgt, err)
			}
			f.shardOf[pj.Job.ID] = tgt
		}
	}
	return nil
}

// rehomeKind names the router decision a route() call made, by diffing
// its cumulative counters around the call. "direct" covers the 1-shard
// degenerate route, which ticks nothing.
func rehomeKind(before, after RouterStats) string {
	switch {
	case after.AffinityHits > before.AffinityHits:
		return "affinity"
	case after.Spills > before.Spills:
		return "spill"
	case after.Cold > before.Cold:
		return "cold"
	case after.Random > before.Random:
		return "random"
	default:
		return "direct"
	}
}

// Drain runs every shard's backlog to completion and retires the
// federation: further Submit/StepUntil/Drain calls fail with
// core.ErrDrained. Every shard is drained even if one fails (a
// poisoned shard must not leak the others' reservations); the first
// error wins. Results are returned in global submission order.
func (f *Federation) Drain() ([]*core.JobResult, error) {
	if f.drained {
		return nil, fmt.Errorf("fed: %w", core.ErrDrained)
	}
	var firstErr error
	// Scheduled shard drains not yet reached still fire: step to each
	// drain instant and evacuate, so a plan's final drain lands even if
	// the caller never stepped past it.
	for len(f.drains) > 0 {
		d := f.drains[0]
		if err := f.stepShards(d.From); err != nil {
			firstErr = err
			break
		}
		f.drains = f.drains[1:]
		if err := f.drainShard(d.Shard, d.From); err != nil {
			firstErr = err
			break
		}
	}
	f.drained = true
	// Jobs preempted on the final step are still awaiting re-routing;
	// hand them to their shards before the backlog runs dry. (During the
	// drain itself shards requeue preemptions locally rather than
	// exporting, so nothing new accumulates below.)
	if err := f.rehome(); err != nil && firstErr == nil {
		firstErr = err
	}
	for i, s := range f.shards {
		if f.disabled[i] {
			// Already evacuated by a shard_drain fault; its controller is
			// halted and holds only settled results.
			continue
		}
		if _, err := s.Controller().Drain(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fed: shard %d: %w", i, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return f.Results(), nil
}

// ShardOf reports which shard owns an accepted job ID.
func (f *Federation) ShardOf(id int) (int, bool) {
	s, ok := f.shardOf[id]
	return s, ok
}

// Status reports a job's lifecycle state (StatusUnknown for IDs never
// accepted by Submit).
func (f *Federation) Status(id int) core.JobStatus {
	s, ok := f.shardOf[id]
	if !ok {
		return core.StatusUnknown
	}
	return f.shards[s].Controller().Status(id)
}

// Result returns a job's result slot and status (see
// LiveController.Result).
func (f *Federation) Result(id int) (*core.JobResult, core.JobStatus) {
	s, ok := f.shardOf[id]
	if !ok {
		return nil, core.StatusUnknown
	}
	return f.shards[s].Controller().Result(id)
}

// Results returns every accepted job's result slot in global
// submission order; entries for unsettled jobs are partial.
func (f *Federation) Results() []*core.JobResult {
	out := make([]*core.JobResult, 0, len(f.jobs))
	for _, j := range f.jobs {
		r, _ := f.Result(j.ID)
		out = append(out, r)
	}
	return out
}

// SettledResults returns completed and failed jobs' results in global
// submission order.
func (f *Federation) SettledResults() []*core.JobResult {
	out := make([]*core.JobResult, 0, len(f.jobs))
	for _, j := range f.jobs {
		if f.Status(j.ID).Settled() {
			r, _ := f.Result(j.ID)
			out = append(out, r)
		}
	}
	return out
}

// RunStats sums the shards' cumulative scheduling-round and event
// counts.
func (f *Federation) RunStats() core.RunStats {
	var rs core.RunStats
	for _, s := range f.shards {
		st := s.Controller().RunStats()
		rs.Rounds += st.Rounds
		rs.Events += st.Events
	}
	return rs
}

// PlanCacheStats merges the shards' plan-cache counters: hit, miss,
// eviction, and size/capacity totals, Enabled when any shard caches.
// The federated hit rate is affinity routing's scoreboard.
func (f *Federation) PlanCacheStats() plan.Stats {
	var m plan.Stats
	for _, s := range f.shards {
		ps := s.Controller().PlanCacheStats()
		m.Hits += ps.Hits
		m.Misses += ps.Misses
		m.Evictions += ps.Evictions
		m.Size += ps.Size
		m.Capacity += ps.Capacity
		m.Enabled = m.Enabled || ps.Enabled
	}
	return m
}

// PreemptStats sums the shards' preemption counters: a job preempted on
// one shard and resumed on another counts its preemption there and its
// resume here, so federation-wide Preemptions ≥ Resumes always holds.
func (f *Federation) PreemptStats() core.PreemptStats {
	var ps core.PreemptStats
	for _, s := range f.shards {
		ps.Add(s.Controller().PreemptStats())
	}
	return ps
}

// ConfigurePlanCache re-bounds every shard's plan cache (see
// Controller.ConfigurePlanCache); the size applies per shard.
func (f *Federation) ConfigurePlanCache(size int) {
	for _, s := range f.shards {
		s.Controller().ConfigurePlanCache(size)
	}
}

// RouterStats reports the admission router's cumulative decision
// counters.
func (f *Federation) RouterStats() RouterStats { return f.router.stats }

// Trace returns the federation's shared span recorder (nil when
// tracing is off).
func (f *Federation) Trace() *trace.Recorder { return f.trace }

// Routing returns the configured routing discipline.
func (f *Federation) Routing() Routing { return f.router.routing }

// WFQClock returns the federation's shared WFQ clock (nil for a
// Wrap-adopted controller, which keeps its private clock).
func (f *Federation) WFQClock() *core.WFQClock { return f.wfq }

// Snapshot aggregates the shards' live snapshots: job counts, rounds,
// and events sum; Now is the furthest shard clock; Utilization is
// weighted by each shard's computing capacity so it stays the
// federation-wide reserved fraction.
func (f *Federation) Snapshot() core.LiveSnapshot {
	var agg core.LiveSnapshot
	totalCap := 0
	weighted := 0.0
	for _, s := range f.shards {
		snap := s.Controller().Snapshot()
		if snap.Now > agg.Now {
			agg.Now = snap.Now
		}
		agg.Pending += snap.Pending
		agg.Queued += snap.Queued
		agg.Active += snap.Active
		agg.Completed += snap.Completed
		agg.Failed += snap.Failed
		agg.PendingReleases += snap.PendingReleases
		agg.Rounds += snap.Rounds
		agg.Events += snap.Events
		cap := s.Controller().TotalComputing()
		totalCap += cap
		weighted += snap.Utilization * float64(cap)
	}
	if totalCap > 0 {
		agg.Utilization = weighted / float64(totalCap)
	}
	return agg
}

// ShardSnapshots returns each shard's own live snapshot, indexed by
// shard.
func (f *Federation) ShardSnapshots() []core.LiveSnapshot {
	out := make([]core.LiveSnapshot, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Controller().Snapshot()
	}
	return out
}

// QPULoads returns per-shard QPU load views (QPU ids are local to each
// shard's cloud).
func (f *Federation) QPULoads() [][]core.QPULoad {
	out := make([][]core.QPULoad, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Controller().QPULoads()
	}
	return out
}

// SetOnTransition installs fn as every shard's lifecycle-transition
// hook, tagging each delivery with the shard index. Transition.JobID is
// the federation-level (shard-tagged) id, so one hook observes a job's
// whole life even when preemption rehomes it across shards. A nil fn
// removes the hooks.
func (f *Federation) SetOnTransition(fn func(shard int, tr core.Transition)) {
	for i, s := range f.shards {
		if fn == nil {
			s.Controller().SetOnTransition(nil)
			continue
		}
		i := i
		s.Controller().SetOnTransition(func(tr core.Transition) { fn(i, tr) })
	}
}

// Mode returns the shards' current admission mode (uniform by
// construction: fed.New configures every shard alike and SetMode
// switches them together).
func (f *Federation) Mode() core.Mode { return f.shards[0].Controller().Mode() }

// SetMode switches every shard's admission mode from its next tick on —
// the service layer's overload degradation (WFQ→FIFO) and recovery.
// WFQ virtual clocks survive a round trip through another mode.
func (f *Federation) SetMode(m core.Mode) error {
	for _, s := range f.shards {
		if err := s.Controller().SetMode(m); err != nil {
			return err
		}
	}
	return nil
}

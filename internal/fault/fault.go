// Package fault is the deterministic fault injector: a seeded,
// virtual-time FaultPlan of QPU outages, link degradations, and
// federation shard drains, scheduled on the controller's discrete-event
// clock so every run — including the recovery work the faults trigger —
// is bit-reproducible.
//
// The plan is pure data. The controller tiers consume it:
//
//   - internal/core schedules qpu_outage and link_degrade events on its
//     engine: an outage checkpoints the jobs holding qubits on the
//     downed QPU (or fails them under RecoveryNone), holds the QPU's
//     capacity, and zeroes its EPR budget for the interval; a degrade
//     scales one edge's EPR success probability (down to exactly 0 for
//     a dead link) and arms the executor's bounded retry / route-around
//     policy.
//   - internal/fed intercepts shard_drain events: the shard is
//     evacuated — every resident job checkpoints and rehomes through
//     the admission router — and then removed from routing.
//   - internal/service accepts live injections on POST /v1/faults and
//     records them in the WAL so a restarted daemon replays them
//     bit-identically.
//
// A nil *Plan keeps every hook dormant: the controllers are
// bit-identical to the fault-free code (TestFaultOffDifferential).
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Fault kinds, the Event.Kind vocabulary (and the `kind` label of
// cloudqcd_faults_injected_total).
const (
	// KindQPUOutage takes one QPU down for [From, To): running jobs
	// holding computing qubits there are rescued (checkpointed and
	// re-enqueued) or failed, the QPU's capacity is held, and its EPR
	// budget is zero for the interval.
	KindQPUOutage = "qpu_outage"
	// KindLinkDegrade scales one edge's EPR success probability by
	// Scale for [From, To). Scale 0 kills the link outright; remote
	// gates crossing it retry, route around, or exhaust their budget.
	KindLinkDegrade = "link_degrade"
	// KindShardDrain evacuates one federation shard at From: every
	// resident job checkpoints and rehomes through the router, then the
	// shard is removed from routing permanently.
	KindShardDrain = "shard_drain"
)

// Recovery policies for jobs evicted by a QPU outage.
const (
	// RecoveryRescue (the default) checkpoints evicted jobs and
	// re-enqueues them for re-placement; resumes keep id, tenant, and
	// WFQ billing exactly like preemption.
	RecoveryRescue = "rescue"
	// RecoveryNone fails evicted jobs outright — the no-recovery
	// ablation arm of the faults figure.
	RecoveryNone = "none"
)

// DefaultRetryBudget is a job's remote-gate retry allowance under
// degraded links when Plan.RetryBudget is 0.
const DefaultRetryBudget = 64

// Event is one scheduled fault. Times are virtual CX units on the
// controller clock. Shard selects the federation shard (0 for an
// unfederated controller).
type Event struct {
	Kind  string  `json:"kind"`
	Shard int     `json:"shard,omitempty"`
	QPU   int     `json:"qpu,omitempty"` // qpu_outage: the downed QPU
	U     int     `json:"u,omitempty"`   // link_degrade: edge endpoint
	V     int     `json:"v,omitempty"`   // link_degrade: edge endpoint
	Scale float64 `json:"scale"`         // link_degrade: success-probability multiplier in [0, 1]
	From  float64 `json:"from"`          // fault start (shard_drain: the drain instant)
	To    float64 `json:"to,omitempty"`  // fault end, exclusive (unused by shard_drain)
}

// Validate checks one event's shape.
func (e Event) Validate() error {
	switch e.Kind {
	case KindQPUOutage:
		if e.QPU < 0 {
			return fmt.Errorf("fault: qpu_outage with negative QPU %d", e.QPU)
		}
		if e.To <= e.From {
			return fmt.Errorf("fault: qpu_outage interval [%v, %v) is empty", e.From, e.To)
		}
	case KindLinkDegrade:
		if e.U < 0 || e.V < 0 || e.U == e.V {
			return fmt.Errorf("fault: link_degrade on bad edge (%d, %d)", e.U, e.V)
		}
		// The satellite guarantee: a degraded edge may hit exactly 0
		// but never goes negative (and never amplifies past 1).
		if e.Scale < 0 || e.Scale > 1 || math.IsNaN(e.Scale) {
			return fmt.Errorf("fault: link_degrade scale %v outside [0, 1]", e.Scale)
		}
		if e.To <= e.From {
			return fmt.Errorf("fault: link_degrade interval [%v, %v) is empty", e.From, e.To)
		}
	case KindShardDrain:
		// From is the drain instant; To is ignored (a drain is final).
	default:
		return fmt.Errorf("fault: unknown kind %q", e.Kind)
	}
	if e.Shard < 0 {
		return fmt.Errorf("fault: %s with negative shard %d", e.Kind, e.Shard)
	}
	if e.From < 0 || math.IsNaN(e.From) {
		return fmt.Errorf("fault: %s at negative time %v", e.Kind, e.From)
	}
	return nil
}

// Plan is a full fault schedule plus the recovery knobs it exercises.
type Plan struct {
	// Recovery selects what happens to jobs evicted by a QPU outage:
	// "rescue" (checkpoint and re-enqueue; empty means rescue) or
	// "none" (fail them — the ablation arm).
	Recovery string `json:"recovery,omitempty"`
	// RouteAround re-paths remote gates whose entanglement path
	// crosses a dead (scale 0) edge onto an alternative path avoiding
	// it, instead of burning retries against a link that cannot succeed.
	RouteAround bool `json:"route_around,omitempty"`
	// RetryBudget bounds one job's failed remote-gate rounds across
	// degraded links; past it the job fails cleanly. 0 means
	// DefaultRetryBudget.
	RetryBudget int `json:"retry_budget,omitempty"`
	// Events is the fault schedule.
	Events []Event `json:"events"`
}

// Validate checks the whole plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	switch p.Recovery {
	case "", RecoveryRescue, RecoveryNone:
	default:
		return fmt.Errorf("fault: unknown recovery policy %q", p.Recovery)
	}
	if p.RetryBudget < 0 {
		return fmt.Errorf("fault: negative retry budget %d", p.RetryBudget)
	}
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Rescue reports whether evicted jobs are checkpoint-rescued (the
// default) rather than failed.
func (p *Plan) Rescue() bool { return p == nil || p.Recovery != RecoveryNone }

// Budget resolves the per-job retry budget.
func (p *Plan) Budget() int {
	if p == nil || p.RetryBudget == 0 {
		return DefaultRetryBudget
	}
	return p.RetryBudget
}

// ForShard extracts the core-tier slice of the plan for one shard: its
// QPU and link events, with the recovery knobs carried over. Shard
// drains are a federation-tier concern and are excluded. Returns nil
// when the shard has no events — the shard controller stays on the
// fault-free path.
func (p *Plan) ForShard(shard int) *Plan {
	if p == nil {
		return nil
	}
	var evs []Event
	for _, e := range p.Events {
		if e.Shard == shard && e.Kind != KindShardDrain {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		return nil
	}
	return &Plan{Recovery: p.Recovery, RouteAround: p.RouteAround, RetryBudget: p.RetryBudget, Events: evs}
}

// Drains returns the plan's shard_drain events ordered by time (ties by
// shard index), or nil.
func (p *Plan) Drains() []Event {
	if p == nil {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		if e.Kind == KindShardDrain {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// Load reads and validates a JSON plan file (the -faults flag).
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parse %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return &p, nil
}

// Stats counts what the injector did and what recovery it forced. The
// zero value is ready; all counters are monotone.
type Stats struct {
	// QPUOutages, LinkDegrades, ShardDrains count injected faults by
	// kind, at fire time.
	QPUOutages, LinkDegrades, ShardDrains int64
	// RescuedOutage and RescuedDrain count jobs checkpointed off a
	// downed QPU / drained shard and re-enqueued (the `cause` label of
	// cloudqcd_jobs_rescued_total).
	RescuedOutage, RescuedDrain int64
	// FailedOutage counts jobs failed outright by an outage under
	// RecoveryNone.
	FailedOutage int64
	// Retries counts remote-gate rounds that failed across a degraded
	// link; Reroutes counts dead-edge route-arounds; RetryExhausted
	// counts jobs failed after burning their whole retry budget.
	Retries, Reroutes, RetryExhausted int64
}

// Add accumulates o into s (federation-level aggregation).
func (s *Stats) Add(o Stats) {
	s.QPUOutages += o.QPUOutages
	s.LinkDegrades += o.LinkDegrades
	s.ShardDrains += o.ShardDrains
	s.RescuedOutage += o.RescuedOutage
	s.RescuedDrain += o.RescuedDrain
	s.FailedOutage += o.FailedOutage
	s.Retries += o.Retries
	s.Reroutes += o.Reroutes
	s.RetryExhausted += o.RetryExhausted
}

// OutageSchedule builds a deterministic single-shard plan of n QPU
// outages of the given duration, evenly spread over [start, horizon):
// outage i downs QPU ((seed + i·stride) mod qpus) at
// start + i·(horizon−start)/n. A SplitMix64-style finalizer decorrelates
// the QPU choice from the slot so neighbouring outages do not pile onto
// one QPU. It is the faults figure's failure-rate axis: n is the rate.
func OutageSchedule(qpus, n int, start, horizon, duration float64, seed int64) *Plan {
	if n <= 0 || qpus <= 0 || horizon <= start {
		return nil
	}
	gap := (horizon - start) / float64(n)
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		q := int((z ^ (z >> 31)) % uint64(qpus))
		at := start + float64(i)*gap
		evs = append(evs, Event{Kind: KindQPUOutage, QPU: q, From: at, To: at + duration})
	}
	return &Plan{Events: evs}
}

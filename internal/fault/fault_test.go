package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestEventValidate(t *testing.T) {
	good := []Event{
		{Kind: KindQPUOutage, QPU: 0, From: 0, To: 100},
		{Kind: KindQPUOutage, Shard: 3, QPU: 7, From: 50, To: 51},
		{Kind: KindLinkDegrade, U: 0, V: 1, Scale: 0, From: 0, To: 10},
		{Kind: KindLinkDegrade, U: 2, V: 5, Scale: 1, From: 5, To: 6},
		{Kind: KindShardDrain, Shard: 1, From: 0},
		{Kind: KindShardDrain, From: 1e9}, // To is ignored for drains
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Fatalf("good event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		{Kind: "meteor_strike", From: 0},
		{Kind: KindQPUOutage, QPU: -1, From: 0, To: 10},
		{Kind: KindQPUOutage, QPU: 0, From: 10, To: 10}, // empty interval
		{Kind: KindQPUOutage, QPU: 0, From: 10, To: 5},  // inverted
		{Kind: KindQPUOutage, QPU: 0, From: -1, To: 5},  // negative time
		{Kind: KindQPUOutage, Shard: -1, QPU: 0, From: 0, To: 5},
		{Kind: KindLinkDegrade, U: 0, V: 0, Scale: 0.5, From: 0, To: 5},  // self-loop
		{Kind: KindLinkDegrade, U: -1, V: 1, Scale: 0.5, From: 0, To: 5}, // negative endpoint
		{Kind: KindLinkDegrade, U: 0, V: 1, Scale: -0.1, From: 0, To: 5}, // negative scale
		{Kind: KindLinkDegrade, U: 0, V: 1, Scale: 1.5, From: 0, To: 5},  // amplifying
		{Kind: KindLinkDegrade, U: 0, V: 1, Scale: 0.5, From: 5, To: 5},
		{Kind: KindShardDrain, From: -2},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Fatalf("bad event %d accepted: %+v", i, e)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	ok := &Plan{Recovery: RecoveryRescue, RouteAround: true, RetryBudget: 3,
		Events: []Event{{Kind: KindQPUOutage, QPU: 1, From: 0, To: 10}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := (&Plan{Recovery: "mercy"}).Validate(); err == nil {
		t.Fatal("unknown recovery policy accepted")
	}
	if err := (&Plan{RetryBudget: -1}).Validate(); err == nil {
		t.Fatal("negative retry budget accepted")
	}
	if err := (&Plan{Events: []Event{{Kind: "nope"}}}).Validate(); err == nil {
		t.Fatal("plan with invalid event accepted")
	}
}

func TestRescueAndBudget(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Rescue() {
		t.Fatal("nil plan must default to rescue")
	}
	if nilPlan.Budget() != DefaultRetryBudget {
		t.Fatalf("nil plan budget %d, want %d", nilPlan.Budget(), DefaultRetryBudget)
	}
	if !(&Plan{}).Rescue() || !(&Plan{Recovery: RecoveryRescue}).Rescue() {
		t.Fatal("empty/rescue recovery must rescue")
	}
	if (&Plan{Recovery: RecoveryNone}).Rescue() {
		t.Fatal("none recovery must not rescue")
	}
	if got := (&Plan{}).Budget(); got != DefaultRetryBudget {
		t.Fatalf("zero budget resolved to %d, want %d", got, DefaultRetryBudget)
	}
	if got := (&Plan{RetryBudget: 7}).Budget(); got != 7 {
		t.Fatalf("explicit budget resolved to %d, want 7", got)
	}
}

func TestForShard(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.ForShard(0) != nil {
		t.Fatal("nil plan must split to nil")
	}
	p := &Plan{
		Recovery: RecoveryNone, RouteAround: true, RetryBudget: 9,
		Events: []Event{
			{Kind: KindQPUOutage, Shard: 0, QPU: 1, From: 0, To: 10},
			{Kind: KindLinkDegrade, Shard: 1, U: 0, V: 1, Scale: 0.5, From: 0, To: 10},
			{Kind: KindShardDrain, Shard: 0, From: 50},
			{Kind: KindQPUOutage, Shard: 1, QPU: 2, From: 5, To: 15},
		},
	}
	s0 := p.ForShard(0)
	if len(s0.Events) != 1 || s0.Events[0].Kind != KindQPUOutage || s0.Events[0].QPU != 1 {
		t.Fatalf("shard 0 slice %+v", s0.Events)
	}
	// The recovery knobs ride along with every shard slice.
	if s0.Recovery != RecoveryNone || !s0.RouteAround || s0.RetryBudget != 9 {
		t.Fatalf("shard 0 slice lost the knobs: %+v", *s0)
	}
	if s1 := p.ForShard(1); len(s1.Events) != 2 {
		t.Fatalf("shard 1 slice %+v", s1.Events)
	}
	// A shard with no events (drains don't count) stays on the nil path.
	if p.ForShard(2) != nil {
		t.Fatal("eventless shard must split to nil")
	}
}

func TestDrainsOrdered(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Drains() != nil {
		t.Fatal("nil plan must have nil drains")
	}
	p := &Plan{Events: []Event{
		{Kind: KindShardDrain, Shard: 2, From: 100},
		{Kind: KindQPUOutage, Shard: 0, QPU: 0, From: 0, To: 10},
		{Kind: KindShardDrain, Shard: 1, From: 100},
		{Kind: KindShardDrain, Shard: 3, From: 20},
	}}
	ds := p.Drains()
	if len(ds) != 3 {
		t.Fatalf("got %d drains, want 3", len(ds))
	}
	// Ordered by (From, Shard): the tie at 100 breaks by shard index.
	want := []struct {
		shard int
		from  float64
	}{{3, 20}, {1, 100}, {2, 100}}
	for i, w := range want {
		if ds[i].Shard != w.shard || ds[i].From != w.from {
			t.Fatalf("drain %d = shard %d @ %v, want shard %d @ %v",
				i, ds[i].Shard, ds[i].From, w.shard, w.from)
		}
	}
}

func TestOutageSchedule(t *testing.T) {
	p := OutageSchedule(8, 5, 0, 10000, 400, 42)
	if p == nil || len(p.Events) != 5 {
		t.Fatalf("schedule %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i, e := range p.Events {
		if e.Kind != KindQPUOutage || e.QPU < 0 || e.QPU >= 8 {
			t.Fatalf("event %d: %+v", i, e)
		}
		if e.From < 0 || e.From >= 10000 || e.To != e.From+400 {
			t.Fatalf("event %d interval [%v, %v)", i, e.From, e.To)
		}
		if i > 0 && e.From <= p.Events[i-1].From {
			t.Fatalf("events not spread: %v after %v", e.From, p.Events[i-1].From)
		}
	}
	if !reflect.DeepEqual(p, OutageSchedule(8, 5, 0, 10000, 400, 42)) {
		t.Fatal("schedule not deterministic")
	}
	if reflect.DeepEqual(p, OutageSchedule(8, 5, 0, 10000, 400, 43)) {
		t.Fatal("schedule ignores the seed")
	}
	qpus := map[int]bool{}
	for _, e := range OutageSchedule(8, 16, 0, 10000, 100, 1).Events {
		qpus[e.QPU] = true
	}
	if len(qpus) < 2 {
		t.Fatalf("16 outages piled onto %d QPU(s)", len(qpus))
	}
	for _, p := range []*Plan{
		OutageSchedule(8, 0, 0, 100, 10, 1),
		OutageSchedule(0, 5, 0, 100, 10, 1),
		OutageSchedule(8, 5, 100, 100, 10, 1),
	} {
		if p != nil {
			t.Fatalf("degenerate schedule non-nil: %+v", p)
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(good, []byte(`{
		"recovery": "rescue",
		"route_around": true,
		"events": [
			{"kind": "qpu_outage", "qpu": 2, "from": 100, "to": 500},
			{"kind": "link_degrade", "u": 0, "v": 1, "scale": 0.25, "from": 0, "to": 50},
			{"kind": "shard_drain", "shard": 1, "from": 900}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3 || !p.RouteAround || !p.Rescue() {
		t.Fatalf("loaded plan %+v", *p)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	mangled := filepath.Join(dir, "mangled.json")
	if err := os.WriteFile(mangled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(mangled); err == nil {
		t.Fatal("unparseable plan loaded")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"events": [{"kind": "qpu_outage", "qpu": 0, "from": 5, "to": 5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Fatal("invalid plan loaded")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{QPUOutages: 1, LinkDegrades: 2, ShardDrains: 3, RescuedOutage: 4,
		RescuedDrain: 5, FailedOutage: 6, Retries: 7, Reroutes: 8, RetryExhausted: 9}
	b := a
	b.Add(a)
	want := Stats{QPUOutages: 2, LinkDegrades: 4, ShardDrains: 6, RescuedOutage: 8,
		RescuedDrain: 10, FailedOutage: 12, Retries: 14, Reroutes: 16, RetryExhausted: 18}
	if b != want {
		t.Fatalf("Add: got %+v, want %+v", b, want)
	}
}

package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

func runFig3(t *testing.T, p Policy, seed int64) Result {
	t.Helper()
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	res, err := Run(d, cl, epr.DefaultModel(), p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllGates(t *testing.T) {
	res := runFig3(t, CloudQCPolicy{}, 1)
	if res.RemoteGates != 6 {
		t.Fatalf("RemoteGates = %d", res.RemoteGates)
	}
	if res.JCT <= 0 || res.Rounds <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// At minimum the critical path (3 gates) must serialize: each needs
	// one EPR round (10) and execution; JCT > 30.
	if res.JCT < 30 {
		t.Fatalf("JCT = %v implausibly small", res.JCT)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	a := runFig3(t, CloudQCPolicy{}, 42)
	b := runFig3(t, CloudQCPolicy{}, 42)
	if a.JCT != b.JCT || a.Rounds != b.Rounds {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunLocalOnlyJob(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("local", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.M(1))
	d := BuildRemoteDAG(c, cl, []int{0, 0}, epr.DefaultLatency())
	res, err := Run(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("local job needed %d EPR rounds", res.Rounds)
	}
	if res.JCT < 6.099 || res.JCT > 6.101 {
		t.Fatalf("JCT = %v, want 6.1", res.JCT)
	}
}

func TestRunRejectsInvalidModel(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	bad := epr.DefaultModel()
	bad.SuccessProb = 0
	if _, err := Run(d, cl, bad, CloudQCPolicy{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid model should error")
	}
}

func TestRunRejectsZeroCommCloud(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 0)
	c := circuit.New("r", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	if _, err := Run(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero-comm cloud should error")
	}
}

func TestHigherEPRProbabilityShortensJCT(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	jct := func(p float64) float64 {
		m := epr.DefaultModel()
		m.SuccessProb = p
		total := 0.0
		const reps = 30
		for i := int64(0); i < reps; i++ {
			res, err := Run(d, cl, m, CloudQCPolicy{}, rand.New(rand.NewSource(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += res.JCT
		}
		return total / reps
	}
	low, high := jct(0.1), jct(0.9)
	if high >= low {
		t.Fatalf("JCT(p=0.9) = %v should beat JCT(p=0.1) = %v", high, low)
	}
}

func TestMoreCommQubitsShortenJCT(t *testing.T) {
	// Wide front layer: many parallel remote gates between two QPUs.
	c := circuit.New("wide", 16)
	for i := 0; i < 8; i++ {
		c.Append(circuit.CX(i, 8+i))
	}
	assign := make([]int, 16)
	for i := 8; i < 16; i++ {
		assign[i] = 1
	}
	jct := func(comm int) float64 {
		cl := cloud.New(graph.Path(2), 16, comm)
		d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
		total := 0.0
		const reps = 30
		for i := int64(0); i < reps; i++ {
			res, err := Run(d, cl, epr.DefaultModel(), AveragePolicy{}, rand.New(rand.NewSource(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += res.JCT
		}
		return total / reps
	}
	few, many := jct(2), jct(10)
	if many >= few {
		t.Fatalf("JCT(comm=10) = %v should beat JCT(comm=2) = %v", many, few)
	}
}

func TestJobStateReadyRespectsLag(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("lagged", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1)) // lag 0.1 before the remote gate
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	s := NewJobState(d, 0)
	if len(s.Ready(0)) != 0 {
		t.Fatal("gate should not be ready before its local lag elapses")
	}
	if len(s.Ready(0.1)) != 1 {
		t.Fatal("gate should be ready once lag has elapsed")
	}
}

func TestJobStateStartOffset(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 100)
	if len(s.Ready(50)) != 0 {
		t.Fatal("no gate ready before the job's start time")
	}
	if len(s.Ready(100)) == 0 {
		t.Fatal("front layer ready at start time")
	}
}

func TestJobStateSuccessorsUnlockAfterFinish(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 1} // always succeed
	s := NewJobState(d, 0)
	rng := rand.New(rand.NewSource(1))
	for _, u := range s.Ready(0) {
		s.Attempt(u, 1, 0, m, rng)
	}
	// Gates 0 and 1 finish at 10 + 1 + 5 = 16; successors are not ready
	// at time 10 but are ready at 16.
	if got := s.Ready(10); len(got) != 0 {
		t.Fatalf("Ready(10) = %v, want none before finish", got)
	}
	ready := s.Ready(16)
	if len(ready) != 3 { // gates 2, 3, 5 unlocked
		t.Fatalf("Ready(16) = %v, want 3 gates", ready)
	}
}

func TestJCTIncludesTail(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("tailed", 2)
	c.Append(circuit.CX(0, 1), circuit.M(0))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 1}
	res, err := Run(d, cl, m, CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// One round (10) + gate (1) + measure (5) + tail measure (5) = 21.
	if res.JCT < 20.999 || res.JCT > 21.001 {
		t.Fatalf("JCT = %v, want 21", res.JCT)
	}
}

func TestMultiHopTakesLonger(t *testing.T) {
	c := circuit.New("hop", 2)
	c.Append(circuit.CX(0, 1))
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 1}
	cl := cloud.New(graph.Path(3), 10, 5)
	near := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	far := BuildRemoteDAG(c, cl, []int{0, 2}, epr.DefaultLatency())
	rn, err := Run(near, cl, m, CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(far, cl, m, CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rf.JCT <= rn.JCT {
		t.Fatalf("2-hop JCT %v should exceed 1-hop %v", rf.JCT, rn.JCT)
	}
}

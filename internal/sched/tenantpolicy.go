package sched

import "math/rand"

// TenantWeightedPolicy splits each round's communication-qubit budget
// across tenants before falling back to CloudQC's per-gate priority
// order, bounding cross-tenant starvation at the EPR-allocation layer:
// a low-intensity tenant's gates cannot be crowded out of a round just
// because another tenant's wide circuit floods it with higher-priority
// requests.
//
// Phase 1 hands out first pairs by weighted deficit round-robin: each
// grant charges the receiving tenant 1/weight of normalized service, and
// the next grant goes to the backlogged tenant with the least normalized
// service (ties to the smaller tenant id), walking that tenant's
// requests in CloudQC priority order. A tenant with weight w therefore
// receives first pairs at w times the rate of a weight-1 tenant, and
// every tenant with a grantable request gets one before any tenant gets
// its last. Phase 2 spends the leftover budget exactly like
// CloudQCPolicy: water-filling extras onto already-granted gates by
// priority weight, tenant-blind.
//
// With a single tenant the deficit round-robin degenerates to "one pair
// per gate in priority order", making the policy bit-identical to
// CloudQCPolicy (see TestTenantWeightedSingleTenantMatchesCloudQC).
//
// The policy carries per-round scratch behind a stable tenant→slot
// table (the same flattening wfqOrder's admission path uses): grouping,
// deficits, and cursors are slot-indexed slices reused across rounds,
// so a round costs zero map operations beyond the slot lookups and zero
// allocations once the scratch is warm. Construct instances with
// NewTenantWeightedPolicy; the scratch makes a policy value stateful
// (though rounds are independent — only capacity persists), so
// concurrent controllers must not share one.
type TenantWeightedPolicy struct {
	// slots maps tenant id → scratch slot, append-only like WFQClock's
	// table; ids is the inverse. Memory scales with distinct tenants
	// seen, not rounds.
	slots map[int]int
	ids   []int
	// groups, served, and cursor are the slot-indexed per-round state:
	// each tenant's priority-ordered requests, normalized service, and
	// walk position. round lists the slots active this round, sorted by
	// tenant id so ties keep breaking to the smaller id.
	groups [][]Request
	round  []int
	served []float64
	cursor []int
}

// NewTenantWeightedPolicy returns a tenant-weighted allocation policy
// with cold scratch.
func NewTenantWeightedPolicy() *TenantWeightedPolicy { return &TenantWeightedPolicy{} }

// Name implements Policy.
func (*TenantWeightedPolicy) Name() string { return "TenantWeighted" }

// Allocate implements Policy.
func (p *TenantWeightedPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	sortByPriority(reqs)

	// Group requests by tenant slot, preserving priority order within
	// each group.
	if p.slots == nil {
		p.slots = make(map[int]int)
	}
	groups := p.groups
	round := p.round[:0]
	for _, r := range reqs {
		s, ok := p.slots[r.Tenant]
		if !ok {
			s = len(p.ids)
			p.slots[r.Tenant] = s
			p.ids = append(p.ids, r.Tenant)
			p.served = append(p.served, 0)
			p.cursor = append(p.cursor, 0)
		}
		for len(groups) <= s {
			groups = append(groups, nil)
		}
		if len(groups[s]) == 0 {
			round = append(round, s)
		}
		groups[s] = append(groups[s], r)
	}
	p.groups = groups
	defer func() {
		// Release the grouped requests (each holds a Path slice the [:0]
		// reslice alone would pin) and leave every touched group empty for
		// the next round's len==0 "new slot" test.
		for _, s := range round {
			g := groups[s]
			for i := range g {
				g[i] = Request{}
			}
			groups[s] = g[:0]
		}
		p.round = round[:0]
	}()
	// Slots are allocated in first-seen order; insertion-sort this
	// round's slots by tenant id so the deficit round-robin keeps
	// iterating tenants in ascending id, exactly as the map-based
	// implementation's sorted-tenants loop did.
	for i := 1; i < len(round); i++ {
		s := round[i]
		k := i
		for k > 0 && p.ids[round[k-1]] > p.ids[s] {
			round[k] = round[k-1]
			k--
		}
		round[k] = s
	}

	// Phase 1: weighted deficit round-robin of first pairs. cursor[s]
	// walks tenant s's priority-ordered requests; budget only shrinks, so
	// a request blocked once stays blocked and the cursor never revisits
	// it.
	served, cursor := p.served, p.cursor
	for _, s := range round {
		served[s] = 0
		cursor[s] = 0
	}
	for {
		best := -1
		for _, s := range round {
			if cursor[s] >= len(groups[s]) {
				continue
			}
			if best < 0 || served[s] < served[best] {
				best = s
			}
		}
		if best < 0 {
			break
		}
		// Walk the tenant's remaining requests to its first grantable
		// one; a tenant whose cursor exhausts without a grant simply
		// drops out of the round-robin on the next pass.
		group := groups[best]
		for cursor[best] < len(group) {
			r := group[cursor[best]]
			cursor[best]++
			if grantOne(r, budget) {
				alloc[r.Key]++
				served[best] += 1 / float64(tenantWeight(r))
				break
			}
		}
	}

	// Phase 2: leftover budget follows CloudQC's per-gate priority order.
	waterFill(reqs, alloc, budget)
	return alloc
}

// tenantWeight resolves a request's fair-share weight: non-positive
// means the default weight 1.
func tenantWeight(r Request) int {
	if r.TenantWeight <= 0 {
		return 1
	}
	return r.TenantWeight
}

package sched

import (
	"math/rand"
	"sort"
)

// TenantWeightedPolicy splits each round's communication-qubit budget
// across tenants before falling back to CloudQC's per-gate priority
// order, bounding cross-tenant starvation at the EPR-allocation layer:
// a low-intensity tenant's gates cannot be crowded out of a round just
// because another tenant's wide circuit floods it with higher-priority
// requests.
//
// Phase 1 hands out first pairs by weighted deficit round-robin: each
// grant charges the receiving tenant 1/weight of normalized service, and
// the next grant goes to the backlogged tenant with the least normalized
// service (ties to the smaller tenant id), walking that tenant's
// requests in CloudQC priority order. A tenant with weight w therefore
// receives first pairs at w times the rate of a weight-1 tenant, and
// every tenant with a grantable request gets one before any tenant gets
// its last. Phase 2 spends the leftover budget exactly like
// CloudQCPolicy: water-filling extras onto already-granted gates by
// priority weight, tenant-blind.
//
// With a single tenant the deficit round-robin degenerates to "one pair
// per gate in priority order", making the policy bit-identical to
// CloudQCPolicy (see TestTenantWeightedSingleTenantMatchesCloudQC).
type TenantWeightedPolicy struct{}

// Name implements Policy.
func (TenantWeightedPolicy) Name() string { return "TenantWeighted" }

// Allocate implements Policy.
func (TenantWeightedPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	sortByPriority(reqs)

	// Group requests by tenant, preserving priority order within each
	// group; tenants iterate in ascending id for determinism.
	byTenant := make(map[int][]Request)
	for _, r := range reqs {
		byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
	}
	tenants := make([]int, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Ints(tenants)

	// Phase 1: weighted deficit round-robin of first pairs. cursor[t]
	// walks tenant t's priority-ordered requests; budget only shrinks, so
	// a request blocked once stays blocked and the cursor never revisits
	// it.
	served := make(map[int]float64, len(tenants))
	cursor := make(map[int]int, len(tenants))
	for {
		best := -1
		for _, t := range tenants {
			if cursor[t] >= len(byTenant[t]) {
				continue
			}
			if best < 0 || served[t] < served[best] {
				best = t
			}
		}
		if best < 0 {
			break
		}
		// Walk the tenant's remaining requests to its first grantable
		// one; a tenant whose cursor exhausts without a grant simply
		// drops out of the round-robin on the next pass.
		group := byTenant[best]
		for cursor[best] < len(group) {
			r := group[cursor[best]]
			cursor[best]++
			if grantOne(r, budget) {
				alloc[r.Key]++
				served[best] += 1 / float64(tenantWeight(r))
				break
			}
		}
	}

	// Phase 2: leftover budget follows CloudQC's per-gate priority order.
	waterFill(reqs, alloc, budget)
	return alloc
}

// tenantWeight resolves a request's fair-share weight: non-positive
// means the default weight 1.
func tenantWeight(r Request) int {
	if r.TenantWeight <= 0 {
		return 1
	}
	return r.TenantWeight
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func treq(tenant, weight, job, node, prio int, path ...int) Request {
	r := req(job, node, prio, path...)
	r.Tenant = tenant
	r.TenantWeight = weight
	return r
}

func TestTenantWeightedName(t *testing.T) {
	if got := NewTenantWeightedPolicy().Name(); got != "TenantWeighted" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestTenantWeightedSingleTenantMatchesCloudQC(t *testing.T) {
	// With one tenant the deficit round-robin is "one pair per gate in
	// priority order" — exactly CloudQC's first pass — and phase 2 is
	// CloudQC's water-fill, so the allocations must be identical.
	mk := func() []Request {
		return []Request{
			req(0, 0, 5, 0, 1), req(0, 1, 3, 1, 2), req(0, 2, 3, 0, 2),
			req(1, 0, 1, 2, 3), req(1, 1, 0, 0, 3),
		}
	}
	b1 := []int{4, 3, 5, 2}
	b2 := append([]int(nil), b1...)
	want := CloudQCPolicy{}.Allocate(mk(), b1, rand.New(rand.NewSource(1)))
	got := NewTenantWeightedPolicy().Allocate(mk(), b2, rand.New(rand.NewSource(1)))
	if len(got) != len(want) {
		t.Fatalf("alloc = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("alloc[%v] = %d, want %d (full: %v vs %v)", k, got[k], v, got, want)
		}
	}
}

func TestTenantWeightedBoundsStarvation(t *testing.T) {
	// Tenant 1 floods the round with high-priority gates on the shared
	// QPU pair; tenant 2's single low-priority gate must still get its
	// first pair before tenant 1 soaks up the whole budget.
	reqs := []Request{
		treq(1, 1, 0, 0, 9, 0, 1),
		treq(1, 1, 0, 1, 9, 0, 1),
		treq(1, 1, 0, 2, 9, 0, 1),
		treq(2, 1, 1, 0, 0, 0, 1),
	}
	budget := []int{3, 3}
	alloc := NewTenantWeightedPolicy().Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{Job: 1, Node: 0}] < 1 {
		t.Fatalf("tenant 2 starved: %v", alloc)
	}
}

func TestTenantWeightedHonorsWeights(t *testing.T) {
	// Two tenants, each with plenty of gates on the same saturated pair;
	// weight 3 vs 1 should split the 8 first pairs 6:2.
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, treq(1, 3, 0, i, 1, 0, 1))
		reqs = append(reqs, treq(2, 1, 1, i, 1, 0, 1))
	}
	budget := []int{8, 8}
	alloc := NewTenantWeightedPolicy().Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	var t1, t2 int
	for i := 0; i < 8; i++ {
		t1 += alloc[NodeKey{Job: 0, Node: i}]
		t2 += alloc[NodeKey{Job: 1, Node: i}]
	}
	if t1 != 6 || t2 != 2 {
		t.Fatalf("weighted split = %d:%d, want 6:2 (%v)", t1, t2, alloc)
	}
}

func TestTenantWeightedDeterministic(t *testing.T) {
	mk := func() []Request {
		return []Request{
			treq(0, 1, 0, 0, 3, 0, 1), treq(1, 2, 1, 0, 2, 1, 2),
			treq(2, 1, 2, 0, 1, 0, 2), treq(1, 2, 1, 1, 5, 0, 1),
		}
	}
	b1, b2 := []int{4, 4, 4}, []int{4, 4, 4}
	a1 := NewTenantWeightedPolicy().Allocate(mk(), b1, rand.New(rand.NewSource(9)))
	a2 := NewTenantWeightedPolicy().Allocate(mk(), b2, rand.New(rand.NewSource(9)))
	if len(a1) != len(a2) {
		t.Fatalf("non-deterministic: %v vs %v", a1, a2)
	}
	for k, v := range a1 {
		if a2[k] != v {
			t.Fatalf("non-deterministic at %v: %v vs %v", k, a1, a2)
		}
	}
}

// Property: the tenant-weighted allocator never exceeds any QPU's
// communication budget, for random tenant mixes, weights, paths (with
// swap intermediates), and budgets.
func TestQuickTenantWeightedRespectsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nQPU := 3 + rng.Intn(5)
		var reqs []Request
		for i := 0; i < 2+rng.Intn(10); i++ {
			// Paths of 2 or 3 distinct QPUs (endpoints plus an optional
			// swap intermediate).
			perm := rng.Perm(nQPU)
			path := perm[:2+rng.Intn(2)]
			reqs = append(reqs, treq(
				rng.Intn(4), rng.Intn(5)-1, // weights include 0 and -1 (default to 1)
				rng.Intn(3), i, rng.Intn(6), path...))
		}
		budget := make([]int, nQPU)
		orig := make([]int, nQPU)
		for i := range budget {
			budget[i] = 1 + rng.Intn(6)
			orig[i] = budget[i]
		}
		alloc := NewTenantWeightedPolicy().Allocate(reqs, budget, rand.New(rand.NewSource(seed)))
		used := make([]int, nQPU)
		for _, r := range reqs {
			if alloc[r.Key] < 0 {
				return false
			}
			for _, q := range r.Path {
				used[q] += alloc[r.Key]
			}
		}
		for q := range used {
			if used[q] > orig[q] || budget[q] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

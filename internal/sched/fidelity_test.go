package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

func TestRunFidelityCompletesAndCostsMore(t *testing.T) {
	// A 3-hop remote gate at 0.97 link fidelity needs purification; the
	// fidelity-aware run must take at least as long as the plain run.
	cl := cloud.New(graph.Path(4), 10, 5)
	c := circuit.New("far", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 3}, epr.DefaultLatency())

	fm := epr.DefaultFidelityModel()
	var plain, fid float64
	const reps = 25
	for seed := int64(0); seed < reps; seed++ {
		p, err := Run(d, cl, fm.Model, AveragePolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		f, err := RunFidelity(d, cl, fm, AveragePolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		plain += p.JCT
		fid += f.JCT
	}
	if fid < plain {
		t.Fatalf("fidelity-aware mean JCT %v beat plain %v; purification must cost time", fid/reps, plain/reps)
	}
}

func TestRunFidelityNoPurificationMatchesPlain(t *testing.T) {
	// A 1-hop gate with very high link fidelity needs no purification:
	// identical seeds give identical results.
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("near", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	fm := epr.DefaultFidelityModel()
	fm.LinkFidelity = 0.999
	p, err := Run(d, cl, fm.Model, CloudQCPolicy{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := RunFidelity(d, cl, fm, CloudQCPolicy{}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if p.JCT != f.JCT {
		t.Fatalf("no-purification JCT %v != plain %v", f.JCT, p.JCT)
	}
}

func TestRunFidelityUnreachableThresholdErrors(t *testing.T) {
	cl := cloud.New(graph.Path(4), 10, 5)
	c := circuit.New("far", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 3}, epr.DefaultLatency())
	fm := epr.DefaultFidelityModel()
	fm.LinkFidelity = 0.51
	fm.Threshold = 0.999
	if _, err := RunFidelity(d, cl, fm, CloudQCPolicy{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unreachable threshold should error")
	}
}

func TestRunFidelityInvalidModelErrors(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("x", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	bad := epr.DefaultFidelityModel()
	bad.LinkFidelity = 0.3
	if _, err := RunFidelity(d, cl, bad, CloudQCPolicy{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid fidelity model should error")
	}
}

func TestRunFidelityLocalOnly(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("local", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.M(1))
	d := BuildRemoteDAG(c, cl, []int{0, 0}, epr.DefaultLatency())
	res, err := RunFidelity(d, cl, epr.DefaultFidelityModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.JCT <= 0 {
		t.Fatalf("local-only result %+v", res)
	}
}

package sched

import (
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

// fig3Setup reproduces the paper's Fig. 3 example: a 13-qubit circuit
// spanning three QPUs (A = 0, B = 1, C = 2 on a path topology) with the
// remote gates the text discusses. Qubits 0-4 -> A, 5-8 -> B, 9-12 -> C.
func fig3Setup() (*circuit.Circuit, *cloud.Cloud, []int) {
	c := circuit.New("fig3", 13)
	c.Append(
		circuit.CX(0, 5),  // remote 0: A-B
		circuit.CX(1, 6),  // remote 1: A-B (parallel with 0)
		circuit.CX(6, 12), // remote 2: B-C, depends on 1 via q6
		circuit.CX(0, 7),  // remote 3: A-B, depends on 0 via q0
		circuit.CX(6, 11), // remote 4: B-C, depends on 2 via q6
		circuit.CX(1, 8),  // remote 5: A-B, depends on 1 via q1
	)
	cl := cloud.New(graph.Path(3), 5, 5)
	assign := make([]int, 13)
	for q := 0; q < 13; q++ {
		switch {
		case q < 5:
			assign[q] = 0
		case q < 9:
			assign[q] = 1
		default:
			assign[q] = 2
		}
	}
	return c, cl, assign
}

func TestFig3RemoteDAGStructure(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	if d.Len() != 6 {
		t.Fatalf("remote gates = %d, want 6", d.Len())
	}
	// Front layer: gates 0 and 1 (no remote predecessors).
	front := d.FrontLayer()
	if len(front) != 2 || front[0] != 0 || front[1] != 1 {
		t.Fatalf("front layer = %v, want [0 1]", front)
	}
	// Gate 2 (q6,q12) depends on gate 1 (q1,q6).
	if len(d.Preds[2]) != 1 || d.Preds[2][0] != 1 {
		t.Fatalf("Preds(2) = %v, want [1]", d.Preds[2])
	}
	// Gate 3 (q0,q7) depends on gate 0 (q0,q5).
	if len(d.Preds[3]) != 1 || d.Preds[3][0] != 0 {
		t.Fatalf("Preds(3) = %v, want [0]", d.Preds[3])
	}
	// Gate 4 (q6,q11) depends on gate 2.
	if len(d.Preds[4]) != 1 || d.Preds[4][0] != 2 {
		t.Fatalf("Preds(4) = %v, want [2]", d.Preds[4])
	}
}

func TestFig3Priorities(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	p := d.Priorities()
	// Chain 1 -> 2 -> 4 gives gate 1 priority 2; gate 0 -> 3 gives
	// priority 1; leaves 3, 4, 5 have priority 0.
	if p[1] != 2 {
		t.Fatalf("priority(1) = %d, want 2 (critical path)", p[1])
	}
	if p[0] != 1 {
		t.Fatalf("priority(0) = %d, want 1", p[0])
	}
	for _, leaf := range []int{3, 4, 5} {
		if p[leaf] != 0 {
			t.Fatalf("priority(%d) = %d, want 0", leaf, p[leaf])
		}
	}
	if d.CriticalPathLen() != 3 {
		t.Fatalf("critical path = %d, want 3", d.CriticalPathLen())
	}
}

func TestRemoteGatePaths(t *testing.T) {
	c, cl, assign := fig3Setup()
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	// A-B gates span 1 hop; B-C gates span 1 hop; none cross A-C here.
	for _, n := range d.Nodes {
		if n.Hops() != 1 {
			t.Fatalf("node %d hops = %d, want 1", n.ID, n.Hops())
		}
	}
	// A multi-hop gate: qubit on A interacting with qubit on C.
	c2 := circuit.New("hop2", 2)
	c2.Append(circuit.CX(0, 1))
	d2 := BuildRemoteDAG(c2, cl, []int{0, 2}, epr.DefaultLatency())
	if d2.Nodes[0].Hops() != 2 {
		t.Fatalf("A-C gate hops = %d, want 2", d2.Nodes[0].Hops())
	}
}

func TestLagAccumulatesLocalGates(t *testing.T) {
	cl := cloud.New(graph.Path(2), 5, 5)
	c := circuit.New("lag", 2)
	c.Append(
		circuit.H(0),       // 0.1 local
		circuit.H(0),       // 0.1 local
		circuit.CX(0, 1),   // remote
		circuit.RZ(1, 0.5), // 0.1 local after
		circuit.CX(0, 1),   // remote again
	)
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	if d.Len() != 2 {
		t.Fatalf("remote gates = %d", d.Len())
	}
	if lag := d.Nodes[0].Lag; lag < 0.199 || lag > 0.201 {
		t.Fatalf("first remote lag = %v, want 0.2", lag)
	}
	if lag := d.Nodes[1].Lag; lag < 0.099 || lag > 0.101 {
		t.Fatalf("second remote lag = %v, want 0.1 (RZ between)", lag)
	}
}

func TestLagThroughLocalTwoQubitGates(t *testing.T) {
	// A local CX merges dependency chains: remote gate after it must
	// depend on remote ancestors of both its qubits.
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("merge", 4)
	c.Append(
		circuit.CX(0, 2), // remote 0 (q0 on A, q2 on B)
		circuit.CX(2, 3), // local on B
		circuit.CX(1, 3), // remote 1 (q1 on A, q3 on B): depends on 0 via q3<-q2 chain
	)
	assign := []int{0, 0, 1, 1}
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	if d.Len() != 2 {
		t.Fatalf("remote gates = %d", d.Len())
	}
	if len(d.Preds[1]) != 1 || d.Preds[1][0] != 0 {
		t.Fatalf("Preds(1) = %v, want [0] through local CX", d.Preds[1])
	}
	if lag := d.Nodes[1].Lag; lag < 0.999 || lag > 1.001 {
		t.Fatalf("lag = %v, want 1 (local CX duration)", lag)
	}
}

func TestTailCapturesTrailingLocals(t *testing.T) {
	cl := cloud.New(graph.Path(2), 5, 5)
	c := circuit.New("tail", 2)
	c.Append(circuit.CX(0, 1), circuit.M(0), circuit.M(1))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	if d.Tail < 4.999 || d.Tail > 5.001 {
		t.Fatalf("Tail = %v, want 5 (measure)", d.Tail)
	}
}

func TestLocalOnlyPlacement(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("local", 3)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.CX(1, 2), circuit.M(2))
	d := BuildRemoteDAG(c, cl, []int{0, 0, 0}, epr.DefaultLatency())
	if d.Len() != 0 {
		t.Fatalf("single-QPU placement should have empty remote DAG")
	}
	// 0.1 + 1 + 1 + 5 = 7.1 critical path.
	if d.LocalOnly < 7.099 || d.LocalOnly > 7.101 {
		t.Fatalf("LocalOnly = %v, want 7.1", d.LocalOnly)
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([]int{1, 3, 5}, []int{2, 3, 6})
	want := []int{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("mergeSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeSorted = %v, want %v", got, want)
		}
	}
	if out := mergeSorted(nil, []int{1}); len(out) != 1 || out[0] != 1 {
		t.Fatalf("mergeSorted(nil, [1]) = %v", out)
	}
	if out := mergeSorted([]int{2}, nil); len(out) != 1 || out[0] != 2 {
		t.Fatalf("mergeSorted([2], nil) = %v", out)
	}
}

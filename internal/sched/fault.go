package sched

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/epr"
)

// This file is the executor's fault surface: a per-edge-probability
// variant of Attempt for degraded links, a mid-execution Reroute that
// (unlike SetPath) may discard banked entanglement, and the accessors
// the controller's retry/route-around policy reads. None of it is on
// the fault-free path — Attempt and SetPath are untouched.

// HopsLeft returns how many EPR links node u still has to entangle.
func (s *JobState) HopsLeft(u int) int { return s.hopsLeft[u] }

// AttemptDegraded is Attempt under a per-edge success-probability
// overlay: hop k of node u's path (the edge path[k]→path[k+1]) succeeds
// with edgeProb(path[k], path[k+1]) instead of the model's uniform
// probability. The unentangled hops are the path's suffix — the first
// len(path)-1-hopsLeft hops are banked — and each draws exactly one
// Bernoulli trial per round, the same draw count as Attempt, so a
// uniform edgeProb reproduces Attempt bit-for-bit on the same RNG
// stream.
func (s *JobState) AttemptDegraded(u, pairs int, roundStart float64, m epr.Model, rng *rand.Rand, edgeProb func(a, b int) float64) {
	if pairs <= 0 || s.hopsLeft[u] == 0 {
		return
	}
	s.attempted[u] = true
	path := s.paths[u]
	hops := len(path) - 1
	for k := hops - s.hopsLeft[u]; k < hops; k++ {
		p := m.SuccessProb
		if edgeProb != nil {
			p = edgeProb(path[k], path[k+1])
		}
		if rng.Float64() < epr.RoundSuccessProb(p, pairs) {
			s.hopsLeft[u]--
		}
	}
	if s.hopsLeft[u] == 0 {
		swaps := float64(len(s.paths[u])-2) * m.Measure
		s.complete(u, roundStart+m.EPRAttempt+swaps+m.TwoQubit+m.Measure)
	}
}

// Reroute repoints node u onto a new entanglement path mid-execution,
// discarding any banked hop entanglement. SetPath forbids this —
// switching a healthy node's path would waste its accumulated
// entanglement — but a dead link has already invalidated the bank, so
// the fault layer's route-around starts the new path from scratch.
// Panics on a completed node or a degenerate path.
func (s *JobState) Reroute(u int, path []int) {
	if s.hopsLeft[u] == 0 {
		panic(fmt.Sprintf("sched: rerouting completed node %d", u))
	}
	if len(path) < 2 {
		panic(fmt.Sprintf("sched: invalid reroute path %v for node %d", path, u))
	}
	s.paths[u] = path
	s.hopsLeft[u] = len(path) - 1
}

package sched

// Checkpoint is a consistent snapshot of one job's execution progress,
// taken at an EPR-round boundary: the set of remote gates that have
// fully completed, identified by their position in the original circuit
// rather than their remote-DAG node id. Identifying gates by circuit
// position makes the checkpoint placement-independent — a preempted job
// may resume under a different qubit→QPU assignment, whose remote DAG
// has different node ids (and possibly different membership: a gate
// that was remote may become local and vice versa), and the checkpoint
// still replays correctly.
//
// Gates that executed locally under the old placement are not recorded:
// their latency is folded into the DAG's per-node lags and tails, so a
// resume under a placement that turns them remote re-models them
// conservatively (the job re-earns those completions). Preemption can
// therefore only lengthen a job's completion time, never shorten it.
type Checkpoint struct {
	// Done lists completed remote gates' circuit gate indexes in
	// ascending order (remote-DAG nodes are in program order, so the
	// scan below emits them sorted).
	Done []int
}

// Checkpointable reports whether the state can be checkpointed right
// now: no node may hold partial multi-hop entanglement. A node that has
// attempted and entangled some but not all of its hops is "in flight" —
// its accumulated link-level entanglement has no placement-independent
// representation, so preemption must wait for the gate to either finish
// or reach a round boundary with nothing banked. Single-hop gates are
// always checkpointable between rounds: a failed attempt leaves no
// partial state (hopsLeft still equals the hop count).
func (s *JobState) Checkpointable() bool {
	for i, n := 0, s.dag.Len(); i < n; i++ {
		if s.attempted[i] && s.hopsLeft[i] > 0 && s.hopsLeft[i] < s.dag.Nodes[i].Hops() {
			return false
		}
	}
	return true
}

// Checkpoint captures the completed remote gates. Callers should check
// Checkpointable first; the snapshot itself is always well-formed, it
// just silently drops in-flight partial entanglement otherwise.
func (s *JobState) Checkpoint() Checkpoint {
	done := make([]int, 0, s.dag.Len()-s.remaining)
	for i, n := 0, s.dag.Len(); i < n; i++ {
		if s.hopsLeft[i] == 0 {
			done = append(done, s.dag.Nodes[i].GateIndex)
		}
	}
	return Checkpoint{Done: done}
}

// ApplyCheckpoint replays a prior run's completed remote gates onto a
// freshly reinitialized state for a (possibly different) placement of
// the same circuit: every node of the new DAG whose gate index appears
// in the checkpoint completes immediately at time at — the resume
// instant — unblocking its successors exactly as live completion would.
// Checkpointed gates that are local under the new placement simply have
// no node to mark and are skipped; their cost is already folded into
// the new DAG's lags. Must be called before any Attempt on s.
func (s *JobState) ApplyCheckpoint(cp Checkpoint, at float64) {
	k := 0
	for i, n := 0, s.dag.Len(); i < n && k < len(cp.Done); i++ {
		gi := s.dag.Nodes[i].GateIndex
		for k < len(cp.Done) && cp.Done[k] < gi {
			k++ // checkpointed gate is local under the new placement
		}
		if k < len(cp.Done) && cp.Done[k] == gi {
			s.hopsLeft[i] = 0
			s.complete(i, at)
			k++
		}
	}
}

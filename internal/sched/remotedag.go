// Package sched implements CloudQC's network scheduler (paper Sec. V-C,
// Algorithm 3): it contracts a placed circuit into a remote DAG of
// inter-QPU gates, computes critical-path priorities, and simulates
// round-based probabilistic EPR allocation under per-QPU communication
// qubit budgets, with the CloudQC, Greedy, Average, and Random policies
// of the evaluation.
package sched

import (
	"sort"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
)

// RemoteGate is one inter-QPU two-qubit gate in the remote DAG.
type RemoteGate struct {
	// ID is the node index within the remote DAG.
	ID int
	// GateIndex is the gate's position in the original circuit.
	GateIndex int
	// Path is the shortest QPU path between the gate's endpoints,
	// inclusive; len(Path)-1 is the number of EPR hops.
	Path []int
	// Lag is the local-computation latency that must elapse between this
	// gate's remote predecessors finishing and its EPR attempts starting
	// (longest chain of local gates in between).
	Lag float64
	// Teleport marks qubit-migration nodes inserted by
	// BuildMigratingDAG: the EPR pair moves a qubit instead of executing
	// a gate.
	Teleport bool
}

// Hops returns the number of quantum links the gate spans.
func (g *RemoteGate) Hops() int { return len(g.Path) - 1 }

// RemoteDAG is the dependency graph over a placed circuit's remote gates
// (paper Fig. 3). Local gates are folded into per-node Lag values and
// the terminal Tail so job completion time still reflects them.
type RemoteDAG struct {
	// Nodes lists the remote gates in circuit program order.
	Nodes []RemoteGate
	// Succs and Preds are adjacency lists over node IDs.
	Succs, Preds [][]int
	// Tail is the longest local-gate chain after the final remote gates;
	// job completion = last remote finish + Tail.
	Tail float64
	// LocalOnly is the full critical-path runtime when the placement
	// produced no remote gates at all (single-QPU placements).
	LocalOnly float64
}

// Len returns the number of remote gates.
func (d *RemoteDAG) Len() int { return len(d.Nodes) }

// BuildRemoteDAG contracts the placed circuit to its remote DAG.
// assign maps qubits to QPUs; lat supplies local gate durations for the
// lag/tail bookkeeping.
func BuildRemoteDAG(c *circuit.Circuit, cl *cloud.Cloud, assign []int, lat epr.Latency) *RemoteDAG {
	d := &RemoteDAG{}
	n := c.NumQubits()
	// frontier[q]: remote nodes that are the latest remote ancestors on
	// qubit q's line. lag[q]: local latency accumulated since then.
	frontier := make([][]int, n)
	lag := make([]float64, n)

	for gi, g := range c.Gates() {
		switch {
		case g.Kind == circuit.Two && assign[g.Qubits[0]] != assign[g.Qubits[1]]:
			a, b := g.Qubits[0], g.Qubits[1]
			id := len(d.Nodes)
			node := RemoteGate{
				ID:        id,
				GateIndex: gi,
				Path:      cl.Path(assign[a], assign[b]),
				Lag:       maxf(lag[a], lag[b]),
			}
			parents := mergeSorted(frontier[a], frontier[b])
			d.Nodes = append(d.Nodes, node)
			d.Succs = append(d.Succs, nil)
			d.Preds = append(d.Preds, parents)
			for _, p := range parents {
				d.Succs[p] = append(d.Succs[p], id)
			}
			frontier[a] = []int{id}
			frontier[b] = []int{id}
			lag[a], lag[b] = 0, 0
		case g.Kind == circuit.Two:
			a, b := g.Qubits[0], g.Qubits[1]
			merged := mergeSorted(frontier[a], frontier[b])
			t := maxf(lag[a], lag[b]) + lat.GateDuration(g.Kind)
			frontier[a] = merged
			frontier[b] = append([]int(nil), merged...)
			lag[a], lag[b] = t, t
		default:
			q := g.Qubits[0]
			lag[q] += lat.GateDuration(g.Kind)
		}
	}

	for q := 0; q < n; q++ {
		if lag[q] > d.Tail {
			d.Tail = lag[q]
		}
	}
	if len(d.Nodes) == 0 {
		dag := circuit.BuildDAG(c)
		d.LocalOnly, _ = dag.CriticalPath(func(i int) float64 {
			return lat.GateDuration(c.Gates()[i].Kind)
		})
		d.Tail = 0
	}
	return d
}

// Priorities returns each node's priority: the length in edges of the
// longest path from the node to any leaf (paper Sec. V-C). Nodes with
// high priority block the most downstream work when they stall.
func (d *RemoteDAG) Priorities() []int {
	p := make([]int, d.Len())
	for i := d.Len() - 1; i >= 0; i-- { // reverse program order is reverse topological
		for _, s := range d.Succs[i] {
			if p[s]+1 > p[i] {
				p[i] = p[s] + 1
			}
		}
	}
	return p
}

// FrontLayer returns nodes with no predecessors.
func (d *RemoteDAG) FrontLayer() []int {
	var front []int
	for i := range d.Preds {
		if len(d.Preds[i]) == 0 {
			front = append(front, i)
		}
	}
	return front
}

// CriticalPathLen returns the number of nodes on the longest dependency
// chain, a lower bound on sequential EPR phases.
func (d *RemoteDAG) CriticalPathLen() int {
	if d.Len() == 0 {
		return 0
	}
	longest := 0
	for _, p := range d.Priorities() {
		if p+1 > longest {
			longest = p + 1
		}
	}
	return longest
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// mergeSorted unions two ascending int slices without duplicates.
func mergeSorted(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 {
		return append([]int(nil), a...)
	}
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

package sched

import (
	"fmt"
	"math/rand"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
)

// RunFidelity is Run under a fidelity-aware EPR model: every remote
// gate must deliver end-to-end entanglement at or above the model's
// fidelity threshold, so each hop accumulates 2^r raw EPR successes
// (r purification rounds) instead of one. The extra successes reuse
// the hop-accumulation machinery — hopsLeft simply counts raw-pair
// successes still owed.
func RunFidelity(dag *RemoteDAG, cl *cloud.Cloud, f epr.FidelityModel, p Policy, rng *rand.Rand) (Result, error) {
	if err := f.Validate(); err != nil {
		return Result{}, err
	}
	for i := 0; i < cl.NumQPUs(); i++ {
		if cl.QPU(i).Comm < 1 {
			return Result{}, fmt.Errorf("sched: QPU %d has no communication qubits", i)
		}
	}
	s := NewJobState(dag, 0)
	// Scale every node's owed successes by its purification factor.
	for u, n := range dag.Nodes {
		pairs, err := f.PairsPerHop(n.Hops())
		if err != nil {
			return Result{}, fmt.Errorf("sched: node %d (%d hops): %w", u, n.Hops(), err)
		}
		s.hopsLeft[u] = n.Hops() * pairs
	}
	res := Result{RemoteGates: dag.Len()}
	if dag.Len() == 0 {
		res.JCT = s.JCT()
		return res, nil
	}
	budget := make([]int, cl.NumQPUs())
	t := 0.0
	for !s.Done() {
		ready := s.Ready(t)
		if len(ready) == 0 {
			t = s.nextEnableTime(t)
			continue
		}
		for i := range budget {
			budget[i] = cl.QPU(i).Comm
		}
		alloc := p.Allocate(s.Requests(0, ready), budget, rng)
		for _, u := range ready {
			s.Attempt(u, alloc[NodeKey{Job: 0, Node: u}], t, f.Model, rng)
		}
		res.Rounds++
		t += f.EPRAttempt
	}
	res.JCT = s.JCT()
	return res, nil
}

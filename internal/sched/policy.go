package sched

import (
	"math/rand"
	"sort"
)

// NodeKey identifies a remote gate within a (possibly multi-job) round:
// Job is an opaque job index assigned by the caller, Node the remote DAG
// node id.
type NodeKey struct {
	Job  int
	Node int
}

// Request asks the allocation policy for communication qubits on behalf
// of one ready remote gate.
type Request struct {
	Key NodeKey
	// Path lists the QPUs whose communication qubits one EPR pair for
	// this gate consumes (endpoints plus swap intermediates).
	Path []int
	// Priority is the gate's remote-DAG priority (longest path to leaf).
	Priority int
}

// Policy divides each round's communication qubit budget among competing
// ready gates. Implementations must never allocate beyond budget and
// must be deterministic given the same rng state.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate returns EPR attempt pairs per requesting gate. budget is
	// the per-QPU free communication qubit count for this round and is
	// consumed in place.
	Allocate(reqs []Request, budget []int, rng *rand.Rand) map[NodeKey]int
}

// grantOne consumes one communication qubit on every QPU of the request
// path if all have budget, returning whether the grant happened.
func grantOne(r Request, budget []int) bool {
	for _, q := range r.Path {
		if budget[q] < 1 {
			return false
		}
	}
	for _, q := range r.Path {
		budget[q]--
	}
	return true
}

// sortByPriority orders requests by descending priority, breaking ties
// by job then node id for determinism.
func sortByPriority(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		if out[i].Key.Job != out[j].Key.Job {
			return out[i].Key.Job < out[j].Key.Job
		}
		return out[i].Key.Node < out[j].Key.Node
	})
	return out
}

// CloudQCPolicy is the paper's scheduler: every ready gate first gets one
// attempt pair when possible (starvation freedom), then the remaining
// budget is water-filled proportionally to priority weight, so critical
// path gates accumulate redundant pairs and tolerate EPR failures.
type CloudQCPolicy struct{}

// Name implements Policy.
func (CloudQCPolicy) Name() string { return "CloudQC" }

// Allocate implements Policy.
func (CloudQCPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	ordered := sortByPriority(reqs)
	for _, r := range ordered {
		if grantOne(r, budget) {
			alloc[r.Key]++
		}
	}
	// Water-fill extras: repeatedly grant +1 to the request minimizing
	// granted/weight, weight = priority + 1. Ties resolve to higher
	// priority, then request order.
	for {
		bestIdx := -1
		var bestRatio float64
		for i, r := range ordered {
			if alloc[r.Key] == 0 {
				continue // starved by budget; extras would also fail
			}
			if !canGrant(r, budget) {
				continue
			}
			ratio := float64(alloc[r.Key]) / float64(r.Priority+1)
			if bestIdx < 0 || ratio < bestRatio {
				bestIdx, bestRatio = i, ratio
			}
		}
		if bestIdx < 0 {
			break
		}
		r := ordered[bestIdx]
		grantOne(r, budget)
		alloc[r.Key]++
	}
	return alloc
}

func canGrant(r Request, budget []int) bool {
	for _, q := range r.Path {
		if budget[q] < 1 {
			return false
		}
	}
	return true
}

// GreedyPolicy always gives the highest-priority gate every pair its
// path can absorb before considering the next gate — the paper's worst
// performer, since stacked pairs have diminishing returns while other
// gates starve.
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "Greedy" }

// Allocate implements Policy.
func (GreedyPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	for _, r := range sortByPriority(reqs) {
		for grantOne(r, budget) {
			alloc[r.Key]++
		}
	}
	return alloc
}

// AveragePolicy distributes pairs evenly: round-robin single grants in
// deterministic node order until the budget is exhausted.
type AveragePolicy struct{}

// Name implements Policy.
func (AveragePolicy) Name() string { return "Average" }

// Allocate implements Policy.
func (AveragePolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	ordered := append([]Request(nil), reqs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Key.Job != ordered[j].Key.Job {
			return ordered[i].Key.Job < ordered[j].Key.Job
		}
		return ordered[i].Key.Node < ordered[j].Key.Node
	})
	for {
		granted := false
		for _, r := range ordered {
			if grantOne(r, budget) {
				alloc[r.Key]++
				granted = true
			}
		}
		if !granted {
			break
		}
	}
	return alloc
}

// RandomPolicy hands out single pairs to uniformly random ready gates
// until no grant is possible.
type RandomPolicy struct{}

// Name implements Policy.
func (RandomPolicy) Name() string { return "Random" }

// Allocate implements Policy.
func (RandomPolicy) Allocate(reqs []Request, budget []int, rng *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	live := append([]Request(nil), reqs...)
	for len(live) > 0 {
		i := rng.Intn(len(live))
		if grantOne(live[i], budget) {
			alloc[live[i].Key]++
			continue
		}
		// Path exhausted: drop this request from the lottery.
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	return alloc
}

package sched

import (
	"math/rand"
	"sort"
)

// NodeKey identifies a remote gate within a (possibly multi-job) round:
// Job is an opaque job index assigned by the caller, Node the remote DAG
// node id.
type NodeKey struct {
	Job  int
	Node int
}

// Request asks the allocation policy for communication qubits on behalf
// of one ready remote gate.
type Request struct {
	Key NodeKey
	// Path lists the QPUs whose communication qubits one EPR pair for
	// this gate consumes (endpoints plus swap intermediates).
	Path []int
	// Priority is the gate's remote-DAG priority (longest path to leaf).
	Priority int
	// Tenant identifies the submitting tenant for tenant-aware policies;
	// the zero value is the single default tenant. Tenant-oblivious
	// policies ignore it.
	Tenant int
	// TenantWeight is the tenant's fair-share weight (non-positive means
	// 1). Only tenant-aware policies read it.
	TenantWeight int
}

// Policy divides each round's communication qubit budget among competing
// ready gates. Implementations must never allocate beyond budget and
// must be deterministic given the same rng state. Allocate may reorder
// reqs in place — callers hand over ownership of the slice for the round
// and must not rely on its order afterwards.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Allocate returns EPR attempt pairs per requesting gate. budget is
	// the per-QPU free communication qubit count for this round and is
	// consumed in place, as is the order of reqs.
	Allocate(reqs []Request, budget []int, rng *rand.Rand) map[NodeKey]int
}

// grantOne consumes one communication qubit on every QPU of the request
// path if all have budget, returning whether the grant happened.
func grantOne(r Request, budget []int) bool {
	for _, q := range r.Path {
		if budget[q] < 1 {
			return false
		}
	}
	for _, q := range r.Path {
		budget[q]--
	}
	return true
}

// sortByPriority orders requests by descending priority, breaking ties
// by job then node id for determinism. It sorts in place: Allocate owns
// its request slice for the round (every caller rebuilds it from
// JobState.Requests each round), so the per-round copy this used to make
// was pure allocator pressure on the hot path.
func sortByPriority(reqs []Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Priority != reqs[j].Priority {
			return reqs[i].Priority > reqs[j].Priority
		}
		if reqs[i].Key.Job != reqs[j].Key.Job {
			return reqs[i].Key.Job < reqs[j].Key.Job
		}
		return reqs[i].Key.Node < reqs[j].Key.Node
	})
}

// CloudQCPolicy is the paper's scheduler: every ready gate first gets one
// attempt pair when possible (starvation freedom), then the remaining
// budget is water-filled proportionally to priority weight, so critical
// path gates accumulate redundant pairs and tolerate EPR failures.
type CloudQCPolicy struct{}

// Name implements Policy.
func (CloudQCPolicy) Name() string { return "CloudQC" }

// Allocate implements Policy.
func (CloudQCPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	sortByPriority(reqs)
	for _, r := range reqs {
		if grantOne(r, budget) {
			alloc[r.Key]++
		}
	}
	waterFill(reqs, alloc, budget)
	return alloc
}

// waterFill spends the remaining budget on extra pairs: repeatedly grant
// +1 to the already-granted request minimizing granted/weight, weight =
// priority + 1, so critical-path gates accumulate redundant pairs. Ties
// resolve to higher priority, then request order in ordered. Requests
// with no pairs are skipped — they were starved by budget and extras
// would also fail.
func waterFill(ordered []Request, alloc map[NodeKey]int, budget []int) {
	for {
		bestIdx := -1
		var bestRatio float64
		for i, r := range ordered {
			if alloc[r.Key] == 0 {
				continue
			}
			if !canGrant(r, budget) {
				continue
			}
			ratio := float64(alloc[r.Key]) / float64(r.Priority+1)
			if bestIdx < 0 || ratio < bestRatio {
				bestIdx, bestRatio = i, ratio
			}
		}
		if bestIdx < 0 {
			break
		}
		grantOne(ordered[bestIdx], budget)
		alloc[ordered[bestIdx].Key]++
	}
}

func canGrant(r Request, budget []int) bool {
	for _, q := range r.Path {
		if budget[q] < 1 {
			return false
		}
	}
	return true
}

// GreedyPolicy always gives the highest-priority gate every pair its
// path can absorb before considering the next gate — the paper's worst
// performer, since stacked pairs have diminishing returns while other
// gates starve.
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "Greedy" }

// Allocate implements Policy.
func (GreedyPolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	sortByPriority(reqs)
	for _, r := range reqs {
		for grantOne(r, budget) {
			alloc[r.Key]++
		}
	}
	return alloc
}

// AveragePolicy distributes pairs evenly: round-robin single grants in
// deterministic node order until the budget is exhausted.
type AveragePolicy struct{}

// Name implements Policy.
func (AveragePolicy) Name() string { return "Average" }

// Allocate implements Policy.
func (AveragePolicy) Allocate(reqs []Request, budget []int, _ *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Key.Job != reqs[j].Key.Job {
			return reqs[i].Key.Job < reqs[j].Key.Job
		}
		return reqs[i].Key.Node < reqs[j].Key.Node
	})
	for {
		granted := false
		for _, r := range reqs {
			if grantOne(r, budget) {
				alloc[r.Key]++
				granted = true
			}
		}
		if !granted {
			break
		}
	}
	return alloc
}

// RandomPolicy hands out single pairs to uniformly random ready gates
// until no grant is possible.
type RandomPolicy struct{}

// Name implements Policy.
func (RandomPolicy) Name() string { return "Random" }

// Allocate implements Policy.
func (RandomPolicy) Allocate(reqs []Request, budget []int, rng *rand.Rand) map[NodeKey]int {
	alloc := make(map[NodeKey]int, len(reqs))
	// Unlike the sorting policies, the lottery's outcome depends on the
	// working list's order, so it keeps a private copy: swap-removing
	// from reqs itself would make a repeat call with the same slice and
	// rng state produce a different allocation.
	live := append([]Request(nil), reqs...)
	for len(live) > 0 {
		i := rng.Intn(len(live))
		if grantOne(live[i], budget) {
			alloc[live[i].Key]++
			continue
		}
		// Path exhausted: drop this request from the lottery.
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	return alloc
}

package sched

import (
	"fmt"
	"math"
	"math/rand"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
)

// JobState tracks one remote DAG's execution progress across EPR rounds.
// The multi-tenant controller drives several JobStates against a shared
// budget; the single-job Run drives one.
type JobState struct {
	dag *RemoteDAG
	// prio caches the DAG priorities.
	prio []int
	// pending counts unfinished predecessors per node.
	pending []int
	// readyAt is the earliest time a node may start EPR attempts: its
	// predecessors' finish plus its local lag. Nodes whose preds are
	// unfinished hold +Inf implicitly via pending > 0.
	readyAt []float64
	// hopsLeft counts EPR links still to entangle per node.
	hopsLeft []int
	// paths holds each node's entanglement path; defaults to the remote
	// DAG's shortest path, replaceable via SetPath before first attempt
	// (congestion-aware multipath routing).
	paths [][]int
	// attempted marks nodes whose EPR attempts have started; their path
	// is frozen.
	attempted []bool
	// finish records node completion times.
	finish    []float64
	remaining int
	maxFinish float64
	start     float64
	// runnable lists nodes with no unfinished predecessors that still
	// have hops left; maintained incrementally so Ready costs O(front)
	// instead of O(nodes) per round.
	runnable []int
}

// NewJobState prepares execution state for a remote DAG whose EPR
// attempts may begin at the given start time (job arrival/placement).
func NewJobState(dag *RemoteDAG, start float64) *JobState {
	s := &JobState{}
	s.Reinit(dag, nil, start)
	return s
}

// Reinit re-prepares s for a (possibly different) remote DAG starting
// at the given time, reusing its per-node backing arrays when their
// capacity allows — the multi-tenant controller pools retired JobStates
// so cache-hit admissions allocate nothing per node. prio, when
// non-nil, must be dag.Priorities() (a plan-cache copy); s aliases it
// read-only. The result is indistinguishable from a fresh
// NewJobState(dag, start).
func (s *JobState) Reinit(dag *RemoteDAG, prio []int, start float64) {
	n := dag.Len()
	if prio == nil {
		prio = dag.Priorities()
	}
	s.dag = dag
	s.prio = prio
	s.pending = growInts(s.pending, n)
	s.readyAt = growFloats(s.readyAt, n)
	s.hopsLeft = growInts(s.hopsLeft, n)
	s.paths = growPaths(s.paths, n)
	s.attempted = growBools(s.attempted, n)
	s.finish = growFloats(s.finish, n)
	s.remaining = n
	s.maxFinish = 0
	s.start = start
	s.runnable = s.runnable[:0]
	for i := 0; i < n; i++ {
		s.pending[i] = len(dag.Preds[i])
		s.hopsLeft[i] = dag.Nodes[i].Hops()
		s.paths[i] = dag.Nodes[i].Path
		s.readyAt[i] = start + dag.Nodes[i].Lag
		s.attempted[i] = false
		s.finish[i] = 0
		if s.pending[i] == 0 {
			s.runnable = append(s.runnable, i)
		}
	}
}

// growInts returns a length-n slice reusing buf's backing array when it
// is large enough.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growPaths(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		return make([][]int, n)
	}
	return buf[:n]
}

// Path returns node u's current entanglement path.
func (s *JobState) Path(u int) []int { return s.paths[u] }

// Attempted reports whether node u has started EPR attempts.
func (s *JobState) Attempted(u int) bool { return s.attempted[u] }

// Priority returns node u's remote-DAG priority.
func (s *JobState) Priority(u int) int { return s.prio[u] }

// SetPath reroutes node u onto an alternative QPU path. Panics if the
// node has already started attempting — switching paths would discard
// accumulated hop entanglement.
func (s *JobState) SetPath(u int, path []int) {
	if s.attempted[u] {
		panic(fmt.Sprintf("sched: rerouting node %d after attempts started", u))
	}
	if len(path) < 2 {
		panic(fmt.Sprintf("sched: invalid path %v for node %d", path, u))
	}
	s.paths[u] = path
	s.hopsLeft[u] = len(path) - 1
}

// Done reports whether every remote gate has completed.
func (s *JobState) Done() bool { return s.remaining == 0 }

// JCT returns the job completion time: the last remote gate's finish
// plus the trailing local critical path — or the purely local runtime
// for placements with no remote gates.
func (s *JobState) JCT() float64 {
	if s.dag.Len() == 0 {
		return s.start + s.dag.LocalOnly
	}
	return s.maxFinish + s.dag.Tail
}

// MaxFinish returns the completion time of the latest-finishing remote
// gate so far (zero before any completes, or for placements with no
// remote gates). For a done job, JCT() == MaxFinish() plus the trailing
// local critical path — the split virtual-time tracing uses to end the
// network-stall phase where local-only compute takes over.
func (s *JobState) MaxFinish() float64 {
	if s.dag.Len() == 0 {
		return 0
	}
	return s.maxFinish
}

// Ready returns the node ids allowed to attempt EPR generation in the
// round starting at time t. Completed nodes are compacted out of the
// runnable list lazily.
func (s *JobState) Ready(t float64) []int { return s.AppendReady(nil, t) }

// AppendReady is Ready appending into dst (usually a reused scratch
// buffer sliced to length 0), so per-round collection on the
// controller's hot path allocates nothing once the buffers warm up.
func (s *JobState) AppendReady(dst []int, t float64) []int {
	w := 0
	for _, i := range s.runnable {
		if s.hopsLeft[i] == 0 {
			continue // completed; drop from runnable
		}
		s.runnable[w] = i
		w++
		if s.readyAt[i] <= t {
			dst = append(dst, i)
		}
	}
	s.runnable = s.runnable[:w]
	return dst
}

// Requests converts ready nodes into policy requests tagged with job.
func (s *JobState) Requests(job int, ready []int) []Request {
	return s.AppendRequests(make([]Request, 0, len(ready)), job, ready)
}

// AppendRequests is Requests appending into dst, the zero-alloc variant
// for the controller's per-round collection.
func (s *JobState) AppendRequests(dst []Request, job int, ready []int) []Request {
	for _, u := range ready {
		dst = append(dst, Request{
			Key:      NodeKey{Job: job, Node: u},
			Path:     s.paths[u],
			Priority: s.prio[u],
		})
	}
	return dst
}

// Attempt runs node u's EPR round with the given pair allocation,
// sampling one Bernoulli trial per unfinished hop. If every hop is
// entangled by the round's end, the gate completes: entanglement
// swapping at intermediates, gate execution, and measurement follow.
// roundStart is the round's opening time.
func (s *JobState) Attempt(u, pairs int, roundStart float64, m epr.Model, rng *rand.Rand) {
	if pairs <= 0 || s.hopsLeft[u] == 0 {
		return
	}
	s.attempted[u] = true
	for h := s.hopsLeft[u]; h > 0; h-- {
		if m.SampleRoundSuccess(rng, pairs) {
			s.hopsLeft[u]--
		}
	}
	if s.hopsLeft[u] == 0 {
		swaps := float64(len(s.paths[u])-2) * m.Measure
		s.complete(u, roundStart+m.EPRAttempt+swaps+m.TwoQubit+m.Measure)
	}
}

func (s *JobState) complete(u int, at float64) {
	s.finish[u] = at
	s.remaining--
	if at > s.maxFinish {
		s.maxFinish = at
	}
	for _, v := range s.dag.Succs[u] {
		s.pending[v]--
		if ra := at + s.dag.Nodes[v].Lag; ra > s.readyAt[v] {
			s.readyAt[v] = ra
		}
		if s.pending[v] == 0 {
			s.runnable = append(s.runnable, v)
		}
	}
}

// Result summarizes one scheduling run.
type Result struct {
	// JCT is the job completion time in CX units.
	JCT float64
	// Rounds is the number of EPR attempt rounds simulated.
	Rounds int
	// RemoteGates is the remote DAG size.
	RemoteGates int
}

// Run simulates a single job's remote DAG to completion under the given
// allocation policy, with each QPU contributing its full communication
// qubit budget every EPR round. It is Algorithm 3's main loop.
func Run(dag *RemoteDAG, cl *cloud.Cloud, m epr.Model, p Policy, rng *rand.Rand) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	for i := 0; i < cl.NumQPUs(); i++ {
		if cl.QPU(i).Comm < 1 {
			return Result{}, fmt.Errorf("sched: QPU %d has no communication qubits", i)
		}
	}
	s := NewJobState(dag, 0)
	res := Result{RemoteGates: dag.Len()}
	if dag.Len() == 0 {
		res.JCT = s.JCT()
		return res, nil
	}
	budget := make([]int, cl.NumQPUs())
	t := 0.0
	for !s.Done() {
		ready := s.Ready(t)
		if len(ready) == 0 {
			// All runnable nodes are waiting on finish times beyond t:
			// jump to the next enabling instant aligned to round starts.
			t = s.nextEnableTime(t)
			continue
		}
		for i := range budget {
			budget[i] = cl.QPU(i).Comm
		}
		alloc := p.Allocate(s.Requests(0, ready), budget, rng)
		for _, u := range ready {
			s.Attempt(u, alloc[NodeKey{Job: 0, Node: u}], t, m, rng)
		}
		res.Rounds++
		t += m.EPRAttempt
	}
	res.JCT = s.JCT()
	return res, nil
}

// nextEnableTime returns the earliest readyAt among runnable nodes that
// is after t; it must exist while the job is not done.
func (s *JobState) nextEnableTime(t float64) float64 {
	next, ok := s.NextEnableTime(t)
	if !ok || next <= t {
		panic(fmt.Sprintf("sched: stalled with %d remaining nodes", s.remaining))
	}
	return next
}

// NextEnableTime returns the earliest time >= t at which some runnable
// node may attempt EPR generation (a node whose readyAt has passed is
// enabled immediately, so t itself is returned). The second result is
// false when the job has no runnable unfinished nodes — either it is
// done, or every unfinished node still waits on predecessors.
func (s *JobState) NextEnableTime(t float64) (float64, bool) {
	next := math.Inf(1)
	for _, i := range s.runnable {
		if s.hopsLeft[i] == 0 {
			continue
		}
		ra := s.readyAt[i]
		if ra < t {
			ra = t
		}
		if ra < next {
			next = ra
		}
	}
	return next, !math.IsInf(next, 1)
}

// EarliestEnableTime is the multi-job analogue of NextEnableTime: the
// earliest time >= t at which any of the given jobs has an EPR-ready
// node. The multi-tenant controller uses it to jump its round clock over
// spans where every active job is waiting on local tails.
func EarliestEnableTime(states []*JobState, t float64) (float64, bool) {
	next := math.Inf(1)
	for _, s := range states {
		if ne, ok := s.NextEnableTime(t); ok && ne < next {
			next = ne
		}
	}
	return next, !math.IsInf(next, 1)
}

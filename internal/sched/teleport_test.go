package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/place"
	"cloudqc/internal/qlib"
)

// burstCircuit has 4 consecutive CX gates between the same cross-QPU
// pair — the canonical teleportation win.
func burstCircuit() (*circuit.Circuit, *cloud.Cloud, []int) {
	c := circuit.New("burst", 2)
	for i := 0; i < 4; i++ {
		c.Append(circuit.CX(0, 1))
	}
	cl := cloud.New(graph.Path(2), 10, 5)
	return c, cl, []int{0, 1}
}

func TestMigratingDAGCollapsesBurst(t *testing.T) {
	c, cl, assign := burstCircuit()
	d, stats := BuildMigratingDAG(c, cl, assign, epr.DefaultLatency(), PlanOptions{})
	if stats.Teleports != 1 {
		t.Fatalf("teleports = %d, want 1", stats.Teleports)
	}
	if d.Len() != 1 {
		t.Fatalf("remote nodes = %d, want 1 (the teleport)", d.Len())
	}
	if !d.Nodes[0].Teleport {
		t.Fatal("single node should be a teleport")
	}
	if stats.LocalizedGates != 4 {
		t.Fatalf("localized = %d, want all 4 gates", stats.LocalizedGates)
	}
	// The moved qubit ends on QPU 1 (or 0 — one shared QPU).
	if stats.FinalAssign[0] != stats.FinalAssign[1] {
		t.Fatalf("qubits should be co-located after migration: %v", stats.FinalAssign)
	}
	// The static plan pays 4 remote gates.
	static := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	if static.Len() != 4 {
		t.Fatalf("static remote gates = %d, want 4", static.Len())
	}
}

func TestMigrationRespectsCapacity(t *testing.T) {
	// Destination QPU completely full: no teleport possible; all gates
	// stay remote.
	c := circuit.New("full", 2)
	for i := 0; i < 4; i++ {
		c.Append(circuit.CX(0, 1))
	}
	cl := cloud.New(graph.Path(2), 1, 5) // 1 computing qubit per QPU
	d, stats := BuildMigratingDAG(c, cl, []int{0, 1}, epr.DefaultLatency(), PlanOptions{})
	if stats.Teleports != 0 {
		t.Fatalf("teleports = %d, want 0 (no capacity)", stats.Teleports)
	}
	if d.Len() != 4 {
		t.Fatalf("remote nodes = %d, want 4", d.Len())
	}
}

func TestMigrationSkipsSingletonInteractions(t *testing.T) {
	// Alternating partners: no burst ever forms with MinBurst 2.
	c := circuit.New("alt", 3)
	c.Append(circuit.CX(0, 1), circuit.CX(0, 2), circuit.CX(0, 1), circuit.CX(0, 2))
	cl := cloud.New(graph.Path(3), 10, 5)
	assign := []int{0, 1, 2}
	_, stats := BuildMigratingDAG(c, cl, assign, epr.DefaultLatency(), PlanOptions{})
	if stats.Teleports != 0 {
		t.Fatalf("teleports = %d, want 0 for alternating partners", stats.Teleports)
	}
}

func TestMigrationDependencies(t *testing.T) {
	// After qubit 0 teleports to QPU 1, a later gate against qubit 2 on
	// QPU 0 crosses QPUs in the *new* direction and must depend on the
	// teleport node.
	c := circuit.New("dep", 3)
	c.Append(
		circuit.CX(0, 1), // triggers teleport of 0 -> QPU 1 (burst of 2)
		circuit.CX(0, 1),
		circuit.CX(0, 2), // now remote: QPU 1 vs QPU 0
	)
	cl := cloud.New(graph.Path(2), 10, 5)
	assign := []int{0, 1, 0}
	d, stats := BuildMigratingDAG(c, cl, assign, epr.DefaultLatency(), PlanOptions{})
	if stats.Teleports != 1 {
		t.Fatalf("teleports = %d, want 1", stats.Teleports)
	}
	if d.Len() != 2 {
		t.Fatalf("nodes = %d, want teleport + 1 remote gate", d.Len())
	}
	last := d.Nodes[1]
	if last.Teleport {
		t.Fatal("second node should be a plain remote gate")
	}
	if len(d.Preds[1]) != 1 || d.Preds[1][0] != 0 {
		t.Fatalf("remote gate must depend on the teleport: preds = %v", d.Preds[1])
	}
}

func TestMigrationPlanExecutes(t *testing.T) {
	// A migration plan runs through the unmodified executor.
	c, cl, assign := burstCircuit()
	d, _ := BuildMigratingDAG(c, cl, assign, epr.DefaultLatency(), PlanOptions{})
	res, err := Run(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 {
		t.Fatalf("JCT = %v", res.JCT)
	}
}

func TestMigrationBeatsStaticOnBurstyCircuit(t *testing.T) {
	// QFT's controlled-phase blocks put two consecutive CX gates on each
	// cross-QPU pair; teleportation collapses them and wins big (the
	// multiplier's alternating Toffoli streams are the documented
	// counterexample — see exp.TeleportComparison).
	cl := cloud.NewRandom(20, 0.3, 20, 5, 1)
	circ := qlib.MustBuild("qft_n63")
	cfg := place.DefaultConfig()
	pl, err := place.NewCloudQC(cfg).Place(cl, circ)
	if err != nil {
		t.Fatal(err)
	}
	lat := epr.DefaultLatency()
	static := BuildRemoteDAG(circ, cl, pl.QubitToQPU, lat)
	migrated, stats := BuildMigratingDAG(circ, cl, pl.QubitToQPU, lat, PlanOptions{})
	if stats.Teleports == 0 {
		t.Fatal("multiplier should trigger migrations")
	}
	if migrated.Len() >= static.Len() {
		t.Fatalf("migration plan has %d nodes, static %d — should shrink", migrated.Len(), static.Len())
	}
	var sumStatic, sumMig float64
	const reps = 5
	for seed := int64(0); seed < reps; seed++ {
		s, err := Run(static, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(migrated, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sumStatic += s.JCT
		sumMig += m.JCT
	}
	if sumMig >= sumStatic {
		t.Fatalf("teleportation mean JCT %v did not beat static %v", sumMig/reps, sumStatic/reps)
	}
}

func TestMigrationLocalOnlyCircuit(t *testing.T) {
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("local", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1), circuit.M(1))
	d, stats := BuildMigratingDAG(c, cl, []int{0, 0}, epr.DefaultLatency(), PlanOptions{})
	if d.Len() != 0 || stats.Teleports != 0 {
		t.Fatalf("local circuit: nodes=%d teleports=%d", d.Len(), stats.Teleports)
	}
	if d.LocalOnly <= 0 {
		t.Fatal("LocalOnly should be set")
	}
}

package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/route"
)

// RunMultipath is Run with congestion-aware entanglement routing: every
// remote gate chooses, the first round it becomes ready, the
// least-congested of its k shortest QPU paths (bottleneck budget after
// discounting the paths already claimed by higher-priority gates this
// round). k = 1 degenerates to Run's behavior on shortest paths.
//
// Multi-hop gates benefit most: on sparse topologies the single
// shortest path between two QPU clusters becomes a hot spot, and
// spreading attempts over alternatives raises round throughput.
func RunMultipath(dag *RemoteDAG, cl *cloud.Cloud, m epr.Model, p Policy, rng *rand.Rand, k int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("sched: multipath k = %d < 1", k)
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	for i := 0; i < cl.NumQPUs(); i++ {
		if cl.QPU(i).Comm < 1 {
			return Result{}, fmt.Errorf("sched: QPU %d has no communication qubits", i)
		}
	}

	// Precompute alternatives for every distinct endpoint pair.
	pairs := make([][2]int, 0, dag.Len())
	for _, n := range dag.Nodes {
		pairs = append(pairs, [2]int{n.Path[0], n.Path[len(n.Path)-1]})
	}
	table := route.NewTable(cl.Topology(), pairs, k)

	s := NewJobState(dag, 0)
	res := Result{RemoteGates: dag.Len()}
	if dag.Len() == 0 {
		res.JCT = s.JCT()
		return res, nil
	}
	budget := make([]int, cl.NumQPUs())
	virtual := make([]int, cl.NumQPUs())
	t := 0.0
	for !s.Done() {
		ready := s.Ready(t)
		if len(ready) == 0 {
			t = s.nextEnableTime(t)
			continue
		}
		for i := range budget {
			budget[i] = cl.QPU(i).Comm
			virtual[i] = budget[i]
		}
		// Route first-time-ready gates in priority order against the
		// virtual budget, so concurrent gates spread over the topology.
		orderedRoute(s, ready, table, virtual)
		alloc := p.Allocate(s.Requests(0, ready), budget, rng)
		for _, u := range ready {
			s.Attempt(u, alloc[NodeKey{Job: 0, Node: u}], t, m, rng)
		}
		res.Rounds++
		t += m.EPRAttempt
	}
	res.JCT = s.JCT()
	return res, nil
}

// orderedRoute assigns paths to not-yet-attempted ready nodes, highest
// priority first, decrementing the virtual budget along each chosen
// path so later gates see earlier gates' claims.
func orderedRoute(s *JobState, ready []int, table *route.Table, virtual []int) {
	order := append([]int(nil), ready...)
	sort.Slice(order, func(i, j int) bool {
		if s.Priority(order[i]) != s.Priority(order[j]) {
			return s.Priority(order[i]) > s.Priority(order[j])
		}
		return order[i] < order[j]
	})
	for _, u := range order {
		cur := s.Path(u)
		if s.Attempted(u) {
			// Path frozen; still record its claim for later gates.
			claim(cur, virtual)
			continue
		}
		a, b := cur[0], cur[len(cur)-1]
		if alt := table.Select(a, b, virtual); alt != nil && len(alt) >= 2 {
			s.SetPath(u, alt)
			claim(alt, virtual)
		} else {
			claim(cur, virtual)
		}
	}
}

func claim(path []int, virtual []int) {
	for _, q := range path {
		virtual[q]--
	}
}

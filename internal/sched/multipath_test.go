package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
	"cloudqc/internal/route"
)

// ringCloud builds a ring topology where multi-hop pairs have two
// disjoint paths — the setting where multipath routing matters.
func ringCloud(comm int) *cloud.Cloud {
	return cloud.New(graph.Ring(6), 20, comm)
}

// crossRingCircuit puts many parallel remote gates between QPUs 0 and 3
// (opposite ring points, 3 hops apart with two disjoint routes).
func crossRingCircuit(gates int) (*circuit.Circuit, []int) {
	c := circuit.New("cross", 2*gates)
	assign := make([]int, 2*gates)
	for i := 0; i < gates; i++ {
		c.Append(circuit.CX(i, gates+i))
		assign[gates+i] = 3
	}
	return c, assign
}

func TestRunMultipathValidatesArgs(t *testing.T) {
	c, assign := crossRingCircuit(2)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	if _, err := RunMultipath(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	bad := epr.DefaultModel()
	bad.SuccessProb = 0
	if _, err := RunMultipath(d, cl, bad, CloudQCPolicy{}, rand.New(rand.NewSource(1)), 2); err == nil {
		t.Fatal("invalid model should error")
	}
}

func TestRunMultipathK1MatchesRunShape(t *testing.T) {
	c, assign := crossRingCircuit(4)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 1}
	single, err := Run(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	multi1, err := RunMultipath(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1 both use shortest paths of identical length; under p=1
	// the outcomes coincide.
	if single.JCT != multi1.JCT {
		t.Fatalf("k=1 multipath JCT %v != single-path %v", multi1.JCT, single.JCT)
	}
}

func TestRunMultipathSpreadsLoad(t *testing.T) {
	// 8 parallel 3-hop gates, 4 comm qubits per QPU: the single shortest
	// path bottlenecks, two disjoint ring paths double throughput.
	// Multipath must not be slower on average and should usually win.
	c, assign := crossRingCircuit(8)
	cl := ringCloud(4)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	m := epr.DefaultModel()
	var sumSingle, sumMulti float64
	const reps = 20
	for seed := int64(0); seed < reps; seed++ {
		s, err := Run(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		mu, err := RunMultipath(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(seed)), 2)
		if err != nil {
			t.Fatal(err)
		}
		sumSingle += s.JCT
		sumMulti += mu.JCT
	}
	if sumMulti > sumSingle {
		t.Fatalf("multipath mean JCT %v worse than single-path %v", sumMulti/reps, sumSingle/reps)
	}
}

func TestSetPathRules(t *testing.T) {
	c, assign := crossRingCircuit(1)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	// Valid reroute before attempts.
	alt := []int{0, 5, 4, 3}
	s.SetPath(0, alt)
	if got := s.Path(0); len(got) != 4 {
		t.Fatalf("Path = %v", got)
	}
	// Attempt freezes the path.
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 0.01}
	s.Attempt(0, 1, 0, m, rand.New(rand.NewSource(1)))
	if !s.Attempted(0) {
		t.Fatal("Attempted not recorded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPath after attempts should panic")
		}
	}()
	s.SetPath(0, []int{0, 1, 2, 3})
}

func TestSetPathRejectsDegenerate(t *testing.T) {
	c, assign := crossRingCircuit(1)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("single-node path should panic")
		}
	}()
	s.SetPath(0, []int{0})
}

func TestRunMultipathLocalOnly(t *testing.T) {
	cl := ringCloud(5)
	c := circuit.New("local", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 0}, epr.DefaultLatency())
	res, err := RunMultipath(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.JCT <= 0 {
		t.Fatalf("local-only result %+v", res)
	}
}

// --- orderedRoute / route.Table interaction ---------------------------
//
// RunMultipath's routing step was only exercised end to end; the cases
// below pin the contract directly: unreachable pairs fall back to the
// DAG path, k=1 tables cannot divert, and Select's tie ordering is
// shorter-then-enumeration-order.

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// detourGraph has a 2-hop path 0-1-2 and a 3-hop detour 0-3-4-2, so
// tie ordering between unequal lengths is observable.
func detourGraph() *graph.Graph {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 2, 1)
	return g
}

func TestTableUnreachablePair(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1) // two components
	table := route.NewTable(g, [][2]int{{0, 3}, {0, 1}}, 2)
	if p := table.Paths(0, 3); p != nil {
		t.Fatalf("Paths across components = %v, want nil", p)
	}
	if p := table.Select(0, 3, []int{5, 5, 5, 5}); p != nil {
		t.Fatalf("Select across components = %v, want nil", p)
	}
	// Reachable pairs are direction-insensitive.
	if p := table.Paths(1, 0); len(p) != 1 || !samePath(p[0], []int{0, 1}) {
		t.Fatalf("Paths(1, 0) = %v", p)
	}
}

// TestOrderedRouteUnreachableFallsBack: when the table has no route for
// a gate's endpoints, the gate keeps its DAG path and still charges the
// virtual budget along it, so later gates see the claim.
func TestOrderedRouteUnreachableFallsBack(t *testing.T) {
	c, assign := crossRingCircuit(1)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	ready := s.Ready(0)
	if len(ready) != 1 {
		t.Fatalf("ready = %v, want one gate", ready)
	}
	cur := append([]int(nil), s.Path(ready[0])...)

	disconnected := graph.New(6)
	disconnected.AddEdge(0, 1, 1) // no route from 0 to 3 in the table's graph
	table := route.NewTable(disconnected, [][2]int{{0, 3}}, 2)
	virtual := []int{5, 5, 5, 5, 5, 5}
	orderedRoute(s, ready, table, virtual)

	if !samePath(s.Path(ready[0]), cur) {
		t.Fatalf("path changed to %v despite unreachable table entry (was %v)", s.Path(ready[0]), cur)
	}
	onPath := make(map[int]bool)
	for _, q := range cur {
		onPath[q] = true
	}
	for q, v := range virtual {
		want := 5
		if onPath[q] {
			want = 4
		}
		if v != want {
			t.Fatalf("virtual[%d] = %d, want %d (fallback must still claim the DAG path %v)", q, v, want, cur)
		}
	}
}

// TestTableK1CannotDivert: with k=1 the table stores only the shortest
// path, so even a starved budget selects it — Run's behavior.
func TestTableK1CannotDivert(t *testing.T) {
	table := route.NewTable(detourGraph(), [][2]int{{0, 2}}, 1)
	paths := table.Paths(0, 2)
	if len(paths) != 1 || !samePath(paths[0], []int{0, 1, 2}) {
		t.Fatalf("k=1 Paths = %v, want just the shortest", paths)
	}
	budget := []int{5, 0, 5, 5, 5} // starve the stored path's midpoint
	if got := table.Select(0, 2, budget); !samePath(got, []int{0, 1, 2}) {
		t.Fatalf("k=1 Select = %v, want the single stored path", got)
	}
}

// TestTableSelectTieOrdering drives Select through its documented
// ordering: largest bottleneck wins, ties prefer shorter paths, then
// enumeration order.
func TestTableSelectTieOrdering(t *testing.T) {
	table := route.NewTable(detourGraph(), [][2]int{{0, 2}}, 3)
	paths := table.Paths(0, 2)
	if len(paths) != 2 {
		t.Fatalf("detour graph should yield 2 paths, got %v", paths)
	}
	short, long := []int{0, 1, 2}, []int{0, 3, 4, 2}
	if !samePath(paths[0], short) || !samePath(paths[1], long) {
		t.Fatalf("paths = %v, want enumeration order [short, long]", paths)
	}
	budget := func(overrides map[int]int) []int {
		b := []int{5, 5, 5, 5, 5}
		for q, v := range overrides {
			b[q] = v
		}
		return b
	}
	cases := []struct {
		name string
		b    []int
		want []int
	}{
		{"equal budget prefers shorter", budget(nil), short},
		{"starved short midpoint diverts", budget(map[int]int{1: 0}), long},
		{"starved detour stays short", budget(map[int]int{3: 0, 4: 0}), short},
		{"equal bottleneck prefers shorter", budget(map[int]int{1: 2, 3: 2}), short},
		{"shared endpoint starvation cannot divert", budget(map[int]int{0: 0}), short},
		{"higher detour bottleneck wins despite length", budget(map[int]int{1: 1}), long},
	}
	for _, tc := range cases {
		if got := table.Select(0, 2, tc.b); !samePath(got, tc.want) {
			t.Fatalf("%s: Select(budget=%v) = %v, want %v", tc.name, tc.b, got, tc.want)
		}
	}
}

// TestOrderedRoutePriorityClaims: gates route in priority order, so the
// critical gate takes the last uncongested arm and the lower-priority
// gate is left on the starved shortest path.
func TestOrderedRoutePriorityClaims(t *testing.T) {
	// Gate A (qubits 0,1) has a successor C, so its priority (longest
	// path to a leaf) exceeds standalone gate B's (qubits 2,3); A and B
	// are both ready at t=0 and both cross QPUs 0-3.
	c := circuit.New("prio", 4)
	c.Append(circuit.CX(0, 1), circuit.CX(2, 3), circuit.CX(0, 1))
	assign := []int{0, 3, 0, 3}
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	ready := s.Ready(0)
	if len(ready) != 2 {
		t.Fatalf("ready = %v, want gates A and B", ready)
	}
	a, b := ready[0], ready[1]
	if s.Priority(a) <= s.Priority(b) {
		t.Fatalf("priority(A)=%d should exceed priority(B)=%d", s.Priority(a), s.Priority(b))
	}

	table := route.NewTable(cl.Topology(), [][2]int{{0, 3}}, 2)
	paths := table.Paths(0, 3)
	if len(paths) != 2 {
		t.Fatalf("ring 0-3 should have 2 arms, got %v", paths)
	}
	arm1, arm2 := paths[0], paths[1]
	// Starve arm1's first intermediate and leave exactly one unit
	// everywhere else: A (routed first) diverts to arm2 and exhausts
	// it; B then ties at bottleneck 0 and lands on arm1.
	virtual := []int{1, 1, 1, 1, 1, 1}
	virtual[arm1[1]] = 0
	orderedRoute(s, ready, table, virtual)
	if !samePath(s.Path(a), arm2) {
		t.Fatalf("high-priority gate path = %v, want the free arm %v", s.Path(a), arm2)
	}
	if !samePath(s.Path(b), arm1) {
		t.Fatalf("low-priority gate path = %v, want the leftover arm %v", s.Path(b), arm1)
	}
}

package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

// ringCloud builds a ring topology where multi-hop pairs have two
// disjoint paths — the setting where multipath routing matters.
func ringCloud(comm int) *cloud.Cloud {
	return cloud.New(graph.Ring(6), 20, comm)
}

// crossRingCircuit puts many parallel remote gates between QPUs 0 and 3
// (opposite ring points, 3 hops apart with two disjoint routes).
func crossRingCircuit(gates int) (*circuit.Circuit, []int) {
	c := circuit.New("cross", 2*gates)
	assign := make([]int, 2*gates)
	for i := 0; i < gates; i++ {
		c.Append(circuit.CX(i, gates+i))
		assign[gates+i] = 3
	}
	return c, assign
}

func TestRunMultipathValidatesArgs(t *testing.T) {
	c, assign := crossRingCircuit(2)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	if _, err := RunMultipath(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	bad := epr.DefaultModel()
	bad.SuccessProb = 0
	if _, err := RunMultipath(d, cl, bad, CloudQCPolicy{}, rand.New(rand.NewSource(1)), 2); err == nil {
		t.Fatal("invalid model should error")
	}
}

func TestRunMultipathK1MatchesRunShape(t *testing.T) {
	c, assign := crossRingCircuit(4)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 1}
	single, err := Run(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	multi1, err := RunMultipath(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// With k=1 both use shortest paths of identical length; under p=1
	// the outcomes coincide.
	if single.JCT != multi1.JCT {
		t.Fatalf("k=1 multipath JCT %v != single-path %v", multi1.JCT, single.JCT)
	}
}

func TestRunMultipathSpreadsLoad(t *testing.T) {
	// 8 parallel 3-hop gates, 4 comm qubits per QPU: the single shortest
	// path bottlenecks, two disjoint ring paths double throughput.
	// Multipath must not be slower on average and should usually win.
	c, assign := crossRingCircuit(8)
	cl := ringCloud(4)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	m := epr.DefaultModel()
	var sumSingle, sumMulti float64
	const reps = 20
	for seed := int64(0); seed < reps; seed++ {
		s, err := Run(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		mu, err := RunMultipath(d, cl, m, AveragePolicy{}, rand.New(rand.NewSource(seed)), 2)
		if err != nil {
			t.Fatal(err)
		}
		sumSingle += s.JCT
		sumMulti += mu.JCT
	}
	if sumMulti > sumSingle {
		t.Fatalf("multipath mean JCT %v worse than single-path %v", sumMulti/reps, sumSingle/reps)
	}
}

func TestSetPathRules(t *testing.T) {
	c, assign := crossRingCircuit(1)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	// Valid reroute before attempts.
	alt := []int{0, 5, 4, 3}
	s.SetPath(0, alt)
	if got := s.Path(0); len(got) != 4 {
		t.Fatalf("Path = %v", got)
	}
	// Attempt freezes the path.
	m := epr.Model{Latency: epr.DefaultLatency(), SuccessProb: 0.01}
	s.Attempt(0, 1, 0, m, rand.New(rand.NewSource(1)))
	if !s.Attempted(0) {
		t.Fatal("Attempted not recorded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPath after attempts should panic")
		}
	}()
	s.SetPath(0, []int{0, 1, 2, 3})
}

func TestSetPathRejectsDegenerate(t *testing.T) {
	c, assign := crossRingCircuit(1)
	cl := ringCloud(5)
	d := BuildRemoteDAG(c, cl, assign, epr.DefaultLatency())
	s := NewJobState(d, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("single-node path should panic")
		}
	}()
	s.SetPath(0, []int{0})
}

func TestRunMultipathLocalOnly(t *testing.T) {
	cl := ringCloud(5)
	c := circuit.New("local", 2)
	c.Append(circuit.H(0), circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 0}, epr.DefaultLatency())
	res, err := RunMultipath(d, cl, epr.DefaultModel(), CloudQCPolicy{}, rand.New(rand.NewSource(1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.JCT <= 0 {
		t.Fatalf("local-only result %+v", res)
	}
}
